(* Command-line interface for the HLS-versus-HC reproduction. *)

open Cmdliner

let tool_conv =
  (* The accepted names live on the TOOL modules, next to everything else
     each flow registers; [Registry.parse_tools] is the one shared parser
     and its errors list the valid names. *)
  let parse s =
    match Core.Registry.parse_tools s with
    | Ok [ t ] -> Ok t
    | Ok _ -> Error (`Msg (Printf.sprintf "expected a single tool, got %S" s))
    | Error e -> Error (`Msg e)
  in
  let print ppf t = Format.pp_print_string ppf (Core.Design.tool_name t) in
  Arg.conv (parse, print)

let tools_conv =
  let parse s =
    match Core.Registry.parse_tools s with
    | Ok ts -> Ok ts
    | Error e -> Error (`Msg e)
  in
  let print ppf ts =
    Format.pp_print_string ppf
      (String.concat "," (List.map Core.Design.tool_name ts))
  in
  Arg.conv (parse, print)

let tools_opt =
  Arg.(
    value
    & opt (some tools_conv) None
    & info [ "tools" ] ~docv:"TOOLS"
        ~doc:
          "Restrict to a comma-separated, case-insensitive list of tools \
           (e.g. $(b,verilog,bsv)).  Unknown names fail with the list of \
           valid tools.")

let tool_pos =
  Arg.(required & pos 0 (some tool_conv) None & info [] ~docv:"TOOL")

(* Kernel selection mirrors tool selection: names live on the KERNEL
   modules, [Core.Kernel.parse_kernel] is the one shared parser and the
   error lists the registered kernels. *)
let kernel_conv =
  let parse s =
    match Core.Kernel.parse_kernel s with
    | Some k -> Ok k
    | None -> Error (`Msg (Core.Kernel.unknown_kernel_msg s))
  in
  let print ppf k = Format.pp_print_string ppf (Core.Kernel.name k) in
  Arg.conv (parse, print)

let kernel_opt =
  Arg.(
    value
    & opt kernel_conv Core.Kernel.idct
    & info [ "kernel" ] ~docv:"KERNEL"
        ~doc:
          "Benchmark kernel to evaluate (case-insensitive; default \
           $(b,idct), the paper's IEEE-1180 inverse DCT).  Registered \
           kernels: $(b,idct), $(b,fir8), $(b,matmul8).  Unknown names \
           fail with the list of valid kernels.")

(* A tool restriction must stay inside the kernel's inventory — a tool
   the kernel does not implement is a usage error, not an empty
   artifact. *)
let check_kernel_tools kernel = function
  | None -> ()
  | Some ts ->
      let have = Core.Kernel.tools kernel in
      List.iter
        (fun t ->
          if not (List.mem t have) then begin
            Printf.eprintf "hlsvhc: kernel %s has no %s designs (tools: %s)\n"
              (Core.Kernel.name kernel)
              (Core.Design.tool_name t)
              (String.concat ", " (List.map Core.Design.tool_name have));
            exit 2
          end)
        ts

let kernel_inventory kernel tool =
  match Core.Kernel.inventory kernel tool with
  | Some inv -> inv
  | None ->
      Printf.eprintf "hlsvhc: kernel %s has no %s designs (tools: %s)\n"
        (Core.Kernel.name kernel)
        (Core.Design.tool_name tool)
        (String.concat ", "
           (List.map Core.Design.tool_name (Core.Kernel.tools kernel)));
      exit 2

let opt_flag =
  Arg.(value & flag & info [ "opt"; "optimized" ] ~doc:"Use the optimized design.")

let jobs_opt =
  Arg.(
    value
    & opt (some int) None
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Evaluation worker domains (default: \\$(b,HLSVHC_JOBS) or the \
           machine's recommended domain count).  Results are identical for \
           any job count.")

let trace_opt =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record a span trace of the measurement pipeline (per-stage wall \
           times, netlist/schedule sizes, cache counters) and write it as \
           JSON to $(docv).  Summarize with $(b,hlsvhc stats) $(docv).  \
           Tracing does not change any printed artifact.")

let store_opt =
  Arg.(
    value
    & opt (some string) None
    & info [ "store" ] ~docv:"DIR"
        ~doc:
          "Back the measurement cache with a persistent content-addressed \
           result store rooted at $(docv) (created if missing).  Results \
           survive restarts and are shared with every other client of the \
           same directory — a warm second run re-reads every point instead \
           of re-measuring it.  Entries are validated (schema version, \
           checksum, key) on read; invalid ones are re-measured.")

(* Attach the persistent store before any evaluation fans out; a store
   that cannot be opened is a usage error, not a measurement result. *)
let attach_store = function
  | None -> ()
  | Some dir -> (
      match Store.attach dir with
      | Ok _ -> ()
      | Error e ->
          Printf.eprintf "hlsvhc: --store %s: %s\n" dir e;
          exit 2)

let keep_going_flag =
  Arg.(
    value & flag
    & info [ "k"; "keep-going" ]
        ~doc:
          "Do not abort the sweep on a failing design point: record its \
           typed error, keep measuring every other point, print a failure \
           summary on stderr and exit nonzero.  Without this flag the \
           first failure aborts the run (fail-fast).")

let fault_opt =
  Arg.(
    value
    & opt (some string) None
    & info [ "fault" ] ~docv:"SPEC"
        ~doc:
          "Inject a deterministic fault into the flow (for testing the \
           resilience layer): $(docv) is FAULT:TARGET[:SEED] with FAULT one \
           of $(b,engine-crash), $(b,stall), $(b,poison), $(b,protocol), \
           $(b,crash@STAGE), or — for the serve daemon's connection paths — \
           $(b,slow-client), $(b,conn-drop) or $(b,shed) (SEED bounds how \
           many connections fire, 0 = all), and TARGET a Tool/label \
           substring ($(b,*) for every design; unused by the connection \
           faults).  The $(b,HLSVHC_FAULT) environment variable is \
           equivalent.")

(* Arm the fault-injection harness from --fault, else from HLSVHC_FAULT;
   a malformed spec is a usage error, not a measurement result. *)
let arm_fault = function
  | Some s -> (
      match Core.Faultinject.parse s with
      | Ok spec -> Core.Faultinject.arm spec
      | Error e ->
          Printf.eprintf "hlsvhc: --fault %S: %s\n" s e;
          exit 2)
  | None -> (
      match Core.Faultinject.load_env () with
      | Ok _ -> ()
      | Error e ->
          Printf.eprintf "hlsvhc: %s\n" e;
          exit 2)

(* The keep-going epilogue: the artifact went to stdout already; the
   failure summary goes to stderr and the process exits nonzero so sweep
   scripts cannot mistake a partial artifact for a complete one. *)
let finish_failures = function
  | [] -> ()
  | failures ->
      prerr_string (Core.Flow.render_failure_summary failures);
      exit 1

(* Run [f] with tracing enabled when [trace] names a file; the spans are
   drained and written after [f] finishes, even if it raises. *)
let with_trace trace f =
  match trace with
  | None -> f ()
  | Some file ->
      Core.Trace.set_enabled true;
      Fun.protect
        ~finally:(fun () ->
          Core.Trace.set_enabled false;
          let spans = Core.Trace.drain () in
          Core.Trace.write_json file spans;
          Printf.eprintf "trace: %d spans -> %s\n%!" (List.length spans) file)
        f

let pick_design kernel tool optimized =
  let inv = kernel_inventory kernel tool in
  if optimized then inv.Core.Kernel.inv_optimized
  else inv.Core.Kernel.inv_initial

let table1_cmd =
  let run () = print_string (Core.Table1.render ()) in
  Cmd.v (Cmd.info "table1" ~doc:"Print Table I (tools under evaluation).")
    Term.(const run $ const ())

let table2_cmd =
  let run kernel tools jobs trace keep_going fault store =
    arm_fault fault;
    attach_store store;
    check_kernel_tools kernel tools;
    let failures =
      with_trace trace (fun () ->
          if keep_going then (
            let out, failures =
              Core.Table2.render_result ?jobs ?tools ~kernel ()
            in
            print_string out;
            failures)
          else (
            print_string (Core.Table2.render ?jobs ?tools ~kernel ());
            []))
    in
    finish_failures failures
  in
  Cmd.v
    (Cmd.info "table2"
       ~doc:"Measure every initial/optimized design and print Table II.")
    Term.(
      const run $ kernel_opt $ tools_opt $ jobs_opt $ trace_opt
      $ keep_going_flag $ fault_opt $ store_opt)

(* --tool (repeatable) and --tools (comma list) merge, first mention
   first, duplicates dropped. *)
let merge_tools repeated list_opt =
  let merged = repeated @ Option.value list_opt ~default:[] in
  let merged =
    List.fold_left
      (fun acc t -> if List.mem t acc then acc else acc @ [ t ])
      [] merged
  in
  match merged with [] -> None | ts -> Some ts

let fig1_cmd =
  let tool_rep =
    Arg.(value & opt_all tool_conv [] & info [ "tool" ] ~docv:"TOOL"
         ~doc:"Restrict to one tool (repeatable).")
  in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"OUT"
          ~doc:
            "Also write the points (tool, label, area, throughput, fmax) as \
             JSON to $(docv), atomically — the machine-readable twin of the \
             ASCII scatter, consumed by DSE overlays and external plotting.")
  in
  let run kernel tool_rep tools jobs trace keep_going json fault store =
    arm_fault fault;
    attach_store store;
    let tools = merge_tools tool_rep tools in
    check_kernel_tools kernel tools;
    let failures =
      with_trace trace (fun () ->
          let series, failures =
            if keep_going then Core.Fig1.compute_result ?jobs ?tools ~kernel ()
            else (Core.Fig1.compute ?jobs ?tools ~kernel (), [])
          in
          print_string (Core.Fig1.render_series ~kernel series);
          Option.iter
            (fun path ->
              Core.Fig1.write_json ~kernel path series;
              Printf.eprintf "fig1: wrote %s\n%!" path)
            json;
          failures)
    in
    finish_failures failures
  in
  Cmd.v
    (Cmd.info "fig1" ~doc:"Run the DSE sweeps and print the Fig. 1 scatter.")
    Term.(
      const run $ kernel_opt $ tool_rep $ tools_opt $ jobs_opt $ trace_opt
      $ keep_going_flag $ json $ fault_opt $ store_opt)

let comply_cmd =
  let blocks =
    Arg.(value & opt int 500 & info [ "blocks" ] ~doc:"Blocks per condition (500 is about the statistical minimum).")
  in
  let run kernel blocks jobs trace keep_going fault =
    arm_fault fault;
    let failures =
      with_trace trace (fun () ->
          let spec = Core.Kernel.spec kernel in
          let designs =
            List.map (Core.Kernel.optimized kernel) (Core.Kernel.tools kernel)
          in
          (* The pass text names the procedure the kernel's spec runs:
             the IEEE 1180-1990 statistical test for the IDCT, bit-true
             against the golden reference for the extension kernels. *)
          let pass_text =
            if Core.Kernel.name kernel = "idct" then "IEEE 1180-1990 PASS"
            else "bit-true PASS"
          in
          let verdict_line (d : Core.Design.t) verdict =
            Printf.printf "%-12s optimized: %s\n%!"
              (Core.Design.tool_name d.Core.Design.tool)
              verdict
          in
          if keep_going then (
            let outcomes =
              Core.Evaluate.compliance_all_result ?jobs ~blocks ~spec designs
            in
            List.iter
              (fun (d, r) ->
                match r with
                | Ok ok -> verdict_line d (if ok then pass_text else "FAIL")
                | Error _ -> verdict_line d "ERROR")
              outcomes;
            List.filter_map
              (fun (_, r) ->
                match r with Error e -> Some e | Ok _ -> None)
              outcomes)
          else (
            List.iter
              (fun (d, ok) -> verdict_line d (if ok then pass_text else "FAIL"))
              (Core.Evaluate.compliance_all ?jobs ~blocks ~spec designs);
            []))
    in
    finish_failures failures
  in
  Cmd.v
    (Cmd.info "comply"
       ~doc:
         "Accuracy test of every optimized design (IEEE 1180-1990 for the \
          IDCT, bit-true for extension kernels).")
    Term.(
      const run $ kernel_opt $ blocks $ jobs_opt $ trace_opt $ keep_going_flag
      $ fault_opt)

let emit_cmd =
  let run kernel tool optimized =
    let d = pick_design kernel tool optimized in
    print_string d.Core.Design.listing;
    print_newline ()
  in
  Cmd.v
    (Cmd.info "emit" ~doc:"Print a design's source listing.")
    Term.(const run $ kernel_opt $ tool_pos $ opt_flag)

let verilog_cmd =
  let run kernel tool optimized =
    let d = pick_design kernel tool optimized in
    match d.Core.Design.impl with
    | Core.Design.Stream c -> print_string (Hw.Verilog.emit (Lazy.force c))
    | Core.Design.Pcie p ->
        print_string
          (Hw.Verilog.emit (Lazy.force p.Core.Design.system).Maxj.Manager.kernel)
  in
  Cmd.v
    (Cmd.info "verilog"
       ~doc:"Emit the synthesized design as structural Verilog.")
    Term.(const run $ kernel_opt $ tool_pos $ opt_flag)

let sim_cmd =
  let run kernel tool optimized =
    let d = pick_design kernel tool optimized in
    let m = Core.Evaluate.measure ~spec:(Core.Kernel.spec kernel) d in
    Format.printf "%s %s (%s)@.  %a@.  Q = %.0f OPS/(LUT+FF)@."
      (Core.Design.tool_name tool) d.Core.Design.label
      d.Core.Design.config_desc Core.Metrics.pp_measured m
      (Core.Metrics.quality m)
  in
  Cmd.v
    (Cmd.info "sim" ~doc:"Simulate and synthesize one design; print metrics.")
    Term.(const run $ kernel_opt $ tool_pos $ opt_flag)

let waves_cmd =
  let out =
    Arg.(value & opt string "waves.vcd" & info [ "o"; "output" ] ~doc:"Output VCD file.")
  in
  let cycles =
    Arg.(value & opt int 64 & info [ "cycles" ] ~doc:"Cycles to record.")
  in
  let run kernel tool optimized out cycles =
    let d = pick_design kernel tool optimized in
    match d.Core.Design.impl with
    | Core.Design.Pcie _ -> prerr_endline "MaxJ kernels: use the stream simulators"
    | Core.Design.Stream c ->
        let circuit = Lazy.force c in
        let sim = Hw.Sim.create circuit in
        Hw.Sim.reset sim;
        (* drive one matrix of the kernel's own stimulus so the trace
           shows real activity *)
        let m =
          match (Core.Kernel.spec kernel).Core.Flow.stimulus 1 with
          | m :: _ -> m
          | [] -> Axis.Block.create ()
        in
        let w = Hw.Waves.create sim in
        Hw.Sim.set sim Axis.Stream.m_ready 1;
        for cyc = 0 to cycles - 1 do
          let beat = cyc mod 8 in
          Hw.Sim.set sim Axis.Stream.s_valid 1;
          Hw.Sim.set sim Axis.Stream.s_last (if beat = 7 then 1 else 0);
          for l = 0 to 7 do
            Hw.Sim.set sim (Axis.Stream.s_data l)
              (Axis.Block.get m ~row:beat ~col:l)
          done;
          Hw.Waves.step w
        done;
        Hw.Waves.save w out;
        Printf.printf "wrote %d cycles of %s to %s\n" cycles
          circuit.Hw.Netlist.circuit_name out
  in
  Cmd.v
    (Cmd.info "waves" ~doc:"Record a VCD waveform of a design under stream traffic.")
    Term.(const run $ kernel_opt $ tool_pos $ opt_flag $ out $ cycles)

let sweep_cmd =
  let run kernel tool jobs trace keep_going fault store =
    arm_fault fault;
    attach_store store;
    let point_line (d : Core.Design.t) (m : Core.Metrics.measured) =
      Printf.printf "%-34s A=%7d  P=%8.2f MOPS  f=%7.2f MHz\n%!"
        d.Core.Design.label m.Core.Metrics.area m.Core.Metrics.throughput_mops
        m.Core.Metrics.fmax_mhz
    in
    let failures =
      with_trace trace (fun () ->
          let spec = Core.Kernel.spec kernel in
          let designs = (kernel_inventory kernel tool).Core.Kernel.inv_sweep in
          if keep_going then (
            let outcomes =
              Core.Evaluate.measure_all_result ?jobs ~matrices:3 ~spec designs
            in
            List.iter2
              (fun d r ->
                match r with Ok m -> point_line d m | Error _ -> ())
              designs outcomes;
            List.filter_map
              (function Error e -> Some e | Ok _ -> None)
              outcomes)
          else (
            List.iter2 point_line designs
              (Core.Evaluate.measure_all ?jobs ~matrices:3 ~spec designs);
            []))
    in
    finish_failures failures
  in
  Cmd.v
    (Cmd.info "sweep" ~doc:"Measure every configuration of one tool.")
    Term.(
      const run $ kernel_opt $ tool_pos $ jobs_opt $ trace_opt
      $ keep_going_flag $ fault_opt $ store_opt)

let dse_cmd =
  let strategy_conv =
    Arg.conv
      ( (fun s ->
          match Dse.Strategy.parse s with
          | Ok v -> Ok v
          | Error e -> Error (`Msg e)),
        fun ppf s -> Format.pp_print_string ppf (Dse.Strategy.to_string s) )
  in
  let objective_conv =
    Arg.conv
      ( (fun s ->
          match Dse.Engine.parse_objective s with
          | Ok v -> Ok v
          | Error e -> Error (`Msg e)),
        fun ppf o -> Format.pp_print_string ppf (Dse.Engine.objective_name o) )
  in
  let strategy =
    Arg.(
      value
      & opt strategy_conv Dse.Strategy.Exhaustive
      & info [ "strategy" ] ~docv:"STRATEGY"
          ~doc:
            "Search strategy: $(b,exhaustive) (the full space, sweep \
             order), $(b,random) (a seeded permutation up to the budget) \
             or $(b,hillclimb) (seeded multi-restart neighborhood ascent \
             on the objective).")
  in
  let seed =
    Arg.(
      value & opt int 0
      & info [ "seed" ] ~docv:"N"
          ~doc:
            "PRNG seed for random/hillclimb.  The same seed gives a \
             bit-identical run — candidate sequence and frontier — for \
             any $(b,--jobs) count.")
  in
  let budget =
    Arg.(
      value
      & opt (some int) None
      & info [ "budget" ] ~docv:"K"
          ~doc:
            "Evaluation budget: at most $(docv) distinct candidates are \
             measured (memoized revisits are free).  Default: the whole \
             space.")
  in
  let objective =
    Arg.(
      value
      & opt objective_conv Dse.Engine.Quality
      & info [ "objective" ] ~docv:"OBJ"
          ~doc:
            "Hillclimb objective: $(b,quality) (Q = P/A), $(b,throughput) \
             or $(b,area).")
  in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"OUT"
          ~doc:"Write the run record (points, frontier, stats) to $(docv).")
  in
  let check_fig1 =
    Arg.(
      value & flag
      & info [ "check-fig1" ]
          ~doc:
            "Cross-check against Fig. 1: the frontier of the exhaustive \
             strategy over the paper's sweep space must reproduce exactly \
             the Pareto-optimal subset of the Fig. 1 point set.  Requires \
             $(b,--strategy exhaustive) and no $(b,--budget); exits \
             nonzero on a mismatch.")
  in
  let transfo_flag =
    Arg.(
      value & flag
      & info [ "transfo" ]
          ~doc:
            "Extend every selected tool's space with a \
             transformation-sequence axis: one extra chart enumerating \
             the initial design plus verified netlist-rewrite scripts \
             ($(b,strength_reduce), $(b,narrow) and their composition).  \
             Derived candidates are re-derived and equivalence-checked \
             when first measured.")
  in
  let run kernel strategy seed budget objective tools jobs json check_fig1
      transfo trace keep_going fault store =
    arm_fault fault;
    attach_store store;
    check_kernel_tools kernel tools;
    if check_fig1 && (strategy <> Dse.Strategy.Exhaustive || budget <> None)
    then begin
      Printf.eprintf
        "hlsvhc dse: --check-fig1 requires --strategy exhaustive and no \
         --budget (the check is over the full sweep space)\n";
      exit 2
    end;
    if check_fig1 && transfo then begin
      Printf.eprintf
        "hlsvhc dse: --check-fig1 is over the paper's sweep space; it \
         cannot be combined with --transfo\n";
      exit 2
    end;
    let failures =
      with_trace trace (fun () ->
          let selected =
            match tools with
            | Some ts -> ts
            | None -> Core.Kernel.tools kernel
          in
          let spaces = List.map (Dse.Space.of_tool ~kernel) selected in
          let spaces =
            if transfo then List.map Dse.Space.with_scripts spaces
            else spaces
          in
          let result =
            Dse.Engine.run ?jobs ~keep_going ?budget ~seed ~strategy
              ~objective spaces
          in
          print_string (Dse.Report.render result);
          Option.iter
            (fun path ->
              Dse.Report.write_json path result;
              Printf.eprintf "dse: wrote %s\n%!" path)
            json;
          if check_fig1 then begin
            match
              Dse.Report.crosscheck_fig1 ?jobs ~tools:selected ~kernel result
            with
            | Ok msg -> print_string (msg ^ "\n")
            | Error diff ->
                prerr_string diff;
                exit 1
          end;
          List.filter_map
            (fun (ev : Dse.Engine.evaluated) ->
              match ev.Dse.Engine.ev_outcome with
              | Error e -> Some e
              | Ok _ -> None)
            result.Dse.Engine.res_evaluated)
    in
    finish_failures failures
  in
  Cmd.v
    (Cmd.info "dse"
       ~doc:
         "Search the configuration space (exhaustive/random/hillclimb \
          under an evaluation budget) and print the explored cloud with \
          its Pareto frontier.")
    Term.(
      const run $ kernel_opt $ strategy $ seed $ budget $ objective
      $ tools_opt $ jobs_opt $ json $ check_fig1 $ transfo_flag $ trace_opt
      $ keep_going_flag $ fault_opt $ store_opt)

let transfo_cmd =
  let list_flag =
    Arg.(
      value & flag
      & info [ "list" ]
          ~doc:
            "List the transformation catalogue (names, aliases, \
             arguments, preconditions) and exit.")
  in
  let script_opt =
    Arg.(
      value
      & opt (some string) None
      & info [ "script" ] ~docv:"SCRIPT"
          ~doc:
            "Semicolon-separated transformation sequence, e.g. \
             $(b,\"retime 2; strength_reduce\").  Every step is verified \
             against its obligation and crosschecked through all three \
             simulation engines before the next one runs.")
  in
  let subject_opt =
    Arg.(
      value & opt string "row"
      & info [ "subject" ] ~docv:"SUBJECT"
          ~doc:
            "What to transform: $(b,row) (the bare IDCT row datapath, \
             combinational), $(b,arch) (the flat Chisel matrix \
             architecture, accepts the staging transformations), or \
             $(b,TOOL)[$(b,/optimized)] (a registered design's stream \
             netlist, e.g. $(b,chisel) or $(b,verilog/optimized)).")
  in
  let cycles_opt =
    Arg.(
      value & opt int 256
      & info [ "cycles" ] ~docv:"N"
          ~doc:"Random-stimulus cycles per verification obligation.")
  in
  let seed_opt =
    Arg.(
      value & opt int 7
      & info [ "seed" ] ~docv:"N" ~doc:"Stimulus seed for the verifiers.")
  in
  let out_opt =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Write the transformed design as structural Verilog to $(docv).")
  in
  let parse_subject spec =
    match String.lowercase_ascii spec with
    | "row" ->
        Transfo.Subject.of_circuit
          (Chisel.Idct_gen.row_comb Chisel.Idct_gen.Inferred ~name:"row")
    | "arch" ->
        Transfo.Subject.of_arch
          (Chisel.Idct_gen.arch Chisel.Idct_gen.Inferred ~name:"chisel_arch"
             ())
    | spec -> (
        let tool_str, optimized =
          match String.index_opt spec '/' with
          | None -> (spec, false)
          | Some i -> (
              let variant =
                String.sub spec (i + 1) (String.length spec - i - 1)
              in
              ( String.sub spec 0 i,
                match variant with
                | "optimized" | "opt" -> true
                | "initial" -> false
                | _ ->
                    Printf.eprintf
                      "hlsvhc transfo: unknown design variant %S (expected \
                       initial or optimized)\n"
                      variant;
                    exit 2 ))
        in
        match Core.Registry.parse_tool tool_str with
        | None ->
            Printf.eprintf "hlsvhc transfo: %s; or use %s\n"
              (Core.Registry.unknown_tool_msg tool_str)
              "\"row\" / \"arch\"";
            exit 2
        | Some t -> (
            let d =
              if optimized then Core.Registry.optimized t
              else Core.Registry.initial t
            in
            match d.Core.Design.impl with
            | Core.Design.Stream l ->
                Transfo.Subject.of_circuit (Core.Design.force l)
            | Core.Design.Pcie _ ->
                Printf.eprintf
                  "hlsvhc transfo: %s is a PCIe system design; \
                   transformations operate on stream netlists\n"
                  (Core.Design.tool_name t);
                exit 2))
  in
  let run list_catalog script subject cycles seed out trace =
    if list_catalog then
      List.iter
        (fun (module T : Transfo.Catalog.TRANSFO) ->
          let aliases =
            match T.aliases with
            | [] -> ""
            | a -> " (aliases: " ^ String.concat ", " a ^ ")"
          in
          Printf.printf "%s%s%s\n    %s\n    precondition: %s\n" T.name
            (Transfo.Catalog.arg_doc T.arg)
            aliases T.description T.precondition)
        Transfo.Catalog.all
    else
      match script with
      | None ->
          Printf.eprintf
            "hlsvhc transfo: nothing to do (use --script SCRIPT, or --list)\n";
          exit 2
      | Some src -> (
          let script =
            match Transfo.Script.parse src with
            | Ok s -> s
            | Error e ->
                Printf.eprintf "hlsvhc transfo: --script: %s\n" e;
                exit 2
          in
          let subject = parse_subject subject in
          match
            with_trace trace (fun () ->
                Transfo.Engine.run ~cycles ~seed script subject)
          with
          | Error (Transfo.Engine.Unknown_transfo _ as e) ->
              Printf.eprintf "hlsvhc transfo: %s\n"
                (Transfo.Engine.error_to_string e);
              exit 2
          | Error e ->
              Printf.eprintf "hlsvhc transfo: %s\n"
                (Transfo.Engine.error_to_string e);
              exit 1
          | Ok r ->
              List.iter
                (fun (sr : Transfo.Engine.step_report) ->
                  Printf.printf "%-28s %6d -> %6d nodes  [%s] verified\n"
                    sr.Transfo.Engine.sr_step sr.Transfo.Engine.sr_nodes_before
                    sr.Transfo.Engine.sr_nodes_after
                    sr.Transfo.Engine.sr_obligation)
                r.Transfo.Engine.rep_steps;
              let subj = r.Transfo.Engine.rep_subject in
              let latency =
                if subj.Transfo.Subject.latency_added > 0 then
                  Printf.sprintf ", +%d cycles latency"
                    subj.Transfo.Subject.latency_added
                else ""
              in
              Printf.printf "result: %s (%d nodes%s)\n"
                subj.Transfo.Subject.circuit.Hw.Netlist.circuit_name
                (Hw.Netlist.num_nodes subj.Transfo.Subject.circuit)
                latency;
              Option.iter
                (fun path ->
                  let oc = open_out path in
                  output_string oc
                    (Hw.Verilog.emit subj.Transfo.Subject.circuit);
                  close_out oc;
                  Printf.eprintf "transfo: wrote %s\n%!" path)
                out)
  in
  Cmd.v
    (Cmd.info "transfo"
       ~doc:
         "Apply a scripted, equivalence-verified transformation sequence \
          to a design.")
    Term.(
      const run $ list_flag $ script_opt $ subject_opt $ cycles_opt
      $ seed_opt $ out_opt $ trace_opt)

let serve_cmd =
  let socket =
    Arg.(
      required
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:"Unix domain socket to listen on (created; unlinked on exit).")
  in
  let max_conns =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-conns" ] ~docv:"N"
          ~doc:
            "Drain after serving $(docv) connections (soak tests and \
             benchmarks); default: serve until a $(b,shutdown) request or \
             SIGTERM/SIGINT.")
  in
  let conn_workers =
    Arg.(
      value & opt int 4
      & info [ "conn-workers" ] ~docv:"N"
          ~doc:
            "Connection-handling worker domains: a slow client occupies one \
             of $(docv) slots, never the accept loop.")
  in
  let conn_timeout =
    Arg.(
      value & opt float 30.0
      & info [ "conn-timeout" ] ~docv:"SECONDS"
          ~doc:
            "Per-connection idle read/write deadline: a client that stays \
             silent (or stops reading) this long is answered nothing, \
             closed, and counted in the $(b,timeouts) stat.")
  in
  let batch_deadline =
    Arg.(
      value & opt float 120.0
      & info [ "batch-deadline" ] ~docv:"SECONDS"
          ~doc:
            "Wall-clock budget for receiving one whole batch — bounds a \
             client trickling bytes to dodge the idle deadline.")
  in
  let max_inflight =
    Arg.(
      value & opt int 16
      & info [ "max-inflight" ] ~docv:"N"
          ~doc:
            "Load shedding: beyond $(docv) accepted-but-unfinished \
             connections the daemon answers $(b,busy\\\\tretry-after\\\\tMS) \
             immediately instead of queueing unboundedly.")
  in
  let max_batch =
    Arg.(
      value & opt int 256
      & info [ "max-batch" ] ~docv:"N"
          ~doc:
            "Most request lines accepted in one batch; larger batches \
             answer a single $(b,bad) line.")
  in
  let run socket jobs store max_conns conn_workers conn_timeout batch_deadline
      max_inflight max_batch fault trace =
    arm_fault fault;
    let store_t =
      match store with
      | None -> None
      | Some dir -> (
          match Store.attach dir with
          | Ok t -> Some t
          | Error e ->
              Printf.eprintf "hlsvhc serve: --store %s: %s\n" dir e;
              exit 2)
    in
    Printf.eprintf
      "hlsvhc serve: listening on %s (store: %s, jobs: %s, workers: %d, \
       conn-timeout: %.1fs, max-inflight: %d)\n\
       %!"
      socket
      (match store_t with Some t -> Store.dir t | None -> "none")
      (match jobs with
      | Some j -> string_of_int j
      | None -> "default")
      conn_workers conn_timeout max_inflight;
    let counters =
      with_trace trace (fun () ->
          Serve.run
            {
              (Serve.default_config ~socket_path:socket) with
              jobs;
              store = store_t;
              max_conns;
              conn_workers;
              conn_timeout;
              batch_deadline;
              max_inflight;
              max_batch;
            })
    in
    Printf.eprintf
      "hlsvhc serve: done — %d connections, %d evals (%d errors, %d memo \
       hits, %d timeouts, %d shed, %d drops)\n\
       %!"
      (Atomic.get counters.Serve.conns)
      (Atomic.get counters.Serve.evals)
      (Atomic.get counters.Serve.eval_errors)
      (Atomic.get counters.Serve.memo_hits)
      (Atomic.get counters.Serve.conn_timeouts)
      (Atomic.get counters.Serve.shed)
      (Atomic.get counters.Serve.drops)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the evaluation daemon: accept batched evaluation requests \
          over a Unix socket on a bounded worker pool (per-connection \
          deadlines, load shedding, graceful drain on SIGTERM), fan each \
          batch onto the domain pool, answer with typed results, and (with \
          $(b,--store)) share one persistent warm cache across clients and \
          restarts.")
    Term.(
      const run $ socket $ jobs_opt $ store_opt $ max_conns $ conn_workers
      $ conn_timeout $ batch_deadline $ max_inflight $ max_batch $ fault_opt
      $ trace_opt)

(* The store janitor: fsck validates entries the way a read would and
   can delete the invalid ones; gc evicts deterministically under an
   entry/byte budget.  Both are safe against a live daemon — entries
   are atomic and re-healed on miss. *)
let store_dir_pos =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"DIR")

let store_fsck_cmd =
  let repair =
    Arg.(
      value & flag
      & info [ "repair" ]
          ~doc:
            "Delete every invalid entry (safe: readers re-measure and heal \
             on the next miss).")
  in
  let run dir repair =
    match Store.fsck ~repair dir with
    | Error e ->
        Printf.eprintf "hlsvhc store fsck: %s\n" e;
        exit 2
    | Ok r ->
        Printf.printf "%s: %d entries, %d valid, %d invalid\n" dir
          r.Store.fk_total r.Store.fk_valid
          (List.length r.Store.fk_invalid);
        List.iter
          (fun { Store.fi_file; fi_reason } ->
            Printf.printf "invalid: %s (%s)\n" fi_file fi_reason)
          r.Store.fk_invalid;
        if repair then
          Printf.printf "repaired: deleted %d invalid entries\n"
            r.Store.fk_repaired;
        if r.Store.fk_invalid <> [] && not repair then exit 1
  in
  Cmd.v
    (Cmd.info "fsck"
       ~doc:
         "Validate every entry of a result store (magic, schema version, \
          checksum, metrics parse, filename-addresses-key); exits nonzero \
          when invalid entries remain.")
    Term.(const run $ store_dir_pos $ repair)

let store_gc_cmd =
  let max_entries =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-entries" ] ~docv:"N"
          ~doc:"Keep at most $(docv) entries (the newest by mtime).")
  in
  let max_bytes =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-bytes" ] ~docv:"B"
          ~doc:"Keep at most $(docv) bytes of entries (the newest by mtime).")
  in
  let run dir max_entries max_bytes =
    match Store.gc ?max_entries ?max_bytes dir with
    | Error e ->
        Printf.eprintf "hlsvhc store gc: %s\n" e;
        exit 2
    | Ok r ->
        Printf.printf
          "%s: kept %d of %d entries (%d -> %d bytes), deleted %d\n" dir
          r.Store.gr_kept r.Store.gr_total r.Store.gr_bytes_before
          r.Store.gr_bytes_after r.Store.gr_deleted
  in
  Cmd.v
    (Cmd.info "gc"
       ~doc:
         "Evict store entries oldest-mtime-first (ties by filename — \
          deterministic) down to an entry and/or byte budget.  Safe under \
          a live daemon: evicted entries re-heal on the next miss.")
    Term.(const run $ store_dir_pos $ max_entries $ max_bytes)

let store_cmd =
  Cmd.group
    (Cmd.info "store"
       ~doc:
         "Janitor commands for a persistent result store directory \
          ($(b,fsck), $(b,gc)).")
    [ store_fsck_cmd; store_gc_cmd ]

let stats_cmd =
  let file =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"TRACE.json")
  in
  let run file =
    match Core.Trace.render_stats file with
    | s -> print_string s
    | exception Sys_error e ->
        Printf.eprintf "hlsvhc stats: %s\n" e;
        exit 1
    | exception Failure e ->
        Printf.eprintf "hlsvhc stats: cannot parse %s: %s\n" file e;
        exit 1
    | exception e ->
        Printf.eprintf "hlsvhc stats: unexpected error reading %s: %s\n" file
          (Printexc.to_string e);
        exit 1
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Summarize a trace recorded with --trace: per-stage wall-time \
          breakdown and counter totals.")
    Term.(const run $ file)

let main =
  Cmd.group
    (Cmd.info "hlsvhc" ~version:"1.0"
       ~doc:
         "Reproduction of 'High-Level Synthesis versus Hardware \
          Construction' (DATE 2023).")
    [ table1_cmd; table2_cmd; fig1_cmd; comply_cmd; dse_cmd; emit_cmd;
      verilog_cmd; sim_cmd; sweep_cmd; transfo_cmd; serve_cmd; store_cmd;
      waves_cmd; stats_cmd ]

let () = exit (Cmd.eval main)
