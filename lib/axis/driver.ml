open Hw

type result = {
  outputs : Idct.Block.t list;
  latency : int;
  periodicity : int;
  cycles : int;
  violations : Monitor.violation list;
}

let sign_extend w v =
  if v land (1 lsl (w - 1)) <> 0 then v - (1 lsl w) else v

type engine = Compiled | Reference

(* The engine as a record of the four operations the testbench needs.
   [Compiled] is [Hw.Sim] (the default, and the historical behavior);
   [Reference] is the retained interpreter, kept drivable end to end so
   the flow can degrade onto it when the compiled engine fails on a
   design (see Core.Flow). *)
type ops = {
  ops_set : string -> int -> unit;
  ops_get : string -> int;
  ops_step : unit -> unit;
  ops_schedule : string * int;  (* hook counter name and value *)
}

let ops_of_engine engine circuit =
  match engine with
  | Compiled ->
      let sim = Sim.create circuit in
      Sim.reset sim;
      {
        ops_set = Sim.set sim;
        ops_get = Sim.get sim;
        ops_step = (fun () -> Sim.step sim);
        ops_schedule = ("sim_thunks", Sim.compiled_nodes sim);
      }
  | Reference ->
      let sim = Interp.create circuit in
      Interp.reset sim;
      {
        ops_set = Interp.set sim;
        ops_get = Interp.get sim;
        ops_step = (fun () -> Interp.step sim);
        ops_schedule = ("interp_nodes", Netlist.num_nodes circuit);
      }

let run ?(engine = Compiled) ?(input_gap = 0) ?(ready_pattern = fun _ -> true)
    ?timeout ?(hook = fun _ _ -> ()) circuit matrices =
  if not (Stream.is_wrapped circuit) then
    failwith "Driver.run: circuit does not follow the AXI-Stream convention";
  let n_mat = List.length matrices in
  let lanes = Stream.lanes in
  let timeout =
    match timeout with
    | Some t -> t
    | None ->
        (* The base budget assumes the consumer is always ready.  A slow
           but correct [ready_pattern] stretches the drain phase by the
           inverse of its duty cycle, so sample the pattern over a window
           and scale the default accordingly (patterns are pure functions
           of the cycle number).  The duty cycle is clamped so that a
           pattern that is never ready in the sample still terminates. *)
        let base = (200 * n_mat) + 2000 + (input_gap * n_mat) in
        let window = 1024 in
        let ready = ref 0 in
        for c = 0 to window - 1 do
          if ready_pattern c then incr ready
        done;
        let duty = Float.max 0.01 (float_of_int !ready /. float_of_int window) in
        int_of_float (ceil (float_of_int base /. duty))
  in
  let sim = ops_of_engine engine circuit in
  (let name, v = sim.ops_schedule in
   hook name v);
  let inputs = Array.of_list matrices in
  (* Input source state. *)
  let mat_idx = ref 0 and beat_idx = ref 0 and gap_left = ref 0 in
  (* Output collection state. *)
  let collected = ref [] in
  let current_rows = ref [] in
  let first_in_cycle = Array.make n_mat (-1) in
  let last_out_cycle = Array.make n_mat (-1) in
  let out_mat = ref 0 in
  let trace = ref [] in
  let cycle = ref 0 in
  while !out_mat < n_mat && !cycle < timeout do
    (* Drive inputs for this cycle. *)
    let driving = !mat_idx < n_mat && !gap_left = 0 in
    sim.ops_set Stream.s_valid (if driving then 1 else 0);
    sim.ops_set Stream.s_last (if driving && !beat_idx = lanes - 1 then 1 else 0);
    for c = 0 to lanes - 1 do
      let v =
        if driving then
          Idct.Block.get inputs.(!mat_idx) ~row:!beat_idx ~col:c
        else 0
      in
      sim.ops_set (Stream.s_data c) v
    done;
    let ready = ready_pattern !cycle in
    sim.ops_set Stream.m_ready (if ready then 1 else 0);
    (* Observe handshakes. *)
    let s_ready = sim.ops_get Stream.s_ready = 1 in
    let m_valid = sim.ops_get Stream.m_valid = 1 in
    let m_last = sim.ops_get Stream.m_last = 1 in
    let data =
      Array.init lanes (fun c ->
          sign_extend Stream.out_width (sim.ops_get (Stream.m_data c)))
    in
    trace :=
      {
        Monitor.cycle = !cycle;
        valid = m_valid;
        ready;
        last = m_last;
        data;
      }
      :: !trace;
    if driving && s_ready then begin
      if !beat_idx = 0 then first_in_cycle.(!mat_idx) <- !cycle;
      incr beat_idx;
      if !beat_idx = lanes then begin
        beat_idx := 0;
        incr mat_idx;
        gap_left := input_gap
      end
    end
    else if (not driving) && !gap_left > 0 then decr gap_left;
    if m_valid && ready then begin
      current_rows := Array.copy data :: !current_rows;
      if List.length !current_rows = lanes then begin
        let rows = Array.of_list (List.rev !current_rows) in
        collected := Idct.Block.of_rows rows :: !collected;
        if !out_mat < n_mat then last_out_cycle.(!out_mat) <- !cycle;
        incr out_mat;
        current_rows := []
      end
    end;
    sim.ops_step ();
    incr cycle
  done;
  if !out_mat < n_mat then
    failwith
      (Printf.sprintf
         "Driver.run(%s): timeout after %d cycles — collected %d/%d output \
          beats (%d/%d matrices), consumed %d/%d input beats"
         circuit.Netlist.circuit_name !cycle
         ((!out_mat * lanes) + List.length !current_rows)
         (n_mat * lanes) !out_mat n_mat
         ((!mat_idx * lanes) + !beat_idx)
         (n_mat * lanes));
  hook "cycles" !cycle;
  let latency =
    let last = n_mat - 1 in
    last_out_cycle.(last) - first_in_cycle.(last) + 1
  in
  let periodicity =
    if n_mat >= 2 then
      first_in_cycle.(n_mat - 1) - first_in_cycle.(n_mat - 2)
    else latency
  in
  {
    outputs = List.rev !collected;
    latency;
    periodicity;
    cycles = !cycle;
    violations = Monitor.check (List.rev !trace);
  }

let transform circuit matrix =
  match (run circuit [ matrix ]).outputs with
  | [ out ] -> out
  | _ -> assert false
