open Hw

type result = {
  outputs : Block.t list;
  latency : int;
  periodicity : int;
  cycles : int;
  violations : Monitor.violation list;
}

let sign_extend w v =
  if v land (1 lsl (w - 1)) <> 0 then v - (1 lsl w) else v

type engine = Compiled | Reference

(* The engine as a record of the four operations the testbench needs,
   lane-indexed.  [Compiled] is [Hw.Sim] (the default, and the historical
   behavior) — one levelized instance whose batch dimension carries all
   lanes, advanced by a single [step].  [Reference] is the retained
   interpreter, kept drivable end to end so the flow can degrade onto it
   when the compiled engine fails on a design (see Core.Flow); it has no
   batch dimension, so it becomes one instance per lane stepped in
   lockstep. *)
type ops = {
  ops_set : int -> string -> int -> unit;
  ops_get : int -> string -> int;
  ops_step : unit -> unit;
  ops_schedule : string * int;  (* hook counter name and value *)
}

let ops_of_engine engine circuit lanes =
  match engine with
  | Compiled ->
      let sim = Sim.create_batch ~batch:lanes circuit in
      Sim.reset sim;
      {
        ops_set = (fun lane -> Sim.set_lane sim ~lane);
        ops_get = (fun lane -> Sim.get_lane sim ~lane);
        ops_step = (fun () -> Sim.batch_step sim);
        ops_schedule = ("sim_thunks", Sim.compiled_nodes sim);
      }
  | Reference ->
      let sims = Array.init lanes (fun _ -> Interp.create circuit) in
      Array.iter Interp.reset sims;
      {
        ops_set = (fun lane -> Interp.set sims.(lane));
        ops_get = (fun lane -> Interp.get sims.(lane));
        ops_step = (fun () -> Array.iter Interp.step sims);
        ops_schedule = ("interp_nodes", Netlist.num_nodes circuit);
      }

let run ?(engine = Compiled) ?(batch = 1) ?(input_gap = 0)
    ?(ready_pattern = fun _ -> true) ?timeout ?(hook = fun _ _ -> ()) circuit
    matrices =
  if not (Stream.is_wrapped circuit) then
    failwith "Driver.run: circuit does not follow the AXI-Stream convention";
  if batch < 1 then invalid_arg "Driver.run: batch must be >= 1";
  let n_mat = List.length matrices in
  let lanes = Stream.lanes in
  (* Matrices are split across simulation lanes in contiguous chunks, so
     lane outputs concatenate back in order.  Every lane runs its own
     independent copy of the testbench below; only the clock is shared. *)
  let n_lanes = max 1 (min batch n_mat) in
  let chunk_start = Array.make n_lanes 0 and chunk_len = Array.make n_lanes 0 in
  let base = n_mat / n_lanes and rem = n_mat mod n_lanes in
  let pos = ref 0 in
  for l = 0 to n_lanes - 1 do
    chunk_start.(l) <- !pos;
    chunk_len.(l) <- (base + if l < rem then 1 else 0);
    pos := !pos + chunk_len.(l)
  done;
  let per_lane = if n_lanes = 0 then 0 else base + (if rem > 0 then 1 else 0) in
  (* The base budget assumes the consumer is always ready and is sized by
     the longest lane, not the whole stream — each lane only has to drain
     its own chunk.  A slow but correct [ready_pattern] stretches the
     drain phase by the inverse of its duty cycle, so sample the pattern
     over a window and scale the default accordingly (patterns are pure
     functions of the cycle number).  The duty cycle is clamped so that a
     pattern that is never ready in the sample still terminates. *)
  let duty =
    let window = 1024 in
    let ready = ref 0 in
    for c = 0 to window - 1 do
      if ready_pattern c then incr ready
    done;
    Float.max 0.01 (float_of_int !ready /. float_of_int window)
  in
  let timeout =
    match timeout with
    | Some t -> t
    | None ->
        let base = (200 * per_lane) + 2000 + (input_gap * per_lane) in
        int_of_float (ceil (float_of_int base /. duty))
  in
  let sim = ops_of_engine engine circuit n_lanes in
  (let name, v = sim.ops_schedule in
   hook name v);
  if n_lanes > 1 then hook "sim_batch" n_lanes;
  let inputs = Array.of_list matrices in
  (* Per-lane testbench state.  [mat_idx] is the absolute index into
     [inputs]; a lane is done when it reaches the end of its chunk. *)
  let mat_idx = Array.init n_lanes (fun l -> chunk_start.(l)) in
  let beat_idx = Array.make n_lanes 0 and gap_left = Array.make n_lanes 0 in
  let collected = Array.make n_lanes [] in
  let current_rows = Array.make n_lanes [] in
  let first_in_cycle = Array.make n_mat (-1) in
  let last_out_cycle = Array.make n_mat (-1) in
  let out_mat = Array.make n_lanes 0 in
  let traces = Array.make n_lanes [] in
  let cycle = ref 0 in
  let all_done () =
    let d = ref true in
    for l = 0 to n_lanes - 1 do
      if out_mat.(l) < chunk_len.(l) then d := false
    done;
    !d
  in
  while (not (all_done ())) && !cycle < timeout do
    let ready = ready_pattern !cycle in
    (* Drive inputs for this cycle, every lane. *)
    for l = 0 to n_lanes - 1 do
      let lane_end = chunk_start.(l) + chunk_len.(l) in
      let driving = mat_idx.(l) < lane_end && gap_left.(l) = 0 in
      sim.ops_set l Stream.s_valid (if driving then 1 else 0);
      sim.ops_set l Stream.s_last
        (if driving && beat_idx.(l) = lanes - 1 then 1 else 0);
      for c = 0 to lanes - 1 do
        let v =
          if driving then
            Block.get inputs.(mat_idx.(l)) ~row:beat_idx.(l) ~col:c
          else 0
        in
        sim.ops_set l (Stream.s_data c) v
      done;
      sim.ops_set l Stream.m_ready (if ready then 1 else 0)
    done;
    (* Observe handshakes, every lane. *)
    for l = 0 to n_lanes - 1 do
      let lane_end = chunk_start.(l) + chunk_len.(l) in
      let driving = mat_idx.(l) < lane_end && gap_left.(l) = 0 in
      let s_ready = sim.ops_get l Stream.s_ready = 1 in
      let m_valid = sim.ops_get l Stream.m_valid = 1 in
      let m_last = sim.ops_get l Stream.m_last = 1 in
      let data =
        Array.init lanes (fun c ->
            sign_extend Stream.out_width (sim.ops_get l (Stream.m_data c)))
      in
      traces.(l) <-
        {
          Monitor.cycle = !cycle;
          valid = m_valid;
          ready;
          last = m_last;
          data;
        }
        :: traces.(l);
      if driving && s_ready then begin
        if beat_idx.(l) = 0 then first_in_cycle.(mat_idx.(l)) <- !cycle;
        beat_idx.(l) <- beat_idx.(l) + 1;
        if beat_idx.(l) = lanes then begin
          beat_idx.(l) <- 0;
          mat_idx.(l) <- mat_idx.(l) + 1;
          gap_left.(l) <- input_gap
        end
      end
      else if (not driving) && gap_left.(l) > 0 then
        gap_left.(l) <- gap_left.(l) - 1;
      if m_valid && ready then begin
        current_rows.(l) <- Array.copy data :: current_rows.(l);
        if List.length current_rows.(l) = lanes then begin
          let rows = Array.of_list (List.rev current_rows.(l)) in
          collected.(l) <- Block.of_rows rows :: collected.(l);
          if out_mat.(l) < chunk_len.(l) then
            last_out_cycle.(chunk_start.(l) + out_mat.(l)) <- !cycle;
          out_mat.(l) <- out_mat.(l) + 1;
          current_rows.(l) <- []
        end
      end
    done;
    sim.ops_step ();
    incr cycle
  done;
  if not (all_done ()) then begin
    let sum f =
      let s = ref 0 in
      for l = 0 to n_lanes - 1 do
        s := !s + f l
      done;
      !s
    in
    failwith
      (Printf.sprintf
         "Driver.run(%s): timeout after %d cycles (duty %.2f, batch %d) — \
          collected %d/%d output beats (%d/%d matrices), consumed %d/%d \
          input beats"
         circuit.Netlist.circuit_name !cycle duty n_lanes
         (sum (fun l -> (out_mat.(l) * lanes) + List.length current_rows.(l)))
         (n_mat * lanes)
         (sum (fun l -> out_mat.(l)))
         n_mat
         (sum (fun l ->
              ((mat_idx.(l) - chunk_start.(l)) * lanes) + beat_idx.(l)))
         (n_mat * lanes))
  end;
  hook "cycles" !cycle;
  (* Latency is measured on the final matrix; periodicity between the last
     two matrices of the lane holding it (contiguous chunks put them in
     the same lane whenever that lane has >= 2).  At batch 1 both reduce
     to the historical single-stream definitions. *)
  let latency =
    let last = n_mat - 1 in
    last_out_cycle.(last) - first_in_cycle.(last) + 1
  in
  let last_lane = n_lanes - 1 in
  let periodicity =
    if chunk_len.(last_lane) >= 2 then
      first_in_cycle.(n_mat - 1) - first_in_cycle.(n_mat - 2)
    else latency
  in
  let outputs =
    List.concat
      (List.init n_lanes (fun l -> List.rev collected.(l)))
  in
  let violations =
    List.concat
      (List.init n_lanes (fun l -> Monitor.check (List.rev traces.(l))))
  in
  { outputs; latency; periodicity; cycles = !cycle; violations }

let transform circuit matrix =
  match (run circuit [ matrix ]).outputs with
  | [ out ] -> out
  | _ -> assert false

(* Bulk variant of [transform]: each matrix is an independent fresh-reset
   single-matrix run, so it maps onto the batch dimension directly — one
   lane per matrix, capped per simulator instance to bound the value
   array.  Outputs are byte-for-byte what per-matrix [transform] calls
   would return. *)
let max_transform_lanes = 64

let transform_batch ?hook circuit matrices =
  let rec chunks = function
    | [] -> []
    | l ->
        let rec take n acc = function
          | rest when n = 0 -> (List.rev acc, rest)
          | [] -> (List.rev acc, [])
          | x :: rest -> take (n - 1) (x :: acc) rest
        in
        let c, rest = take max_transform_lanes [] l in
        c :: chunks rest
  in
  List.concat_map
    (fun chunk ->
      (run ?hook ~batch:(List.length chunk) circuit chunk).outputs)
    (chunks matrices)
