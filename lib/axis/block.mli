(** 8x8 integer blocks: the data unit of the IDCT benchmark.

    Blocks are flat 64-element arrays in row-major order.  Inputs to the
    IDCT are 12-bit signed DCT coefficients; outputs are 9-bit signed
    samples. *)

type t = int array

val size : int
(** 8 *)

val create : unit -> t
(** All-zero block. *)

val get : t -> row:int -> col:int -> int
val set : t -> row:int -> col:int -> int -> unit
val copy : t -> t
val map2 : (int -> int -> int) -> t -> t -> t
val equal : t -> t -> bool

val row : t -> int -> int array
(** Copy of one row (8 elements). *)

val col : t -> int -> int array
val set_row : t -> int -> int array -> unit
val set_col : t -> int -> int array -> unit
val transpose : t -> t

val of_rows : int array array -> t
(** @raise Invalid_argument unless given 8 rows of 8. *)

val input_bits : int
(** 12 — coefficient width. *)

val output_bits : int
(** 9 — sample width. *)

val clamp_input : int -> int
(** Clamp to the 12-bit signed coefficient range [-2048, 2047]. *)

val clamp_output : int -> int
(** Clamp to the 9-bit signed sample range [-256, 255]. *)

val pp : Format.formatter -> t -> unit

(** {1 IEEE 1180-1990 pseudo-random block generator}

    The standard prescribes its own linear-congruential generator so that
    all implementations are tested on identical data. *)

module Rand : sig
  type state

  val create : ?seed:int -> unit -> state
  val uniform : state -> lo:int -> hi:int -> int
  (** Uniform on [lo, hi] as specified by IEEE 1180 (L+H+1 bucketing). *)

  val block : state -> lo:int -> hi:int -> t
end
