type t = int array

let size = 8
let create () = Array.make (size * size) 0

let get b ~row ~col = b.((row * size) + col)
let set b ~row ~col v = b.((row * size) + col) <- v
let copy = Array.copy
let map2 f a b = Array.init (size * size) (fun i -> f a.(i) b.(i))
let equal a b = a = b

let row b r = Array.init size (fun c -> get b ~row:r ~col:c)
let col b c = Array.init size (fun r -> get b ~row:r ~col:c)
let set_row b r vals = Array.iteri (fun c v -> set b ~row:r ~col:c v) vals
let set_col b c vals = Array.iteri (fun r v -> set b ~row:r ~col:c v) vals

let transpose b =
  Array.init (size * size) (fun i -> b.((i mod size * size) + (i / size)))

let of_rows rows =
  if Array.length rows <> size || Array.exists (fun r -> Array.length r <> size) rows
  then invalid_arg "Block.of_rows: need 8 rows of 8";
  Array.init (size * size) (fun i -> rows.(i / size).(i mod size))

let input_bits = 12
let output_bits = 9

let clamp lo hi v = if v < lo then lo else if v > hi then hi else v
let clamp_input v = clamp (-2048) 2047 v
let clamp_output v = clamp (-256) 255 v

let pp ppf b =
  Format.fprintf ppf "@[<v>";
  for r = 0 to size - 1 do
    for c = 0 to size - 1 do
      Format.fprintf ppf "%5d " (get b ~row:r ~col:c)
    done;
    if r < size - 1 then Format.fprintf ppf "@,"
  done;
  Format.fprintf ppf "@]"

module Rand = struct
  type state = { mutable randx : int }

  let create ?(seed = 1) () = { randx = seed }

  (* IEEE 1180-1990 Annex A generator: 32-bit LCG, take bits 8..31 scaled to
     a double in [0,1), bucket into L+H+1 integer values. *)
  let next_unit s =
    s.randx <- ((s.randx * 1103515245) + 12345) land 0xFFFFFFFF;
    let top = (s.randx land 0x7FFFFFFE) lsr 1 in
    (* 31-bit value scaled to [0,1). *)
    float_of_int top /. 2147483648.0

  let uniform s ~lo ~hi =
    let span = hi - lo + 1 in
    let x = next_unit s in
    let v = lo + int_of_float (x *. float_of_int span) in
    if v > hi then hi else v

  let block s ~lo ~hi =
    Array.init (size * size) (fun _ -> uniform s ~lo ~hi)
end
