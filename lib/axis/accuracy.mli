(** Kernel-generic accuracy accounting over {!Block} streams.

    Two oracles live here, shared by every registered kernel:

    - a per-position error-statistics accumulator (the arithmetic core of
      the IEEE 1180-1990 procedure, but nothing IDCT-specific: any
      block-to-block kernel can accumulate got-vs-want error surfaces
      with it), and
    - a bit-true batch comparison against a reference model.

    The accumulation order is part of the contract: blocks added in
    sequence produce bit-identical float sums whether the device under
    test ran sequentially or batched, which is what lets the batched
    compliance path of [Ieee1180.measure_batch] claim numerical identity
    with the sequential one. *)

type t
(** A mutable accumulator over [Block.size * Block.size] positions. *)

type summary = {
  blocks : int;
  peak_error : int;  (** max |e| over all positions and blocks *)
  worst_pmse : float;  (** worst per-position mean square error *)
  omse : float;  (** overall mean square error *)
  worst_pme : float;  (** worst per-position |mean error| *)
  ome : float;  (** overall |mean error| *)
}

val create : unit -> t

val add : t -> want:Block.t -> got:Block.t -> unit
(** Accumulate one block's error surface.  Per-position sums are updated
    in position order; call order over blocks defines the float
    summation order. *)

val summarize : t -> summary

val bit_true :
  reference:(Block.t -> Block.t) -> Block.t list -> Block.t list -> bool
(** [bit_true ~reference inputs outputs]: every output block equals the
    reference model applied to its input block (and lengths match). *)
