(** Simulation testbench for wrapped designs.

    Streams coefficient matrices into a circuit that follows the {!Stream}
    port convention, collects the resulting sample matrices, measures
    latency and periodicity, and runs the protocol {!Monitor} on the output
    side.

    Beats within one matrix are issued back to back (the adapters'
    streaming contract); [input_gap] idle cycles may be inserted between
    matrices, and [ready_pattern] can exercise back-pressure.

    With [batch > 1] the matrix list is split into contiguous chunks, one
    per simulation lane of the levelized engine, and every lane runs its
    own independent copy of the testbench on a shared clock — one pass
    over the compiled schedule advances all of them.  Results concatenate
    back in input order; protocol monitoring runs per lane. *)

type result = {
  outputs : Block.t list;
  latency : int;
      (** steady-state cycles from a matrix's first input beat to its last
          output beat (measured on the final matrix) *)
  periodicity : int;
      (** steady-state distance in cycles between consecutive matrices'
          first input beats; in a batched run, measured within the lane
          holding the final matrix *)
  cycles : int;              (** total simulated cycles *)
  violations : Monitor.violation list;
}

type engine = Compiled | Reference
(** Which simulation engine runs the testbench: [Compiled] is {!Hw.Sim}
    (the levelized batch engine — the default and the historical
    behavior); [Reference] is the retained interpreter {!Hw.Interp}, kept
    drivable end to end so the measurement flow can degrade onto it when
    the compiled engine fails on a design.  [Reference] has no batch
    dimension, so a batched run instantiates one interpreter per lane and
    steps them in lockstep.  The engines are cycle-equivalent
    ({!Hw.Equiv.crosscheck}); only wall time and the schedule-size hook
    counter differ ([sim_thunks] vs [interp_nodes]). *)

val run :
  ?engine:engine ->
  ?batch:int ->
  ?input_gap:int ->
  ?ready_pattern:(int -> bool) ->
  ?timeout:int ->
  ?hook:(string -> int -> unit) ->
  Hw.Netlist.t ->
  Block.t list ->
  result
(** [batch] (default 1) is the number of simulation lanes the matrices
    are spread across.
    @raise Failure if the circuit lacks the port convention or the
    simulation exceeds [timeout] cycles.  The default budget of 200 per
    matrix + 2000 (plus input gaps) is sized by the longest lane's chunk —
    not the whole stream — so a batched run is never held to a budget it
    cannot meet, and is scaled by the inverse of [ready_pattern]'s duty
    cycle, sampled over the first 1024 cycles, so a slow-but-correct
    consumer is not misreported as a timeout — patterns must therefore be
    pure functions of the cycle number.  The timeout message reports
    cycles simulated, the sampled duty cycle, the batch width, and
    collected-vs-expected output beats and consumed input beats.  [hook]
    is a stage hook for observability layers: called with [sim_thunks]
    (compiled schedule size) after the simulator is built, [sim_batch]
    (lane count, only when batching is actually in effect) and [cycles]
    when the stream drains; it must not affect the result. *)

val transform : Hw.Netlist.t -> Block.t -> Block.t
(** Convenience: push one matrix through and return the result. *)

val transform_batch :
  ?hook:(string -> int -> unit) ->
  Hw.Netlist.t ->
  Block.t list ->
  Block.t list
(** Bulk [transform]: each matrix is an independent fresh-reset
    single-matrix run mapped onto its own simulation lane (capped at 64
    lanes per simulator instance), so the outputs are byte-for-byte what
    per-matrix {!transform} calls would return — at a fraction of the
    schedule sweeps. *)
