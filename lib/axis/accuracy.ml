type t = {
  sq_err : float array;
  sum_err : float array;
  mutable peak : int;
  mutable blocks : int;
}

type summary = {
  blocks : int;
  peak_error : int;
  worst_pmse : float;
  omse : float;
  worst_pme : float;
  ome : float;
}

let n2 = Block.size * Block.size

let create () =
  { sq_err = Array.make n2 0.0; sum_err = Array.make n2 0.0; peak = 0; blocks = 0 }

let add (acc : t) ~want ~got =
  for i = 0 to n2 - 1 do
    let e = got.(i) - want.(i) in
    if abs e > acc.peak then acc.peak <- abs e;
    acc.sq_err.(i) <- acc.sq_err.(i) +. float_of_int (e * e);
    acc.sum_err.(i) <- acc.sum_err.(i) +. float_of_int e
  done;
  acc.blocks <- acc.blocks + 1

let summarize (acc : t) =
  let fb = float_of_int acc.blocks in
  let pmse = Array.map (fun s -> s /. fb) acc.sq_err in
  let pme = Array.map (fun s -> abs_float (s /. fb)) acc.sum_err in
  {
    blocks = acc.blocks;
    peak_error = acc.peak;
    worst_pmse = Array.fold_left Float.max 0.0 pmse;
    omse = Array.fold_left ( +. ) 0.0 pmse /. float_of_int n2;
    worst_pme = Array.fold_left Float.max 0.0 pme;
    ome =
      abs_float
        (Array.fold_left ( +. ) 0.0 acc.sum_err /. (fb *. float_of_int n2));
  }

let bit_true ~reference inputs outputs =
  List.length inputs = List.length outputs
  && List.for_all2 (fun i o -> Block.equal (reference i) o) inputs outputs
