(** Word-level netlist intermediate representation.

    A circuit is a directed graph of typed nodes.  Combinational nodes form a
    DAG; registers ({!constructor-Reg}) break cycles and are the only
    sequential elements.  Every node has a fixed bit width.  Operand widths
    are strict: arithmetic and bitwise operators require both operands to
    have the node's width (front ends insert explicit extensions).

    Circuits are produced with {!Builder} and consumed by {!Sim},
    {!Techmap}, {!Timing} and {!Verilog}. *)

type uid = int
(** Node identifier; dense, 0-based. *)

type mem_id = int
(** Memory identifier; dense, 0-based. *)

type signedness = Signed | Unsigned

type unop = Not | Neg

type binop =
  | Add
  | Sub
  | Mul
  | And
  | Or
  | Xor
  | Shl          (** logical shift left; rhs is the unsigned shift amount *)
  | Shr          (** logical shift right *)
  | Sra          (** arithmetic shift right *)
  | Eq
  | Ne
  | Lt of signedness
  | Le of signedness

type kind =
  | Input of string
  | Const of Bits.t
  | Unop of unop * uid
  | Binop of binop * uid * uid
  | Mux of uid * uid * uid
      (** [Mux (sel, t, f)]: [sel] is 1 bit wide; [t]/[f] have the node width. *)
  | Slice of uid * int * int  (** [Slice (x, hi, lo)] *)
  | Concat of uid * uid       (** high ++ low *)
  | Uext of uid               (** zero-extend to the node width *)
  | Sext of uid               (** sign-extend to the node width *)
  | Reg of { d : uid; enable : uid option; init : Bits.t }
      (** Positive-edge register with synchronous enable and reset value
          [init] (applied by simulation reset). *)
  | Mem_read of mem_id * uid
      (** Asynchronous (LUTRAM-style) read of memory [mem_id] at the given
          address; width is the memory's word width. *)

type node = { uid : uid; width : int; kind : kind; name : string option }

type write_port = { w_enable : uid; w_addr : uid; w_data : uid }

type mem = {
  mem_id : mem_id;
  mem_name : string;
  mem_size : int;                     (** number of words *)
  mem_width : int;
  mem_writes : write_port list;
      (** all writes land on the clock edge; the model assumes enabled
          writes of one cycle target distinct addresses *)
}

type t = {
  circuit_name : string;
  nodes : node array;                 (** indexed by uid *)
  mems : mem array;                   (** indexed by mem_id *)
  inputs : (string * uid) list;       (** in declaration order *)
  outputs : (string * uid) list;      (** in declaration order *)
}

val node : t -> uid -> node
val num_nodes : t -> int
val operands : node -> uid list
(** Combinational operands.  For a register this is [[]] — the [d] input is
    sequential and obtained via {!reg_inputs}. *)

val reg_inputs : node -> uid list
(** [d] and optional [enable] for a register, [[]] otherwise. *)

val is_reg : node -> bool

val find_input : t -> string -> uid
(** @raise Not_found if no input port has the given name. *)

val find_output : t -> string -> uid

val port_error : t -> [ `In | `Out ] -> caller:string -> string -> 'a
(** [port_error t dir ~caller name] raises [Invalid_argument] with a message
    naming the missing port and listing the ports the circuit does have.
    Shared by the simulation engines' [set]/[get] lookups. *)

val validate : t -> unit
(** Checks widths, operand references and the absence of combinational
    cycles.  @raise Failure with a diagnostic on an ill-formed circuit. *)

val comb_order : t -> uid array
(** Topological order of all nodes for combinational evaluation (registers
    appear as sources; their [d] operands are not considered edges).
    @raise Failure on a combinational cycle. *)

val stats : t -> (string * int) list
(** Node-kind histogram, for reports and debugging. *)

val pp_kind : Format.formatter -> kind -> unit
val binop_name : binop -> string
