(** Reference cycle-accurate interpreter of {!Netlist} circuits.

    This is the semantic baseline: it re-dispatches on every node kind on
    every evaluation pass, with no dead-node elimination and no incremental
    re-evaluation, so it is easy to audit but slow.  {!Sim} — the interface
    the rest of the system uses — delegates to the compiled engine
    ({!Compile}); this module is retained so the two can be cross-checked
    cycle-by-cycle ({!Equiv.crosscheck}) and benchmarked against each other
    ([bench/main.ml]).

    Values are exchanged as OCaml [int]s in the unsigned representation of
    the node's width (width 62 uses all value bits of the host int). *)

type t

val mask_of_width : int -> int
(** Unsigned mask of a node width: [(1 lsl w) - 1] below 62; width 62 masks
    to [max_int] (all 62 value bits of the 63-bit host int).  Shared with
    the compiled engine so the two representations are identical. *)

val create : Netlist.t -> t
(** Builds evaluation tables.  The circuit must already be valid. *)

val circuit : t -> Netlist.t

val reset : t -> unit
(** Loads every register with its [init] value and zeroes the memories.
    Inputs keep their current values (initially 0). *)

val set : t -> string -> int -> unit
(** [set sim port v] drives input [port] with [v] (masked to the port width;
    negative values are taken as two's complement).
    @raise Invalid_argument on an unknown input name, listing the circuit's
    input ports. *)

val get : t -> string -> int
(** Unsigned value of an output port, after settling the fabric.
    @raise Invalid_argument on an unknown output name. *)

val get_signed : t -> string -> int

val step : t -> unit
(** One rising clock edge: settle, then latch all registers and apply
    enabled memory writes in declared port order (on an address conflict
    the later-declared port wins). *)

val step_n : t -> int -> unit

val peek : t -> Netlist.uid -> int
(** Unsigned value of an arbitrary node, after settling. *)

val peek_signed : t -> Netlist.uid -> int

val cycle_count : t -> int
(** Number of {!step}s since creation or the last {!reset}. *)

val mem_word : t -> Netlist.mem_id -> int -> int
(** Current contents of one memory word (for state cross-checks). *)
