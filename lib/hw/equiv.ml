type result =
  | Equivalent
  | Mismatch of { cycle : int; port : string; a : int; b : int }

(* Uniform w-bit draw composed from 30-bit chunks.  [Random.State.int]
   cannot produce bounds >= 2^30 (it raises) and would in any case leave
   bits >= 30 of a wide port permanently at 0 — exactly the width band
   where masking bugs live — so wide ports compose several [bits] draws. *)
let rec draw rng w =
  if w <= 30 then Random.State.bits rng land ((1 lsl w) - 1)
  else (draw rng (w - 30) lsl 30) lor Random.State.bits rng

let check ?(cycles = 64) ?(seed = 42) ?(settle = 0) (ca : Netlist.t)
    (cb : Netlist.t) =
  let ports c =
    List.map (fun (nm, u) -> (nm, (Netlist.node c u).Netlist.width)) c.Netlist.inputs
  in
  if ports ca <> ports cb then
    invalid_arg "Equiv.check: input ports differ";
  let outs c =
    List.map (fun (nm, u) -> (nm, (Netlist.node c u).Netlist.width)) c.Netlist.outputs
  in
  if outs ca <> outs cb then invalid_arg "Equiv.check: output ports differ";
  let sa = Sim.create ca and sb = Sim.create cb in
  let rng = Random.State.make [| seed |] in
  let result = ref Equivalent in
  (try
     for cycle = 0 to cycles - 1 do
       List.iter
         (fun (nm, w) ->
           let v = draw rng w in
           Sim.set sa nm v;
           Sim.set sb nm v)
         (ports ca);
       if cycle >= settle then
         List.iter
           (fun (nm, _) ->
             let a = Sim.get sa nm and b = Sim.get sb nm in
             if a <> b then begin
               result := Mismatch { cycle; port = nm; a; b };
               raise Exit
             end)
           (outs ca);
       Sim.step sa;
       Sim.step sb
     done
   with Exit -> ());
  !result

(* Shared stimulus for the crosschecks: 62 random bits with occasional
   all-ones / sign-bit extremes (the engines mask to port width on set). *)
let wide_random rng =
  match Random.State.int rng 8 with
  | 0 -> -1
  | 1 -> 1 lsl 61
  | _ ->
      Random.State.bits rng
      lor (Random.State.bits rng lsl 30)
      lor (Random.State.bits rng lsl 60)

(* Random cross-check of all three simulation engines on ONE circuit: the
   reference interpreter ([Interp]), the retained closure-specialized cone
   engine ([Cone]) and the levelized batch engine ([Compile], which backs
   [Sim], run here at batch 1).  Outputs and register state are compared
   every cycle, every node (including logic the compiled engines
   eliminated as dead) and all memory words at the end. *)
let crosscheck ?(cycles = 1000) ?(seed = 7) (c : Netlist.t) =
  let si = Interp.create c
  and sk = Cone.create c
  and sc = Compile.create c in
  let rng = Random.State.make [| seed; 0x5eed |] in
  let ins =
    List.map
      (fun (nm, u) -> (nm, (Netlist.node c u).Netlist.width))
      c.Netlist.inputs
  in
  let outs = List.map fst c.Netlist.outputs in
  let regs =
    Array.to_list c.Netlist.nodes
    |> List.filter Netlist.is_reg
    |> List.map (fun (nd : Netlist.node) -> nd.Netlist.uid)
  in
  let result = ref Equivalent in
  let fail cycle port a b =
    result := Mismatch { cycle; port; a; b };
    raise Exit
  in
  (* The interpreter value is the reference [a]; whichever engine strays
     from it is [b], labelled so the culprit is identifiable. *)
  let compare3 cycle label a k v =
    if a <> k then fail cycle (label ^ " [cone]") a k;
    if a <> v then fail cycle (label ^ " [level]") a v
  in
  (try
     for cycle = 0 to cycles - 1 do
       List.iter
         (fun (nm, _) ->
           let v = wide_random rng in
           Interp.set si nm v;
           Cone.set sk nm v;
           Compile.set sc nm v)
         ins;
       List.iter
         (fun nm ->
           compare3 cycle nm (Interp.get si nm) (Cone.get sk nm)
             (Compile.get sc nm))
         outs;
       List.iter
         (fun u ->
           compare3 cycle
             (Printf.sprintf "reg n%d" u)
             (Interp.peek si u) (Cone.peek sk u) (Compile.peek sc u))
         regs;
       Interp.step si;
       Cone.step sk;
       Compile.step sc
     done;
     (* Final architectural and combinational state, node by node — this
        exercises both compiled engines' on-demand path for dead nodes. *)
     for u = 0 to Netlist.num_nodes c - 1 do
       compare3 cycles
         (Printf.sprintf "n%d" u)
         (Interp.peek si u) (Cone.peek sk u) (Compile.peek sc u)
     done;
     Array.iteri
       (fun mi (m : Netlist.mem) ->
         for a = 0 to m.Netlist.mem_size - 1 do
           compare3 cycles
             (Printf.sprintf "%s[%d]" m.Netlist.mem_name a)
             (Interp.mem_word si mi a)
             (Cone.mem_word sk mi a)
             (Compile.mem_word sc mi a)
         done)
       c.Netlist.mems
   with Exit -> ());
  !result

(* Batched cross-check: ONE levelized instance with [lanes] lanes against
   [lanes] independent interpreter instances, each lane driven by its own
   random stream.  Catches lane-indexing bugs (cross-lane bleed, shared
   state that should be per-lane) that the batch-1 crosscheck cannot. *)
let crosscheck_batch ?(cycles = 500) ?(seed = 7) ~lanes (c : Netlist.t) =
  if lanes < 1 then invalid_arg "Equiv.crosscheck_batch: lanes must be >= 1";
  let sc = Compile.create ~batch:lanes c in
  let refs = Array.init lanes (fun _ -> Interp.create c) in
  let rngs =
    Array.init lanes (fun l -> Random.State.make [| seed; 0x5eed; l |])
  in
  let ins = List.map fst c.Netlist.inputs in
  let outs = List.map fst c.Netlist.outputs in
  let result = ref Equivalent in
  let fail cycle port a b =
    result := Mismatch { cycle; port; a; b };
    raise Exit
  in
  (try
     for cycle = 0 to cycles - 1 do
       for l = 0 to lanes - 1 do
         List.iter
           (fun nm ->
             let v = wide_random rngs.(l) in
             Interp.set refs.(l) nm v;
             Compile.set ~lane:l sc nm v)
           ins
       done;
       for l = 0 to lanes - 1 do
         List.iter
           (fun nm ->
             let a = Interp.get refs.(l) nm
             and b = Compile.get ~lane:l sc nm in
             if a <> b then fail cycle (Printf.sprintf "%s [lane %d]" nm l) a b)
           outs
       done;
       Array.iter Interp.step refs;
       Compile.batch_step sc
     done;
     for l = 0 to lanes - 1 do
       for u = 0 to Netlist.num_nodes c - 1 do
         let a = Interp.peek refs.(l) u and b = Compile.peek ~lane:l sc u in
         if a <> b then fail cycles (Printf.sprintf "n%d [lane %d]" u l) a b
       done;
       Array.iteri
         (fun mi (m : Netlist.mem) ->
           for ad = 0 to m.Netlist.mem_size - 1 do
             let x = Interp.mem_word refs.(l) mi ad
             and y = Compile.mem_word ~lane:l sc mi ad in
             if x <> y then
               fail cycles
                 (Printf.sprintf "%s[%d] [lane %d]" m.Netlist.mem_name ad l)
                 x y
           done)
         c.Netlist.mems
     done
   with Exit -> ());
  !result

let pp_result ppf = function
  | Equivalent -> Format.fprintf ppf "equivalent"
  | Mismatch { cycle; port; a; b } ->
      Format.fprintf ppf "mismatch at cycle %d on %s: %d vs %d" cycle port a b
