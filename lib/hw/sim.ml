(* The simulation interface used across the system.  Since the compiled
   engine landed this is a thin façade over {!Compile}; the semantics are
   pinned down by {!Interp}, the retained reference interpreter, and the
   two are cross-checked by {!Equiv.crosscheck} and the property tests. *)

type t = Compile.t

let create = Compile.create
let circuit = Compile.circuit
let reset = Compile.reset
let set = Compile.set
let get = Compile.get
let get_signed = Compile.get_signed
let step = Compile.step
let step_n = Compile.step_n
let peek = Compile.peek
let peek_signed = Compile.peek_signed
let cycle_count = Compile.cycle_count
let compiled_nodes = Compile.compiled_nodes
let total_nodes = Compile.total_nodes
