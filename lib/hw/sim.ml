(* The simulation interface used across the system.  A thin façade over
   the levelized batch engine {!Compile}; the semantics are pinned down by
   {!Interp}, the retained reference interpreter, and the closure-based
   cone engine {!Cone} is kept as a second oracle.  All three are
   cross-checked by {!Equiv.crosscheck} and the property tests.

   The monomorphic part of the interface (no [?lane]) is unchanged from
   the pre-batch engine and always addresses lane 0, so existing callers
   are oblivious to the batch dimension. *)

type t = Compile.t

let create c = Compile.create c
let create_batch ~batch c = Compile.create ~batch c
let circuit = Compile.circuit
let batch = Compile.batch
let reset = Compile.reset
let set t p v = Compile.set t p v
let get t p = Compile.get t p
let get_signed t p = Compile.get_signed t p
let set_lane t ~lane p v = Compile.set ~lane t p v
let get_lane t ~lane p = Compile.get ~lane t p
let get_signed_lane t ~lane p = Compile.get_signed ~lane t p
let step = Compile.step
let batch_step = Compile.batch_step
let step_n = Compile.step_n
let peek t u = Compile.peek t u
let peek_signed t u = Compile.peek_signed t u
let peek_lane t ~lane u = Compile.peek ~lane t u
let cycle_count = Compile.cycle_count
let compiled_nodes = Compile.compiled_nodes
let total_nodes = Compile.total_nodes
