(* Reference interpreter: walks the full levelized order every settle and
   dispatches on the node kind each time.  Kept as the semantic baseline the
   compiled engine ({!Compile}) is cross-checked against, and as the slow
   path of last resort.  Production simulation goes through {!Sim}, which
   delegates to the compiled engine. *)

type t = {
  c : Netlist.t;
  order : Netlist.uid array;
  values : int array;
  masks : int array;
  widths : int array;
  regs : Netlist.uid array;
  reg_next : int array;              (* scratch for atomic register update *)
  mem_data : int array array;        (* per memory, current contents *)
  input_ids : (string, Netlist.uid) Hashtbl.t;
  output_ids : (string, Netlist.uid) Hashtbl.t;
  mutable dirty : bool;
  mutable cycles : int;
}

(* Width 62 occupies all value bits of the host int (OCaml ints have 63
   bits); the mask is [max_int].  Narrower widths mask as usual.  This is
   the same cutoff [signed_of] uses. *)
let mask_of_width w = if w >= 62 then max_int else (1 lsl w) - 1

let create c =
  let n = Netlist.num_nodes c in
  let masks = Array.make n 0 in
  let widths = Array.make n 0 in
  Array.iter
    (fun (nd : Netlist.node) ->
      masks.(nd.uid) <- mask_of_width nd.width;
      widths.(nd.uid) <- nd.width)
    c.nodes;
  let regs =
    Array.of_list
      (Array.to_list c.nodes
      |> List.filter Netlist.is_reg
      |> List.map (fun (nd : Netlist.node) -> nd.uid))
  in
  let input_ids = Hashtbl.create 16 and output_ids = Hashtbl.create 16 in
  List.iter (fun (nm, u) -> Hashtbl.replace input_ids nm u) c.inputs;
  List.iter (fun (nm, u) -> Hashtbl.replace output_ids nm u) c.outputs;
  let t =
    {
      c;
      order = Netlist.comb_order c;
      mem_data =
        Array.map (fun (m : Netlist.mem) -> Array.make m.Netlist.mem_size 0) c.mems;
      values = Array.make n 0;
      masks;
      widths;
      regs;
      reg_next = Array.make (Array.length regs) 0;
      input_ids;
      output_ids;
      dirty = true;
      cycles = 0;
    }
  in
  (* Load initial register values. *)
  Array.iter
    (fun u ->
      match (Netlist.node c u).kind with
      | Netlist.Reg { init; _ } -> t.values.(u) <- Bits.to_int init
      | _ -> assert false)
    regs;
  t

let circuit t = t.c

let signed_of t uid v =
  let w = t.widths.(uid) in
  (* Valid up to width 62: [1 lsl 62] is [min_int] and the subtraction
     wraps modulo 2^63 to the right negative value. *)
  if v land (1 lsl (w - 1)) <> 0 then v - (1 lsl w) else v

let eval_node t (nd : Netlist.node) =
  let v = t.values in
  let m = t.masks.(nd.uid) in
  let r =
    match nd.kind with
    | Netlist.Input _ | Netlist.Const _ | Netlist.Reg _ ->
        (* Inputs and register outputs are sources; constants are loaded
           once below in [settle]'s first pass via this same match. *)
        (match nd.kind with
        | Netlist.Const b -> Bits.to_int b
        | _ -> v.(nd.uid))
    | Netlist.Unop (Netlist.Not, a) -> lnot v.(a)
    | Netlist.Unop (Netlist.Neg, a) -> -v.(a)
    | Netlist.Binop (op, a, b) -> (
        let x = v.(a) and y = v.(b) in
        match op with
        | Netlist.Add -> x + y
        | Netlist.Sub -> x - y
        | Netlist.Mul ->
            if t.widths.(a) <= 31 then x * y
            else ((x land 0xFFFF) * y) + (((x lsr 16) * y) lsl 16)
        | Netlist.And -> x land y
        | Netlist.Or -> x lor y
        | Netlist.Xor -> x lxor y
        | Netlist.Shl ->
            (* The guard is against the *result* width: a shift whose result
               node is wider than its operand keeps bits the operand width
               would discard. *)
            if y >= t.widths.(nd.uid) then 0 else x lsl y
        | Netlist.Shr -> if y >= t.widths.(a) then 0 else x lsr y
        | Netlist.Sra ->
            let s = min y (t.widths.(a) - 1) in
            signed_of t a x asr s
        | Netlist.Eq -> if x = y then 1 else 0
        | Netlist.Ne -> if x <> y then 1 else 0
        | Netlist.Lt Netlist.Unsigned -> if x < y then 1 else 0
        | Netlist.Lt Netlist.Signed ->
            if signed_of t a x < signed_of t b y then 1 else 0
        | Netlist.Le Netlist.Unsigned -> if x <= y then 1 else 0
        | Netlist.Le Netlist.Signed ->
            if signed_of t a x <= signed_of t b y then 1 else 0)
    | Netlist.Mux (s, a, b) -> if v.(s) <> 0 then v.(a) else v.(b)
    | Netlist.Slice (a, _, lo) -> v.(a) lsr lo
    | Netlist.Concat (a, b) -> (v.(a) lsl t.widths.(b)) lor v.(b)
    | Netlist.Uext a -> v.(a)
    | Netlist.Sext a -> signed_of t a v.(a)
    | Netlist.Mem_read (mem, addr) ->
        let contents = t.mem_data.(mem) in
        let a = v.(addr) in
        if a < Array.length contents then contents.(a) else 0
  in
  v.(nd.uid) <- r land m

let settle t =
  if t.dirty then begin
    Array.iter (fun u -> eval_node t t.c.nodes.(u)) t.order;
    t.dirty <- false
  end

let set t port v =
  match Hashtbl.find_opt t.input_ids port with
  | None -> Netlist.port_error t.c `In ~caller:"Interp.set" port
  | Some u ->
      t.values.(u) <- v land t.masks.(u);
      t.dirty <- true

let get t port =
  match Hashtbl.find_opt t.output_ids port with
  | None -> Netlist.port_error t.c `Out ~caller:"Interp.get" port
  | Some u ->
      settle t;
      t.values.(u)

let get_signed t port =
  match Hashtbl.find_opt t.output_ids port with
  | None -> Netlist.port_error t.c `Out ~caller:"Interp.get_signed" port
  | Some u ->
      settle t;
      signed_of t u t.values.(u)

let step t =
  settle t;
  (* Memory writes: gather first (reads of this cycle see old contents). *)
  let mem_updates = ref [] in
  Array.iteri
    (fun mi (m : Netlist.mem) ->
      List.iter
        (fun (w : Netlist.write_port) ->
          if t.values.(w.Netlist.w_enable) <> 0 then
            let a = t.values.(w.Netlist.w_addr) in
            if a < t.c.mems.(mi).Netlist.mem_size then
              mem_updates := (mi, a, t.values.(w.Netlist.w_data)) :: !mem_updates)
        m.Netlist.mem_writes)
    t.c.mems;
  Array.iteri
    (fun i u ->
      match (Netlist.node t.c u).kind with
      | Netlist.Reg { d; enable; _ } ->
          let load =
            match enable with None -> true | Some e -> t.values.(e) <> 0
          in
          t.reg_next.(i) <- (if load then t.values.(d) else t.values.(u))
      | _ -> assert false)
    t.regs;
  Array.iteri (fun i u -> t.values.(u) <- t.reg_next.(i)) t.regs;
  (* The gather above consed, so reverse to apply in declared port order:
     when two enabled ports hit one address, the later-declared port wins. *)
  List.iter (fun (mi, a, d) -> t.mem_data.(mi).(a) <- d) (List.rev !mem_updates);
  t.dirty <- true;
  t.cycles <- t.cycles + 1

let step_n t n =
  for _ = 1 to n do
    step t
  done

let reset t =
  Array.iter (fun contents -> Array.fill contents 0 (Array.length contents) 0) t.mem_data;
  Array.iter
    (fun u ->
      match (Netlist.node t.c u).kind with
      | Netlist.Reg { init; _ } -> t.values.(u) <- Bits.to_int init
      | _ -> assert false)
    t.regs;
  t.dirty <- true;
  t.cycles <- 0

let peek t uid =
  settle t;
  t.values.(uid)

let peek_signed t uid =
  settle t;
  signed_of t uid t.values.(uid)

let cycle_count t = t.cycles

let mem_word t mem addr = t.mem_data.(mem).(addr)
