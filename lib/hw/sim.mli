(** Cycle-accurate two-phase simulation of {!Netlist} circuits.

    The simulator evaluates the combinational fabric in topological order
    and updates all registers atomically on {!step}.  Values are exchanged
    as OCaml [int]s in the unsigned representation of the node's width.

    This interface is backed by the compiled engine ({!Compile}): the
    evaluation schedule is specialized into closures at {!create} time,
    dead combinational logic is pruned from the schedule, and settling
    re-evaluates only the cone downstream of what changed.  The reference
    interpreter ({!Interp}) defines the semantics; {!Equiv.crosscheck}
    verifies the two agree cycle-by-cycle. *)

type t

val create : Netlist.t -> t
(** Builds evaluation tables.  The circuit must already be valid. *)

val circuit : t -> Netlist.t

val reset : t -> unit
(** Loads every register with its [init] value.  Inputs keep their current
    values (initially 0). *)

val set : t -> string -> int -> unit
(** [set sim port v] drives input [port] with [v] (masked to the port width;
    negative values are taken as two's complement).
    @raise Invalid_argument on an unknown input name, listing the circuit's
    input ports. *)

val get : t -> string -> int
(** Unsigned value of an output port, after settling the fabric.
    @raise Invalid_argument on an unknown output name. *)

val get_signed : t -> string -> int

val step : t -> unit
(** One rising clock edge: settle, then latch all registers and apply
    enabled memory writes in declared port order (on an address conflict
    the later-declared port wins). *)

val step_n : t -> int -> unit

val peek : t -> Netlist.uid -> int
(** Unsigned value of an arbitrary node, after settling. *)

val peek_signed : t -> Netlist.uid -> int

val cycle_count : t -> int
(** Number of {!step}s since creation or the last {!reset}. *)

val compiled_nodes : t -> int
(** Thunks left in the compiled evaluation schedule after dead-logic
    elimination and concat fusion (see {!Compile.compiled_nodes}). *)

val total_nodes : t -> int
(** Nodes of the underlying netlist. *)
