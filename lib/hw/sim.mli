(** Cycle-accurate two-phase simulation of {!Netlist} circuits.

    The simulator evaluates the combinational fabric in topological order
    and updates all registers atomically on {!step}.  Values are exchanged
    as OCaml [int]s in the unsigned representation of the node's width.

    This interface is backed by the levelized batch engine ({!Compile}):
    the live schedule is flattened into an instruction table at
    {!create} time and settling is one allocation-free sweep over it.
    The monomorphic functions below always address lane 0, so single-lane
    callers never see the batch dimension; {!create_batch} and the
    [_lane] accessors expose it for bulk workloads.  The reference
    interpreter ({!Interp}) defines the semantics and the closure-based
    cone engine ({!Cone}) is retained as a second oracle;
    {!Equiv.crosscheck} verifies all three agree cycle-by-cycle. *)

type t

val create : Netlist.t -> t
(** Builds the evaluation schedule with a single lane.  The circuit must
    already be valid. *)

val create_batch : batch:int -> Netlist.t -> t
(** Builds the schedule with [batch] independent simulation lanes.  All
    lanes share the clock — {!step} advances every lane — and differ only
    in the inputs driven per lane and the state evolving from them.
    @raise Invalid_argument if [batch < 1]. *)

val circuit : t -> Netlist.t

val batch : t -> int
(** The number of lanes this simulator was created with (1 for
    {!create}). *)

val reset : t -> unit
(** Loads every register with its [init] value and zeroes the memories,
    in every lane.  Inputs keep their current values (initially 0). *)

val set : t -> string -> int -> unit
(** [set sim port v] drives input [port] of lane 0 with [v] (masked to
    the port width; negative values are taken as two's complement).
    @raise Invalid_argument on an unknown input name, listing the
    circuit's input ports. *)

val get : t -> string -> int
(** Unsigned value of an output port in lane 0, after settling the
    fabric.
    @raise Invalid_argument on an unknown output name. *)

val get_signed : t -> string -> int

val set_lane : t -> lane:int -> string -> int -> unit
(** As {!set}, for an explicit lane.
    @raise Invalid_argument on an out-of-range lane. *)

val get_lane : t -> lane:int -> string -> int
val get_signed_lane : t -> lane:int -> string -> int

val step : t -> unit
(** One rising clock edge for every lane: settle, then latch all
    registers and apply enabled memory writes in declared port order (on
    an address conflict the later-declared port wins, resolved per
    lane). *)

val batch_step : t -> unit
(** Explicit batched entry point; identical to {!step}. *)

val step_n : t -> int -> unit

val peek : t -> Netlist.uid -> int
(** Unsigned value of an arbitrary node in lane 0, after settling. *)

val peek_signed : t -> Netlist.uid -> int

val peek_lane : t -> lane:int -> Netlist.uid -> int

val cycle_count : t -> int
(** Number of {!step}s since creation or the last {!reset}. *)

val compiled_nodes : t -> int
(** Instructions left in the levelized schedule after dead-logic
    elimination and concat fusion (see {!Compile.compiled_nodes}). *)

val total_nodes : t -> int
(** Nodes of the underlying netlist. *)
