(** Levelized batch-parallel compiled simulation of {!Netlist} circuits.

    The live schedule is levelized once at {!create} time into a flat
    struct-of-arrays instruction table — integer opcodes with all masks,
    shift amounts and sign constants resolved — and every node's value
    lives in one preallocated [int array].  The steady-state path
    allocates nothing and makes no indirect calls: settling is a single
    sweep of the table.

    [create ?batch] adds a batch dimension: the value array is laid out
    [uid * batch + lane] and each instruction's inner loop evaluates all
    lanes, so one pass over the schedule advances [batch] independent
    simulations of the same circuit in lockstep.  All lanes share the
    clock ({!step} advances every lane); they differ only in the inputs
    driven per lane and the state that evolves from them.

    Dead-node elimination and concat-chain fusion are inherited from the
    retained cone engine ({!Cone}); {!peek} of an eliminated node falls
    back to per-lane on-demand evaluation.  {!Equiv.crosscheck} checks
    this engine against both {!Interp} and {!Cone} on every design. *)

type t

val create : ?batch:int -> Netlist.t -> t
(** Levelizes the evaluation schedule.  The circuit must already be
    valid.  [batch] (default 1) is the number of independent simulation
    lanes; it is fixed for the lifetime of the instance.
    @raise Invalid_argument if [batch < 1]. *)

val circuit : t -> Netlist.t

val batch : t -> int
(** The number of lanes this instance was created with. *)

val compiled_nodes : t -> int
(** Number of instructions in the levelized schedule (after dead-node
    elimination, source removal and concat fusion). *)

val total_nodes : t -> int
(** Number of nodes in the underlying netlist. *)

val reset : t -> unit
(** Loads every register with its [init] value and zeroes the memories,
    in every lane.  Inputs keep their current values (initially 0). *)

val set : ?lane:int -> t -> string -> int -> unit
(** [set ~lane sim port v] drives input [port] of lane [lane] (default 0)
    with [v] (masked to the port width; negative values are taken as
    two's complement).
    @raise Invalid_argument on an unknown input name (listing the
    circuit's input ports) or an out-of-range lane. *)

val get : ?lane:int -> t -> string -> int
(** Unsigned value of an output port in lane [lane] (default 0), after
    settling the fabric.
    @raise Invalid_argument on an unknown output name or a bad lane. *)

val get_signed : ?lane:int -> t -> string -> int

val step : t -> unit
(** One rising clock edge for every lane: settle, gather enabled memory
    writes, latch all registers, then apply the writes in declared port
    order (on an address conflict the later-declared port wins — the
    resolution is per lane). *)

val batch_step : t -> unit
(** Explicit batched entry point; identical to {!step}.  The name exists
    so batched drivers read as what they are. *)

val step_n : t -> int -> unit

val peek : ?lane:int -> t -> Netlist.uid -> int
(** Unsigned value of an arbitrary node in lane [lane] (default 0), after
    settling.  Nodes eliminated from the schedule are evaluated on demand
    (memoized per lane until the next state change), so waveform
    recording over dead logic still works. *)

val peek_signed : ?lane:int -> t -> Netlist.uid -> int

val cycle_count : t -> int
(** Number of {!step}s since creation or the last {!reset}. *)

val mem_word : ?lane:int -> t -> Netlist.mem_id -> int -> int
(** Current contents of one memory word in lane [lane] (for state
    cross-checks). *)
