(* Levelized batch-parallel compiled simulation engine.

   [create] levelizes the live schedule once: every live node in the
   topological combinational order becomes one row of a flat
   struct-of-arrays instruction table (opcode, destination slot, operand
   slots, resolved masks / shift amounts / sign constants).  The
   steady-state path allocates nothing and calls nothing — [settle] is a
   single sweep of the table with an integer-opcode dispatch, and all node
   values live in one preallocated [int array].

   The batch dimension: [create ?batch] lays the value array out
   node-major ([uid * batch + lane]) and every instruction's inner loop
   evaluates all [batch] lanes, so one pass over the schedule advances B
   independent simulations of the same circuit.  Amortizing the dispatch
   and operand-index loads over B lanes is what beats the retained
   closure-specialized cone engine ({!Cone}) — and the lanes are exactly
   the data-level parallelism of compliance/DSE workloads, where hundreds
   of independent single-matrix runs share one netlist.

   There is no per-cycle dirty-cone bookkeeping: a whole-schedule sweep on
   a dirty flag replaces {!Cone}'s cone queueing (under testbench drive
   every input wiggles every cycle, so the cones covered the schedule
   anyway and their merge cost was pure overhead).

   Dead-logic elimination and concat-chain fusion are kept from the cone
   engine: only nodes in the fan-in cone of an output, register input or
   memory write port are scheduled, and fanout-1 concat chains collapse
   into their apex (leaves gathered through a side table).  [peek] on an
   eliminated node falls back to per-lane on-demand evaluation memoized
   per state generation, so waves and debugging still observe everything. *)

type t = {
  c : Netlist.t;
  batch : int;
  vals : int array;                   (* uid * batch + lane *)
  masks : int array;                  (* by uid *)
  widths : int array;                 (* by uid *)
  (* Levelized instruction table, struct-of-arrays, by schedule position. *)
  n_ins : int;
  op : int array;
  dst : int array;
  a0 : int array;
  a1 : int array;
  a2 : int array;
  k0 : int array;                     (* usually the result mask *)
  k1 : int array;
  k2 : int array;
  k3 : int array;
  cc_uid : int array;                 (* fused-concat leaf table, slots *)
  cc_shift : int array;
  slot : int array;                   (* uid -> value slot (a bijection) *)
  resident : bool array;              (* uid: value current after [settle] *)
  ports_in : (string, Netlist.uid) Hashtbl.t;
  ports_out : (string, Netlist.uid) Hashtbl.t;
  (* Registers, flattened for the latch loop. *)
  regs : int array;                   (* register q value slots *)
  reg_d : int array;
  reg_en : int array;                 (* -1 = always enabled *)
  reg_init : int array;
  reg_next : int array;               (* scratch, nregs * batch *)
  (* Memories (word-major: addr * batch + lane) and their write ports. *)
  mem_data : int array array;
  wp_mem : int array;
  wp_en : int array;
  wp_addr : int array;
  wp_data : int array;
  wp_size : int array;
  w_live : Bytes.t;                   (* gather scratch, nports * batch *)
  w_addr_s : int array;
  w_data_s : int array;
  (* On-demand evaluation of eliminated nodes, memoized per lane. *)
  dead_gen : int array;               (* slot * batch + lane *)
  mutable generation : int;
  mutable dirty : bool;
  mutable cycles : int;
}

let mask_of_width = Interp.mask_of_width

(* ------------------------------------------------------------------ *)
(* Opcodes                                                              *)
(* ------------------------------------------------------------------ *)

let op_not = 0
let op_neg = 1
let op_add = 2
let op_sub = 3
let op_mul_n = 4                      (* operand width <= 31 *)
let op_mul_w = 5                      (* wide split multiply *)
let op_and = 6
let op_or = 7
let op_xor = 8
let op_shl = 9                        (* k1 = result width *)
let op_shr = 10                       (* k1 = operand width *)
let op_sra = 11                       (* k1 = sign, k2 = adj, k3 = hi *)
let op_eq = 12
let op_ne = 13
let op_ltu = 14
let op_leu = 15
let op_lts = 16                       (* k0 = sga, k1 = ada, k2 = sgb, k3 = adb *)
let op_les = 17
let op_mux = 18                       (* a0 = sel, a1 = then, a2 = else *)
let op_slice = 19                     (* k1 = lo *)
let op_concat2 = 20                   (* k1, k2 = leaf shifts *)
let op_concat3 = 21                   (* a2 = third leaf, k3 = its shift *)
let op_concatn = 22                   (* k1 = leaf-table start, k2 = count *)
let op_copy = 23                      (* Uext *)
let op_sext = 24                      (* k1 = sign, k2 = adj *)
let op_memrd = 25                     (* k1 = mem id, k2 = mem size *)
let op_concat1 = 26                   (* k1 = leaf shift, k3 = const base *)

(* ------------------------------------------------------------------ *)
(* Construction                                                         *)
(* ------------------------------------------------------------------ *)

let is_source (nd : Netlist.node) =
  match nd.kind with
  | Netlist.Input _ | Netlist.Const _ | Netlist.Reg _ -> true
  | _ -> false

let create ?(batch = 1) c =
  if batch < 1 then invalid_arg "Compile.create: batch must be >= 1";
  let n = Netlist.num_nodes c in
  let masks = Array.make n 0 and widths = Array.make n 0 in
  Array.iter
    (fun (nd : Netlist.node) ->
      masks.(nd.uid) <- mask_of_width nd.width;
      widths.(nd.uid) <- nd.width)
    c.Netlist.nodes;
  (* Liveness: backward closure from outputs, register inputs and memory
     write ports — everything else is dead combinational logic. *)
  let live = Array.make n false in
  let rec mark u =
    if not live.(u) then begin
      live.(u) <- true;
      List.iter mark (Netlist.operands (Netlist.node c u))
    end
  in
  List.iter (fun (_, u) -> mark u) c.Netlist.outputs;
  Array.iter
    (fun (nd : Netlist.node) ->
      match nd.kind with
      | Netlist.Reg { d; enable; _ } ->
          mark d;
          Option.iter mark enable
      | _ -> ())
    c.Netlist.nodes;
  Array.iter
    (fun (m : Netlist.mem) ->
      List.iter
        (fun (w : Netlist.write_port) ->
          mark w.Netlist.w_enable;
          mark w.Netlist.w_addr;
          mark w.Netlist.w_data)
        m.Netlist.mem_writes)
    c.Netlist.mems;
  (* Concat-tree fusion (as in {!Cone}): a live concat whose only consumer
     is another live concat and which roots nothing else is absorbed into
     its consumer; the surviving apex reads the chain's leaves directly. *)
  let uses = Array.make n 0 and sole_user = Array.make n (-1) in
  let rooted = Array.make n false in
  Array.iter
    (fun (nd : Netlist.node) ->
      if live.(nd.uid) then
        List.iter
          (fun o ->
            uses.(o) <- uses.(o) + 1;
            sole_user.(o) <- nd.uid)
          (Netlist.operands nd))
    c.Netlist.nodes;
  List.iter (fun (_, u) -> rooted.(u) <- true) c.Netlist.outputs;
  Array.iter
    (fun (nd : Netlist.node) ->
      match nd.kind with
      | Netlist.Reg { d; enable; _ } ->
          rooted.(d) <- true;
          Option.iter (fun e -> rooted.(e) <- true) enable
      | _ -> ())
    c.Netlist.nodes;
  Array.iter
    (fun (m : Netlist.mem) ->
      List.iter
        (fun (w : Netlist.write_port) ->
          rooted.(w.Netlist.w_enable) <- true;
          rooted.(w.Netlist.w_addr) <- true;
          rooted.(w.Netlist.w_data) <- true)
        m.Netlist.mem_writes)
    c.Netlist.mems;
  let is_concat u =
    match (Netlist.node c u).kind with Netlist.Concat _ -> true | _ -> false
  in
  let absorbed = Array.make n false in
  Array.iter
    (fun (nd : Netlist.node) ->
      let u = nd.uid in
      absorbed.(u) <-
        live.(u) && is_concat u && uses.(u) = 1 && (not rooted.(u))
        && sole_user.(u) >= 0
        && live.(sole_user.(u))
        && is_concat sole_user.(u))
    c.Netlist.nodes;
  let rec leaves_of u shift acc =
    if absorbed.(u) then
      match (Netlist.node c u).kind with
      | Netlist.Concat (a, b) ->
          let wb = widths.(b) in
          leaves_of a (shift + wb) (leaves_of b shift acc)
      | _ -> assert false
    else (u, shift) :: acc
  in
  let concat_plan u =
    match (Netlist.node c u).kind with
    | Netlist.Concat (a, b) ->
        let wb = widths.(b) in
        Array.of_list (leaves_of a wb (leaves_of b 0 []))
    | _ -> assert false
  in
  (* Schedule = live non-source, non-absorbed nodes in levelized order. *)
  let sched_uid =
    Netlist.comb_order c |> Array.to_list
    |> List.filter (fun u ->
           live.(u)
           && (not (is_source (Netlist.node c u)))
           && not absorbed.(u))
    |> Array.of_list
  in
  let n_ins = Array.length sched_uid in
  let resident = Array.make n false in
  Array.iter
    (fun (nd : Netlist.node) ->
      resident.(nd.uid) <-
        is_source nd || (live.(nd.uid) && not absorbed.(nd.uid)))
    c.Netlist.nodes;
  (* Value-slot assignment: sources first, then the scheduled nodes in
     schedule order, then everything the schedule eliminated.  Indexing the
     value array by slot instead of uid makes each sweep walk it almost
     linearly — consecutive instructions write consecutive slots and read
     recently-written ones — which matters once the batched array outgrows
     L1.  [slot] is a bijection on uids; only the netlist-facing maps
     (widths, masks, resident) stay uid-indexed. *)
  let slot = Array.make n (-1) in
  let next_slot = ref 0 in
  let alloc u =
    if slot.(u) < 0 then begin
      slot.(u) <- !next_slot;
      incr next_slot
    end
  in
  Array.iter
    (fun (nd : Netlist.node) -> if is_source nd then alloc nd.uid)
    c.Netlist.nodes;
  Array.iter alloc sched_uid;
  Array.iter (fun (nd : Netlist.node) -> alloc nd.uid) c.Netlist.nodes;
  (* Emit the instruction table. *)
  let op = Array.make n_ins 0
  and dst = Array.make n_ins 0
  and a0 = Array.make n_ins 0
  and a1 = Array.make n_ins 0
  and a2 = Array.make n_ins 0
  and k0 = Array.make n_ins 0
  and k1 = Array.make n_ins 0
  and k2 = Array.make n_ins 0
  and k3 = Array.make n_ins 0 in
  let cc = ref [] and cc_len = ref 0 in
  let emit i u =
    let nd = Netlist.node c u in
    let m = masks.(u) in
    dst.(i) <- slot.(u);
    k0.(i) <- m;
    match nd.Netlist.kind with
    | Netlist.Input _ | Netlist.Const _ | Netlist.Reg _ ->
        assert false (* sources are never scheduled *)
    | Netlist.Unop (o, a) ->
        op.(i) <- (match o with Netlist.Not -> op_not | Netlist.Neg -> op_neg);
        a0.(i) <- slot.(a)
    | Netlist.Binop (o, a, b) -> (
        a0.(i) <- slot.(a);
        a1.(i) <- slot.(b);
        match o with
        | Netlist.Add -> op.(i) <- op_add
        | Netlist.Sub -> op.(i) <- op_sub
        | Netlist.Mul ->
            op.(i) <- (if widths.(a) <= 31 then op_mul_n else op_mul_w)
        | Netlist.And -> op.(i) <- op_and
        | Netlist.Or -> op.(i) <- op_or
        | Netlist.Xor -> op.(i) <- op_xor
        | Netlist.Shl ->
            (* Guard against the result width: the result node may be wider
               than the operand, and those shifts are legal. *)
            op.(i) <- op_shl;
            k1.(i) <- widths.(u)
        | Netlist.Shr ->
            op.(i) <- op_shr;
            k1.(i) <- widths.(a)
        | Netlist.Sra ->
            op.(i) <- op_sra;
            k1.(i) <- 1 lsl (widths.(a) - 1);
            k2.(i) <- 1 lsl widths.(a);
            k3.(i) <- widths.(a) - 1
        | Netlist.Eq -> op.(i) <- op_eq
        | Netlist.Ne -> op.(i) <- op_ne
        | Netlist.Lt Netlist.Unsigned -> op.(i) <- op_ltu
        | Netlist.Le Netlist.Unsigned -> op.(i) <- op_leu
        | Netlist.Lt Netlist.Signed | Netlist.Le Netlist.Signed ->
            op.(i) <-
              (match o with Netlist.Lt _ -> op_lts | _ -> op_les);
            k0.(i) <- 1 lsl (widths.(a) - 1);
            k1.(i) <- 1 lsl widths.(a);
            k2.(i) <- 1 lsl (widths.(b) - 1);
            k3.(i) <- 1 lsl widths.(b))
    | Netlist.Mux (s, a, b) ->
        op.(i) <- op_mux;
        a0.(i) <- slot.(s);
        a1.(i) <- slot.(a);
        a2.(i) <- slot.(b)
    | Netlist.Slice (a, _, lo) ->
        op.(i) <- op_slice;
        a0.(i) <- slot.(a);
        k1.(i) <- lo
    | Netlist.Concat _ -> (
        (* Operands are pre-masked and offsets sum to the result width, so
           no final mask is needed.  Constant leaves — zero padding and
           literal fields are common in the fused chains — fold into one
           precomputed base word instead of per-cycle shift-or work. *)
        let base = ref 0 in
        let variable =
          Array.to_list (concat_plan u)
          |> List.filter (fun (lu, sh) ->
                 match (Netlist.node c lu).Netlist.kind with
                 | Netlist.Const bits ->
                     base := !base lor (Bits.to_int bits lsl sh);
                     false
                 | _ -> true)
        in
        match (variable, !base) with
        | [ (a, sa) ], b0 ->
            op.(i) <- op_concat1;
            a0.(i) <- slot.(a);
            k1.(i) <- sa;
            k3.(i) <- b0
        | [ (a, sa); (b, sb) ], 0 ->
            op.(i) <- op_concat2;
            a0.(i) <- slot.(a);
            a1.(i) <- slot.(b);
            k1.(i) <- sa;
            k2.(i) <- sb
        | [ (a, sa); (b, sb); (d, sd) ], 0 ->
            op.(i) <- op_concat3;
            a0.(i) <- slot.(a);
            a1.(i) <- slot.(b);
            a2.(i) <- slot.(d);
            k1.(i) <- sa;
            k2.(i) <- sb;
            k3.(i) <- sd
        | leaves, b0 ->
            op.(i) <- op_concatn;
            k1.(i) <- !cc_len;
            k2.(i) <- List.length leaves;
            k3.(i) <- b0;
            List.iter
              (fun (lu, sh) ->
                cc := (slot.(lu), sh) :: !cc;
                incr cc_len)
              leaves)
    | Netlist.Uext a ->
        op.(i) <- op_copy;
        a0.(i) <- slot.(a)
    | Netlist.Sext a ->
        op.(i) <- op_sext;
        a0.(i) <- slot.(a);
        k1.(i) <- 1 lsl (widths.(a) - 1);
        k2.(i) <- 1 lsl widths.(a)
    | Netlist.Mem_read (mem, addr) ->
        op.(i) <- op_memrd;
        a0.(i) <- slot.(addr);
        k1.(i) <- mem;
        k2.(i) <- c.Netlist.mems.(mem).Netlist.mem_size
  in
  Array.iteri emit sched_uid;
  let cc_list = List.rev !cc in
  let cc_uid = Array.of_list (List.map fst cc_list)
  and cc_shift = Array.of_list (List.map snd cc_list) in
  (* The operand and destination fields address the value array directly:
     pre-scale the slot numbers by the batch stride so the sweep does no
     per-instruction multiplies.  (At batch 1 this is the identity, which
     is what [exec1] relies on.) *)
  let scale a = Array.iteri (fun i s -> a.(i) <- s * batch) a in
  scale dst;
  scale a0;
  scale a1;
  scale a2;
  scale cc_uid;
  let ports_in = Hashtbl.create 16 and ports_out = Hashtbl.create 16 in
  List.iter (fun (nm, u) -> Hashtbl.replace ports_in nm u) c.Netlist.inputs;
  List.iter (fun (nm, u) -> Hashtbl.replace ports_out nm u) c.Netlist.outputs;
  let reg_uids =
    Array.of_list
      (Array.to_list c.Netlist.nodes
      |> List.filter Netlist.is_reg
      |> List.map (fun (nd : Netlist.node) -> nd.uid))
  in
  let nregs = Array.length reg_uids in
  (* The latch loop works purely in value slots. *)
  let regs = Array.map (fun u -> slot.(u)) reg_uids in
  let reg_d = Array.make nregs 0
  and reg_en = Array.make nregs (-1)
  and reg_init = Array.make nregs 0 in
  Array.iteri
    (fun i u ->
      match (Netlist.node c u).kind with
      | Netlist.Reg { d; enable; init } ->
          reg_d.(i) <- slot.(d);
          (match enable with Some e -> reg_en.(i) <- slot.(e) | None -> ());
          reg_init.(i) <- Bits.to_int init
      | _ -> assert false)
    reg_uids;
  let wports =
    Array.to_list c.Netlist.mems
    |> List.concat_map (fun (m : Netlist.mem) ->
           List.map
             (fun (w : Netlist.write_port) -> (m, w))
             m.Netlist.mem_writes)
    |> Array.of_list
  in
  let nports = Array.length wports in
  let vals = Array.make (n * batch) 0 in
  let t =
    {
      c;
      batch;
      vals;
      masks;
      widths;
      n_ins;
      op;
      dst;
      a0;
      a1;
      a2;
      k0;
      k1;
      k2;
      k3;
      cc_uid;
      cc_shift;
      slot;
      resident;
      ports_in;
      ports_out;
      regs;
      reg_d;
      reg_en;
      reg_init;
      reg_next = Array.make (nregs * batch) 0;
      mem_data =
        Array.map
          (fun (m : Netlist.mem) -> Array.make (m.Netlist.mem_size * batch) 0)
          c.Netlist.mems;
      wp_mem =
        Array.map (fun ((m : Netlist.mem), _) -> m.Netlist.mem_id) wports;
      wp_en =
        Array.map
          (fun (_, (w : Netlist.write_port)) -> slot.(w.Netlist.w_enable))
          wports;
      wp_addr =
        Array.map
          (fun (_, (w : Netlist.write_port)) -> slot.(w.Netlist.w_addr))
          wports;
      wp_data =
        Array.map
          (fun (_, (w : Netlist.write_port)) -> slot.(w.Netlist.w_data))
          wports;
      wp_size =
        Array.map (fun ((m : Netlist.mem), _) -> m.Netlist.mem_size) wports;
      w_live = Bytes.make (nports * batch) '\000';
      w_addr_s = Array.make (nports * batch) 0;
      w_data_s = Array.make (nports * batch) 0;
      dead_gen = Array.make (n * batch) (-1);
      generation = 0;
      dirty = true;
      cycles = 0;
    }
  in
  (* Sources: constants load once into every lane, registers take their
     init value, inputs start at 0 (already the case). *)
  Array.iter
    (fun (nd : Netlist.node) ->
      match nd.kind with
      | Netlist.Const b ->
          let v = Bits.to_int b and base = slot.(nd.uid) * batch in
          for j = 0 to batch - 1 do
            vals.(base + j) <- v
          done
      | _ -> ())
    c.Netlist.nodes;
  Array.iteri
    (fun i q ->
      let base = q * batch in
      for j = 0 to batch - 1 do
        vals.(base + j) <- reg_init.(i)
      done)
    regs;
  t

let circuit t = t.c
let batch t = t.batch
let compiled_nodes t = t.n_ins
let total_nodes t = Array.length t.masks

(* ------------------------------------------------------------------ *)
(* Evaluation                                                           *)
(* ------------------------------------------------------------------ *)

(* One sweep of the instruction table over all lanes.  All slot indices
   are < |vals| by construction and every stored value is pre-masked, so
   the loop uses unsafe accesses; memory addresses are still
   range-checked.  The operand bases come pre-scaled by the batch stride
   and are hoisted out of the lane loop, so per lane each opcode is a
   handful of array word ops; the hottest opcodes unroll the lane loop
   four-wide to shrink its share of loop overhead. *)
let exec t =
  let v = t.vals and b = t.batch in
  let op = t.op
  and dst = t.dst
  and a0 = t.a0
  and a1 = t.a1
  and a2 = t.a2
  and k0 = t.k0
  and k1 = t.k1
  and k2 = t.k2
  and k3 = t.k3 in
  let b4 = b - 3 in
  for i = 0 to t.n_ins - 1 do
    let d = Array.unsafe_get dst i in
    let x = Array.unsafe_get a0 i in
    let y = Array.unsafe_get a1 i in
    let m = Array.unsafe_get k0 i in
    match Array.unsafe_get op i with
    | 0 (* not *) ->
        for j = 0 to b - 1 do
          Array.unsafe_set v (d + j) (lnot (Array.unsafe_get v (x + j)) land m)
        done
    | 1 (* neg *) ->
        for j = 0 to b - 1 do
          Array.unsafe_set v (d + j) (-Array.unsafe_get v (x + j) land m)
        done
    | 2 (* add *) ->
        let j = ref 0 in
        while !j < b4 do
          let j0 = !j in
          Array.unsafe_set v (d + j0)
            ((Array.unsafe_get v (x + j0) + Array.unsafe_get v (y + j0)) land m);
          Array.unsafe_set v (d + j0 + 1)
            ((Array.unsafe_get v (x + j0 + 1) + Array.unsafe_get v (y + j0 + 1))
            land m);
          Array.unsafe_set v (d + j0 + 2)
            ((Array.unsafe_get v (x + j0 + 2) + Array.unsafe_get v (y + j0 + 2))
            land m);
          Array.unsafe_set v (d + j0 + 3)
            ((Array.unsafe_get v (x + j0 + 3) + Array.unsafe_get v (y + j0 + 3))
            land m);
          j := j0 + 4
        done;
        for j = !j to b - 1 do
          Array.unsafe_set v (d + j)
            ((Array.unsafe_get v (x + j) + Array.unsafe_get v (y + j)) land m)
        done
    | 3 (* sub *) ->
        let j = ref 0 in
        while !j < b4 do
          let j0 = !j in
          Array.unsafe_set v (d + j0)
            ((Array.unsafe_get v (x + j0) - Array.unsafe_get v (y + j0)) land m);
          Array.unsafe_set v (d + j0 + 1)
            ((Array.unsafe_get v (x + j0 + 1) - Array.unsafe_get v (y + j0 + 1))
            land m);
          Array.unsafe_set v (d + j0 + 2)
            ((Array.unsafe_get v (x + j0 + 2) - Array.unsafe_get v (y + j0 + 2))
            land m);
          Array.unsafe_set v (d + j0 + 3)
            ((Array.unsafe_get v (x + j0 + 3) - Array.unsafe_get v (y + j0 + 3))
            land m);
          j := j0 + 4
        done;
        for j = !j to b - 1 do
          Array.unsafe_set v (d + j)
            ((Array.unsafe_get v (x + j) - Array.unsafe_get v (y + j)) land m)
        done
    | 4 (* mul, narrow *) ->
        let j = ref 0 in
        while !j < b4 do
          let j0 = !j in
          Array.unsafe_set v (d + j0)
            (Array.unsafe_get v (x + j0) * Array.unsafe_get v (y + j0) land m);
          Array.unsafe_set v (d + j0 + 1)
            (Array.unsafe_get v (x + j0 + 1)
            * Array.unsafe_get v (y + j0 + 1)
            land m);
          Array.unsafe_set v (d + j0 + 2)
            (Array.unsafe_get v (x + j0 + 2)
            * Array.unsafe_get v (y + j0 + 2)
            land m);
          Array.unsafe_set v (d + j0 + 3)
            (Array.unsafe_get v (x + j0 + 3)
            * Array.unsafe_get v (y + j0 + 3)
            land m);
          j := j0 + 4
        done;
        for j = !j to b - 1 do
          Array.unsafe_set v (d + j)
            (Array.unsafe_get v (x + j) * Array.unsafe_get v (y + j) land m)
        done
    | 5 (* mul, wide split *) ->
        for j = 0 to b - 1 do
          let p = Array.unsafe_get v (x + j)
          and q = Array.unsafe_get v (y + j) in
          Array.unsafe_set v (d + j)
            ((((p land 0xFFFF) * q) + (((p lsr 16) * q) lsl 16)) land m)
        done
    | 6 (* and *) ->
        for j = 0 to b - 1 do
          Array.unsafe_set v (d + j)
            (Array.unsafe_get v (x + j) land Array.unsafe_get v (y + j))
        done
    | 7 (* or *) ->
        for j = 0 to b - 1 do
          Array.unsafe_set v (d + j)
            (Array.unsafe_get v (x + j) lor Array.unsafe_get v (y + j))
        done
    | 8 (* xor *) ->
        for j = 0 to b - 1 do
          Array.unsafe_set v (d + j)
            (Array.unsafe_get v (x + j) lxor Array.unsafe_get v (y + j))
        done
    | 9 (* shl; k1 = result width *) ->
        let rw = Array.unsafe_get k1 i in
        for j = 0 to b - 1 do
          let s = Array.unsafe_get v (y + j) in
          Array.unsafe_set v (d + j)
            (if s >= rw then 0 else Array.unsafe_get v (x + j) lsl s land m)
        done
    | 10 (* shr; k1 = operand width *) ->
        let wa = Array.unsafe_get k1 i in
        for j = 0 to b - 1 do
          let s = Array.unsafe_get v (y + j) in
          Array.unsafe_set v (d + j)
            (if s >= wa then 0 else Array.unsafe_get v (x + j) lsr s)
        done
    | 11 (* sra *) ->
        let sign = Array.unsafe_get k1 i
        and adj = Array.unsafe_get k2 i
        and hi = Array.unsafe_get k3 i in
        let j = ref 0 in
        while !j < b4 do
          let j0 = !j in
          let p0 = Array.unsafe_get v (x + j0)
          and p1 = Array.unsafe_get v (x + j0 + 1)
          and p2 = Array.unsafe_get v (x + j0 + 2)
          and p3 = Array.unsafe_get v (x + j0 + 3) in
          let p0 = if p0 land sign <> 0 then p0 - adj else p0
          and p1 = if p1 land sign <> 0 then p1 - adj else p1
          and p2 = if p2 land sign <> 0 then p2 - adj else p2
          and p3 = if p3 land sign <> 0 then p3 - adj else p3 in
          let s0 = Array.unsafe_get v (y + j0)
          and s1 = Array.unsafe_get v (y + j0 + 1)
          and s2 = Array.unsafe_get v (y + j0 + 2)
          and s3 = Array.unsafe_get v (y + j0 + 3) in
          let s0 = if s0 < hi then s0 else hi
          and s1 = if s1 < hi then s1 else hi
          and s2 = if s2 < hi then s2 else hi
          and s3 = if s3 < hi then s3 else hi in
          Array.unsafe_set v (d + j0) (p0 asr s0 land m);
          Array.unsafe_set v (d + j0 + 1) (p1 asr s1 land m);
          Array.unsafe_set v (d + j0 + 2) (p2 asr s2 land m);
          Array.unsafe_set v (d + j0 + 3) (p3 asr s3 land m);
          j := j0 + 4
        done;
        for j = !j to b - 1 do
          let p = Array.unsafe_get v (x + j) in
          let p = if p land sign <> 0 then p - adj else p in
          let s = Array.unsafe_get v (y + j) in
          let s = if s < hi then s else hi in
          Array.unsafe_set v (d + j) (p asr s land m)
        done
    | 12 (* eq *) ->
        for j = 0 to b - 1 do
          Array.unsafe_set v (d + j)
            (if Array.unsafe_get v (x + j) = Array.unsafe_get v (y + j) then 1
             else 0)
        done
    | 13 (* ne *) ->
        for j = 0 to b - 1 do
          Array.unsafe_set v (d + j)
            (if Array.unsafe_get v (x + j) <> Array.unsafe_get v (y + j) then 1
             else 0)
        done
    | 14 (* lt unsigned *) ->
        for j = 0 to b - 1 do
          Array.unsafe_set v (d + j)
            (if Array.unsafe_get v (x + j) < Array.unsafe_get v (y + j) then 1
             else 0)
        done
    | 15 (* le unsigned *) ->
        for j = 0 to b - 1 do
          Array.unsafe_set v (d + j)
            (if Array.unsafe_get v (x + j) <= Array.unsafe_get v (y + j) then 1
             else 0)
        done
    | 16 (* lt signed; k0 = sga, k1 = ada, k2 = sgb, k3 = adb *) ->
        let ada = Array.unsafe_get k1 i
        and sgb = Array.unsafe_get k2 i
        and adb = Array.unsafe_get k3 i in
        for j = 0 to b - 1 do
          let p = Array.unsafe_get v (x + j)
          and q = Array.unsafe_get v (y + j) in
          let p = if p land m <> 0 then p - ada else p in
          let q = if q land sgb <> 0 then q - adb else q in
          Array.unsafe_set v (d + j) (if p < q then 1 else 0)
        done
    | 17 (* le signed *) ->
        let ada = Array.unsafe_get k1 i
        and sgb = Array.unsafe_get k2 i
        and adb = Array.unsafe_get k3 i in
        for j = 0 to b - 1 do
          let p = Array.unsafe_get v (x + j)
          and q = Array.unsafe_get v (y + j) in
          let p = if p land m <> 0 then p - ada else p in
          let q = if q land sgb <> 0 then q - adb else q in
          Array.unsafe_set v (d + j) (if p <= q then 1 else 0)
        done
    | 18 (* mux; a0 = sel, a1 = then, a2 = else *) ->
        let z = Array.unsafe_get a2 i in
        let j = ref 0 in
        while !j < b4 do
          let j0 = !j in
          Array.unsafe_set v (d + j0)
            (if Array.unsafe_get v (x + j0) <> 0 then
               Array.unsafe_get v (y + j0)
             else Array.unsafe_get v (z + j0));
          Array.unsafe_set v (d + j0 + 1)
            (if Array.unsafe_get v (x + j0 + 1) <> 0 then
               Array.unsafe_get v (y + j0 + 1)
             else Array.unsafe_get v (z + j0 + 1));
          Array.unsafe_set v (d + j0 + 2)
            (if Array.unsafe_get v (x + j0 + 2) <> 0 then
               Array.unsafe_get v (y + j0 + 2)
             else Array.unsafe_get v (z + j0 + 2));
          Array.unsafe_set v (d + j0 + 3)
            (if Array.unsafe_get v (x + j0 + 3) <> 0 then
               Array.unsafe_get v (y + j0 + 3)
             else Array.unsafe_get v (z + j0 + 3));
          j := j0 + 4
        done;
        for j = !j to b - 1 do
          Array.unsafe_set v (d + j)
            (if Array.unsafe_get v (x + j) <> 0 then Array.unsafe_get v (y + j)
             else Array.unsafe_get v (z + j))
        done
    | 19 (* slice; k1 = lo *) ->
        let lo = Array.unsafe_get k1 i in
        let j = ref 0 in
        while !j < b4 do
          let j0 = !j in
          Array.unsafe_set v (d + j0)
            (Array.unsafe_get v (x + j0) lsr lo land m);
          Array.unsafe_set v (d + j0 + 1)
            (Array.unsafe_get v (x + j0 + 1) lsr lo land m);
          Array.unsafe_set v (d + j0 + 2)
            (Array.unsafe_get v (x + j0 + 2) lsr lo land m);
          Array.unsafe_set v (d + j0 + 3)
            (Array.unsafe_get v (x + j0 + 3) lsr lo land m);
          j := j0 + 4
        done;
        for j = !j to b - 1 do
          Array.unsafe_set v (d + j)
            (Array.unsafe_get v (x + j) lsr lo land m)
        done
    | 20 (* concat, 2 leaves *) ->
        let sa = Array.unsafe_get k1 i and sb = Array.unsafe_get k2 i in
        for j = 0 to b - 1 do
          Array.unsafe_set v (d + j)
            (Array.unsafe_get v (x + j)
             lsl sa
            lor Array.unsafe_get v (y + j) lsl sb)
        done
    | 21 (* concat, 3 leaves *) ->
        let z = Array.unsafe_get a2 i in
        let sa = Array.unsafe_get k1 i
        and sb = Array.unsafe_get k2 i
        and sc = Array.unsafe_get k3 i in
        for j = 0 to b - 1 do
          Array.unsafe_set v (d + j)
            (Array.unsafe_get v (x + j)
             lsl sa
            lor Array.unsafe_get v (y + j) lsl sb
            lor Array.unsafe_get v (z + j) lsl sc)
        done
    | 22 (* concat, leaf table; k1 = start, k2 = count, k3 = base *) ->
        let start = Array.unsafe_get k1 i and count = Array.unsafe_get k2 i in
        let base = Array.unsafe_get k3 i in
        let cu = t.cc_uid and cs = t.cc_shift in
        for j = 0 to b - 1 do
          Array.unsafe_set v (d + j) base
        done;
        (* leaf-major: both the leaf's lane values and the destination are
           then walked sequentially *)
        for l = start to start + count - 1 do
          let x = Array.unsafe_get cu l and sh = Array.unsafe_get cs l in
          let j = ref 0 in
          while !j < b4 do
            let j0 = !j in
            Array.unsafe_set v (d + j0)
              (Array.unsafe_get v (d + j0)
              lor Array.unsafe_get v (x + j0) lsl sh);
            Array.unsafe_set v (d + j0 + 1)
              (Array.unsafe_get v (d + j0 + 1)
              lor Array.unsafe_get v (x + j0 + 1) lsl sh);
            Array.unsafe_set v (d + j0 + 2)
              (Array.unsafe_get v (d + j0 + 2)
              lor Array.unsafe_get v (x + j0 + 2) lsl sh);
            Array.unsafe_set v (d + j0 + 3)
              (Array.unsafe_get v (d + j0 + 3)
              lor Array.unsafe_get v (x + j0 + 3) lsl sh);
            j := j0 + 4
          done;
          for j = !j to b - 1 do
            Array.unsafe_set v (d + j)
              (Array.unsafe_get v (d + j)
              lor Array.unsafe_get v (x + j) lsl sh)
          done
        done
    | 23 (* copy / uext *) ->
        for j = 0 to b - 1 do
          Array.unsafe_set v (d + j) (Array.unsafe_get v (x + j))
        done
    | 24 (* sext; k1 = sign, k2 = adj *) ->
        let sign = Array.unsafe_get k1 i and adj = Array.unsafe_get k2 i in
        for j = 0 to b - 1 do
          let p = Array.unsafe_get v (x + j) in
          Array.unsafe_set v (d + j)
            ((if p land sign <> 0 then p - adj else p) land m)
        done
    | 25 (* memrd; k1 = mem id, k2 = size *) ->
        let md = Array.unsafe_get t.mem_data (Array.unsafe_get k1 i) in
        let size = Array.unsafe_get k2 i in
        for j = 0 to b - 1 do
          let a = Array.unsafe_get v (x + j) in
          Array.unsafe_set v (d + j)
            (if a < size then Array.unsafe_get md ((a * b) + j) else 0)
        done
    | _ (* concat, 1 variable leaf; k1 = shift, k3 = base *) ->
        let sh = Array.unsafe_get k1 i and base = Array.unsafe_get k3 i in
        let j = ref 0 in
        while !j < b4 do
          let j0 = !j in
          Array.unsafe_set v (d + j0)
            (base lor Array.unsafe_get v (x + j0) lsl sh);
          Array.unsafe_set v (d + j0 + 1)
            (base lor Array.unsafe_get v (x + j0 + 1) lsl sh);
          Array.unsafe_set v (d + j0 + 2)
            (base lor Array.unsafe_get v (x + j0 + 2) lsl sh);
          Array.unsafe_set v (d + j0 + 3)
            (base lor Array.unsafe_get v (x + j0 + 3) lsl sh);
          j := j0 + 4
        done;
        for j = !j to b - 1 do
          Array.unsafe_set v (d + j)
            (base lor Array.unsafe_get v (x + j) lsl sh)
        done
  done

(* The same sweep specialized for batch = 1 — the flow's simulate stage
   and every interactive caller run single-lane, and dropping the inner
   lane loops (and the [* b] slot scaling) is worth ~25% there. *)
let exec1 t =
  let v = t.vals in
  let op = t.op
  and dst = t.dst
  and a0 = t.a0
  and a1 = t.a1
  and a2 = t.a2
  and k0 = t.k0
  and k1 = t.k1
  and k2 = t.k2
  and k3 = t.k3 in
  for i = 0 to t.n_ins - 1 do
    let d = Array.unsafe_get dst i in
    let x = Array.unsafe_get a0 i in
    let y = Array.unsafe_get a1 i in
    let m = Array.unsafe_get k0 i in
    match Array.unsafe_get op i with
    | 0 -> Array.unsafe_set v d (lnot (Array.unsafe_get v x) land m)
    | 1 -> Array.unsafe_set v d (-Array.unsafe_get v x land m)
    | 2 ->
        Array.unsafe_set v d
          ((Array.unsafe_get v x + Array.unsafe_get v y) land m)
    | 3 ->
        Array.unsafe_set v d
          ((Array.unsafe_get v x - Array.unsafe_get v y) land m)
    | 4 ->
        Array.unsafe_set v d
          (Array.unsafe_get v x * Array.unsafe_get v y land m)
    | 5 ->
        let p = Array.unsafe_get v x and q = Array.unsafe_get v y in
        Array.unsafe_set v d
          ((((p land 0xFFFF) * q) + (((p lsr 16) * q) lsl 16)) land m)
    | 6 ->
        Array.unsafe_set v d (Array.unsafe_get v x land Array.unsafe_get v y)
    | 7 ->
        Array.unsafe_set v d (Array.unsafe_get v x lor Array.unsafe_get v y)
    | 8 ->
        Array.unsafe_set v d (Array.unsafe_get v x lxor Array.unsafe_get v y)
    | 9 ->
        let s = Array.unsafe_get v y in
        Array.unsafe_set v d
          (if s >= Array.unsafe_get k1 i then 0
           else Array.unsafe_get v x lsl s land m)
    | 10 ->
        let s = Array.unsafe_get v y in
        Array.unsafe_set v d
          (if s >= Array.unsafe_get k1 i then 0 else Array.unsafe_get v x lsr s)
    | 11 ->
        let p = Array.unsafe_get v x in
        let p = if p land Array.unsafe_get k1 i <> 0 then p - Array.unsafe_get k2 i else p in
        let hi = Array.unsafe_get k3 i in
        let s = Array.unsafe_get v y in
        let s = if s < hi then s else hi in
        Array.unsafe_set v d (p asr s land m)
    | 12 ->
        Array.unsafe_set v d
          (if Array.unsafe_get v x = Array.unsafe_get v y then 1 else 0)
    | 13 ->
        Array.unsafe_set v d
          (if Array.unsafe_get v x <> Array.unsafe_get v y then 1 else 0)
    | 14 ->
        Array.unsafe_set v d
          (if Array.unsafe_get v x < Array.unsafe_get v y then 1 else 0)
    | 15 ->
        Array.unsafe_set v d
          (if Array.unsafe_get v x <= Array.unsafe_get v y then 1 else 0)
    | 16 ->
        let p = Array.unsafe_get v x and q = Array.unsafe_get v y in
        let p = if p land m <> 0 then p - Array.unsafe_get k1 i else p in
        let q = if q land Array.unsafe_get k2 i <> 0 then q - Array.unsafe_get k3 i else q in
        Array.unsafe_set v d (if p < q then 1 else 0)
    | 17 ->
        let p = Array.unsafe_get v x and q = Array.unsafe_get v y in
        let p = if p land m <> 0 then p - Array.unsafe_get k1 i else p in
        let q = if q land Array.unsafe_get k2 i <> 0 then q - Array.unsafe_get k3 i else q in
        Array.unsafe_set v d (if p <= q then 1 else 0)
    | 18 ->
        Array.unsafe_set v d
          (if Array.unsafe_get v x <> 0 then Array.unsafe_get v y
           else Array.unsafe_get v (Array.unsafe_get a2 i))
    | 19 ->
        Array.unsafe_set v d
          (Array.unsafe_get v x lsr Array.unsafe_get k1 i land m)
    | 20 ->
        Array.unsafe_set v d
          (Array.unsafe_get v x
           lsl Array.unsafe_get k1 i
          lor Array.unsafe_get v y lsl Array.unsafe_get k2 i)
    | 21 ->
        Array.unsafe_set v d
          (Array.unsafe_get v x
           lsl Array.unsafe_get k1 i
          lor Array.unsafe_get v y lsl Array.unsafe_get k2 i
          lor Array.unsafe_get v (Array.unsafe_get a2 i)
              lsl Array.unsafe_get k3 i)
    | 22 ->
        let start = Array.unsafe_get k1 i in
        let count = Array.unsafe_get k2 i in
        let cu = t.cc_uid and cs = t.cc_shift in
        let acc = ref (Array.unsafe_get k3 i) in
        for l = start to start + count - 1 do
          acc :=
            !acc
            lor Array.unsafe_get v (Array.unsafe_get cu l)
                lsl Array.unsafe_get cs l
        done;
        Array.unsafe_set v d !acc
    | 23 -> Array.unsafe_set v d (Array.unsafe_get v x)
    | 24 ->
        let p = Array.unsafe_get v x in
        Array.unsafe_set v d
          ((if p land Array.unsafe_get k1 i <> 0 then
              p - Array.unsafe_get k2 i
            else p)
          land m)
    | 25 ->
        let md = Array.unsafe_get t.mem_data (Array.unsafe_get k1 i) in
        let a = Array.unsafe_get v x in
        Array.unsafe_set v d
          (if a < Array.unsafe_get k2 i then Array.unsafe_get md a else 0)
    | _ ->
        Array.unsafe_set v d
          (Array.unsafe_get k3 i
          lor Array.unsafe_get v x lsl Array.unsafe_get k1 i)
  done

let settle t =
  if t.dirty then begin
    (if t.batch = 1 then exec1 t else exec t);
    t.dirty <- false
  end

let lane_check t caller lane =
  if lane < 0 || lane >= t.batch then
    invalid_arg
      (Printf.sprintf "%s: lane %d out of range (batch %d)" caller lane
         t.batch)

let set ?(lane = 0) t port v =
  match Hashtbl.find_opt t.ports_in port with
  | None -> Netlist.port_error t.c `In ~caller:"Sim.set" port
  | Some u ->
      lane_check t "Sim.set" lane;
      let v = v land t.masks.(u) in
      let idx = (t.slot.(u) * t.batch) + lane in
      if t.vals.(idx) <> v then begin
        t.vals.(idx) <- v;
        t.generation <- t.generation + 1;
        t.dirty <- true
      end

let get ?(lane = 0) t port =
  match Hashtbl.find_opt t.ports_out port with
  | None -> Netlist.port_error t.c `Out ~caller:"Sim.get" port
  | Some u ->
      lane_check t "Sim.get" lane;
      settle t;
      t.vals.((t.slot.(u) * t.batch) + lane)

let signed_of t uid v =
  let w = t.widths.(uid) in
  if v land (1 lsl (w - 1)) <> 0 then v - (1 lsl w) else v

let get_signed ?(lane = 0) t port =
  match Hashtbl.find_opt t.ports_out port with
  | None -> Netlist.port_error t.c `Out ~caller:"Sim.get_signed" port
  | Some u ->
      lane_check t "Sim.get_signed" lane;
      settle t;
      signed_of t u t.vals.((t.slot.(u) * t.batch) + lane)

let step t =
  settle t;
  let v = t.vals and b = t.batch in
  (* Gather enabled memory writes first: their enable/address/data read the
     settled pre-edge values, which the register latch below clobbers. *)
  let nw = Array.length t.wp_mem in
  for i = 0 to nw - 1 do
    let en = t.wp_en.(i) * b
    and ad = t.wp_addr.(i) * b
    and da = t.wp_data.(i) * b
    and size = t.wp_size.(i) in
    for j = 0 to b - 1 do
      let idx = (i * b) + j in
      if Array.unsafe_get v (en + j) <> 0 then begin
        let a = Array.unsafe_get v (ad + j) in
        if a < size then begin
          Bytes.unsafe_set t.w_live idx '\001';
          t.w_addr_s.(idx) <- a;
          t.w_data_s.(idx) <- Array.unsafe_get v (da + j)
        end
        else Bytes.unsafe_set t.w_live idx '\000'
      end
      else Bytes.unsafe_set t.w_live idx '\000'
    done
  done;
  let nr = Array.length t.regs in
  for i = 0 to nr - 1 do
    let d = Array.unsafe_get t.reg_d i * b
    and q = Array.unsafe_get t.regs i * b
    and e = Array.unsafe_get t.reg_en i
    and nx = i * b in
    if e < 0 then
      for j = 0 to b - 1 do
        Array.unsafe_set t.reg_next (nx + j) (Array.unsafe_get v (d + j))
      done
    else begin
      let e = e * b in
      for j = 0 to b - 1 do
        Array.unsafe_set t.reg_next (nx + j)
          (Array.unsafe_get v
             (if Array.unsafe_get v (e + j) <> 0 then d + j else q + j))
      done
    end
  done;
  for i = 0 to nr - 1 do
    let q = Array.unsafe_get t.regs i * b and nx = i * b in
    for j = 0 to b - 1 do
      Array.unsafe_set v (q + j) (Array.unsafe_get t.reg_next (nx + j))
    done
  done;
  (* Apply the writes in declared port order: on an address conflict the
     later-declared port wins — per lane. *)
  for i = 0 to nw - 1 do
    let md = t.mem_data.(t.wp_mem.(i)) in
    for j = 0 to b - 1 do
      let idx = (i * b) + j in
      if Bytes.unsafe_get t.w_live idx <> '\000' then
        md.((t.w_addr_s.(idx) * b) + j) <- t.w_data_s.(idx)
    done
  done;
  t.generation <- t.generation + 1;
  t.dirty <- true;
  t.cycles <- t.cycles + 1

let batch_step = step

let step_n t n =
  for _ = 1 to n do
    step t
  done

let reset t =
  Array.iter
    (fun contents -> Array.fill contents 0 (Array.length contents) 0)
    t.mem_data;
  Array.iteri
    (fun i q ->
      let base = q * t.batch in
      for j = 0 to t.batch - 1 do
        t.vals.(base + j) <- t.reg_init.(i)
      done)
    t.regs;
  t.generation <- t.generation + 1;
  t.dirty <- true;
  t.cycles <- 0

(* On-demand evaluation of nodes outside the compiled schedule, memoized
   per lane and state generation.  Only reachable from [peek]; the netlist
   is a DAG so the recursion terminates, and resident operands are already
   settled by the caller. *)
let rec force t lane u =
  let b = t.batch in
  let idx = (t.slot.(u) * b) + lane in
  if t.resident.(u) || t.dead_gen.(idx) = t.generation then t.vals.(idx)
  else begin
    let nd = Netlist.node t.c u in
    let value o =
      if t.resident.(o) then t.vals.((t.slot.(o) * b) + lane)
      else force t lane o
    in
    let r =
      match nd.kind with
      | Netlist.Input _ | Netlist.Const _ | Netlist.Reg _ -> t.vals.(idx)
      | Netlist.Unop (Netlist.Not, a) -> lnot (value a)
      | Netlist.Unop (Netlist.Neg, a) -> -value a
      | Netlist.Binop (op, a, b) -> (
          let x = value a and y = value b in
          match op with
          | Netlist.Add -> x + y
          | Netlist.Sub -> x - y
          | Netlist.Mul ->
              if t.widths.(a) <= 31 then x * y
              else ((x land 0xFFFF) * y) + (((x lsr 16) * y) lsl 16)
          | Netlist.And -> x land y
          | Netlist.Or -> x lor y
          | Netlist.Xor -> x lxor y
          | Netlist.Shl -> if y >= t.widths.(nd.uid) then 0 else x lsl y
          | Netlist.Shr -> if y >= t.widths.(a) then 0 else x lsr y
          | Netlist.Sra ->
              let s = min y (t.widths.(a) - 1) in
              signed_of t a x asr s
          | Netlist.Eq -> if x = y then 1 else 0
          | Netlist.Ne -> if x <> y then 1 else 0
          | Netlist.Lt Netlist.Unsigned -> if x < y then 1 else 0
          | Netlist.Lt Netlist.Signed ->
              if signed_of t a x < signed_of t b y then 1 else 0
          | Netlist.Le Netlist.Unsigned -> if x <= y then 1 else 0
          | Netlist.Le Netlist.Signed ->
              if signed_of t a x <= signed_of t b y then 1 else 0)
      | Netlist.Mux (s, a, b) -> if value s <> 0 then value a else value b
      | Netlist.Slice (a, _, lo) -> value a lsr lo
      | Netlist.Concat (a, b) -> value a lsl t.widths.(b) lor value b
      | Netlist.Uext a -> value a
      | Netlist.Sext a -> signed_of t a (value a)
      | Netlist.Mem_read (mem, addr) ->
          let contents = t.mem_data.(mem) in
          let a = value addr in
          if a < t.c.Netlist.mems.(mem).Netlist.mem_size then
            contents.((a * b) + lane)
          else 0
    in
    t.vals.(idx) <- r land t.masks.(u);
    t.dead_gen.(idx) <- t.generation;
    t.vals.(idx)
  end

let peek ?(lane = 0) t uid =
  lane_check t "Sim.peek" lane;
  settle t;
  if t.resident.(uid) then t.vals.((t.slot.(uid) * t.batch) + lane)
  else force t lane uid

let peek_signed ?(lane = 0) t uid = signed_of t uid (peek ~lane t uid)

let cycle_count t = t.cycles

let mem_word ?(lane = 0) t mem addr =
  lane_check t "Sim.mem_word" lane;
  t.mem_data.(mem).((addr * t.batch) + lane)
