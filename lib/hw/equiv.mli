(** Random-simulation equivalence checking.

    Drives two circuits with identical pseudo-random input streams for a
    number of clock cycles and compares every output each cycle.  This is
    the workhorse behind the emit/parse round-trip tests and the
    transformation-validation tests (pipelining, stamping, option
    sweeps). *)

type result = Equivalent | Mismatch of { cycle : int; port : string; a : int; b : int }

val check :
  ?cycles:int -> ?seed:int -> ?settle:int -> Netlist.t -> Netlist.t -> result
(** The circuits must have identical input and output port names/widths
    ([settle] initial cycles are driven but not compared — use it for
    circuits whose pipeline depths differ).  Stimulus covers the full
    port width: draws wider than 30 bits are composed from several 30-bit
    chunks, so high bits of wide datapaths are exercised too.
    @raise Invalid_argument on port mismatches. *)

val crosscheck : ?cycles:int -> ?seed:int -> Netlist.t -> result
(** Drives ONE circuit through all three simulation engines — the
    reference interpreter ({!Interp}), the retained cone engine ({!Cone})
    and the levelized batch engine ({!Compile}, behind {!Sim}, at
    batch 1) — with identical pseudo-random stimulus (including all-ones
    and sign-bit extremes at every width).  Outputs and register state
    are compared every cycle; at the end every node value (exercising the
    compiled engines' dead-node fallback) and every memory word is
    compared.  The interpreter is the reference; mismatch labels carry
    [" [cone]"] or [" [level]"] naming the engine that strayed, on top of
    ["reg n<uid>"], ["n<uid>"] or ["<mem>[<addr>]"] for non-output
    state. *)

val crosscheck_batch :
  ?cycles:int -> ?seed:int -> lanes:int -> Netlist.t -> result
(** Drives ONE levelized instance with [lanes] lanes against [lanes]
    independent interpreter instances, each lane fed its own random
    stream.  Catches per-lane state bugs (cross-lane bleed in values,
    registers or memories) invisible to the batch-1 {!crosscheck}.
    Mismatch labels carry [" [lane <l>]"].
    @raise Invalid_argument if [lanes < 1]. *)

val pp_result : Format.formatter -> result -> unit
