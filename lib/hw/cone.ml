(* Closure-specialized dirty-cone simulation engine.

   This was the production engine between PR 1 and PR 6; it is retained —
   like the reference interpreter ({!Interp}) — as an independent oracle
   for the levelized batch engine ({!Compile}) that replaced it behind
   {!Sim}.  {!Equiv.crosscheck} runs all three on every design.

   [create] walks the levelized combinational order once and specializes
   every live node into a [unit -> unit] closure whose operand indices,
   masks and sign-extension constants are resolved at compile time — the
   per-cycle [match nd.kind] dispatch and width-table lookups of the
   reference interpreter ({!Interp}) disappear from the hot loop.

   Two further cuts on the schedule:

   - dead-node elimination: only nodes inside the fan-in cone of an output,
     a register input (d/enable) or a memory write port are scheduled.
     [peek] on an eliminated node falls back to an on-demand recursive
     evaluation memoized per state generation, so observability (waves,
     debugging) is preserved.

   - dirty cones: [set] marks only the schedule positions downstream of the
     changed input, [step] marks only the positions downstream of registers
     and memory reads, and [settle] re-evaluates just the marked slots.  A
     [set] that does not change the input's value marks nothing. *)

type wport = {
  wp_mem : int;
  wp_en : Netlist.uid;
  wp_addr : Netlist.uid;
  wp_data : Netlist.uid;
  wp_size : int;
}

type t = {
  c : Netlist.t;
  values : int array;                 (* by uid *)
  masks : int array;                  (* by uid *)
  widths : int array;                 (* by uid *)
  (* Compiled combinational schedule (topological order over live nodes). *)
  thunks : (unit -> unit) array;      (* by schedule position *)
  pending : Bytes.t;                  (* scratch for sparse settles *)
  mutable queued : int array list;    (* dirty cones since the last settle *)
  mutable queued_all : bool;
  seq_cone : int array;               (* positions downstream of regs/memories *)
  resident : bool array;              (* uid: value is current after [settle] *)
  ports_in : (string, Netlist.uid * int array) Hashtbl.t;  (* name -> uid, cone *)
  ports_out : (string, Netlist.uid) Hashtbl.t;
  (* Registers, flattened for the latch loop. *)
  regs : Netlist.uid array;
  reg_d : int array;
  reg_en : int array;                 (* -1 = always enabled *)
  reg_init : int array;
  reg_next : int array;               (* scratch for atomic update *)
  (* Memories and their write ports in declared order. *)
  mem_data : int array array;
  wports : wport array;
  w_addr_s : int array;               (* gather scratch, by port *)
  w_data_s : int array;
  w_live : bool array;
  (* On-demand evaluation of eliminated nodes. *)
  dead_gen : int array;               (* by uid; = generation when memoized *)
  mutable generation : int;
  mutable cycles : int;
}

let mask_of_width = Interp.mask_of_width

(* ------------------------------------------------------------------ *)
(* Closure specialization                                               *)
(* ------------------------------------------------------------------ *)

(* All operand indices are < |values| by construction and every stored
   value is pre-masked, so the closures use unsafe array accesses; memory
   addresses are still range-checked. *)
(* Every branch builds a single flat closure over raw [Array.unsafe_get] /
   [Array.unsafe_set] so an evaluation is exactly one indirect call — no
   helper closures inside the thunk bodies (those cost a second indirect
   call per operand on the default compiler). *)
let compile_node values widths mem_data ~concat_plan (nd : Netlist.node) masks
    =
  let u = nd.uid in
  let m = masks.(u) in
  let v = values in
  match nd.kind with
  | Netlist.Input _ | Netlist.Const _ | Netlist.Reg _ ->
      assert false (* sources are never scheduled *)
  | Netlist.Unop (Netlist.Not, a) ->
      fun () -> Array.unsafe_set v u (lnot (Array.unsafe_get v a) land m)
  | Netlist.Unop (Netlist.Neg, a) ->
      fun () -> Array.unsafe_set v u (-Array.unsafe_get v a land m)
  | Netlist.Binop (op, a, b) -> (
      match op with
      | Netlist.Add ->
          fun () ->
            Array.unsafe_set v u
              ((Array.unsafe_get v a + Array.unsafe_get v b) land m)
      | Netlist.Sub ->
          fun () ->
            Array.unsafe_set v u
              ((Array.unsafe_get v a - Array.unsafe_get v b) land m)
      | Netlist.Mul ->
          if widths.(a) <= 31 then
            fun () ->
              Array.unsafe_set v u
                (Array.unsafe_get v a * Array.unsafe_get v b land m)
          else
            fun () ->
              let x = Array.unsafe_get v a and y = Array.unsafe_get v b in
              Array.unsafe_set v u
                ((((x land 0xFFFF) * y) + (((x lsr 16) * y) lsl 16)) land m)
      | Netlist.And ->
          fun () ->
            Array.unsafe_set v u (Array.unsafe_get v a land Array.unsafe_get v b)
      | Netlist.Or ->
          fun () ->
            Array.unsafe_set v u (Array.unsafe_get v a lor Array.unsafe_get v b)
      | Netlist.Xor ->
          fun () ->
            Array.unsafe_set v u (Array.unsafe_get v a lxor Array.unsafe_get v b)
      | Netlist.Shl ->
          (* Guard against the result width: the result node may be wider
             than the operand, and those shifts are legal. *)
          let rw = widths.(u) in
          fun () ->
            let y = Array.unsafe_get v b in
            Array.unsafe_set v u
              (if y >= rw then 0 else Array.unsafe_get v a lsl y land m)
      | Netlist.Shr ->
          let wa = widths.(a) in
          fun () ->
            let y = Array.unsafe_get v b in
            Array.unsafe_set v u
              (if y >= wa then 0 else Array.unsafe_get v a lsr y)
      | Netlist.Sra ->
          let sign = 1 lsl (widths.(a) - 1) in
          let adj = 1 lsl widths.(a) and hi = widths.(a) - 1 in
          fun () ->
            let x = Array.unsafe_get v a in
            let x = if x land sign <> 0 then x - adj else x in
            Array.unsafe_set v u (x asr min (Array.unsafe_get v b) hi land m)
      | Netlist.Eq ->
          fun () ->
            Array.unsafe_set v u
              (if Array.unsafe_get v a = Array.unsafe_get v b then 1 else 0)
      | Netlist.Ne ->
          fun () ->
            Array.unsafe_set v u
              (if Array.unsafe_get v a <> Array.unsafe_get v b then 1 else 0)
      | Netlist.Lt Netlist.Unsigned ->
          fun () ->
            Array.unsafe_set v u
              (if Array.unsafe_get v a < Array.unsafe_get v b then 1 else 0)
      | Netlist.Le Netlist.Unsigned ->
          fun () ->
            Array.unsafe_set v u
              (if Array.unsafe_get v a <= Array.unsafe_get v b then 1 else 0)
      | Netlist.Lt Netlist.Signed ->
          let sga = 1 lsl (widths.(a) - 1) and ada = 1 lsl widths.(a) in
          let sgb = 1 lsl (widths.(b) - 1) and adb = 1 lsl widths.(b) in
          fun () ->
            let x = Array.unsafe_get v a and y = Array.unsafe_get v b in
            let x = if x land sga <> 0 then x - ada else x in
            let y = if y land sgb <> 0 then y - adb else y in
            Array.unsafe_set v u (if x < y then 1 else 0)
      | Netlist.Le Netlist.Signed ->
          let sga = 1 lsl (widths.(a) - 1) and ada = 1 lsl widths.(a) in
          let sgb = 1 lsl (widths.(b) - 1) and adb = 1 lsl widths.(b) in
          fun () ->
            let x = Array.unsafe_get v a and y = Array.unsafe_get v b in
            let x = if x land sga <> 0 then x - ada else x in
            let y = if y land sgb <> 0 then y - adb else y in
            Array.unsafe_set v u (if x <= y then 1 else 0))
  | Netlist.Mux (s, a, b) ->
      fun () ->
        Array.unsafe_set v u
          (if Array.unsafe_get v s <> 0 then Array.unsafe_get v a
           else Array.unsafe_get v b)
  | Netlist.Slice (a, _, lo) ->
      fun () -> Array.unsafe_set v u (Array.unsafe_get v a lsr lo land m)
  | Netlist.Concat _ -> (
      (* [concat_plan] flattens absorbed fanout-1 concat chains into this
         node, so one call assembles the whole word from its leaves.
         Operands are pre-masked and offsets sum to the result width, so
         no final mask is needed. *)
      match concat_plan u with
      | [| (a, sa); (b, sb) |] ->
          fun () ->
            Array.unsafe_set v u
              (Array.unsafe_get v a lsl sa lor Array.unsafe_get v b lsl sb)
      | [| (a, sa); (b, sb); (c, sc) |] ->
          fun () ->
            Array.unsafe_set v u
              (Array.unsafe_get v a lsl sa
              lor Array.unsafe_get v b lsl sb
              lor Array.unsafe_get v c lsl sc)
      | [| (a, sa); (b, sb); (c, sc); (d, sd) |] ->
          fun () ->
            Array.unsafe_set v u
              (Array.unsafe_get v a lsl sa
              lor Array.unsafe_get v b lsl sb
              lor Array.unsafe_get v c lsl sc
              lor Array.unsafe_get v d lsl sd)
      | leaves ->
          let k = Array.length leaves in
          let uids = Array.map fst leaves and shifts = Array.map snd leaves in
          fun () ->
            let acc = ref 0 in
            for i = 0 to k - 1 do
              acc :=
                !acc
                lor Array.unsafe_get v (Array.unsafe_get uids i)
                    lsl Array.unsafe_get shifts i
            done;
            Array.unsafe_set v u !acc)
  | Netlist.Uext a -> fun () -> Array.unsafe_set v u (Array.unsafe_get v a)
  | Netlist.Sext a ->
      let sign = 1 lsl (widths.(a) - 1) and adj = 1 lsl widths.(a) in
      fun () ->
        let x = Array.unsafe_get v a in
        Array.unsafe_set v u
          ((if x land sign <> 0 then x - adj else x) land m)
  | Netlist.Mem_read (mem, addr) ->
      let contents = mem_data.(mem) in
      let len = Array.length contents in
      fun () ->
        let a = Array.unsafe_get v addr in
        Array.unsafe_set v u
          (if a < len then Array.unsafe_get contents a else 0)

(* ------------------------------------------------------------------ *)
(* Construction                                                         *)
(* ------------------------------------------------------------------ *)

let is_source (nd : Netlist.node) =
  match nd.kind with
  | Netlist.Input _ | Netlist.Const _ | Netlist.Reg _ -> true
  | _ -> false

let create c =
  let n = Netlist.num_nodes c in
  let masks = Array.make n 0 and widths = Array.make n 0 in
  Array.iter
    (fun (nd : Netlist.node) ->
      masks.(nd.uid) <- mask_of_width nd.width;
      widths.(nd.uid) <- nd.width)
    c.Netlist.nodes;
  (* Liveness: backward closure from outputs, register inputs and memory
     write ports.  Everything else is dead combinational logic. *)
  let live = Array.make n false in
  let rec mark u =
    if not live.(u) then begin
      live.(u) <- true;
      List.iter mark (Netlist.operands (Netlist.node c u))
    end
  in
  List.iter (fun (_, u) -> mark u) c.Netlist.outputs;
  Array.iter
    (fun (nd : Netlist.node) ->
      match nd.kind with
      | Netlist.Reg { d; enable; _ } ->
          mark d;
          Option.iter mark enable
      | _ -> ())
    c.Netlist.nodes;
  Array.iter
    (fun (m : Netlist.mem) ->
      List.iter
        (fun (w : Netlist.write_port) ->
          mark w.Netlist.w_enable;
          mark w.Netlist.w_addr;
          mark w.Netlist.w_data)
        m.Netlist.mem_writes)
    c.Netlist.mems;
  (* Concat-tree fusion: elaborated netlists assemble wide words bit by
     bit, so concat chains dominate real schedules.  A live concat whose
     only consumer is another live concat (and which feeds nothing else —
     no output, register or memory port) is absorbed into its consumer:
     the surviving apex reads the chain's leaves directly and the
     intermediates drop out of the schedule entirely.  [peek] on an
     absorbed node falls back to the on-demand path like any dead node. *)
  let uses = Array.make n 0 and sole_user = Array.make n (-1) in
  let rooted = Array.make n false in
  Array.iter
    (fun (nd : Netlist.node) ->
      if live.(nd.uid) then
        List.iter
          (fun o ->
            uses.(o) <- uses.(o) + 1;
            sole_user.(o) <- nd.uid)
          (Netlist.operands nd))
    c.Netlist.nodes;
  List.iter (fun (_, u) -> rooted.(u) <- true) c.Netlist.outputs;
  Array.iter
    (fun (nd : Netlist.node) ->
      match nd.kind with
      | Netlist.Reg { d; enable; _ } ->
          rooted.(d) <- true;
          Option.iter (fun e -> rooted.(e) <- true) enable
      | _ -> ())
    c.Netlist.nodes;
  Array.iter
    (fun (m : Netlist.mem) ->
      List.iter
        (fun (w : Netlist.write_port) ->
          rooted.(w.Netlist.w_enable) <- true;
          rooted.(w.Netlist.w_addr) <- true;
          rooted.(w.Netlist.w_data) <- true)
        m.Netlist.mem_writes)
    c.Netlist.mems;
  let is_concat u =
    match (Netlist.node c u).kind with Netlist.Concat _ -> true | _ -> false
  in
  let absorbed = Array.make n false in
  Array.iter
    (fun (nd : Netlist.node) ->
      let u = nd.uid in
      absorbed.(u) <-
        live.(u) && is_concat u && uses.(u) = 1 && (not rooted.(u))
        && sole_user.(u) >= 0
        && live.(sole_user.(u))
        && is_concat sole_user.(u))
    c.Netlist.nodes;
  (* Leaves of a surviving concat, with the bit offset of each leaf.  The
     operands of an absorbed child are inlined recursively. *)
  let rec leaves_of u shift acc =
    if absorbed.(u) then
      match (Netlist.node c u).kind with
      | Netlist.Concat (a, b) ->
          let wb = widths.(b) in
          leaves_of a (shift + wb) (leaves_of b shift acc)
      | _ -> assert false
    else (u, shift) :: acc
  in
  let concat_plan u =
    match (Netlist.node c u).kind with
    | Netlist.Concat (a, b) ->
        let wb = widths.(b) in
        Array.of_list (leaves_of a wb (leaves_of b 0 []))
    | _ -> assert false
  in
  (* Schedule = live non-source, non-absorbed nodes in levelized order. *)
  let sched_uid =
    Netlist.comb_order c |> Array.to_list
    |> List.filter (fun u ->
           live.(u)
           && (not (is_source (Netlist.node c u)))
           && not absorbed.(u))
    |> Array.of_list
  in
  let nsched = Array.length sched_uid in
  let pos_of = Array.make n (-1) in
  Array.iteri (fun pos u -> pos_of.(u) <- pos) sched_uid;
  let resident = Array.make n false in
  Array.iter
    (fun (nd : Netlist.node) ->
      resident.(nd.uid) <- pos_of.(nd.uid) >= 0 || is_source nd)
    c.Netlist.nodes;
  (* Combinational dependency edges into scheduled nodes, for the cones.
     A fused concat depends directly on its leaves — the absorbed
     intermediates have no schedule position to re-evaluate. *)
  let eff_operands u =
    let nd = Netlist.node c u in
    match nd.Netlist.kind with
    | Netlist.Concat _ ->
        Array.to_list (Array.map fst (concat_plan u))
    | _ -> Netlist.operands nd
  in
  let dependents = Array.make n [] in
  Array.iter
    (fun u ->
      List.iter
        (fun o -> dependents.(o) <- u :: dependents.(o))
        (eff_operands u))
    sched_uid;
  let cone_from seeds =
    (* Schedule positions reachable from [seeds] through combinational
       edges; a seed that is itself scheduled is included. *)
    let seen = Array.make n false in
    let acc = ref [] in
    let rec visit u =
      if not seen.(u) then begin
        seen.(u) <- true;
        if pos_of.(u) >= 0 then acc := pos_of.(u) :: !acc;
        List.iter visit dependents.(u)
      end
    in
    List.iter visit seeds;
    Array.of_list (List.sort_uniq compare !acc)
  in
  let mem_data =
    Array.map (fun (m : Netlist.mem) -> Array.make m.Netlist.mem_size 0)
      c.Netlist.mems
  in
  let values = Array.make n 0 in
  let thunks =
    Array.map
      (fun u ->
        compile_node values widths mem_data ~concat_plan (Netlist.node c u)
          masks)
      sched_uid
  in
  let ports_in = Hashtbl.create 16 and ports_out = Hashtbl.create 16 in
  List.iter
    (fun (nm, u) -> Hashtbl.replace ports_in nm (u, cone_from [ u ]))
    c.Netlist.inputs;
  List.iter (fun (nm, u) -> Hashtbl.replace ports_out nm u) c.Netlist.outputs;
  (* After a clock edge, registers and memory contents may have changed:
     everything downstream of a register or a memory read is re-evaluated. *)
  let seq_seeds =
    Array.to_list c.Netlist.nodes
    |> List.filter_map (fun (nd : Netlist.node) ->
           match nd.kind with
           | Netlist.Reg _ -> Some nd.uid
           | Netlist.Mem_read _ when pos_of.(nd.uid) >= 0 -> Some nd.uid
           | _ -> None)
  in
  let regs =
    Array.of_list
      (Array.to_list c.Netlist.nodes
      |> List.filter Netlist.is_reg
      |> List.map (fun (nd : Netlist.node) -> nd.uid))
  in
  let nregs = Array.length regs in
  let reg_d = Array.make nregs 0
  and reg_en = Array.make nregs (-1)
  and reg_init = Array.make nregs 0 in
  Array.iteri
    (fun i u ->
      match (Netlist.node c u).kind with
      | Netlist.Reg { d; enable; init } ->
          reg_d.(i) <- d;
          (match enable with Some e -> reg_en.(i) <- e | None -> ());
          reg_init.(i) <- Bits.to_int init
      | _ -> assert false)
    regs;
  let wports =
    Array.to_list c.Netlist.mems
    |> List.concat_map (fun (m : Netlist.mem) ->
           List.map
             (fun (w : Netlist.write_port) ->
               {
                 wp_mem = m.Netlist.mem_id;
                 wp_en = w.Netlist.w_enable;
                 wp_addr = w.Netlist.w_addr;
                 wp_data = w.Netlist.w_data;
                 wp_size = m.Netlist.mem_size;
               })
             m.Netlist.mem_writes)
    |> Array.of_list
  in
  let nports = Array.length wports in
  let t =
    {
      c;
      values;
      masks;
      widths;
      thunks;
      pending = Bytes.make nsched '\000';
      queued = [];
      queued_all = true;
      seq_cone = cone_from seq_seeds;
      resident;
      ports_in;
      ports_out;
      regs;
      reg_d;
      reg_en;
      reg_init;
      reg_next = Array.make nregs 0;
      mem_data;
      wports;
      w_addr_s = Array.make nports 0;
      w_data_s = Array.make nports 0;
      w_live = Array.make nports false;
      dead_gen = Array.make n (-1);
      generation = 0;
      cycles = 0;
    }
  in
  (* Sources: constants are loaded once, registers take their init value,
     inputs start at 0 (already the case). *)
  Array.iter
    (fun (nd : Netlist.node) ->
      match nd.kind with
      | Netlist.Const b -> values.(nd.uid) <- Bits.to_int b
      | _ -> ())
    c.Netlist.nodes;
  Array.iteri (fun i u -> values.(u) <- reg_init.(i)) regs;
  t

let circuit t = t.c
let compiled_nodes t = Array.length t.thunks
let total_nodes t = Array.length t.values

(* ------------------------------------------------------------------ *)
(* Evaluation                                                           *)
(* ------------------------------------------------------------------ *)

(* Marking a dirty source only queues its (precomputed, sorted) cone; the
   merge cost is paid once in [settle], and a settle that covers most of
   the schedule skips the per-slot flags entirely and just sweeps. *)
let mark_cone t cone = if Array.length cone > 0 then t.queued <- cone :: t.queued

let mark_all t = t.queued_all <- true

let run_all t =
  let thunks = t.thunks in
  for i = 0 to Array.length thunks - 1 do
    (Array.unsafe_get thunks i) ()
  done

let run_sparse t cones =
  let pend = t.pending in
  let thunks = t.thunks in
  List.iter
    (fun cone -> Array.iter (fun p -> Bytes.unsafe_set pend p '\001') cone)
    cones;
  for i = 0 to Array.length thunks - 1 do
    if Bytes.unsafe_get pend i <> '\000' then begin
      Bytes.unsafe_set pend i '\000';
      (Array.unsafe_get thunks i) ()
    end
  done

let settle t =
  if t.queued_all then begin
    t.queued_all <- false;
    t.queued <- [];
    run_all t
  end
  else
    match t.queued with
    | [] -> ()
    | cones ->
        t.queued <- [];
        let total =
          List.fold_left (fun acc c -> acc + Array.length c) 0 cones
        in
        (* Evaluating a clean node is idempotent, so once the union covers
           a good share of the schedule the straight sweep is cheaper than
           flag maintenance. *)
        if 2 * total >= Array.length t.thunks then run_all t
        else run_sparse t cones

let set t port v =
  match Hashtbl.find_opt t.ports_in port with
  | None -> Netlist.port_error t.c `In ~caller:"Sim.set" port
  | Some (u, cone) ->
      let v = v land t.masks.(u) in
      if t.values.(u) <> v then begin
        t.values.(u) <- v;
        t.generation <- t.generation + 1;
        mark_cone t cone
      end

let get t port =
  match Hashtbl.find_opt t.ports_out port with
  | None -> Netlist.port_error t.c `Out ~caller:"Sim.get" port
  | Some u ->
      settle t;
      t.values.(u)

let signed_of t uid v =
  let w = t.widths.(uid) in
  if v land (1 lsl (w - 1)) <> 0 then v - (1 lsl w) else v

let get_signed t port =
  match Hashtbl.find_opt t.ports_out port with
  | None -> Netlist.port_error t.c `Out ~caller:"Sim.get_signed" port
  | Some u ->
      settle t;
      signed_of t u t.values.(u)

let step t =
  settle t;
  (* Gather enabled memory writes first: their enable/address/data read the
     settled pre-edge values, which the register latch below clobbers. *)
  let nw = Array.length t.wports in
  for i = 0 to nw - 1 do
    let p = t.wports.(i) in
    if t.values.(p.wp_en) <> 0 then begin
      let a = t.values.(p.wp_addr) in
      if a < p.wp_size then begin
        t.w_live.(i) <- true;
        t.w_addr_s.(i) <- a;
        t.w_data_s.(i) <- t.values.(p.wp_data)
      end
      else t.w_live.(i) <- false
    end
    else t.w_live.(i) <- false
  done;
  let nr = Array.length t.regs in
  for i = 0 to nr - 1 do
    let e = Array.unsafe_get t.reg_en i in
    let load = e < 0 || Array.unsafe_get t.values e <> 0 in
    Array.unsafe_set t.reg_next i
      (Array.unsafe_get t.values
         (if load then Array.unsafe_get t.reg_d i else Array.unsafe_get t.regs i))
  done;
  for i = 0 to nr - 1 do
    Array.unsafe_set t.values (Array.unsafe_get t.regs i)
      (Array.unsafe_get t.reg_next i)
  done;
  (* Apply the writes in declared port order: on an address conflict the
     later-declared port wins. *)
  for i = 0 to nw - 1 do
    if t.w_live.(i) then
      t.mem_data.(t.wports.(i).wp_mem).(t.w_addr_s.(i)) <- t.w_data_s.(i)
  done;
  t.generation <- t.generation + 1;
  mark_cone t t.seq_cone;
  t.cycles <- t.cycles + 1

let step_n t n =
  for _ = 1 to n do
    step t
  done

let reset t =
  Array.iter
    (fun contents -> Array.fill contents 0 (Array.length contents) 0)
    t.mem_data;
  Array.iteri (fun i u -> t.values.(u) <- t.reg_init.(i)) t.regs;
  t.generation <- t.generation + 1;
  mark_all t;
  t.cycles <- 0

(* On-demand evaluation of nodes outside the compiled schedule, memoized
   per state generation.  Only reachable from [peek]; the netlist is a DAG
   so the recursion terminates, and resident operands are already settled
   by the caller. *)
let rec force t u =
  if t.resident.(u) || t.dead_gen.(u) = t.generation then t.values.(u)
  else begin
    let nd = Netlist.node t.c u in
    let value o = force t o in
    let r =
      match nd.kind with
      | Netlist.Input _ | Netlist.Const _ | Netlist.Reg _ -> t.values.(u)
      | Netlist.Unop (Netlist.Not, a) -> lnot (value a)
      | Netlist.Unop (Netlist.Neg, a) -> -value a
      | Netlist.Binop (op, a, b) -> (
          let x = value a and y = value b in
          match op with
          | Netlist.Add -> x + y
          | Netlist.Sub -> x - y
          | Netlist.Mul ->
              if t.widths.(a) <= 31 then x * y
              else ((x land 0xFFFF) * y) + (((x lsr 16) * y) lsl 16)
          | Netlist.And -> x land y
          | Netlist.Or -> x lor y
          | Netlist.Xor -> x lxor y
          | Netlist.Shl -> if y >= t.widths.(nd.uid) then 0 else x lsl y
          | Netlist.Shr -> if y >= t.widths.(a) then 0 else x lsr y
          | Netlist.Sra ->
              let s = min y (t.widths.(a) - 1) in
              signed_of t a x asr s
          | Netlist.Eq -> if x = y then 1 else 0
          | Netlist.Ne -> if x <> y then 1 else 0
          | Netlist.Lt Netlist.Unsigned -> if x < y then 1 else 0
          | Netlist.Lt Netlist.Signed ->
              if signed_of t a x < signed_of t b y then 1 else 0
          | Netlist.Le Netlist.Unsigned -> if x <= y then 1 else 0
          | Netlist.Le Netlist.Signed ->
              if signed_of t a x <= signed_of t b y then 1 else 0)
      | Netlist.Mux (s, a, b) -> if value s <> 0 then value a else value b
      | Netlist.Slice (a, _, lo) -> value a lsr lo
      | Netlist.Concat (a, b) -> value a lsl t.widths.(b) lor value b
      | Netlist.Uext a -> value a
      | Netlist.Sext a -> signed_of t a (value a)
      | Netlist.Mem_read (mem, addr) ->
          let contents = t.mem_data.(mem) in
          let a = value addr in
          if a < Array.length contents then contents.(a) else 0
    in
    t.values.(u) <- r land t.masks.(u);
    t.dead_gen.(u) <- t.generation;
    t.values.(u)
  end

let peek t uid =
  settle t;
  if t.resident.(uid) then t.values.(uid) else force t uid

let peek_signed t uid = signed_of t uid (peek t uid)

let cycle_count t = t.cycles

let mem_word t mem addr = t.mem_data.(mem).(addr)
