type report = {
  circuit_name : string;
  fmax_mhz : float;
  period_ns : float;
  logic_levels : int;
  luts : int;
  ffs : int;
  dsps : int;
  luts_nodsp : int;
  ffs_nodsp : int;
  ios : int;
  area : int;
  critical_path : string list;
}

let run ?(device = Device.xcvu9p) ?(hook = fun _ _ -> ()) c =
  let timing = Timing.analyze ~use_dsp:true device c in
  hook "logic_levels" timing.Timing.logic_levels;
  let with_dsp = Techmap.circuit_cost device ~use_dsp:true c in
  let no_dsp = Techmap.circuit_cost device ~use_dsp:false c in
  hook "mapped_luts" with_dsp.Techmap.luts;
  hook "mapped_ffs" with_dsp.Techmap.ffs;
  hook "area" (no_dsp.Techmap.luts + no_dsp.Techmap.ffs);
  {
    circuit_name = c.Netlist.circuit_name;
    fmax_mhz = timing.Timing.fmax_mhz;
    period_ns = timing.Timing.period_ns;
    logic_levels = timing.Timing.logic_levels;
    luts = with_dsp.Techmap.luts;
    ffs = with_dsp.Techmap.ffs;
    dsps = with_dsp.Techmap.dsps;
    luts_nodsp = no_dsp.Techmap.luts;
    ffs_nodsp = no_dsp.Techmap.ffs;
    ios = Techmap.io_bits c;
    area = no_dsp.Techmap.luts + no_dsp.Techmap.ffs;
    critical_path =
      List.map (fun p -> p.Timing.point_desc) timing.Timing.critical_path;
  }

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>%s:@ fmax = %.2f MHz (period %.2f ns, %d logic levels)@ \
     N_LUT=%d N_FF=%d N_DSP=%d N_IO=%d@ \
     N*_LUT=%d N*_FF=%d A=%d@]"
    r.circuit_name r.fmax_mhz r.period_ns r.logic_levels r.luts r.ffs r.dsps
    r.ios r.luts_nodsp r.ffs_nodsp r.area

let check_fits (dev : Device.t) r =
  let checks =
    [
      ("LUT", r.luts_nodsp, dev.Device.lut_capacity);
      ("FF", r.ffs_nodsp, dev.Device.ff_capacity);
      ("DSP", r.dsps, dev.Device.dsp_capacity);
      ("IO", r.ios, dev.Device.io_capacity);
    ]
  in
  let over = List.filter (fun (_, used, cap) -> used > cap) checks in
  match over with
  | [] -> Ok ()
  | (name, used, cap) :: _ ->
      Error
        (Printf.sprintf "%s: %s over capacity (%d > %d)" r.circuit_name name
           used cap)
