(** Closure-specialized dirty-cone simulation of {!Netlist} circuits.

    The netlist is specialized once at {!create} time: every live node in
    the levelized combinational order becomes a closure with its operand
    indices, masks and sign-extension constants resolved, so the per-cycle
    hot loop is an indirect call per node instead of a kind dispatch plus
    width-table lookups.  Nodes outside the fan-in cone of the outputs,
    register inputs and memory write ports are eliminated from the schedule
    (they remain observable through {!peek}), and settling re-evaluates only
    the schedule slots downstream of what actually changed.

    This engine backed {!Sim} until the levelized batch engine
    ({!Compile}) replaced it; it is retained — alongside the reference
    interpreter {!Interp} — as a second independent oracle, and
    {!Equiv.crosscheck} runs all three on every design. *)

type t

val create : Netlist.t -> t
(** Compiles the evaluation schedule.  The circuit must already be valid. *)

val circuit : t -> Netlist.t

val compiled_nodes : t -> int
(** Number of nodes in the compiled schedule (after dead-node elimination
    and source removal). *)

val total_nodes : t -> int
(** Number of nodes in the underlying netlist. *)

val reset : t -> unit
(** Loads every register with its [init] value and zeroes the memories.
    Inputs keep their current values (initially 0). *)

val set : t -> string -> int -> unit
(** [set sim port v] drives input [port] with [v] (masked to the port
    width; negative values are taken as two's complement).  Marks only the
    changed input's downstream cone for re-evaluation — a no-change [set]
    is free.
    @raise Invalid_argument on an unknown input name, listing the circuit's
    input ports. *)

val get : t -> string -> int
(** Unsigned value of an output port, after settling the fabric.
    @raise Invalid_argument on an unknown output name. *)

val get_signed : t -> string -> int

val step : t -> unit
(** One rising clock edge: settle, gather enabled memory writes, latch all
    registers, then apply the writes in declared port order (on an address
    conflict the later-declared port wins). *)

val step_n : t -> int -> unit

val peek : t -> Netlist.uid -> int
(** Unsigned value of an arbitrary node, after settling.  Nodes eliminated
    from the schedule are evaluated on demand (memoized until the next
    state change), so waveform recording over dead logic still works. *)

val peek_signed : t -> Netlist.uid -> int

val cycle_count : t -> int
(** Number of {!step}s since creation or the last {!reset}. *)

val mem_word : t -> Netlist.mem_id -> int -> int
(** Current contents of one memory word (for state cross-checks). *)
