(** Synthesis driver: runs technology mapping and static timing on a circuit
    and assembles the report the paper's evaluation consumes.

    Mirrors the paper's procedure: frequency and throughput come from a
    normal synthesis run (DSP inference enabled); the normalized area
    [A = N*_LUT + N*_FF] comes from a second mapping with DSPs disabled
    (Vivado's [maxdsp=0]). *)

type report = {
  circuit_name : string;
  fmax_mhz : float;
  period_ns : float;
  logic_levels : int;
  luts : int;          (** N_LUT, DSP inference enabled *)
  ffs : int;           (** N_FF *)
  dsps : int;          (** N_DSP *)
  luts_nodsp : int;    (** N*_LUT, maxdsp=0 *)
  ffs_nodsp : int;     (** N*_FF *)
  ios : int;           (** N_IO *)
  area : int;          (** A = N*_LUT + N*_FF *)
  critical_path : string list;
}

val run : ?device:Device.t -> ?hook:(string -> int -> unit) -> Netlist.t -> report
(** Synthesizes for {!Device.xcvu9p} unless another device is given.
    [hook] is a stage hook for observability layers: it is called with
    intermediate counters as the sub-phases complete ([logic_levels] after
    timing analysis; [mapped_luts], [mapped_ffs] and normalized [area]
    after technology mapping) and must not affect the result. *)

val pp_report : Format.formatter -> report -> unit

val check_fits : Device.t -> report -> (unit, string) result
(** Errors if the design exceeds the device's LUT/FF/DSP/IO capacity. *)
