let n = Axis.Block.size

(* basis.(u).(x) = C(u)/2 * cos((2x+1) u pi / 16) *)
let basis =
  Array.init n (fun u ->
      Array.init n (fun x ->
          let cu = if u = 0 then 1.0 /. sqrt 2.0 else 1.0 in
          cu /. 2.0
          *. cos (float_of_int ((2 * x) + 1) *. float_of_int u *. Float.pi /. 16.0)))

let idct_exact blk =
  let out = Array.make (n * n) 0.0 in
  for x = 0 to n - 1 do
    for y = 0 to n - 1 do
      let acc = ref 0.0 in
      for u = 0 to n - 1 do
        for v = 0 to n - 1 do
          acc :=
            !acc
            +. (float_of_int (Axis.Block.get blk ~row:u ~col:v)
               *. basis.(u).(x)
               *. basis.(v).(y))
        done
      done;
      out.((x * n) + y) <- !acc
    done
  done;
  out

let round_half_away x = if x >= 0.0 then floor (x +. 0.5) else ceil (x -. 0.5)

let idct blk =
  let exact = idct_exact blk in
  Array.map (fun v -> Axis.Block.clamp_output (int_of_float (round_half_away v))) exact

let fdct_exact blk =
  let out = Array.make (n * n) 0.0 in
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      let acc = ref 0.0 in
      for x = 0 to n - 1 do
        for y = 0 to n - 1 do
          acc :=
            !acc
            +. (float_of_int (Axis.Block.get blk ~row:x ~col:y)
               *. basis.(u).(x)
               *. basis.(v).(y))
        done
      done;
      out.((u * n) + v) <- !acc
    done
  done;
  out

let fdct blk =
  let exact = fdct_exact blk in
  Array.map (fun v -> Axis.Block.clamp_input (int_of_float (round_half_away v))) exact
