type stats = {
  blocks : int;
  peak_error : int;
  worst_pmse : float;
  omse : float;
  worst_pme : float;
  ome : float;
  zero_in_zero_out : bool;
}

type verdict = { passed : bool; failures : string list }

type range = { lo : int; hi : int; sign : int }

let standard_ranges =
  [
    { lo = -256; hi = 255; sign = 1 };
    { lo = -256; hi = 255; sign = -1 };
    { lo = -5; hi = 5; sign = 1 };
    { lo = -5; hi = 5; sign = -1 };
    { lo = -300; hi = 300; sign = 1 };
    { lo = -300; hi = 300; sign = -1 };
  ]


let stats_of_summary (s : Axis.Accuracy.summary) ~zero =
  {
    blocks = s.Axis.Accuracy.blocks;
    peak_error = s.Axis.Accuracy.peak_error;
    worst_pmse = s.Axis.Accuracy.worst_pmse;
    omse = s.Axis.Accuracy.omse;
    worst_pme = s.Axis.Accuracy.worst_pme;
    ome = s.Axis.Accuracy.ome;
    zero_in_zero_out = zero;
  }

let measure ?(blocks = 10000) ?(seed = 1) range dut =
  let rng = Axis.Block.Rand.create ~seed () in
  let acc = Axis.Accuracy.create () in
  for _ = 1 to blocks do
    let samples = Axis.Block.Rand.block rng ~lo:range.lo ~hi:range.hi in
    let samples =
      if range.sign < 0 then Array.map (fun v -> -v) samples else samples
    in
    (* IEEE 1180 clamps the random samples to the 9-bit range before the
       forward transform (relevant for the (-300,300) condition). *)
    let samples = Array.map Axis.Block.clamp_output samples in
    let coeffs = Reference.fdct samples in
    let want = Reference.idct coeffs in
    let got = dut coeffs in
    Axis.Accuracy.add acc ~want ~got
  done;
  let zero =
    let z = Axis.Block.create () in
    Axis.Block.equal (dut z) z
  in
  stats_of_summary (Axis.Accuracy.summarize acc) ~zero

(* Batched variant of [measure]: numerically identical — the rng draw
   sequence, the 9-bit clamping and the float accumulation order all match
   the sequential version — but the dut sees the whole coefficient list in
   one call, so a stream implementation can spread the blocks across
   simulation lanes.  Kept separate from [measure] rather than unifying
   the two, so the sequential path provably cannot change. *)
let measure_batch ?(blocks = 10000) ?(seed = 1) range dut_batch =
  let rng = Axis.Block.Rand.create ~seed () in
  let coeffs_rev = ref [] and wants_rev = ref [] in
  for _ = 1 to blocks do
    let samples = Axis.Block.Rand.block rng ~lo:range.lo ~hi:range.hi in
    let samples =
      if range.sign < 0 then Array.map (fun v -> -v) samples else samples
    in
    let samples = Array.map Axis.Block.clamp_output samples in
    let coeffs = Reference.fdct samples in
    coeffs_rev := coeffs :: !coeffs_rev;
    wants_rev := Reference.idct coeffs :: !wants_rev
  done;
  let gots = dut_batch (List.rev !coeffs_rev) in
  let acc = Axis.Accuracy.create () in
  List.iter2
    (fun want got -> Axis.Accuracy.add acc ~want ~got)
    (List.rev !wants_rev) gots;
  let zero =
    let z = Axis.Block.create () in
    match dut_batch [ z ] with [ got ] -> Axis.Block.equal got z | _ -> false
  in
  stats_of_summary (Axis.Accuracy.summarize acc) ~zero

let judge s =
  let checks =
    [
      (s.peak_error <= 1, Printf.sprintf "peak error %d > 1" s.peak_error);
      (s.worst_pmse <= 0.06, Printf.sprintf "pmse %.4f > 0.06" s.worst_pmse);
      (s.omse <= 0.02, Printf.sprintf "omse %.4f > 0.02" s.omse);
      (s.worst_pme <= 0.015, Printf.sprintf "pme %.4f > 0.015" s.worst_pme);
      (s.ome <= 0.0015, Printf.sprintf "ome %.5f > 0.0015" s.ome);
      (s.zero_in_zero_out, "zero input does not give zero output");
    ]
  in
  let failures =
    List.filter_map (fun (ok, msg) -> if ok then None else Some msg) checks
  in
  { passed = failures = []; failures }

let run ?blocks dut =
  List.map
    (fun r ->
      let s = measure ?blocks r dut in
      (r, s, judge s))
    standard_ranges

let compliant ?blocks dut =
  List.for_all (fun (_, _, v) -> v.passed) (run ?blocks dut)

let run_batch ?blocks dut_batch =
  List.map
    (fun r ->
      let s = measure_batch ?blocks r dut_batch in
      (r, s, judge s))
    standard_ranges

let compliant_batch ?blocks dut_batch =
  List.for_all (fun (_, _, v) -> v.passed) (run_batch ?blocks dut_batch)

let pp_stats ppf s =
  Format.fprintf ppf
    "blocks=%d peak=%d pmse=%.4f omse=%.4f pme=%.4f ome=%.5f zero=%b" s.blocks
    s.peak_error s.worst_pmse s.omse s.worst_pme s.ome s.zero_in_zero_out
