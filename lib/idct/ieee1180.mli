(** IEEE Std 1180-1990 accuracy test for 8x8 IDCT implementations.

    The procedure (Annex A): generate pseudo-random sample blocks in a given
    range, push them through a double-precision forward DCT (rounded,
    clamped to 12 bits) to obtain coefficient blocks, then compare the
    implementation under test against the double-precision reference IDCT
    over many blocks, accumulating per-position error statistics. *)

type stats = {
  blocks : int;
  peak_error : int;              (** max |e| over all pixels — limit 1 *)
  worst_pmse : float;            (** worst per-position mean square error — limit 0.06 *)
  omse : float;                  (** overall mean square error — limit 0.02 *)
  worst_pme : float;             (** worst per-position |mean error| — limit 0.015 *)
  ome : float;                   (** overall |mean error| — limit 0.0015 *)
  zero_in_zero_out : bool;
}

type verdict = { passed : bool; failures : string list }

type range = { lo : int; hi : int; sign : int }
(** One test condition: inputs uniform on [lo, hi], multiplied by [sign]. *)

val standard_ranges : range list
(** The six conditions of the standard: (-256,255), (-5,5), (-300,300),
    each with sign +1 and -1. *)

val measure :
  ?blocks:int -> ?seed:int -> range -> (Axis.Block.t -> Axis.Block.t) -> stats
(** [measure range dut] runs [blocks] (default 10000) random blocks. *)

val judge : stats -> verdict

val run : ?blocks:int -> (Axis.Block.t -> Axis.Block.t) -> (range * stats * verdict) list
(** Full compliance run over {!standard_ranges}. *)

val compliant : ?blocks:int -> (Axis.Block.t -> Axis.Block.t) -> bool

val measure_batch :
  ?blocks:int -> ?seed:int -> range -> (Axis.Block.t list -> Axis.Block.t list) -> stats
(** As {!measure}, but the dut receives the whole coefficient list in one
    call (and must return outputs in order), so a stream implementation
    can spread the blocks across simulation lanes.  Numerically identical
    to {!measure} for a dut that maps blocks independently: the random
    draw sequence and the error-accumulation order are the same. *)

val run_batch :
  ?blocks:int ->
  (Axis.Block.t list -> Axis.Block.t list) ->
  (range * stats * verdict) list

val compliant_batch : ?blocks:int -> (Axis.Block.t list -> Axis.Block.t list) -> bool

val pp_stats : Format.formatter -> stats -> unit
