let w1 = 2841
let w2 = 2676
let w3 = 2408
let w5 = 1609
let w6 = 1108
let w7 = 565

let iclip v = if v < -256 then -256 else if v > 255 then 255 else v

(* The original C short-circuits rows whose AC coefficients are all zero;
   the general datapath computes the same values (the DC shortcut is an
   algebraic identity), so the hardware-oriented model below always runs the
   full butterfly.  See test_idct.ml for the equivalence check. *)

let idct_row blk =
  let x0 = (blk.(0) lsl 11) + 128 in
  let x1 = blk.(4) lsl 11 in
  let x2 = blk.(6) in
  let x3 = blk.(2) in
  let x4 = blk.(1) in
  let x5 = blk.(7) in
  let x6 = blk.(5) in
  let x7 = blk.(3) in
  (* first stage *)
  let x8 = w7 * (x4 + x5) in
  let x4 = x8 + ((w1 - w7) * x4) in
  let x5 = x8 - ((w1 + w7) * x5) in
  let x8 = w3 * (x6 + x7) in
  let x6 = x8 - ((w3 - w5) * x6) in
  let x7 = x8 - ((w3 + w5) * x7) in
  (* second stage *)
  let x8 = x0 + x1 in
  let x0 = x0 - x1 in
  let x1 = w6 * (x3 + x2) in
  let x2 = x1 - ((w2 + w6) * x2) in
  let x3 = x1 + ((w2 - w6) * x3) in
  let x1 = x4 + x6 in
  let x4 = x4 - x6 in
  let x6 = x5 + x7 in
  let x5 = x5 - x7 in
  (* third stage *)
  let x7 = x8 + x3 in
  let x8 = x8 - x3 in
  let x3 = x0 + x2 in
  let x0 = x0 - x2 in
  let x2 = ((181 * (x4 + x5)) + 128) asr 8 in
  let x4 = ((181 * (x4 - x5)) + 128) asr 8 in
  (* fourth stage *)
  [|
    (x7 + x1) asr 8;
    (x3 + x2) asr 8;
    (x0 + x4) asr 8;
    (x8 + x6) asr 8;
    (x8 - x6) asr 8;
    (x0 - x4) asr 8;
    (x3 - x2) asr 8;
    (x7 - x1) asr 8;
  |]

let idct_col blk =
  let x0 = (blk.(0) lsl 8) + 8192 in
  let x1 = blk.(4) lsl 8 in
  let x2 = blk.(6) in
  let x3 = blk.(2) in
  let x4 = blk.(1) in
  let x5 = blk.(7) in
  let x6 = blk.(5) in
  let x7 = blk.(3) in
  (* first stage *)
  let x8 = (w7 * (x4 + x5)) + 4 in
  let x4 = (x8 + ((w1 - w7) * x4)) asr 3 in
  let x5 = (x8 - ((w1 + w7) * x5)) asr 3 in
  let x8 = (w3 * (x6 + x7)) + 4 in
  let x6 = (x8 - ((w3 - w5) * x6)) asr 3 in
  let x7 = (x8 - ((w3 + w5) * x7)) asr 3 in
  (* second stage *)
  let x8 = x0 + x1 in
  let x0 = x0 - x1 in
  let x1 = (w6 * (x3 + x2)) + 4 in
  let x2 = (x1 - ((w2 + w6) * x2)) asr 3 in
  let x3 = (x1 + ((w2 - w6) * x3)) asr 3 in
  let x1 = x4 + x6 in
  let x4 = x4 - x6 in
  let x6 = x5 + x7 in
  let x5 = x5 - x7 in
  (* third stage *)
  let x7 = x8 + x3 in
  let x8 = x8 - x3 in
  let x3 = x0 + x2 in
  let x0 = x0 - x2 in
  let x2 = ((181 * (x4 + x5)) + 128) asr 8 in
  let x4 = ((181 * (x4 - x5)) + 128) asr 8 in
  (* fourth stage *)
  [|
    iclip ((x7 + x1) asr 14);
    iclip ((x3 + x2) asr 14);
    iclip ((x0 + x4) asr 14);
    iclip ((x8 + x6) asr 14);
    iclip ((x8 - x6) asr 14);
    iclip ((x0 - x4) asr 14);
    iclip ((x3 - x2) asr 14);
    iclip ((x7 - x1) asr 14);
  |]

let idct blk =
  let b = Axis.Block.copy blk in
  for r = 0 to Axis.Block.size - 1 do
    Axis.Block.set_row b r (idct_row (Axis.Block.row b r))
  done;
  for c = 0 to Axis.Block.size - 1 do
    Axis.Block.set_col b c (idct_col (Axis.Block.col b c))
  done;
  b
