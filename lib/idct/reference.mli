(** Double-precision 8x8 DCT-II / DCT-III (IDCT) reference.

    This is the accuracy yardstick of IEEE 1180-1990: the separable
    cosine-basis transform evaluated in double precision, with outputs
    rounded to the nearest integer and clamped to the 9-bit sample range. *)

val idct_exact : Axis.Block.t -> float array
(** Unrounded inverse transform of a coefficient block (row-major 64). *)

val idct : Axis.Block.t -> Axis.Block.t
(** Reference IDCT: {!idct_exact}, rounded to nearest, clamped to
    [-256, 255]. *)

val fdct_exact : Axis.Block.t -> float array
(** Unrounded forward transform of a sample block. *)

val fdct : Axis.Block.t -> Axis.Block.t
(** Forward DCT rounded to nearest and clamped to the 12-bit coefficient
    range — used by the IEEE 1180 procedure to produce test coefficients. *)
