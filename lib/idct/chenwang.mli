(** Fixed-point 8x8 IDCT after Chen–Wang, as used by the MPEG-2 reference
    decoder (ISO/IEC 13818-4 [mpeg2decode], function [Fast_IDCT]).

    Every hardware design in this repository implements exactly this
    arithmetic; the functions here are the bit-true software model they are
    checked against.  Constants [w1..w7] are [2048 * cos(k*pi/16)] rounded,
    e.g. [w1 = 2841 = 2048*sqrt(2)*cos(pi/16)]. *)

val w1 : int
val w2 : int
val w3 : int
val w5 : int
val w6 : int
val w7 : int

val iclip : int -> int
(** Output clamp to [-256, 255] ([iclp] array of the C original, expressed
    as a function — the source modification the paper applies for HLS). *)

val idct_row : int array -> int array
(** One row pass over 8 values (12-bit inputs on the first pass). *)

val idct_col : int array -> int array
(** One column pass over 8 values; applies rounding and {!iclip}. *)

val idct : Axis.Block.t -> Axis.Block.t
(** Full 2-D transform: 8 row passes then 8 column passes, in place on a
    copy. *)
