(** The two MaxJ IDCT kernels of the paper.

    [initial_system] inputs and outputs a whole 8x8 matrix every tick; the
    kernel is deeply pipelined to the stream clock and the system
    throughput is bound by PCIe bandwidth, not by the fabric.

    [opt_system] receives one row per tick and keeps intermediate results
    in on-chip stream holds (double-banked transpose buffer); it trades
    throughput (now frequency-bound, one matrix per eight ticks) for a
    much smaller kernel. *)

val initial_kernel : unit -> Hw.Netlist.t
val initial_system : unit -> Manager.system
val initial_listing : unit -> string

val opt_kernel : unit -> Hw.Netlist.t
val opt_system : unit -> Manager.system
val opt_listing : unit -> string

val simulate_initial : Axis.Block.t list -> Axis.Block.t list
(** Bit-true check of the matrix-per-tick kernel. *)

val simulate_opt : Axis.Block.t list -> Axis.Block.t list
(** Bit-true check of the row-per-tick kernel (reassembles the column
    stream). *)
