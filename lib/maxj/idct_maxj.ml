open Hw

let w1 = Idct.Chenwang.w1
let w2 = Idct.Chenwang.w2
let w3 = Idct.Chenwang.w3
let w5 = Idct.Chenwang.w5
let w6 = Idct.Chenwang.w6
let w7 = Idct.Chenwang.w7

(* Chen-Wang passes over kernel streams. *)
let row_pass k ins =
  let add = Kernel.add k and sub = Kernel.sub k in
  let mulc = Kernel.mulc k and shl = Kernel.shl k and asr_ = Kernel.asr_ k in
  let lit v = Kernel.const k ~width:(Bits.width_for_signed_range v v) v in
  let x0 = add (shl ins.(0) 11) (lit 128) in
  let x1 = shl ins.(4) 11 in
  let x2 = ins.(6) and x3 = ins.(2) and x4 = ins.(1) in
  let x5 = ins.(7) and x6 = ins.(5) and x7 = ins.(3) in
  let x8 = mulc w7 (add x4 x5) in
  let x4 = add x8 (mulc (w1 - w7) x4) in
  let x5 = sub x8 (mulc (w1 + w7) x5) in
  let x8 = mulc w3 (add x6 x7) in
  let x6 = sub x8 (mulc (w3 - w5) x6) in
  let x7 = sub x8 (mulc (w3 + w5) x7) in
  let x8 = add x0 x1 in
  let x0 = sub x0 x1 in
  let x1 = mulc w6 (add x3 x2) in
  let x2 = sub x1 (mulc (w2 + w6) x2) in
  let x3 = add x1 (mulc (w2 - w6) x3) in
  let x1 = add x4 x6 in
  let x4 = sub x4 x6 in
  let x6 = add x5 x7 in
  let x5 = sub x5 x7 in
  let x7 = add x8 x3 in
  let x8 = sub x8 x3 in
  let x3 = add x0 x2 in
  let x0 = sub x0 x2 in
  let x2 = asr_ (add (mulc 181 (add x4 x5)) (lit 128)) 8 in
  let x4 = asr_ (add (mulc 181 (sub x4 x5)) (lit 128)) 8 in
  Array.map
    (fun e -> Kernel.cast k e 16)
    [|
      asr_ (add x7 x1) 8;
      asr_ (add x3 x2) 8;
      asr_ (add x0 x4) 8;
      asr_ (add x8 x6) 8;
      asr_ (sub x8 x6) 8;
      asr_ (sub x0 x4) 8;
      asr_ (sub x3 x2) 8;
      asr_ (sub x7 x1) 8;
    |]

let col_pass k ins =
  let add = Kernel.add k and sub = Kernel.sub k in
  let mulc = Kernel.mulc k and shl = Kernel.shl k and asr_ = Kernel.asr_ k in
  let lit v = Kernel.const k ~width:(Bits.width_for_signed_range v v) v in
  let iclip e = Kernel.clamp k ~lo:(-256) ~hi:255 e in
  let x0 = add (shl ins.(0) 8) (lit 8192) in
  let x1 = shl ins.(4) 8 in
  let x2 = ins.(6) and x3 = ins.(2) and x4 = ins.(1) in
  let x5 = ins.(7) and x6 = ins.(5) and x7 = ins.(3) in
  let x8 = add (mulc w7 (add x4 x5)) (lit 4) in
  let x4 = asr_ (add x8 (mulc (w1 - w7) x4)) 3 in
  let x5 = asr_ (sub x8 (mulc (w1 + w7) x5)) 3 in
  let x8 = add (mulc w3 (add x6 x7)) (lit 4) in
  let x6 = asr_ (sub x8 (mulc (w3 - w5) x6)) 3 in
  let x7 = asr_ (sub x8 (mulc (w3 + w5) x7)) 3 in
  let x8 = add x0 x1 in
  let x0 = sub x0 x1 in
  let x1 = add (mulc w6 (add x3 x2)) (lit 4) in
  let x2 = asr_ (sub x1 (mulc (w2 + w6) x2)) 3 in
  let x3 = asr_ (add x1 (mulc (w2 - w6) x3)) 3 in
  let x1 = add x4 x6 in
  let x4 = sub x4 x6 in
  let x6 = add x5 x7 in
  let x5 = sub x5 x7 in
  let x7 = add x8 x3 in
  let x8 = sub x8 x3 in
  let x3 = add x0 x2 in
  let x0 = sub x0 x2 in
  let x2 = asr_ (add (mulc 181 (add x4 x5)) (lit 128)) 8 in
  let x4 = asr_ (add (mulc 181 (sub x4 x5)) (lit 128)) 8 in
  [|
    iclip (asr_ (add x7 x1) 14);
    iclip (asr_ (add x3 x2) 14);
    iclip (asr_ (add x0 x4) 14);
    iclip (asr_ (add x8 x6) 14);
    iclip (asr_ (sub x8 x6) 14);
    iclip (asr_ (sub x0 x4) 14);
    iclip (asr_ (sub x3 x2) 14);
    iclip (asr_ (sub x7 x1) 14);
  |]

(* ------------------------------------------------------------------ *)
(* Initial kernel: a whole matrix per tick                             *)
(* ------------------------------------------------------------------ *)

let build_initial () =
  let k = Kernel.create "idct_matrix" in
  let m =
    Array.init 64 (fun i -> Kernel.input k (Printf.sprintf "m_%d" i) 12)
  in
  let rows =
    Array.init 8 (fun r ->
        row_pass k (Array.init 8 (fun c -> m.((r * 8) + c))))
  in
  let cols =
    Array.init 8 (fun c ->
        col_pass k (Array.init 8 (fun r -> rows.(r).(c))))
  in
  for r = 0 to 7 do
    for c = 0 to 7 do
      Kernel.output k (Printf.sprintf "out_%d" ((r * 8) + c)) cols.(c).(r)
    done
  done;
  k

let initial_kernel_memo = lazy (Kernel.finalize (build_initial ()))
let initial_kernel () = Lazy.force initial_kernel_memo
let initial_listing () = Kernel.listing (build_initial ())
let initial_system () = Manager.build ~kernel:(initial_kernel ()) ~ticks_per_op:1 ()

(* ------------------------------------------------------------------ *)
(* Optimized kernel: a row per tick, on-chip transpose buffer          *)
(* ------------------------------------------------------------------ *)

(* Stand-alone retimed row/col units, stamped into the streaming engine. *)
let unit_circuit name pass in_width =
  let k = Kernel.create name in
  let ins =
    Array.init 8 (fun i -> Kernel.input k (Printf.sprintf "u_%d" i) in_width)
  in
  let outs = pass k ins in
  Array.iteri
    (fun i s -> Kernel.output k (Printf.sprintf "q_%d" i) s)
    outs;
  Kernel.finalize k

let build_opt () =
  let row_net = unit_circuit "maxj_row" row_pass 12 in
  let col_net = unit_circuit "maxj_col" col_pass 16 in
  let kr = Kernel.pipeline_depth row_net in
  let kc = Kernel.pipeline_depth col_net in
  let b = Builder.create "idct_rowstream" in
  let ins = Array.init 8 (fun i -> Builder.input b (Printf.sprintf "m_%d" i) 12) in
  (* Tick counter and its image delayed by the row-unit depth. *)
  let cnt16 = Builder.reg b ~width:4 "cnt16" in
  Builder.connect b cnt16 (Builder.add b cnt16 (Builder.const b ~width:4 1));
  let rec delay s n =
    if n = 0 then s else delay (Builder.reg_next b ~name:"dly" s) (n - 1)
  in
  let wcnt = delay cnt16 kr in
  let wrow = Builder.slice b wcnt ~hi:2 ~lo:0 in
  let wbank = Builder.bit b wcnt 3 in
  let row_outs =
    Instantiate.stamp b row_net
      ~inputs:
        (Array.to_list
           (Array.mapi (fun i s -> (Printf.sprintf "u_%d" i, s)) ins))
  in
  let row_res =
    Array.init 8 (fun i -> List.assoc (Printf.sprintf "q_%d" i) row_outs)
  in
  (* Double-banked transpose buffer of stream holds. *)
  let mid =
    Array.init 2 (fun bank ->
        Array.init 8 (fun r ->
            Array.init 8 (fun c ->
                let en =
                  Builder.and_ b
                    (Builder.eq b wrow (Builder.const b ~width:3 r))
                    (Builder.eq b wbank (Builder.const b ~width:1 bank))
                in
                let q =
                  Builder.reg b ~enable:en ~width:16
                    (Printf.sprintf "mid%d_%d_%d" bank r c)
                in
                Builder.connect b q row_res.(c);
                q)))
  in
  (* Column scan of the bank written during the previous phase. *)
  let col_in =
    Array.init 8 (fun r ->
        let pick bank =
          Builder.mux_list b wrow (Array.to_list mid.(bank).(r))
        in
        Builder.mux b wbank (pick 0) (pick 1))
  in
  let col_outs =
    Instantiate.stamp b col_net
      ~inputs:
        (Array.to_list
           (Array.mapi (fun i s -> (Printf.sprintf "u_%d" i, s)) col_in))
  in
  for r = 0 to 7 do
    Builder.output b (Printf.sprintf "out_%d" r)
      (List.assoc (Printf.sprintf "q_%d" r) col_outs)
  done;
  (* The manager uses this to know which column a tick carries. *)
  Builder.output b "out_col" (Builder.slice b (delay wcnt kc) ~hi:2 ~lo:0);
  (Builder.finalize b, kr, kc)

let opt_memo = lazy (build_opt ())
let opt_kernel () = let c, _, _ = Lazy.force opt_memo in c
let opt_system () =
  let c, kr, kc = Lazy.force opt_memo in
  Manager.build ~depth:(kr + kc + 16) ~kernel:c ~ticks_per_op:8 ()

let unit_listing name pass in_width =
  let k = Kernel.create name in
  let ins =
    Array.init 8 (fun i -> Kernel.input k (Printf.sprintf "u_%d" i) in_width)
  in
  Array.iteri
    (fun i s -> Kernel.output k (Printf.sprintf "q_%d" i) s)
    (pass k ins);
  Kernel.listing k

let opt_listing () =
  (* The streaming engine around the two passes, plus their dataflow. *)
  String.concat "\n"
    ([
       "class IdctRowStream extends Kernel {";
       "DFEVar cnt = control.count.simpleCounter(4);";
       "DFEVar wrow = stream.offset(cnt, -ROW_LATENCY).slice(0, 3);";
       "DFEVar wbank = stream.offset(cnt, -ROW_LATENCY).slice(3, 1);";
       "// transpose buffer: 2 banks of 8x8 stream holds";
       "DFEVector<DFEVar> held = Reductions.streamHold(rowOut, wrow === r & wbank === b);";
       "DFEVector<DFEVar> colIn = control.mux(wbank # wrow, held);";
       "io.output(\"col\", colOut, colType);";
       "}";
     ]
    @ [ unit_listing "IdctRowPass" row_pass 12 ]
    @ [ unit_listing "IdctColPass" col_pass 16 ])

(* ------------------------------------------------------------------ *)
(* Bit-true simulation                                                  *)
(* ------------------------------------------------------------------ *)

let simulate_initial blocks =
  let c = initial_kernel () in
  let depth = Kernel.pipeline_depth c in
  let sim = Sim.create c in
  Sim.reset sim;
  let n = List.length blocks in
  let inputs = Array.of_list blocks in
  let outs = ref [] in
  for t = 0 to n + depth - 1 do
    if t < n then
      Array.iteri (fun i v -> Sim.set sim (Printf.sprintf "m_%d" i) v) inputs.(t);
    if t >= depth then begin
      let blk = Axis.Block.create () in
      for i = 0 to 63 do
        let v = Sim.get sim (Printf.sprintf "out_%d" i) in
        let v = if v land 0x100 <> 0 then v - 512 else v in
        blk.(i) <- v
      done;
      outs := blk :: !outs
    end;
    Sim.step sim
  done;
  List.rev !outs

let simulate_opt blocks =
  let c, kr, kc = Lazy.force opt_memo in
  let sim = Sim.create c in
  Sim.reset sim;
  let inputs = Array.of_list blocks in
  let n = Array.length inputs in
  let results = Array.init n (fun _ -> Axis.Block.create ()) in
  let got = Array.make n 0 in
  let total_ticks = (8 * (n + 2)) + kr + kc + 16 in
  for t = 0 to total_ticks - 1 do
    let m = t / 8 and r = t mod 8 in
    if m < n then
      for cidx = 0 to 7 do
        Sim.set sim (Printf.sprintf "m_%d" cidx)
          (Axis.Block.get inputs.(m) ~row:r ~col:cidx)
      done;
    (* The column emerging now belongs to matrix [(t - kr - kc)/8 - 1]. *)
    let u = t - kr - kc in
    if u >= 8 then begin
      let src = (u / 8) - 1 and col = u mod 8 in
      if src >= 0 && src < n then begin
        for r' = 0 to 7 do
          let v = Sim.get sim (Printf.sprintf "out_%d" r') in
          let v = if v land 0x100 <> 0 then v - 512 else v in
          Axis.Block.set results.(src) ~row:r' ~col v
        done;
        got.(src) <- got.(src) + 1
      end
    end;
    Sim.step sim
  done;
  Array.iteri
    (fun i g -> if g <> 8 then failwith (Printf.sprintf "matrix %d: %d columns" i g))
    got;
  Array.to_list results
