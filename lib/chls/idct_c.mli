(** The mpeg2decode IDCT in the C AST — the paper's input program, with
    the documented modification: rounding/clipping is the [iclip] function
    rather than a pre-filled array. *)

val program : Ast.program
(** [iclip], [idct_row], [idct_col] (working on an 8-element row buffer)
    and the top [idct] over a 64-element block. *)

val run : Axis.Block.t -> Axis.Block.t
(** Reference execution through {!Ast.interp}; bit-identical to
    {!Idct.Chenwang.idct}. *)
