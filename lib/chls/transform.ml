type options = {
  inline_calls : bool;
  unroll : bool;
  partition : string list;
  call_sync_cycles : int;
}

let default_options =
  { inline_calls = true; unroll = false; partition = []; call_sync_cycles = 8 }

type block = Ast.stmt list

type region =
  | RStraight of block
  | RLoop of { ivar : string; bound : int; body : region list }
  | RWait of int
  | RCapture
  | REmit

type proc = {
  pname : string;
  arrays : (string * Ast.ctype * int * bool) list;
  vars : (string * Ast.ctype) list;
  regions : region list;
}

(* ---------------- expression helpers ---------------- *)

(* arr_map rebinds a formal array name to a view of an actual array:
   name -> (actual, offset, stride). *)
let view_index off stride i =
  let scaled =
    if stride = 1 then i else Ast.Bin (Ast.Mul, i, Ast.Int stride)
  in
  match off with Ast.Int 0 -> scaled | _ -> Ast.Bin (Ast.Add, off, scaled)

let rec subst_expr var_map arr_map (e : Ast.expr) =
  let s = subst_expr var_map arr_map in
  match e with
  | Ast.Int _ -> e
  | Ast.Var x -> (
      match List.assoc_opt x var_map with Some e' -> e' | None -> e)
  | Ast.Load (a, i) -> (
      match List.assoc_opt a arr_map with
      | Some (actual, off, stride) ->
          Ast.Load (actual, view_index off stride (s i))
      | None -> Ast.Load (a, s i))
  | Ast.Bin (op, x, y) -> Ast.Bin (op, s x, s y)
  | Ast.Neg x -> Ast.Neg (s x)
  | Ast.Cond (c, t, f) -> Ast.Cond (s c, s t, s f)
  | Ast.Call (f, args) -> Ast.Call (f, List.map s args)

let rec subst_stmt var_map arr_map (st : Ast.stmt) =
  let se = subst_expr var_map arr_map in
  match st with
  | Ast.Assign (x, e) ->
      let x' =
        match List.assoc_opt x var_map with
        | Some (Ast.Var y) -> y
        | Some _ -> failwith "Chls: assignment to substituted expression"
        | None -> x
      in
      Ast.Assign (x', se e)
  | Ast.Store (a, i, e) -> (
      match List.assoc_opt a arr_map with
      | Some (actual, off, stride) ->
          Ast.Store (actual, view_index off stride (se i), se e)
      | None -> Ast.Store (a, se i, se e))
  | Ast.If (c, th, el) ->
      Ast.If
        (se c, List.map (subst_stmt var_map arr_map) th,
         List.map (subst_stmt var_map arr_map) el)
  | Ast.For { ivar; bound; body } ->
      (* The induction variable itself may have been renamed (a loop inside
         an inlined callee). *)
      let ivar =
        match List.assoc_opt ivar var_map with
        | Some (Ast.Var y) -> y
        | Some _ -> failwith "Chls: loop variable substituted by an expression"
        | None -> ivar
      in
      Ast.For { ivar; bound; body = List.map (subst_stmt var_map arr_map) body }
  | Ast.CallStmt (f, args) ->
      Ast.CallStmt
        ( f,
          List.map
            (function
              | Ast.AExpr e -> Ast.AExpr (se e)
              | Ast.AArray a -> (
                  match List.assoc_opt a arr_map with
                  | Some (actual, off, stride) -> Ast.AView (actual, off, stride)
                  | None -> Ast.AArray a)
              | Ast.AView (a, off, stride) -> (
                  match List.assoc_opt a arr_map with
                  | Some (actual, off', stride') ->
                      (* compose views: a[off + i*stride] over actual *)
                      Ast.AView
                        ( actual,
                          view_index off' stride' (se off),
                          stride * stride' )
                  | None -> Ast.AView (a, se off, stride)))
            args )
  | Ast.Return e -> Ast.Return (se e)

(* Constant folding, used after unrolling substitutes the loop variable. *)
let rec fold (e : Ast.expr) =
  match e with
  | Ast.Int _ | Ast.Var _ -> e
  | Ast.Load (a, i) -> Ast.Load (a, fold i)
  | Ast.Bin (op, x, y) -> (
      match (fold x, fold y) with
      | Ast.Int a, Ast.Int b -> Ast.Int (Ast.eval_binop op a b)
      | x', y' -> Ast.Bin (op, x', y'))
  | Ast.Neg x -> (
      match fold x with Ast.Int v -> Ast.Int (-v) | x' -> Ast.Neg x')
  | Ast.Cond (c, t, f) -> (
      match fold c with
      | Ast.Int v -> if v <> 0 then fold t else fold f
      | c' -> Ast.Cond (c', fold t, fold f))
  | Ast.Call (f, args) -> Ast.Call (f, List.map fold args)

let rec fold_stmt (st : Ast.stmt) =
  match st with
  | Ast.Assign (x, e) -> Ast.Assign (x, fold e)
  | Ast.Store (a, i, e) -> Ast.Store (a, fold i, fold e)
  | Ast.If (c, th, el) ->
      Ast.If (fold c, List.map fold_stmt th, List.map fold_stmt el)
  | Ast.For { ivar; bound; body } ->
      Ast.For { ivar; bound; body = List.map fold_stmt body }
  | Ast.CallStmt (f, args) ->
      Ast.CallStmt
        ( f,
          List.map
            (function
              | Ast.AExpr e -> Ast.AExpr (fold e)
              | Ast.AArray a -> Ast.AArray a
              | Ast.AView (a, off, stride) -> Ast.AView (a, fold off, stride))
            args )
  | Ast.Return e -> Ast.Return (fold e)

(* ---------------- value-call inlining (iclip and friends) ---------------- *)

(* Per-call-site rename counter.  Domain-local (circuits are built on the
   evaluation pool, and a plain global would race across domains) and
   reset at every [lower] entry, so a program lowers to the same names no
   matter which domain builds it or in what order. *)
let fresh_counter = Domain.DLS.new_key (fun () -> ref 0)

let fresh base =
  let c = Domain.DLS.get fresh_counter in
  incr c;
  Printf.sprintf "%s__%d" base !c

(* Inline a value-returning function to an expression.  The callee must be
   a single [return e] over its scalar parameters. *)
let inline_value_call (p : Ast.program) fn args =
  let f = Ast.find_func p fn in
  match f.Ast.body with
  | [ Ast.Return e ] ->
      let var_map =
        List.map2
          (fun prm arg ->
            match prm with
            | Ast.PScalar (x, _) -> (x, arg)
            | Ast.PArray _ -> failwith "Chls: array arg in value call")
          f.Ast.params args
      in
      subst_expr var_map [] e
  | _ -> failwith (Printf.sprintf "Chls: %s is not a single-return function" fn)

let rec expand_calls p (e : Ast.expr) =
  match e with
  | Ast.Int _ | Ast.Var _ -> e
  | Ast.Load (a, i) -> Ast.Load (a, expand_calls p i)
  | Ast.Bin (op, x, y) -> Ast.Bin (op, expand_calls p x, expand_calls p y)
  | Ast.Neg x -> Ast.Neg (expand_calls p x)
  | Ast.Cond (c, t, f) ->
      Ast.Cond (expand_calls p c, expand_calls p t, expand_calls p f)
  | Ast.Call (fn, args) ->
      let args = List.map (expand_calls p) args in
      expand_calls p (inline_value_call p fn args)

(* ---------------- if-conversion ---------------- *)

let rec if_convert (st : Ast.stmt) : Ast.stmt list =
  match st with
  | Ast.Assign _ | Ast.Store _ -> [ st ]
  | Ast.For { ivar; bound; body } ->
      [ Ast.For { ivar; bound; body = List.concat_map if_convert body } ]
  | Ast.If (c, th, el) ->
      let th = List.concat_map if_convert th in
      let el = List.concat_map if_convert el in
      let predicate keep sts =
        List.map
          (fun s ->
            match s with
            | Ast.Assign (x, e) ->
                Ast.Assign
                  (x, if keep then Ast.Cond (c, e, Ast.Var x)
                      else Ast.Cond (c, Ast.Var x, e))
            | Ast.Store (a, i, e) ->
                Ast.Store
                  ( a,
                    i,
                    if keep then Ast.Cond (c, e, Ast.Load (a, i))
                    else Ast.Cond (c, Ast.Load (a, i), e) )
            | Ast.If _ | Ast.For _ | Ast.CallStmt _ | Ast.Return _ ->
                failwith "Chls: unsupported statement under a conditional")
          sts
      in
      predicate true th @ predicate false el
  | Ast.CallStmt _ | Ast.Return _ -> [ st ]

(* ---------------- statement-call stitching ---------------- *)

type ctx = {
  prog : Ast.program;
  opts : options;
  mutable all_vars : (string * Ast.ctype) list;
  mutable all_arrays : (string * Ast.ctype * int * bool) list;
}

let add_var ctx x t =
  if not (List.mem_assoc x ctx.all_vars) then
    ctx.all_vars <- ctx.all_vars @ [ (x, t) ]

let add_array ctx (a, t, n) =
  let partitioned = List.mem a ctx.opts.partition in
  if not (List.exists (fun (a', _, _, _) -> a' = a) ctx.all_arrays) then
    ctx.all_arrays <- ctx.all_arrays @ [ (a, t, n, partitioned) ]

(* Append a region, merging adjacent straight-line blocks. *)
let append regions r =
  match (r, regions) with
  | RStraight b, RStraight b' :: rest -> RStraight (b' @ b) :: rest
  | _ -> r :: regions

let clean_stmt prog s =
  match s with
  | Ast.Assign (x, e) -> Ast.Assign (x, expand_calls prog e)
  | Ast.Store (a, i, e) ->
      Ast.Store (a, expand_calls prog i, expand_calls prog e)
  | Ast.If _ | Ast.For _ | Ast.CallStmt _ | Ast.Return _ ->
      failwith "Chls: expected a simple statement"

(* Emit statements of one function body into a (reversed) region list. *)
let rec emit_stmts ctx var_map arr_map acc (stmts : Ast.stmt list) =
  List.fold_left (fun acc s -> emit_stmt ctx var_map arr_map acc s) acc stmts

and emit_stmt ctx var_map arr_map acc (st : Ast.stmt) =
  match subst_stmt var_map arr_map st with
  | (Ast.Assign _ | Ast.Store _) as s ->
      append acc (RStraight [ clean_stmt ctx.prog s ])
  | Ast.If _ as s ->
      List.fold_left
        (fun acc s' -> append acc (RStraight [ clean_stmt ctx.prog s' ]))
        acc (if_convert s)
  | Ast.For { ivar; bound; body } ->
      if ctx.opts.unroll then
        let acc = ref acc in
        for i = 0 to bound - 1 do
          List.iter
            (fun s ->
              acc := emit_stmt ctx ((ivar, Ast.Int i) :: var_map) arr_map !acc s)
            body
        done;
        !acc
      else begin
        add_var ctx ivar Ast.int_t;
        let inner = List.rev (emit_stmts ctx var_map arr_map [] body) in
        RLoop { ivar; bound; body = inner } :: acc
      end
  | Ast.CallStmt (fn, args) ->
      let f = Ast.find_func ctx.prog fn in
      let acc =
        if ctx.opts.inline_calls then acc
        else append acc (RWait ctx.opts.call_sync_cycles)
      in
      (* Per-call-site renaming of callee locals/arrays. *)
      let suffix = fresh fn in
      let rename x = x ^ "_" ^ suffix in
      let (vmap, amap), acc =
        List.fold_left2
          (fun ((vm, am), acc) prm arg ->
            match (prm, arg) with
            | Ast.PScalar (x, t), Ast.AExpr e ->
                let x' = rename x in
                add_var ctx x' t;
                let acc =
                  append acc
                    (RStraight [ Ast.Assign (x', expand_calls ctx.prog e) ])
                in
                (((x, Ast.Var x') :: vm, am), acc)
            | Ast.PArray (a, _, _), Ast.AArray actual ->
                ((vm, (a, (actual, Ast.Int 0, 1)) :: am), acc)
            | Ast.PArray (a, _, _), Ast.AView (actual, off, stride) ->
                ((vm, (a, (actual, off, stride)) :: am), acc)
            | Ast.PScalar _, (Ast.AArray _ | Ast.AView _)
            | Ast.PArray _, Ast.AExpr _ ->
                failwith "Chls: argument kind mismatch")
          (([], []), acc)
          f.Ast.params args
      in
      List.iter (fun (x, t) -> add_var ctx (rename x) t) f.Ast.locals;
      List.iter (fun (a, t, n) -> add_array ctx (rename a, t, n)) f.Ast.arrays;
      let vmap =
        vmap @ List.map (fun (x, _) -> (x, Ast.Var (rename x))) f.Ast.locals
      in
      let amap =
        amap
        @ List.map (fun (a, _, _) -> (a, (rename a, Ast.Int 0, 1))) f.Ast.arrays
      in
      let acc = emit_stmts ctx vmap amap acc f.Ast.body in
      if ctx.opts.inline_calls then acc
      else append acc (RWait ctx.opts.call_sync_cycles)
  | Ast.Return _ -> failwith "Chls: top function must not return a value"

let rec fold_region (r : region) =
  match r with
  | RStraight b -> RStraight (List.map fold_stmt b)
  | RLoop l -> RLoop { l with body = List.map fold_region l.body }
  | (RWait _ | RCapture | REmit) as r -> r

let lower opts (p : Ast.program) =
  Domain.DLS.get fresh_counter := 0;
  let top = Ast.find_func p p.Ast.top in
  let ctx = { prog = p; opts; all_vars = []; all_arrays = [] } in
  List.iter
    (fun prm ->
      match prm with
      | Ast.PScalar (x, t) -> add_var ctx x t
      | Ast.PArray (a, t, n) -> add_array ctx (a, t, n))
    top.Ast.params;
  List.iter (fun (x, t) -> add_var ctx x t) top.Ast.locals;
  List.iter (fun (a, t, n) -> add_array ctx (a, t, n)) top.Ast.arrays;
  let regions = List.rev_map fold_region (emit_stmts ctx [] [] [] top.Ast.body) in
  {
    pname = top.Ast.fname;
    arrays = ctx.all_arrays;
    vars = ctx.all_vars;
    regions;
  }
