(** Pareto dominance in the paper's Performance x Area plane.

    Throughput (MOPS) is maximized and normalized area minimized — the
    two axes of Fig. 1.  [p] dominates [q] when it is no worse on both axes
    and strictly better on at least one; points equal on both axes do
    not dominate each other, so coordinate ties all survive to the
    frontier.  Every returned frontier is in the one canonical order
    (area ascending, then throughput descending, then key ascending), so
    two runs that explore the same cloud print the same frontier byte
    for byte. *)

type point = {
  pt_key : string;   (** stable identity, ["Tool/label"] *)
  pt_area : int;     (** minimized *)
  pt_perf : float;   (** maximized, MOPS *)
}

val dominates : point -> point -> bool
(** [dominates p q]: no worse on both axes, strictly better on one. *)

val frontier : point list -> point list
(** The non-dominated subset, in canonical order.  Input order is
    irrelevant; duplicate coordinates are all kept. *)

val compare_points : point -> point -> int
(** The canonical total order (area asc, perf desc, key asc). *)

val hypervolume : ?ref_area:int -> ?ref_perf:float -> point list -> float
(** Normalized staircase area dominated by the frontier of the given
    points in the log10 plane, relative to the reference corner (worst
    area, worst throughput; defaults: the extremes of the points
    themselves).  0 for an empty or degenerate cloud; grows toward 1 as
    the frontier approaches the top-left corner of the bounding box. *)

val summary : point list -> string
(** One line: frontier size over cloud size plus the hypervolume. *)
