let pr buf fmt = Printf.ksprintf (Buffer.add_string buf) fmt

(* The same log-log projection as the Fig. 1 scatter, so the explored
   cloud and the paper's figure line up visually; frontier points are
   drawn last, as '*'. *)
let render_scatter buf kernel (cloud : (Pareto.point * char) list) frontier =
  let lx (p : Pareto.point) = log10 (float_of_int (max 1 p.Pareto.pt_area)) in
  let ly (p : Pareto.point) = log10 (Float.max 0.01 p.Pareto.pt_perf) in
  let pts = List.map fst cloud in
  let min_x = List.fold_left (fun a p -> Float.min a (lx p)) infinity pts in
  let max_x = List.fold_left (fun a p -> Float.max a (lx p)) neg_infinity pts in
  let min_y = List.fold_left (fun a p -> Float.min a (ly p)) infinity pts in
  let max_y = List.fold_left (fun a p -> Float.max a (ly p)) neg_infinity pts in
  let w = 72 and h = 24 in
  let grid = Array.make_matrix h w ' ' in
  let plot (p, glyph) =
    let x =
      int_of_float
        ((lx p -. min_x) /. Float.max 1e-9 (max_x -. min_x) *. float_of_int (w - 1))
    in
    let y =
      int_of_float
        ((ly p -. min_y) /. Float.max 1e-9 (max_y -. min_y) *. float_of_int (h - 1))
    in
    grid.(h - 1 - y).(x) <- glyph
  in
  List.iter plot cloud;
  List.iter (fun p -> plot (p, '*')) frontier;
  (* Axis caption and legend come from the kernel, like Fig. 1's; the
     frontier glyph is the report's own addition. *)
  pr buf "%s" (Core.Kernel.caption kernel);
  pr buf "%s  *=Pareto frontier\n"
    (String.trim (Core.Kernel.legend_line kernel));
  for r = 0 to h - 1 do
    pr buf "|%s|\n" (String.init w (fun c -> grid.(r).(c)))
  done;
  pr buf "%s\n" (String.make (w + 2) '-');
  pr buf "area: %.0f .. %.0f   throughput: %.2f .. %.2f MOPS\n"
    (10. ** min_x) (10. ** max_x) (10. ** min_y) (10. ** max_y)

(* The kernel the run explored, from its spaces.  Default-kernel (idct)
   reports carry no tag, keeping the baseline report byte-identical. *)
let kernel_tag (r : Engine.result) =
  match r.Engine.res_spaces with
  | { Space.spec = { Core.Flow.spec_name; _ }; _ } :: _
    when spec_name <> "idct" ->
      Printf.sprintf " kernel=%s" spec_name
  | _ -> ""

let render (r : Engine.result) =
  let buf = Buffer.create 4096 in
  pr buf "DSE: strategy=%s seed=%d budget=%s objective=%s%s\n"
    (Strategy.to_string r.Engine.res_strategy)
    r.Engine.res_seed
    (match r.Engine.res_budget with Some b -> string_of_int b | None -> "none")
    (Engine.objective_name r.Engine.res_objective)
    (kernel_tag r);
  pr buf "\nSearched spaces:\n";
  List.iter (fun s -> Buffer.add_string buf (Space.describe s)) r.Engine.res_spaces;
  (* per-tool explored counts *)
  pr buf "\nExplored:\n";
  List.iter
    (fun s ->
      let tool = s.Space.tool in
      let n =
        List.length
          (List.filter
             (fun (ev : Engine.evaluated) ->
               ev.Engine.ev_candidate.Space.cand_tool = tool)
             r.Engine.res_evaluated)
      in
      pr buf "  %-12s %3d of %3d candidates\n"
        (Core.Design.tool_name tool) n (Space.size s))
    r.Engine.res_spaces;
  let cloud =
    List.filter_map
      (fun (ev : Engine.evaluated) ->
        match ev.Engine.ev_outcome with
        | Ok m ->
            Some
              ( Engine.point_of ev.Engine.ev_candidate m,
                Core.Registry.glyph ev.Engine.ev_candidate.Space.cand_tool )
        | Error _ -> None)
      r.Engine.res_evaluated
  in
  let kernel =
    let name =
      match r.Engine.res_spaces with
      | { Space.spec = { Core.Flow.spec_name; _ }; _ } :: _ -> spec_name
      | [] -> "idct"
    in
    Option.value (Core.Kernel.find name) ~default:Core.Kernel.idct
  in
  if cloud <> [] then render_scatter buf kernel cloud r.Engine.res_frontier;
  pr buf "\nPareto frontier (area asc):\n";
  List.iter
    (fun (p : Pareto.point) ->
      pr buf "  %-44s A=%7d  P=%8.2f MOPS\n" p.Pareto.pt_key p.Pareto.pt_area
        p.Pareto.pt_perf)
    r.Engine.res_frontier;
  let s = r.Engine.res_stats in
  pr buf
    "\nevaluated %d of %d candidates in %d rounds (%d cache hits, %d \
     failures); %s\n"
    s.Engine.st_evaluated s.Engine.st_space s.Engine.st_rounds
    s.Engine.st_cache_hits s.Engine.st_failures
    (Pareto.summary (List.map fst cloud));
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* JSON                                                                 *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let write_json path (r : Engine.result) =
  let on_frontier =
    let keys =
      List.map (fun (p : Pareto.point) -> p.Pareto.pt_key) r.Engine.res_frontier
    in
    fun k -> List.mem k keys
  in
  Core.Trace.write_atomic path (fun oc ->
      Printf.fprintf oc
        "{\n\
        \  \"artifact\": \"dse\",\n\
        \  \"strategy\": \"%s\",\n\
        \  \"seed\": %d,\n\
        \  \"budget\": %s,\n\
        \  \"objective\": \"%s\",\n"
        (Strategy.to_string r.Engine.res_strategy)
        r.Engine.res_seed
        (match r.Engine.res_budget with Some b -> string_of_int b | None -> "null")
        (Engine.objective_name r.Engine.res_objective);
      (match r.Engine.res_spaces with
      | { Space.spec = { Core.Flow.spec_name; _ }; _ } :: _
        when spec_name <> "idct" ->
          Printf.fprintf oc "  \"kernel\": \"%s\",\n" spec_name
      | _ -> ());
      let s = r.Engine.res_stats in
      Printf.fprintf oc
        "  \"stats\": {\"space\": %d, \"evaluated\": %d, \"cache_hits\": %d, \
         \"rounds\": %d, \"failures\": %d, \"frontier_size\": %d},\n"
        s.Engine.st_space s.Engine.st_evaluated s.Engine.st_cache_hits
        s.Engine.st_rounds s.Engine.st_failures s.Engine.st_frontier;
      output_string oc "  \"points\": [\n";
      let n = List.length r.Engine.res_evaluated in
      List.iteri
        (fun i (ev : Engine.evaluated) ->
          let key = Space.key ev.Engine.ev_candidate in
          (match ev.Engine.ev_outcome with
          | Ok m ->
              Printf.fprintf oc
                "    {\"key\": \"%s\", \"tool\": \"%s\", \"label\": \"%s\", \
                 \"coords\": \"%s\", \"area\": %d, \"throughput_mops\": %.6f, \
                 \"fmax_mhz\": %.6f, \"on_frontier\": %b}"
                (json_escape key)
                (json_escape
                   (Core.Design.tool_name ev.Engine.ev_candidate.Space.cand_tool))
                (json_escape
                   ev.Engine.ev_candidate.Space.cand_design.Core.Design.label)
                (json_escape (Space.coords_desc ev.Engine.ev_candidate))
                m.Core.Metrics.area m.Core.Metrics.throughput_mops
                m.Core.Metrics.fmax_mhz (on_frontier key)
          | Error e ->
              Printf.fprintf oc
                "    {\"key\": \"%s\", \"error\": \"%s\", \"stage\": \"%s\"}"
                (json_escape key)
                (json_escape (Core.Flow.class_name e.Core.Flow.err_class))
                (json_escape e.Core.Flow.err_stage));
          output_string oc (if i = n - 1 then "\n" else ",\n"))
        r.Engine.res_evaluated;
      output_string oc "  ]\n}\n")

(* ------------------------------------------------------------------ *)
(* Fig. 1 cross-check                                                   *)
(* ------------------------------------------------------------------ *)

let crosscheck_fig1 ?jobs ?tools ?kernel (r : Engine.result) =
  let fig1_cloud =
    List.map
      (fun (tool, (p : Core.Fig1.point)) ->
        {
          Pareto.pt_key = Core.Design.tool_name tool ^ "/" ^ p.Core.Fig1.label;
          pt_area = p.Core.Fig1.area;
          pt_perf = p.Core.Fig1.throughput_mops;
        })
      (Core.Fig1.points ?jobs ?tools ?kernel ())
  in
  let expected = Pareto.frontier fig1_cloud in
  let got = r.Engine.res_frontier in
  if got = expected then
    Ok
      (Printf.sprintf
         "fig1 cross-check: PASS — %d frontier points of %d sweep points \
          match Fig. 1's Pareto-optimal subset point for point"
         (List.length expected) (List.length fig1_cloud))
  else
    let describe (p : Pareto.point) =
      Printf.sprintf "%s A=%d P=%.2f" p.Pareto.pt_key p.Pareto.pt_area
        p.Pareto.pt_perf
    in
    let missing =
      List.filter (fun p -> not (List.mem p got)) expected
    and extra = List.filter (fun p -> not (List.mem p expected)) got in
    let buf = Buffer.create 256 in
    pr buf "fig1 cross-check: FAIL (%d expected, %d got)\n"
      (List.length expected) (List.length got);
    List.iter (fun p -> pr buf "  missing: %s\n" (describe p)) missing;
    List.iter (fun p -> pr buf "  extra:   %s\n" (describe p)) extra;
    Error (Buffer.contents buf)
