(** The configuration-space model behind the search (DESIGN.md §12).

    Every registered tool exposes its knob space as data
    ({!Core.Registry.axis}): a list of {e charts}, each the product of a
    few named discrete axes.  This module binds those axes back to the
    tool's canonical design inventory — candidate [(chart, coords)]
    resolves to the very same {!Core.Design.t} value the Fig. 1 sweep
    measures, so the memoized evaluation cache is shared and an
    exhaustive enumeration reproduces the paper's sweep point for
    point. *)

type chart = {
  chart_axes : Core.Registry.axis list;
  chart_designs : Core.Design.t array;
      (** the sweep slice this chart covers, in row-major axis order
          (last axis fastest) *)
}

type t = {
  tool : Core.Design.tool;
  charts : chart list;
  spec : Core.Flow.spec;  (** the kernel this space's designs implement *)
}

type candidate = {
  cand_tool : Core.Design.tool;
  cand_chart : int;          (** chart index within the tool's space *)
  cand_coords : int array;   (** one value index per chart axis *)
  cand_axes : Core.Registry.axis list;  (** the chart's own axes *)
  cand_design : Core.Design.t;
}

val of_tool : ?kernel:(module Core.Kernel.KERNEL) -> Core.Design.tool -> t
(** Bind the kernel's space charts to its sweep ([kernel] defaults to
    the paper's IDCT, where they are {!Core.Registry.space} and
    {!Core.Registry.sweep}).
    @raise Invalid_argument if the declared axis products do not tile the
    sweep exactly — the registry invariant a misdeclared space breaks —
    or if the kernel has no inventory for [tool]. *)

val with_scripts : ?scripts:string list -> t -> t
(** Extend the space with a transformation-sequence axis (DESIGN.md
    §17): one extra chart whose single ["script"] axis enumerates
    [(none)] plus each given {!Transfo.Script} source, applied to the
    tool's [initial] design.  Derived designs force through
    {!Transfo.Engine.run}, so every candidate the search can visit is
    equivalence-verified at force time.  Defaults to the cycle-exact
    netlist rewrites ["strength_reduce"], ["narrow"] and their
    composition.  Tools without an [initial] stream design (PCIe-only
    inventories) are returned unchanged. *)

val size : t -> int
(** Number of candidates (= length of the tool's sweep). *)

val candidates : t -> candidate list
(** Full enumeration, in sweep order (charts in order, row-major within
    each chart). *)

val neighbors : t -> candidate -> candidate list
(** The hillclimb neighborhood: candidates differing by exactly ±1 on
    exactly one axis, within the same chart.  Deterministic order: axis
    by axis, minus before plus. *)

val key : candidate -> string
(** The candidate's stable identity, ["Tool/label"] (= {!Core.Flow.span_key}
    of its design). *)

val coords_desc : candidate -> string
(** Human-readable coordinates, e.g. ["preset=AREA speculative-sdc=on
    chaining-effort=1"]. *)

val describe : t -> string
(** The space as data: one line per chart listing its axes, value counts
    and chart size. *)
