type objective = Quality | Throughput | Area

let objective_name = function
  | Quality -> "quality"
  | Throughput -> "throughput"
  | Area -> "area"

let parse_objective s =
  match String.lowercase_ascii s with
  | "quality" | "q" -> Ok Quality
  | "throughput" | "perf" | "p" -> Ok Throughput
  | "area" | "a" -> Ok Area
  | other ->
      Error
        (Printf.sprintf
           "unknown objective %S (valid objectives: quality, throughput, area)"
           other)

let score objective (m : Core.Metrics.measured) =
  match objective with
  | Quality -> Core.Metrics.quality m
  | Throughput -> m.Core.Metrics.throughput_mops
  | Area -> -.float_of_int m.Core.Metrics.area

type evaluated = {
  ev_candidate : Space.candidate;
  ev_outcome : (Core.Metrics.measured, Core.Flow.error) result;
}

type stats = {
  st_space : int;
  st_evaluated : int;
  st_cache_hits : int;
  st_rounds : int;
  st_failures : int;
  st_frontier : int;
}

type result = {
  res_strategy : Strategy.t;
  res_objective : objective;
  res_seed : int;
  res_budget : int option;
  res_spaces : Space.t list;
  res_evaluated : evaluated list;
  res_frontier : Pareto.point list;
  res_stats : stats;
}

let point_of cand (m : Core.Metrics.measured) =
  {
    Pareto.pt_key = Space.key cand;
    pt_area = m.Core.Metrics.area;
    pt_perf = m.Core.Metrics.throughput_mops;
  }

(* Candidates are measured at the Fig. 1 stream length, so the engine
   shares the sweep artifacts' memo cache entry for entry — an exhaustive
   run after [fig1] is pure cache hits, and vice versa. *)
let matrices = 3

(* ------------------------------------------------------------------ *)
(* Search state                                                         *)
(* ------------------------------------------------------------------ *)

type state = {
  mutable budget_left : int;
  mutable cache_hits : int;
  mutable rounds : int;
  mutable order : evaluated list;  (* reverse evaluation order *)
  visited : (string, evaluated) Hashtbl.t;
}

(* Measure one batch of candidates on the domain pool: drop the ones this
   run already visited, truncate to the remaining budget, count how many
   are warm in the memo cache, and record every outcome.  One call = one
   "round" trace span. *)
let evaluate_batch st ?jobs ~keep_going ~spec cands =
  let fresh, _ =
    List.fold_left
      (fun (acc, seen) c ->
        let k = Space.key c in
        if Hashtbl.mem st.visited k || List.mem k seen then (acc, seen)
        else (c :: acc, k :: seen))
      ([], []) cands
  in
  let fresh = List.rev fresh in
  let fresh =
    List.filteri (fun i _ -> i < st.budget_left) fresh
  in
  if fresh = [] then ()
  else
    Core.Trace.with_span ~design:"dse" ~stage:"round" (fun () ->
        let hits =
          List.length
            (List.filter
               (fun c ->
                 Core.Evaluate.is_cached ~matrices ~spec c.Space.cand_design)
               fresh)
        in
        let designs = List.map (fun c -> c.Space.cand_design) fresh in
        let outcomes =
          if keep_going then
            Core.Evaluate.measure_all_result ?jobs ~matrices ~spec designs
          else
            List.map (fun m -> Ok m)
              (Core.Evaluate.measure_all ?jobs ~matrices ~spec designs)
        in
        st.budget_left <- st.budget_left - List.length fresh;
        st.cache_hits <- st.cache_hits + hits;
        st.rounds <- st.rounds + 1;
        Core.Trace.add_counter "evaluated" (List.length fresh);
        Core.Trace.add_counter "cache_hit" hits;
        List.iter2
          (fun c outcome ->
            let ev = { ev_candidate = c; ev_outcome = outcome } in
            Hashtbl.replace st.visited (Space.key c) ev;
            st.order <- ev :: st.order)
          fresh outcomes)

let lookup st c = Hashtbl.find_opt st.visited (Space.key c)

(* ------------------------------------------------------------------ *)
(* Strategies                                                           *)
(* ------------------------------------------------------------------ *)

let all_candidates spaces = List.concat_map Space.candidates spaces

let run_exhaustive st ?jobs ~keep_going ~spec spaces =
  evaluate_batch st ?jobs ~keep_going ~spec (all_candidates spaces)

let run_random st ?jobs ~keep_going ~spec ~seed spaces =
  let arr = Array.of_list (all_candidates spaces) in
  Rng.shuffle (Rng.create ~seed) arr;
  evaluate_batch st ?jobs ~keep_going ~spec (Array.to_list arr)

(* Multi-restart neighborhood ascent.  Restart points come from one
   seeded permutation of the space; each climb evaluates the whole ±1
   neighborhood as a single pool batch, then moves to the strictly best
   improving neighbor (ties broken by candidate key, so the walk is a
   pure function of seed and scores). *)
let run_hillclimb st ?jobs ~keep_going ~spec ~seed ~objective spaces =
  let arr = Array.of_list (all_candidates spaces) in
  Rng.shuffle (Rng.create ~seed) arr;
  let space_of =
    let tbl = Hashtbl.create 8 in
    List.iter (fun s -> Hashtbl.replace tbl s.Space.tool s) spaces;
    fun c -> Hashtbl.find tbl c.Space.cand_tool
  in
  let score_of ev =
    match ev.ev_outcome with
    | Ok m -> Some (score objective m)
    | Error _ -> None
  in
  let restart = ref 0 in
  while st.budget_left > 0 && !restart < Array.length arr do
    (* next unvisited restart point in permutation order *)
    while
      !restart < Array.length arr
      && Hashtbl.mem st.visited (Space.key arr.(!restart))
    do
      incr restart
    done;
    if !restart < Array.length arr then begin
      let start = arr.(!restart) in
      evaluate_batch st ?jobs ~keep_going ~spec [ start ];
      let current = ref (lookup st start) in
      let climbing = ref true in
      while !climbing do
        match !current with
        | None -> climbing := false  (* budget ran out before the start *)
        | Some cur -> (
            match score_of cur with
            | None -> climbing := false  (* broken point: restart *)
            | Some cur_score ->
                let neigh =
                  Space.neighbors (space_of cur.ev_candidate) cur.ev_candidate
                in
                evaluate_batch st ?jobs ~keep_going ~spec neigh;
                let best =
                  List.fold_left
                    (fun best c ->
                      match lookup st c with
                      | None -> best
                      | Some ev -> (
                          match score_of ev with
                          | None -> best
                          | Some s -> (
                              match best with
                              | Some (bs, bev)
                                when bs > s
                                     || (bs = s
                                        && Space.key bev.ev_candidate
                                           <= Space.key ev.ev_candidate) ->
                                  best
                              | _ -> Some (s, ev))))
                    None neigh
                in
                (match best with
                | Some (s, ev) when s > cur_score -> current := Some ev
                | _ -> climbing := false);
                if st.budget_left <= 0 then climbing := false)
      done
    end
  done

(* ------------------------------------------------------------------ *)
(* The orchestrator                                                     *)
(* ------------------------------------------------------------------ *)

(* All spaces in one run must come from one kernel: the engine
   evaluates every candidate under a single spec, and a mixed frontier
   would compare incomparable stimulus. *)
let spec_of_spaces = function
  | [] -> Core.Flow.idct_spec
  | (s : Space.t) :: rest ->
      List.iter
        (fun (s' : Space.t) ->
          if
            s'.Space.spec.Core.Flow.spec_name
            <> s.Space.spec.Core.Flow.spec_name
          then
            invalid_arg
              (Printf.sprintf
                 "Dse.Engine.run: spaces mix kernels (%s vs %s)"
                 s.Space.spec.Core.Flow.spec_name
                 s'.Space.spec.Core.Flow.spec_name))
        rest;
      s.Space.spec

let run ?jobs ?(keep_going = false) ?budget ?(seed = 0) ~strategy ~objective
    spaces =
  let spec = spec_of_spaces spaces in
  let space_size =
    List.fold_left (fun n s -> n + Space.size s) 0 spaces
  in
  let st =
    {
      budget_left = (match budget with Some b -> max 0 b | None -> space_size);
      cache_hits = 0;
      rounds = 0;
      order = [];
      visited = Hashtbl.create 128;
    }
  in
  Core.Trace.with_span ~design:"dse" ~stage:"search" (fun () ->
      (match strategy with
      | Strategy.Exhaustive -> run_exhaustive st ?jobs ~keep_going ~spec spaces
      | Strategy.Random -> run_random st ?jobs ~keep_going ~spec ~seed spaces
      | Strategy.Hillclimb ->
          run_hillclimb st ?jobs ~keep_going ~spec ~seed ~objective spaces);
      let evaluated = List.rev st.order in
      let cloud =
        List.filter_map
          (fun ev ->
            match ev.ev_outcome with
            | Ok m -> Some (point_of ev.ev_candidate m)
            | Error _ -> None)
          evaluated
      in
      let front = Pareto.frontier cloud in
      let failures =
        List.length
          (List.filter
             (fun ev -> Result.is_error ev.ev_outcome)
             evaluated)
      in
      Core.Trace.add_counter "frontier_size" (List.length front);
      {
        res_strategy = strategy;
        res_objective = objective;
        res_seed = seed;
        res_budget = budget;
        res_spaces = spaces;
        res_evaluated = evaluated;
        res_frontier = front;
        res_stats =
          {
            st_space = space_size;
            st_evaluated = List.length evaluated;
            st_cache_hits = st.cache_hits;
            st_rounds = st.rounds;
            st_failures = failures;
            st_frontier = List.length front;
          };
      })
