type point = { pt_key : string; pt_area : int; pt_perf : float }

let dominates p q =
  p.pt_area <= q.pt_area && p.pt_perf >= q.pt_perf
  && (p.pt_area < q.pt_area || p.pt_perf > q.pt_perf)

let compare_points a b =
  match compare a.pt_area b.pt_area with
  | 0 -> (
      match compare b.pt_perf a.pt_perf with
      | 0 -> compare a.pt_key b.pt_key
      | c -> c)
  | c -> c

(* Straight from the definition — the explored clouds are at most a few
   hundred points, so the O(n^2) filter costs nothing and cannot drift
   from [dominates]. *)
let frontier points =
  List.filter
    (fun p -> not (List.exists (fun q -> dominates q p) points))
    points
  |> List.stable_sort compare_points

let log_area a = log10 (float_of_int (max 1 a))
let log_perf p = log10 (Float.max 0.01 p)

let hypervolume ?ref_area ?ref_perf points =
  match points with
  | [] -> 0.
  | _ ->
      let ref_area =
        match ref_area with
        | Some a -> a
        | None -> List.fold_left (fun m p -> max m p.pt_area) min_int points
      in
      let ref_perf =
        match ref_perf with
        | Some p -> p
        | None -> List.fold_left (fun m p -> Float.min m p.pt_perf) infinity points
      in
      let xr = log_area ref_area and yr = log_perf ref_perf in
      (* Normalize by the bounding box of the points so the result is
         comparable across clouds; a degenerate box (single area or
         single throughput) has no 2-D volume to dominate. *)
      let xmin = List.fold_left (fun m p -> Float.min m (log_area p.pt_area)) infinity points in
      let ymax = List.fold_left (fun m p -> Float.max m (log_perf p.pt_perf)) neg_infinity points in
      let box = (xr -. xmin) *. (ymax -. yr) in
      if box <= 0. then 0.
      else
        (* Staircase union over the frontier, walked in area order: each
           step contributes (ref_x - x_i) * (y_i - best_y_so_far). *)
        let front = frontier points in
        let hv, _ =
          List.fold_left
            (fun (hv, y_floor) p ->
              let x = log_area p.pt_area and y = log_perf p.pt_perf in
              let w = Float.max 0. (xr -. x)
              and h = Float.max 0. (y -. y_floor) in
              (hv +. (w *. h), Float.max y_floor y))
            (0., yr) front
        in
        hv /. box

let summary points =
  let front = frontier points in
  Printf.sprintf "frontier %d of %d explored points, hypervolume %.3f"
    (List.length front) (List.length points) (hypervolume points)
