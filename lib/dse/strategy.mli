(** The pluggable search strategies of the DSE engine.

    - [Exhaustive]: every candidate, in sweep order (budget caps the
      prefix) — the strategy whose frontier must reproduce Fig. 1's
      Pareto-optimal subset exactly.
    - [Random]: a seeded Fisher–Yates permutation of the whole space,
      evaluated up to the budget — sampling without replacement, so no
      budget is wasted on revisits.
    - [Hillclimb]: seeded multi-restart neighborhood ascent on the
      chosen objective (±1 on one axis per move), restarting from the
      next unvisited point of the seeded permutation until the budget is
      spent.

    All three are deterministic functions of (space, seed, budget,
    objective): no wall clock, no global RNG ({!Rng}). *)

type t = Exhaustive | Random | Hillclimb

val to_string : t -> string
val all_names : string list

val parse : string -> (t, string) result
(** Case-insensitive; an unknown name lists the valid strategies. *)
