(** Self-contained deterministic pseudo-random numbers (splitmix64).

    The search strategies depend on nothing but the seed passed on the
    command line — no wall clock, no global [Random] state — so the same
    seed produces a bit-identical candidate sequence on every run, every
    machine and every [--jobs] count.  The generator is the splitmix64
    finalizer (Steele, Lea & Flood, OOPSLA 2014), fixed here rather than
    inherited from the stdlib so a compiler upgrade can never silently
    change recorded explorations. *)

type t

val create : seed:int -> t

val int : t -> int -> int
(** [int t bound] draws uniformly from [0 .. bound-1] (rejection
    sampling, no modulo bias).  [bound] must be positive. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
