type chart = {
  chart_axes : Core.Registry.axis list;
  chart_designs : Core.Design.t array;
}

type t = {
  tool : Core.Design.tool;
  charts : chart list;
  spec : Core.Flow.spec;
}

type candidate = {
  cand_tool : Core.Design.tool;
  cand_chart : int;
  cand_coords : int array;
  cand_axes : Core.Registry.axis list;
  cand_design : Core.Design.t;
}

let chart_size axes =
  List.fold_left
    (fun n (a : Core.Registry.axis) -> n * List.length a.Core.Registry.axis_values)
    1 axes

(* Partition the tool's sweep by the declared chart sizes.  The axes are
   metadata over the same generators that build the sweep, so the product
   sizes must tile the design list exactly — anything else is a
   misregistered space, caught here rather than as a silent shift of
   every later candidate. *)
let of_tool ?(kernel = Core.Kernel.idct) tool =
  let sweep = Array.of_list (Core.Kernel.sweep kernel tool) in
  let space = Core.Kernel.space kernel tool in
  let total = List.fold_left (fun n axes -> n + chart_size axes) 0 space in
  if total <> Array.length sweep then
    invalid_arg
      (Printf.sprintf
         "Dse.Space.of_tool: %s declares a %d-point space over a %d-point \
          sweep"
         (Core.Design.tool_name tool) total (Array.length sweep));
  let _, charts =
    List.fold_left
      (fun (off, acc) axes ->
        let n = chart_size axes in
        let chart =
          { chart_axes = axes; chart_designs = Array.sub sweep off n }
        in
        (off + n, chart :: acc))
      (0, []) space
  in
  { tool; charts = List.rev charts; spec = Core.Kernel.spec kernel }

let default_scripts = [ "strength_reduce"; "narrow"; "strength_reduce; narrow" ]

(* A transformation-sequence axis: the initial design plus each script
   applied to it, as one extra single-axis chart.  Derived designs are
   lazy like every other inventory entry; forcing one replays the script
   through the verified engine, so an unsound rewrite can never produce
   a measurable candidate. *)
let with_scripts ?(scripts = default_scripts) t =
  let initial =
    List.find_map
      (fun ch ->
        Array.find_opt
          (fun (d : Core.Design.t) -> d.Core.Design.label = "initial")
          ch.chart_designs)
      t.charts
  in
  match initial with
  | None -> t
  | Some base -> (
      match base.Core.Design.impl with
      | Core.Design.Pcie _ -> t
      | Core.Design.Stream l ->
          let derive s =
            let impl =
              Core.Design.Stream
                (lazy
                  (* plain Lazy.force, NOT Design.force: this body already
                     runs under the Design.force lock (the derived design
                     is itself forced through it), so re-taking the
                     non-reentrant lock would deadlock — and every other
                     force of the base also holds that lock, so this one
                     is race-free *)
                  (let subject = Transfo.Subject.of_circuit (Lazy.force l) in
                   match
                     Transfo.Engine.run (Transfo.Script.parse_exn s) subject
                   with
                   | Ok r ->
                       r.Transfo.Engine.rep_subject.Transfo.Subject.circuit
                   | Error e ->
                       failwith (Transfo.Engine.error_to_string e)))
            in
            {
              base with
              Core.Design.label = base.Core.Design.label ^ " + [" ^ s ^ "]";
              config_desc =
                base.Core.Design.config_desc ^ "; transfo: " ^ s;
              impl;
            }
          in
          let chart =
            {
              chart_axes =
                [
                  {
                    Core.Registry.axis_name = "script";
                    axis_values = "(none)" :: scripts;
                  };
                ];
              chart_designs =
                Array.of_list (base :: List.map derive scripts);
            }
          in
          { t with charts = t.charts @ [ chart ] })

let size t =
  List.fold_left (fun n c -> n + Array.length c.chart_designs) 0 t.charts

(* Row-major ranking within a chart: the last axis varies fastest,
   matching the List.concat_map nesting of every registry sweep
   generator. *)
let rank axes coords =
  let r = ref 0 and i = ref 0 in
  List.iter
    (fun (a : Core.Registry.axis) ->
      r := (!r * List.length a.Core.Registry.axis_values) + coords.(!i);
      incr i)
    axes;
  !r

let unrank axes j =
  let dims =
    List.map (fun (a : Core.Registry.axis) -> List.length a.Core.Registry.axis_values) axes
  in
  let n = List.length dims in
  let coords = Array.make n 0 in
  let j = ref j in
  List.iteri
    (fun i dim ->
      let i' = n - 1 - i in
      coords.(i') <- !j mod dim;
      j := !j / dim)
    (List.rev dims);
  coords

let candidate t ci coords =
  let chart = List.nth t.charts ci in
  {
    cand_tool = t.tool;
    cand_chart = ci;
    cand_coords = coords;
    cand_axes = chart.chart_axes;
    cand_design = chart.chart_designs.(rank chart.chart_axes coords);
  }

let candidates t =
  List.concat
    (List.mapi
       (fun ci chart ->
         List.init (Array.length chart.chart_designs) (fun j ->
             candidate t ci (unrank chart.chart_axes j)))
       t.charts)

let neighbors t cand =
  let chart = List.nth t.charts cand.cand_chart in
  let dims =
    List.map
      (fun (a : Core.Registry.axis) -> List.length a.Core.Registry.axis_values)
      chart.chart_axes
  in
  List.concat
    (List.mapi
       (fun i dim ->
         List.filter_map
           (fun delta ->
             let v = cand.cand_coords.(i) + delta in
             if v < 0 || v >= dim then None
             else
               let coords = Array.copy cand.cand_coords in
               coords.(i) <- v;
               Some (candidate t cand.cand_chart coords))
           [ -1; 1 ])
       dims)

let key cand = Core.Flow.span_key cand.cand_design

let coords_desc cand =
  (* the candidate carries its own chart axes, so the description does
     not depend on which kernel's space it came from *)
  String.concat " "
    (List.mapi
       (fun i (a : Core.Registry.axis) ->
         Printf.sprintf "%s=%s" a.Core.Registry.axis_name
           (List.nth a.Core.Registry.axis_values cand.cand_coords.(i)))
       cand.cand_axes)

let describe t =
  let buf = Buffer.create 256 in
  Printf.ksprintf (Buffer.add_string buf) "%s (%d candidates):\n"
    (Core.Design.tool_name t.tool)
    (size t);
  List.iter
    (fun chart ->
      let axes =
        String.concat " x "
          (List.map
             (fun (a : Core.Registry.axis) ->
               Printf.sprintf "%s[%d]" a.Core.Registry.axis_name
                 (List.length a.Core.Registry.axis_values))
             chart.chart_axes)
      in
      Printf.ksprintf (Buffer.add_string buf) "  %s = %d points\n" axes
        (Array.length chart.chart_designs))
    t.charts;
  Buffer.contents buf
