type t = { mutable state : int64 }

let create ~seed = { state = Int64.of_int seed }

(* splitmix64: a golden-ratio Weyl sequence through a 64-bit mix
   finalizer.  Full period over the state, passes BigCrush, and — the
   property the DSE engine actually needs — completely defined by the
   seed. *)
let next t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* Uniform draw without modulo bias: mask to the next power of two and
   reject out-of-range values (at most one expected retry). *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let mask =
    let rec go m = if m >= bound - 1 then m else go ((m lsl 1) lor 1) in
    go 1
  in
  let rec draw () =
    let v = Int64.to_int (next t) land mask in
    if v < bound then v else draw ()
  in
  draw ()

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
