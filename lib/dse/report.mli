(** Rendering and cross-checking of a DSE run.

    The ASCII report mirrors the Fig. 1 scatter — same log-log axes, same
    per-tool glyphs — with the Pareto frontier overlaid as [*] and listed
    as a table, so an exploration and the paper's figure can be read side
    by side. *)

val render : Engine.result -> string
(** Search header (strategy/seed/budget/objective), the searched spaces
    as data, the explored cloud with the frontier marked, the frontier
    table and the stats line. *)

val write_json : string -> Engine.result -> unit
(** Machine-readable run record (strategy, seed, budget, objective,
    every evaluated point with its frontier membership, failures, stats)
    written atomically via {!Core.Trace.write_atomic}. *)

val crosscheck_fig1 :
  ?jobs:int ->
  ?tools:Core.Design.tool list ->
  ?kernel:(module Core.Kernel.KERNEL) ->
  Engine.result ->
  (string, string) result
(** The Fig. 1 cross-check: the frontier of an exhaustive run over the
    paper's sweep space must equal, point for point, the Pareto-optimal
    subset of {!Core.Fig1.compute}'s point set.  [Ok] carries a one-line
    PASS message; [Error] carries the point-by-point diff. *)
