(** The search orchestrator: drives candidates through the staged
    measurement pipeline on the domain pool and accumulates the Pareto
    frontier of the explored cloud.

    Every candidate is evaluated with {!Core.Evaluate} at the Fig. 1
    stream length (3 matrices), so the process-wide memo cache is shared
    with the fig1/sweep artifacts and revisits are free.  Measurement
    results are deterministic, and batches are mapped with
    order-preserving pool primitives, so a run is bit-identical for any
    [--jobs] count; with a fixed seed it is bit-identical across
    repeats.

    Failure semantics follow the resilience layer: fail-fast by default
    (the first broken point aborts with its typed {!Core.Flow.Error});
    with [keep_going] a broken point is recorded as a typed error, scores
    as unusable for the climb, and never reaches the frontier. *)

type objective = Quality | Throughput | Area

val parse_objective : string -> (objective, string) result
val objective_name : objective -> string

val score : objective -> Core.Metrics.measured -> float
(** Scalar the hillclimb maximizes: [Q = P/A], [P], or [-A]. *)

type evaluated = {
  ev_candidate : Space.candidate;
  ev_outcome : (Core.Metrics.measured, Core.Flow.error) result;
}

type stats = {
  st_space : int;       (** candidates in the searched space *)
  st_evaluated : int;   (** distinct candidates measured this run *)
  st_cache_hits : int;  (** of those, already memoized before this run *)
  st_rounds : int;      (** evaluation batches issued *)
  st_failures : int;
  st_frontier : int;
}

type result = {
  res_strategy : Strategy.t;
  res_objective : objective;
  res_seed : int;
  res_budget : int option;
  res_spaces : Space.t list;
  res_evaluated : evaluated list;  (** evaluation order, no duplicates *)
  res_frontier : Pareto.point list;  (** canonical Pareto order *)
  res_stats : stats;
}

val point_of : Space.candidate -> Core.Metrics.measured -> Pareto.point

val run :
  ?jobs:int ->
  ?keep_going:bool ->
  ?budget:int ->
  ?seed:int ->
  strategy:Strategy.t ->
  objective:objective ->
  Space.t list ->
  result
(** Search the given spaces (default seed 0; no budget = the whole
    space).  Each evaluation round runs inside a ["dse"/"round"]
    {!Core.Trace} span with [evaluated]/[cache_hit] counters, under a
    ["dse"/"search"] root span carrying the final [frontier_size]. *)
