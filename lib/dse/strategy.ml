type t = Exhaustive | Random | Hillclimb

let to_string = function
  | Exhaustive -> "exhaustive"
  | Random -> "random"
  | Hillclimb -> "hillclimb"

let all_names = [ "exhaustive"; "random"; "hillclimb" ]

let parse s =
  match String.lowercase_ascii s with
  | "exhaustive" -> Ok Exhaustive
  | "random" -> Ok Random
  | "hillclimb" -> Ok Hillclimb
  | other ->
      Error
        (Printf.sprintf "unknown strategy %S (valid strategies: %s)" other
           (String.concat ", " all_names))
