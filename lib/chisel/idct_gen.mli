(** IDCT hardware generators (Chen–Wang butterfly) over the {!Dsl}.

    One generator serves two width disciplines:

    - [Fixed (arith, store)] — every intermediate is computed modulo
      [2^arith] and row-pass results are stored in [store] bits, mirroring
      the reference C code's [int]/[short] types and the paper's
      hand-written Verilog (32-bit arithmetic);
    - [Inferred] — widths grow minimally through the butterfly as the
      {!Dsl} (Chisel) infers them, the source of Chisel's area advantage.

    Both disciplines are bit-exact to {!Idct.Chenwang} on IEEE 1180
    conformant inputs. *)

type mode = Fixed of int * int | Inferred

val verilog_mode : mode
(** [Fixed (32, 16)] — the paper's Verilog discipline. *)

val mid_width : mode -> int
(** Width of a row-pass result as stored in the transpose buffer. *)

val row_unit : mode -> Axis.Adapter.lane_fn
(** 8 coefficients (12 bit) in, 8 row-pass results ({!mid_width}) out. *)

val col_unit : mode -> Axis.Adapter.lane_fn
(** 8 row-pass results in, 8 clipped samples (9 bit) out. *)

val kernel_full : mode -> Axis.Adapter.lane_fn
(** Full 64-in/64-out combinational transform: 8 row units feeding 8
    column units through a wiring transpose. *)

(** {1 Complete AXI-Stream designs} *)

val design_comb : mode -> name:string -> Hw.Netlist.t
(** Naive organization: 8 row + 8 column units, fully combinational kernel
    behind the row-by-row adapter (latency 17, periodicity 8). *)

val design_row8col : mode -> name:string -> Hw.Netlist.t
(** One row unit applied on the fly to each arriving beat, 8 combinational
    column units (latency 17, periodicity 8). *)

val design_rowcol : mode -> name:string -> Hw.Netlist.t
(** One row unit and one column unit, fully sequential macro-pipeline
    (latency 24, periodicity 8). *)

(** {1 Transformation-script view} *)

val arch : mode -> name:string -> unit -> Transfo.Subject.matrix_arch
(** The initial (flat) architecture of this generator as a
    transformation subject: {!Transfo.Subject.build} of it is
    node-identical to {!design_comb}, and the script
    ["fold_rows; fold_cols"] re-derives {!design_rowcol} — how the
    optimized design is proven to be [initial + script]
    (DESIGN.md §17). *)

val row_comb : mode -> name:string -> Hw.Netlist.t
(** The bare row datapath as a standalone combinational circuit
    ([i0..i7] at {!Axis.Stream.in_width} in, [o0..o7] at {!mid_width}
    out) — the workhorse subject for netlist-level transformations in
    tests, benches and the CLI. *)
