open Hw

type mode = Fixed of int * int | Inferred

let verilog_mode = Fixed (32, 16)

let w1 = Idct.Chenwang.w1
let w2 = Idct.Chenwang.w2
let w3 = Idct.Chenwang.w3
let w5 = Idct.Chenwang.w5
let w6 = Idct.Chenwang.w6
let w7 = Idct.Chenwang.w7

(* Each width discipline provides its own operator kit.  Fixed mode works
   at a single arithmetic width with wrap-around, like C [int] arithmetic
   and the paper's 32-bit Verilog; Inferred mode lets the Dsl grow widths
   minimally, like Chisel. *)
type kit = {
  add : Dsl.t -> Dsl.t -> Dsl.t;
  sub : Dsl.t -> Dsl.t -> Dsl.t;
  mulc : int -> Dsl.t -> Dsl.t;
  shl : Dsl.t -> int -> Dsl.t;
  asr_ : Dsl.t -> int -> Dsl.t;
  lit : int -> Dsl.t;
  iclip : Dsl.t -> Dsl.t;
}

let make_kit mode b =
  match mode with
  | Inferred ->
      {
        add = Dsl.add b;
        sub = Dsl.sub b;
        mulc = Dsl.mulc b;
        shl = Dsl.shl b;
        asr_ = Dsl.asr_ b;
        lit = Dsl.lit b;
        iclip = Dsl.clamp b ~lo:(-256) ~hi:255;
      }
  | Fixed (arith, _) ->
      let at x = Dsl.resize b x arith in
      {
        add = (fun x y -> Dsl.of_raw (Builder.add b (Dsl.raw (at x)) (Dsl.raw (at y))));
        sub = (fun x y -> Dsl.of_raw (Builder.sub b (Dsl.raw (at x)) (Dsl.raw (at y))));
        mulc =
          (fun c x ->
            Dsl.of_raw
              (Builder.mul b (Builder.const b ~width:arith c) (Dsl.raw (at x))));
        shl = (fun x n -> Dsl.of_raw (Builder.shl_const b (Dsl.raw (at x)) n));
        asr_ = (fun x n -> Dsl.of_raw (Builder.sra_const b (Dsl.raw (at x)) n));
        lit = (fun v -> Dsl.of_raw (Builder.const b ~width:arith v));
        iclip = Dsl.clamp b ~lo:(-256) ~hi:255;
      }

let row_datapath mode b ins =
  let { add; sub; mulc; shl; asr_; lit; iclip = _ } = make_kit mode b in
  let mulc c x = mulc c x in
  let x0 = add (shl ins.(0) 11) (lit 128) in
  let x1 = shl ins.(4) 11 in
  let x2 = ins.(6) and x3 = ins.(2) and x4 = ins.(1) in
  let x5 = ins.(7) and x6 = ins.(5) and x7 = ins.(3) in
  (* first stage *)
  let x8 = mulc w7 (add x4 x5) in
  let x4 = add x8 (mulc (w1 - w7) x4) in
  let x5 = sub x8 (mulc (w1 + w7) x5) in
  let x8 = mulc w3 (add x6 x7) in
  let x6 = sub x8 (mulc (w3 - w5) x6) in
  let x7 = sub x8 (mulc (w3 + w5) x7) in
  (* second stage *)
  let x8 = add x0 x1 in
  let x0 = sub x0 x1 in
  let x1 = mulc w6 (add x3 x2) in
  let x2 = sub x1 (mulc (w2 + w6) x2) in
  let x3 = add x1 (mulc (w2 - w6) x3) in
  let x1 = add x4 x6 in
  let x4 = sub x4 x6 in
  let x6 = add x5 x7 in
  let x5 = sub x5 x7 in
  (* third stage *)
  let x7 = add x8 x3 in
  let x8 = sub x8 x3 in
  let x3 = add x0 x2 in
  let x0 = sub x0 x2 in
  let x2 = asr_ (add (mulc 181 (add x4 x5)) (lit 128)) 8 in
  let x4 = asr_ (add (mulc 181 (sub x4 x5)) (lit 128)) 8 in
  (* fourth stage *)
  [|
    asr_ (add x7 x1) 8;
    asr_ (add x3 x2) 8;
    asr_ (add x0 x4) 8;
    asr_ (add x8 x6) 8;
    asr_ (sub x8 x6) 8;
    asr_ (sub x0 x4) 8;
    asr_ (sub x3 x2) 8;
    asr_ (sub x7 x1) 8;
  |]

let col_datapath mode b ins =
  let { add; sub; mulc; shl; asr_; lit; iclip } = make_kit mode b in
  let x0 = add (shl ins.(0) 8) (lit 8192) in
  let x1 = shl ins.(4) 8 in
  let x2 = ins.(6) and x3 = ins.(2) and x4 = ins.(1) in
  let x5 = ins.(7) and x6 = ins.(5) and x7 = ins.(3) in
  (* first stage *)
  let x8 = add (mulc w7 (add x4 x5)) (lit 4) in
  let x4 = asr_ (add x8 (mulc (w1 - w7) x4)) 3 in
  let x5 = asr_ (sub x8 (mulc (w1 + w7) x5)) 3 in
  let x8 = add (mulc w3 (add x6 x7)) (lit 4) in
  let x6 = asr_ (sub x8 (mulc (w3 - w5) x6)) 3 in
  let x7 = asr_ (sub x8 (mulc (w3 + w5) x7)) 3 in
  (* second stage *)
  let x8 = add x0 x1 in
  let x0 = sub x0 x1 in
  let x1 = add (mulc w6 (add x3 x2)) (lit 4) in
  let x2 = asr_ (sub x1 (mulc (w2 + w6) x2)) 3 in
  let x3 = asr_ (add x1 (mulc (w2 - w6) x3)) 3 in
  let x1 = add x4 x6 in
  let x4 = sub x4 x6 in
  let x6 = add x5 x7 in
  let x5 = sub x5 x7 in
  (* third stage *)
  let x7 = add x8 x3 in
  let x8 = sub x8 x3 in
  let x3 = add x0 x2 in
  let x0 = sub x0 x2 in
  let x2 = asr_ (add (mulc 181 (add x4 x5)) (lit 128)) 8 in
  let x4 = asr_ (add (mulc 181 (sub x4 x5)) (lit 128)) 8 in
  (* fourth stage *)
  [|
    iclip (asr_ (add x7 x1) 14);
    iclip (asr_ (add x3 x2) 14);
    iclip (asr_ (add x0 x4) 14);
    iclip (asr_ (add x8 x6) 14);
    iclip (asr_ (sub x8 x6) 14);
    iclip (asr_ (sub x0 x4) 14);
    iclip (asr_ (sub x3 x2) 14);
    iclip (asr_ (sub x7 x1) 14);
  |]

let inferred_mid_width =
  lazy
    (let b = Builder.create "dryrun" in
     let ins =
       Array.init 8 (fun i ->
           Dsl.of_raw (Builder.input b (Printf.sprintf "i%d" i) Axis.Stream.in_width))
     in
     let outs = row_datapath Inferred b ins in
     Array.fold_left (fun acc s -> max acc (Dsl.width s)) 1 outs)

let mid_width = function
  | Fixed (_, store) -> store
  | Inferred -> Lazy.force inferred_mid_width

let row_unit mode b raw_ins =
  let ins = Array.map Dsl.of_raw raw_ins in
  let outs = row_datapath mode b ins in
  let w = mid_width mode in
  Array.map (fun s -> Dsl.raw (Dsl.resize b s w)) outs

let col_unit mode b raw_ins =
  let ins = Array.map Dsl.of_raw raw_ins in
  let outs = col_datapath mode b ins in
  Array.map (fun s -> Dsl.raw (Dsl.resize b s Axis.Stream.out_width)) outs

let kernel_full mode b mid =
  let lanes = Axis.Stream.lanes in
  (* 8 row units, one per stored row. *)
  let rows =
    Array.init lanes (fun r ->
        row_unit mode b (Array.init lanes (fun c -> mid.((r * lanes) + c))))
  in
  (* 8 column units over the wiring transpose. *)
  let cols =
    Array.init lanes (fun c ->
        col_unit mode b (Array.init lanes (fun r -> rows.(r).(c))))
  in
  Array.init (lanes * lanes) (fun i -> cols.(i mod lanes).(i / lanes))

let design_comb mode ~name =
  Axis.Adapter.wrap_matrix_kernel ~name ~latency:0 ~kernel:(kernel_full mode)
    ()

let design_row8col mode ~name =
  let kernel b mid =
    let lanes = Axis.Stream.lanes in
    let cols =
      Array.init lanes (fun c ->
          col_unit mode b (Array.init lanes (fun r -> mid.((r * lanes) + c))))
    in
    Array.init (lanes * lanes) (fun i -> cols.(i mod lanes).(i / lanes))
  in
  Axis.Adapter.wrap_matrix_kernel ~name ~beat_map:(row_unit mode)
    ~mid_width:(mid_width mode) ~latency:0 ~kernel ()

let design_rowcol mode ~name =
  Axis.Adapter.wrap_row_col ~name ~row_unit:(row_unit mode)
    ~mid_width:(mid_width mode) ~col_unit:(col_unit mode) ()

let arch mode ~name () =
  {
    Transfo.Subject.arch_name = name;
    stage = Transfo.Subject.Flat;
    row = row_unit mode;
    col = col_unit mode;
    arch_mid = mid_width mode;
  }

let row_comb mode ~name =
  let b = Builder.create name in
  let ins =
    Array.init Axis.Stream.lanes (fun i ->
        Builder.input b (Printf.sprintf "i%d" i) Axis.Stream.in_width)
  in
  let outs = row_unit mode b ins in
  Array.iteri (fun i s -> Builder.output b (Printf.sprintf "o%d" i) s) outs;
  Builder.finalize b
