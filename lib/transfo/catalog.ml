open Hw

type arg_kind = No_arg | Int_arg of string

module type TRANSFO = sig
  val name : string
  val aliases : string list
  val description : string
  val precondition : string
  val arg : arg_kind
  val check : arg:int option -> Subject.t -> (unit, string) result
  val apply : arg:int option -> Subject.t -> Subject.t
  val obligation : arg:int option -> Verify.obligation
end

let ( let* ) = Result.bind

let comb_only who (c : Netlist.t) =
  if Array.exists Netlist.is_reg c.Netlist.nodes then
    Error (who ^ ": circuit must be combinational (it has registers)")
  else if Array.length c.Netlist.mems > 0 then
    Error (who ^ ": circuit must be combinational (it has memories)")
  else Ok ()

let no_arg who = function
  | None -> Ok ()
  | Some _ -> Error (who ^ " takes no argument")

let int_arg who ~min = function
  | None -> Error (Printf.sprintf "%s requires an integer argument" who)
  | Some n when n < min ->
      Error (Printf.sprintf "%s: argument must be >= %d (got %d)" who min n)
  | Some n -> Ok n

let get_arg = function
  | Some n -> n
  | None -> invalid_arg "transfo: missing argument after successful check"

(* Netlist-level rewrites invalidate the architecture view. *)
let netlist_result (s : Subject.t) ?(latency = 0) circuit =
  { s with Subject.circuit; arch = None; latency_added = s.latency_added + latency }

module Retime = struct
  let name = "retime"
  let aliases = [ "pipeline" ]
  let description =
    "macro-pipeline a combinational circuit into N register ranks"
  let precondition = "combinational circuit (no registers or memories)"
  let arg = Int_arg "stages"

  let check ~arg (s : Subject.t) =
    let* _ = int_arg name ~min:1 arg in
    comb_only name s.Subject.circuit

  let apply ~arg (s : Subject.t) =
    let stages = get_arg arg in
    netlist_result s ~latency:stages
      (Pipeline.retime ~stages s.Subject.circuit)

  let obligation ~arg = Verify.Delayed (get_arg arg)
end

module Outreg = struct
  let name = "outreg"
  let aliases = []
  let description = "register every output (one added cycle of latency)"
  let precondition = "combinational circuit (no registers or memories)"
  let arg = No_arg

  let check ~arg (s : Subject.t) =
    let* () = no_arg name arg in
    comb_only name s.Subject.circuit

  let apply ~arg:_ (s : Subject.t) =
    let c = s.Subject.circuit in
    let n = Array.length c.Netlist.nodes in
    let regs =
      List.mapi
        (fun i (nm, u) ->
          let w = (Netlist.node c u).Netlist.width in
          {
            Netlist.uid = n + i;
            width = w;
            kind = Netlist.Reg { d = u; enable = None; init = Bits.zero w };
            name = Some (nm ^ "_q");
          })
        c.Netlist.outputs
    in
    let result =
      {
        c with
        Netlist.circuit_name = c.Netlist.circuit_name ^ "_outreg";
        nodes = Array.append c.Netlist.nodes (Array.of_list regs);
        outputs = List.mapi (fun i (nm, _) -> (nm, n + i)) c.Netlist.outputs;
      }
    in
    Netlist.validate result;
    netlist_result s ~latency:1 result

  let obligation ~arg:_ = Verify.Delayed 1
end

module Strength_reduce = struct
  let name = "strength_reduce"
  let aliases = [ "csd" ]
  let description =
    "rewrite constant multiplications into canonical-signed-digit \
     shift/add/sub ladders"
  let precondition = "none (a circuit without constant products is unchanged)"
  let arg = No_arg

  let check ~arg _ = no_arg name arg

  (* Canonical signed digit decomposition, least significant digit
     first.  Each digit is +-1 at a distinct position and no two
     adjacent positions are nonzero, so [popcount] shifted terms are
     minimal for the classic DCT/IDCT coefficients. *)
  let csd k =
    let rec go n i acc =
      if n = 0 then List.rev acc
      else if n land 1 = 0 then go (n asr 1) (i + 1) acc
      else
        let d = if n land 3 = 1 then 1 else -1 in
        go ((n - d) asr 1) (i + 1) ((i, d) :: acc)
    in
    go k 0 []

  let hook em (c : Netlist.t) (nd : Netlist.node) =
    match nd.Netlist.kind with
    | Netlist.Binop (Netlist.Mul, a, b) -> (
        let const_of u =
          match (Netlist.node c u).Netlist.kind with
          | Netlist.Const bits -> Some bits
          | _ -> None
        in
        let expand x bits =
          let w = nd.Netlist.width in
          let k = Bits.to_signed_int bits in
          (* digit positions >= w vanish modulo 2^w *)
          let digits = List.filter (fun (i, _) -> i < w) (csd k) in
          let xm = Rewrite.mapped em x in
          let shifted i =
            if i = 0 then xm
            else
              let hi =
                Rewrite.emit em ~width:(w - i)
                  (Netlist.Slice (xm, w - 1 - i, 0))
              in
              let zeros =
                Rewrite.emit em ~width:i (Netlist.Const (Bits.zero i))
              in
              Rewrite.emit em ~width:w (Netlist.Concat (hi, zeros))
          in
          match digits with
          | [] ->
              Some
                (Rewrite.emit em ?name:nd.name ~width:w
                   (Netlist.Const (Bits.zero w)))
          | (i0, d0) :: rest ->
              let t0 = shifted i0 in
              let acc0 =
                if d0 = 1 then t0
                else
                  Rewrite.emit em ~width:w (Netlist.Unop (Netlist.Neg, t0))
              in
              Some
                (List.fold_left
                   (fun acc (i, d) ->
                     let op = if d = 1 then Netlist.Add else Netlist.Sub in
                     Rewrite.emit em ~width:w
                       (Netlist.Binop (op, acc, shifted i)))
                   acc0 rest)
        in
        match const_of b with
        | Some bits -> expand a bits
        | None -> (
            match const_of a with
            | Some bits -> expand b bits
            | None -> None))
    | _ -> None

  let apply ~arg:_ (s : Subject.t) =
    netlist_result s (Rewrite.rewrite hook s.Subject.circuit)

  let obligation ~arg:_ = Verify.Cycle_exact
end

module Narrow = struct
  let name = "narrow"
  let aliases = [ "width_narrow" ]
  let description =
    "demand-driven width narrowing: shrink arithmetic to the low bits \
     the outputs consume"
  let precondition = "none (a circuit with no excess width is unchanged)"
  let arg = No_arg

  let check ~arg _ = no_arg name arg

  (* Backward demand analysis: dem.(u) = how many LOW bits of node [u]
     any consumer can observe.  Shifts, comparisons and memory addresses
     demand their operands in full; everything bitwise/low-bit-determined
     (add, sub, mul, logic, mux, neg, not) propagates the consumer's
     demand unchanged.  Registers forward demand through the clock, so
     iterate to a fixpoint. *)
  let demands (c : Netlist.t) =
    let n = Array.length c.Netlist.nodes in
    let dem = Array.make n 0 in
    let changed = ref true in
    let bump u d =
      let d = min d (Netlist.node c u).Netlist.width in
      if d > dem.(u) then begin
        dem.(u) <- d;
        changed := true
      end
    in
    List.iter (fun (_, u) -> bump u max_int) c.Netlist.outputs;
    Array.iter
      (fun (m : Netlist.mem) ->
        List.iter
          (fun (w : Netlist.write_port) ->
            bump w.Netlist.w_enable 1;
            bump w.Netlist.w_addr max_int;
            bump w.Netlist.w_data max_int)
          m.Netlist.mem_writes)
      c.Netlist.mems;
    while !changed do
      changed := false;
      for i = n - 1 downto 0 do
        let nd = c.Netlist.nodes.(i) in
        let d = dem.(i) in
        if d > 0 then
          match nd.Netlist.kind with
          | Netlist.Input _ | Netlist.Const _ -> ()
          | Netlist.Unop (_, a) -> bump a d
          | Netlist.Binop
              ( ( Netlist.Add | Netlist.Sub | Netlist.Mul | Netlist.And
                | Netlist.Or | Netlist.Xor ),
                x,
                y ) ->
              bump x d;
              bump y d
          | Netlist.Binop ((Netlist.Shl | Netlist.Shr | Netlist.Sra) as op, x, y)
            -> (
              (* a constant shift moves the demand window; a variable
                 one demands everything *)
              match (Netlist.node c y).Netlist.kind with
              | Netlist.Const bits ->
                  let k = min (Bits.to_int bits) Bits.max_width in
                  if op = Netlist.Shl then begin
                    if d > k then bump x (d - k)
                  end
                  else bump x (d + k)
              | _ ->
                  bump x max_int;
                  bump y max_int)
          | Netlist.Binop (_, x, y) ->
              (* comparisons observe every bit *)
              bump x max_int;
              bump y max_int
          | Netlist.Mux (s, t, f) ->
              bump s 1;
              bump t d;
              bump f d
          | Netlist.Slice (a, _, lo) -> bump a (lo + d)
          | Netlist.Concat (hi, lo) ->
              let wl = (Netlist.node c lo).Netlist.width in
              bump lo d;
              if d > wl then bump hi (d - wl)
          | Netlist.Uext a | Netlist.Sext a -> bump a d
          | Netlist.Reg { d = di; enable; _ } ->
              bump di d;
              Option.iter (fun e -> bump e 1) enable
          | Netlist.Mem_read (_, a) -> bump a max_int
      done
    done;
    dem

  let apply ~arg:_ (s : Subject.t) =
    let c = s.Subject.circuit in
    let dem = demands c in
    let hook em _ (nd : Netlist.node) =
      let w = nd.Netlist.width in
      let d = max 1 dem.(nd.Netlist.uid) in
      if d >= w then None
      else
        let slim u = Rewrite.emit em ~width:d (Netlist.Slice (Rewrite.mapped em u, d - 1, 0)) in
        let narrowed =
          match nd.Netlist.kind with
          | Netlist.Binop
              ( ( Netlist.Add | Netlist.Sub | Netlist.Mul | Netlist.And
                | Netlist.Or | Netlist.Xor ) as op,
                x,
                y ) ->
              Some (Rewrite.emit em ~width:d (Netlist.Binop (op, slim x, slim y)))
          | Netlist.Unop (op, x) ->
              Some (Rewrite.emit em ~width:d (Netlist.Unop (op, slim x)))
          | Netlist.Mux (sel, t, f) ->
              Some
                (Rewrite.emit em ~width:d
                   (Netlist.Mux (Rewrite.mapped em sel, slim t, slim f)))
          | _ -> None
        in
        Option.map
          (fun u -> Rewrite.emit em ?name:nd.name ~width:w (Netlist.Uext u))
          narrowed
    in
    netlist_result s (Rewrite.rewrite hook c)

  let obligation ~arg:_ = Verify.Cycle_exact
end

module Unroll = struct
  let name = "unroll"
  let aliases = [ "replicate" ]
  let description =
    "replicate a combinational circuit K times with _r<j>-suffixed ports"
  let precondition = "combinational circuit (no registers or memories); K >= 2"
  let arg = Int_arg "copies"

  let check ~arg (s : Subject.t) =
    let* _ = int_arg name ~min:2 arg in
    comb_only name s.Subject.circuit

  let apply ~arg (s : Subject.t) =
    let k = get_arg arg in
    let c = s.Subject.circuit in
    let n = Array.length c.Netlist.nodes in
    let suffix j nm = Printf.sprintf "%s_r%d" nm j in
    let nodes =
      Array.init (n * k) (fun idx ->
          let j = idx / n and i = idx mod n in
          let nd = c.Netlist.nodes.(i) in
          let m u = u + (j * n) in
          let kind =
            match nd.Netlist.kind with
            | Netlist.Input nm -> Netlist.Input (suffix j nm)
            | Netlist.Const _ as kk -> kk
            | Netlist.Unop (o, a) -> Netlist.Unop (o, m a)
            | Netlist.Binop (o, a, b) -> Netlist.Binop (o, m a, m b)
            | Netlist.Mux (sel, t, f) -> Netlist.Mux (m sel, m t, m f)
            | Netlist.Slice (a, hi, lo) -> Netlist.Slice (m a, hi, lo)
            | Netlist.Concat (a, b) -> Netlist.Concat (m a, m b)
            | Netlist.Uext a -> Netlist.Uext (m a)
            | Netlist.Sext a -> Netlist.Sext (m a)
            | Netlist.Reg _ | Netlist.Mem_read _ ->
                invalid_arg "unroll: sequential node under comb precondition"
          in
          {
            Netlist.uid = idx;
            width = nd.Netlist.width;
            kind;
            name = Option.map (suffix j) nd.Netlist.name;
          })
    in
    let ports l =
      List.concat
        (List.init k (fun j ->
             List.map (fun (nm, u) -> (suffix j nm, u + (j * n))) l))
    in
    let result =
      {
        Netlist.circuit_name =
          Printf.sprintf "%s_x%d" c.Netlist.circuit_name k;
        nodes;
        mems = [||];
        inputs = ports c.Netlist.inputs;
        outputs = ports c.Netlist.outputs;
      }
    in
    Netlist.validate result;
    netlist_result s result

  let obligation ~arg = Verify.Replicated (get_arg arg)
end

let need_arch who stage (s : Subject.t) =
  match s.Subject.arch with
  | None ->
      Error (who ^ ": subject has no architecture view (netlist-only subject)")
  | Some a ->
      if a.Subject.stage = stage then Ok a
      else
        Error
          (Printf.sprintf "%s: architecture is at the %s stage, expected %s"
             who
             (Subject.stage_name a.Subject.stage)
             (Subject.stage_name stage))

let restage (s : Subject.t) arch =
  { s with Subject.circuit = Subject.build arch; arch = Some arch }

module Fold_rows = struct
  let name = "fold_rows"
  let aliases = [ "beat_rows" ]
  let description =
    "share one row unit across arriving beats (flat -> beat-row staging)"
  let precondition = "matrix architecture at the flat stage"
  let arg = No_arg

  let check ~arg (s : Subject.t) =
    let* () = no_arg name arg in
    let* _ = need_arch name Subject.Flat s in
    Ok ()

  let apply ~arg:_ (s : Subject.t) =
    let a = Option.get s.Subject.arch in
    restage s { a with Subject.stage = Subject.Beat_row }

  let obligation ~arg:_ = Verify.Stream_blocks
end

module Fold_cols = struct
  let name = "fold_cols"
  let aliases = [ "macro_pipeline" ]
  let description =
    "fold the column bank into one sequential unit (beat-row -> row-col \
     macro-pipeline)"
  let precondition = "matrix architecture at the beat-row stage"
  let arg = No_arg

  let check ~arg (s : Subject.t) =
    let* () = no_arg name arg in
    let* _ = need_arch name Subject.Beat_row s in
    Ok ()

  let apply ~arg:_ (s : Subject.t) =
    let a = Option.get s.Subject.arch in
    restage s { a with Subject.stage = Subject.Row_col }

  let obligation ~arg:_ = Verify.Stream_blocks
end

let all : (module TRANSFO) list =
  [
    (module Retime);
    (module Outreg);
    (module Strength_reduce);
    (module Narrow);
    (module Unroll);
    (module Fold_rows);
    (module Fold_cols);
  ]

let names () = List.map (fun (module T : TRANSFO) -> T.name) all

let find nm =
  let nm = String.lowercase_ascii nm in
  List.find_opt
    (fun (module T : TRANSFO) -> T.name = nm || List.mem nm T.aliases)
    all

let unknown_transfo_msg nm =
  Printf.sprintf "unknown transformation %S (valid transformations: %s)" nm
    (String.concat ", " (names ()))

let arg_doc = function No_arg -> "" | Int_arg doc -> " <" ^ doc ^ ">"
