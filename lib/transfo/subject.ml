type stage = Flat | Beat_row | Row_col

type matrix_arch = {
  arch_name : string;
  stage : stage;
  row : Axis.Adapter.lane_fn;
  col : Axis.Adapter.lane_fn;
  arch_mid : int;
}

type t = {
  circuit : Hw.Netlist.t;
  arch : matrix_arch option;
  latency_added : int;
  history : string list;
}

let stage_name = function
  | Flat -> "flat"
  | Beat_row -> "beat-row"
  | Row_col -> "row-col"

(* These bodies mirror the hand-written generators point for point
   (Chisel.Idct_gen.kernel_full / design_row8col / design_rowcol): same
   array-initialization order, same adapter arguments — the builder's
   determinism then makes the regenerated netlist node-identical to the
   ladder's, which the rederivation test pins. *)
let build a =
  let lanes = Axis.Stream.lanes in
  match a.stage with
  | Flat ->
      let kernel b mid =
        let rows =
          Array.init lanes (fun r ->
              a.row b (Array.init lanes (fun c -> mid.((r * lanes) + c))))
        in
        let cols =
          Array.init lanes (fun c ->
              a.col b (Array.init lanes (fun r -> rows.(r).(c))))
        in
        Array.init (lanes * lanes) (fun i -> cols.(i mod lanes).(i / lanes))
      in
      Axis.Adapter.wrap_matrix_kernel ~name:a.arch_name ~latency:0 ~kernel ()
  | Beat_row ->
      let kernel b mid =
        let cols =
          Array.init lanes (fun c ->
              a.col b (Array.init lanes (fun r -> mid.((r * lanes) + c))))
        in
        Array.init (lanes * lanes) (fun i -> cols.(i mod lanes).(i / lanes))
      in
      Axis.Adapter.wrap_matrix_kernel ~name:a.arch_name ~beat_map:a.row
        ~mid_width:a.arch_mid ~latency:0 ~kernel ()
  | Row_col ->
      Axis.Adapter.wrap_row_col ~name:a.arch_name ~row_unit:a.row
        ~mid_width:a.arch_mid ~col_unit:a.col ()

let of_circuit circuit = { circuit; arch = None; latency_added = 0; history = [] }

let of_arch a = { circuit = build a; arch = Some a; latency_added = 0; history = [] }
