(** Script execution with per-step verification (DESIGN.md §17).

    Every applied step is immediately followed by the discharge of its
    {!Verify.obligation} {e and} a three-way
    {!Hw.Equiv.crosscheck} + batched {!Hw.Equiv.crosscheck_batch} of the
    result, so a broken transformation is caught at the step that
    introduced it, with the step name in the error. *)

type tracer = {
  wrap : 'a. design:string -> stage:string -> (unit -> 'a) -> 'a;
  counter : string -> int -> unit;
}
(** Tracing is injected (rather than depending on [Core.Trace] directly)
    to keep the library dependency graph acyclic: [Core.Registry] uses
    this engine to re-derive designs, and installs the real tracer at
    module initialisation. *)

val set_tracer : tracer -> unit

type error =
  | Unknown_transfo of string
  | Precondition_failed of { pf_step : string; pf_reason : string }
  | Verify_failed of {
      vf_step : string;
      vf_obligation : string;
      vf_reason : string;
    }

val error_to_string : error -> string

type step_report = {
  sr_step : string;  (** canonical step text, e.g. ["retime 2"] *)
  sr_obligation : string;
  sr_nodes_before : int;
  sr_nodes_after : int;
}

type report = { rep_subject : Subject.t; rep_steps : step_report list }

val apply_step :
  ?cycles:int ->
  ?seed:int ->
  (module Catalog.TRANSFO) ->
  arg:int option ->
  Subject.t ->
  (Subject.t * step_report, error) result
(** One step: check precondition, apply, discharge the obligation over
    [cycles] (default 256) random cycles with [seed] (default 7), then
    crosscheck the result through all three simulation engines (plus a
    4-lane batched crosscheck).  Exceptions raised by the transformation
    or the checkers are reported as failures, never propagated. *)

val run :
  ?cycles:int ->
  ?seed:int ->
  Script.t ->
  Subject.t ->
  (report, error) result
(** Folds {!apply_step} over the script, resolving step names through
    {!Catalog.find}.  Stops at the first failing step. *)
