(** Transformation scripts as data (DESIGN.md §17).

    A script is a semicolon-separated sequence of named steps, each with
    an optional integer argument: ["retime 2; strength_reduce; unroll 4"].
    Parsing is purely syntactic — step names are resolved against the
    {!Catalog} by the {!Engine}, so an unknown name fails with the list
    of valid transformations, not a parse error. *)

type step = { step_name : string; step_arg : int option }

type t = step list

val parse : string -> (t, string) result
(** Syntax: [STEP (";" STEP)*] with [STEP = NAME | NAME INT].  Fails on
    an empty script, an empty step, or a non-integer argument. *)

val parse_exn : string -> t
(** @raise Invalid_argument on a parse error. *)

val step_to_string : step -> string

val to_string : t -> string
(** Canonical form: steps joined with ["; "]. *)
