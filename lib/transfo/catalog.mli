(** The transformation catalogue (DESIGN.md §17).

    Each transformation is a first-class module mirroring the
    {!Core.Registry} pattern: a stable name (plus aliases), a
    human-readable description and precondition, an applicability check,
    a deterministic [apply], and the {!Verify.obligation} the {!Engine}
    must discharge after the step. *)

type arg_kind =
  | No_arg
  | Int_arg of string  (** the argument's meaning, e.g. ["stages"] *)

module type TRANSFO = sig
  val name : string
  val aliases : string list
  val description : string
  val precondition : string
  val arg : arg_kind

  val check : arg:int option -> Subject.t -> (unit, string) result
  (** Validates the argument and the subject.  [apply] may assume the
      check passed. *)

  val apply : arg:int option -> Subject.t -> Subject.t
  (** Deterministic.  Updates the circuit (and, for staging
      transformations, the architecture view); netlist-level rewrites
      drop the architecture view.  May raise [Failure] /
      [Invalid_argument] on internal errors — the {!Engine} converts
      those into verification failures. *)

  val obligation : arg:int option -> Verify.obligation
end

module Retime : TRANSFO
(** [retime N] — macro-pipeline a combinational circuit into N register
    ranks ({!Hw.Pipeline.retime}). *)

module Outreg : TRANSFO
(** [outreg] — register every output of a combinational circuit. *)

module Strength_reduce : TRANSFO
(** [strength_reduce] — rewrite multiplications by a constant into a
    canonical-signed-digit ladder of shifts, adds and subtracts. *)

module Narrow : TRANSFO
(** [narrow] — backward demand analysis; shrink arithmetic to the bits
    the outputs actually consume, re-extending at the boundary. *)

module Unroll : TRANSFO
(** [unroll K] — replicate a combinational circuit K times with
    [_r<j>]-suffixed ports (loop unrolling at the spatial level). *)

module Fold_rows : TRANSFO
(** [fold_rows] — share one row unit across arriving beats
    (flat -> beat-row staging). *)

module Fold_cols : TRANSFO
(** [fold_cols] — fold the column bank into one sequential unit
    (beat-row -> row-col macro-pipeline). *)

val all : (module TRANSFO) list
(** Catalogue order; stable for [--list] and documentation. *)

val names : unit -> string list

val find : string -> (module TRANSFO) option
(** Case-insensitive lookup by name or alias. *)

val unknown_transfo_msg : string -> string
(** Mirrors {!Core.Registry.unknown_tool_msg}: names the unknown
    transformation and lists the valid ones. *)

val arg_doc : arg_kind -> string
(** [""] for {!No_arg}, [" N"] (space-prefixed placeholder) otherwise. *)
