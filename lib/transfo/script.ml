type step = { step_name : string; step_arg : int option }

type t = step list

let step_to_string s =
  match s.step_arg with
  | None -> s.step_name
  | Some n -> Printf.sprintf "%s %d" s.step_name n

let to_string t = String.concat "; " (List.map step_to_string t)

let parse_step raw =
  match
    String.split_on_char ' ' (String.trim raw)
    |> List.concat_map (String.split_on_char '\t')
    |> List.filter (fun w -> w <> "")
  with
  | [] -> Error "empty step"
  | [ name ] -> Ok { step_name = String.lowercase_ascii name; step_arg = None }
  | [ name; arg ] -> (
      match int_of_string_opt arg with
      | Some n -> Ok { step_name = String.lowercase_ascii name; step_arg = Some n }
      | None ->
          Error
            (Printf.sprintf "step %S: argument %S is not an integer" raw arg))
  | _ ->
      Error
        (Printf.sprintf "step %S: expected NAME or NAME N" (String.trim raw))

let parse s =
  let items =
    String.split_on_char ';' s |> List.map String.trim
    |> List.filter (fun x -> x <> "")
  in
  if items = [] then Error "empty script (expected e.g. \"retime 2; strength_reduce\")"
  else
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | it :: rest -> (
          match parse_step it with
          | Ok st -> go (st :: acc) rest
          | Error e -> Error e)
    in
    go [] items

let parse_exn s =
  match parse s with
  | Ok t -> t
  | Error e -> invalid_arg ("Script.parse: " ^ e)
