open Hw

type tracer = {
  wrap : 'a. design:string -> stage:string -> (unit -> 'a) -> 'a;
  counter : string -> int -> unit;
}

let null_tracer = { wrap = (fun ~design:_ ~stage:_ f -> f ()); counter = (fun _ _ -> ()) }
let tracer = ref null_tracer
let set_tracer t = tracer := t

type error =
  | Unknown_transfo of string
  | Precondition_failed of { pf_step : string; pf_reason : string }
  | Verify_failed of {
      vf_step : string;
      vf_obligation : string;
      vf_reason : string;
    }

let error_to_string = function
  | Unknown_transfo nm -> Catalog.unknown_transfo_msg nm
  | Precondition_failed { pf_step; pf_reason } ->
      Printf.sprintf "step %S not applicable: %s" pf_step pf_reason
  | Verify_failed { vf_step; vf_obligation; vf_reason } ->
      Printf.sprintf "step %S failed verification (%s): %s" vf_step
        vf_obligation vf_reason

type step_report = {
  sr_step : string;
  sr_obligation : string;
  sr_nodes_before : int;
  sr_nodes_after : int;
}

type report = { rep_subject : Subject.t; rep_steps : step_report list }

let verify ~cycles ~seed ob ~before ~after =
  match Verify.discharge ~cycles ~seed ob ~before ~after with
  | Error _ as e -> e
  | Ok () -> (
      (* the step-specific obligation relates before and after; the
         crosschecks establish that the result itself is simulated
         identically by all three engines *)
      let c = after.Subject.circuit in
      match Equiv.crosscheck ~cycles ~seed c with
      | Equiv.Mismatch _ as r ->
          Error (Format.asprintf "crosscheck: %a" Equiv.pp_result r)
      | Equiv.Equivalent -> (
          match
            Equiv.crosscheck_batch ~cycles:(max 32 (cycles / 2)) ~seed
              ~lanes:4 c
          with
          | Equiv.Mismatch _ as r ->
              Error (Format.asprintf "batch crosscheck: %a" Equiv.pp_result r)
          | Equiv.Equivalent -> Ok ()))

let apply_step ?(cycles = 256) ?(seed = 7) (module T : Catalog.TRANSFO) ~arg
    (subject : Subject.t) =
  let tr = !tracer in
  let step_str =
    Script.step_to_string { Script.step_name = T.name; step_arg = arg }
  in
  let design = "transfo/" ^ subject.Subject.circuit.Netlist.circuit_name in
  match T.check ~arg subject with
  | Error reason ->
      Error (Precondition_failed { pf_step = step_str; pf_reason = reason })
  | Ok () -> (
      let fail ob reason =
        Error
          (Verify_failed
             { vf_step = step_str; vf_obligation = ob; vf_reason = reason })
      in
      match
        tr.wrap ~design ~stage:("transfo:" ^ T.name) (fun () ->
            T.apply ~arg subject)
      with
      | exception (Failure msg | Invalid_argument msg) -> fail "apply" msg
      | after -> (
          let ob = Verify.obligation_name (T.obligation ~arg) in
          match
            tr.wrap ~design ~stage:"transfo:verify" (fun () ->
                tr.counter "verify_cycles" cycles;
                verify ~cycles ~seed (T.obligation ~arg) ~before:subject
                  ~after)
          with
          | exception (Failure msg | Invalid_argument msg) -> fail ob msg
          | Error reason -> fail ob reason
          | Ok () ->
              tr.counter "transfo_nodes"
                (Netlist.num_nodes after.Subject.circuit);
              let after =
                {
                  after with
                  Subject.history = subject.Subject.history @ [ step_str ];
                }
              in
              Ok
                ( after,
                  {
                    sr_step = step_str;
                    sr_obligation = ob;
                    sr_nodes_before =
                      Netlist.num_nodes subject.Subject.circuit;
                    sr_nodes_after = Netlist.num_nodes after.Subject.circuit;
                  } )))

let run ?cycles ?seed (script : Script.t) subject =
  let rec go subj acc = function
    | [] -> Ok { rep_subject = subj; rep_steps = List.rev acc }
    | (st : Script.step) :: rest -> (
        match Catalog.find st.Script.step_name with
        | None -> Error (Unknown_transfo st.Script.step_name)
        | Some m -> (
            match apply_step ?cycles ?seed m ~arg:st.Script.step_arg subj with
            | Error _ as e -> e
            | Ok (subj', rep) -> go subj' (rep :: acc) rest))
  in
  go subject [] script
