open Hw

type emitter = {
  mutable buf : Netlist.node array;
  mutable next : int;
  map : int array; (* old uid -> new uid; -1 = not yet rewritten *)
}

let dummy_node =
  { Netlist.uid = -1; width = 1; kind = Netlist.Input "!dummy"; name = None }

let create n_old =
  { buf = Array.make (max 16 n_old) dummy_node; next = 0; map = Array.make n_old (-1) }

let emit em ?name ~width kind =
  let uid = em.next in
  if uid = Array.length em.buf then begin
    let bigger = Array.make (2 * uid) dummy_node in
    Array.blit em.buf 0 bigger 0 uid;
    em.buf <- bigger
  end;
  em.buf.(uid) <- { Netlist.uid; width; kind; name };
  em.next <- uid + 1;
  uid

let mapped em u =
  let v = em.map.(u) in
  if v < 0 then
    invalid_arg
      (Printf.sprintf "Rewrite.mapped: forward reference to old node %d" u);
  v

let width_of em u = em.buf.(u).Netlist.width

(* Remap a combinational kind's operands from the old to the new space. *)
let map_kind m = function
  | Netlist.Unop (o, a) -> Netlist.Unop (o, m a)
  | Netlist.Binop (o, a, b) -> Netlist.Binop (o, m a, m b)
  | Netlist.Mux (s, t, f) -> Netlist.Mux (m s, m t, m f)
  | Netlist.Slice (a, hi, lo) -> Netlist.Slice (m a, hi, lo)
  | Netlist.Concat (a, b) -> Netlist.Concat (m a, m b)
  | Netlist.Uext a -> Netlist.Uext (m a)
  | Netlist.Sext a -> Netlist.Sext (m a)
  | (Netlist.Input _ | Netlist.Const _) as k -> k
  | Netlist.Reg _ | Netlist.Mem_read _ ->
      assert false (* handled by the driver, never remapped here *)

let rewrite ?name hook (c : Netlist.t) =
  let em = create (Array.length c.Netlist.nodes) in
  (* New uids of default-copied registers whose d/enable still reference
     the OLD space (the only legal forward references). *)
  let patch = ref [] in
  Array.iter
    (fun (nd : Netlist.node) ->
      let new_uid =
        match nd.kind with
        | Netlist.Reg _ ->
            let u = emit em ?name:nd.name ~width:nd.width nd.kind in
            patch := u :: !patch;
            u
        | Netlist.Mem_read (m, a) ->
            emit em ?name:nd.name ~width:nd.width
              (Netlist.Mem_read (m, mapped em a))
        | Netlist.Input _ | Netlist.Const _ ->
            emit em ?name:nd.name ~width:nd.width nd.kind
        | _ -> (
            match hook em c nd with
            | Some u ->
                if width_of em u <> nd.width then
                  invalid_arg
                    (Printf.sprintf
                       "Rewrite: hook replaced node %d (width %d) with width \
                        %d"
                       nd.uid nd.width (width_of em u));
                u
            | None ->
                emit em ?name:nd.name ~width:nd.width
                  (map_kind (mapped em) nd.kind))
      in
      em.map.(nd.uid) <- new_uid)
    c.Netlist.nodes;
  let final u = em.map.(u) in
  List.iter
    (fun u ->
      let nd = em.buf.(u) in
      match nd.Netlist.kind with
      | Netlist.Reg { d; enable; init } ->
          em.buf.(u) <-
            {
              nd with
              Netlist.kind =
                Netlist.Reg
                  { d = final d; enable = Option.map final enable; init };
            }
      | _ -> assert false)
    !patch;
  let mems =
    Array.map
      (fun (m : Netlist.mem) ->
        {
          m with
          Netlist.mem_writes =
            List.map
              (fun (w : Netlist.write_port) ->
                {
                  Netlist.w_enable = final w.Netlist.w_enable;
                  w_addr = final w.Netlist.w_addr;
                  w_data = final w.Netlist.w_data;
                })
              m.Netlist.mem_writes;
        })
      c.Netlist.mems
  in
  let result =
    {
      Netlist.circuit_name =
        Option.value name ~default:c.Netlist.circuit_name;
      nodes = Array.sub em.buf 0 em.next;
      mems;
      inputs = List.map (fun (nm, u) -> (nm, final u)) c.Netlist.inputs;
      outputs = List.map (fun (nm, u) -> (nm, final u)) c.Netlist.outputs;
    }
  in
  Netlist.validate result;
  result
