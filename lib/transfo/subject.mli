(** What a transformation script operates on.

    A subject always carries a concrete {!Hw.Netlist.t}; it may
    additionally carry the {e architecture} it was generated from — the
    row/column lane functions and staging discipline of the matrix
    kernel, the eDSL-level view.  Netlist-level transformations (retime,
    strength reduction, narrowing, replication) rewrite the circuit and
    drop the architecture view; staging transformations (fold_rows,
    fold_cols) rewrite the architecture and regenerate the circuit from
    it, which is how an optimized design is re-derived as
    [initial + script] (DESIGN.md §17). *)

type stage =
  | Flat      (** N row + N column units, fully combinational kernel *)
  | Beat_row  (** one row unit applied per arriving beat, N column units *)
  | Row_col   (** one row + one column unit, sequential macro-pipeline *)

type matrix_arch = {
  arch_name : string;  (** circuit name of every regeneration *)
  stage : stage;
  row : Axis.Adapter.lane_fn;
  col : Axis.Adapter.lane_fn;
  arch_mid : int;      (** width of a row-pass result in the transpose store *)
}

type t = {
  circuit : Hw.Netlist.t;
  arch : matrix_arch option;
  latency_added : int;
      (** registers ranks added on the input→output path by delayed
          transformations (retime, outreg) since the original subject *)
  history : string list;  (** applied steps, oldest first *)
}

val stage_name : stage -> string

val build : matrix_arch -> Hw.Netlist.t
(** Regenerate the AXI-Stream circuit of an architecture.  Uses exactly
    the {!Axis.Adapter} wrapper calls of the hand-written design ladder,
    so regenerating an architecture that mirrors a hand-written design
    yields a node-identical netlist (the builder is deterministic). *)

val of_circuit : Hw.Netlist.t -> t
val of_arch : matrix_arch -> t
