(** Netlist reconstruction substrate for the transformation catalogue.

    {!Hw.Builder} cannot re-express an arbitrary finished netlist: a
    register's data input may reference a node declared {e after} it (the
    builder's [connect]-later idiom), so a transformation cannot simply
    replay the node list through a fresh builder.  This module rebuilds a
    circuit node by node in a separate uid space instead: combinational
    operands are already rewritten when their consumer is visited (the
    builder emits nodes in dependency order), while register data/enable
    inputs and memory write ports — the only legal forward references —
    are recorded verbatim and patched to the new uid space once every
    node has been placed.

    A per-node hook may replace any {e combinational} node with a freshly
    emitted expression of the same width; registers, memories, inputs and
    constants are copied structurally.  The result is {!Hw.Netlist.validate}d
    before it is returned, so a hook that emits an ill-formed expansion
    fails here, not in a downstream engine. *)

type emitter

val emit :
  emitter -> ?name:string -> width:int -> Hw.Netlist.kind -> Hw.Netlist.uid
(** Append a fresh node.  The kind's operand uids are in the NEW space
    (use {!mapped} to translate an old operand). *)

val mapped : emitter -> Hw.Netlist.uid -> Hw.Netlist.uid
(** New-space uid standing for an already-rewritten old node.
    @raise Invalid_argument on a forward reference (an old node the
    rewrite has not reached yet — only registers may do that, and they
    are patched by the driver, never through a hook). *)

val width_of : emitter -> Hw.Netlist.uid -> int
(** Width of a NEW-space node, for building coercions. *)

val rewrite :
  ?name:string ->
  (emitter -> Hw.Netlist.t -> Hw.Netlist.node -> Hw.Netlist.uid option) ->
  Hw.Netlist.t ->
  Hw.Netlist.t
(** [rewrite hook c] copies [c] into a fresh uid space, asking [hook] for
    every combinational node (everything except inputs, constants,
    registers and memory reads): [Some u] substitutes the emitted node
    [u] — which must have the old node's width — for it; [None] copies
    the node with operands remapped.  [name] renames the result circuit.
    @raise Invalid_argument if a hook replacement changes a node's width
    @raise Failure if the rebuilt circuit does not validate *)
