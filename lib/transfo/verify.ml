open Hw

type obligation =
  | Cycle_exact
  | Delayed of int
  | Replicated of int
  | Stream_blocks

let obligation_name = function
  | Cycle_exact -> "cycle-exact"
  | Delayed n -> Printf.sprintf "delayed %d" n
  | Replicated n -> Printf.sprintf "replicated x%d" n
  | Stream_blocks -> "stream-blocks"

(* Full-width random draw (the Equiv stimulus idiom): values wider than
   30 bits are composed from 30-bit chunks so high datapath bits are
   exercised too. *)
let rec draw rng w =
  if w <= 30 then Random.State.bits rng land ((1 lsl w) - 1)
  else (draw rng (w - 30) lsl 30) lor Random.State.bits rng

let port_widths (c : Netlist.t) ports =
  List.map (fun (nm, u) -> (nm, (Netlist.node c u).Netlist.width)) ports

let cycle_exact ~cycles ~seed (a : Netlist.t) (b : Netlist.t) =
  match Equiv.check ~cycles ~seed a b with
  | Equiv.Equivalent -> Ok ()
  | Equiv.Mismatch _ as r -> Error (Format.asprintf "%a" Equiv.pp_result r)
  | exception Invalid_argument msg -> Error msg

(* b's outputs must reproduce a's outputs [lat] cycles later, under one
   shared input stream. *)
let delayed ~cycles ~seed ~lat (a : Netlist.t) (b : Netlist.t) =
  let ins = port_widths a a.Netlist.inputs in
  let outs = port_widths a a.Netlist.outputs in
  if port_widths b b.Netlist.inputs <> ins then
    Error "input ports differ between the circuits"
  else if port_widths b b.Netlist.outputs <> outs then
    Error "output ports differ between the circuits"
  else begin
    let sa = Sim.create a and sb = Sim.create b in
    Sim.reset sa;
    Sim.reset sb;
    let rng = Random.State.make [| seed; 0x7A5F |] in
    let total = cycles + lat in
    let hist = Array.make total [] in
    let result = ref (Ok ()) in
    (try
       for t = 0 to total - 1 do
         List.iter
           (fun (nm, w) ->
             let v = draw rng w in
             Sim.set sa nm v;
             Sim.set sb nm v)
           ins;
         hist.(t) <- List.map (fun (nm, _) -> (nm, Sim.get sa nm)) outs;
         if t >= lat then
           List.iter2
             (fun (nm, _) (_, expect) ->
               let got = Sim.get sb nm in
               if got <> expect then begin
                 result :=
                   Error
                     (Printf.sprintf
                        "delayed-by-%d mismatch: output %s at cycle %d: \
                         original %d, transformed %d"
                        lat nm t expect got);
                 raise Exit
               end)
             outs
             hist.(t - lat);
         Sim.step sa;
         Sim.step sb
       done
     with Exit -> ());
    !result
  end

(* b holds [k] copies of a with ports suffixed "_r<j>"; each copy must
   match a fresh run of a under its own stimulus. *)
let replicated ~cycles ~seed ~k (a : Netlist.t) (b : Netlist.t) =
  let ins = port_widths a a.Netlist.inputs in
  let outs = port_widths a a.Netlist.outputs in
  let sa = Sim.create a and sb = Sim.create b in
  Sim.reset sa;
  Sim.reset sb;
  let rng = Random.State.make [| seed; 0x4E9B |] in
  let result = ref (Ok ()) in
  (try
     for t = 0 to cycles - 1 do
       let stim =
         Array.init k (fun _ -> List.map (fun (nm, w) -> (nm, draw rng w)) ins)
       in
       Array.iteri
         (fun j vals ->
           List.iter
             (fun (nm, v) -> Sim.set sb (Printf.sprintf "%s_r%d" nm j) v)
             vals)
         stim;
       Array.iteri
         (fun j vals ->
           (* the original is purely combinational (the transformation's
              precondition), so one instance re-driven per lane suffices *)
           List.iter (fun (nm, v) -> Sim.set sa nm v) vals;
           List.iter
             (fun (nm, _) ->
               let expect = Sim.get sa nm in
               let got = Sim.get sb (Printf.sprintf "%s_r%d" nm j) in
               if got <> expect then begin
                 result :=
                   Error
                     (Printf.sprintf
                        "replicated mismatch: lane %d output %s at cycle %d: \
                         original %d, copy %d"
                        j nm t expect got);
                 raise Exit
               end)
             outs)
         stim;
       Sim.step sb
     done
   with Exit -> ());
  !result

let stream_blocks ~seed ~blocks (a : Netlist.t) (b : Netlist.t) =
  let half = 1 lsl (Axis.Stream.in_width - 1) in
  let st = Axis.Block.Rand.create ~seed () in
  let bs =
    List.init blocks (fun _ ->
        Axis.Block.Rand.block st ~lo:(-half) ~hi:(half - 1))
  in
  match
    ( Axis.Driver.transform_batch a bs,
      Axis.Driver.transform_batch b bs )
  with
  | oa, ob ->
      let rec cmp i = function
        | [], [] -> Ok ()
        | x :: xs, y :: ys ->
            if Axis.Block.equal x y then cmp (i + 1) (xs, ys)
            else
              Error
                (Printf.sprintf
                   "stream mismatch: block %d differs between the %s and %s \
                    architectures"
                   i a.Netlist.circuit_name b.Netlist.circuit_name)
        | _ -> Error "stream mismatch: different block counts"
      in
      cmp 0 (oa, ob)
  | exception Failure msg -> Error ("stream testbench: " ^ msg)

let discharge ?(cycles = 256) ?(seed = 7) ?(blocks = 4) ob ~before ~after =
  let a = before.Subject.circuit and b = after.Subject.circuit in
  match ob with
  | Cycle_exact -> cycle_exact ~cycles ~seed a b
  | Delayed lat -> delayed ~cycles ~seed ~lat a b
  | Replicated k -> replicated ~cycles ~seed ~k a b
  | Stream_blocks -> stream_blocks ~seed ~blocks a b
