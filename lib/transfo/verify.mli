(** Per-step verification obligations (DESIGN.md §17).

    Every transformation declares {e how} its result must relate to its
    input; the {!Engine} discharges that obligation right after the
    step, then additionally runs the three-way
    {!Hw.Equiv.crosscheck} (and the batched
    {!Hw.Equiv.crosscheck_batch}) on the result so the transformed
    circuit is also self-consistent across all simulation engines. *)

type obligation =
  | Cycle_exact
      (** identical ports, identical output stream every cycle
          ({!Hw.Equiv.check}) *)
  | Delayed of int
      (** identical ports; the result's outputs reproduce the input
          circuit's outputs shifted by N cycles (retime, outreg) *)
  | Replicated of int
      (** the result holds N independent port-suffixed copies; every
          lane must match the original under its own stimulus *)
  | Stream_blocks
      (** architectures differ cycle-for-cycle; equality is
          block-for-block through the {!Axis.Driver} stream testbench *)

val obligation_name : obligation -> string

val discharge :
  ?cycles:int ->
  ?seed:int ->
  ?blocks:int ->
  obligation ->
  before:Subject.t ->
  after:Subject.t ->
  (unit, string) result
(** Random-stimulus discharge: [cycles] (default 256) clock cycles of
    full-width random inputs for the cycle-level obligations, [blocks]
    (default 4) random matrices through the stream testbench for
    {!constructor-Stream_blocks}.  The error carries the first
    mismatching port/cycle (or block/element). *)
