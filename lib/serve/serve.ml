(* The evaluation daemon behind [hlsvhc serve] (DESIGN.md §14, §16).

   A long-lived acceptor on a Unix domain socket dispatching onto a
   bounded pool of connection-worker domains: clients connect, send one
   batch of tab-separated request lines terminated by a blank line, and
   get back exactly one response line per request, in request order.
   All [eval] requests of a batch are fanned out together onto the
   [Core.Parallel] domain pool (grouped by kernel and stream length,
   since the measure key includes both), under keep-going semantics: a
   design point that fails mid-request answers with its typed
   [Flow.error] while the rest of the batch completes — an injected
   engine crash takes down one response, never the daemon.

   The hardening model (DESIGN.md §16) in one paragraph: a slow or
   hostile client costs one worker slot for at most the connection
   deadline, never the daemon — reads and writes carry an idle timeout
   ([conn_timeout], SO_RCVTIMEO/SO_SNDTIMEO) plus a total receive
   deadline ([batch_deadline]); a wedged read answers nothing, closes
   the socket and counts [conn_timeouts].  Beyond [max_inflight]
   accepted-but-unfinished connections the daemon answers
   [busy\tretry-after\tMS] immediately instead of queueing unboundedly
   ([shed]).  SIGTERM/SIGINT (or a [shutdown] request) flips the daemon
   into draining: stop accepting, finish every in-flight and queued
   batch, print a final stats line, unlink the socket, return.

   Layered under the pool is the usual cache stack: the in-process memo
   first, then (when attached) the persistent content-addressed store,
   so every client of one daemon — and every future daemon over the same
   store directory — shares one warm result set.

   Wire protocol (one line per request/response, fields tab-separated;
   labels may contain spaces but never tabs):

     eval\tTOOL\tMATRICES\tLABEL[\tKERNEL]
                                   ->  ok\tMETRICS-WIRE
                                   |   err\tDESIGN\tSTAGE\tCLASS\tDETAIL
     ping                          ->  ok\tpong
     stats                         ->  ok\tk=v ...
     shutdown                      ->  ok\tbye     (daemon drains after
                                                    answering the batch)
   A connection accepted over the in-flight limit is answered with the
   single line  busy\tretry-after\tMS  and closed; clients should back
   off at least MS milliseconds.  The optional fifth [eval] field names
   the kernel whose design inventory the tool/label pair is resolved
   against (Core.Kernel); absent means the paper's IDCT, so every
   pre-kernel client speaks the protocol unchanged.  A request the
   server cannot parse (unknown verb, unknown tool, kernel or label,
   bad matrices) answers  bad\tREASON  and poisons nothing. *)

type request =
  | Eval of {
      design : Core.Design.t;
      matrices : int;
      spec : Core.Flow.spec;
    }
  | Ping
  | Stats
  | Shutdown

type config = {
  socket_path : string;
  jobs : int option;          (* Parallel pool size for each batch *)
  store : Store.t option;     (* already attached; here for [stats] *)
  max_conns : int option;     (* drain after N connections (tests/bench) *)
  conn_workers : int;         (* connection-handling domains *)
  conn_timeout : float;       (* idle read/write deadline, seconds *)
  batch_deadline : float;     (* total batch-receive budget, seconds *)
  max_inflight : int;         (* shed accepted connections beyond this *)
  max_batch : int;            (* request lines per batch *)
  retry_after_ms : int;       (* hint on the busy line *)
}

let default_config ~socket_path =
  {
    socket_path;
    jobs = None;
    store = None;
    max_conns = None;
    conn_workers = 4;
    conn_timeout = 30.0;
    batch_deadline = 120.0;
    max_inflight = 16;
    max_batch = 256;
    retry_after_ms = 100;
  }

type counters = {
  conns : int Atomic.t;
  evals : int Atomic.t;
  eval_errors : int Atomic.t;
  memo_hits : int Atomic.t;
  conn_timeouts : int Atomic.t;  (* connections closed on a deadline *)
  shed : int Atomic.t;           (* connections answered busy *)
  drops : int Atomic.t;          (* connections that hung up mid-batch
                                    or mid-response (incl. injected) *)
}

let make_counters () =
  {
    conns = Atomic.make 0;
    evals = Atomic.make 0;
    eval_errors = Atomic.make 0;
    memo_hits = Atomic.make 0;
    conn_timeouts = Atomic.make 0;
    shed = Atomic.make 0;
    drops = Atomic.make 0;
  }

(* ---------------- deadline-aware line IO ---------------- *)

(* Both sides of the protocol read lines off a socket that may stop
   cooperating at any moment.  [Lineio] wraps a fd with a byte buffer
   and gives every read two bounds: the socket's own idle timeout
   (SO_RCVTIMEO — a read that sits idle that long raises EAGAIN) and a
   caller-supplied wall-clock deadline (a client trickling one byte per
   idle period cannot hold a slot forever). *)
module Lineio = struct
  type t = {
    fd : Unix.file_descr;
    buf : Bytes.t;
    mutable pos : int;  (* consumed prefix of [buf.(0..len)] *)
    mutable len : int;  (* valid bytes in [buf] *)
    line : Buffer.t;
    max_line : int;
  }

  let create ?(max_line = 65536) ~idle fd =
    (* idle <= 0 would mean "block forever" to the kernel — clamp to a
       small positive floor instead so a misconfigured daemon still
       times out. *)
    Unix.setsockopt_float fd Unix.SO_RCVTIMEO (Float.max idle 0.01);
    Unix.setsockopt_float fd Unix.SO_SNDTIMEO (Float.max idle 0.01);
    { fd; buf = Bytes.create 4096; pos = 0; len = 0; line = Buffer.create 128;
      max_line }

  (* One line, without its '\n'.  [`Timeout] covers both the idle
     timeout and the deadline; [`Eof] is a peer hangup before the
     newline (partial-line bytes are discarded — half a line is not a
     request). *)
  let read_line t ~deadline =
    Buffer.clear t.line;
    let rec go () =
      if t.pos < t.len then begin
        match Bytes.index_from_opt t.buf t.pos '\n' with
        | Some i when i < t.len ->
            Buffer.add_subbytes t.line t.buf t.pos (i - t.pos);
            t.pos <- i + 1;
            `Line (Buffer.contents t.line)
        | _ ->
            Buffer.add_subbytes t.line t.buf t.pos (t.len - t.pos);
            t.pos <- t.len;
            if Buffer.length t.line > t.max_line then `Oversized else go ()
      end
      else if Unix.gettimeofday () > deadline then `Timeout
      else begin
        match Unix.read t.fd t.buf 0 (Bytes.length t.buf) with
        | 0 -> `Eof
        | n ->
            t.pos <- 0;
            t.len <- n;
            go ()
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
          ->
            `Timeout
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
        | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
            `Eof
      end
    in
    go ()

  (* Write everything or say why not; SO_SNDTIMEO turns a peer that
     stopped reading into [`Timeout] instead of a blocked worker. *)
  let write_all t s =
    let b = Bytes.of_string s in
    let n = Bytes.length b in
    let rec go off =
      if off >= n then `Ok
      else
        match Unix.write t.fd b off (n - off) with
        | w -> go (off + w)
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
          ->
            `Timeout
        | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
            `Closed
    in
    go 0
end

(* ---------------- request parsing ---------------- *)

let label_index kernel tool =
  match Core.Kernel.inventory kernel tool with
  | None -> []
  | Some inv ->
      inv.Core.Kernel.inv_sweep
      @ [ inv.Core.Kernel.inv_initial; inv.Core.Kernel.inv_optimized ]

let find_design ~kernel ~tool ~label =
  List.find_opt (fun (d : Core.Design.t) -> d.Core.Design.label = label)
    (label_index kernel tool)

let parse_eval ~tool ~matrices ~label ~kernel =
  match Core.Kernel.parse_kernel kernel with
  | None -> Error (Core.Kernel.unknown_kernel_msg kernel)
  | Some k -> (
      match Core.Registry.parse_tool tool with
      | None -> Error (Core.Registry.unknown_tool_msg tool)
      | Some t when not (List.mem t (Core.Kernel.tools k)) ->
          Error
            (Printf.sprintf "kernel %s has no %s designs (tools: %s)"
               (Core.Kernel.name k) tool
               (String.concat ", "
                  (List.map Core.Design.tool_name (Core.Kernel.tools k))))
      | Some t -> (
          match int_of_string_opt matrices with
          | Some m when m >= 1 -> (
              match find_design ~kernel:k ~tool:t ~label with
              | Some design ->
                  Ok (Eval { design; matrices = m; spec = Core.Kernel.spec k })
              | None ->
                  Error
                    (Printf.sprintf "unknown %s design label %S" tool label))
          | _ ->
              Error
                (Printf.sprintf "bad matrices count %S (want a positive int)"
                   matrices)))

let parse_request line =
  match String.split_on_char '\t' line with
  | [ "ping" ] -> Ok Ping
  | [ "stats" ] -> Ok Stats
  | [ "shutdown" ] -> Ok Shutdown
  | [ "eval"; tool; matrices; label ] ->
      parse_eval ~tool ~matrices ~label ~kernel:"idct"
  | [ "eval"; tool; matrices; label; kernel ] ->
      parse_eval ~tool ~matrices ~label ~kernel
  | verb :: _ -> Error (Printf.sprintf "unknown request %S" verb)
  | [] -> Error "empty request"

(* Response lines must stay single-line, tab-clean in the detail field. *)
let clean s =
  String.map (function '\t' | '\n' | '\r' -> ' ' | c -> c) s

let err_line (e : Core.Flow.error) =
  Printf.sprintf "err\t%s\t%s\t%s\t%s"
    (clean e.Core.Flow.err_design)
    (clean e.Core.Flow.err_stage)
    (Core.Flow.class_name e.Core.Flow.err_class)
    (clean (Core.Flow.class_detail e.Core.Flow.err_class))

let busy_line ms = Printf.sprintf "busy\tretry-after\t%d" ms

let stats_line cfg c =
  let store_part =
    match cfg.store with
    | None -> "store=none"
    | Some st ->
        let s = Store.stats st in
        Printf.sprintf
          "store=%s store_hits=%d store_misses=%d store_writes=%d \
           store_invalid=%d store_entries=%d"
          (clean (Store.dir st))
          s.Store.st_hits s.Store.st_misses s.Store.st_writes
          s.Store.st_invalid (Store.entry_count st)
  in
  Printf.sprintf
    "ok\tconns=%d evals=%d errors=%d memo_hits=%d timeouts=%d shed=%d \
     drops=%d %s"
    (Atomic.get c.conns) (Atomic.get c.evals) (Atomic.get c.eval_errors)
    (Atomic.get c.memo_hits)
    (Atomic.get c.conn_timeouts)
    (Atomic.get c.shed) (Atomic.get c.drops) store_part

(* One connection = one batch.  Evals are grouped by (kernel, matrices)
   — the pool API takes one spec and stream length per batch, and both
   are part of the measure key — and each group fans out on the domain
   pool; responses reassemble in request order. *)
let handle_batch cfg counters lines =
  let parsed = List.map parse_request lines in
  (* indexed evals, grouped by (kernel, matrices) *)
  let indexed =
    List.mapi (fun i r -> (i, r)) parsed
    |> List.filter_map (fun (i, r) ->
           match r with
           | Ok (Eval { design; matrices; spec }) ->
               Some (i, design, matrices, spec)
           | _ -> None)
  in
  let groups =
    List.fold_left
      (fun acc (i, design, matrices, spec) ->
        let key = (spec.Core.Flow.spec_name, matrices) in
        match List.assoc_opt key acc with
        | Some (sp, prev) ->
            (key, (sp, (i, design) :: prev)) :: List.remove_assoc key acc
        | None -> (key, (spec, [ (i, design) ])) :: acc)
      [] indexed
  in
  let outcomes = Hashtbl.create 16 in
  List.iter
    (fun ((_, matrices), (spec, rev_items)) ->
      let items = List.rev rev_items in
      let designs = List.map snd items in
      List.iter
        (fun d ->
          Atomic.incr counters.evals;
          if Core.Evaluate.is_cached ~matrices ~spec d then
            Atomic.incr counters.memo_hits)
        designs;
      let results =
        Core.Evaluate.measure_all_result ?jobs:cfg.jobs ~matrices ~spec designs
      in
      List.iter2
        (fun (i, _) r ->
          (match r with
          | Error _ -> Atomic.incr counters.eval_errors
          | Ok _ -> ());
          Hashtbl.replace outcomes i r)
        items results)
    groups;
  let shutdown = ref false in
  let responses =
    List.mapi
      (fun i r ->
        match r with
        | Error reason -> "bad\t" ^ clean reason
        | Ok Ping -> "ok\tpong"
        | Ok Stats -> stats_line cfg counters
        | Ok Shutdown ->
            shutdown := true;
            "ok\tbye"
        | Ok (Eval _) -> (
            match Hashtbl.find outcomes i with
            | Ok m -> "ok\t" ^ Core.Metrics.to_wire m
            | Error e -> err_line e))
      parsed
  in
  (responses, !shutdown)

(* ---------------- per-connection handling ---------------- *)

(* Receive one batch: lines until the blank terminator, under the idle
   timeout and the total deadline.  A [Slow_client] fault turns the
   read into discard-until-deadline — the deterministic stand-in for a
   client that connects and never finishes its batch. *)
let recv_batch cfg io ~discard =
  let deadline = Unix.gettimeofday () +. cfg.batch_deadline in
  let rec go acc n =
    match Lineio.read_line io ~deadline with
    | `Line _ when discard -> go acc n
    | `Line "" -> `Batch (List.rev acc)
    | `Line l ->
        if n + 1 > cfg.max_batch then `Oversized
        else go (l :: acc) (n + 1)
    | `Timeout -> `Timeout
    | `Eof -> if discard then `Timeout else `Hangup
    | `Oversized -> `Oversized
  in
  go [] 0

(* Handle one accepted connection end to end.  Returns [true] when the
   batch contained a [shutdown] request.  Every outcome that is not a
   full answered batch closes the socket and lands in exactly one
   counter; nothing here can take down the caller. *)
let handle_conn cfg counters fd =
  let io = Lineio.create ~idle:cfg.conn_timeout fd in
  let finish outcome =
    (match outcome with
    | `Timeout -> Atomic.incr counters.conn_timeouts
    | `Drop -> Atomic.incr counters.drops
    | `Served -> ());
    false
  in
  let discard = Core.Faultinject.slow_client_conn () in
  match recv_batch cfg io ~discard with
  | `Timeout -> finish `Timeout
  | `Hangup -> finish `Drop
  | `Oversized ->
      let reply =
        Printf.sprintf
          "bad\tbatch too large (max %d requests of at most %d bytes each)\n"
          cfg.max_batch 65536
      in
      ignore (Lineio.write_all io reply);
      finish `Served
  | `Batch [] -> finish `Served
  | `Batch lines -> (
      let responses, shutdown = handle_batch cfg counters lines in
      (* An armed [Conn_drop] fault truncates the response stream after
         [seed] lines and hangs up — the server-side double of a client
         that disconnects mid-response. *)
      let responses, injected_drop =
        match Core.Faultinject.conn_drop_limit () with
        | Some k when k < List.length responses ->
            (List.filteri (fun i _ -> i < k) responses, true)
        | _ -> (responses, false)
      in
      let out = Buffer.create 256 in
      List.iter
        (fun r ->
          Buffer.add_string out r;
          Buffer.add_char out '\n')
        responses;
      match Lineio.write_all io (Buffer.contents out) with
      | `Ok ->
          if injected_drop then ignore (finish `Drop) else ignore (finish `Served);
          shutdown
      | `Timeout ->
          ignore (finish `Timeout);
          shutdown
      | `Closed ->
          ignore (finish `Drop);
          shutdown)

(* ---------------- acceptor + worker pool ---------------- *)

type pool = {
  queue : Unix.file_descr Queue.t;
  lock : Mutex.t;
  nonempty : Condition.t;
  mutable closed : bool;      (* draining: no more enqueues *)
  inflight : int Atomic.t;    (* queued + currently handled *)
}

let pool_push p fd =
  Mutex.protect p.lock (fun () ->
      Queue.push fd p.queue;
      Condition.signal p.nonempty)

(* Blocks until a connection is available or the pool is closed and
   drained; [None] tells the worker to exit. *)
let pool_pop p =
  Mutex.protect p.lock (fun () ->
      let rec wait () =
        if not (Queue.is_empty p.queue) then Some (Queue.pop p.queue)
        else if p.closed then None
        else begin
          Condition.wait p.nonempty p.lock;
          wait ()
        end
      in
      wait ())

let pool_close p =
  Mutex.protect p.lock (fun () ->
      p.closed <- true;
      Condition.broadcast p.nonempty)

let run cfg =
  (* A client that hangs up mid-response must cost one EPIPE-aborted
     connection, not the daemon. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let counters = make_counters () in
  let draining = Atomic.make false in
  (* SIGTERM/SIGINT flip the drain flag; the acceptor polls it.  The
     previous dispositions are restored on exit so an in-process daemon
     (tests) does not permanently steal the signals. *)
  let install signum =
    try
      let old =
        Sys.signal signum
          (Sys.Signal_handle (fun _ -> Atomic.set draining true))
      in
      Some (signum, old)
    with Invalid_argument _ | Sys_error _ -> None
  in
  let saved = List.filter_map install [ Sys.sigterm; Sys.sigint ] in
  let restore () =
    List.iter
      (fun (signum, old) ->
        try Sys.set_signal signum old with Invalid_argument _ | Sys_error _ -> ())
      saved
  in
  (try Unix.unlink cfg.socket_path with Unix.Unix_error _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let traced = Core.Trace.enabled () in
  Fun.protect
    ~finally:(fun () ->
      restore ();
      (try Unix.close sock with Unix.Unix_error _ -> ());
      try Unix.unlink cfg.socket_path with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.bind sock (Unix.ADDR_UNIX cfg.socket_path);
      Unix.listen sock 64;
      Unix.set_nonblock sock;
      let pool =
        {
          queue = Queue.create ();
          lock = Mutex.create ();
          nonempty = Condition.create ();
          closed = false;
          inflight = Atomic.make 0;
        }
      in
      let worker wid () =
        let serve_one fd =
          Fun.protect
            ~finally:(fun () ->
              (try Unix.close fd with Unix.Unix_error _ -> ());
              Atomic.decr pool.inflight)
            (fun () ->
              match
                if traced then
                  Core.Trace.with_span
                    ~design:(Printf.sprintf "serve/worker%d" wid)
                    ~stage:"conn"
                    (fun () -> handle_conn cfg counters fd)
                else handle_conn cfg counters fd
              with
              | shutdown -> if shutdown then Atomic.set draining true
              | exception e ->
                  (* a wedged or malicious client aborts its own
                     connection, never the worker *)
                  Atomic.incr counters.drops;
                  Printf.eprintf "hlsvhc serve: connection failed: %s\n%!"
                    (Printexc.to_string e))
        in
        let rec loop () =
          match pool_pop pool with
          | Some fd ->
              serve_one fd;
              loop ()
          | None -> ()
        in
        loop ();
        if traced then Core.Trace.flush_domain ()
      in
      let workers =
        List.init (max 1 cfg.conn_workers) (fun wid ->
            Domain.spawn (worker wid))
      in
      (* Shed from the acceptor: answer busy and close without touching
         the worker queue, so a storm costs one short write per
         connection.  The socket was just accepted — its send buffer is
         empty — so the write cannot block. *)
      let shed fd =
        Atomic.incr counters.shed;
        let io = Lineio.create ~idle:1.0 fd in
        ignore (Lineio.write_all io (busy_line cfg.retry_after_ms ^ "\n"));
        try Unix.close fd with Unix.Unix_error _ -> ()
      in
      let accepted_all = ref false in
      while (not (Atomic.get draining)) && not !accepted_all do
        (* the select is exactly what SIGTERM interrupts: EINTR here is
           the drain signal arriving, not an error — fall through and
           let the loop condition observe the flag *)
        match
          try Unix.select [ sock ] [] [] 0.05
          with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
        with
        | [], _, _ -> ()
        | _ -> (
            match Unix.accept ~cloexec:true sock with
            | fd, _ ->
                (* accept(2) on Linux hands nonblocking down from the
                   listener on some paths; connection fds must block
                   (their timeouts come from SO_RCVTIMEO). *)
                (try Unix.clear_nonblock fd with Unix.Unix_error _ -> ());
                Atomic.incr counters.conns;
                if
                  Core.Faultinject.shed_conn ()
                  || Atomic.get pool.inflight >= cfg.max_inflight
                then shed fd
                else begin
                  Atomic.incr pool.inflight;
                  pool_push pool fd
                end;
                (match cfg.max_conns with
                | Some n when Atomic.get counters.conns >= n ->
                    accepted_all := true
                | _ -> ())
            | exception
                Unix.Unix_error
                  ( ( Unix.EINTR | Unix.ECONNABORTED | Unix.EAGAIN
                    | Unix.EWOULDBLOCK ),
                    _,
                    _ ) ->
                (* transient: a signal, or the peer gave up between
                   select and accept *)
                ()
            | exception Unix.Unix_error ((Unix.EMFILE | Unix.ENFILE), _, _)
              ->
                (* out of descriptors: shedding load by pausing the
                   accept loop beats dying; in-flight connections keep
                   draining descriptors *)
                Printf.eprintf
                  "hlsvhc serve: out of file descriptors; pausing accepts\n%!";
                Unix.sleepf 0.05)
      done;
      (* Drain: stop accepting (close + unlink first, so stragglers get
         a fast connection-refused instead of a dead queue slot), finish
         every queued and in-flight batch, then go home.  Store writes
         are synchronous inside the workers, so joining them is the
         flush. *)
      (try Unix.close sock with Unix.Unix_error _ -> ());
      (try Unix.unlink cfg.socket_path with Unix.Unix_error _ -> ());
      pool_close pool;
      List.iter Domain.join workers;
      if traced then
        Core.Trace.with_span ~design:"serve" ~stage:"drain" (fun () ->
            Core.Trace.add_counter "conns" (Atomic.get counters.conns);
            Core.Trace.add_counter "conn_timeouts"
              (Atomic.get counters.conn_timeouts);
            Core.Trace.add_counter "shed" (Atomic.get counters.shed);
            Core.Trace.add_counter "drops" (Atomic.get counters.drops));
      Printf.eprintf
        "hlsvhc serve: drained — conns=%d evals=%d errors=%d memo_hits=%d \
         timeouts=%d shed=%d drops=%d\n\
         %!"
        (Atomic.get counters.conns)
        (Atomic.get counters.evals)
        (Atomic.get counters.eval_errors)
        (Atomic.get counters.memo_hits)
        (Atomic.get counters.conn_timeouts)
        (Atomic.get counters.shed) (Atomic.get counters.drops));
  counters

(* ---------------- client side ---------------- *)

module Client = struct
  type error =
    | Connect_refused of string
    | Timed_out
    | Busy of int
    | Closed_mid_response of string list

  let error_to_string = function
    | Connect_refused m -> "cannot connect: " ^ m
    | Timed_out -> "request timed out"
    | Busy ms -> Printf.sprintf "daemon busy (retry after %d ms)" ms
    | Closed_mid_response rs ->
        Printf.sprintf "connection closed mid-response (%d responses received)"
          (List.length rs)

  let eval_line ?kernel ~tool ~label ~matrices () =
    match kernel with
    | None -> Printf.sprintf "eval\t%s\t%d\t%s" tool matrices label
    | Some k -> Printf.sprintf "eval\t%s\t%d\t%s\t%s" tool matrices label k

  (* "Socket absent" (no daemon ever bound, or it already unlinked on
     drain) and "refused" (a dead daemon's stale socket file) are
     different operator problems; say which. *)
  let connect socket_path =
    let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect sock (Unix.ADDR_UNIX socket_path) with
    | () -> Ok sock
    | exception Unix.Unix_error (e, _, _) ->
        (try Unix.close sock with Unix.Unix_error _ -> ());
        Error
          (Connect_refused
             (match e with
             | Unix.ENOENT ->
                 Printf.sprintf "socket %s absent (daemon not running?)"
                   socket_path
             | Unix.ECONNREFUSED ->
                 Printf.sprintf
                   "connection refused on %s (stale socket? daemon draining?)"
                   socket_path
             | e -> Printf.sprintf "%s: %s" socket_path (Unix.error_message e)))

  let parse_busy line =
    match String.split_on_char '\t' line with
    | [ "busy"; "retry-after"; ms ] ->
        Some (Option.value (int_of_string_opt ms) ~default:100)
    | "busy" :: _ -> Some 100
    | _ -> None

  (* One batch round-trip with every failure typed.  [timeout_s] bounds
     the whole exchange (connect is local and immediate on a Unix
     socket; the clock starts at the first read). *)
  let request_result ?(timeout_s = 60.0) ~socket lines =
    match connect socket with
    | Error _ as e -> e
    | Ok fd ->
        Fun.protect
          ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
          (fun () ->
            let io = Lineio.create ~idle:timeout_s ~max_line:(1 lsl 20) fd in
            let out = Buffer.create 256 in
            List.iter
              (fun l ->
                Buffer.add_string out l;
                Buffer.add_char out '\n')
              lines;
            Buffer.add_char out '\n';
            match Lineio.write_all io (Buffer.contents out) with
            | `Timeout -> Error Timed_out
            | `Ok | `Closed ->
                (* [`Closed]: the daemon hung up before reading the whole
                   batch — a shed [busy] line (written before it closed)
                   or partial responses may already sit in our receive
                   buffer, and on a Unix socket they stay readable after
                   the peer's close.  Read what it said; a daemon that
                   answered nothing becomes [Closed_mid_response []]. *)
                let deadline = Unix.gettimeofday () +. timeout_s in
                let rec read acc = function
                  | 0 -> Ok (List.rev acc)
                  | n -> (
                      match Lineio.read_line io ~deadline with
                      | `Line l when acc = [] && parse_busy l <> None ->
                          Error (Busy (Option.get (parse_busy l)))
                      | `Line l -> read (l :: acc) (n - 1)
                      | `Timeout -> Error Timed_out
                      | `Eof | `Oversized ->
                          Error (Closed_mid_response (List.rev acc)))
                in
                read [] (List.length lines))

  (* The legacy raising client (tests, bench one-liners). *)
  let request ~socket lines =
    match request_result ~socket lines with
    | Ok rs -> rs
    | Error e -> failwith ("serve client: " ^ error_to_string e)

  (* Deterministic backoff: the delay before retry [attempt] (0-based)
     is [base * 2^attempt] — raised to a busy hint when the daemon sent
     one — plus a jitter drawn from the caller's seeded splitmix64
     stream.  No wall clock and no global RNG feed the schedule, so two
     clients with the same seed back off identically. *)
  let backoff_ms ~rng ~attempt ~base_ms ~busy_hint =
    let base = base_ms * (1 lsl min attempt 10) in
    let floor_ms =
      match busy_hint with Some ms -> max ms base | None -> base
    in
    floor_ms + Dse.Rng.int rng (base + 1)

  let retry_delays ~seed ~attempts ~base_ms =
    let rng = Dse.Rng.create ~seed in
    List.init attempts (fun attempt ->
        backoff_ms ~rng ~attempt ~base_ms ~busy_hint:None)

  (* Retry every typed failure — refused (daemon restarting), busy
     (shed; honors the retry-after hint), timeout, mid-response hangup —
     with exponential backoff + seeded jitter, [attempts] tries total. *)
  let request_retry ?(attempts = 5) ?(base_ms = 25) ?timeout_s ~seed ~socket
      lines =
    let rng = Dse.Rng.create ~seed in
    let rec go attempt =
      match request_result ?timeout_s ~socket lines with
      | Ok _ as ok -> ok
      | Error e when attempt + 1 < attempts ->
          let busy_hint = match e with Busy ms -> Some ms | _ -> None in
          let delay = backoff_ms ~rng ~attempt ~base_ms ~busy_hint in
          Unix.sleepf (float_of_int delay /. 1000.0);
          go (attempt + 1)
      | Error _ as e -> e
    in
    go 0

  (* Poll until the daemon answers a ping — the test/bench handshake
     after spawning the server domain.  Distinguishes the no-daemon
     failures (socket absent, refused — kept polling, reported on
     timeout) from a daemon answering garbage (failed immediately). *)
  let wait_ready ?(timeout_s = 30.0) ~socket () =
    let deadline = Unix.gettimeofday () +. timeout_s in
    let rec go last =
      match request_result ~timeout_s:1.0 ~socket [ "ping" ] with
      | Ok [ "ok\tpong" ] -> ()
      | Ok other ->
          failwith
            (Printf.sprintf "serve client: daemon answering garbage: %s"
               (String.concat "; " other))
      | Error e ->
          if Unix.gettimeofday () < deadline then begin
            Unix.sleepf 0.05;
            go (Some e)
          end
          else
            failwith
              (Printf.sprintf "serve client: daemon not ready after %.0fs (%s)"
                 timeout_s
                 (error_to_string (Option.value last ~default:e)))
    in
    go None

  let parse_metrics line =
    match String.index_opt line '\t' with
    | Some i when String.sub line 0 i = "ok" ->
        Core.Metrics.of_wire
          (String.sub line (i + 1) (String.length line - i - 1))
    | _ -> Error (Printf.sprintf "not an ok response: %S" line)
end
