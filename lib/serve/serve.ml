(* The evaluation daemon behind [hlsvhc serve] (DESIGN.md §14).

   A long-lived loop on a Unix domain socket: clients connect, send one
   batch of tab-separated request lines terminated by a blank line, and
   get back exactly one response line per request, in request order.
   All [eval] requests of a batch are fanned out together onto the
   [Core.Parallel] domain pool (grouped by stream length, since the
   measure key includes it), under keep-going semantics: a design point
   that fails mid-request answers with its typed [Flow.error] while the
   rest of the batch completes — an injected engine crash takes down one
   response, never the daemon.

   Layered under the pool is the usual cache stack: the in-process memo
   first, then (when attached) the persistent content-addressed store,
   so every client of one daemon — and every future daemon over the same
   store directory — shares one warm result set.

   Wire protocol (one line per request/response, fields tab-separated;
   labels may contain spaces but never tabs):

     eval\tTOOL\tMATRICES\tLABEL[\tKERNEL]
                                   ->  ok\tMETRICS-WIRE
                                   |   err\tDESIGN\tSTAGE\tCLASS\tDETAIL
     ping                          ->  ok\tpong
     stats                         ->  ok\tk=v ...
     shutdown                      ->  ok\tbye     (daemon exits after
                                                    answering the batch)
   The optional fifth [eval] field names the kernel whose design
   inventory the tool/label pair is resolved against (Core.Kernel);
   absent means the paper's IDCT, so every pre-kernel client speaks the
   protocol unchanged.  A request the server cannot parse (unknown verb,
   unknown tool, kernel or label, bad matrices) answers  bad\tREASON
   and poisons nothing. *)

type request =
  | Eval of {
      design : Core.Design.t;
      matrices : int;
      spec : Core.Flow.spec;
    }
  | Ping
  | Stats
  | Shutdown

type config = {
  socket_path : string;
  jobs : int option;          (* Parallel pool size for each batch *)
  store : Store.t option;     (* already attached; here for [stats] *)
  max_conns : int option;     (* stop after N connections (tests/bench) *)
}

type counters = {
  conns : int Atomic.t;
  evals : int Atomic.t;
  eval_errors : int Atomic.t;
  memo_hits : int Atomic.t;
}

let label_index kernel tool =
  match Core.Kernel.inventory kernel tool with
  | None -> []
  | Some inv ->
      inv.Core.Kernel.inv_sweep
      @ [ inv.Core.Kernel.inv_initial; inv.Core.Kernel.inv_optimized ]

let find_design ~kernel ~tool ~label =
  List.find_opt (fun (d : Core.Design.t) -> d.Core.Design.label = label)
    (label_index kernel tool)

let parse_eval ~tool ~matrices ~label ~kernel =
  match Core.Kernel.parse_kernel kernel with
  | None -> Error (Core.Kernel.unknown_kernel_msg kernel)
  | Some k -> (
      match Core.Registry.parse_tool tool with
      | None -> Error (Core.Registry.unknown_tool_msg tool)
      | Some t when not (List.mem t (Core.Kernel.tools k)) ->
          Error
            (Printf.sprintf "kernel %s has no %s designs (tools: %s)"
               (Core.Kernel.name k) tool
               (String.concat ", "
                  (List.map Core.Design.tool_name (Core.Kernel.tools k))))
      | Some t -> (
          match int_of_string_opt matrices with
          | Some m when m >= 1 -> (
              match find_design ~kernel:k ~tool:t ~label with
              | Some design ->
                  Ok (Eval { design; matrices = m; spec = Core.Kernel.spec k })
              | None ->
                  Error
                    (Printf.sprintf "unknown %s design label %S" tool label))
          | _ ->
              Error
                (Printf.sprintf "bad matrices count %S (want a positive int)"
                   matrices)))

let parse_request line =
  match String.split_on_char '\t' line with
  | [ "ping" ] -> Ok Ping
  | [ "stats" ] -> Ok Stats
  | [ "shutdown" ] -> Ok Shutdown
  | [ "eval"; tool; matrices; label ] ->
      parse_eval ~tool ~matrices ~label ~kernel:"idct"
  | [ "eval"; tool; matrices; label; kernel ] ->
      parse_eval ~tool ~matrices ~label ~kernel
  | verb :: _ -> Error (Printf.sprintf "unknown request %S" verb)
  | [] -> Error "empty request"

(* Response lines must stay single-line, tab-clean in the detail field. *)
let clean s =
  String.map (function '\t' | '\n' | '\r' -> ' ' | c -> c) s

let err_line (e : Core.Flow.error) =
  Printf.sprintf "err\t%s\t%s\t%s\t%s"
    (clean e.Core.Flow.err_design)
    (clean e.Core.Flow.err_stage)
    (Core.Flow.class_name e.Core.Flow.err_class)
    (clean (Core.Flow.class_detail e.Core.Flow.err_class))

let stats_line cfg c =
  let store_part =
    match cfg.store with
    | None -> "store=none"
    | Some st ->
        let s = Store.stats st in
        Printf.sprintf
          "store=%s store_hits=%d store_misses=%d store_writes=%d \
           store_invalid=%d"
          (clean (Store.dir st))
          s.Store.st_hits s.Store.st_misses s.Store.st_writes
          s.Store.st_invalid
  in
  Printf.sprintf "ok\tconns=%d evals=%d errors=%d memo_hits=%d %s"
    (Atomic.get c.conns) (Atomic.get c.evals) (Atomic.get c.eval_errors)
    (Atomic.get c.memo_hits) store_part

(* One connection = one batch.  Evals are grouped by (kernel, matrices)
   — the pool API takes one spec and stream length per batch, and both
   are part of the measure key — and each group fans out on the domain
   pool; responses reassemble in request order. *)
let handle_batch cfg counters lines =
  let parsed = List.map parse_request lines in
  (* indexed evals, grouped by (kernel, matrices) *)
  let indexed =
    List.mapi (fun i r -> (i, r)) parsed
    |> List.filter_map (fun (i, r) ->
           match r with
           | Ok (Eval { design; matrices; spec }) ->
               Some (i, design, matrices, spec)
           | _ -> None)
  in
  let groups =
    List.fold_left
      (fun acc (i, design, matrices, spec) ->
        let key = (spec.Core.Flow.spec_name, matrices) in
        match List.assoc_opt key acc with
        | Some (sp, prev) ->
            (key, (sp, (i, design) :: prev)) :: List.remove_assoc key acc
        | None -> (key, (spec, [ (i, design) ])) :: acc)
      [] indexed
  in
  let outcomes = Hashtbl.create 16 in
  List.iter
    (fun ((_, matrices), (spec, rev_items)) ->
      let items = List.rev rev_items in
      let designs = List.map snd items in
      List.iter
        (fun d ->
          Atomic.incr counters.evals;
          if Core.Evaluate.is_cached ~matrices ~spec d then
            Atomic.incr counters.memo_hits)
        designs;
      let results =
        Core.Evaluate.measure_all_result ?jobs:cfg.jobs ~matrices ~spec designs
      in
      List.iter2
        (fun (i, _) r ->
          (match r with
          | Error _ -> Atomic.incr counters.eval_errors
          | Ok _ -> ());
          Hashtbl.replace outcomes i r)
        items results)
    groups;
  let shutdown = ref false in
  let responses =
    List.mapi
      (fun i r ->
        match r with
        | Error reason -> "bad\t" ^ clean reason
        | Ok Ping -> "ok\tpong"
        | Ok Stats -> stats_line cfg counters
        | Ok Shutdown ->
            shutdown := true;
            "ok\tbye"
        | Ok (Eval _) -> (
            match Hashtbl.find outcomes i with
            | Ok m -> "ok\t" ^ Core.Metrics.to_wire m
            | Error e -> err_line e))
      parsed
  in
  (responses, !shutdown)

let read_batch ic =
  let rec go acc =
    match input_line ic with
    | "" -> List.rev acc
    | line -> go (line :: acc)
    | exception End_of_file -> List.rev acc
  in
  go []

let handle_conn cfg counters fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr (Unix.dup fd) in
  Fun.protect
    ~finally:(fun () ->
      close_out_noerr oc;
      close_in_noerr ic)
    (fun () ->
      match read_batch ic with
      | [] -> false
      | lines ->
          let responses, shutdown = handle_batch cfg counters lines in
          List.iter
            (fun r ->
              output_string oc r;
              output_char oc '\n')
            responses;
          flush oc;
          shutdown)

let run cfg =
  (* A client that hangs up mid-response must cost one EPIPE-aborted
     connection, not the daemon. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let counters =
    {
      conns = Atomic.make 0;
      evals = Atomic.make 0;
      eval_errors = Atomic.make 0;
      memo_hits = Atomic.make 0;
    }
  in
  (try Unix.unlink cfg.socket_path with Unix.Unix_error _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      try Unix.unlink cfg.socket_path with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.bind sock (Unix.ADDR_UNIX cfg.socket_path);
      Unix.listen sock 64;
      let stop = ref false in
      while not !stop do
        let fd, _ = Unix.accept sock in
        Atomic.incr counters.conns;
        (match handle_conn cfg counters fd with
        | shutdown -> if shutdown then stop := true
        | exception e ->
            (* a wedged or malicious client aborts its own connection *)
            Printf.eprintf "hlsvhc serve: connection failed: %s\n%!"
              (Printexc.to_string e));
        match cfg.max_conns with
        | Some n when Atomic.get counters.conns >= n -> stop := true
        | _ -> ()
      done);
  counters

(* ---------------- client side ---------------- *)

module Client = struct
  let eval_line ?kernel ~tool ~label ~matrices () =
    match kernel with
    | None -> Printf.sprintf "eval\t%s\t%d\t%s" tool matrices label
    | Some k -> Printf.sprintf "eval\t%s\t%d\t%s\t%s" tool matrices label k

  let connect socket_path =
    let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    try
      Unix.connect sock (Unix.ADDR_UNIX socket_path);
      sock
    with e ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      raise e

  let request ~socket lines =
    let fd = connect socket in
    let ic = Unix.in_channel_of_descr fd in
    let oc = Unix.out_channel_of_descr (Unix.dup fd) in
    Fun.protect
      ~finally:(fun () ->
        close_out_noerr oc;
        close_in_noerr ic)
      (fun () ->
        List.iter
          (fun l ->
            output_string oc l;
            output_char oc '\n')
          lines;
        output_char oc '\n';
        flush oc;
        List.map
          (fun _ ->
            try input_line ic
            with End_of_file ->
              failwith "serve client: connection closed mid-response")
          lines)

  (* Poll until the daemon answers a ping — the test/bench handshake
     after spawning the server domain. *)
  let wait_ready ?(timeout_s = 30.0) ~socket () =
    let deadline = Unix.gettimeofday () +. timeout_s in
    let rec go () =
      match request ~socket [ "ping" ] with
      | [ "ok\tpong" ] -> ()
      | other ->
          failwith
            (Printf.sprintf "serve client: unexpected ping reply %s"
               (String.concat "; " other))
      | exception _ when Unix.gettimeofday () < deadline ->
          Unix.sleepf 0.05;
          go ()
    in
    go ()

  let parse_metrics line =
    match String.index_opt line '\t' with
    | Some i when String.sub line 0 i = "ok" ->
        Core.Metrics.of_wire
          (String.sub line (i + 1) (String.length line - i - 1))
    | _ -> Error (Printf.sprintf "not an ok response: %S" line)
end
