(** The [hlsvhc serve] evaluation daemon (DESIGN.md §14; hardening
    model §16).

    An acceptor loop on a Unix domain socket dispatching connections
    onto a bounded pool of worker domains: one connection carries one
    batch of tab-separated request lines (terminated by a blank line)
    and receives exactly one response line per request, in order.  Every
    [eval] of a batch fans out together onto the {!Core.Parallel} domain
    pool under keep-going semantics — a failing design point answers with
    its typed {!Core.Flow.error} while the rest of the batch completes —
    and reads through the memo cache plus, when attached, the persistent
    content-addressed {!Store}.

    Hostile traffic is contained: reads and writes carry an idle
    deadline ([conn_timeout]) plus a total receive budget
    ([batch_deadline]) — a wedged client costs one worker slot for at
    most that long, answers nothing, and is counted in [conn_timeouts];
    connections accepted beyond [max_inflight] are answered
    [busy\tretry-after\tMS] and closed ([shed]); SIGTERM/SIGINT (or a
    [shutdown] request) drain the daemon — stop accepting, finish every
    in-flight batch, print a final stats line, unlink the socket.

    Protocol:
    {v
    eval\tTOOL\tMATRICES\tLABEL[\tKERNEL]
                                 ->  ok\tMETRICS-WIRE
                                 |   err\tDESIGN\tSTAGE\tCLASS\tDETAIL
    ping                         ->  ok\tpong
    stats                        ->  ok\tk=v ...
    shutdown                     ->  ok\tbye   (daemon drains)
    busy\tretry-after\tMS  answers (and closes) a shed connection.
    bad\tREASON  answers any request the server cannot parse.
    v}
    The optional [KERNEL] field selects the {!Core.Kernel} whose design
    inventory resolves the tool/label pair; absent means the paper's
    IDCT, so pre-kernel clients speak the protocol unchanged. *)

type request =
  | Eval of {
      design : Core.Design.t;
      matrices : int;
      spec : Core.Flow.spec;  (** the kernel the design is measured against *)
    }
  | Ping
  | Stats
  | Shutdown

type config = {
  socket_path : string;
  jobs : int option;       (** pool size per batch (default: as {!Core.Parallel}) *)
  store : Store.t option;  (** attached store, reported by [stats] *)
  max_conns : int option;  (** drain after N connections (tests/bench) *)
  conn_workers : int;      (** connection-handling domains (default 4) *)
  conn_timeout : float;    (** idle read/write deadline, seconds (default 30) *)
  batch_deadline : float;  (** total batch-receive budget, seconds (default 120) *)
  max_inflight : int;      (** shed accepted connections beyond this (default 16) *)
  max_batch : int;         (** request lines per batch (default 256) *)
  retry_after_ms : int;    (** backoff hint on the [busy] line (default 100) *)
}

val default_config : socket_path:string -> config
(** The production defaults above with no store, no connection cap and
    the {!Core.Parallel} default job count — override fields as
    needed. *)

type counters = {
  conns : int Atomic.t;
  evals : int Atomic.t;
  eval_errors : int Atomic.t;
  memo_hits : int Atomic.t;
  conn_timeouts : int Atomic.t;
      (** connections closed on the idle/receive deadline *)
  shed : int Atomic.t;  (** connections answered [busy] and closed *)
  drops : int Atomic.t;
      (** connections that hung up mid-batch or mid-response *)
}

val parse_request : string -> (request, string) result
(** One wire line to a typed request; [Error] is the [bad] diagnostic. *)

val run : config -> counters
(** Bind, listen and serve until a [shutdown] request, SIGTERM/SIGINT,
    or [max_conns] connections — then drain: finish every queued and
    in-flight batch, print a final stats line on stderr, unlink the
    socket, and return the final counters.  Signal dispositions are
    restored on exit. *)

(** Blocking one-shot client (tests, bench, scripting) with typed
    failures and a seeded-deterministic retry policy. *)
module Client : sig
  type error =
    | Connect_refused of string
        (** could not connect; the message distinguishes a missing
            socket file from a stale/refusing one *)
    | Timed_out  (** the daemon stopped answering within the timeout *)
    | Busy of int
        (** the daemon shed the connection; retry after the given
            milliseconds *)
    | Closed_mid_response of string list
        (** the connection closed before every response arrived; carries
            the responses received so far, in order *)

  val error_to_string : error -> string

  val eval_line :
    ?kernel:string -> tool:string -> label:string -> matrices:int -> unit ->
    string
  (** Format an [eval] request line; [kernel] adds the optional fifth
      field (omitted: the daemon assumes IDCT). *)

  val request_result :
    ?timeout_s:float -> socket:string -> string list ->
    (string list, error) result
  (** Connect, send the lines plus the blank-line terminator, read one
      response line per request, close.  [timeout_s] (default 60)
      bounds the waits on the exchange. *)

  val request : socket:string -> string list -> string list
  (** {!request_result} for happy paths.
      @raise Failure with the typed error rendered, on any failure *)

  val retry_delays : seed:int -> attempts:int -> base_ms:int -> int list
  (** The backoff schedule {!request_retry} would use with no busy
      hints: delay [i] is [base_ms * 2^i] plus a jitter drawn from a
      splitmix64 stream seeded with [seed] — fully determined by the
      arguments (exposed for tests). *)

  val request_retry :
    ?attempts:int -> ?base_ms:int -> ?timeout_s:float ->
    seed:int -> socket:string -> string list ->
    (string list, error) result
  (** {!request_result} with retries: every typed failure (refused,
      busy, timeout, mid-response hangup) is retried up to [attempts]
      times (default 5) under exponential backoff with seeded jitter
      (base [base_ms], default 25); a [Busy] retry-after hint raises
      that attempt's floor.  The schedule depends only on [seed] and the
      error sequence — no wall clock, no global RNG. *)

  val wait_ready : ?timeout_s:float -> socket:string -> unit -> unit
  (** Poll [ping] until the daemon answers (after spawning it).
      @raise Failure on timeout — the message says whether the socket
      was absent, refusing, busy or silent — or immediately when the
      daemon answers garbage *)

  val parse_metrics : string -> (Core.Metrics.measured, string) result
  (** Decode an [ok\tMETRICS] response. *)
end
