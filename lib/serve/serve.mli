(** The [hlsvhc serve] evaluation daemon (DESIGN.md §14).

    A long-lived loop on a Unix domain socket: one connection carries one
    batch of tab-separated request lines (terminated by a blank line) and
    receives exactly one response line per request, in order.  Every
    [eval] of a batch fans out together onto the {!Core.Parallel} domain
    pool under keep-going semantics — a failing design point answers with
    its typed {!Core.Flow.error} while the rest of the batch completes —
    and reads through the memo cache plus, when attached, the persistent
    content-addressed {!Store}.

    Protocol:
    {v
    eval\tTOOL\tMATRICES\tLABEL[\tKERNEL]
                                 ->  ok\tMETRICS-WIRE
                                 |   err\tDESIGN\tSTAGE\tCLASS\tDETAIL
    ping                         ->  ok\tpong
    stats                        ->  ok\tk=v ...
    shutdown                     ->  ok\tbye   (daemon exits)
    bad\tREASON  answers any request the server cannot parse.
    v}
    The optional [KERNEL] field selects the {!Core.Kernel} whose design
    inventory resolves the tool/label pair; absent means the paper's
    IDCT, so pre-kernel clients speak the protocol unchanged. *)

type request =
  | Eval of {
      design : Core.Design.t;
      matrices : int;
      spec : Core.Flow.spec;  (** the kernel the design is measured against *)
    }
  | Ping
  | Stats
  | Shutdown

type config = {
  socket_path : string;
  jobs : int option;       (** pool size per batch (default: as {!Core.Parallel}) *)
  store : Store.t option;  (** attached store, reported by [stats] *)
  max_conns : int option;  (** stop after N connections (tests/bench) *)
}

type counters = {
  conns : int Atomic.t;
  evals : int Atomic.t;
  eval_errors : int Atomic.t;
  memo_hits : int Atomic.t;
}

val parse_request : string -> (request, string) result
(** One wire line to a typed request; [Error] is the [bad] diagnostic. *)

val run : config -> counters
(** Bind, listen and serve until a [shutdown] request or [max_conns]
    connections; the socket file is unlinked on exit.  Returns the final
    counters. *)

(** Blocking one-shot client (tests, bench, scripting). *)
module Client : sig
  val eval_line :
    ?kernel:string -> tool:string -> label:string -> matrices:int -> unit ->
    string
  (** Format an [eval] request line; [kernel] adds the optional fifth
      field (omitted: the daemon assumes IDCT). *)

  val request : socket:string -> string list -> string list
  (** Connect, send the lines plus the blank-line terminator, read one
      response line per request, close. *)

  val wait_ready : ?timeout_s:float -> socket:string -> unit -> unit
  (** Poll [ping] until the daemon answers (after spawning it).
      @raise Failure on timeout or a malformed reply *)

  val parse_metrics : string -> (Core.Metrics.measured, string) result
  (** Decode an [ok\tMETRICS] response. *)
end
