(* Persistent content-addressed result store (DESIGN.md §14).

   One measurement = one entry file, named by the digest of the
   [Evaluate] measure key (spec × tool × label × digest(config, listing)
   × matrices), so two processes that construct the same design content
   address the same entry — the on-disk twin of the in-process memo
   cache.  Entries are published with [Trace.write_atomic] (temp +
   rename, EXDEV-safe), so concurrent writers and crashes can never
   leave a truncated entry: readers see a complete old entry, a complete
   new entry, or nothing.

   Reads trust nothing: an entry must carry the current schema version,
   a checksum that matches its payload, the full key it claims to cache
   (digest collisions and foreign files are rejected), and a parseable
   metrics line.  Anything else is reported once per path, counted, and
   treated as a miss — the caller re-measures and the fresh write
   replaces the bad entry. *)

let schema_version = 1
let magic = "hlsvhc-store"

type stats = {
  st_hits : int;
  st_misses : int;
  st_writes : int;
  st_invalid : int;
}

type t = {
  dir : string;
  hits : int Atomic.t;
  misses : int Atomic.t;
  writes : int Atomic.t;
  invalid : int Atomic.t;
  (* entry paths already complained about, so a corrupt entry that is hit
     repeatedly (e.g. under a sweep) warns exactly once *)
  reported : (string, unit) Hashtbl.t;
  reported_lock : Mutex.t;
}

let dir t = t.dir

let stats t =
  {
    st_hits = Atomic.get t.hits;
    st_misses = Atomic.get t.misses;
    st_writes = Atomic.get t.writes;
    st_invalid = Atomic.get t.invalid;
  }

(* mkdir -p: create every missing component, tolerate the race where a
   concurrent client creates one first. *)
let rec mkdir_p path =
  if path <> "" && path <> "/" && path <> "." && not (Sys.file_exists path)
  then begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let open_store dirname =
  match
    mkdir_p dirname;
    Sys.is_directory dirname
  with
  | true ->
      Ok
        {
          dir = dirname;
          hits = Atomic.make 0;
          misses = Atomic.make 0;
          writes = Atomic.make 0;
          invalid = Atomic.make 0;
          reported = Hashtbl.create 16;
          reported_lock = Mutex.create ();
        }
  | false -> Error (Printf.sprintf "%s exists and is not a directory" dirname)
  | exception Unix.Unix_error (e, _, _) ->
      Error (Printf.sprintf "cannot create %s: %s" dirname (Unix.error_message e))
  | exception Sys_error m -> Error m

let entry_path t ~key =
  Filename.concat t.dir (Digest.to_hex (Digest.string key) ^ ".entry")

(* The checksummed payload: everything above the checksum line, verbatim.
   The version line is covered too, so a version edit cannot smuggle an
   old payload past the checksum. *)
let payload ~key ~wire =
  Printf.sprintf "%s %d\nkey: %s\nmetrics: %s\n" magic schema_version key wire

let add t ~key (m : Core.Metrics.measured) =
  let body = payload ~key ~wire:(Core.Metrics.to_wire m) in
  Core.Trace.write_atomic (entry_path t ~key) (fun oc ->
      output_string oc body;
      Printf.fprintf oc "checksum: %s\n" (Digest.to_hex (Digest.string body)));
  Atomic.incr t.writes

let report_once t path reason =
  let fresh =
    Mutex.protect t.reported_lock (fun () ->
        if Hashtbl.mem t.reported path then false
        else begin
          Hashtbl.add t.reported path ();
          true
        end)
  in
  if fresh then
    Printf.eprintf "hlsvhc: store: ignoring entry %s (%s); re-measuring\n%!"
      path reason

(* Validation, strictest-to-loosest diagnosis: a missing file is a plain
   miss; everything else present-but-untrustworthy counts as invalid. *)
let load_entry path ~key =
  let text =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  match String.split_on_char '\n' text with
  | [ header; key_line; metrics_line; checksum_line; "" ] -> (
      (match String.split_on_char ' ' header with
      | [ m; v ] when m = magic ->
          if v <> string_of_int schema_version then
            Error
              (Printf.sprintf "schema version skew: entry v%s, expected v%d" v
                 schema_version)
          else Ok ()
      | _ -> Error "not a store entry (bad magic)")
      |> function
      | Error _ as e -> e
      | Ok () ->
          let field prefix line =
            if String.length line >= String.length prefix
               && String.sub line 0 (String.length prefix) = prefix
            then
              Ok
                (String.sub line (String.length prefix)
                   (String.length line - String.length prefix))
            else Error (Printf.sprintf "malformed %S line" prefix)
          in
          Result.bind (field "key: " key_line) @@ fun stored_key ->
          Result.bind (field "metrics: " metrics_line) @@ fun wire ->
          Result.bind (field "checksum: " checksum_line) @@ fun sum ->
          let body = payload ~key:stored_key ~wire in
          if sum <> Digest.to_hex (Digest.string body) then
            Error "checksum mismatch (corrupt or tampered entry)"
          else if stored_key <> key then
            Error
              (Printf.sprintf "key mismatch: entry caches %S" stored_key)
          else Core.Metrics.of_wire wire)
  | _ -> Error "truncated or malformed entry"

let find t ~key =
  let path = entry_path t ~key in
  if not (Sys.file_exists path) then begin
    Atomic.incr t.misses;
    None
  end
  else
    match load_entry path ~key with
    | Ok m ->
        Atomic.incr t.hits;
        Some m
    | Error reason ->
        Atomic.incr t.invalid;
        Atomic.incr t.misses;
        report_once t path reason;
        None
    | exception Sys_error m | exception Failure m ->
        Atomic.incr t.invalid;
        Atomic.incr t.misses;
        report_once t path m;
        None

let entry_count t =
  Array.fold_left
    (fun n f -> if Filename.check_suffix f ".entry" then n + 1 else n)
    0 (Sys.readdir t.dir)

let backend t =
  {
    Core.Evaluate.sb_name = t.dir;
    sb_find = (fun key -> find t ~key);
    sb_add = (fun key m -> add t ~key m);
  }

let attach dirname =
  match open_store dirname with
  | Ok t ->
      Core.Evaluate.set_store_backend (Some (backend t));
      Ok t
  | Error _ as e -> e

let detach () = Core.Evaluate.set_store_backend None
