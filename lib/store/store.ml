(* Persistent content-addressed result store (DESIGN.md §14).

   One measurement = one entry file, named by the digest of the
   [Evaluate] measure key (spec × tool × label × digest(config, listing)
   × matrices), so two processes that construct the same design content
   address the same entry — the on-disk twin of the in-process memo
   cache.  Entries are published with [Trace.write_atomic] (temp +
   rename, EXDEV-safe), so concurrent writers and crashes can never
   leave a truncated entry: readers see a complete old entry, a complete
   new entry, or nothing.

   Reads trust nothing: an entry must carry the current schema version,
   a checksum that matches its payload, the full key it claims to cache
   (digest collisions and foreign files are rejected), and a parseable
   metrics line.  Anything else is reported once per path, counted, and
   treated as a miss — the caller re-measures and the fresh write
   replaces the bad entry. *)

let schema_version = 1
let magic = "hlsvhc-store"

type stats = {
  st_hits : int;
  st_misses : int;
  st_writes : int;
  st_invalid : int;
}

type t = {
  dir : string;
  hits : int Atomic.t;
  misses : int Atomic.t;
  writes : int Atomic.t;
  invalid : int Atomic.t;
  (* entry paths already complained about, so a corrupt entry that is hit
     repeatedly (e.g. under a sweep) warns exactly once *)
  reported : (string, unit) Hashtbl.t;
  reported_lock : Mutex.t;
}

let dir t = t.dir

let stats t =
  {
    st_hits = Atomic.get t.hits;
    st_misses = Atomic.get t.misses;
    st_writes = Atomic.get t.writes;
    st_invalid = Atomic.get t.invalid;
  }

(* mkdir -p: create every missing component, tolerate the race where a
   concurrent client creates one first. *)
let rec mkdir_p path =
  if path <> "" && path <> "/" && path <> "." && not (Sys.file_exists path)
  then begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let open_store dirname =
  match
    mkdir_p dirname;
    Sys.is_directory dirname
  with
  | true ->
      Ok
        {
          dir = dirname;
          hits = Atomic.make 0;
          misses = Atomic.make 0;
          writes = Atomic.make 0;
          invalid = Atomic.make 0;
          reported = Hashtbl.create 16;
          reported_lock = Mutex.create ();
        }
  | false -> Error (Printf.sprintf "%s exists and is not a directory" dirname)
  | exception Unix.Unix_error (e, _, _) ->
      Error (Printf.sprintf "cannot create %s: %s" dirname (Unix.error_message e))
  | exception Sys_error m -> Error m

let entry_path t ~key =
  Filename.concat t.dir (Digest.to_hex (Digest.string key) ^ ".entry")

(* The checksummed payload: everything above the checksum line, verbatim.
   The version line is covered too, so a version edit cannot smuggle an
   old payload past the checksum. *)
let payload ~key ~wire =
  Printf.sprintf "%s %d\nkey: %s\nmetrics: %s\n" magic schema_version key wire

let add t ~key (m : Core.Metrics.measured) =
  let body = payload ~key ~wire:(Core.Metrics.to_wire m) in
  Core.Trace.write_atomic (entry_path t ~key) (fun oc ->
      output_string oc body;
      Printf.fprintf oc "checksum: %s\n" (Digest.to_hex (Digest.string body)));
  Atomic.incr t.writes

let warn_once t key msg =
  let fresh =
    Mutex.protect t.reported_lock (fun () ->
        if Hashtbl.mem t.reported key then false
        else begin
          Hashtbl.add t.reported key ();
          true
        end)
  in
  if fresh then Printf.eprintf "%s\n%!" msg

let report_once t path reason =
  warn_once t path
    (Printf.sprintf "hlsvhc: store: ignoring entry %s (%s); re-measuring"
       path reason)

(* Validation without an expected key (the fsck path trusts only the
   file's own claims): magic, schema version, field shape, checksum and
   metrics parse.  Returns the stored key alongside the metrics so
   callers can check it against whatever they expected. *)
let parse_entry path =
  let text =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  match String.split_on_char '\n' text with
  | [ header; key_line; metrics_line; checksum_line; "" ] -> (
      (match String.split_on_char ' ' header with
      | [ m; v ] when m = magic ->
          if v <> string_of_int schema_version then
            Error
              (Printf.sprintf "schema version skew: entry v%s, expected v%d" v
                 schema_version)
          else Ok ()
      | _ -> Error "not a store entry (bad magic)")
      |> function
      | Error e -> Error e
      | Ok () ->
          let field prefix line =
            if String.length line >= String.length prefix
               && String.sub line 0 (String.length prefix) = prefix
            then
              Ok
                (String.sub line (String.length prefix)
                   (String.length line - String.length prefix))
            else Error (Printf.sprintf "malformed %S line" prefix)
          in
          Result.bind (field "key: " key_line) @@ fun stored_key ->
          Result.bind (field "metrics: " metrics_line) @@ fun wire ->
          Result.bind (field "checksum: " checksum_line) @@ fun sum ->
          let body = payload ~key:stored_key ~wire in
          if sum <> Digest.to_hex (Digest.string body) then
            Error "checksum mismatch (corrupt or tampered entry)"
          else
            Result.map
              (fun m -> (stored_key, m))
              (Core.Metrics.of_wire wire))
  | _ -> Error "truncated or malformed entry"

(* Validation, strictest-to-loosest diagnosis: a missing file is a plain
   miss; everything else present-but-untrustworthy counts as invalid. *)
let load_entry path ~key =
  match parse_entry path with
  | Error _ as e -> e
  | Ok (stored_key, m) ->
      if stored_key <> key then
        Error (Printf.sprintf "key mismatch: entry caches %S" stored_key)
      else Ok m

let find t ~key =
  let path = entry_path t ~key in
  if not (Sys.file_exists path) then begin
    Atomic.incr t.misses;
    None
  end
  else
    match load_entry path ~key with
    | Ok m ->
        Atomic.incr t.hits;
        Some m
    | Error reason ->
        Atomic.incr t.invalid;
        Atomic.incr t.misses;
        report_once t path reason;
        None
    | exception Sys_error m | exception Failure m ->
        Atomic.incr t.invalid;
        Atomic.incr t.misses;
        report_once t path m;
        None

(* A store directory removed out from under a live daemon must degrade
   [stats], not crash it: an unreadable directory counts zero entries
   and warns once. *)
let entry_count t =
  match Sys.readdir t.dir with
  | files ->
      Array.fold_left
        (fun n f -> if Filename.check_suffix f ".entry" then n + 1 else n)
        0 files
  | exception Sys_error m ->
      warn_once t (t.dir ^ "#readdir")
        (Printf.sprintf
           "hlsvhc: store: cannot list %s (%s); reporting 0 entries" t.dir m);
      0

(* ---------------- janitor: fsck and gc ---------------- *)

(* Entry files of a directory, sorted by name so every report and every
   eviction decision is deterministic. *)
let entry_files dirname =
  match Sys.readdir dirname with
  | files ->
      let es =
        Array.to_list files
        |> List.filter (fun f -> Filename.check_suffix f ".entry")
        |> List.sort compare
      in
      Ok es
  | exception Sys_error m -> Error m

type fsck_invalid = { fi_file : string; fi_reason : string }

type fsck_report = {
  fk_total : int;
  fk_valid : int;
  fk_invalid : fsck_invalid list;
  fk_repaired : int;
}

(* Validate every entry the way [find] would, plus the one check [find]
   gets for free from content addressing: the filename must be the
   digest of the key the entry claims to cache (a renamed or foreign
   file is unreachable dead weight at best, a collision trap at
   worst). *)
let fsck ?(repair = false) dirname =
  if not (Sys.file_exists dirname) then
    Error (Printf.sprintf "%s does not exist" dirname)
  else if not (Sys.is_directory dirname) then
    Error (Printf.sprintf "%s is not a directory" dirname)
  else
    match entry_files dirname with
    | Error m -> Error m
    | Ok files ->
        let invalid = ref [] and valid = ref 0 in
        List.iter
          (fun f ->
            let path = Filename.concat dirname f in
            let verdict =
              match parse_entry path with
              | Ok (stored_key, _) ->
                  let expected =
                    Digest.to_hex (Digest.string stored_key) ^ ".entry"
                  in
                  if f <> expected then
                    Error
                      (Printf.sprintf
                         "filename does not address its key (expected %s)"
                         expected)
                  else Ok ()
              | Error reason -> Error reason
              | exception Sys_error m -> Error ("unreadable: " ^ m)
              | exception Failure m -> Error ("unreadable: " ^ m)
            in
            match verdict with
            | Ok () -> incr valid
            | Error fi_reason ->
                invalid := { fi_file = f; fi_reason } :: !invalid)
          files;
        let invalid = List.rev !invalid in
        let repaired = ref 0 in
        if repair then
          List.iter
            (fun { fi_file; _ } ->
              match Sys.remove (Filename.concat dirname fi_file) with
              | () -> incr repaired
              | exception Sys_error _ -> ())
            invalid;
        Ok
          {
            fk_total = List.length files;
            fk_valid = !valid;
            fk_invalid = invalid;
            fk_repaired = !repaired;
          }

type gc_report = {
  gr_total : int;
  gr_kept : int;
  gr_deleted : int;
  gr_bytes_before : int;
  gr_bytes_after : int;
}

(* Deterministic eviction, oldest mtime first, ties broken by filename:
   sorted that way, entries are deleted from the front until both
   budgets hold.  Safe under a live daemon — entries are atomic and
   independent, so a deleted entry is re-healed by the next miss's
   write-through and a concurrently-published entry is simply newer
   than every eviction candidate. *)
let gc ?max_entries ?max_bytes dirname =
  if max_entries = None && max_bytes = None then
    Error "gc needs a budget: --max-entries and/or --max-bytes"
  else if not (Sys.file_exists dirname) then
    Error (Printf.sprintf "%s does not exist" dirname)
  else if not (Sys.is_directory dirname) then
    Error (Printf.sprintf "%s is not a directory" dirname)
  else
    match entry_files dirname with
    | Error m -> Error m
    | Ok files ->
        (* (mtime, name, bytes); entries vanishing mid-scan (a racing
           gc or repair) are skipped *)
        let stats =
          List.filter_map
            (fun f ->
              match Unix.stat (Filename.concat dirname f) with
              | st -> Some (st.Unix.st_mtime, f, st.Unix.st_size)
              | exception Unix.Unix_error _ -> None)
            files
        in
        let oldest_first =
          List.sort
            (fun (m1, f1, _) (m2, f2, _) ->
              match compare m1 m2 with 0 -> compare f1 f2 | c -> c)
            stats
        in
        let total = List.length oldest_first in
        let bytes_before =
          List.fold_left (fun a (_, _, b) -> a + b) 0 oldest_first
        in
        let over count bytes =
          (match max_entries with Some n -> count > n | None -> false)
          || match max_bytes with Some b -> bytes > b | None -> false
        in
        let deleted = ref 0 in
        let rec evict count bytes = function
          | (_, f, sz) :: rest when over count bytes ->
              (match Sys.remove (Filename.concat dirname f) with
              | () -> incr deleted
              | exception Sys_error _ -> ());
              evict (count - 1) (bytes - sz) rest
          | _ -> (count, bytes)
        in
        let kept, bytes_after = evict total bytes_before oldest_first in
        Ok
          {
            gr_total = total;
            gr_kept = kept;
            gr_deleted = !deleted;
            gr_bytes_before = bytes_before;
            gr_bytes_after = bytes_after;
          }

let backend t =
  {
    Core.Evaluate.sb_name = t.dir;
    sb_find = (fun key -> find t ~key);
    sb_add = (fun key m -> add t ~key m);
  }

let attach dirname =
  match open_store dirname with
  | Ok t ->
      Core.Evaluate.set_store_backend (Some (backend t));
      Ok t
  | Error _ as e -> e

let detach () = Core.Evaluate.set_store_backend None
