(** Persistent content-addressed result store (DESIGN.md §14).

    The on-disk twin of {!Core.Evaluate}'s in-process memo cache: one
    measurement per entry file, named by the digest of the measure key
    (spec × tool × label × digest(config, listing) × matrices), written
    atomically (temp + rename via {!Core.Trace.write_atomic}), read back
    with schema-version, checksum and key validation.  Attached to
    [Evaluate] it makes results survive restarts and lets concurrent
    clients share one warm cache; invalid entries (corrupt, truncated,
    version-skewed, colliding) are reported once, counted, and
    re-measured — never trusted. *)

type t

type stats = {
  st_hits : int;     (** valid entries served *)
  st_misses : int;   (** absent or invalid entries (invalid counted in both) *)
  st_writes : int;   (** entries published *)
  st_invalid : int;  (** entries rejected by validation *)
}

val schema_version : int

val open_store : string -> (t, string) result
(** Open (creating directories as needed) a store rooted at the given
    path.  [Error] when the path exists and is not a directory, or
    cannot be created. *)

val dir : t -> string
val stats : t -> stats

val entry_path : t -> key:string -> string
(** The entry file a key content-addresses (exists or not). *)

val find : t -> key:string -> Core.Metrics.measured option
(** Validated read: [None] on a missing entry {e and} on any entry that
    fails validation (reported once per path on stderr, counted in
    [st_invalid]); the caller re-measures and {!add} replaces it. *)

val add : t -> key:string -> Core.Metrics.measured -> unit
(** Publish an entry atomically (checksummed, schema-tagged); concurrent
    writers of one key are safe — last complete write wins, and both
    wrote identical content.
    @raise Core.Trace.Write_error when the entry cannot be written *)

val entry_count : t -> int
(** Number of [.entry] files currently on disk.  A store directory that
    has been removed (or become unreadable) under a live process counts
    as 0 with a one-time stderr warning — [stats] must degrade, not
    crash. *)

(** {1 Janitor}

    Offline (or live — entries are atomic and independently re-healed on
    miss) maintenance of a store directory: [hlsvhc store fsck] and
    [hlsvhc store gc]. *)

type fsck_invalid = {
  fi_file : string;    (** entry filename (relative to the store dir) *)
  fi_reason : string;  (** why validation rejected it *)
}

type fsck_report = {
  fk_total : int;               (** [.entry] files examined *)
  fk_valid : int;
  fk_invalid : fsck_invalid list;  (** sorted by filename *)
  fk_repaired : int;            (** invalid entries deleted (with [repair]) *)
}

val fsck : ?repair:bool -> string -> (fsck_report, string) result
(** Validate every entry in the directory exactly as a read would
    (magic, schema version, field shape, checksum, metrics parse) plus
    the content-addressing invariant (the filename is the digest of the
    stored key).  [repair] deletes each invalid entry — always safe:
    readers treat a missing entry as a miss and re-measure.  [Error]
    when the path is not a readable directory. *)

type gc_report = {
  gr_total : int;         (** entries before collection *)
  gr_kept : int;
  gr_deleted : int;
  gr_bytes_before : int;
  gr_bytes_after : int;
}

val gc :
  ?max_entries:int -> ?max_bytes:int -> string -> (gc_report, string) result
(** Evict entries, oldest mtime first (ties broken by filename, so the
    eviction order is deterministic), until at most [max_entries]
    entries and [max_bytes] total bytes remain.  At least one budget is
    required.  Safe under a live daemon: deleted entries are re-healed
    by the next miss's write-through. *)

val backend : t -> Core.Evaluate.store_backend
(** This store as an [Evaluate] persistent layer. *)

val attach : string -> (t, string) result
(** [open_store] + {!Core.Evaluate.set_store_backend}: every subsequent
    [Evaluate.measure] miss in this process reads through (and writes
    through to) the store — the [--store DIR] flag. *)

val detach : unit -> unit
(** Detach whatever backend is attached. *)
