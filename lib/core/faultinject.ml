(* Deterministic fault injection into the staged design flow.

   The armed spec lives in one atomic cell: [arm] happens on the main
   domain before a sweep fans out, pool workers only ever read.  Every
   probe first loads the cell and returns immediately when nothing is
   armed, so the fault-free pipeline pays one atomic read per probe and
   stays byte-identical to the uninstrumented code. *)

type fault =
  | Engine_crash
  | Stall
  | Poison
  | Protocol
  | Crash of string
  | Slow_client
  | Conn_drop
  | Shed

type spec = { fault : fault; target : string; seed : int }

exception Injected of string

let () =
  Printexc.register_printer (function
    | Injected what -> Some (Printf.sprintf "Faultinject.Injected(%s)" what)
    | _ -> None)

let fault_to_string = function
  | Engine_crash -> "engine-crash"
  | Stall -> "stall"
  | Poison -> "poison"
  | Protocol -> "protocol"
  | Crash stage -> "crash@" ^ stage
  | Slow_client -> "slow-client"
  | Conn_drop -> "conn-drop"
  | Shed -> "shed"

let to_string s =
  Printf.sprintf "%s:%s:%d" (fault_to_string s.fault)
    (if s.target = "" then "*" else s.target)
    s.seed

let parse text =
  let fault_of = function
    | "engine-crash" -> Ok Engine_crash
    | "stall" -> Ok Stall
    | "poison" -> Ok Poison
    | "protocol" -> Ok Protocol
    | "slow-client" -> Ok Slow_client
    | "conn-drop" -> Ok Conn_drop
    | "shed" -> Ok Shed
    | f when String.length f > 6 && String.sub f 0 6 = "crash@" ->
        Ok (Crash (String.sub f 6 (String.length f - 6)))
    | f ->
        Error
          (Printf.sprintf
             "unknown fault %S (want engine-crash, stall, poison, protocol, \
              crash@STAGE, slow-client, conn-drop or shed)"
             f)
  in
  match String.split_on_char ':' (String.trim text) with
  | [] | [ "" ] -> Error "empty fault spec (want FAULT:TARGET[:SEED])"
  | fault :: rest -> (
      match fault_of fault with
      | Error _ as e -> e
      | Ok fault -> (
          let target, seed_text =
            match rest with
            | [] -> ("*", None)
            | [ t ] -> (t, None)
            | [ t; s ] -> (t, Some s)
            | _ -> ("", Some "malformed")
          in
          let target = if target = "*" then "" else target in
          match seed_text with
          | None -> Ok { fault; target; seed = 0 }
          | Some s -> (
              match int_of_string_opt s with
              | Some seed when seed >= 0 -> Ok { fault; target; seed }
              | _ ->
                  Error
                    (Printf.sprintf "bad seed %S (want a non-negative integer)"
                       s))))

let cell : spec option Atomic.t = Atomic.make None

(* Connection faults fire on "the first [seed] occasions" (seed 0 =
   every occasion), so a chaos test can arm e.g. [shed:*:2] and know the
   retrying client's third attempt lands.  One claim counter per fault
   kind, reset whenever the armed spec changes. *)
let conn_claims = Atomic.make 0

let arm s =
  Atomic.set conn_claims 0;
  Atomic.set cell (Some s)

let disarm () =
  Atomic.set conn_claims 0;
  Atomic.set cell None

let armed () = Atomic.get cell

let load_env () =
  match Sys.getenv_opt "HLSVHC_FAULT" with
  | None | Some "" -> Ok None
  | Some text -> (
      match parse text with
      | Ok s ->
          arm s;
          Ok (Some s)
      | Error e -> Error (Printf.sprintf "HLSVHC_FAULT=%S: %s" text e))

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  m = 0
  ||
  let rec at i =
    if i + m > n then false
    else if String.sub s i m = sub then true
    else at (i + 1)
  in
  at 0

let matching ~design =
  match Atomic.get cell with
  | None -> None
  | Some s -> if contains ~sub:s.target design then Some s else None

(* ---------------- probes ---------------- *)

let crash_at_stage ~design ~stage =
  match matching ~design with
  | Some { fault = Crash st; _ } when st = stage ->
      raise
        (Injected
           (Printf.sprintf "injected crash at stage %s of %s" stage design))
  | _ -> ()

let engine_crash ~design ~compiled =
  match matching ~design with
  | Some { fault = Engine_crash; _ } when compiled ->
      raise
        (Injected
           (Printf.sprintf "injected compiled-engine crash on %s" design))
  | _ -> ()

let stall_timeout ~design default =
  match matching ~design with
  | Some { fault = Stall; _ } ->
      (* A budget too small for even one beat: the driver runs its real
         timeout path and reports the stall with its usual diagnostics. *)
      Some 2
  | _ -> default

let poison_blocks ~design blocks =
  match matching ~design with
  | Some { fault = Poison; seed; _ } when blocks <> [] ->
      let victim = seed mod List.length blocks in
      let pos = seed mod 64 in
      List.mapi
        (fun i b ->
          if i <> victim then b
          else begin
            let b = Axis.Block.copy b in
            let row = pos / 8 and col = pos mod 8 in
            let v = Axis.Block.get b ~row ~col in
            (* A deterministic perturbation that never clamps back onto
               the original value, so the bit-true check must object. *)
            let delta = 1 + (seed mod 7) in
            Axis.Block.set b ~row ~col
              (if v >= 0 then v - delta else v + delta);
            b
          end)
        blocks
  | _ -> blocks

let inject_violation ~design violations =
  match matching ~design with
  | Some { fault = Protocol; seed; _ } ->
      { Axis.Monitor.at_cycle = seed; rule = "injected protocol fault" }
      :: violations
  | _ -> violations

(* ---------------- connection probes (the serve layer) ---------------- *)

(* Claim one firing of a counted connection fault: true while fewer than
   [seed] claims have been made (seed 0 = unlimited). *)
let claim_conn seed =
  if seed = 0 then true else Atomic.fetch_and_add conn_claims 1 < seed

let slow_client_conn () =
  match Atomic.get cell with
  | Some { fault = Slow_client; seed; _ } -> claim_conn seed
  | _ -> false

let shed_conn () =
  match Atomic.get cell with
  | Some { fault = Shed; seed; _ } -> claim_conn seed
  | _ -> false

let conn_drop_limit () =
  match Atomic.get cell with
  | Some { fault = Conn_drop; seed; _ } -> Some seed
  | _ -> None
