type point = {
  label : string;
  area : int;
  throughput_mops : float;
  fmax_mhz : float;
}

type series = { tool : Design.tool; points : point list }

(* Series cache, shared across domains once [compute] fans out: every
   access goes through [cache_lock].  Keyed by (kernel, tool): each
   kernel's series are cached independently. *)
let cache : (string * Design.tool, series) Hashtbl.t = Hashtbl.create 8
let cache_lock = Mutex.create ()

let cache_find kname tool =
  Mutex.protect cache_lock (fun () -> Hashtbl.find_opt cache (kname, tool))

let cache_store kname tool s =
  Mutex.protect cache_lock (fun () -> Hashtbl.replace cache (kname, tool) s)

let clear_cache () = Mutex.protect cache_lock (fun () -> Hashtbl.reset cache)

let point_of (d : Design.t) (m : Metrics.measured) =
  {
    label = d.Design.label;
    area = m.Metrics.area;
    throughput_mops = m.Metrics.throughput_mops;
    fmax_mhz = m.Metrics.fmax_mhz;
  }

(* One flat work list across every uncached tool — ~100 independent
   measurements for the full figure — mapped over the domain pool in one
   batch so a tool with few configurations does not leave domains idle.
   [Parallel.map] preserves input order, so regrouping by sweep length
   reassembles each tool's series exactly as the sequential path built
   them. *)
let compute_outcomes ?jobs ?tools ?(kernel = Kernel.idct) ~keep_going () =
  let spec = Kernel.spec kernel in
  let kname = Kernel.name kernel in
  let tools =
    match tools with Some ts -> ts | None -> Kernel.tools kernel
  in
  let missing = List.filter (fun t -> cache_find kname t = None) tools in
  let sweeps = List.map (fun t -> (t, Kernel.sweep kernel t)) missing in
  let designs = List.concat_map snd sweeps in
  (* Fail-fast measures on [Parallel.map] (first failure aborts the
     batch, byte-identical to the historical path); keep-going measures
     on [Parallel.map_result] so every surviving point is kept and each
     failed point records its typed error. *)
  let outcomes =
    if keep_going then
      Evaluate.measure_all_result ?jobs ~matrices:3 ~spec designs
    else
      List.map
        (fun m -> Ok m)
        (Evaluate.measure_all ?jobs ~matrices:3 ~spec designs)
  in
  let failures = ref [] in
  let rec regroup sweeps outcomes acc =
    match sweeps with
    | [] -> List.rev acc
    | (tool, sweep) :: rest ->
        let rec take k acc = function
          | ms when k = 0 -> (List.rev acc, ms)
          | m :: ms -> take (k - 1) (m :: acc) ms
          | [] -> assert false
        in
        let ms, outcomes = take (List.length sweep) [] outcomes in
        let points =
          List.concat
            (List.map2
               (fun d -> function
                 | Ok m -> [ point_of d m ]
                 | Error (err : Flow.error) ->
                     failures := err :: !failures;
                     [])
               sweep ms)
        in
        let s = { tool; points } in
        (* Only complete series enter the cache: a series missing failed
           points must not shadow a later fault-free run. *)
        if List.length points = List.length sweep then cache_store kname tool s;
        regroup rest outcomes ((tool, s) :: acc)
  in
  let fresh = regroup sweeps outcomes [] in
  let series =
    List.map
      (fun t ->
        match List.assoc_opt t fresh with
        | Some s -> s
        | None -> (
            match cache_find kname t with Some s -> s | None -> assert false))
      tools
  in
  (series, List.rev !failures)

let compute ?jobs ?tools ?kernel () =
  fst (compute_outcomes ?jobs ?tools ?kernel ~keep_going:false ())

let compute_result ?jobs ?tools ?kernel () =
  compute_outcomes ?jobs ?tools ?kernel ~keep_going:true ()

let points ?jobs ?tools ?kernel () =
  List.concat_map
    (fun s -> List.map (fun p -> (s.tool, p)) s.points)
    (compute ?jobs ?tools ?kernel ())

(* Machine-readable Fig. 1: the same point set as the ASCII scatter, one
   JSON object per series, written temp-file + rename so readers never
   observe a truncation. *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let write_json ?(kernel = Kernel.idct) path series =
  Trace.write_atomic path (fun oc ->
      output_string oc "{\n  \"artifact\": \"fig1\",\n";
      (* the default kernel's JSON stays byte-identical to the pre-kernel
         artifact; other kernels name themselves *)
      if Kernel.name kernel <> "idct" then
        Printf.fprintf oc "  \"kernel\": \"%s\",\n"
          (json_escape (Kernel.name kernel));
      output_string oc "  \"series\": [\n";
      List.iteri
        (fun i s ->
          Printf.fprintf oc
            "    {\"tool\": \"%s\", \"language\": \"%s\", \"points\": [\n"
            (json_escape (Design.tool_name s.tool))
            (json_escape (Design.language_name s.tool));
          List.iteri
            (fun j p ->
              Printf.fprintf oc
                "      {\"label\": \"%s\", \"area\": %d, \
                 \"throughput_mops\": %.6f, \"fmax_mhz\": %.6f}%s\n"
                (json_escape p.label) p.area p.throughput_mops p.fmax_mhz
                (if j = List.length s.points - 1 then "" else ","))
            s.points;
          Printf.fprintf oc "    ]}%s\n"
            (if i = List.length series - 1 then "" else ","))
        series;
      output_string oc "  ]\n}\n")

(* The scatter glyph lives on the TOOL module, next to the rest of each
   flow's registration. *)
let glyph = Registry.glyph

let render_series ?(kernel = Kernel.idct) series =
  let buf = Buffer.create 4096 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  (* Data listing. *)
  List.iter
    (fun s ->
      pr "%s (%s, %d configurations):\n"
        (Design.language_name s.tool)
        (Design.tool_name s.tool)
        (List.length s.points);
      List.iter
        (fun p ->
          pr "  %-34s A=%7d  P=%8.2f MOPS  f=%7.2f MHz\n" p.label p.area
            p.throughput_mops p.fmax_mhz)
        s.points)
    series;
  (* ASCII scatter, log10 axes. *)
  let all = List.concat_map (fun s -> s.points) series in
  let lx p = log10 (float_of_int (max 1 p.area)) in
  let ly p = log10 (Float.max 0.01 p.throughput_mops) in
  let min_x = List.fold_left (fun a p -> Float.min a (lx p)) infinity all in
  let max_x = List.fold_left (fun a p -> Float.max a (lx p)) neg_infinity all in
  let min_y = List.fold_left (fun a p -> Float.min a (ly p)) infinity all in
  let max_y = List.fold_left (fun a p -> Float.max a (ly p)) neg_infinity all in
  let w = 72 and h = 24 in
  let grid = Array.make_matrix h w ' ' in
  List.iter
    (fun s ->
      List.iter
        (fun p ->
          let x =
            int_of_float
              ((lx p -. min_x) /. Float.max 1e-9 (max_x -. min_x)
              *. float_of_int (w - 1))
          in
          let y =
            int_of_float
              ((ly p -. min_y) /. Float.max 1e-9 (max_y -. min_y)
              *. float_of_int (h - 1))
          in
          grid.(h - 1 - y).(x) <- glyph s.tool)
        s.points)
    series;
  pr "%s" (Kernel.caption kernel);
  pr "%s" (Kernel.legend_line kernel);
  for r = 0 to h - 1 do
    pr "|%s|\n" (String.init w (fun c -> grid.(r).(c)))
  done;
  pr "%s\n" (String.make (w + 2) '-');
  pr "area: %.0f .. %.0f   throughput: %.2f .. %.2f MOPS\n"
    (10. ** min_x) (10. ** max_x) (10. ** min_y) (10. ** max_y);
  Buffer.contents buf

let render ?jobs ?tools ?kernel () =
  render_series ?kernel (compute ?jobs ?tools ?kernel ())

let render_result ?jobs ?tools ?kernel () =
  let series, failures = compute_result ?jobs ?tools ?kernel () in
  (render_series ?kernel series, failures)
