(** Span tracing of the staged design flow (DESIGN.md §10).

    Every stage of the measurement pipeline ({!Flow}) runs inside a span
    that records wall time and counters (netlist nodes, simulated cycles,
    cache hits...).  Collection is domain-safe: spans accumulate in
    per-domain buffers (domain-local storage) and are merged into the
    process-wide trace when a pool worker exits ({!flush_domain}, called
    by {!Parallel.map}) or when the trace is {!drain}ed.

    Tracing is off by default and, when off, every entry point is a
    near-free no-op — artifacts are byte-identical with tracing on or
    off, which the flow tests check. *)

type span = {
  design : string;  (** "Tool/label", or "pool..." for engine spans *)
  stage : string;   (** flow stage name, e.g. "simulate" *)
  depth : int;      (** nesting depth at open time (0 = root) *)
  seq : int;        (** per-domain open order, for stable sorting *)
  start_s : float;  (** wall clock (Unix.gettimeofday) at open *)
  dur_s : float;    (** wall-clock duration *)
  counters : (string * int) list;
}

val set_enabled : bool -> unit
val enabled : unit -> bool

val with_span : design:string -> stage:string -> (unit -> 'a) -> 'a
(** Times [f] inside a span on the current domain; the span is recorded
    even when [f] raises.  When tracing is disabled this is exactly
    [f ()]. *)

val add_counter : string -> int -> unit
(** Adds [v] to the named counter of the innermost open span of the
    current domain (no-op when tracing is disabled or no span is open).
    Repeated additions under one key accumulate. *)

val flush_domain : unit -> unit
(** Merge this domain's buffered spans into the process-wide trace.
    {!Parallel.map} calls this in every pool worker before it is joined,
    so traces taken under [--jobs N] are complete and race-free. *)

val drain : unit -> span list
(** Flush the calling domain, then return and clear the merged trace.
    Spans are sorted by start time (ties by sequence number). *)

(** {1 JSON emission and the [stats] summary} *)

exception Write_error of { wr_path : string; wr_reason : string }
(** A failed atomic publish — the path that could not be written and the
    underlying reason.  Raised by {!write_atomic} and {!rename_durable}
    instead of a bare [Sys_error]/[Unix_error], so keep-going callers can
    report it as a typed condition. *)

val write_atomic : string -> (out_channel -> unit) -> unit
(** Run the emitter on a sibling temp file, then rename it over the
    target path: readers observe the old complete file or the new
    complete file, never a truncation.  On an emitter exception the temp
    file is removed and the target is untouched.  The temp name carries
    the pid {e and} a per-process atomic counter, so concurrent domains
    writing the same path never clobber each other's temp file.  Shared
    by {!write_json}, the bench JSON writers and the persistent result
    store.
    @raise Write_error when the file cannot be created or published *)

val rename_durable : src:string -> dst:string -> unit
(** Atomically publish [src] as [dst].  A plain [rename] when both sit
    on one filesystem; across filesystems ([EXDEV]) the bytes are copied
    to a fresh temp sibling of [dst], fsynced, and renamed within that
    directory, so the publish step itself stays atomic.  [src] is
    consumed on success.
    @raise Write_error on failure (with [src] cleaned up) *)

val write_json : string -> span list -> unit
(** One complete span tree per design ({!write_atomic}): spans are
    grouped by [design] and nested by depth, with per-span wall times
    and counters. *)

type summary_row = {
  sum_stage : string;
  sum_count : int;
  sum_total_s : float;
  sum_counters : (string * int) list;
}

val summarize : span list -> summary_row list
(** Aggregate by stage name, in order of total time. *)

val load_json : string -> span list
(** Parse a file written by {!write_json} back into flat spans (depth and
    sequence reconstructed from the tree; start times are relative).
    @raise Failure on malformed or empty input (with the path and the
    parse position in the message)
    @raise Sys_error when the file cannot be read *)

val render_stats : string -> string
(** The [hlsvhc stats] report: per-stage counts, wall-time breakdown and
    aggregated counters of a trace file. *)
