(** Fig. 1 — design-space exploration in the Performance x Area plane.

    One series per tool; each point is one explored configuration
    (Verilog 3, Chisel 3, BSC 26, XLS 19, MaxCompiler 2, Bambu 42,
    Vivado HLS 5 — 100 synthesized circuits). *)

type point = {
  label : string;
  area : int;
  throughput_mops : float;
  fmax_mhz : float;
}

type series = { tool : Design.tool; points : point list }

val compute :
  ?jobs:int ->
  ?tools:Design.tool list ->
  ?kernel:(module Kernel.KERNEL) ->
  unit ->
  series list
(** Measures every sweep configuration of [kernel] (default the paper's
    IDCT) on the domain pool ({!Parallel.map}; [jobs] defaults to
    {!Parallel.default_jobs}) and caches the finished series per
    (kernel, tool).  The result is deterministic: the same series, point
    for point, for any job count. *)

val compute_result :
  ?jobs:int ->
  ?tools:Design.tool list ->
  ?kernel:(module Kernel.KERNEL) ->
  unit ->
  series list * Flow.error list
(** The keep-going sweep ({!Evaluate.measure_all_result}): failed points
    are dropped from their series and returned as typed errors in sweep
    order; every surviving point is identical to the fail-fast run.
    Series with failures are not cached, so a later fault-free run
    recomputes them in full. *)

val clear_cache : unit -> unit
(** Drop the per-tool series cache (tests and benchmarks).  Memoized
    measurements survive; see {!Evaluate.clear_measure_cache}. *)

val points :
  ?jobs:int ->
  ?tools:Design.tool list ->
  ?kernel:(module Kernel.KERNEL) ->
  unit ->
  (Design.tool * point) list
(** {!compute} flattened to one [(tool, point)] list in series order —
    the point set the DSE cross-check compares against. *)

val write_json :
  ?kernel:(module Kernel.KERNEL) -> string -> series list -> unit
(** Write the series as JSON (tool, label, area, throughput, fmax) via
    {!Trace.write_atomic} — the machine-readable twin of the ASCII
    scatter ([hlsvhc fig1 --json]).  Non-default kernels add a
    ["kernel"] field; the IDCT artifact is byte-identical to the
    pre-kernel format. *)

val render_series :
  ?kernel:(module Kernel.KERNEL) -> series list -> string
(** Render an already-computed series list (data table + scatter);
    [kernel] supplies the axis caption and legend. *)

val render :
  ?jobs:int ->
  ?tools:Design.tool list ->
  ?kernel:(module Kernel.KERNEL) ->
  unit ->
  string
(** Data table plus an ASCII log-log scatter of the plane. *)

val render_result :
  ?jobs:int ->
  ?tools:Design.tool list ->
  ?kernel:(module Kernel.KERNEL) ->
  unit ->
  string * Flow.error list
(** {!render} over {!compute_result}: the figure restricted to the
    surviving points, plus the failures for the caller's summary. *)
