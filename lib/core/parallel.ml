(* Domain-pool evaluation engine.

   Regenerating the paper's artifacts is dominated by evaluation: Fig. 1
   alone measures ~100 synthesized circuits, each one a cycle-accurate
   simulation plus a synthesis report.  The designs are independent, so
   [map] fans them out over a fixed-size pool of domains while keeping the
   result order deterministic (results land in a slot array indexed by the
   input position, never in completion order).

   The pool size defaults to [Domain.recommended_domain_count ()], can be
   pinned per call with [?jobs], and per process with the [HLSVHC_JOBS]
   environment variable.  [map ~jobs:1] runs inline on the calling domain —
   no pool, byte-identical to the historical sequential path.

   Jobs must not share mutable builder state: a design's [Lazy] circuit
   constructor is forced inside the single job that owns it, so every
   [Hw.Builder] hash-cons table lives and dies within one domain (see
   DESIGN.md §9). *)

let env_warned = Atomic.make false

let env_jobs () =
  match Sys.getenv_opt "HLSVHC_JOBS" with
  | None -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> Some n
      | _ ->
          (* Silently time-slicing a typo onto the default would be
             indistinguishable from the variable working; say so, once. *)
          if not (Atomic.exchange env_warned true) then
            Printf.eprintf
              "hlsvhc: ignoring invalid HLSVHC_JOBS=%S (want a positive \
               integer); using %d worker domains\n\
               %!"
              s
              (Domain.recommended_domain_count ());
          None)

let default_jobs () =
  match env_jobs () with
  | Some n -> n
  | None -> Domain.recommended_domain_count ()

let clamp_jobs jobs n =
  let requested =
    match jobs with Some j -> max 1 j | None -> default_jobs ()
  in
  max 1 (min requested n)

(* The pool skeleton shared by [map] and [map_result]: an atomic cursor
   over the input array; each worker claims the next index, runs the job
   and stores the outcome in its slot.  Under [~abort:true] (the [map]
   semantics) the first exception (in claim order) is kept in [failed]
   and the remaining workers drain without starting new jobs; under
   [~abort:false] every item runs and failures stay per-slot.  Either
   way every domain is joined — the pool never deadlocks on a raising
   job. *)
let pooled ~jobs ~abort f items =
  let n = Array.length items in
  (* Capture the trace switch once, before spawning: workers must agree
     with the caller on whether to record, even if the flag is toggled
     mid-run. *)
  let traced = Trace.enabled () in
  let results = Array.make n None in
  let next = Atomic.make 0 in
  let failed = Atomic.make None in
  let worker wid () =
    (* The claim loop, returning how many jobs this worker ran and the
       wall time it spent inside them (its busy time, as opposed to the
       tail time it idled waiting for the slowest sibling). *)
    let run_loop () =
      let claimed = ref 0 and busy = ref 0.0 in
      let running = ref true in
      while !running do
        let i = Atomic.fetch_and_add next 1 in
        if i >= n || (abort && Atomic.get failed <> None) then running := false
        else begin
          incr claimed;
          let t0 = if traced then Unix.gettimeofday () else 0.0 in
          (match f items.(i) with
          | v -> results.(i) <- Some (Ok v)
          | exception e ->
              let bt = Printexc.get_raw_backtrace () in
              results.(i) <- Some (Error (e, bt));
              if abort then
                ignore (Atomic.compare_and_set failed None (Some (e, bt))));
          if traced then busy := !busy +. (Unix.gettimeofday () -. t0)
        end
      done;
      (!claimed, !busy)
    in
    if traced then begin
      Trace.with_span
        ~design:(Printf.sprintf "pool/worker%d" wid)
        ~stage:"worker"
        (fun () ->
          let claimed, busy = run_loop () in
          Trace.add_counter "claimed" claimed;
          Trace.add_counter "busy_us" (int_of_float (busy *. 1e6)));
      (* Hand this domain's span buffer to the collector before the
         domain dies — spans recorded by the jobs themselves included. *)
      Trace.flush_domain ()
    end
    else ignore (run_loop ())
  in
  let spawn_and_join () =
    let domains = List.init jobs (fun wid -> Domain.spawn (worker wid)) in
    List.iter Domain.join domains
  in
  if traced then
    Trace.with_span ~design:"pool" ~stage:"map" (fun () ->
        Trace.add_counter "jobs" jobs;
        Trace.add_counter "items" n;
        spawn_and_join ())
  else spawn_and_join ();
  (results, Atomic.get failed)

let map ?jobs f xs =
  let items = Array.of_list xs in
  let n = Array.length items in
  let jobs = clamp_jobs jobs n in
  if n = 0 then []
  else if jobs = 1 then List.map f xs
  else begin
    let results, failed = pooled ~jobs ~abort:true f items in
    (match failed with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    Array.to_list
      (Array.map (function Some (Ok v) -> v | _ -> assert false) results)
  end

let map_result ?jobs f xs =
  let capture x =
    match f x with
    | v -> Ok v
    | exception e -> Error (e, Printexc.get_raw_backtrace ())
  in
  let items = Array.of_list xs in
  let n = Array.length items in
  let jobs = clamp_jobs jobs n in
  if n = 0 then []
  else if jobs = 1 then List.map capture xs
  else begin
    let results, _ = pooled ~jobs ~abort:false f items in
    Array.to_list
      (Array.map (function Some r -> r | None -> assert false) results)
  end

(* Content-keyed in-memory result cache, shared across domains behind a
   mutex.  The mutex guards only table access, never the computation: two
   domains racing on the same missing key both compute, and the first
   store wins so every caller observes one canonical value.  The engine's
   work lists never contain duplicate keys, so in practice each key is
   computed once. *)
module Memo (V : sig
  type t
end) =
struct
  let lock = Mutex.create ()
  let table : (string, V.t) Hashtbl.t = Hashtbl.create 64

  let find_or_compute ~key f =
    match Mutex.protect lock (fun () -> Hashtbl.find_opt table key) with
    | Some v -> v
    | None ->
        let v = f () in
        Mutex.protect lock (fun () ->
            match Hashtbl.find_opt table key with
            | Some winner -> winner
            | None ->
                Hashtbl.replace table key v;
                v)

  let mem key = Mutex.protect lock (fun () -> Hashtbl.mem table key)
  let size () = Mutex.protect lock (fun () -> Hashtbl.length table)
  let clear () = Mutex.protect lock (fun () -> Hashtbl.reset table)
end
