(** Extension experiment: a second benchmark kernel.

    The paper's conclusion cautions that its results "cannot be easily
    extrapolated to more complex benchmarks"; this module probes that with
    a different computational shape — an 8-tap symmetric circular FIR over
    the 64-sample block (windowed sums instead of a butterfly; taps
    [1 3 8 20 20 8 3 1], output [>> 6], clipped to 9 bits) — implemented in
    three of the front ends and run through the same evaluation pipeline. *)

val taps : int array

val reference : Axis.Block.t -> Axis.Block.t
(** Software model (the ground truth for all three implementations). *)

val c_program : Chls.Ast.program
(** The kernel in C (rolled loop, circular index arithmetic). *)

val dslx_program : Dslx.Ir.program
(** The kernel in the DSLX IR (counted folds, statically folded indices). *)

val chisel_design : name:string -> Hw.Netlist.t
(** Generated with the construction eDSL, behind the matrix adapter. *)

val c_design : name:string -> Hw.Netlist.t
(** Sequential HLS flow (Bambu-style defaults). *)

val dslx_design : ?stages:int -> name:string -> unit -> Hw.Netlist.t
(** XLS flow; [stages] defaults to 4. *)

val spec : Flow.spec
(** The FIR's registration with the evaluation pipeline: raw 12-bit
    sample blocks (seed 9) against {!reference}, with the testbench
    budget the memory-bound HLS schedule needs. *)

val designs : (Design.tool * Design.t) list
(** The three FIR implementations as ordinary design points keyed by
    their Registry tool (resolved via [Registry.parse_tool], so
    [--tools] filtering and aliases behave exactly as for the IDCT),
    measurable with [Evaluate.measure ~spec]. *)
