(** Deterministic fault injection into the staged design flow
    (DESIGN.md §11).

    Every recovery path of the resilience layer — typed {!Flow.Error}s,
    [--keep-going] sweeps, the compiled-sim → interpreter fallback — is
    proved by injecting faults at the Flow stage boundaries and watching
    the system degrade exactly as documented.  Injection is off unless a
    {!spec} is {!arm}ed (by a test, the [--fault] flag, or the
    [HLSVHC_FAULT] environment variable), and with nothing armed every
    probe is a cheap no-op, so the measurement pipeline is byte-identical
    to the uninstrumented one.

    A spec is fully deterministic: it names the fault, the targeted
    designs (a substring of the ["Tool/label"] span key; [""] or ["*"]
    matches every design) and a seed.  The seed feeds no wall clock and
    no global RNG — it only selects {e which} block a {!Poison} fault
    corrupts and by how much, so a seeded run is exactly repeatable. *)

type fault =
  | Engine_crash
      (** the compiled simulation engine raises at [create] time; the
          reference interpreter is unaffected, so this is the fault the
          compiled→interpreter fallback recovers from *)
  | Stall
      (** the streaming consumer wedges: the driver's cycle budget is
          clamped to a handful of cycles, so the run ends in the driver's
          own timeout path ([Sim_timeout]) *)
  | Poison
      (** one simulated output block (seed-selected) is corrupted, so the
          bit-true check fails with that block's index ([Not_bit_true]) *)
  | Protocol
      (** an AXI-Stream violation verdict is injected into the monitor's
          report ([Protocol_violation]) *)
  | Crash of string
      (** raise {!Injected} on entry to the named Flow stage — e.g.
          [Crash "synthesize"] is a synthesis failure, [Crash "simulate"]
          an unrecoverable engine failure, [Crash "metrics"] an
          unexpected exception *)

type spec = { fault : fault; target : string; seed : int }

exception Injected of string
(** Raised at an armed injection point; carries a human-readable
    description of the injected fault. *)

val parse : string -> (spec, string) result
(** Parse ["FAULT:TARGET[:SEED]"] — [FAULT] one of [engine-crash],
    [stall], [poison], [protocol] or [crash@STAGE]; [TARGET] a span-key
    substring ([*] for all designs); [SEED] a non-negative integer
    (default 0). *)

val to_string : spec -> string

val arm : spec -> unit
(** Arm one spec process-wide (replacing any previous one).  Workers on
    other domains observe the spec through an atomic, so arm before
    fanning out. *)

val disarm : unit -> unit
val armed : unit -> spec option

val load_env : unit -> (spec option, string) result
(** Arm from [HLSVHC_FAULT] when the variable is set; [Ok None] when it
    is unset, [Error _] when it does not parse. *)

(** {1 Probes}

    Called by {!Flow} (and only by {!Flow}) at the injection points.
    Each probe is a no-op unless the armed spec matches both the design
    and the probe's fault kind. *)

val crash_at_stage : design:string -> stage:string -> unit
(** Raise {!Injected} when a [Crash stage] spec targets this design. *)

val engine_crash : design:string -> compiled:bool -> unit
(** Raise {!Injected} when an [Engine_crash] spec targets this design
    and the engine about to run is the compiled one. *)

val stall_timeout : design:string -> int option -> int option
(** The driver cycle budget: a clamped budget under an armed [Stall]
    spec, the given default otherwise. *)

val poison_blocks : design:string -> Axis.Block.t list -> Axis.Block.t list
(** Under an armed [Poison] spec, corrupt one element of the
    seed-selected block ([seed mod length] — deterministic); otherwise
    return the list unchanged, physically. *)

val inject_violation :
  design:string -> Axis.Monitor.violation list -> Axis.Monitor.violation list
(** Under an armed [Protocol] spec, prepend an injected violation. *)
