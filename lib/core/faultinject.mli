(** Deterministic fault injection into the staged design flow
    (DESIGN.md §11).

    Every recovery path of the resilience layer — typed {!Flow.Error}s,
    [--keep-going] sweeps, the compiled-sim → interpreter fallback — is
    proved by injecting faults at the Flow stage boundaries and watching
    the system degrade exactly as documented.  Injection is off unless a
    {!spec} is {!arm}ed (by a test, the [--fault] flag, or the
    [HLSVHC_FAULT] environment variable), and with nothing armed every
    probe is a cheap no-op, so the measurement pipeline is byte-identical
    to the uninstrumented one.

    A spec is fully deterministic: it names the fault, the targeted
    designs (a substring of the ["Tool/label"] span key; [""] or ["*"]
    matches every design) and a seed.  The seed feeds no wall clock and
    no global RNG — it only selects {e which} block a {!Poison} fault
    corrupts and by how much, so a seeded run is exactly repeatable. *)

type fault =
  | Engine_crash
      (** the compiled simulation engine raises at [create] time; the
          reference interpreter is unaffected, so this is the fault the
          compiled→interpreter fallback recovers from *)
  | Stall
      (** the streaming consumer wedges: the driver's cycle budget is
          clamped to a handful of cycles, so the run ends in the driver's
          own timeout path ([Sim_timeout]) *)
  | Poison
      (** one simulated output block (seed-selected) is corrupted, so the
          bit-true check fails with that block's index ([Not_bit_true]) *)
  | Protocol
      (** an AXI-Stream violation verdict is injected into the monitor's
          report ([Protocol_violation]) *)
  | Crash of string
      (** raise {!Injected} on entry to the named Flow stage — e.g.
          [Crash "synthesize"] is a synthesis failure, [Crash "simulate"]
          an unrecoverable engine failure, [Crash "metrics"] an
          unexpected exception *)
  | Slow_client
      (** the serve daemon treats matching connections as wedged clients:
          their batch read is discarded until the idle deadline fires, so
          the timeout/close path runs deterministically.  [seed] bounds
          how many connections wedge (0 = all, [s] = the first [s]);
          [target] is unused — write [*] *)
  | Conn_drop
      (** the serve daemon drops matching connections after writing
          [seed] response lines, driving the client's typed
          [Closed_mid_response] path; [target] is unused *)
  | Shed
      (** the serve daemon sheds accepted connections with a
          [busy\tretry-after\tMS] answer as if over the in-flight limit;
          [seed] bounds how many (0 = all, [s] = the first [s]), so a
          retrying client deterministically succeeds on attempt [s+1];
          [target] is unused *)

type spec = { fault : fault; target : string; seed : int }

exception Injected of string
(** Raised at an armed injection point; carries a human-readable
    description of the injected fault. *)

val parse : string -> (spec, string) result
(** Parse ["FAULT:TARGET[:SEED]"] — [FAULT] one of [engine-crash],
    [stall], [poison], [protocol], [crash@STAGE], [slow-client],
    [conn-drop] or [shed]; [TARGET] a span-key substring ([*] for all
    designs; unused by the connection faults); [SEED] a non-negative
    integer (default 0). *)

val to_string : spec -> string

val arm : spec -> unit
(** Arm one spec process-wide (replacing any previous one).  Workers on
    other domains observe the spec through an atomic, so arm before
    fanning out. *)

val disarm : unit -> unit
val armed : unit -> spec option

val load_env : unit -> (spec option, string) result
(** Arm from [HLSVHC_FAULT] when the variable is set; [Ok None] when it
    is unset, [Error _] when it does not parse. *)

(** {1 Probes}

    Called by {!Flow} (and only by {!Flow}) at the injection points.
    Each probe is a no-op unless the armed spec matches both the design
    and the probe's fault kind. *)

val crash_at_stage : design:string -> stage:string -> unit
(** Raise {!Injected} when a [Crash stage] spec targets this design. *)

val engine_crash : design:string -> compiled:bool -> unit
(** Raise {!Injected} when an [Engine_crash] spec targets this design
    and the engine about to run is the compiled one. *)

val stall_timeout : design:string -> int option -> int option
(** The driver cycle budget: a clamped budget under an armed [Stall]
    spec, the given default otherwise. *)

val poison_blocks : design:string -> Axis.Block.t list -> Axis.Block.t list
(** Under an armed [Poison] spec, corrupt one element of the
    seed-selected block ([seed mod length] — deterministic); otherwise
    return the list unchanged, physically. *)

val inject_violation :
  design:string -> Axis.Monitor.violation list -> Axis.Monitor.violation list
(** Under an armed [Protocol] spec, prepend an injected violation. *)

(** {1 Connection probes}

    Called by the serve daemon (lib/serve) on its connection paths.
    The counted probes claim one firing per call: with seed [s > 0] the
    first [s] calls after {!arm} return [true], later ones [false];
    seed [0] fires on every call. *)

val slow_client_conn : unit -> bool
(** Claim one [Slow_client] firing: the connection's batch read must be
    treated as wedged (discarded until the idle deadline). *)

val shed_conn : unit -> bool
(** Claim one [Shed] firing: the connection must be answered [busy] and
    closed as if the daemon were over its in-flight limit. *)

val conn_drop_limit : unit -> int option
(** [Some seed] while a [Conn_drop] spec is armed: the number of
    response lines to write before abruptly closing the connection. *)
