(* The staged design-flow core: one measurement = a fixed pipeline of
   named, individually traced stages.  The numbers this computes are
   byte-identical to the pre-refactor monolithic path (the flow tests and
   the recorded artifacts pin this down); the decomposition buys per-stage
   wall times and counters via Trace, on or off. *)

type spec = {
  spec_name : string;
  stimulus : int -> Idct.Block.t list;
  reference : Idct.Block.t -> Idct.Block.t;
  sim_timeout : int option;
}

let idct_spec =
  {
    spec_name = "idct";
    stimulus =
      (fun n ->
        let rng = Idct.Block.Rand.create ~seed:7 () in
        List.init n (fun _ ->
            Idct.Reference.fdct (Idct.Block.Rand.block rng ~lo:(-256) ~hi:255)));
    reference = Idct.Chenwang.idct;
    sim_timeout = None;
  }

let stage_names =
  [ "elaborate"; "validate"; "simulate"; "verify"; "synthesize"; "metrics" ]

let span_key (d : Design.t) =
  Design.tool_name d.Design.tool ^ "/" ^ d.Design.label

let bit_true_check (d : Design.t) ~got ~expected =
  if not (List.for_all2 Idct.Block.equal got expected) then
    failwith
      (Printf.sprintf "design %s/%s is not bit-true"
         (Design.tool_name d.Design.tool)
         d.Design.label)

let measure_uncached ?(matrices = 4) ?(spec = idct_spec) (d : Design.t) :
    Metrics.measured =
  let stage name f = Trace.with_span ~design:(span_key d) ~stage:name f in
  match d.Design.impl with
  | Design.Stream circuit ->
      let circuit =
        stage "elaborate" (fun () ->
            let c = Lazy.force circuit in
            Trace.add_counter "netlist_nodes" (Hw.Netlist.num_nodes c);
            c)
      in
      stage "validate" (fun () -> Hw.Netlist.validate circuit);
      let mats = spec.stimulus matrices in
      let r =
        stage "simulate" (fun () ->
            Trace.add_counter "matrices" matrices;
            Axis.Driver.run ?timeout:spec.sim_timeout ~hook:Trace.add_counter
              circuit mats)
      in
      stage "verify" (fun () ->
          bit_true_check d ~got:r.Axis.Driver.outputs
            ~expected:(List.map spec.reference mats);
          match r.Axis.Driver.violations with
          | [] -> ()
          | v :: _ ->
              failwith
                (Format.asprintf "design %s/%s violates AXI-Stream: %a"
                   (Design.tool_name d.Design.tool)
                   d.Design.label Axis.Monitor.pp_violation v));
      let rep =
        stage "synthesize" (fun () ->
            Hw.Synth.run ~hook:Trace.add_counter circuit)
      in
      stage "metrics" (fun () ->
          {
            Metrics.fmax_mhz = rep.Hw.Synth.fmax_mhz;
            throughput_mops =
              rep.Hw.Synth.fmax_mhz /. float_of_int r.Axis.Driver.periodicity;
            latency = r.Axis.Driver.latency;
            periodicity = r.Axis.Driver.periodicity;
            area = rep.Hw.Synth.area;
            luts_nodsp = rep.Hw.Synth.luts_nodsp;
            ffs_nodsp = rep.Hw.Synth.ffs_nodsp;
            luts = rep.Hw.Synth.luts;
            ffs = rep.Hw.Synth.ffs;
            dsps = rep.Hw.Synth.dsps;
            ios = rep.Hw.Synth.ios;
          })
  | Design.Pcie p ->
      let system =
        stage "elaborate" (fun () ->
            let s = Lazy.force p.Design.system in
            Trace.add_counter "netlist_nodes"
              (Hw.Netlist.num_nodes s.Maxj.Manager.kernel);
            s)
      in
      stage "validate" (fun () ->
          Hw.Netlist.validate system.Maxj.Manager.kernel);
      let r =
        stage "simulate" (fun () -> Maxj.Manager.evaluate system)
      in
      stage "verify" (fun () ->
          (* the kernel's own stream simulator against the reference; the
             monolithic path skipped this for PCIe designs *)
          let mats = spec.stimulus matrices in
          Trace.add_counter "matrices" matrices;
          bit_true_check d ~got:(p.Design.simulate mats)
            ~expected:(List.map spec.reference mats));
      let rep =
        stage "synthesize" (fun () ->
            Hw.Synth.run ~hook:Trace.add_counter system.Maxj.Manager.kernel)
      in
      stage "metrics" (fun () ->
          {
            Metrics.fmax_mhz = r.Maxj.Manager.fmax_mhz;
            throughput_mops = r.Maxj.Manager.throughput_mops;
            latency = r.Maxj.Manager.latency_ticks;
            periodicity = system.Maxj.Manager.ticks_per_op;
            area = rep.Hw.Synth.area;
            luts_nodsp = rep.Hw.Synth.luts_nodsp;
            ffs_nodsp = rep.Hw.Synth.ffs_nodsp;
            luts = rep.Hw.Synth.luts;
            ffs = rep.Hw.Synth.ffs;
            dsps = rep.Hw.Synth.dsps;
            ios = Maxj.Manager.pcie_pins;
          })
