(* The staged design-flow core: one measurement = a fixed pipeline of
   named, individually traced stages.  The numbers this computes are
   byte-identical to the pre-refactor monolithic path (the flow tests and
   the recorded artifacts pin this down); the decomposition buys per-stage
   wall times and counters via Trace, on or off.

   Failures are first-class (DESIGN.md §11): anything that goes wrong in
   a stage is carried by the typed [Error] exception — design key, stage
   name, error class — so keep-going sweeps can record a point's failure
   precisely and the fail-fast path prints one canonical diagnostic. *)

type spec = {
  spec_name : string;
  stimulus : int -> Axis.Block.t list;
  reference : Axis.Block.t -> Axis.Block.t;
  sim_timeout : int option;
  comply : blocks:int -> (Axis.Block.t list -> Axis.Block.t list) -> bool;
}

let bit_true_comply ~stimulus ~reference ~blocks dut_batch =
  let mats = stimulus blocks in
  Axis.Accuracy.bit_true ~reference mats (dut_batch mats)

let idct_spec =
  {
    spec_name = "idct";
    stimulus =
      (fun n ->
        let rng = Axis.Block.Rand.create ~seed:7 () in
        List.init n (fun _ ->
            Idct.Reference.fdct (Axis.Block.Rand.block rng ~lo:(-256) ~hi:255)));
    reference = Idct.Chenwang.idct;
    sim_timeout = None;
    comply = (fun ~blocks dut -> Idct.Ieee1180.compliant_batch ~blocks dut);
  }

let span_design spec (d : Design.t) =
  spec.spec_name ^ ":" ^ Design.tool_name d.Design.tool ^ "/" ^ d.Design.label

let stage_names =
  [ "elaborate"; "validate"; "simulate"; "verify"; "synthesize"; "metrics" ]

let span_key (d : Design.t) =
  Design.tool_name d.Design.tool ^ "/" ^ d.Design.label

(* ---------------- typed flow errors ---------------- *)

type error_class =
  | Not_bit_true of { block_index : int; got : string; expected : string }
  | Protocol_violation of string
  | Sim_timeout of string
  | Engine_failure of string
  | Synth_failure of string
  | Unexpected of string

type error = {
  err_design : string;
  err_stage : string;
  err_class : error_class;
}

exception Error of error

let class_name = function
  | Not_bit_true _ -> "not-bit-true"
  | Protocol_violation _ -> "protocol-violation"
  | Sim_timeout _ -> "sim-timeout"
  | Engine_failure _ -> "engine-failure"
  | Synth_failure _ -> "synth-failure"
  | Unexpected _ -> "unexpected"

let class_detail = function
  | Not_bit_true { block_index; got; expected } ->
      Printf.sprintf "first mismatch at block %d: got %s, expected %s"
        block_index got expected
  | Protocol_violation v -> "violates AXI-Stream: " ^ v
  | Sim_timeout m | Engine_failure m | Synth_failure m | Unexpected m -> m

let pp_error ppf e =
  Format.fprintf ppf "design %s failed at %s [%s]: %s" e.err_design
    e.err_stage (class_name e.err_class) (class_detail e.err_class)

let error_to_string e = Format.asprintf "%a" pp_error e

let () =
  (* One pretty-printer everywhere: an uncaught flow error prints the
     canonical rendering, not a constructor dump. *)
  Printexc.register_printer (function
    | Error e -> Some (error_to_string e)
    | _ -> None)

let error_of_exn ~design = function
  | Error e -> e
  | e ->
      {
        err_design = design;
        err_stage = "-";
        err_class = Unexpected (Printexc.to_string e);
      }

let render_failure_summary errors =
  let buf = Buffer.create 512 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr "failure summary: %d design point%s failed\n" (List.length errors)
    (if List.length errors = 1 then "" else "s");
  pr "  %-28s %-11s %-18s %s\n" "design" "stage" "class" "detail";
  List.iter
    (fun e ->
      pr "  %-28s %-11s %-18s %s\n" e.err_design e.err_stage
        (class_name e.err_class)
        (class_detail e.err_class))
    errors;
  Buffer.contents buf

(* ---------------- bit-true check ---------------- *)

let row_excerpt b row =
  "["
  ^ String.concat " "
      (List.init Axis.Block.size (fun col ->
           string_of_int (Axis.Block.get b ~row ~col)))
  ^ "]"

let bit_true_check (d : Design.t) ~got ~expected =
  let key = span_key d in
  let fail cls =
    raise (Error { err_design = key; err_stage = "verify"; err_class = cls })
  in
  let rec scan i gs es =
    match (gs, es) with
    | [], [] -> ()
    | g :: gs, e :: es ->
        if Axis.Block.equal g e then scan (i + 1) gs es
        else begin
          (* locate the first mismatching element for the excerpt *)
          let pos = ref 0 in
          (try
             for p = 0 to (Axis.Block.size * Axis.Block.size) - 1 do
               let row = p / Axis.Block.size and col = p mod Axis.Block.size in
               if Axis.Block.get g ~row ~col <> Axis.Block.get e ~row ~col
               then begin
                 pos := p;
                 raise Exit
               end
             done
           with Exit -> ());
          let row = !pos / Axis.Block.size in
          fail
            (Not_bit_true
               {
                 block_index = i;
                 got = Printf.sprintf "row %d %s" row (row_excerpt g row);
                 expected = row_excerpt e row;
               })
        end
    | _ ->
        fail
          (Not_bit_true
             {
               block_index = i;
               got = Printf.sprintf "%d blocks" (List.length got);
               expected = Printf.sprintf "%d blocks" (List.length expected);
             })
  in
  scan 0 got expected

(* ---------------- the staged pipeline ---------------- *)

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec at i =
    if i + m > n then false
    else String.sub s i m = sub || at (i + 1)
  in
  at 0

let is_driver_timeout = function
  | Failure m -> contains ~sub:"timeout after" m
  | _ -> false

let exn_message = function
  | Failure m -> m
  | Faultinject.Injected m -> m
  | e -> Printexc.to_string e

(* Classify an untyped exception by the stage it escaped from: the
   simulator's own cycle-budget failure is a timeout, anything else out
   of elaborate/validate/simulate is the engine's fault, synthesize
   failures are the synthesizer's, and the rest is unexpected. *)
let classify ~stage e =
  let msg = exn_message e in
  match stage with
  | "simulate" when is_driver_timeout e -> Sim_timeout msg
  | "elaborate" | "validate" | "simulate" -> Engine_failure msg
  | "synthesize" -> Synth_failure msg
  | _ -> Unexpected msg

let measure_uncached ?(matrices = 4) ~spec (d : Design.t) : Metrics.measured =
  let key = span_key d in
  (* Trace spans carry the kernel-qualified identity so mixed-kernel
     traces stay attributable; fault targeting and error payloads keep
     the plain ["Tool/label"] key, which is the stable user-facing name. *)
  let traced = span_design spec d in
  let stage name f =
    Trace.with_span ~design:traced ~stage:name (fun () ->
        try
          Faultinject.crash_at_stage ~design:key ~stage:name;
          f ()
        with
        | Error _ as e -> raise e
        | e ->
            let bt = Printexc.get_raw_backtrace () in
            Printexc.raise_with_backtrace
              (Error
                 {
                   err_design = key;
                   err_stage = name;
                   err_class = classify ~stage:name e;
                 })
              bt)
  in
  match d.Design.impl with
  | Design.Stream circuit ->
      let circuit =
        stage "elaborate" (fun () ->
            let c = Design.force circuit in
            Trace.add_counter "netlist_nodes" (Hw.Netlist.num_nodes c);
            c)
      in
      stage "validate" (fun () -> Hw.Netlist.validate circuit);
      let mats = spec.stimulus matrices in
      let r =
        stage "simulate" (fun () ->
            Trace.add_counter "matrices" matrices;
            let timeout =
              Faultinject.stall_timeout ~design:key spec.sim_timeout
            in
            let run engine =
              Faultinject.engine_crash ~design:key
                ~compiled:(engine = Axis.Driver.Compiled);
              Axis.Driver.run ~engine ?timeout ~hook:Trace.add_counter
                circuit mats
            in
            let r =
              try run Axis.Driver.Compiled
              with e when not (is_driver_timeout e) ->
                (* Retry with degradation: one compiled-engine bug must
                   not block artifact regeneration, so the design is
                   re-run once on the reference interpreter.  A timeout
                   is not an engine failure — it would only time out
                   again, slower. *)
                Trace.add_counter "engine_fallback" 1;
                Printf.eprintf
                  "hlsvhc: %s: compiled engine failed (%s); retrying on \
                   the reference interpreter\n\
                   %!"
                  key (exn_message e);
                run Axis.Driver.Reference
            in
            {
              r with
              Axis.Driver.outputs =
                Faultinject.poison_blocks ~design:key r.Axis.Driver.outputs;
            })
      in
      stage "verify" (fun () ->
          bit_true_check d ~got:r.Axis.Driver.outputs
            ~expected:(List.map spec.reference mats);
          match
            Faultinject.inject_violation ~design:key r.Axis.Driver.violations
          with
          | [] -> ()
          | v :: _ ->
              raise
                (Error
                   {
                     err_design = key;
                     err_stage = "verify";
                     err_class =
                       Protocol_violation
                         (Format.asprintf "%a" Axis.Monitor.pp_violation v);
                   }));
      let rep =
        stage "synthesize" (fun () ->
            Hw.Synth.run ~hook:Trace.add_counter circuit)
      in
      stage "metrics" (fun () ->
          {
            Metrics.fmax_mhz = rep.Hw.Synth.fmax_mhz;
            throughput_mops =
              rep.Hw.Synth.fmax_mhz /. float_of_int r.Axis.Driver.periodicity;
            latency = r.Axis.Driver.latency;
            periodicity = r.Axis.Driver.periodicity;
            area = rep.Hw.Synth.area;
            luts_nodsp = rep.Hw.Synth.luts_nodsp;
            ffs_nodsp = rep.Hw.Synth.ffs_nodsp;
            luts = rep.Hw.Synth.luts;
            ffs = rep.Hw.Synth.ffs;
            dsps = rep.Hw.Synth.dsps;
            ios = rep.Hw.Synth.ios;
          })
  | Design.Pcie p ->
      let system =
        stage "elaborate" (fun () ->
            let s = Design.force p.Design.system in
            Trace.add_counter "netlist_nodes"
              (Hw.Netlist.num_nodes s.Maxj.Manager.kernel);
            s)
      in
      stage "validate" (fun () ->
          Hw.Netlist.validate system.Maxj.Manager.kernel);
      let r =
        stage "simulate" (fun () -> Maxj.Manager.evaluate system)
      in
      stage "verify" (fun () ->
          (* the kernel's own stream simulator against the reference; the
             monolithic path skipped this for PCIe designs *)
          let mats = spec.stimulus matrices in
          Trace.add_counter "matrices" matrices;
          bit_true_check d
            ~got:(Faultinject.poison_blocks ~design:key (p.Design.simulate mats))
            ~expected:(List.map spec.reference mats));
      let rep =
        stage "synthesize" (fun () ->
            Hw.Synth.run ~hook:Trace.add_counter system.Maxj.Manager.kernel)
      in
      stage "metrics" (fun () ->
          {
            Metrics.fmax_mhz = r.Maxj.Manager.fmax_mhz;
            throughput_mops = r.Maxj.Manager.throughput_mops;
            latency = r.Maxj.Manager.latency_ticks;
            periodicity = system.Maxj.Manager.ticks_per_op;
            area = rep.Hw.Synth.area;
            luts_nodsp = rep.Hw.Synth.luts_nodsp;
            ffs_nodsp = rep.Hw.Synth.ffs_nodsp;
            luts = rep.Hw.Synth.luts;
            ffs = rep.Hw.Synth.ffs;
            dsps = rep.Hw.Synth.dsps;
            ios = Maxj.Manager.pcie_pins;
          })
