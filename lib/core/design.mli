(** Uniform descriptor of one evaluated design point. *)

type tool = Verilog | Chisel | Bsv | Dslx | Maxj | Bambu | Vivado_hls

type pcie = {
  system : Maxj.Manager.system Lazy.t;
  simulate : Axis.Block.t list -> Axis.Block.t list;
      (** the design's own bit-true stream simulator — compliance and the
          flow's verify stage dispatch on the design itself *)
}

type impl =
  | Stream of Hw.Netlist.t Lazy.t
      (** AXI-Stream wrapped circuit (everything except MaxJ) *)
  | Pcie of pcie  (** MaxCompiler system: kernel + PCIe manager *)

type t = {
  tool : tool;
  label : string;          (** e.g. "initial", "optimized", "stages=4" *)
  config_desc : string;    (** tool options in force *)
  loc_fu : int;            (** L^FU: functional-unit source lines *)
  loc_axi : int;           (** L^AXI: hand-written adapter lines (0 if generated) *)
  loc_conf : int;          (** L^Conf: configuration lines *)
  impl : impl;
  listing : string;        (** the counted source text *)
}

val loc : t -> int
(** [L = L^FU + L^AXI + L^Conf]. *)

val force : 'a Lazy.t -> 'a
(** Domain-safe forcing of a shared lazy (circuit, system): builds are
    serialized under one process-wide lock, so concurrent evaluations of
    one registry design never hit [Lazy]'s concurrent-force exception;
    once built, reads are lock-free. *)

val language_name : tool -> string
val tool_name : tool -> string
val all_tools : tool list
(** In the paper's column order. *)
