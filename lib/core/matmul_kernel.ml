(* Third benchmark kernel: a blocked 8x8 matrix multiply over the same
   64-element block framing as the IDCT and the FIR.  The input block is
   an 8x8 matrix X of 12-bit samples; the output is X * W for a fixed
   8x8 weight matrix W, scaled by [>> 5] and clipped to 9 bits:

     out[r][c] = clip9((sum_k X[r][k] * W[k][c]) >> 5)

   The weights are small signed constants generated arithmetically,
   [w k c = ((3k + 5c) land 7) - 3], so the rolled HLS loops can compute
   them with index arithmetic instead of a coefficient ROM — every value
   in [-3, 4] occurs, including negatives and zero.  Ranges: |X| <= 2048
   and |w| <= 4 give |acc| <= 65536, so 32-bit accumulators never
   overflow and the scaled product covers the full 9-bit output range. *)

let clip9 v = if v < -256 then -256 else if v > 255 then 255 else v

let reference blk =
  Array.init 64 (fun i ->
      let c = i land 7 and base = i land 56 in
      let acc = ref 0 in
      for k = 0 to 7 do
        acc := !acc + (blk.(base + k) * ((((3 * k) + (5 * c)) land 7) - 3))
      done;
      clip9 (!acc asr 5))

(* ---------------- C ---------------- *)

let c_program =
  let open Chls.Ast in
  let v x = Var x in
  let i k = Int k in
  (* w(k, i&7) computed in index arithmetic; one variable-by-variable
     multiply per term occupies the shared multiplier unit. *)
  let weight_expr k =
    Bin
      ( Sub,
        Bin
          ( And,
            Bin (Add, i (3 * k), Bin (Mul, i 5, Bin (And, v "i", i 7))),
            i 7 ),
        i 3 )
  in
  let term k =
    Bin
      ( Mul,
        weight_expr k,
        Load ("x", Bin (Add, Bin (And, v "i", i 56), i k)) )
  in
  let acc =
    List.fold_left (fun a k -> Bin (Add, a, term k)) (term 0)
      [ 1; 2; 3; 4; 5; 6; 7 ]
  in
  let clip_fn =
    {
      fname = "clip9";
      params = [ PScalar ("v", int_t) ];
      ret = Some int_t;
      locals = [];
      arrays = [];
      body =
        [
          Return
            (Cond
               ( Bin (Lt, v "v", i (-256)),
                 i (-256),
                 Cond (Bin (Gt, v "v", i 255), i 255, v "v") ));
        ];
    }
  in
  let top =
    {
      fname = "matmul";
      params = [ PArray ("blk", short_t, 64) ];
      ret = None;
      locals = [ ("i", int_t) ];
      arrays = [ ("x", short_t, 64) ];
      body =
        [
          (* snapshot the input: every output row reads the whole input row *)
          For
            {
              ivar = "i";
              bound = 64;
              body = [ Store ("x", v "i", Load ("blk", v "i")) ];
            };
          For
            {
              ivar = "i";
              bound = 64;
              body =
                [
                  Store
                    ( "blk",
                      v "i",
                      Call ("clip9", [ Bin (Shr, acc, i 5) ]) );
                ];
            };
        ];
    }
  in
  { funcs = [ clip_fn; top ]; top = "matmul" }

(* ---------------- DSLX ---------------- *)

let dslx_program =
  let open Dslx.Ir in
  let l v = Lit { width = 32; value = v } in
  (* The loop index is data here (the weight depends on the output
     column), so it must be cast to a signal before arithmetic — the
     DSLX rule the lowerer enforces. *)
  let weight_expr k =
    Bin
      ( Hw.Netlist.Sub,
        Bin
          ( Hw.Netlist.And,
            Bin
              ( Hw.Netlist.Add,
                l (3 * k),
                Bin
                  ( Hw.Netlist.Mul,
                    l 5,
                    Bin
                      ( Hw.Netlist.And,
                        Cast (Var "i", 32, `Signed),
                        l 7 ) ) ),
            l 7 ),
        l 3 )
  in
  let term k =
    Bin
      ( Hw.Netlist.Mul,
        weight_expr k,
        Cast
          ( Index
              ( Var "m",
                Bin
                  ( Hw.Netlist.Add,
                    Bin (Hw.Netlist.And, Var "i", l 56),
                    l k ) ),
            32,
            `Signed ) )
  in
  let acc =
    List.fold_left
      (fun a k -> Bin (Hw.Netlist.Add, a, term k))
      (term 0) [ 1; 2; 3; 4; 5; 6; 7 ]
  in
  let clip e =
    Cast
      ( If
          ( Bin (Hw.Netlist.Lt Hw.Netlist.Signed, e, l (-256)),
            l (-256),
            If (Bin (Hw.Netlist.Lt Hw.Netlist.Signed, l 255, e), l 255, e) ),
        9,
        `Signed )
  in
  let top =
    {
      fname = "matmul";
      params = [ { pname = "m"; pty = Array (Bits 12, 64) } ];
      ret = Array (Bits 9, 64);
      body =
        For
          {
            var = "i";
            count = 64;
            acc = "out";
            init = ArrayLit (List.init 64 (fun _ -> Lit { width = 9; value = 0 }));
            body =
              Update
                (Var "out", Var "i", clip (Bin (Hw.Netlist.Sra, acc, l 5)));
          };
    }
  in
  { fns = [ top ]; top = "matmul" }

(* ---------------- Chisel-style generator ---------------- *)

(* Each of the 64 outputs has a static (row, col), so the weights are
   plain constants here — the construction eDSL's minimal-width [mulc]
   datapaths, exactly as the IDCT generator does with its cosines. *)
let chisel_kernel b (mid : Hw.Builder.s array) =
  Array.init 64 (fun i ->
      let c = i land 7 and base = i land 56 in
      let acc =
        let term k =
          Chisel.Dsl.mulc b
            ((((3 * k) + (5 * c)) land 7) - 3)
            (Chisel.Dsl.of_raw mid.(base + k))
        in
        let rec sum k a =
          if k = 8 then a else sum (k + 1) (Chisel.Dsl.add b a (term k))
        in
        sum 1 (term 0)
      in
      Chisel.Dsl.raw
        (Chisel.Dsl.resize b
           (Chisel.Dsl.clamp b ~lo:(-256) ~hi:255 (Chisel.Dsl.asr_ b acc 5))
           Axis.Stream.out_width))

let chisel_design ~name =
  Axis.Adapter.wrap_matrix_kernel ~name ~latency:0 ~kernel:chisel_kernel ()

let c_design ~name =
  Chls.Tool.sequential_circuit ~name Chls.Schedule.default_config
    Chls.Transform.default_options c_program

let dslx_design ?(stages = 4) ~name () =
  let comb = Dslx.Lower.circuit dslx_program in
  let net = if stages = 0 then comb else Hw.Pipeline.retime ~stages comb in
  let kernel kb mid =
    let inputs =
      Array.to_list (Array.mapi (fun k s -> (Printf.sprintf "m_%d" k, s)) mid)
    in
    let outs = Hw.Instantiate.stamp kb net ~inputs in
    Array.init 64 (fun k -> List.assoc (Printf.sprintf "out_%d" k) outs)
  in
  Axis.Adapter.wrap_matrix_kernel ~name ~latency:stages ~kernel ()

(* ---------------- registration ---------------- *)

let stimulus n =
  let rng = Axis.Block.Rand.create ~seed:11 () in
  List.init n (fun _ -> Axis.Block.Rand.block rng ~lo:(-2048) ~hi:2047)

let spec =
  {
    Flow.spec_name = "matmul8";
    stimulus;
    reference;
    sim_timeout = Some 60000;
    comply = Flow.bit_true_comply ~stimulus ~reference;
  }

let chisel_listing =
  "class Matmul8 extends Module {\n\
  \  val io = IO(new Bundle { val m = Input(Vec(64, SInt(12.W)))\n\
  \                           val y = Output(Vec(64, SInt(9.W))) })\n\
  \  def w(k: Int, c: Int) = (((3 * k + 5 * c) & 7) - 3).S\n\
  \  for (r <- 0 until 8; c <- 0 until 8) {\n\
  \    val acc = (0 until 8).map(k => io.m(8 * r + k) * w(k, c)).reduce(_ +& _)\n\
  \    io.y(8 * r + c) := clip9(acc >> 5)\n\
  \  }\n\
   }\n"

let matmul_design tool config_desc listing circuit =
  {
    Design.tool;
    label = "matmul";
    config_desc;
    loc_fu = Loc.count listing;
    loc_axi = 0;
    loc_conf = 0;
    impl = Design.Stream circuit;
    listing;
  }

let tool_of name =
  match Registry.parse_tool name with
  | Some t -> t
  | None -> invalid_arg (Registry.unknown_tool_msg name)

let designs =
  [
    ( tool_of "chisel",
      matmul_design Design.Chisel "construction eDSL" chisel_listing
        (lazy (chisel_design ~name:"matmul_hc")) );
    ( tool_of "xls",
      matmul_design Design.Dslx "--pipeline_stages=4"
        (Dslx.Emit.emit dslx_program)
        (lazy (dslx_design ~stages:4 ~name:"matmul_xls" ())) );
    ( tool_of "bambu",
      matmul_design Design.Bambu "Bambu-style defaults"
        (Chls.Cprint.emit c_program)
        (lazy (c_design ~name:"matmul_c")) );
  ]
