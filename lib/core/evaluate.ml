let test_matrices n =
  let rng = Idct.Block.Rand.create ~seed:7 () in
  List.init n (fun _ ->
      Idct.Reference.fdct (Idct.Block.Rand.block rng ~lo:(-256) ~hi:255))

(* Content key of a design: tool and label identify the sweep point, the
   digest covers the configuration and full source listing, so two designs
   that differ only in construction share nothing and a re-registered
   design with identical content hits the cache. *)
let design_key (d : Design.t) =
  Printf.sprintf "%s/%s#%s"
    (Design.tool_name d.Design.tool)
    d.Design.label
    (Digest.to_hex
       (Digest.string (d.Design.config_desc ^ "\x00" ^ d.Design.listing)))

let measure_uncached ?(matrices = 4) (d : Design.t) : Metrics.measured =
  match d.Design.impl with
  | Design.Stream circuit ->
      let circuit = Lazy.force circuit in
      let mats = test_matrices matrices in
      let expected = List.map Idct.Chenwang.idct mats in
      let r = Axis.Driver.run circuit mats in
      if not (List.for_all2 Idct.Block.equal r.Axis.Driver.outputs expected)
      then
        failwith
          (Printf.sprintf "design %s/%s is not bit-true"
             (Design.tool_name d.Design.tool)
             d.Design.label);
      (match r.Axis.Driver.violations with
      | [] -> ()
      | v :: _ ->
          failwith
            (Format.asprintf "design %s/%s violates AXI-Stream: %a"
               (Design.tool_name d.Design.tool)
               d.Design.label Axis.Monitor.pp_violation v));
      let rep = Hw.Synth.run circuit in
      {
        Metrics.fmax_mhz = rep.Hw.Synth.fmax_mhz;
        throughput_mops =
          rep.Hw.Synth.fmax_mhz /. float_of_int r.Axis.Driver.periodicity;
        latency = r.Axis.Driver.latency;
        periodicity = r.Axis.Driver.periodicity;
        area = rep.Hw.Synth.area;
        luts_nodsp = rep.Hw.Synth.luts_nodsp;
        ffs_nodsp = rep.Hw.Synth.ffs_nodsp;
        luts = rep.Hw.Synth.luts;
        ffs = rep.Hw.Synth.ffs;
        dsps = rep.Hw.Synth.dsps;
        ios = rep.Hw.Synth.ios;
      }
  | Design.Pcie system ->
      let system = Lazy.force system in
      let r = Maxj.Manager.evaluate system in
      let rep = Hw.Synth.run system.Maxj.Manager.kernel in
      {
        Metrics.fmax_mhz = r.Maxj.Manager.fmax_mhz;
        throughput_mops = r.Maxj.Manager.throughput_mops;
        latency = r.Maxj.Manager.latency_ticks;
        periodicity = system.Maxj.Manager.ticks_per_op;
        area = rep.Hw.Synth.area;
        luts_nodsp = rep.Hw.Synth.luts_nodsp;
        ffs_nodsp = rep.Hw.Synth.ffs_nodsp;
        luts = rep.Hw.Synth.luts;
        ffs = rep.Hw.Synth.ffs;
        dsps = rep.Hw.Synth.dsps;
        ios = Maxj.Manager.pcie_pins;
      }

module Measure_cache = Parallel.Memo (struct
  type t = Metrics.measured
end)

let measure ?(matrices = 4) (d : Design.t) : Metrics.measured =
  Measure_cache.find_or_compute
    ~key:(Printf.sprintf "%s@%d" (design_key d) matrices)
    (fun () -> measure_uncached ~matrices d)

let clear_measure_cache = Measure_cache.clear

(* Map [measure] over independent designs on the domain pool.  Each
   design's lazy circuit is forced inside its own job, so no builder state
   is shared across domains; results come back in input order. *)
let measure_all ?jobs ?(matrices = 4) designs =
  Parallel.map ?jobs (fun d -> measure ~matrices d) designs

let check_compliance ?(blocks = 500) (d : Design.t) =
  match d.Design.impl with
  | Design.Stream circuit ->
      let circuit = Lazy.force circuit in
      let dut blk = Axis.Driver.transform circuit blk in
      Idct.Ieee1180.compliant ~blocks dut
  | Design.Pcie _ ->
      (* The MaxJ kernels are checked by their own stream simulators. *)
      let mats = test_matrices blocks in
      let got = Maxj.Idct_maxj.simulate_initial mats in
      List.for_all2 Idct.Block.equal got (List.map Idct.Chenwang.idct mats)

(* The compliance sweep: every design checked on the domain pool, results
   paired with their design in input order. *)
let compliance_all ?jobs ?(blocks = 500) designs =
  Parallel.map ?jobs (fun d -> (d, check_compliance ~blocks d)) designs
