(* Content key of a design: tool and label identify the sweep point, the
   digest covers the configuration and full source listing, so two designs
   that differ only in construction share nothing and a re-registered
   design with identical content hits the cache. *)
let design_key (d : Design.t) =
  Printf.sprintf "%s/%s#%s"
    (Design.tool_name d.Design.tool)
    d.Design.label
    (Digest.to_hex
       (Digest.string (d.Design.config_desc ^ "\x00" ^ d.Design.listing)))

module Measure_cache = Parallel.Memo (struct
  type t = Metrics.measured
end)

let measure_key ~matrices ~(spec : Flow.spec) d =
  Printf.sprintf "%s/%s@%d" spec.Flow.spec_name (design_key d) matrices

let is_cached ?(matrices = 4) ~spec d =
  Measure_cache.mem (measure_key ~matrices ~spec d)

(* The persistent layer beneath the in-process memo: a content-addressed
   result store (Store, in lib/store) registers itself here, so [core]
   never depends on the store's on-disk format.  The backend is consulted
   only on a memo miss, and a fresh measurement is written through to it;
   with no backend attached (the default) the measure path is exactly the
   historical one — all paper artifacts byte-identical. *)
type store_backend = {
  sb_name : string;  (** for diagnostics, e.g. the store directory *)
  sb_find : string -> Metrics.measured option;
  sb_add : string -> Metrics.measured -> unit;
}

let store_backend : store_backend option Atomic.t = Atomic.make None
let set_store_backend b = Atomic.set store_backend b
let active_store_backend () = Atomic.get store_backend

(* The measurement itself is Flow.measure_uncached — the staged
   elaborate/validate/simulate/verify/synthesize/metrics pipeline.  This
   layer adds the content-keyed cache and the root "measure" span, whose
   cache_hit/cache_miss (memo) and store_hit/store_miss (persistent
   backend) counters let a trace distinguish warm reads from cold
   pipeline runs. *)
let measure ?(matrices = 4) ~(spec : Flow.spec) (d : Design.t) :
    Metrics.measured =
  let key = measure_key ~matrices ~spec d in
  Trace.with_span ~design:(Flow.span_design spec d) ~stage:"measure" (fun () ->
      if Trace.enabled () then
        Trace.add_counter
          (if Measure_cache.mem key then "cache_hit" else "cache_miss")
          1;
      Measure_cache.find_or_compute ~key (fun () ->
          match Atomic.get store_backend with
          | None -> Flow.measure_uncached ~matrices ~spec d
          | Some sb -> (
              match sb.sb_find key with
              | Some m ->
                  if Trace.enabled () then Trace.add_counter "store_hit" 1;
                  m
              | None ->
                  if Trace.enabled () then Trace.add_counter "store_miss" 1;
                  let m = Flow.measure_uncached ~matrices ~spec d in
                  sb.sb_add key m;
                  m)))

(* Clears the in-process memo only: entries in an attached persistent
   store survive (the store is the whole point — results outliving the
   process), which the store coherence tests pin down. *)
let clear_measure_cache = Measure_cache.clear

(* Map [measure] over independent designs on the domain pool.  Each
   design's lazy circuit is forced inside its own job, so no builder state
   is shared across domains; results come back in input order. *)
let measure_all ?jobs ?(matrices = 4) ~spec designs =
  Parallel.map ?jobs (fun d -> measure ~matrices ~spec d) designs

(* The keep-going sweep: every design runs to completion, failed points
   come back as their typed flow error instead of aborting the batch. *)
let measure_all_result ?jobs ?(matrices = 4) ~spec designs =
  List.map2
    (fun d -> function
      | Ok m -> Ok m
      | Error (e, _bt) -> Error (Flow.error_of_exn ~design:(Flow.span_key d) e))
    designs
    (Parallel.map_result ?jobs (fun d -> measure ~matrices ~spec d) designs)

let check_compliance ?(blocks = 500) ~(spec : Flow.spec) (d : Design.t) =
  Trace.with_span ~design:(Flow.span_design spec d) ~stage:"comply" (fun () ->
      Trace.add_counter "blocks" blocks;
      match d.Design.impl with
      | Design.Stream circuit ->
          let circuit = Design.force circuit in
          (* Each compliance block is an independent single-matrix run, so
             the whole sweep maps onto the levelized engine's batch
             dimension: the driver spreads the blocks across simulation
             lanes and one schedule sweep advances all of them.  The
             verdict is identical to per-block [Driver.transform] calls
             (Ieee1180.measure_batch preserves the draw and accumulation
             order); only the wall time and the [sim_batch] counter
             differ. *)
          Trace.add_counter "sim_batch" (min blocks 64);
          let dut_batch blks = Axis.Driver.transform_batch circuit blks in
          spec.Flow.comply ~blocks dut_batch
      | Design.Pcie p ->
          (* The MaxJ kernels are checked by their own stream simulators —
             dispatching on the design under test, so the optimized kernel
             is exercised with its own row-per-tick simulation (always
             bit-true against the kernel reference: the statistical
             procedure needs the batched AXI-Stream path). *)
          let mats = spec.Flow.stimulus blocks in
          let got = p.Design.simulate mats in
          List.for_all2 Axis.Block.equal got (List.map spec.Flow.reference mats))

(* The compliance sweep: every design checked on the domain pool, results
   paired with their design in input order. *)
let compliance_all ?jobs ?(blocks = 500) ~spec designs =
  Parallel.map ?jobs (fun d -> (d, check_compliance ~blocks ~spec d)) designs

let compliance_all_result ?jobs ?(blocks = 500) ~spec designs =
  List.map2
    (fun d -> function
      | Ok ok -> (d, Ok ok)
      | Error (e, _bt) ->
          (d, Error (Flow.error_of_exn ~design:(Flow.span_key d) e)))
    designs
    (Parallel.map_result ?jobs (fun d -> check_compliance ~blocks ~spec d) designs)
