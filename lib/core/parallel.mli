(** Domain-pool evaluation engine.

    Evaluating the paper's artifacts means measuring ~100 independent
    synthesized circuits (Fig. 1) — an embarrassingly parallel workload.
    [map] fans jobs out over a fixed-size pool of domains with
    deterministic result ordering; {!Memo} is the shared, mutex-protected
    result cache the evaluation pipeline layers on top.

    Jobs must not share mutable builder state across domains: a design's
    lazy circuit constructor is forced inside the single job that owns it
    (see DESIGN.md §9). *)

val default_jobs : unit -> int
(** The [HLSVHC_JOBS] environment variable when set to a positive
    integer, otherwise [Domain.recommended_domain_count ()].  A set but
    invalid [HLSVHC_JOBS] falls back to the domain count with a one-time
    stderr warning. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ?jobs f xs] is [List.map f xs] computed on a pool of
    [min jobs (List.length xs)] domains ([default_jobs ()] when [jobs] is
    omitted; [~jobs:1] runs inline on the calling domain).  Results keep
    input order regardless of completion order.  If a job raises, the
    pool stops claiming new jobs, every domain is joined (no deadlock),
    and the first exception is re-raised on the caller.

    When {!Trace} is enabled, a pooled map records a ["pool"/"map"] span
    (counters [jobs], [items]) on the caller and one
    ["pool/workerN"/"worker"] span per domain (counters [claimed],
    [busy_us]); each worker flushes its domain-local span buffer before
    exiting, so traces recorded inside jobs survive the domain. *)

val map_result :
  ?jobs:int ->
  ('a -> 'b) ->
  'a list ->
  ('b, exn * Printexc.raw_backtrace) result list
(** The keep-going [map]: every item runs to completion regardless of
    other items' failures, and each slot carries its own outcome — the
    job's value, or the exception (with backtrace) it raised.  Result
    order is the input order for any job count, and the call itself
    never raises on a failing job.  Shares the pool skeleton, trace
    spans and [~jobs:1] inline path with {!map}. *)

module Memo (V : sig
  type t
end) : sig
  val find_or_compute : key:string -> (unit -> V.t) -> V.t
  (** Return the cached value for [key], or run the thunk and cache its
      result.  The lock is never held during the computation; when two
      domains race on one missing key, the first store wins and both
      return the canonical value. *)

  val mem : string -> bool
  val size : unit -> int
  val clear : unit -> unit
end
