(** The kernel registration table (DESIGN.md §15).

    {!Registry} organises the seven tool flows as first-class modules;
    this table does the same one level up, for benchmark kernels.  A
    {!KERNEL} bundles the kernel's {!Flow.spec} (stimulus, golden
    reference, compliance procedure, timeout policy) with its per-tool
    design {!inventory} and Fig. 1 axis labelling.  Fig1, Table2,
    comply, sweep, {!Dse.Space} and the serve protocol all iterate
    {!all}, so adding a kernel is data plus one generator per tool.

    Three kernels are registered: the paper's IDCT (all 7 tools, the
    byte-pinned baseline artifacts), the FIR of {!Second_kernel} and the
    blocked matmul of {!Matmul_kernel} (3 tools each). *)

type inventory = {
  inv_tool : Design.tool;
  inv_initial : Design.t;
  inv_optimized : Design.t;
  inv_sweep : Design.t list;  (** every configuration (the Fig. 1 points) *)
  inv_space : Registry.axis list list;
      (** [inv_sweep]'s knob space as chart data, tiling the sweep
          row-major exactly as {!Registry.TOOL.space} does *)
  inv_delta_loc : int;  (** Table II "Modification dL" *)
}

module type KERNEL = sig
  val spec : Flow.spec

  val aliases : string list
  (** lower-case CLI names accepted for [--kernel] *)

  val description : string

  val perf_label : string
  (** the Fig. 1 vertical-axis label *)

  val inventories : inventory list
  (** per-tool design inventories; the first entry's tool anchors
      Table II's relative columns *)
end

val all : (module KERNEL) list

val idct : (module KERNEL)
(** The paper's kernel — the default wherever [--kernel] is omitted. *)

val name : (module KERNEL) -> string
(** The kernel's canonical name: its [spec.spec_name] (also the
    store-key prefix, so per-kernel cache entries stay disjoint). *)

val spec : (module KERNEL) -> Flow.spec
val description : (module KERNEL) -> string
val perf_label : (module KERNEL) -> string
val inventories : (module KERNEL) -> inventory list

val find : string -> (module KERNEL) option
(** Lookup by canonical [spec_name]. *)

val parse_kernel : string -> (module KERNEL) option
(** Case-insensitive lookup by CLI alias ([--kernel], serve requests). *)

val kernel_names : unit -> string list

val unknown_kernel_msg : string -> string
(** ["unknown kernel \"x\" (kernels: idct, fir8, matmul8)"] — the
    diagnostic shared by the CLI and the serve request parser. *)

val tools : (module KERNEL) -> Design.tool list
(** The tools with an inventory for this kernel, registration order. *)

val inventory : (module KERNEL) -> Design.tool -> inventory option

val initial : (module KERNEL) -> Design.tool -> Design.t
(** @raise Invalid_argument if the kernel has no such tool (message
    lists the tools it does have); same for the accessors below. *)

val optimized : (module KERNEL) -> Design.tool -> Design.t
val sweep : (module KERNEL) -> Design.tool -> Design.t list
val space : (module KERNEL) -> Design.tool -> Registry.axis list list
val delta_loc : (module KERNEL) -> Design.tool -> int

val all_designs : (module KERNEL) -> Design.t list
(** Every sweep point of every tool, registration order. *)

val legend_line : (module KERNEL) -> string
(** The Fig. 1 legend line for the kernel's tools (trailing newline). *)

val caption : (module KERNEL) -> string
(** The Fig. 1 axis caption built from [perf_label]. *)
