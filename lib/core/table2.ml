type column = {
  design : Design.t;
  measured : Metrics.measured;
  loc : int;
  alpha : float;
  quality : float;
}

type row = {
  tool : Design.tool;
  initial : column;
  optimized : column;
  delta_l : int;
  controllability : float;
  flexibility : float;
}

let compute_row ~kernel ~spec verilog_initial_loc verilog_best_q tool =
  let col d =
    let m = Evaluate.measure ~spec d in
    {
      design = d;
      measured = m;
      loc = Design.loc d;
      alpha =
        Metrics.automation ~verilog_loc:verilog_initial_loc ~loc:(Design.loc d);
      quality = Metrics.quality m;
    }
  in
  let initial = col (Kernel.initial kernel tool) in
  let optimized = col (Kernel.optimized kernel tool) in
  let delta_l = Kernel.delta_loc kernel tool in
  {
    tool;
    initial;
    optimized;
    delta_l;
    controllability =
      Metrics.controllability ~best:optimized.quality
        ~verilog_best:verilog_best_q;
    flexibility =
      Metrics.flexibility ~best:optimized.quality ~initial:initial.quality
        ~delta_loc:delta_l;
  }

(* One memoized table per kernel; all access is from the caller's
   domain (the fan-out happens inside measure_all), so a plain table
   suffices, as the single ref did before. *)
let computed : (string, row list) Hashtbl.t = Hashtbl.create 4

let compute_outcomes ?jobs ?tools ?(kernel = Kernel.idct) ~keep_going () =
  let spec = Kernel.spec kernel in
  let kernel_tools = Kernel.tools kernel in
  (* The first registered tool anchors the relative indicators — Verilog
     for the paper's IDCT, the construction eDSL for the extension
     kernels. *)
  let anchor = List.hd kernel_tools in
  let selected =
    match tools with
    | None -> kernel_tools
    | Some ts -> List.filter (fun t -> List.mem t ts) kernel_tools
  in
  let restrict rows =
    List.filter (fun r -> List.mem r.tool selected) rows
  in
  match Hashtbl.find_opt computed (Kernel.name kernel) with
  | Some rows -> (restrict rows, [])
  | None ->
      (* Warm the measurement cache over every initial/optimized design on
         the domain pool; the sequential row construction below then reads
         measurements back from the cache.  Keep-going warms with
         [measure_all_result] so one failed design costs its own tool's
         column pair, not the table.  A [--tools] restriction still warms
         the anchor pair: alpha and C_Q are normalized against it. *)
      let warm_tools =
        if List.mem anchor selected then selected else anchor :: selected
      in
      let designs =
        List.concat_map
          (fun t -> [ Kernel.initial kernel t; Kernel.optimized kernel t ])
          warm_tools
      in
      let failures =
        if keep_going then
          List.filter_map
            (function Ok _ -> None | Error (e : Flow.error) -> Some e)
            (Evaluate.measure_all_result ?jobs ~spec designs)
        else begin
          ignore (Evaluate.measure_all ?jobs ~spec designs);
          []
        end
      in
      let design_failed d =
        List.exists
          (fun (e : Flow.error) -> e.Flow.err_design = Flow.span_key d)
          failures
      in
      let tool_ok tool =
        (not (design_failed (Kernel.initial kernel tool)))
        && not (design_failed (Kernel.optimized kernel tool))
      in
      let rows =
        if not (tool_ok anchor) then
          (* Every indicator is normalized against the anchor columns
             (alpha, C_Q); without them there is no table to assemble. *)
          []
        else begin
          let v_init = Kernel.initial kernel anchor in
          let v_opt = Kernel.optimized kernel anchor in
          (* The paper normalizes alpha by the Verilog LOC of the matching
             configuration; we use the initial anchor LOC for the initial
             columns and the optimized anchor LOC for the optimized ones.
             The anchor optimum anchors C_Q at 100%. *)
          let v_best_q = Metrics.quality (Evaluate.measure ~spec v_opt) in
          List.filter_map
            (fun tool ->
              if not (tool_ok tool) then None
              else
                let r =
                  compute_row ~kernel ~spec (Design.loc v_init) v_best_q tool
                in
                (* optimized-column alpha is against the optimized anchor *)
                let opt_alpha =
                  Metrics.automation ~verilog_loc:(Design.loc v_opt)
                    ~loc:r.optimized.loc
                in
                Some
                  { r with optimized = { r.optimized with alpha = opt_alpha } })
            selected
        end
      in
      (* Only a complete, fault-free table enters the cache. *)
      if failures = [] && tools = None then
        Hashtbl.replace computed (Kernel.name kernel) rows;
      (rows, failures)

let compute ?jobs ?tools ?kernel () =
  fst (compute_outcomes ?jobs ?tools ?kernel ~keep_going:false ())

let compute_result ?jobs ?tools ?kernel () =
  compute_outcomes ?jobs ?tools ?kernel ~keep_going:true ()

let render_rows rows =
  let buf = Buffer.create 4096 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let header =
    List.map
      (fun r ->
        Printf.sprintf "%s/%s" (Design.language_name r.tool)
          (Design.tool_name r.tool))
      rows
  in
  pr "%-24s" "indicator";
  List.iter (fun h -> pr " | %-22s" h) header;
  pr "\n%s\n" (String.make (24 + (25 * List.length rows)) '-');
  let line name f =
    pr "%-24s" name;
    List.iter (fun r -> pr " | %-22s" (f r)) rows;
    pr "\n"
  in
  let pair fi fo r = Printf.sprintf "%s / %s" (fi r) (fo r) in
  line "LOC (initial/opt)"
    (pair (fun r -> string_of_int r.initial.loc)
       (fun r -> string_of_int r.optimized.loc));
  line "Modification dL" (fun r -> string_of_int r.delta_l);
  line "Automation alpha"
    (pair (fun r -> Printf.sprintf "%.1f%%" r.initial.alpha)
       (fun r -> Printf.sprintf "%.1f%%" r.optimized.alpha));
  line "Quality Q = P/A"
    (pair (fun r -> Printf.sprintf "%.0f" r.initial.quality)
       (fun r -> Printf.sprintf "%.0f" r.optimized.quality));
  line "Controllability C_Q" (fun r -> Printf.sprintf "%.1f%%" r.controllability);
  line "Flexibility F_Q" (fun r -> Printf.sprintf "%.1f" r.flexibility);
  line "Frequency, MHz"
    (pair (fun r -> Printf.sprintf "%.2f" r.initial.measured.Metrics.fmax_mhz)
       (fun r -> Printf.sprintf "%.2f" r.optimized.measured.Metrics.fmax_mhz));
  line "Throughput, MOPS"
    (pair
       (fun r -> Printf.sprintf "%.2f" r.initial.measured.Metrics.throughput_mops)
       (fun r -> Printf.sprintf "%.2f" r.optimized.measured.Metrics.throughput_mops));
  line "Latency, cycles"
    (pair (fun r -> string_of_int r.initial.measured.Metrics.latency)
       (fun r -> string_of_int r.optimized.measured.Metrics.latency));
  line "Periodicity, cycles"
    (pair (fun r -> string_of_int r.initial.measured.Metrics.periodicity)
       (fun r -> string_of_int r.optimized.measured.Metrics.periodicity));
  line "Area A = LUT*+FF*"
    (pair (fun r -> string_of_int r.initial.measured.Metrics.area)
       (fun r -> string_of_int r.optimized.measured.Metrics.area));
  line "N*_LUT (maxdsp=0)"
    (pair (fun r -> string_of_int r.initial.measured.Metrics.luts_nodsp)
       (fun r -> string_of_int r.optimized.measured.Metrics.luts_nodsp));
  line "N*_FF (maxdsp=0)"
    (pair (fun r -> string_of_int r.initial.measured.Metrics.ffs_nodsp)
       (fun r -> string_of_int r.optimized.measured.Metrics.ffs_nodsp));
  line "N_LUT"
    (pair (fun r -> string_of_int r.initial.measured.Metrics.luts)
       (fun r -> string_of_int r.optimized.measured.Metrics.luts));
  line "N_FF"
    (pair (fun r -> string_of_int r.initial.measured.Metrics.ffs)
       (fun r -> string_of_int r.optimized.measured.Metrics.ffs));
  line "N_DSP"
    (pair (fun r -> string_of_int r.initial.measured.Metrics.dsps)
       (fun r -> string_of_int r.optimized.measured.Metrics.dsps));
  line "N_IO"
    (pair (fun r -> string_of_int r.initial.measured.Metrics.ios)
       (fun r -> string_of_int r.optimized.measured.Metrics.ios));
  Buffer.contents buf

let render ?jobs ?tools ?kernel () = render_rows (compute ?jobs ?tools ?kernel ())

let render_result ?jobs ?tools ?kernel () =
  let rows, failures = compute_result ?jobs ?tools ?kernel () in
  (render_rows rows, failures)
