(** The paper's evaluation metrics (Section III-A).

    With [L] lines of code, [P] throughput (operations per second) and
    [A = N*_LUT + N*_FF] normalized area:

    - quality              [Q = P / A]
    - degree of automation [alpha = (L_V - L) / L_V]           (eq. 1)
    - controllability      [C_Phi = Phi* / Phi*_V]             (eq. 2)
    - flexibility          [F_Phi = (Phi* - Phi_0) / dL]       (eq. 3) *)

type measured = {
  fmax_mhz : float;
  throughput_mops : float;
  latency : int;            (** cycles, including I/O transmission *)
  periodicity : int;        (** cycles between operation starts *)
  area : int;               (** A = N*_LUT + N*_FF *)
  luts_nodsp : int;
  ffs_nodsp : int;
  luts : int;
  ffs : int;
  dsps : int;
  ios : int;
}

val quality : measured -> float
(** [P / A] in operations per second per (LUT+FF). *)

val automation : verilog_loc:int -> loc:int -> float
(** Percentage; negative when the description is longer than Verilog. *)

val controllability : best:float -> verilog_best:float -> float
(** Percentage. *)

val flexibility : best:float -> initial:float -> delta_loc:int -> float
(** Quality gained per changed line. *)

val pp_measured : Format.formatter -> measured -> unit

val to_wire : measured -> string
(** One-line lossless encoding (floats as hex floats), shared by the
    persistent result store and the serve wire protocol:
    [of_wire (to_wire m) = Ok m] bit-exactly. *)

val of_wire : string -> (measured, string) result
(** Inverse of {!to_wire}; [Error] describes the malformed field. *)
