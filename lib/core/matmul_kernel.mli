(** Third benchmark kernel: blocked 8x8 matrix multiply.

    The 64-element block is read as an 8x8 matrix X and multiplied by a
    fixed 8x8 weight matrix W ([w k c = ((3k + 5c) land 7) - 3], small
    signed constants generated arithmetically so the rolled HLS loops
    need index arithmetic, not a coefficient ROM), scaled by [>> 5] and
    clipped to 9 bits.  A third computational shape next to the IDCT's
    butterflies and the FIR's sliding window: per-output dot products
    with row reuse.  Implemented in three front ends and registered
    through the same {!Flow.spec} door. *)

val reference : Axis.Block.t -> Axis.Block.t
(** Software model (the ground truth for all three implementations). *)

val c_program : Chls.Ast.program
(** The kernel in C (rolled loop; weights from index arithmetic). *)

val dslx_program : Dslx.Ir.program
(** The kernel in the DSLX IR (counted fold, dynamic row indexing). *)

val chisel_design : name:string -> Hw.Netlist.t
(** Generated with the construction eDSL: per-output constant weights,
    minimal-width [mulc] datapaths. *)

val c_design : name:string -> Hw.Netlist.t
(** Sequential HLS flow (Bambu-style defaults). *)

val dslx_design : ?stages:int -> name:string -> unit -> Hw.Netlist.t
(** XLS flow; [stages] defaults to 4. *)

val spec : Flow.spec
(** The matmul's registration: raw 12-bit sample blocks (seed 11)
    against {!reference}, bit-true compliance. *)

val designs : (Design.tool * Design.t) list
(** The three matmul implementations keyed by their Registry tool
    (chisel / xls / bambu), measurable with [Evaluate.measure ~spec]. *)
