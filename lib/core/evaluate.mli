(** Cached measurement of design points.

    The measurement itself is the staged pipeline of {!Flow}
    (elaborate → validate → simulate → verify → synthesize → metrics,
    following the paper's procedure); this layer adds the process-wide
    content-keyed result cache and the root ["measure"] trace span with
    its cache hit/miss counters.

    Every measurement checks the design bit-true against the kernel's
    reference (the fixed-point IDCT {!Idct.Chenwang} under the default
    spec) and fails loudly — with a typed {!Flow.Error} — on a
    functional mismatch or an AXI-Stream protocol violation. *)

val measure : ?matrices:int -> spec:Flow.spec -> Design.t -> Metrics.measured
(** [matrices] (default 4) sets the simulated stream length; [spec]
    selects the kernel's stimulus/reference and is required at every
    call site — there is no silent default kernel; pass
    [Flow.idct_spec] (or resolve one through {!Kernel}) explicitly.
    Results are memoized in a process-wide cache keyed by spec, tool,
    label and a digest of the configuration and source listing (plus
    [matrices]), shared across domains behind a mutex. *)

val clear_measure_cache : unit -> unit
(** Drop every memoized measurement (tests and benchmarks).  Only the
    in-process memo is cleared: entries in an attached persistent store
    survive, so a subsequent {!measure} re-reads them from disk. *)

(** {1 Persistent store backend}

    The content-addressed on-disk result store (lib/store) plugs in
    beneath the in-process memo through this interface, so [core] stays
    independent of the on-disk format.  On a memo miss with a backend
    attached, {!measure} first consults [sb_find] (counted as
    [store_hit]/[store_miss] in the trace); a fresh measurement is
    written through with [sb_add].  With no backend (the default) the
    measure path is byte-identical to the historical one. *)

type store_backend = {
  sb_name : string;  (** for diagnostics, e.g. the store directory *)
  sb_find : string -> Metrics.measured option;
  sb_add : string -> Metrics.measured -> unit;
}

val set_store_backend : store_backend option -> unit
(** Attach (or detach, with [None]) the persistent layer, process-wide.
    Attach before fanning out: workers observe the backend through an
    atomic. *)

val active_store_backend : unit -> store_backend option

val measure_key : matrices:int -> spec:Flow.spec -> Design.t -> string
(** The content key a measurement is cached (and stored) under:
    spec × tool × label × digest(config, listing) × matrices.  Exposed
    for the persistent store's tooling and tests. *)

val is_cached : ?matrices:int -> spec:Flow.spec -> Design.t -> bool
(** Whether {!measure} on this design would be a cache hit right now —
    the probe behind the DSE engine's cache-hit accounting ([matrices]
    defaults as in {!measure}). *)

val measure_all :
  ?jobs:int -> ?matrices:int -> spec:Flow.spec -> Design.t list -> Metrics.measured list
(** [measure] mapped over independent designs on the domain pool
    ({!Parallel.map}); results keep input order.  Each design's lazy
    circuit is forced inside its own job, so builder state never crosses
    domains.  Fail-fast: the first failing design aborts the batch with
    its {!Flow.Error}. *)

val measure_all_result :
  ?jobs:int ->
  ?matrices:int ->
  spec:Flow.spec ->
  Design.t list ->
  (Metrics.measured, Flow.error) result list
(** The keep-going batch ({!Parallel.map_result}): every design runs to
    completion; a failed point carries its typed {!Flow.error} in its
    input-order slot instead of aborting the others. *)

val check_compliance : ?blocks:int -> spec:Flow.spec -> Design.t -> bool
(** The kernel's compliance procedure ([spec.comply] — IEEE 1180-1990
    for the IDCT, bit-true-vs-reference otherwise) through the wrapped
    circuit; PCIe designs are checked bit-true through their own stream
    simulator (dispatching on the design under test).  The default of 500 blocks
    per condition is about the statistical minimum: the per-position
    mean-error criterion (0.015) needs several hundred samples before
    estimator noise stays under the threshold. *)

val compliance_all :
  ?jobs:int ->
  ?blocks:int ->
  spec:Flow.spec ->
  Design.t list ->
  (Design.t * bool) list
(** The compliance sweep on the domain pool: every design checked
    concurrently, paired with its verdict in input order. *)

val compliance_all_result :
  ?jobs:int ->
  ?blocks:int ->
  spec:Flow.spec ->
  Design.t list ->
  (Design.t * (bool, Flow.error) result) list
(** Keep-going compliance: a design whose check raises is paired with
    its typed error instead of aborting the sweep. *)
