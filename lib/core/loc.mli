(** The paper's LOC metric: lines of code excluding blanks and
    comment-only lines (Section III-A: "the number of lines of code,
    including tool settings"). *)

val count : string -> int
(** Lines that contain code (not blank, not comment-only).  Comment
    syntaxes of all the evaluated languages are recognized: [//] and
    line-opening [--] to end of line, multi-line (non-nesting) C block
    comments, and multi-line (nesting) OCaml/BSV-attribute block comments
    (opened only when whitespace follows the star, so a C pointer
    dereference or a Verilog sensitivity list is not an opener).  A line
    inside a block comment counts only if code appears outside the
    comment delimiters. *)

val delta : string -> string -> int
(** [delta before after] is the paper's modification cost
    [dL = dL+ + dL-]: lines added plus lines removed, computed on the
    multisets of code lines. *)
