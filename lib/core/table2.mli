(** Table II — the full evaluation matrix: per tool, the initial and
    optimized designs with LOC, automation, quality, controllability,
    flexibility and the raw synthesis indicators. *)

type column = {
  design : Design.t;
  measured : Metrics.measured;
  loc : int;
  alpha : float;
  quality : float;
}

type row = {
  tool : Design.tool;
  initial : column;
  optimized : column;
  delta_l : int;
  controllability : float;   (** C_Q, percent of the Verilog optimum *)
  flexibility : float;       (** F_Q *)
}

val compute :
  ?jobs:int ->
  ?tools:Design.tool list ->
  ?kernel:(module Kernel.KERNEL) ->
  unit ->
  row list
(** Measures every design of [kernel] (default the paper's IDCT; cached
    per kernel after the first call).  The measurements are warmed on
    the domain pool ({!Evaluate.measure_all}); the rows are then
    assembled sequentially from the cache, so the result is identical
    for any job count.  [tools] restricts the rows (registration order,
    duplicates ignored); the anchor pair — the kernel's first registered
    tool, Verilog for the IDCT — is still measured, since alpha and C_Q
    are normalized against it.  Restricted tables are not cached. *)

val compute_result :
  ?jobs:int ->
  ?tools:Design.tool list ->
  ?kernel:(module Kernel.KERNEL) ->
  unit ->
  row list * Flow.error list
(** Keep-going: every design is still measured, but a tool whose initial
    or optimized design fails loses its column pair instead of aborting
    the table; the failures come back as typed errors.  Because every
    indicator is normalized against the anchor columns, a failed
    anchor design yields no rows at all (the failures still report
    every broken design).  Partial results are not memoized. *)

val render :
  ?jobs:int ->
  ?tools:Design.tool list ->
  ?kernel:(module Kernel.KERNEL) ->
  unit ->
  string
(** The table in the paper's layout (rows = indicators, columns = tools). *)

val render_result :
  ?jobs:int ->
  ?tools:Design.tool list ->
  ?kernel:(module Kernel.KERNEL) ->
  unit ->
  string * Flow.error list
(** {!render} over {!compute_result}: the surviving columns plus the
    failures for the caller's summary. *)
