(** Table II — the full evaluation matrix: per tool, the initial and
    optimized designs with LOC, automation, quality, controllability,
    flexibility and the raw synthesis indicators. *)

type column = {
  design : Design.t;
  measured : Metrics.measured;
  loc : int;
  alpha : float;
  quality : float;
}

type row = {
  tool : Design.tool;
  initial : column;
  optimized : column;
  delta_l : int;
  controllability : float;   (** C_Q, percent of the Verilog optimum *)
  flexibility : float;       (** F_Q *)
}

val compute : ?jobs:int -> unit -> row list
(** Measures every design (cached after the first call).  The
    measurements are warmed on the domain pool ({!Evaluate.measure_all});
    the rows are then assembled sequentially from the cache, so the
    result is identical for any job count. *)

val render : ?jobs:int -> unit -> string
(** The table in the paper's layout (rows = indicators, columns = tools). *)
