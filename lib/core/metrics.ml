type measured = {
  fmax_mhz : float;
  throughput_mops : float;
  latency : int;
  periodicity : int;
  area : int;
  luts_nodsp : int;
  ffs_nodsp : int;
  luts : int;
  ffs : int;
  dsps : int;
  ios : int;
}

let quality m = m.throughput_mops *. 1e6 /. float_of_int m.area

let automation ~verilog_loc ~loc =
  100. *. float_of_int (verilog_loc - loc) /. float_of_int verilog_loc

let controllability ~best ~verilog_best = 100. *. best /. verilog_best

let flexibility ~best ~initial ~delta_loc =
  if delta_loc = 0 then 0. else (best -. initial) /. float_of_int delta_loc

(* One-line lossless codec, shared by the persistent result store and the
   serve wire protocol.  Floats travel as hex floats (%h), which
   [float_of_string] parses back bit-exactly, so a stored measurement is
   indistinguishable from a fresh one. *)
let to_wire m =
  Printf.sprintf "%h %h %d %d %d %d %d %d %d %d %d" m.fmax_mhz
    m.throughput_mops m.latency m.periodicity m.area m.luts_nodsp m.ffs_nodsp
    m.luts m.ffs m.dsps m.ios

let of_wire s =
  match String.split_on_char ' ' (String.trim s) with
  | [ fmax; mops; lat; per; area; lutsn; ffsn; luts; ffs; dsps; ios ] -> (
      match
        ( float_of_string_opt fmax,
          float_of_string_opt mops,
          List.map int_of_string_opt [ lat; per; area; lutsn; ffsn; luts; ffs; dsps; ios ] )
      with
      | Some fmax_mhz, Some throughput_mops,
        [ Some latency; Some periodicity; Some area; Some luts_nodsp;
          Some ffs_nodsp; Some luts; Some ffs; Some dsps; Some ios ] ->
          Ok
            {
              fmax_mhz;
              throughput_mops;
              latency;
              periodicity;
              area;
              luts_nodsp;
              ffs_nodsp;
              luts;
              ffs;
              dsps;
              ios;
            }
      | _ -> Error (Printf.sprintf "unparseable metrics field in %S" s))
  | fields ->
      Error
        (Printf.sprintf "expected 11 metrics fields, got %d in %S"
           (List.length fields) s)

let pp_measured ppf m =
  Format.fprintf ppf
    "f=%.2fMHz P=%.2fMOPS T_L=%d T_P=%d A=%d (LUT*=%d FF*=%d LUT=%d FF=%d DSP=%d IO=%d)"
    m.fmax_mhz m.throughput_mops m.latency m.periodicity m.area m.luts_nodsp
    m.ffs_nodsp m.luts m.ffs m.dsps m.ios
