(* The kernel registration table — the Registry.TOOL refactor mirrored
   one level up.  Each benchmark kernel is a first-class module: its
   Flow.spec (stimulus / reference / compliance / timeout policy), its
   per-tool design inventory (initial / optimized / sweep / knob space)
   and its Fig. 1 axis labelling.  Every artifact generator (Fig1,
   Table2, comply, sweep, dse, serve, the CLI) iterates this table, so
   adding a kernel is data plus one generator per tool — no per-kernel
   matches scattered through the pipeline. *)

type inventory = {
  inv_tool : Design.tool;
  inv_initial : Design.t;
  inv_optimized : Design.t;
  inv_sweep : Design.t list;
  inv_space : Registry.axis list list;
  inv_delta_loc : int;
}

module type KERNEL = sig
  val spec : Flow.spec

  val aliases : string list
  (** lower-case CLI names accepted for [--kernel] *)

  val description : string

  val perf_label : string
  (** the Fig. 1 vertical-axis label *)

  val inventories : inventory list
  (** per-tool design inventories; the first entry's tool anchors
      Table II's relative columns *)
end

(* A one-design inventory: extension kernels start life as a single
   point per tool; the sweep is that point and the knob space is a
   single one-value axis, so dse/sweep/fig1 iterate them unchanged. *)
let single_inventory (tool, (d : Design.t)) =
  {
    inv_tool = tool;
    inv_initial = d;
    inv_optimized = d;
    inv_sweep = [ d ];
    inv_space =
      [ [ { Registry.axis_name = "design"; axis_values = [ d.Design.label ] } ] ];
    inv_delta_loc = 0;
  }

module Idct : KERNEL = struct
  let spec = Flow.idct_spec
  let aliases = [ "idct" ]

  let description =
    "the paper's 8x8 IEEE-1180 inverse DCT (Chen-Wang), 7 tools"

  let perf_label = "Performance"

  let inventories =
    List.map
      (fun (module T : Registry.TOOL) ->
        {
          inv_tool = T.tool;
          inv_initial = T.initial;
          inv_optimized = T.optimized;
          inv_sweep = T.sweep;
          inv_space = T.space;
          inv_delta_loc = Registry.delta_loc T.tool;
        })
      Registry.all
end

module Fir : KERNEL = struct
  let spec = Second_kernel.spec
  let aliases = [ "fir8"; "fir" ]
  let description = "8-tap symmetric circular FIR over the block, 3 tools"
  let perf_label = "Performance"
  let inventories = List.map single_inventory Second_kernel.designs
end

module Matmul : KERNEL = struct
  let spec = Matmul_kernel.spec
  let aliases = [ "matmul8"; "matmul" ]
  let description = "blocked 8x8 matrix multiply, fixed weights, 3 tools"
  let perf_label = "Performance"
  let inventories = List.map single_inventory Matmul_kernel.designs
end

let all : (module KERNEL) list = [ (module Idct); (module Fir); (module Matmul) ]
let idct : (module KERNEL) = (module Idct)

let name (module K : KERNEL) = K.spec.Flow.spec_name
let spec (module K : KERNEL) = K.spec
let description (module K : KERNEL) = K.description
let perf_label (module K : KERNEL) = K.perf_label
let inventories (module K : KERNEL) = K.inventories

let find n = List.find_opt (fun k -> name k = n) all

let parse_kernel s =
  let s = String.lowercase_ascii s in
  List.find_opt (fun (module K : KERNEL) -> List.mem s K.aliases) all

let kernel_names () = List.map (fun (module K : KERNEL) -> List.hd K.aliases) all

let unknown_kernel_msg s =
  Printf.sprintf "unknown kernel %S (kernels: %s)" s
    (String.concat ", " (kernel_names ()))

let tools k = List.map (fun i -> i.inv_tool) (inventories k)

let inventory k tool =
  List.find_opt (fun i -> i.inv_tool = tool) (inventories k)

let inventory_exn k tool =
  match inventory k tool with
  | Some i -> i
  | None ->
      invalid_arg
        (Printf.sprintf "kernel %s has no %s designs (tools: %s)" (name k)
           (Design.tool_name tool)
           (String.concat ", " (List.map Design.tool_name (tools k))))

let initial k tool = (inventory_exn k tool).inv_initial
let optimized k tool = (inventory_exn k tool).inv_optimized
let sweep k tool = (inventory_exn k tool).inv_sweep
let space k tool = (inventory_exn k tool).inv_space
let delta_loc k tool = (inventory_exn k tool).inv_delta_loc

let all_designs k =
  List.concat_map (fun i -> i.inv_sweep) (inventories k)

let legend_line k =
  "legend: "
  ^ String.concat " " (List.map Registry.legend (tools k))
  ^ "\n"

let caption k =
  Printf.sprintf "\n%s (MOPS, log)  x  Area (LUT*+FF*, log)\n" (perf_label k)
