(** The design inventory behind every artifact, organised as first-class
    tool modules (DESIGN.md §10).

    Each supported flow registers one {!TOOL} module carrying its Table I
    metadata, CLI aliases, Fig. 1 glyph and design inventory.  Table1,
    Table2, Fig1, the compliance sweep and the CLI all iterate the single
    registration table {!all}; adding an eighth flow means adding one
    module here (plus its constructor in {!Design.tool}) — no scattered
    per-tool matches to keep in sync. *)

type axis = { axis_name : string; axis_values : string list }
(** One knob of a tool's configuration space: a named, ordered, discrete
    value set.  A tool's space is a list of {e charts}, each a list of
    axes; row-major enumeration of a chart's axes (last axis fastest)
    covers a contiguous run of the tool's [sweep], in order — the
    invariant {!Dse.Space} checks and builds on. *)

module type TOOL = sig
  val tool : Design.tool

  (** Table I metadata *)

  val language : string
  val paradigm : string
  val toolchain : string
  val tool_type : string
  val openness : string

  val aliases : string list
  (** lower-case CLI names accepted for [--tool] *)

  val glyph : char
  (** the Fig. 1 scatter glyph *)

  val legend : string
  (** the Fig. 1 legend entry, ["V=Verilog"] — glyph plus the plot's
      display name (which differs from [Design.tool_name] for BSV, MaxJ
      and Vivado HLS) *)

  val initial : Design.t
  val optimized : Design.t

  val sweep : Design.t list
  (** all configurations explored for the tool (the points of Fig. 1):
      Verilog 3, Chisel 3, BSC 26, XLS 19, MaxCompiler 2, Bambu 42,
      Vivado HLS 5. *)

  val space : axis list list
  (** [sweep]'s knob space as data ({!axis}): genuine option grids for
      Bambu (preset x SDC x chaining), BSC (urgency x mux x aggressive x
      effort, behind a two-design default chart) and XLS (pipeline
      stages); a single enumerated axis for the hand-picked ladders. *)
end

val all : (module TOOL) list
(** The registration table, in the paper's column order. *)

val find : Design.tool -> (module TOOL)

val parse_tool : string -> Design.tool option
(** Resolve a CLI name through the modules' alias lists
    (case-insensitive). *)

val tool_names : unit -> string list
(** The primary CLI name of every registered tool, in registry order. *)

val unknown_tool_msg : string -> string
(** The canonical "unknown tool" diagnostic, listing the valid names —
    shared by {!parse_tools} and the serve request parser. *)

val parse_tools : string -> (Design.tool list, string) result
(** The shared [--tools] parser: a comma-separated, case-insensitive,
    whitespace-tolerant name list, deduplicated in first-mention order.
    An unknown name yields an error listing the valid tool names. *)

val glyph : Design.tool -> char
val legend : Design.tool -> string

(* Shorthands over [find] (the historical interface). *)

val initial : Design.tool -> Design.t
val optimized : Design.tool -> Design.t

val delta_loc : Design.tool -> int
(** The paper's [dL]: lines changed (added + removed, options included)
    between the initial and optimized descriptions. *)

val sweep : Design.tool -> Design.t list
val space : Design.tool -> axis list list

val all_designs : unit -> Design.t list
(** Initial and optimized designs of every tool. *)

val chisel_transfo_script : string
(** The transformation script (["fold_rows; fold_cols"]) that re-derives
    the Chisel optimized design from its flat (initial) architecture.
    Forcing [optimized Chisel] replays the script through
    {!Transfo.Engine.run} — every step verified — and yields a netlist
    node-identical to the hand-written macro-pipeline ladder rung
    (DESIGN.md §17). *)
