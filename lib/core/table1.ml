type row = {
  language : string;
  paradigm : string;
  tool : string;
  tool_type : string;
  openness : string;
}

(* Table I rows come straight off the registration table: one row per
   TOOL module, in registration order. *)
let rows =
  List.map
    (fun (module T : Registry.TOOL) ->
      {
        language = T.language;
        paradigm = T.paradigm;
        tool = T.toolchain;
        tool_type = T.tool_type;
        openness = T.openness;
      })
    Registry.all

let render () =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "%-8s | %-14s | %-11s | %-5s | %s\n" "Language" "Paradigm"
       "Tool" "Type" "Openness");
  Buffer.add_string buf (String.make 60 '-' ^ "\n");
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "%-8s | %-14s | %-11s | %-5s | %s\n" r.language
           r.paradigm r.tool r.tool_type r.openness))
    rows;
  Buffer.contents buf
