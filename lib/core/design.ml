type tool = Verilog | Chisel | Bsv | Dslx | Maxj | Bambu | Vivado_hls

type pcie = {
  system : Maxj.Manager.system Lazy.t;
  simulate : Axis.Block.t list -> Axis.Block.t list;
      (* the design's own bit-true stream simulator: compliance and the
         flow's verify stage dispatch on the design, never on a fixed
         kernel (the pre-refactor bug) *)
}

type impl =
  | Stream of Hw.Netlist.t Lazy.t
  | Pcie of pcie

type t = {
  tool : tool;
  label : string;
  config_desc : string;
  loc_fu : int;
  loc_axi : int;
  loc_conf : int;
  impl : impl;
  listing : string;
}

let loc t = t.loc_fu + t.loc_axi + t.loc_conf

(* Registry design points are shared top-level values, so their lazy
   circuits can be forced from several domains at once — two concurrent
   serve batches evaluating one design, say.  Raw [Lazy.force] raises
   [Lazy.Undefined] on a concurrent force, so every forcing of a shared
   design lazy must go through this lock.  No [is_val] fast path: while
   one domain is mid-force the tag is already not [lazy_tag], so
   [Lazy.is_val] answers [true] and an unlocked force would still race
   (observed on OCaml 5.1). *)
let force_lock = Mutex.create ()
let force l = Mutex.protect force_lock (fun () -> Lazy.force l)

let language_name = function
  | Verilog -> "Verilog"
  | Chisel -> "Chisel"
  | Bsv -> "BSV"
  | Dslx -> "DSLX"
  | Maxj -> "MaxJ"
  | Bambu -> "C"
  | Vivado_hls -> "C"

let tool_name = function
  | Verilog -> "Vivado"
  | Chisel -> "Chisel"
  | Bsv -> "BSC"
  | Dslx -> "XLS"
  | Maxj -> "MaxCompiler"
  | Bambu -> "Bambu"
  | Vivado_hls -> "Vivado HLS"

let all_tools = [ Verilog; Chisel; Bsv; Dslx; Maxj; Bambu; Vivado_hls ]
