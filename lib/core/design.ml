type tool = Verilog | Chisel | Bsv | Dslx | Maxj | Bambu | Vivado_hls

type pcie = {
  system : Maxj.Manager.system Lazy.t;
  simulate : Axis.Block.t list -> Axis.Block.t list;
      (* the design's own bit-true stream simulator: compliance and the
         flow's verify stage dispatch on the design, never on a fixed
         kernel (the pre-refactor bug) *)
}

type impl =
  | Stream of Hw.Netlist.t Lazy.t
  | Pcie of pcie

type t = {
  tool : tool;
  label : string;
  config_desc : string;
  loc_fu : int;
  loc_axi : int;
  loc_conf : int;
  impl : impl;
  listing : string;
}

let loc t = t.loc_fu + t.loc_axi + t.loc_conf

let language_name = function
  | Verilog -> "Verilog"
  | Chisel -> "Chisel"
  | Bsv -> "BSV"
  | Dslx -> "DSLX"
  | Maxj -> "MaxJ"
  | Bambu -> "C"
  | Vivado_hls -> "C"

let tool_name = function
  | Verilog -> "Vivado"
  | Chisel -> "Chisel"
  | Bsv -> "BSC"
  | Dslx -> "XLS"
  | Maxj -> "MaxCompiler"
  | Bambu -> "Bambu"
  | Vivado_hls -> "Vivado HLS"

let all_tools = [ Verilog; Chisel; Bsv; Dslx; Maxj; Bambu; Vivado_hls ]
