let taps = [| 1; 3; 8; 20; 20; 8; 3; 1 |]

let clip9 v = if v < -256 then -256 else if v > 255 then 255 else v

let reference blk =
  Array.init 64 (fun i ->
      let acc = ref 0 in
      for k = 0 to 7 do
        acc := !acc + (taps.(k) * blk.((i - k) land 63))
      done;
      clip9 (!acc asr 6))

(* ---------------- C ---------------- *)

let c_program =
  let open Chls.Ast in
  let v x = Var x in
  let i k = Int k in
  let term k =
    Bin
      ( Mul,
        i taps.(k),
        Load ("x", Bin (And, Bin (Sub, v "i", i k), i 63)) )
  in
  let acc = List.fold_left (fun a k -> Bin (Add, a, term k)) (term 0) [ 1; 2; 3; 4; 5; 6; 7 ] in
  let clip_fn =
    {
      fname = "clip9";
      params = [ PScalar ("v", int_t) ];
      ret = Some int_t;
      locals = [];
      arrays = [];
      body =
        [
          Return
            (Cond
               ( Bin (Lt, v "v", i (-256)),
                 i (-256),
                 Cond (Bin (Gt, v "v", i 255), i 255, v "v") ));
        ];
    }
  in
  let top =
    {
      fname = "fir";
      params = [ PArray ("blk", short_t, 64) ];
      ret = None;
      locals = [ ("i", int_t) ];
      arrays = [ ("x", short_t, 64) ];
      body =
        [
          (* snapshot the input: the filter is not in-place *)
          For
            {
              ivar = "i";
              bound = 64;
              body = [ Store ("x", v "i", Load ("blk", v "i")) ];
            };
          For
            {
              ivar = "i";
              bound = 64;
              body =
                [
                  Store
                    ( "blk",
                      v "i",
                      Call ("clip9", [ Bin (Shr, acc, i 6) ]) );
                ];
            };
        ];
    }
  in
  { funcs = [ clip_fn; top ]; top = "fir" }

(* ---------------- DSLX ---------------- *)

let dslx_program =
  let open Dslx.Ir in
  let l v = Lit { width = 32; value = v } in
  let term k =
    Bin
      ( Hw.Netlist.Mul,
        l taps.(k),
        Cast
          ( Index
              ( Var "m",
                Bin
                  ( Hw.Netlist.And,
                    Bin (Hw.Netlist.Sub, Var "i", l k),
                    l 63 ) ),
            32,
            `Signed ) )
  in
  let acc =
    List.fold_left
      (fun a k -> Bin (Hw.Netlist.Add, a, term k))
      (term 0) [ 1; 2; 3; 4; 5; 6; 7 ]
  in
  let clip e =
    Cast
      ( If
          ( Bin (Hw.Netlist.Lt Hw.Netlist.Signed, e, l (-256)),
            l (-256),
            If (Bin (Hw.Netlist.Lt Hw.Netlist.Signed, l 255, e), l 255, e) ),
        9,
        `Signed )
  in
  let top =
    {
      fname = "fir";
      params = [ { pname = "m"; pty = Array (Bits 12, 64) } ];
      ret = Array (Bits 9, 64);
      body =
        For
          {
            var = "i";
            count = 64;
            acc = "out";
            init = ArrayLit (List.init 64 (fun _ -> Lit { width = 9; value = 0 }));
            body =
              Update
                (Var "out", Var "i", clip (Bin (Hw.Netlist.Sra, acc, l 6)));
          };
      }
  in
  { fns = [ top ]; top = "fir" }

(* ---------------- Chisel-style generator ---------------- *)

let chisel_kernel b (mid : Hw.Builder.s array) =
  Array.init 64 (fun i ->
      let acc =
        let term k =
          Chisel.Dsl.mulc b taps.(k)
            (Chisel.Dsl.of_raw mid.((i - k) land 63))
        in
        let rec sum k a =
          if k = 8 then a else sum (k + 1) (Chisel.Dsl.add b a (term k))
        in
        sum 1 (term 0)
      in
      Chisel.Dsl.raw
        (Chisel.Dsl.resize b
           (Chisel.Dsl.clamp b ~lo:(-256) ~hi:255 (Chisel.Dsl.asr_ b acc 6))
           Axis.Stream.out_width))

let chisel_design ~name =
  Axis.Adapter.wrap_matrix_kernel ~name ~latency:0 ~kernel:chisel_kernel ()

let c_design ~name =
  Chls.Tool.sequential_circuit ~name Chls.Schedule.default_config
    Chls.Transform.default_options c_program

let dslx_design ?(stages = 4) ~name () =
  let comb = Dslx.Lower.circuit dslx_program in
  let net = if stages = 0 then comb else Hw.Pipeline.retime ~stages comb in
  let kernel kb mid =
    let inputs =
      Array.to_list (Array.mapi (fun k s -> (Printf.sprintf "m_%d" k, s)) mid)
    in
    let outs = Hw.Instantiate.stamp kb net ~inputs in
    Array.init 64 (fun k -> List.assoc (Printf.sprintf "out_%d" k) outs)
  in
  Axis.Adapter.wrap_matrix_kernel ~name ~latency:stages ~kernel ()

(* ---------------- registration ---------------- *)

(* The FIR enters the evaluation pipeline through the same door as the
   IDCT: a Flow.spec (stimulus/reference/timeout) plus plain Design.t
   values.  Raw 12-bit sample blocks, not FDCT coefficients; the rolled
   HLS schedule is memory-bound, so it needs a longer testbench budget. *)
let spec =
  {
    Flow.spec_name = "fir8";
    stimulus =
      (fun n ->
        let rng = Idct.Block.Rand.create ~seed:9 () in
        List.init n (fun _ -> Idct.Block.Rand.block rng ~lo:(-2048) ~hi:2047));
    reference;
    sim_timeout = Some 40000;
  }

(* A curated source listing for the eDSL design (the generator itself is
   the OCaml above); the C and DSLX listings are pretty-printed from
   their programs, as in Registry. *)
let chisel_listing =
  "class Fir8 extends Module {\n\
  \  val io = IO(new Bundle { val m = Input(Vec(64, SInt(12.W)))\n\
  \                           val y = Output(Vec(64, SInt(9.W))) })\n\
  \  val taps = VecInit(Seq(1, 3, 8, 20, 20, 8, 3, 1).map(_.S))\n\
  \  for (i <- 0 until 64) {\n\
  \    val acc = (0 until 8).map(k => taps(k) * io.m((i - k) & 63)).reduce(_ +& _)\n\
  \    io.y(i) := clip9(acc >> 6)\n\
  \  }\n\
   }\n"

let fir_design tool config_desc listing circuit =
  {
    Design.tool;
    label = "fir";
    config_desc;
    loc_fu = Loc.count listing;
    loc_axi = 0;
    loc_conf = 0;
    impl = Design.Stream circuit;
    listing;
  }

let designs =
  [
    ( "chisel",
      fir_design Design.Chisel "construction eDSL" chisel_listing
        (lazy (chisel_design ~name:"fir_hc")) );
    ( "xls",
      fir_design Design.Dslx "--pipeline_stages=4"
        (Dslx.Emit.emit dslx_program)
        (lazy (dslx_design ~stages:4 ~name:"fir_xls" ())) );
    ( "bambu",
      fir_design Design.Bambu "Bambu-style defaults"
        (Chls.Cprint.emit c_program)
        (lazy (c_design ~name:"fir_c")) );
  ]
