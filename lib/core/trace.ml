(* Domain-safe span tracing of the staged design flow.

   The hot paths (measurement under the domain pool) only ever touch
   domain-local storage: a span opens and closes on one domain, and the
   buffered spans cross domains exactly once, under [merge_lock], when the
   pool joins a worker ([flush_domain]) or the caller [drain]s.  With
   tracing disabled every entry point returns immediately, so the
   instrumented pipeline is byte-identical to the uninstrumented one. *)

type span = {
  design : string;
  stage : string;
  depth : int;
  seq : int;
  start_s : float;
  dur_s : float;
  counters : (string * int) list;
}

let enabled_flag = Atomic.make false
let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag

(* ---------------- per-domain collection ---------------- *)

type frame = {
  f_design : string;
  f_stage : string;
  f_depth : int;
  f_seq : int;
  f_start : float;
  mutable f_counters : (string * int) list;
}

type dstate = {
  mutable closed : span list; (* most recent first *)
  mutable stack : frame list; (* innermost first *)
  mutable next_seq : int;
}

let dls : dstate Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { closed = []; stack = []; next_seq = 0 })

let merge_lock = Mutex.create ()
let merged : span list ref = ref []

let flush_domain () =
  let st = Domain.DLS.get dls in
  match st.closed with
  | [] -> ()
  | spans ->
      st.closed <- [];
      Mutex.protect merge_lock (fun () -> merged := spans @ !merged)

let add_counter key v =
  if enabled () then
    let st = Domain.DLS.get dls in
    match st.stack with
    | [] -> ()
    | fr :: _ -> (
        match List.assoc_opt key fr.f_counters with
        | None -> fr.f_counters <- (key, v) :: fr.f_counters
        | Some prev ->
            fr.f_counters <-
              (key, prev + v) :: List.remove_assoc key fr.f_counters)

let with_span ~design ~stage f =
  if not (enabled ()) then f ()
  else begin
    let st = Domain.DLS.get dls in
    let fr =
      {
        f_design = design;
        f_stage = stage;
        f_depth = List.length st.stack;
        f_seq = st.next_seq;
        f_start = Unix.gettimeofday ();
        f_counters = [];
      }
    in
    st.next_seq <- st.next_seq + 1;
    st.stack <- fr :: st.stack;
    let close () =
      let dur = Unix.gettimeofday () -. fr.f_start in
      (match st.stack with _ :: rest -> st.stack <- rest | [] -> ());
      st.closed <-
        {
          design = fr.f_design;
          stage = fr.f_stage;
          depth = fr.f_depth;
          seq = fr.f_seq;
          start_s = fr.f_start;
          dur_s = dur;
          counters = List.rev fr.f_counters;
        }
        :: st.closed
    in
    match f () with
    | v ->
        close ();
        v
    | exception e ->
        close ();
        raise e
  end

let drain () =
  flush_domain ();
  let spans = Mutex.protect merge_lock (fun () ->
      let s = !merged in
      merged := [];
      s)
  in
  List.sort
    (fun a b ->
      match compare a.start_s b.start_s with 0 -> compare a.seq b.seq | c -> c)
    spans

(* ---------------- JSON emission ---------------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* A span tree: spans of one design nested by depth.  Spans arrive sorted
   by start time, and a parent both starts before and closes after its
   children, so a stack by depth reconstructs the nesting. *)
type tree = { node : span; mutable children : tree list (* reversed *) }

let build_trees spans =
  let roots = ref [] in
  let stack = ref [] in
  List.iter
    (fun sp ->
      let t = { node = sp; children = [] } in
      while
        match !stack with
        | top :: rest when top.node.depth >= sp.depth ->
            stack := rest;
            true
        | _ -> false
      do
        ()
      done;
      (match !stack with
      | [] -> roots := t :: !roots
      | parent :: _ -> parent.children <- t :: parent.children);
      stack := t :: !stack)
    spans;
  List.rev !roots

let group_by_design spans =
  let order = ref [] in
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun sp ->
      (match Hashtbl.find_opt tbl sp.design with
      | None ->
          order := sp.design :: !order;
          Hashtbl.add tbl sp.design [ sp ]
      | Some prev -> Hashtbl.replace tbl sp.design (sp :: prev)))
    spans;
  List.map
    (fun d -> (d, List.rev (Hashtbl.find tbl d)))
    (List.rev !order)

(* Atomic file emission: write a sibling temp file, then rename it over
   [path], so a crash mid-write can never leave a truncated artifact
   behind — readers see the old complete file or the new complete file,
   nothing in between.  (Used for [--trace], the bench JSON files and
   every persistent-store entry.) *)

exception Write_error of { wr_path : string; wr_reason : string }

let () =
  Printexc.register_printer (function
    | Write_error { wr_path; wr_reason } ->
        Some (Printf.sprintf "cannot write %s: %s" wr_path wr_reason)
    | _ -> None)

(* The temp suffix carries a per-process atomic counter besides the pid:
   two domains (or systhreads) of one process racing [write_atomic] onto
   the same path must never share a temp file, or one writer's rename
   publishes the other's half-written bytes. *)
let tmp_seq = Atomic.make 0

let fresh_tmp path =
  Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ())
    (Atomic.fetch_and_add tmp_seq 1)

(* Rename with an EXDEV fallback: when [dst] sits on a different
   filesystem than [src] (a store directory on another mount, TMPDIR on
   tmpfs...), [rename] cannot cross the boundary, so the bytes are copied
   into a fresh temp sibling of [dst], fsynced, and renamed within that
   directory — the publish step stays atomic on [dst]'s own filesystem.
   Failures surface as the typed {!Write_error}, never a bare
   [Sys_error]/[Unix_error]. *)
let rename_durable ~src ~dst =
  let fail reason =
    (try Sys.remove src with Sys_error _ -> ());
    raise (Write_error { wr_path = dst; wr_reason = reason })
  in
  match Unix.rename src dst with
  | () -> ()
  | exception Unix.Unix_error (Unix.EXDEV, _, _) -> (
      let tmp2 = fresh_tmp dst in
      let copy () =
        let ic = Unix.openfile src [ Unix.O_RDONLY ] 0 in
        Fun.protect
          ~finally:(fun () -> Unix.close ic)
          (fun () ->
            let oc =
              Unix.openfile tmp2
                [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ]
                0o644
            in
            Fun.protect
              ~finally:(fun () -> Unix.close oc)
              (fun () ->
                let buf = Bytes.create 65536 in
                let rec pump () =
                  let k = Unix.read ic buf 0 (Bytes.length buf) in
                  if k > 0 then begin
                    let w = Unix.write oc buf 0 k in
                    if w <> k then failwith "short write";
                    pump ()
                  end
                in
                pump ();
                Unix.fsync oc))
      in
      match
        copy ();
        Unix.rename tmp2 dst
      with
      | () -> ( try Sys.remove src with Sys_error _ -> ())
      | exception e ->
          (try Sys.remove tmp2 with Sys_error _ -> ());
          fail
            (Printf.sprintf "cross-device publish failed: %s"
               (Printexc.to_string e)))
  | exception Unix.Unix_error (e, _, _) -> fail (Unix.error_message e)
  | exception Sys_error m -> fail m

let write_atomic path emit =
  let tmp = fresh_tmp path in
  let oc =
    try open_out tmp
    with Sys_error m -> raise (Write_error { wr_path = path; wr_reason = m })
  in
  match emit oc with
  | () ->
      close_out oc;
      rename_durable ~src:tmp ~dst:path
  | exception e ->
      close_out_noerr oc;
      (try Sys.remove tmp with Sys_error _ -> ());
      raise e

let write_json path spans =
  write_atomic path @@ fun oc ->
  let t0 =
    List.fold_left (fun a sp -> Float.min a sp.start_s) infinity spans
  in
  let t0 = if t0 = infinity then 0.0 else t0 in
  let out fmt = Printf.fprintf oc fmt in
  let rec emit_tree indent t =
    let sp = t.node in
    out "%s{\"stage\": \"%s\", \"start_ms\": %.3f, \"dur_ms\": %.3f" indent
      (json_escape sp.stage)
      ((sp.start_s -. t0) *. 1e3)
      (sp.dur_s *. 1e3);
    (match sp.counters with
    | [] -> ()
    | cs ->
        out ", \"counters\": {%s}"
          (String.concat ", "
             (List.map
                (fun (k, v) -> Printf.sprintf "\"%s\": %d" (json_escape k) v)
                cs)));
    (match List.rev t.children with
    | [] -> ()
    | kids ->
        out ",\n%s \"children\": [\n" indent;
        List.iteri
          (fun i k ->
            if i > 0 then out ",\n";
            emit_tree (indent ^ "  ") k)
          kids;
        out "\n%s ]" indent);
    out "}"
  in
  out "{\n  \"trace\": \"hlsvhc design flow\",\n  \"spans\": %d,\n"
    (List.length spans);
  out "  \"designs\": [\n";
  let groups = group_by_design spans in
  List.iteri
    (fun i (design, sps) ->
      if i > 0 then out ",\n";
      out "    {\"design\": \"%s\",\n     \"tree\": [\n" (json_escape design);
      let trees = build_trees sps in
      List.iteri
        (fun j t ->
          if j > 0 then out ",\n";
          emit_tree "      " t)
        trees;
      out "\n     ]}")
    groups;
  out "\n  ]\n}\n"

(* ---------------- JSON loading (for [hlsvhc stats]) ---------------- *)

type json =
  | Jnull
  | Jbool of bool
  | Jnum of float
  | Jstr of string
  | Jarr of json list
  | Jobj of (string * json) list

exception Bad of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Bad (Printf.sprintf "%s at byte %d" msg !pos)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    if peek () = Some c then advance ()
    else fail (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail ("expected " ^ word)
  in
  let string_lit () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
          advance ();
          (match peek () with
          | Some '"' -> Buffer.add_char buf '"'
          | Some '\\' -> Buffer.add_char buf '\\'
          | Some '/' -> Buffer.add_char buf '/'
          | Some 'n' -> Buffer.add_char buf '\n'
          | Some 't' -> Buffer.add_char buf '\t'
          | Some 'r' -> Buffer.add_char buf '\r'
          | Some 'b' -> Buffer.add_char buf '\b'
          | Some 'u' ->
              (* best effort: decode BMP escapes to '?' outside ASCII *)
              if !pos + 4 >= n then fail "bad \\u escape";
              let hex = String.sub s (!pos + 1) 4 in
              pos := !pos + 4;
              let code = int_of_string ("0x" ^ hex) in
              if code < 128 then Buffer.add_char buf (Char.chr code)
              else Buffer.add_char buf '?'
          | _ -> fail "bad escape");
          advance ();
          go ()
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let number () =
    let start = !pos in
    let num_char c =
      (c >= '0' && c <= '9')
      || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while (match peek () with Some c when num_char c -> true | _ -> false) do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Jobj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let k = string_lit () in
            skip_ws ();
            expect ':';
            let v = value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((k, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> fail "expected , or }"
          in
          Jobj (members [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Jarr []
        end
        else begin
          let rec elems acc =
            let v = value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elems (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected , or ]"
          in
          Jarr (elems [])
        end
    | Some '"' -> Jstr (string_lit ())
    | Some 't' -> literal "true" (Jbool true)
    | Some 'f' -> literal "false" (Jbool false)
    | Some 'n' -> literal "null" Jnull
    | Some _ -> Jnum (number ())
    | None -> fail "unexpected end of input"
  in
  let v = value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let obj_field name = function
  | Jobj fields -> List.assoc_opt name fields
  | _ -> None

let load_json path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  if String.trim text = "" then
    failwith
      (path
     ^ ": empty trace file (the recording process died before writing, or \
        this is not a trace)");
  let root =
    try parse_json text
    with Bad msg -> failwith (Printf.sprintf "%s: malformed trace: %s" path msg)
  in
  let get_num j = match j with Jnum f -> f | _ -> failwith "expected number" in
  let spans = ref [] in
  let seq = ref 0 in
  let rec walk_tree design depth j =
    let stage =
      match obj_field "stage" j with
      | Some (Jstr st) -> st
      | _ -> failwith (path ^ ": span without a stage")
    in
    let start_ms =
      match obj_field "start_ms" j with Some v -> get_num v | None -> 0.0
    in
    let dur_ms =
      match obj_field "dur_ms" j with Some v -> get_num v | None -> 0.0
    in
    let counters =
      match obj_field "counters" j with
      | Some (Jobj kvs) ->
          List.map (fun (k, v) -> (k, int_of_float (get_num v))) kvs
      | _ -> []
    in
    let this_seq = !seq in
    incr seq;
    spans :=
      {
        design;
        stage;
        depth;
        seq = this_seq;
        start_s = start_ms /. 1e3;
        dur_s = dur_ms /. 1e3;
        counters;
      }
      :: !spans;
    match obj_field "children" j with
    | Some (Jarr kids) -> List.iter (walk_tree design (depth + 1)) kids
    | _ -> ()
  in
  (match obj_field "designs" root with
  | Some (Jarr designs) ->
      List.iter
        (fun d ->
          let name =
            match obj_field "design" d with
            | Some (Jstr s) -> s
            | _ -> failwith (path ^ ": design entry without a name")
          in
          match obj_field "tree" d with
          | Some (Jarr trees) -> List.iter (walk_tree name 0) trees
          | _ -> ())
        designs
  | _ -> failwith (path ^ ": no \"designs\" array"));
  List.rev !spans

(* ---------------- summary ---------------- *)

type summary_row = {
  sum_stage : string;
  sum_count : int;
  sum_total_s : float;
  sum_counters : (string * int) list;
}

let summarize spans =
  let tbl : (string, summary_row) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun sp ->
      let row =
        match Hashtbl.find_opt tbl sp.stage with
        | Some r -> r
        | None ->
            { sum_stage = sp.stage; sum_count = 0; sum_total_s = 0.0;
              sum_counters = [] }
      in
      let counters =
        List.fold_left
          (fun acc (k, v) ->
            match List.assoc_opt k acc with
            | None -> (k, v) :: acc
            | Some prev -> (k, prev + v) :: List.remove_assoc k acc)
          row.sum_counters sp.counters
      in
      Hashtbl.replace tbl sp.stage
        {
          row with
          sum_count = row.sum_count + 1;
          sum_total_s = row.sum_total_s +. sp.dur_s;
          sum_counters = counters;
        })
    spans;
  Hashtbl.fold (fun _ r acc -> r :: acc) tbl []
  |> List.sort (fun a b -> compare b.sum_total_s a.sum_total_s)

let render_stats path =
  let spans = load_json path in
  let rows = summarize spans in
  let designs =
    List.sort_uniq compare (List.map (fun sp -> sp.design) spans)
  in
  let buf = Buffer.create 2048 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr "trace %s: %d spans over %d designs\n" path (List.length spans)
    (List.length designs);
  (* Stage spans are recorded under the kernel-qualified design identity
     ("kernel:Tool/label"); name the kernels so mixed traces stay
     attributable.  Engine/pool spans carry no kernel prefix. *)
  let kernels =
    List.sort_uniq compare
      (List.filter_map
         (fun d ->
           match String.index_opt d ':' with
           | Some i
             when (match String.index_opt d '/' with
                  | Some j -> i < j
                  | None -> true) ->
               Some (String.sub d 0 i)
           | _ -> None)
         designs)
  in
  if kernels <> [] then pr "kernels: %s\n" (String.concat ", " kernels);
  let total =
    List.fold_left
      (fun a sp -> if sp.depth = 0 then a +. sp.dur_s else a)
      0.0 spans
  in
  pr "%-12s %7s %10s %10s %7s\n" "stage" "count" "total s" "mean ms" "share";
  List.iter
    (fun r ->
      pr "%-12s %7d %10.3f %10.3f %6.1f%%\n" r.sum_stage r.sum_count
        r.sum_total_s
        (r.sum_total_s *. 1e3 /. float_of_int (max 1 r.sum_count))
        (100. *. r.sum_total_s /. Float.max 1e-9 total))
    rows;
  let interesting =
    List.filter (fun r -> r.sum_counters <> []) rows
  in
  if interesting <> [] then begin
    pr "counters:\n";
    List.iter
      (fun r ->
        pr "  %-12s %s\n" r.sum_stage
          (String.concat "  "
             (List.map
                (fun (k, v) -> Printf.sprintf "%s=%d" k v)
                (List.sort compare r.sum_counters))))
      interesting
  end;
  Buffer.contents buf
