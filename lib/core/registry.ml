open Design

(* lib/transfo cannot depend on Core.Trace (Core depends on transfo), so
   the engine's tracing is injected here, where both sides are visible.
   Registry is linked into every entry point, so the hook is always in
   place before a script runs. *)
let () =
  Transfo.Engine.set_tracer
    {
      Transfo.Engine.wrap =
        (fun ~design ~stage f -> Trace.with_span ~design ~stage f);
      counter = Trace.add_counter;
    }

(* ------------------------------------------------------------------ *)
(* Design constructors and the shared listing policy                    *)
(* ------------------------------------------------------------------ *)

let mk tool label config_desc ~fu ~axi ~conf ~listing impl =
  {
    tool;
    label;
    config_desc;
    loc_fu = fu;
    loc_axi = axi;
    loc_conf = conf;
    impl;
    listing;
  }

(* Listing-policy helpers shared by every tool module: a listing made of a
   functional-unit part and a tool-specific body is glued with one blank
   line, the FU lines count as L^FU and the remainder as L^AXI. *)
let glue shared body = shared ^ "\n\n" ^ body

let split_loc ~shared listing =
  let fu = Loc.count shared in
  (fu, Loc.count listing - fu)

let mk_shared tool label config_desc ~shared ~listing impl =
  let fu, axi = split_loc ~shared listing in
  mk tool label config_desc ~fu ~axi ~conf:0 ~listing impl

(* ------------------------------------------------------------------ *)
(* Configuration-space axes                                             *)
(* ------------------------------------------------------------------ *)

(* A tool's knob space, exposed as data next to the sweep generator that
   realises it.  A chart is one product block of the sweep: row-major
   enumeration of its axes (last axis fastest) covers a contiguous run of
   [sweep], in order.  Tools whose sweep is a genuine option grid (Bambu,
   BSC, XLS) expose the real axes; tools explored as a hand-picked ladder
   expose a single enumerated axis. *)
type axis = { axis_name : string; axis_values : string list }

let enum_axis name values = { axis_name = name; axis_values = values }

(* The default space of a ladder sweep: one "design" axis whose values are
   the sweep labels. *)
let ladder_space sweep =
  [ [ enum_axis "design" (List.map (fun d -> d.label) sweep) ] ]

(* ------------------------------------------------------------------ *)
(* The tool-module signature                                            *)
(* ------------------------------------------------------------------ *)

module type TOOL = sig
  val tool : Design.tool

  (* Table I metadata *)
  val language : string
  val paradigm : string
  val toolchain : string
  val tool_type : string
  val openness : string

  (* CLI names, the Fig. 1 scatter glyph and its legend entry *)
  val aliases : string list
  val glyph : char
  val legend : string

  (* the design inventory *)
  val initial : Design.t
  val optimized : Design.t
  val sweep : Design.t list

  (* the knob space behind [sweep], as charts of axes (see {!axis}) *)
  val space : axis list list
end

(* ---------------- Verilog (parsed sources) ---------------- *)

module Verilog_tool : TOOL = struct
  let tool = Verilog
  let language = "Verilog"
  let paradigm = "Classical RTL"
  let toolchain = "Vivado"
  let tool_type = "LS/PR"
  let openness = "Commercial"
  let aliases = [ "verilog" ]
  let glyph = 'V'
  let legend = "V=Verilog"

  let units_loc =
    Loc.count (Verilog_designs.row_unit ^ Verilog_designs.col_unit)

  let design label source circuit =
    mk Verilog label "Vivado defaults" ~fu:units_loc
      ~axi:(Loc.count source - units_loc)
      ~conf:0 ~listing:source (Stream circuit)

  let initial =
    design "initial" Verilog_designs.initial_source
      (lazy (Verilog_designs.initial_circuit ()))

  let row8col =
    design "1 row + 8 col units" Verilog_designs.row8col_source
      (lazy (Verilog_designs.row8col_circuit ()))

  let optimized =
    design "optimized" Verilog_designs.rowcol_source
      (lazy (Verilog_designs.rowcol_circuit ()))

  let sweep = [ initial; row8col; optimized ]
  let space = ladder_space sweep
end

(* ---------------- Chisel ---------------- *)

let chisel_transfo_script = "fold_rows; fold_cols"

(* The Chisel optimized design is RE-DERIVED, not hand-instantiated: the
   flat (initial) architecture plus the transformation script above, each
   step discharged against its verification obligation and crosschecked
   through all three simulation engines at force time.  The builder's
   determinism makes the derived netlist node-identical to the
   hand-written [design_rowcol] ladder rung (pinned by a test), so every
   downstream artifact — Table II, Fig. 1, sweep, store digests — is
   byte-identical to the pre-derivation baseline. *)
let derive_chisel_optimized () =
  let subject =
    Transfo.Subject.of_arch
      (Chisel.Idct_gen.arch Chisel.Idct_gen.Inferred ~name:"chisel_optimized"
         ())
  in
  match
    Transfo.Engine.run
      (Transfo.Script.parse_exn chisel_transfo_script)
      subject
  with
  | Ok r -> r.Transfo.Engine.rep_subject.Transfo.Subject.circuit
  | Error e ->
      failwith
        ("chisel optimized rederivation: " ^ Transfo.Engine.error_to_string e)

module Chisel_tool : TOOL = struct
  let tool = Chisel
  let language = "Chisel"
  let paradigm = "Functional/RTL"
  let toolchain = "Chisel"
  let tool_type = "HC"
  let openness = "Open-source"
  let aliases = [ "chisel" ]
  let glyph = 'C'
  let legend = "C=Chisel"

  let design label config_desc listing circuit =
    mk_shared Chisel label config_desc ~shared:Listings.chisel_butterfly
      ~listing (Stream circuit)

  let initial =
    design "initial" "width inference, combinational kernel"
      Listings.chisel_initial
      (lazy (Chisel.Idct_gen.design_comb Chisel.Idct_gen.Inferred ~name:"chisel_initial"))

  let row8col =
    design "1 row + 8 col units" "width inference" Listings.chisel_initial
      (lazy
        (Chisel.Idct_gen.design_row8col Chisel.Idct_gen.Inferred
           ~name:"chisel_row8col"))

  let optimized =
    design "optimized" "width inference, macro-pipeline"
      Listings.chisel_optimized
      (lazy (derive_chisel_optimized ()))

  let sweep = [ initial; row8col; optimized ]
  let space = ladder_space sweep
end

(* ---------------- BSV ---------------- *)

module Bsv_tool : TOOL = struct
  let tool = Bsv
  let language = "BSV"
  let paradigm = "Rule-based/RTL"
  let toolchain = "BSC"
  let tool_type = "HC"
  let openness = "Open-source"
  let aliases = [ "bsv"; "bsc" ]
  let glyph = 'B'
  let legend = "B=BSV"

  let listing_initial = glue Listings.bsv_shared Listings.bsv_initial
  let listing_optimized = glue Listings.bsv_shared Listings.bsv_optimized

  let design label config_desc listing modul options =
    mk_shared Bsv label config_desc ~shared:Listings.bsv_shared ~listing
      (Stream (lazy (Bsv.Idct_bsv.circuit ~options modul)))

  let initial =
    design "initial" "BSC defaults" listing_initial Bsv.Idct_bsv.initial_design
      Bsv.Options.default

  let optimized =
    design "optimized" "BSC defaults" listing_optimized
      Bsv.Idct_bsv.optimized_design Bsv.Options.default

  let sweep =
    (* 26 synthesized circuits: the 24-option grid on the optimized design
       plus the two designs under the default configuration. *)
    initial :: optimized
    :: List.map
         (fun o ->
           design
             ("optimized/" ^ Bsv.Options.describe o)
             (Bsv.Options.describe o) listing_optimized
             Bsv.Idct_bsv.optimized_design o)
         Bsv.Options.all

  (* Two charts: the two designs under default options, then the BSC
     option grid on the optimized design (the nesting order of
     [Bsv.Options.all]: urgency, mux, aggressive, effort fastest). *)
  let space =
    [
      [ enum_axis "design" [ initial.Design.label; optimized.Design.label ] ];
      [
        enum_axis "urgency" [ "declared"; "reversed" ];
        enum_axis "mux-style" [ "priority"; "one-hot" ];
        enum_axis "aggressive-conditions" [ "off"; "on" ];
        enum_axis "scheduler-effort" [ "0"; "1"; "2" ];
      ];
    ]
end

(* ---------------- DSLX ---------------- *)

module Dslx_tool : TOOL = struct
  let tool = Dslx
  let language = "DSLX"
  let paradigm = "Functional"
  let toolchain = "XLS"
  let tool_type = "HLS"
  let openness = "Open-source"
  let aliases = [ "dslx"; "xls" ]
  let glyph = 'X'
  let legend = "X=XLS"

  let listing = Dslx.Emit.emit Dslx.Idct_dslx.program

  let design label stages =
    mk Dslx label
      (if stages = 0 then "combinational"
       else Printf.sprintf "--pipeline_stages=%d" stages)
      ~fu:(Loc.count listing) ~axi:Tool_adapters.dslx_adapter_loc
      ~conf:(if stages = 0 then 0 else 1)
      ~listing
      (Stream
         (lazy
           (Dslx.Idct_dslx.design ~stages ~name:(Printf.sprintf "xls_s%d" stages) ())))

  let initial = design "initial" 0
  let optimized = design "optimized" 8

  let sweep =
    initial
    :: List.init 18 (fun i -> design (Printf.sprintf "stages=%d" (i + 1)) (i + 1))

  (* One genuine knob: the retiming stage count (0 = combinational). *)
  let space =
    [ [ enum_axis "pipeline-stages" (List.init 19 string_of_int) ] ]
end

(* ---------------- MaxJ ---------------- *)

module Maxj_tool : TOOL = struct
  let tool = Maxj
  let language = "MaxJ"
  let paradigm = "Dataflow"
  let toolchain = "MaxCompiler"
  let tool_type = "HLS"
  let openness = "Commercial"
  let aliases = [ "maxj"; "maxcompiler" ]
  let glyph = 'M'
  let legend = "M=MaxJ"

  (* MaxCompiler generates the PCIe manager, so L^AXI = 0 and the whole
     listing counts as L^FU.  (The FU count concatenates without the glue
     blank line — the historical measurement the artifacts pin down.) *)
  let design label config_desc body system simulate =
    mk Maxj label config_desc
      ~fu:(Loc.count (Listings.maxj_shared ^ body))
      ~axi:0 ~conf:0
      ~listing:(glue Listings.maxj_shared body)
      (Pcie { system; simulate })

  let initial =
    design "initial" "matrix per tick, PCIe streams" Listings.maxj_initial
      (lazy (Maxj.Idct_maxj.initial_system ()))
      Maxj.Idct_maxj.simulate_initial

  let optimized =
    design "optimized" "row per tick, on-chip transpose buffer"
      Listings.maxj_optimized
      (lazy (Maxj.Idct_maxj.opt_system ()))
      Maxj.Idct_maxj.simulate_opt

  let sweep = [ initial; optimized ]
  let space = ladder_space sweep
end

(* ---------------- C / Bambu ---------------- *)

module Bambu_tool : TOOL = struct
  let tool = Bambu
  let language = "C"
  let paradigm = "Imperative"
  let toolchain = "Bambu"
  let tool_type = "HLS"
  let openness = "Open-source"
  let aliases = [ "bambu" ]
  let glyph = 'b'
  let legend = "b=Bambu"

  let listing = Chls.Cprint.emit Chls.Idct_c.program

  let conf_lines (c : Chls.Tool.bambu_config) =
    1 (* preset *) + (if c.Chls.Tool.sdc then 1 else 0)
    + if c.Chls.Tool.chain_effort <> 1 then 1 else 0

  let design label c =
    mk Bambu label (Chls.Tool.describe_bambu c) ~fu:(Loc.count listing)
      ~axi:Chls.Tool.bambu_adapter_loc ~conf:(conf_lines c) ~listing
      (Stream (lazy (Chls.Tool.bambu_circuit c)))

  let initial = design "initial" Chls.Tool.bambu_initial
  let optimized = design "optimized" Chls.Tool.bambu_optimized

  let sweep =
    List.map (fun c -> design (Chls.Tool.describe_bambu c) c) Chls.Tool.bambu_grid

  (* The full 7 x 2 x 3 option grid, axes in the nesting order of
     [Chls.Tool.bambu_grid] (chaining effort fastest).  The preset names
     are read off the grid itself so the two can never drift apart. *)
  let space =
    let preset_names =
      List.filter_map
        (fun (c : Chls.Tool.bambu_config) ->
          if (not c.Chls.Tool.sdc) && c.Chls.Tool.chain_effort = 0 then
            Some c.Chls.Tool.preset
          else None)
        Chls.Tool.bambu_grid
    in
    [
      [
        enum_axis "preset" preset_names;
        enum_axis "speculative-sdc" [ "off"; "on" ];
        enum_axis "chaining-effort" [ "0"; "1"; "2" ];
      ];
    ]
end

(* ---------------- C / Vivado HLS ---------------- *)

module Vhls_tool : TOOL = struct
  let tool = Vivado_hls
  let language = "C"
  let paradigm = "Imperative"
  let toolchain = "Vivado HLS"
  let tool_type = "HLS"
  let openness = "Commercial"
  let aliases = [ "vhls"; "vivado-hls"; "vivado_hls" ]
  let glyph = 'h'
  let legend = "h=VivadoHLS"

  let listing c =
    Chls.Cprint.emit ~pragmas:[ ("idct", Chls.Tool.vhls_pragmas c) ]
      Chls.Idct_c.program

  let design label c =
    mk Vivado_hls label (Chls.Tool.describe_vhls c)
      ~fu:(Loc.count (listing c))
      ~axi:0 (* the INTERFACE pragma generates the adapter *)
      ~conf:0 ~listing:(listing c)
      (Stream (lazy (Chls.Tool.vhls_circuit c)))

  let initial = design "initial" Chls.Tool.vhls_initial
  let optimized = design "optimized" Chls.Tool.vhls_optimized

  let sweep =
    List.map (fun c -> design (Chls.Tool.describe_vhls c) c) Chls.Tool.vhls_ladder

  (* The pragma ladder is a hand-picked path through the pragma space,
     not a product grid — one enumerated axis. *)
  let space = [ [ enum_axis "pragmas" (List.map (fun d -> d.Design.label) sweep) ] ]
end

(* ------------------------------------------------------------------ *)
(* The registration table                                               *)
(* ------------------------------------------------------------------ *)

(* One table, in the paper's column order; Table1, Table2, Fig1 and the
   CLI all iterate it.  An eighth flow registers by adding its module
   here (and its constructor to Design.tool) — nothing else to edit. *)
let all : (module TOOL) list =
  [
    (module Verilog_tool);
    (module Chisel_tool);
    (module Bsv_tool);
    (module Dslx_tool);
    (module Maxj_tool);
    (module Bambu_tool);
    (module Vhls_tool);
  ]

let find t =
  List.find (fun (module T : TOOL) -> T.tool = t) all

let parse_tool name =
  let name = String.lowercase_ascii name in
  List.find_map
    (fun (module T : TOOL) ->
      if List.mem name T.aliases then Some T.tool else None)
    all

let tool_names () =
  List.map (fun (module T : TOOL) -> List.hd T.aliases) all

(* The one [--tools] parser shared by fig1/table2/dse: comma-separated,
   case-insensitive, whitespace-tolerant; an unknown name fails with the
   list of valid names rather than a generic error. *)
let unknown_tool_msg name =
  Printf.sprintf "unknown tool %S (valid tools: %s)" name
    (String.concat ", " (tool_names ()))

let parse_tools s =
  let names =
    String.split_on_char ',' s |> List.map String.trim
    |> List.filter (fun n -> n <> "")
  in
  if names = [] then Error "no tool names given (expected e.g. verilog,bsv)"
  else
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | n :: rest -> (
          match parse_tool n with
          | None -> Error (unknown_tool_msg n)
          | Some t -> go (if List.mem t acc then acc else t :: acc) rest)
    in
    go [] names

let glyph t =
  let (module T) = find t in
  T.glyph

let legend t =
  let (module T) = find t in
  T.legend

let initial t =
  let (module T) = find t in
  T.initial

let optimized t =
  let (module T) = find t in
  T.optimized

let sweep t =
  let (module T) = find t in
  T.sweep

let space t =
  let (module T) = find t in
  T.space

let delta_loc tool =
  let a = (initial tool).listing and b = (optimized tool).listing in
  let conf_delta = abs ((optimized tool).loc_conf - (initial tool).loc_conf) in
  Loc.delta a b + conf_delta

let all_designs () =
  List.concat_map (fun (module T : TOOL) -> [ T.initial; T.optimized ]) all
