(* Line-of-code counting over the embedded source listings.

   A line counts as code when any non-whitespace character sits outside a
   comment.  Comments are tracked across lines by a small scanner:

   - slash-slash comments the rest of the line (Verilog, C, BSV, Chisel,
     MaxJ);
   - dash-dash comments the rest of the line, but only when it opens the
     line: mid-line dash-dash is the C decrement operator;
   - slash-star ... star-slash spans lines and does not nest;
   - paren-star ... star-paren spans lines and nests, but only opens when
     the star is followed by whitespace or end of line (BSV attributes,
     OCaml-style comments): an unspaced paren-star is a Verilog
     sensitivity list "always @ star" or a C pointer dereference;
   - double-quoted strings are opaque: comment openers inside them are
     literal text.  String literals in the listings never span lines. *)

type block = No_block | C_block | O_block of int (* (* .. *) nesting depth *)

let scan_line block line =
  let n = String.length line in
  let has_code = ref false in
  let block = ref block in
  let in_string = ref false in
  let i = ref 0 in
  let line_done = ref false in
  let at c = !i + 1 < n && line.[!i] = c in
  let spaced_after k =
    k >= n || line.[k] = ' ' || line.[k] = '\t' || line.[k] = '\r'
  in
  while (not !line_done) && !i < n do
    let ch = line.[!i] in
    (match !block with
    | C_block ->
        if at '*' && line.[!i + 1] = '/' then begin
          block := No_block;
          incr i
        end
    | O_block depth ->
        if at '*' && line.[!i + 1] = ')' then begin
          block := (if depth = 1 then No_block else O_block (depth - 1));
          incr i
        end
        else if at '(' && line.[!i + 1] = '*' && spaced_after (!i + 2) then begin
          block := O_block (depth + 1);
          incr i
        end
    | No_block ->
        if !in_string then begin
          if ch = '\\' then incr i else if ch = '"' then in_string := false
        end
        else if at '/' && line.[!i + 1] = '/' then line_done := true
        else if at '-' && line.[!i + 1] = '-' && not !has_code then
          line_done := true
        else if at '/' && line.[!i + 1] = '*' then begin
          block := C_block;
          incr i
        end
        else if at '(' && line.[!i + 1] = '*' && spaced_after (!i + 2) then begin
          block := O_block 1;
          incr i
        end
        else begin
          if ch = '"' then in_string := true;
          if ch <> ' ' && ch <> '\t' && ch <> '\r' then has_code := true
        end);
    incr i
  done;
  (!block, !has_code)

let code_lines src =
  let lines = String.split_on_char '\n' src in
  let _, code =
    List.fold_left
      (fun (block, acc) line ->
        let block, has_code = scan_line block line in
        (block, if has_code then String.trim line :: acc else acc))
      (No_block, []) lines
  in
  List.rev code

let count src = List.length (code_lines src)

let delta before after =
  let a = List.sort compare (code_lines before) in
  let b = List.sort compare (code_lines after) in
  (* Multiset symmetric difference. *)
  let rec go a b added removed =
    match (a, b) with
    | [], [] -> added + removed
    | [], rest -> added + List.length rest + removed
    | rest, [] -> added + removed + List.length rest
    | x :: xs, y :: ys ->
        if x = y then go xs ys added removed
        else if x < y then go xs b added (removed + 1)
        else go a ys (added + 1) removed
  in
  go a b 0 0
