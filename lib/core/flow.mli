(** The staged design-flow core (DESIGN.md §10).

    One measurement is a fixed pipeline of named stages, each wrapped in
    a {!Trace} span:

    {v
    elaborate -> validate -> simulate -> verify -> synthesize -> metrics
    v}

    - [elaborate]  force the frontend's lazy constructor into a netlist
    - [validate]   structural netlist validation
    - [simulate]   AXI-Stream testbench run (or the PCIe system model)
    - [verify]     bit-true comparison against the kernel's reference,
                   plus the AXI-Stream protocol verdict
    - [synthesize] technology mapping and static timing
    - [metrics]    assembly of the paper's indicator record

    The kernel under test is a {!spec}: stimulus generator, golden
    reference and timeout policy.  The paper's IDCT is {!idct_spec};
    {!Second_kernel} registers its FIR the same way, which is how any
    future workload enters the pipeline. *)

type spec = {
  spec_name : string;  (** cache-key prefix, e.g. "idct" *)
  stimulus : int -> Axis.Block.t list;
      (** [stimulus n] generates the [n]-matrix input stream
          (deterministic: same [n], same stream) *)
  reference : Axis.Block.t -> Axis.Block.t;  (** golden transform *)
  sim_timeout : int option;
      (** testbench cycle budget; [None] = the driver default *)
  comply : blocks:int -> (Axis.Block.t list -> Axis.Block.t list) -> bool;
      (** the kernel's compliance procedure over a batched stream
          transform: IEEE 1180-1990 for the IDCT, bit-true-vs-reference
          ({!bit_true_comply}) for kernels without a statistical spec *)
}

val bit_true_comply :
  stimulus:(int -> Axis.Block.t list) ->
  reference:(Axis.Block.t -> Axis.Block.t) ->
  blocks:int ->
  (Axis.Block.t list -> Axis.Block.t list) ->
  bool
(** The default [comply] for exact kernels: draw [blocks] stimulus
    blocks, push them through the batched DUT, require every output
    bit-identical to the reference model. *)

val idct_spec : spec
(** The paper's kernel: IEEE-1180-seeded FDCT coefficient blocks checked
    against the fixed-point Chen–Wang reference. *)

val span_design : spec -> Design.t -> string
(** The kernel-qualified trace identity, ["kernel:Tool/label"] — what
    {!measure_uncached}'s stage spans are recorded under, so
    mixed-kernel traces stay attributable.  Fault injection and typed
    {!error}s keep the plain {!span_key}. *)

val stage_names : string list
(** The canonical stage names above, in pipeline order. *)

val span_key : Design.t -> string
(** The trace identity of a design: ["Tool/label"]. *)

(** {1 Typed flow errors (DESIGN.md §11)}

    Anything that goes wrong inside a stage is carried by {!Error}: the
    design key, the stage that failed, and an error class.  Keep-going
    sweeps record these per point; the fail-fast path re-raises them and
    the registered exception printer renders the same text everywhere. *)

type error_class =
  | Not_bit_true of { block_index : int; got : string; expected : string }
      (** functional mismatch: index of the first wrong output block,
          with a one-row got/expected excerpt around the first wrong
          element *)
  | Protocol_violation of string  (** AXI-Stream monitor verdict *)
  | Sim_timeout of string
      (** the driver's cycle budget ran out (a wedged or stalled DUT) *)
  | Engine_failure of string
      (** elaborate/validate/simulate raised — and, for the simulate
          stage, the reference-interpreter retry failed too *)
  | Synth_failure of string  (** the synthesis stage raised *)
  | Unexpected of string  (** anything else, [Printexc]-rendered *)

type error = {
  err_design : string;  (** {!span_key} of the failing design *)
  err_stage : string;  (** stage name, or ["-"] outside the pipeline *)
  err_class : error_class;
}

exception Error of error

val class_name : error_class -> string
(** Stable kebab-case tag, e.g. ["not-bit-true"]. *)

val class_detail : error_class -> string
(** The human-readable payload of a class (mismatch excerpt, message...)
    — the detail column of the failure summary and the serve protocol. *)

val pp_error : Format.formatter -> error -> unit
(** The one canonical rendering:
    ["design D failed at S [class]: detail"].  Also registered with
    [Printexc], so an uncaught {!Error} prints the same text. *)

val error_to_string : error -> string

val error_of_exn : design:string -> exn -> error
(** {!Error} payloads pass through; any other exception becomes an
    [Unexpected] error attributed to [design]. *)

val render_failure_summary : error list -> string
(** The keep-going failure table: one row per failed design point. *)

val measure_uncached : ?matrices:int -> spec:spec -> Design.t -> Metrics.measured
(** Run the full staged pipeline on one design under [spec]'s kernel.
    [matrices] (default 4) sets the simulated stream length.  The kernel
    is explicit at every call site; pass [Flow.idct_spec] (or go through
    {!Kernel}) to measure the paper's IDCT.

    If the compiled simulation engine fails on the design (anything but
    a cycle-budget timeout), the design is retried once on the reference
    interpreter ({!Axis.Driver.Reference}); the degradation is recorded
    as an [engine_fallback] Trace counter and a one-line stderr note.

    @raise Error if a stage fails: not bit-true against
    [spec.reference], an AXI-Stream protocol violation, a simulation
    timeout, an engine failure surviving the interpreter retry, a
    synthesis failure, or an unexpected exception. *)
