(** The staged design-flow core (DESIGN.md §10).

    One measurement is a fixed pipeline of named stages, each wrapped in
    a {!Trace} span:

    {v
    elaborate -> validate -> simulate -> verify -> synthesize -> metrics
    v}

    - [elaborate]  force the frontend's lazy constructor into a netlist
    - [validate]   structural netlist validation
    - [simulate]   AXI-Stream testbench run (or the PCIe system model)
    - [verify]     bit-true comparison against the kernel's reference,
                   plus the AXI-Stream protocol verdict
    - [synthesize] technology mapping and static timing
    - [metrics]    assembly of the paper's indicator record

    The kernel under test is a {!spec}: stimulus generator, golden
    reference and timeout policy.  The paper's IDCT is {!idct_spec};
    {!Second_kernel} registers its FIR the same way, which is how any
    future workload enters the pipeline. *)

type spec = {
  spec_name : string;  (** cache-key prefix, e.g. "idct" *)
  stimulus : int -> Idct.Block.t list;
      (** [stimulus n] generates the [n]-matrix input stream
          (deterministic: same [n], same stream) *)
  reference : Idct.Block.t -> Idct.Block.t;  (** golden transform *)
  sim_timeout : int option;
      (** testbench cycle budget; [None] = the driver default *)
}

val idct_spec : spec
(** The paper's kernel: IEEE-1180-seeded FDCT coefficient blocks checked
    against the fixed-point Chen–Wang reference. *)

val stage_names : string list
(** The canonical stage names above, in pipeline order. *)

val span_key : Design.t -> string
(** The trace identity of a design: ["Tool/label"]. *)

val measure_uncached : ?matrices:int -> ?spec:spec -> Design.t -> Metrics.measured
(** Run the full staged pipeline on one design.  [matrices] (default 4)
    sets the simulated stream length.
    @raise Failure if the design is not bit-true against [spec.reference]
    or violates the AXI-Stream protocol. *)
