(* Benchmark harness: regenerates every evaluation artifact of the paper
   (Table I, Table II, Fig. 1 and the per-tool ablation narratives of
   Section IV), then times the substrate itself with Bechamel. *)

let line = String.make 78 '='

let section title =
  Printf.printf "\n%s\n%s\n%s\n%!" line title line

(* ------------------------------------------------------------------ *)
(* Paper artifacts                                                      *)
(* ------------------------------------------------------------------ *)

let table1 () =
  section "Table I — languages and tools under evaluation";
  print_string (Core.Table1.render ())

let table2 () =
  section "Table II — HLS/HC tools evaluation results";
  print_string (Core.Table2.render ())

let fig1 () =
  section "Fig. 1 — design space exploration for IDCT (100 circuits)";
  print_string (Core.Fig1.render ())

(* Section IV narratives, reproduced as measured ratios. *)

let pct a b = 100. *. a /. b

let ablation_verilog () =
  section "Ablation (paper IV, Verilog): 8x8 units -> 1x8 -> 1x1";
  let m d = Core.Evaluate.measure ~spec:Core.Flow.idct_spec ~matrices:4 d in
  match Core.Registry.sweep Core.Design.Verilog with
  | [ d0; d1; d2 ] ->
      let m0 = m d0 and m1 = m d1 and m2 = m d2 in
      let q (x : Core.Metrics.measured) = Core.Metrics.quality x in
      Printf.printf
        "initial (8 row + 8 col): f=%.1f MHz  A=%d  latency=%d  Q=%.0f\n"
        m0.Core.Metrics.fmax_mhz m0.Core.Metrics.area m0.Core.Metrics.latency
        (q m0);
      Printf.printf
        "1 row + 8 col:          P x%.2f, A /%.2f, Q x%.2f   (paper: x1.8, /1.7, x3)\n"
        (m1.Core.Metrics.throughput_mops /. m0.Core.Metrics.throughput_mops)
        (float_of_int m0.Core.Metrics.area /. float_of_int m1.Core.Metrics.area)
        (q m1 /. q m0);
      Printf.printf
        "1 row + 1 col:          P x%.2f, A /%.2f, Q x%.2f, latency %d -> %d   (paper: x2, /4.6, x9.4, 17 -> 24)\n"
        (m2.Core.Metrics.throughput_mops /. m0.Core.Metrics.throughput_mops)
        (float_of_int m0.Core.Metrics.area /. float_of_int m2.Core.Metrics.area)
        (q m2 /. q m0) m0.Core.Metrics.latency m2.Core.Metrics.latency
  | _ -> assert false

let ablation_maxj () =
  section "Ablation (paper IV, MaxJ): matrix/tick vs row/tick";
  let mi = Core.Evaluate.measure ~spec:Core.Flow.idct_spec (Core.Registry.initial Core.Design.Maxj) in
  let mo = Core.Evaluate.measure ~spec:Core.Flow.idct_spec (Core.Registry.optimized Core.Design.Maxj) in
  Printf.printf "initial: P=%.1f MOPS (PCIe bound), A=%d, depth=%d ticks\n"
    mi.Core.Metrics.throughput_mops mi.Core.Metrics.area
    mi.Core.Metrics.latency;
  Printf.printf
    "optimized: area /%.2f, throughput /%.2f   (paper: /2.8 area, /2.7 throughput)\n"
    (float_of_int mi.Core.Metrics.area /. float_of_int mo.Core.Metrics.area)
    (mi.Core.Metrics.throughput_mops /. mo.Core.Metrics.throughput_mops);
  let v = Core.Evaluate.measure ~spec:Core.Flow.idct_spec (Core.Registry.initial Core.Design.Verilog) in
  Printf.printf "quality vs initial Verilog: %.0f%%   (paper: 963%%)\n"
    (pct (Core.Metrics.quality mi) (Core.Metrics.quality v))

let ablation_chls () =
  section "Ablation (paper IV, C): Bambu presets and Vivado HLS pragmas";
  let m d = Core.Evaluate.measure ~spec:Core.Flow.idct_spec ~matrices:3 d in
  let bi = m (Core.Registry.initial Core.Design.Bambu) in
  let bo = m (Core.Registry.optimized Core.Design.Bambu) in
  Printf.printf "Bambu default: periodicity %d cycles @ %.1f MHz -> %.2f MOPS\n"
    bi.Core.Metrics.periodicity bi.Core.Metrics.fmax_mhz
    bi.Core.Metrics.throughput_mops;
  Printf.printf
    "Bambu PERFORMANCE-MP + SDC: periodicity %d (paper 323 -> 185), P x%.2f (paper x1.7)\n"
    bo.Core.Metrics.periodicity
    (bo.Core.Metrics.throughput_mops /. bi.Core.Metrics.throughput_mops);
  let vi = m (Core.Registry.initial Core.Design.Vivado_hls) in
  let vo = m (Core.Registry.optimized Core.Design.Vivado_hls) in
  Printf.printf
    "Vivado HLS push-button: periodicity %d (paper 340) — non-inlined units\n"
    vi.Core.Metrics.periodicity;
  Printf.printf
    "Vivado HLS +INLINE+PARTITION+PIPELINE: periodicity %d, latency %d (paper 8, 26)\n"
    vo.Core.Metrics.periodicity vo.Core.Metrics.latency;
  let rows = Core.Table2.compute () in
  let find t = List.find (fun (r : Core.Table2.row) -> r.tool = t) rows in
  Printf.printf
    "Vivado HLS quality vs optimized Verilog: %.1f%% (paper 89.7%%)\n"
    (find Core.Design.Vivado_hls).controllability

let ablation_scheduler () =
  section
    "Ablation (design choice): HLS memory ports x operator chaining";
  Printf.printf "%6s %10s %12s %10s %10s\n" "ports" "chain ns" "cycles" "fmax" "P MOPS";
  List.iter
    (fun ports ->
      List.iter
        (fun chain ->
          let cfg =
            {
              Chls.Schedule.read_ports = ports;
              write_ports = ports;
              multipliers = 2;
              chain_ns = chain;
            }
          in
          let c =
            Chls.Tool.sequential_circuit
              ~name:(Printf.sprintf "ab_%d_%.0f" ports chain)
              cfg Chls.Transform.default_options Chls.Idct_c.program
          in
          let rng = Axis.Block.Rand.create ~seed:5 () in
          let mats =
            List.init 2 (fun _ ->
                Idct.Reference.fdct (Axis.Block.Rand.block rng ~lo:(-256) ~hi:255))
          in
          let r = Axis.Driver.run ~timeout:30000 c mats in
          let rep = Hw.Synth.run c in
          Printf.printf "%6d %10.1f %12d %10.1f %10.2f\n%!" ports chain
            r.Axis.Driver.periodicity rep.Hw.Synth.fmax_mhz
            (rep.Hw.Synth.fmax_mhz /. float_of_int r.Axis.Driver.periodicity))
        [ 3.0; 5.0; 8.0; 12.0 ])
    [ 1; 2 ];
  Printf.printf
    "(longer chains cut the schedule but cost frequency — the SDC trade-off)\n"

let ablation_bsv_options () =
  section "Ablation (paper IV-B): the 24-point BSC option grid";
  let areas =
    List.map
      (fun o ->
        (Hw.Synth.run
           (Bsv.Idct_bsv.circuit ~options:o Bsv.Idct_bsv.optimized_design))
          .Hw.Synth.area)
      Bsv.Options.all
  in
  let mn = List.fold_left min max_int areas in
  let mx = List.fold_left max 0 areas in
  Printf.printf
    "area across %d configurations: min %d, max %d (spread %.1f%%)\n"
    (List.length areas) mn mx
    (100. *. float_of_int (mx - mn) /. float_of_int mn);
  Printf.printf
    "(the paper: \"the settings have a negligible impact\" — reproduced)\n"

let extension_second_kernel () =
  section
    "Extension: second kernel (8-tap circular FIR) — does the ranking extrapolate?";
  Printf.printf "%8s %12s %10s %10s %10s %8s\n" "tool" "periodicity" "fmax"
    "P MOPS" "A" "Q";
  let idct_q = ref [] and fir_q = ref [] in
  let idct_row tool =
    let m = Core.Evaluate.measure ~spec:Core.Flow.idct_spec ~matrices:3 (Core.Registry.optimized tool) in
    idct_q := (Core.Design.tool_name tool, Core.Metrics.quality m) :: !idct_q
  in
  List.iter idct_row [ Core.Design.Chisel; Core.Design.Dslx; Core.Design.Bambu ];
  (* The FIR designs are ordinary design points under the fir8 spec: the
     same staged pipeline measures them, including the bit-true check the
     old inline harness did by hand. *)
  List.iter
    (fun (tool, d) ->
      let name = Core.Design.tool_name tool in
      let m =
        Core.Evaluate.measure ~matrices:3 ~spec:Core.Second_kernel.spec d
      in
      let q = Core.Metrics.quality m in
      fir_q := (name, q) :: !fir_q;
      Printf.printf "%8s %12d %10.1f %10.2f %10d %8.0f\n%!" name
        m.Core.Metrics.periodicity m.Core.Metrics.fmax_mhz
        m.Core.Metrics.throughput_mops m.Core.Metrics.area q)
    Core.Second_kernel.designs;
  let rank l =
    List.sort (fun (_, a) (_, b) -> compare b a) l |> List.map fst
  in
  Printf.printf "IDCT quality ranking (chisel/xls/bambu): %s\n"
    (String.concat " > " (rank !idct_q));
  Printf.printf "FIR quality ranking:                     %s\n"
    (String.concat " > " (rank !fir_q));
  Printf.printf
    "(the paper cautions against extrapolating to other kernels; the FIR\n\
    \ favours HC even more, since the HLS designs stay memory-bound)\n"

(* ------------------------------------------------------------------ *)
(* Simulation engines: levelized batch (Hw.Compile, behind Hw.Sim) vs   *)
(* the retained cone engine (Hw.Cone) and reference interpreter         *)
(* ------------------------------------------------------------------ *)

type engine_row = {
  er_name : string;
  er_nodes : int;          (* netlist nodes *)
  er_compiled : int;       (* instructions in the levelized schedule *)
  er_ref_cps : float;      (* reference interpreter, cycles/sec *)
  er_cone_cps : float;     (* retained cone engine, cycles/sec *)
  er_level_cps : float;    (* levelized engine at batch 1, cycles/sec *)
  er_batch : int;          (* lanes in the batched run *)
  er_batch_cps : float;    (* levelized batched, aggregate lane-cycles/sec *)
}

let bench_batch = 8

let stream_circuit (d : Core.Design.t) =
  match d.Core.Design.impl with
  | Core.Design.Stream c -> Lazy.force c
  | Core.Design.Pcie _ -> assert false

(* Deterministic stimulus: every input wiggles every cycle, every output is
   read every cycle and folded into a checksum, so no engine can cheat and
   the checksums double as a correctness check.  [lane_salt] perturbs the
   stream per batch lane; lane 0 uses salt 0, so its checksum is comparable
   with the single-lane engines'. *)
let stimulus ~lane_salt k i = ((k * 0x9E37) lxor (i * 0x79B9)) + lane_salt

let drive ~set ~get ~step (c : Hw.Netlist.t) cycles =
  let ins = List.map fst c.Hw.Netlist.inputs
  and outs = List.map fst c.Hw.Netlist.outputs in
  let sum = ref 0 in
  let t0 = Unix.gettimeofday () in
  for k = 0 to cycles - 1 do
    List.iteri (fun i nm -> set nm (stimulus ~lane_salt:0 k i)) ins;
    List.iter (fun nm -> sum := !sum lxor get nm) outs;
    step ()
  done;
  (Unix.gettimeofday () -. t0, !sum)

(* Every lane driven with its own salted stream; only lane 0's outputs are
   folded into the checksum (the per-lane streams are cross-checked by
   Equiv.crosscheck_batch before any timing runs). *)
let drive_batch sim (c : Hw.Netlist.t) cycles =
  let ins = List.map fst c.Hw.Netlist.inputs
  and outs = List.map fst c.Hw.Netlist.outputs in
  let b = Hw.Sim.batch sim in
  let sum = ref 0 in
  let t0 = Unix.gettimeofday () in
  for k = 0 to cycles - 1 do
    for lane = 0 to b - 1 do
      List.iteri
        (fun i nm ->
          Hw.Sim.set_lane sim ~lane nm (stimulus ~lane_salt:(lane * 0x5b) k i))
        ins
    done;
    List.iter (fun nm -> sum := !sum lxor Hw.Sim.get_lane sim ~lane:0 nm) outs;
    Hw.Sim.batch_step sim
  done;
  (Unix.gettimeofday () -. t0, !sum)

(* Per-engine timing: calibrate THIS engine's cycle count until one timed
   run takes >= 0.3 s (a count calibrated on a fast engine would let a
   slow one take minutes, and vice versa leave the fast one measuring
   timer noise in microseconds), then take the best of 3 runs at that
   count.  [run] must create a fresh simulator per call so every run
   starts from reset. *)
let time_cps run =
  let target = 0.3 in
  let n = ref 512 in
  let dt = ref (fst (run !n)) in
  while !dt < target do
    (* Scale toward ~1.2x the target using the measured rate; the [max]
       guarantees progress even on a sub-resolution measurement. *)
    let scale = 1.2 *. target /. Float.max !dt 1e-6 in
    n := max (!n + 1) (int_of_float (float_of_int !n *. Float.min scale 64.));
    dt := fst (run !n)
  done;
  let best = ref !dt in
  for _ = 1 to 2 do
    let d, _ = run !n in
    if d < !best then best := d
  done;
  float_of_int !n /. Float.max !best epsilon_float

let measure_engines name c =
  (match Hw.Equiv.crosscheck ~cycles:256 c with
  | Hw.Equiv.Equivalent -> ()
  | r ->
      failwith
        (Format.asprintf "engine crosscheck failed on %s: %a" name
           Hw.Equiv.pp_result r));
  (match Hw.Equiv.crosscheck_batch ~cycles:128 ~lanes:bench_batch c with
  | Hw.Equiv.Equivalent -> ()
  | r ->
      failwith
        (Format.asprintf "batched crosscheck failed on %s: %a" name
           Hw.Equiv.pp_result r));
  let run_ref n =
    let itp = Hw.Interp.create c in
    drive ~set:(Hw.Interp.set itp) ~get:(Hw.Interp.get itp)
      ~step:(fun () -> Hw.Interp.step itp)
      c n
  in
  let run_cone n =
    let sim = Hw.Cone.create c in
    drive ~set:(Hw.Cone.set sim) ~get:(Hw.Cone.get sim)
      ~step:(fun () -> Hw.Cone.step sim)
      c n
  in
  let run_level n =
    let sim = Hw.Sim.create c in
    drive ~set:(Hw.Sim.set sim) ~get:(Hw.Sim.get sim)
      ~step:(fun () -> Hw.Sim.step sim)
      c n
  in
  let run_batch n = drive_batch (Hw.Sim.create_batch ~batch:bench_batch c) c n in
  (* Fixed-length checksum pass on fresh instances: all engines (and the
     batched run's lane 0) must fold the identical output stream. *)
  let check_cycles = 2048 in
  let _, ref_sum = run_ref check_cycles in
  let _, cone_sum = run_cone check_cycles in
  let _, level_sum = run_level check_cycles in
  let _, batch_sum = run_batch check_cycles in
  if not (cone_sum = ref_sum && level_sum = ref_sum && batch_sum = ref_sum)
  then failwith (Printf.sprintf "engine checksum mismatch on %s" name);
  let ref_cps = time_cps run_ref in
  let cone_cps = time_cps run_cone in
  let level_cps = time_cps run_level in
  (* Aggregate throughput: each batched step advances [bench_batch] lanes. *)
  let batch_cps = time_cps run_batch *. float_of_int bench_batch in
  {
    er_name = name;
    er_nodes = Hw.Netlist.num_nodes c;
    er_compiled = Hw.Compile.compiled_nodes (Hw.Compile.create c);
    er_ref_cps = ref_cps;
    er_cone_cps = cone_cps;
    er_level_cps = level_cps;
    er_batch = bench_batch;
    er_batch_cps = batch_cps;
  }

let sim_engine_rows () =
  let bambu_largest =
    (* The larger of the two Bambu designs by node count. *)
    let ci = stream_circuit (Core.Registry.initial Core.Design.Bambu)
    and co = stream_circuit (Core.Registry.optimized Core.Design.Bambu) in
    if Hw.Netlist.num_nodes ci >= Hw.Netlist.num_nodes co then
      ("bambu_initial", ci)
    else ("bambu_optimized", co)
  in
  let verilog =
    ("verilog_initial", stream_circuit (Core.Registry.initial Core.Design.Verilog))
  in
  List.map (fun (name, c) -> measure_engines name c) [ verilog; bambu_largest ]

let render_engine_rows rows =
  Printf.printf "%-18s %7s %8s %12s %12s %12s %14s %9s %9s\n" "design" "nodes"
    "compiled" "ref cyc/s" "cone cyc/s" "level cyc/s"
    (Printf.sprintf "batch%d lc/s" bench_batch)
    "lvl/ref" "bat/cone";
  List.iter
    (fun r ->
      Printf.printf "%-18s %7d %8d %12.0f %12.0f %12.0f %14.0f %8.2fx %8.2fx\n"
        r.er_name r.er_nodes r.er_compiled r.er_ref_cps r.er_cone_cps
        r.er_level_cps r.er_batch_cps
        (r.er_level_cps /. r.er_ref_cps)
        (r.er_batch_cps /. r.er_cone_cps))
    rows

(* The perf trajectory across PRs, per design: what the recorded engine of
   each era did on this benchmark.  PR 1's numbers are the committed
   BENCH_sim.json of that era (closure cone engine, this machine class);
   the current entry is re-measured by this run. *)
let pr1_recorded = [ ("verilog_initial", 45563.6, 3.302); ("bambu_initial", 200362.5, 3.135) ]

let write_engine_json path rows =
  (* temp-file + rename: a crash mid-bench never truncates the recorded
     artifact *)
  Core.Trace.write_atomic path (fun oc ->
  output_string oc "{\n  \"bench\": \"sim_engines\",\n  \"designs\": [\n";
  List.iteri
    (fun i r ->
      Printf.fprintf oc
        "    {\"name\": \"%s\", \"nodes\": %d, \"compiled_nodes\": %d, \
         \"reference_cps\": %.1f, \"cone_cps\": %.1f, \"level_cps\": %.1f, \
         \"batch\": %d, \"batch_lane_cps\": %.1f, \"speedup_vs_reference\": \
         %.3f, \"batch_speedup_vs_cone\": %.3f}%s\n"
        r.er_name r.er_nodes r.er_compiled r.er_ref_cps r.er_cone_cps
        r.er_level_cps r.er_batch r.er_batch_cps
        (r.er_level_cps /. r.er_ref_cps)
        (r.er_batch_cps /. r.er_cone_cps)
        (if i = List.length rows - 1 then "" else ","))
    rows;
  output_string oc "  ],\n  \"trajectory\": [\n";
  List.iteri
    (fun i r ->
      let pr1 =
        List.find_opt (fun (nm, _, _) -> nm = r.er_name) pr1_recorded
      in
      (match pr1 with
      | Some (_, cps, speedup) ->
          Printf.fprintf oc
            "    {\"design\": \"%s\", \"engine\": \"cone (PR 1, recorded)\", \
             \"cps\": %.1f, \"speedup_vs_reference\": %.3f},\n"
            r.er_name cps speedup
      | None -> ());
      Printf.fprintf oc
        "    {\"design\": \"%s\", \"engine\": \"cone (this run)\", \"cps\": \
         %.1f, \"speedup_vs_reference\": %.3f},\n"
        r.er_name r.er_cone_cps
        (r.er_cone_cps /. r.er_ref_cps);
      Printf.fprintf oc
        "    {\"design\": \"%s\", \"engine\": \"levelized batch=1\", \
         \"cps\": %.1f, \"speedup_vs_reference\": %.3f},\n"
        r.er_name r.er_level_cps
        (r.er_level_cps /. r.er_ref_cps);
      Printf.fprintf oc
        "    {\"design\": \"%s\", \"engine\": \"levelized batch=%d\", \
         \"cps\": %.1f, \"speedup_vs_reference\": %.3f}%s\n"
        r.er_name r.er_batch r.er_batch_cps
        (r.er_batch_cps /. r.er_ref_cps)
        (if i = List.length rows - 1 then "" else ","))
    rows;
  output_string oc "  ]\n}\n");
  Printf.printf "(wrote %s)\n%!" path

let sim_engines () =
  section
    "Simulation engines: levelized batch (Hw.Sim) vs cone engine vs \
     reference interpreter";
  let rows = sim_engine_rows () in
  render_engine_rows rows;
  write_engine_json "BENCH_sim.json" rows

(* ------------------------------------------------------------------ *)
(* Evaluation engine: sequential vs domain-parallel Fig. 1 sweep        *)
(* ------------------------------------------------------------------ *)

let force_all_circuits () =
  (* Force every lazy circuit once on this domain so construction cost
     does not skew either timed run — both runs then measure evaluation
     (simulation + synthesis) only. *)
  List.iter
    (fun tool ->
      List.iter
        (fun (d : Core.Design.t) ->
          match d.Core.Design.impl with
          | Core.Design.Stream c -> ignore (Lazy.force c)
          | Core.Design.Pcie p -> ignore (Lazy.force p.Core.Design.system))
        (Core.Registry.sweep tool))
    Core.Design.all_tools

let timed_fig1 jobs =
  Core.Fig1.clear_cache ();
  Core.Evaluate.clear_measure_cache ();
  let t0 = Unix.gettimeofday () in
  let series = Core.Fig1.compute ~jobs () in
  let dt = Unix.gettimeofday () -. t0 in
  (dt, series)

let write_eval_json path ~designs ~seq_s ~par_s ~jobs =
  Core.Trace.write_atomic path (fun oc ->
      Printf.fprintf oc
        "{\n\
        \  \"bench\": \"eval_parallel\",\n\
        \  \"designs\": %d,\n\
        \  \"available_cores\": %d,\n\
        \  \"sequential_s\": %.3f,\n\
        \  \"parallel_s\": %.3f,\n\
        \  \"jobs\": %d,\n\
        \  \"speedup\": %.3f\n\
         }\n"
        designs
        (Domain.recommended_domain_count ())
        seq_s par_s jobs (seq_s /. par_s));
  Printf.printf "(wrote %s)\n%!" path

let write_eval_json_skipped path ~cores =
  Core.Trace.write_atomic path (fun oc ->
      Printf.fprintf oc
        "{\n\
        \  \"bench\": \"eval_parallel\",\n\
        \  \"available_cores\": %d,\n\
        \  \"skipped\": true,\n\
        \  \"reason\": \"single core available; a parallel-speedup number \
         would only measure scheduler overhead\"\n\
         }\n"
        cores);
  Printf.printf "(wrote %s)\n%!" path

let eval_parallel () =
  section "Evaluation engine: sequential vs domain-parallel Fig. 1 sweep";
  let cores = Domain.recommended_domain_count () in
  if cores < 2 then begin
    (* Time-slicing domains on one core cannot show a speedup; recording
       the inevitable <1x number would read as a regression. *)
    Printf.printf
      "only %d core available — parallel speedup is not measurable, skipping\n"
      cores;
    write_eval_json_skipped "BENCH_eval.json" ~cores
  end
  else begin
    force_all_circuits ();
    let jobs = max 4 (Core.Parallel.default_jobs ()) in
    let seq_s, seq_series = timed_fig1 1 in
    let par_s, par_series = timed_fig1 jobs in
    let points s = List.concat_map (fun x -> x.Core.Fig1.points) s in
    if points seq_series <> points par_series then
      failwith "eval bench: parallel sweep diverged from the sequential sweep";
    let designs = List.length (points seq_series) in
    Printf.printf
      "%d designs: sequential %.2fs, %d jobs %.2fs -> %.2fx (on %d cores)\n"
      designs seq_s jobs par_s (seq_s /. par_s) cores;
    write_eval_json "BENCH_eval.json" ~designs ~seq_s ~par_s ~jobs
  end

(* ------------------------------------------------------------------ *)
(* Design-space exploration: strategy throughput over the full space    *)
(* ------------------------------------------------------------------ *)

type dse_row = {
  dr_strategy : string;
  dr_seed : int;
  dr_budget : int option;
  dr_evaluated : int;
  dr_seconds : float;
  dr_cache_hits : int;
  dr_frontier : int;
}

let dse_rows () =
  let spaces = List.map Dse.Space.of_tool Core.Design.all_tools in
  let timed strategy ?budget ~seed () =
    let t0 = Unix.gettimeofday () in
    let r =
      Dse.Engine.run ?budget ~seed ~strategy ~objective:Dse.Engine.Quality
        spaces
    in
    let dt = Unix.gettimeofday () -. t0 in
    {
      dr_strategy = Dse.Strategy.to_string strategy;
      dr_seed = seed;
      dr_budget = budget;
      dr_evaluated = r.Dse.Engine.res_stats.Dse.Engine.st_evaluated;
      dr_seconds = dt;
      dr_cache_hits = r.Dse.Engine.res_stats.Dse.Engine.st_cache_hits;
      dr_frontier = r.Dse.Engine.res_stats.Dse.Engine.st_frontier;
    }
  in
  (* Exhaustive runs cold — it measures real evaluation throughput over
     all 100 candidates.  The budgeted strategies then run warm, so their
     cache-hit rate shows how much of a search revisits known ground. *)
  Core.Evaluate.clear_measure_cache ();
  Core.Fig1.clear_cache ();
  (* explicit lets: a list literal would evaluate right-to-left and run
     the budgeted strategies before the cold exhaustive pass *)
  let exhaustive = timed Dse.Strategy.Exhaustive ~seed:0 () in
  let random = timed Dse.Strategy.Random ~budget:40 ~seed:42 () in
  let hillclimb = timed Dse.Strategy.Hillclimb ~budget:40 ~seed:42 () in
  [ exhaustive; random; hillclimb ]

let render_dse_rows rows =
  Printf.printf "%-12s %6s %8s %10s %10s %12s %10s %10s\n" "strategy" "seed"
    "budget" "evaluated" "seconds" "cands/sec" "cache-hit" "frontier";
  List.iter
    (fun r ->
      Printf.printf "%-12s %6d %8s %10d %10.3f %12.1f %9.0f%% %10d\n"
        r.dr_strategy r.dr_seed
        (match r.dr_budget with Some b -> string_of_int b | None -> "none")
        r.dr_evaluated r.dr_seconds
        (float_of_int r.dr_evaluated /. Float.max 1e-9 r.dr_seconds)
        (100.
        *. float_of_int r.dr_cache_hits
        /. float_of_int (max 1 r.dr_evaluated))
        r.dr_frontier)
    rows

let write_dse_json path rows =
  Core.Trace.write_atomic path (fun oc ->
      output_string oc "{\n  \"bench\": \"dse\",\n  \"strategies\": [\n";
      List.iteri
        (fun i r ->
          Printf.fprintf oc
            "    {\"strategy\": \"%s\", \"seed\": %d, \"budget\": %s, \
             \"evaluated\": %d, \"seconds\": %.3f, \"candidates_per_sec\": \
             %.1f, \"cache_hits\": %d, \"cache_hit_rate\": %.3f, \
             \"frontier_size\": %d}%s\n"
            r.dr_strategy r.dr_seed
            (match r.dr_budget with
            | Some b -> string_of_int b
            | None -> "null")
            r.dr_evaluated r.dr_seconds
            (float_of_int r.dr_evaluated /. Float.max 1e-9 r.dr_seconds)
            r.dr_cache_hits
            (float_of_int r.dr_cache_hits
            /. float_of_int (max 1 r.dr_evaluated))
            r.dr_frontier
            (if i = List.length rows - 1 then "" else ","))
        rows;
      output_string oc "  ]\n}\n");
  Printf.printf "(wrote %s)\n%!" path

let dse_bench () =
  section "Design-space exploration: strategy throughput (full 100-point space)";
  let rows = dse_rows () in
  render_dse_rows rows;
  write_dse_json "BENCH_dse.json" rows

(* ------------------------------------------------------------------ *)
(* Kernel registry: per-kernel evaluation throughput, cold vs warm      *)
(* ------------------------------------------------------------------ *)

type kernel_row = {
  kr_kernel : string;
  kr_designs : int;
  kr_cold_s : float;
  kr_warm_s : float;
  kr_cycles : int;
  kr_cps : float;  (* simulated cycles per wall second, cold *)
}

(* Each registered kernel's initial+optimized inventory, measured cold
   (fresh memo) then warm (pure memo reads).  The cycle count is the
   simulated stream length (latency + 2 further matrices at the design's
   periodicity), so cycles/sec compares kernels of very different
   design sizes on one scale. *)
let kernel_rows () =
  List.map
    (fun k ->
      let spec = Core.Kernel.spec k in
      let designs =
        List.sort_uniq
          (fun a b -> compare (Core.Flow.span_key a) (Core.Flow.span_key b))
          (List.concat_map
             (fun tool ->
               [ Core.Kernel.initial k tool; Core.Kernel.optimized k tool ])
             (Core.Kernel.tools k))
      in
      Core.Evaluate.clear_measure_cache ();
      let t0 = Unix.gettimeofday () in
      let ms = List.map (Core.Evaluate.measure ~matrices:3 ~spec) designs in
      let cold = Unix.gettimeofday () -. t0 in
      let t1 = Unix.gettimeofday () in
      let _ = List.map (Core.Evaluate.measure ~matrices:3 ~spec) designs in
      let warm = Unix.gettimeofday () -. t1 in
      let cycles =
        List.fold_left
          (fun acc (m : Core.Metrics.measured) ->
            acc + m.Core.Metrics.latency + (2 * m.Core.Metrics.periodicity))
          0 ms
      in
      {
        kr_kernel = Core.Kernel.name k;
        kr_designs = List.length designs;
        kr_cold_s = cold;
        kr_warm_s = warm;
        kr_cycles = cycles;
        kr_cps = float_of_int cycles /. Float.max 1e-9 cold;
      })
    Core.Kernel.all

let render_kernel_rows rows =
  Printf.printf "%-10s %8s %10s %10s %10s %12s %12s\n" "kernel" "designs"
    "cold s" "warm s" "speedup" "sim cycles" "cycles/sec";
  List.iter
    (fun r ->
      Printf.printf "%-10s %8d %10.3f %10.4f %9.0fx %12d %12.0f\n"
        r.kr_kernel r.kr_designs r.kr_cold_s r.kr_warm_s
        (r.kr_cold_s /. Float.max 1e-9 r.kr_warm_s)
        r.kr_cycles r.kr_cps)
    rows

let write_kernels_json path rows =
  Core.Trace.write_atomic path (fun oc ->
      output_string oc "{\n  \"bench\": \"kernels\",\n  \"kernels\": [\n";
      List.iteri
        (fun i r ->
          Printf.fprintf oc
            "    {\"kernel\": \"%s\", \"designs\": %d, \"cold_seconds\": \
             %.3f, \"warm_seconds\": %.4f, \"sim_cycles\": %d, \
             \"cycles_per_sec\": %.0f}%s\n"
            r.kr_kernel r.kr_designs r.kr_cold_s r.kr_warm_s r.kr_cycles
            r.kr_cps
            (if i = List.length rows - 1 then "" else ","))
        rows;
      output_string oc "  ]\n}\n");
  Printf.printf "(wrote %s)\n%!" path

let kernels_bench () =
  section "Kernel registry: per-kernel evaluation throughput (cold vs warm)";
  let rows = kernel_rows () in
  render_kernel_rows rows;
  write_kernels_json "BENCH_kernels.json" rows

(* ------------------------------------------------------------------ *)
(* Transformation scripts: apply+verify throughput, retiming payoff     *)
(* ------------------------------------------------------------------ *)

(* Two sides of lib/transfo worth tracking: how fast a verified script
   runs (every step discharges its obligation AND crosschecks the result
   through three engines, so this is really a verification benchmark),
   and what the flagship delayed transformation buys — the fmax of the
   IDCT row datapath before and after [retime 4] under the xcvu9p delay
   model. *)
let transfo_bench () =
  section "Transformation scripts: verified apply throughput, retime payoff";
  let subject () =
    Transfo.Subject.of_circuit
      (Chisel.Idct_gen.row_comb Chisel.Idct_gen.Inferred ~name:"bench_row")
  in
  let script = Transfo.Script.parse_exn "strength_reduce; narrow" in
  let runs = 5 in
  let t0 = Unix.gettimeofday () in
  let steps = ref 0 in
  for _ = 1 to runs do
    match Transfo.Engine.run script (subject ()) with
    | Ok r -> steps := !steps + List.length r.Transfo.Engine.rep_steps
    | Error e -> failwith (Transfo.Engine.error_to_string e)
  done;
  let apply_s = Unix.gettimeofday () -. t0 in
  let steps_per_sec = float_of_int !steps /. Float.max 1e-9 apply_s in
  let before = (subject ()).Transfo.Subject.circuit in
  let after =
    match
      Transfo.Engine.run (Transfo.Script.parse_exn "retime 4") (subject ())
    with
    | Ok r -> r.Transfo.Engine.rep_subject.Transfo.Subject.circuit
    | Error e -> failwith (Transfo.Engine.error_to_string e)
  in
  let tb = Hw.Timing.analyze Hw.Device.xcvu9p before in
  let ta = Hw.Timing.analyze Hw.Device.xcvu9p after in
  let speedup = ta.Hw.Timing.fmax_mhz /. tb.Hw.Timing.fmax_mhz in
  Printf.printf
    "verified script %S: %d steps in %.3fs (%.1f steps/s, 3-way \
     crosscheck included)\n"
    (Transfo.Script.to_string script)
    !steps apply_s steps_per_sec;
  Printf.printf
    "retime 4 on the row datapath: fmax %.1f -> %.1f MHz (%.2fx)\n"
    tb.Hw.Timing.fmax_mhz ta.Hw.Timing.fmax_mhz speedup;
  Core.Trace.write_atomic "BENCH_transfo.json" (fun oc ->
      Printf.fprintf oc
        "{\n\
        \  \"bench\": \"transfo\",\n\
        \  \"script\": \"%s\",\n\
        \  \"runs\": %d,\n\
        \  \"verified_steps\": %d,\n\
        \  \"seconds\": %.3f,\n\
        \  \"steps_per_sec\": %.1f,\n\
        \  \"retime\": {\"stages\": 4, \"fmax_before_mhz\": %.1f, \
         \"fmax_after_mhz\": %.1f, \"speedup\": %.3f}\n\
         }\n"
        (Transfo.Script.to_string script)
        runs !steps apply_s steps_per_sec tb.Hw.Timing.fmax_mhz
        ta.Hw.Timing.fmax_mhz speedup);
  Printf.printf "(wrote BENCH_transfo.json)\n%!"

(* ------------------------------------------------------------------ *)
(* Serve daemon: request throughput, cold store vs warm store           *)
(* ------------------------------------------------------------------ *)

(* One in-process daemon over a fresh store.  The cold pass computes and
   publishes every result; the warm passes clear the in-process memo
   before each batch, so every answer is served from the validated disk
   store — the restart-survival path a fresh client actually takes.
   Warm batches are timed individually for p50/p99, and one wedged
   client (connects, sends nothing) exercises the idle-deadline path so
   the hardening counters in BENCH_serve.json are non-trivial. *)

(* Nearest-rank percentile of an unsorted sample, in place. *)
let percentile p xs =
  let a = Array.of_list xs in
  Array.sort compare a;
  let n = Array.length a in
  if n = 0 then 0.
  else a.(min (n - 1) (int_of_float (ceil (p /. 100. *. float_of_int n)) - 1))

let serve_bench () =
  section "Serve daemon: batch throughput, cold store vs warm store";
  let tmp = Filename.get_temp_dir_name () in
  let socket =
    Filename.concat tmp (Printf.sprintf "hlsvhc_bench_%d.sock" (Unix.getpid ()))
  in
  let store_dir =
    Filename.concat tmp (Printf.sprintf "hlsvhc_bench_store_%d" (Unix.getpid ()))
  in
  Array.iter
    (fun f -> try Sys.remove (Filename.concat store_dir f) with Sys_error _ -> ())
    (if Sys.file_exists store_dir then Sys.readdir store_dir else [||]);
  Store.detach ();
  Core.Evaluate.clear_measure_cache ();
  let store = Result.get_ok (Store.attach store_dir) in
  let conn_timeout = 0.5 in
  let cfg =
    {
      (Serve.default_config ~socket_path:socket) with
      jobs = Some 2;
      store = Some store;
      conn_workers = 2;
      conn_timeout;
    }
  in
  let server = Domain.spawn (fun () -> Serve.run cfg) in
  let batch =
    List.map
      (fun label -> Serve.Client.eval_line ~tool:"verilog" ~label ~matrices:2 ())
      [ "initial"; "1 row + 8 col units"; "optimized" ]
  in
  let joined = ref None in
  let join_server () =
    match !joined with
    | Some c -> c
    | None ->
        (try ignore (Serve.Client.request ~socket [ "shutdown" ]) with _ -> ());
        let c = Domain.join server in
        joined := Some c;
        c
  in
  let finish () =
    ignore (join_server ());
    Store.detach ();
    Core.Evaluate.clear_measure_cache ()
  in
  Fun.protect ~finally:finish (fun () ->
      Serve.Client.wait_ready ~socket ();
      let timed_batch () =
        let t0 = Unix.gettimeofday () in
        Core.Evaluate.clear_measure_cache ();
        let rs = Serve.Client.request ~socket batch in
        List.iter
          (fun r ->
            match Serve.Client.parse_metrics r with
            | Ok _ -> ()
            | Error e -> failwith ("serve bench: bad response: " ^ e))
          rs;
        Unix.gettimeofday () -. t0
      in
      let cold_s = timed_batch () in
      let s_cold = Store.stats store in
      let warm_batches = 10 in
      let warm_lat = List.init warm_batches (fun _ -> timed_batch ()) in
      let warm_s = List.fold_left ( +. ) 0. warm_lat in
      let s_all = Store.stats store in
      (* one wedged client: connect, send nothing, let the idle deadline
         close it — the daemon must count a timeout, not hang *)
      let wedged = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect wedged (Unix.ADDR_UNIX socket);
      Unix.setsockopt_float wedged Unix.SO_RCVTIMEO (10. *. conn_timeout);
      (try
         while Unix.read wedged (Bytes.create 64) 0 64 > 0 do
           ()
         done
       with Unix.Unix_error _ -> ());
      (try Unix.close wedged with Unix.Unix_error _ -> ());
      let counters = join_server () in
      let reqs = List.length batch in
      let cold_rps = float_of_int reqs /. Float.max cold_s 1e-9 in
      let warm_reqs = reqs * warm_batches in
      let warm_rps = float_of_int warm_reqs /. Float.max warm_s 1e-9 in
      let warm_hits = s_all.Store.st_hits - s_cold.Store.st_hits in
      let warm_hit_rate = float_of_int warm_hits /. float_of_int warm_reqs in
      let p50 = 1000. *. percentile 50. warm_lat in
      let p99 = 1000. *. percentile 99. warm_lat in
      let timeouts = Atomic.get counters.Serve.conn_timeouts in
      let shed = Atomic.get counters.Serve.shed in
      let drops = Atomic.get counters.Serve.drops in
      Printf.printf
        "cold: %d requests in %.3fs (%.1f req/s, %d store misses, %d writes)\n"
        reqs cold_s cold_rps s_cold.Store.st_misses s_cold.Store.st_writes;
      Printf.printf
        "warm: %d requests in %.3fs (%.1f req/s, store hit rate %.2f) -> %.1fx\n"
        warm_reqs warm_s warm_rps warm_hit_rate (warm_rps /. cold_rps);
      Printf.printf
        "warm batch latency: p50 %.2f ms, p99 %.2f ms; hardening: \
         %d timeout(s), %d shed, %d drop(s)\n"
        p50 p99 timeouts shed drops;
      Core.Trace.write_atomic "BENCH_serve.json" (fun oc ->
          Printf.fprintf oc
            "{\n\
            \  \"bench\": \"serve\",\n\
            \  \"batch_size\": %d,\n\
            \  \"cold\": {\"requests\": %d, \"seconds\": %.3f, \
             \"requests_per_sec\": %.1f, \"store_misses\": %d, \
             \"store_writes\": %d},\n\
            \  \"warm\": {\"requests\": %d, \"seconds\": %.3f, \
             \"requests_per_sec\": %.1f, \"store_hits\": %d, \
             \"store_hit_rate\": %.3f},\n\
            \  \"warm_speedup\": %.3f,\n\
            \  \"latency_ms\": {\"p50\": %.3f, \"p99\": %.3f},\n\
            \  \"hardening\": {\"conn_timeouts\": %d, \"shed\": %d, \
             \"drops\": %d}\n\
             }\n"
            reqs reqs cold_s cold_rps s_cold.Store.st_misses
            s_cold.Store.st_writes warm_reqs warm_s warm_rps warm_hits
            warm_hit_rate (warm_rps /. cold_rps) p50 p99 timeouts shed drops);
      Printf.printf "(wrote BENCH_serve.json)\n%!")

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the substrate                           *)
(* ------------------------------------------------------------------ *)

let bechamel_suite () =
  section "Substrate micro-benchmarks (Bechamel)";
  let open Bechamel in
  let open Toolkit in
  let rng = Axis.Block.Rand.create ~seed:1 () in
  let coeffs =
    Idct.Reference.fdct (Axis.Block.Rand.block rng ~lo:(-256) ~hi:255)
  in
  let verilog_opt =
    match (Core.Registry.optimized Core.Design.Verilog).Core.Design.impl with
    | Core.Design.Stream c -> Lazy.force c
    | Core.Design.Pcie _ -> assert false
  in
  let sim = Hw.Sim.create verilog_opt in
  let tests =
    [
      Test.make ~name:"idct software (Chen-Wang)"
        (Staged.stage (fun () -> ignore (Idct.Chenwang.idct coeffs)));
      Test.make ~name:"idct C interpreter"
        (Staged.stage (fun () -> ignore (Chls.Idct_c.run coeffs)));
      Test.make ~name:"gate-level sim cycle (verilog opt)"
        (Staged.stage (fun () ->
             Hw.Sim.set sim Axis.Stream.s_valid 1;
             Hw.Sim.step sim));
      Test.make ~name:"synthesis report (verilog opt)"
        (Staged.stage (fun () -> ignore (Hw.Synth.run verilog_opt)));
      Test.make ~name:"parse + elaborate Verilog (rowcol)"
        (Staged.stage (fun () ->
             ignore (Core.Verilog_designs.rowcol_circuit ())));
      Test.make ~name:"BSC compile (optimized rules)"
        (Staged.stage (fun () ->
             ignore (Bsv.Idct_bsv.circuit Bsv.Idct_bsv.optimized_design)));
      Test.make ~name:"XLS elaborate + retime (8 stages)"
        (Staged.stage (fun () ->
             ignore (Dslx.Idct_dslx.design ~stages:8 ~name:"bench" ())));
      Test.make ~name:"HLS schedule (Bambu default)"
        (Staged.stage (fun () ->
             ignore
               (Chls.Schedule.schedule Chls.Schedule.default_config
                  (Chls.Transform.lower Chls.Transform.default_options
                     Chls.Idct_c.program))));
    ]
  in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 10) () in
  let instances = Instance.[ monotonic_clock ] in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let stats = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ ns ] ->
              if ns > 1e6 then
                Printf.printf "%-48s %10.3f ms/run\n%!" name (ns /. 1e6)
              else if ns > 1e3 then
                Printf.printf "%-48s %10.3f us/run\n%!" name (ns /. 1e3)
              else Printf.printf "%-48s %10.1f ns/run\n%!" name ns
          | _ -> Printf.printf "%-48s (no estimate)\n%!" name)
        stats)
    tests

let () =
  (* [--json] runs only the engine comparisons and records BENCH_sim.json,
     BENCH_eval.json, BENCH_dse.json and BENCH_kernels.json — the fast
     path CI and future PRs use for a perf trajectory. *)
  if Array.exists (( = ) "--json") Sys.argv then begin
    sim_engines ();
    eval_parallel ();
    dse_bench ();
    kernels_bench ();
    transfo_bench ();
    serve_bench ();
    section "done"
  end
  else begin
    table1 ();
    table2 ();
    fig1 ();
    ablation_verilog ();
    ablation_maxj ();
    ablation_chls ();
    ablation_scheduler ();
    ablation_bsv_options ();
    extension_second_kernel ();
    sim_engines ();
    eval_parallel ();
    dse_bench ();
    kernels_bench ();
    transfo_bench ();
    serve_bench ();
    bechamel_suite ();
    section "done"
  end
