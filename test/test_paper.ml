(* Integration tests for the paper-level claims: the metrics library, the
   design registry and the invariants of Table II / Fig. 1. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

(* ---------------- LOC metric ---------------- *)

let test_loc_count () =
  let src = "a;\n\n// comment only\nb;\n  \nc; // trailing comment\n" in
  check int "counts code lines" 3 (Core.Loc.count src)

let test_loc_delta () =
  check int "identical" 0 (Core.Loc.delta "a;\nb;" "b;\na;");
  check int "one added" 1 (Core.Loc.delta "a;" "a;\nb;");
  check int "one changed = add + remove" 2 (Core.Loc.delta "a;" "b;");
  check int "comments ignored" 0 (Core.Loc.delta "a;" "// c\na;")

(* ---------------- metric formulas ---------------- *)

let test_formulas () =
  check bool "automation of equal loc is zero" true
    (abs_float (Core.Metrics.automation ~verilog_loc:100 ~loc:100) < 1e-9);
  check bool "automation of half loc is 50%" true
    (abs_float (Core.Metrics.automation ~verilog_loc:100 ~loc:50 -. 50.) < 1e-9);
  check bool "controllability anchor" true
    (abs_float (Core.Metrics.controllability ~best:7. ~verilog_best:7. -. 100.) < 1e-9);
  check bool "flexibility" true
    (abs_float (Core.Metrics.flexibility ~best:10. ~initial:4. ~delta_loc:3 -. 2.) < 1e-9);
  check bool "flexibility zero dL" true
    (Core.Metrics.flexibility ~best:10. ~initial:4. ~delta_loc:0 = 0.)

(* ---------------- registry / designs ---------------- *)

let test_every_design_measures () =
  (* Every initial/optimized design is functional, protocol-clean and
     synthesizable: Evaluate.measure raises otherwise. *)
  List.iter
    (fun d ->
      let m = Core.Evaluate.measure ~spec:Core.Flow.idct_spec ~matrices:3 d in
      check bool
        (Printf.sprintf "%s %s has positive quality"
           (Core.Design.tool_name d.Core.Design.tool)
           d.Core.Design.label)
        true
        (Core.Metrics.quality m > 0.))
    (Core.Registry.all_designs ())

let test_sweep_sizes () =
  let size t = List.length (Core.Registry.sweep t) in
  check int "Verilog 3 designs" 3 (size Core.Design.Verilog);
  check int "Chisel 3 designs" 3 (size Core.Design.Chisel);
  check int "BSC 26 circuits" 26 (size Core.Design.Bsv);
  check int "XLS 19 circuits" 19 (size Core.Design.Dslx);
  check int "MaxJ 2 kernels" 2 (size Core.Design.Maxj);
  check int "Bambu 42 configurations" 42 (size Core.Design.Bambu);
  check int "Vivado HLS ladder" 5 (size Core.Design.Vivado_hls)

let test_table2_invariants () =
  let rows = Core.Table2.compute () in
  let find tool =
    List.find (fun (r : Core.Table2.row) -> r.tool = tool) rows
  in
  let verilog = find Core.Design.Verilog in
  (* alpha of the baseline is zero by definition *)
  check bool "alpha_V = 0" true (abs_float verilog.initial.alpha < 1e-9);
  check bool "C_Q(V) = 100%" true
    (abs_float (verilog.controllability -. 100.) < 1e-9);
  (* every optimized design beats (or at least matches) its initial one,
     except where the paper itself shows a regression is impossible *)
  List.iter
    (fun (r : Core.Table2.row) ->
      if r.tool <> Core.Design.Maxj then
        check bool
          (Core.Design.tool_name r.tool ^ ": optimization pays")
          true
          (r.optimized.quality >= r.initial.quality))
    rows;
  (* paper shape: Bambu is the least controllable tool *)
  let bambu = find Core.Design.Bambu in
  List.iter
    (fun (r : Core.Table2.row) ->
      if r.tool <> Core.Design.Bambu then
        check bool "Bambu has the lowest C_Q" true
          (bambu.controllability <= r.controllability))
    rows;
  (* paper shape: MaxJ tops raw throughput (PCIe beats AXI-Stream) *)
  let maxj = find Core.Design.Maxj in
  List.iter
    (fun (r : Core.Table2.row) ->
      check bool "MaxJ initial has the highest throughput" true
        (maxj.initial.measured.Core.Metrics.throughput_mops
        >= r.initial.measured.Core.Metrics.throughput_mops))
    rows;
  (* paper shape: XLS and Vivado HLS are the most flexible tools *)
  let flex = List.map (fun (r : Core.Table2.row) -> (r.tool, r.flexibility)) rows in
  let sorted = List.sort (fun (_, a) (_, b) -> compare b a) flex in
  let top2 = [ fst (List.nth sorted 0); fst (List.nth sorted 1) ] in
  check bool "XLS among the two most flexible" true
    (List.mem Core.Design.Dslx top2);
  check bool "Vivado HLS among the two most flexible" true
    (List.mem Core.Design.Vivado_hls top2);
  (* paper shape: the optimized RTL designs all land at periodicity 8,
     BSV at 9 (the scheduling bubble) *)
  check int "Verilog periodicity" 8 verilog.optimized.measured.Core.Metrics.periodicity;
  check int "BSV periodicity 9" 9
    (find Core.Design.Bsv).optimized.measured.Core.Metrics.periodicity;
  (* paper shape: push-button HLS is orders of magnitude below RTL *)
  check bool "Bambu quality well below Verilog" true
    (bambu.optimized.quality < 0.2 *. verilog.optimized.quality)

let test_verilog_loc_near_paper () =
  (* Our hand-written baseline should be in the ballpark of the paper's
     247/316 lines — a sanity check that the LOC pipeline is sane. *)
  let li = Core.Design.loc (Core.Registry.initial Core.Design.Verilog) in
  let lo = Core.Design.loc (Core.Registry.optimized Core.Design.Verilog) in
  check bool "initial in [180, 320]" true (li >= 180 && li <= 320);
  check bool "optimized in [180, 360]" true (lo >= 180 && lo <= 360)

let test_compliance_of_optimized_designs () =
  (* IEEE 1180 through the gate-level wrappers.  500 blocks per condition
     is roughly the statistical minimum for the mean-error criteria. *)
  List.iter
    (fun tool ->
      check bool
        (Core.Design.tool_name tool ^ " optimized complies")
        true
        (Core.Evaluate.check_compliance ~spec:Core.Flow.idct_spec ~blocks:500 (Core.Registry.optimized tool)))
    [ Core.Design.Verilog; Core.Design.Vivado_hls ]

let () =
  Alcotest.run "paper"
    [
      ( "loc",
        [
          Alcotest.test_case "count" `Quick test_loc_count;
          Alcotest.test_case "delta" `Quick test_loc_delta;
        ] );
      ("metrics", [ Alcotest.test_case "formulas" `Quick test_formulas ]);
      ( "registry",
        [
          Alcotest.test_case "all designs measurable" `Slow test_every_design_measures;
          Alcotest.test_case "sweep sizes" `Quick test_sweep_sizes;
          Alcotest.test_case "verilog loc sanity" `Quick test_verilog_loc_near_paper;
        ] );
      ( "table2",
        [
          Alcotest.test_case "invariants" `Slow test_table2_invariants;
          Alcotest.test_case "gate-level compliance" `Slow test_compliance_of_optimized_designs;
        ] );
    ]
