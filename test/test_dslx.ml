(* Tests for the DSLX front end: type checking, elaboration vs. the
   reference interpreter, dynamic indexing, loops and the pipeline knob. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

open Dslx.Ir

let fn name params ret body = { fname = name; params; ret; body }
let b32 = Bits 32
let lit v = Lit { width = 32; value = v }

let test_typecheck_ok () =
  let p =
    {
      fns =
        [
          fn "double"
            [ { pname = "x"; pty = b32 } ]
            b32
            (Bin (Hw.Netlist.Add, Var "x", Var "x"));
        ];
      top = "double";
    }
  in
  check bool "ok" true (Result.is_ok (Dslx.Typecheck.check_program p))

let expect_error p =
  match Dslx.Typecheck.check_program p with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "expected a type error"

let test_typecheck_errors () =
  (* width mismatch *)
  expect_error
    {
      fns =
        [
          fn "bad" [ { pname = "x"; pty = Bits 8 } ] (Bits 8)
            (Bin (Hw.Netlist.Add, Var "x", lit 1));
        ];
      top = "bad";
    };
  (* unbound variable *)
  expect_error { fns = [ fn "bad" [] b32 (Var "nope") ]; top = "bad" };
  (* array literal inconsistency *)
  expect_error
    {
      fns =
        [
          fn "bad" [] (Array (Bits 8, 2))
            (ArrayLit [ Lit { width = 8; value = 1 }; lit 2 ]);
        ];
      top = "bad";
    };
  (* if arms differ *)
  expect_error
    {
      fns =
        [
          fn "bad" [] b32
            (If (Lit { width = 1; value = 1 }, lit 1, Lit { width = 8; value = 1 }));
        ];
      top = "bad";
    };
  (* missing top *)
  expect_error { fns = [ fn "f" [] b32 (lit 0) ]; top = "g" };
  (* for accumulator type mismatch *)
  expect_error
    {
      fns =
        [
          fn "bad" [] b32
            (For
               {
                 var = "i";
                 count = 4;
                 acc = "a";
                 init = lit 0;
                 body = Lit { width = 8; value = 1 };
               });
        ];
      top = "bad";
    }

let eval_top p inputs = Dslx.Lower.interpret p inputs

let circuit_eval p inputs =
  let c = Dslx.Lower.circuit p in
  let sim = Hw.Sim.create c in
  List.iteri
    (fun i v -> Hw.Sim.set sim (fst (List.nth c.Hw.Netlist.inputs i)) v)
    inputs;
  List.map (fun (name, _) -> Hw.Sim.get sim name) c.Hw.Netlist.outputs

let test_for_loop_fold () =
  (* sum 0..7 via a counted fold *)
  let p =
    {
      fns =
        [
          fn "sum" [] b32
            (For
               {
                 var = "i";
                 count = 8;
                 acc = "a";
                 init = lit 0;
                 body = Bin (Hw.Netlist.Add, Var "a", Cast (Var "i", 32, `Unsigned));
               });
        ];
      top = "sum";
    }
  in
  check int "interpreted" 28 (List.hd (eval_top p []));
  check int "elaborated" 28 (List.hd (circuit_eval p []))

let test_dynamic_index () =
  let p =
    {
      fns =
        [
          fn "pick"
            [
              { pname = "arr"; pty = Array (Bits 8, 4) };
              { pname = "i"; pty = Bits 2 };
            ]
            (Bits 8)
            (Index (Var "arr", Var "i"));
        ];
      top = "pick";
    }
  in
  check bool "typechecks" true (Result.is_ok (Dslx.Typecheck.check_program p));
  for i = 0 to 3 do
    check int
      (Printf.sprintf "select %d" i)
      (10 * (i + 1))
      (List.hd (circuit_eval p [ 10; 20; 30; 40; i ]))
  done

let test_dynamic_update () =
  let p =
    {
      fns =
        [
          fn "set"
            [
              { pname = "arr"; pty = Array (Bits 8, 4) };
              { pname = "i"; pty = Bits 2 };
            ]
            (Array (Bits 8, 4))
            (Update (Var "arr", Var "i", Lit { width = 8; value = 99 }));
        ];
      top = "set";
    }
  in
  let out = circuit_eval p [ 1; 2; 3; 4; 2 ] in
  check bool "updated slot" true (List.nth out 2 = 99);
  check bool "others preserved" true
    (List.nth out 0 = 1 && List.nth out 1 = 2 && List.nth out 3 = 4)

let idct_program_props =
  [
    QCheck.Test.make ~name:"idct program: interpreter = Chen-Wang" ~count:40
      QCheck.(int_range 0 100000)
      (fun seed ->
        let rng = Axis.Block.Rand.create ~seed () in
        let blk = Idct.Reference.fdct (Axis.Block.Rand.block rng ~lo:(-256) ~hi:255) in
        let outs =
          Dslx.Lower.interpret Dslx.Idct_dslx.program
            (Array.to_list (Array.map (fun v -> v land 0xFFF) blk))
        in
        let signed9 v = if v land 0x100 <> 0 then v - 512 else v in
        List.for_all2
          (fun got want -> signed9 got = want)
          outs
          (Array.to_list (Idct.Chenwang.idct blk)));
  ]

let mats n =
  let rng = Axis.Block.Rand.create ~seed:41 () in
  List.init n (fun _ ->
      Idct.Reference.fdct (Axis.Block.Rand.block rng ~lo:(-256) ~hi:255))

let test_stage_sweep_functional () =
  (* The pipeliner must preserve the function for every stage count. *)
  let inputs = mats 3 in
  let expected = List.map Idct.Chenwang.idct inputs in
  List.iter
    (fun stages ->
      let d = Dslx.Idct_dslx.design ~stages ~name:(Printf.sprintf "s%d" stages) () in
      let r = Axis.Driver.run d inputs in
      check bool (Printf.sprintf "stages=%d bit-true" stages) true
        (List.for_all2 Axis.Block.equal r.Axis.Driver.outputs expected))
    [ 0; 1; 2; 5; 8; 13; 18 ]

let test_stage_sweep_monotone_fmax () =
  (* More stages must never slow the kernel down appreciably; by eight
     stages the frequency must have grown by at least 3x over the
     combinational design (the effect the paper exploits). *)
  let fmax stages =
    (Hw.Synth.run
       (Dslx.Idct_dslx.design ~stages ~name:(Printf.sprintf "m%d" stages) ()))
      .Hw.Synth.fmax_mhz
  in
  let f0 = fmax 0 and f8 = fmax 8 in
  check bool "8 stages at least 3x faster" true (f8 > 3. *. f0)

let test_stage_latency_grows () =
  let lat stages =
    (Axis.Driver.run
       (Dslx.Idct_dslx.design ~stages ~name:(Printf.sprintf "l%d" stages) ())
       (mats 2))
      .Axis.Driver.latency
  in
  check int "comb latency 17" 17 (lat 0);
  check int "4-stage latency 21" 21 (lat 4)

let () =
  Alcotest.run "dslx"
    [
      ( "typecheck",
        [
          Alcotest.test_case "accepts" `Quick test_typecheck_ok;
          Alcotest.test_case "rejects" `Quick test_typecheck_errors;
        ] );
      ( "elaboration",
        [
          Alcotest.test_case "counted fold" `Quick test_for_loop_fold;
          Alcotest.test_case "dynamic index" `Quick test_dynamic_index;
          Alcotest.test_case "dynamic update" `Quick test_dynamic_update;
        ] );
      ("idct", List.map QCheck_alcotest.to_alcotest idct_program_props);
      ( "pipeline knob",
        [
          Alcotest.test_case "functional across stages" `Slow test_stage_sweep_functional;
          Alcotest.test_case "frequency scales" `Slow test_stage_sweep_monotone_fmax;
          Alcotest.test_case "latency grows with stages" `Quick test_stage_latency_grows;
        ] );
    ]
