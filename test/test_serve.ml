(* Soak and hostile-traffic tests for the [hlsvhc serve] daemon
   (DESIGN.md §14, §16): concurrent clients, mixed memo/store hits and
   misses, an injected engine crash mid-request, and the hardening
   layer — silent clients timed out while healthy ones are served,
   half-line hangups, mid-response drops, oversized batches, load
   shedding with a deterministically-retrying client, and a SIGTERM
   graceful drain.

   Every hostile path is driven deterministically: by raw sockets doing
   exactly the wrong thing, or by the connection fault specs
   ([slow-client]/[conn-drop]/[shed]) with counted seeds.  No sleep here
   exceeds the connection timeout under test. *)

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int
let string = Alcotest.string

let faulted_label = "1 row + 8 col units"
(* span key = "Tool/label", and the Verilog tool's display name is its
   toolchain, Vivado *)
let faulted_key = "Vivado/" ^ faulted_label

let eval_initial = Serve.Client.eval_line ~tool:"verilog" ~label:"initial" ~matrices:2 ()
let eval_optimized = Serve.Client.eval_line ~tool:"verilog" ~label:"optimized" ~matrices:2 ()
let eval_faulted = Serve.Client.eval_line ~tool:"verilog" ~label:faulted_label ~matrices:1 ()

let batch = [ eval_initial; eval_optimized; eval_faulted; "ping" ]

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let contains ~sub s =
  let n = String.length sub in
  let rec go i =
    i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
  in
  go 0

let tmp_path pat =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf pat (Unix.getpid ()))

(* A raw client socket for doing precisely the wrong thing. *)
let raw_connect socket =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX socket);
  fd

let send_string fd s =
  ignore (Unix.write fd (Bytes.of_string s) 0 (String.length s))

(* Block until the server closes the fd (EOF), bounded by [timeout_s];
   true iff EOF arrived in time. *)
let wait_eof ?(timeout_s = 5.0) fd =
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout_s;
  let b = Bytes.create 256 in
  let rec go () =
    match Unix.read fd b 0 256 with
    | 0 -> true
    | _ -> go ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        false
    | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> true
  in
  go ()

let check_batch_responses who responses =
  match responses with
  | [ r1; r2; r3; r4 ] ->
      (match Serve.Client.parse_metrics r1 with
      | Ok _ -> ()
      | Error e -> Alcotest.fail (who ^ ": initial not ok: " ^ e));
      (match Serve.Client.parse_metrics r2 with
      | Ok _ -> ()
      | Error e -> Alcotest.fail (who ^ ": optimized not ok: " ^ e));
      check bool (who ^ ": faulted point answers err") true
        (has_prefix ~prefix:"err\t" r3);
      check bool (who ^ ": error names the design") true
        (contains ~sub:faulted_key r3);
      check bool (who ^ ": error typed synth-failure") true
        (contains ~sub:"synth-failure" r3);
      check string (who ^ ": ping still answered") "ok\tpong" r4
  | rs ->
      Alcotest.fail
        (Printf.sprintf "%s: %d responses to a 4-request batch" who
           (List.length rs))

let test_soak () =
  let socket = tmp_path "hlsvhc_serve_%d.sock" in
  let store_dir = tmp_path "hlsvhc_serve_store_%d" in
  Store.detach ();
  Core.Evaluate.clear_measure_cache ();
  let store = Result.get_ok (Store.attach store_dir) in
  let cfg =
    {
      (Serve.default_config ~socket_path:socket) with
      jobs = Some 2;
      store = Some store;
    }
  in
  let server = Domain.spawn (fun () -> Serve.run cfg) in
  let cleanup () =
    Core.Faultinject.disarm ();
    Store.detach ();
    Core.Evaluate.clear_measure_cache ();
    try Unix.unlink socket with Unix.Unix_error _ -> ()
  in
  Fun.protect ~finally:cleanup (fun () ->
      Serve.Client.wait_ready ~socket ();
      (* one design's synthesis stage crashes on every attempt *)
      Core.Faultinject.arm
        { Core.Faultinject.fault = Crash "synthesize";
          target = faulted_key;
          seed = 0;
        };
      let clients =
        List.init 3 (fun _c ->
            Domain.spawn (fun () ->
                List.init 2 (fun _ -> Serve.Client.request ~socket batch)))
      in
      let all_responses = List.map Domain.join clients in
      List.iteri
        (fun c batches ->
          List.iteri
            (fun b rs ->
              check_batch_responses (Printf.sprintf "client %d batch %d" c b) rs)
            batches)
        all_responses;
      (* heal: disarm and re-request the point that kept failing *)
      Core.Faultinject.disarm ();
      (match Serve.Client.request ~socket [ eval_faulted ] with
      | [ r ] -> (
          match Serve.Client.parse_metrics r with
          | Ok _ -> ()
          | Error e -> Alcotest.fail ("healed request not ok: " ^ e))
      | rs ->
          Alcotest.fail
            (Printf.sprintf "%d responses to the healed request"
               (List.length rs)));
      (* truthful counters: 3 clients x 2 batches x 3 evals + 1 healed *)
      (match Serve.Client.request ~socket [ "stats" ] with
      | [ s ] ->
          check bool "stats is ok" true (has_prefix ~prefix:"ok\t" s);
          check bool "19 evals served" true (contains ~sub:"evals=19" s);
          check bool "6 injected failures" true (contains ~sub:"errors=6" s);
          check bool "no timeouts in a healthy soak" true
            (contains ~sub:"timeouts=0" s);
          check bool "nothing shed in a healthy soak" true
            (contains ~sub:"shed=0" s);
          check bool "stats reports the store" true
            (contains ~sub:("store=" ^ store_dir) s)
      | rs ->
          Alcotest.fail
            (Printf.sprintf "%d responses to stats" (List.length rs)));
      (* orderly shutdown *)
      (match Serve.Client.request ~socket [ "shutdown" ] with
      | [ "ok\tbye" ] -> ()
      | rs ->
          Alcotest.fail ("unexpected shutdown reply: " ^ String.concat "; " rs));
      let counters = Domain.join server in
      check int "daemon counted every error" 6
        (Atomic.get counters.Serve.eval_errors);
      check int "daemon counted every eval" 19
        (Atomic.get counters.Serve.evals);
      (* only successful measurements persist: initial@2, optimized@2 and
         the healed faulted point@1 *)
      check int "store holds the three good results" 3
        (Store.entry_count store);
      (* the acceptance criterion: after the soak, fsck finds nothing to
         complain about *)
      match Store.fsck store_dir with
      | Ok r ->
          check int "fsck: 3 entries" 3 r.Store.fk_total;
          check int "fsck: 0 invalid after the soak" 0
            (List.length r.Store.fk_invalid)
      | Error e -> Alcotest.fail ("fsck after soak: " ^ e))

let test_bad_requests () =
  let socket = tmp_path "hlsvhc_serve_bad_%d.sock" in
  Store.detach ();
  Core.Evaluate.clear_measure_cache ();
  let cfg =
    { (Serve.default_config ~socket_path:socket) with jobs = Some 1 }
  in
  let server = Domain.spawn (fun () -> Serve.run cfg) in
  Fun.protect
    ~finally:(fun () ->
      Core.Evaluate.clear_measure_cache ();
      try Unix.unlink socket with Unix.Unix_error _ -> ())
    (fun () ->
      Serve.Client.wait_ready ~socket ();
      let lines =
        [
          "eval\tnosuchtool\t2\tinitial";
          "eval\tverilog\t0\tinitial";
          "eval\tverilog\t2\tno such label";
          (* the optional 5th field must be a registered kernel, and the
             tool must belong to that kernel's inventory *)
          "eval\tverilog\t2\tinitial\tnosuchkernel";
          "eval\tverilog\t2\tinitial\tfir8";
          "frobnicate";
          "ping";
          (* a kernel-qualified eval of a real design point succeeds *)
          Serve.Client.eval_line ~kernel:"fir8" ~tool:"chisel" ~label:"fir"
            ~matrices:1 ();
        ]
      in
      (match Serve.Client.request ~socket lines with
      | [ b1; b2; b3; b4; b5; b6; ok; fir ] ->
          List.iter
            (fun b ->
              check bool "malformed request answers bad" true
                (has_prefix ~prefix:"bad\t" b))
            [ b1; b2; b3; b4; b5; b6 ];
          check bool "unknown kernel diagnosed" true
            (has_prefix ~prefix:"bad\tunknown kernel" b4);
          check string "daemon unpoisoned" "ok\tpong" ok;
          check bool "kernel-qualified eval answers ok" true
            (has_prefix ~prefix:"ok\t" fir);
          check bool "kernel-qualified metrics parse" true
            (Result.is_ok (Serve.Client.parse_metrics fir))
      | rs ->
          Alcotest.fail
            (Printf.sprintf "%d responses to an 8-request batch"
               (List.length rs)));
      (match Serve.Client.request ~socket [ "shutdown" ] with
      | [ "ok\tbye" ] -> ()
      | rs ->
          Alcotest.fail ("unexpected shutdown reply: " ^ String.concat "; " rs));
      ignore (Domain.join server))

(* A client that connects and never sends must cost one worker slot for
   the connection timeout — a concurrent healthy client is answered
   meanwhile — and then be closed and counted.  A client that sends half
   a line and hangs up is a drop, not a crash. *)
let test_hostile_clients () =
  let socket = tmp_path "hlsvhc_serve_hostile_%d.sock" in
  Store.detach ();
  Core.Evaluate.clear_measure_cache ();
  let timeout = 0.6 in
  let cfg =
    {
      (Serve.default_config ~socket_path:socket) with
      jobs = Some 1;
      conn_workers = 2;
      conn_timeout = timeout;
      batch_deadline = 2.0 *. timeout;
    }
  in
  let server = Domain.spawn (fun () -> Serve.run cfg) in
  Fun.protect
    ~finally:(fun () ->
      Core.Evaluate.clear_measure_cache ();
      try Unix.unlink socket with Unix.Unix_error _ -> ())
    (fun () ->
      Serve.Client.wait_ready ~socket ();
      (* connect-and-silence, holding a slot... *)
      let silent = raw_connect socket in
      (* ...while a healthy client is served by the other worker *)
      let t0 = Unix.gettimeofday () in
      (match Serve.Client.request ~socket [ eval_initial; "ping" ] with
      | [ m; "ok\tpong" ] ->
          check bool "healthy client answered beside a silent one" true
            (Result.is_ok (Serve.Client.parse_metrics m))
      | rs ->
          Alcotest.fail
            ("healthy client beside silent one: " ^ String.concat "; " rs));
      check bool "healthy client answered within the silent one's timeout"
        true
        (Unix.gettimeofday () -. t0 < timeout +. 2.0);
      (* the silent connection is closed by the daemon, not held forever *)
      check bool "silent client closed after the deadline" true
        (wait_eof ~timeout_s:(4.0 *. timeout) silent);
      (try Unix.close silent with Unix.Unix_error _ -> ());
      (* half a line, then hangup: a drop, and the daemon keeps serving *)
      let half = raw_connect socket in
      send_string half "eval\tveri";
      Unix.close half;
      (* disconnect mid-response, server-side injected: conn-drop with
         seed 1 writes exactly one of two responses then hangs up *)
      Core.Faultinject.arm
        { Core.Faultinject.fault = Conn_drop; target = ""; seed = 1 };
      (match Serve.Client.request_result ~socket [ "ping"; "ping" ] with
      | Error (Serve.Client.Closed_mid_response [ "ok\tpong" ]) -> ()
      | Error e ->
          Alcotest.fail
            ("conn-drop: wrong error: " ^ Serve.Client.error_to_string e)
      | Ok rs ->
          Alcotest.fail ("conn-drop: unexpectedly ok: " ^ String.concat ";" rs));
      Core.Faultinject.disarm ();
      (* the daemon survived all of it *)
      (match Serve.Client.request ~socket [ "stats" ] with
      | [ s ] ->
          check bool "stats ok after hostile clients" true
            (has_prefix ~prefix:"ok\t" s);
          check bool "silent client counted as timeout" true
            (contains ~sub:"timeouts=1" s);
          check bool "hangups counted as drops" true (contains ~sub:"drops=" s)
      | rs -> Alcotest.fail ("stats: " ^ String.concat "; " rs));
      (match Serve.Client.request ~socket [ "shutdown" ] with
      | [ "ok\tbye" ] -> ()
      | rs -> Alcotest.fail ("shutdown: " ^ String.concat "; " rs));
      let counters = Domain.join server in
      check int "one connection timed out" 1
        (Atomic.get counters.Serve.conn_timeouts);
      (* the half-line hangup and the injected drop *)
      check int "two connections dropped" 2 (Atomic.get counters.Serve.drops))

(* An oversized batch answers one [bad] line instead of buffering
   unboundedly. *)
let test_oversized_batch () =
  let socket = tmp_path "hlsvhc_serve_big_%d.sock" in
  Store.detach ();
  Core.Evaluate.clear_measure_cache ();
  let cfg =
    {
      (Serve.default_config ~socket_path:socket) with
      jobs = Some 1;
      max_batch = 4;
    }
  in
  let server = Domain.spawn (fun () -> Serve.run cfg) in
  Fun.protect
    ~finally:(fun () ->
      Core.Evaluate.clear_measure_cache ();
      try Unix.unlink socket with Unix.Unix_error _ -> ())
    (fun () ->
      Serve.Client.wait_ready ~socket ();
      (match
         Serve.Client.request_result ~socket
           [ "ping"; "ping"; "ping"; "ping"; "ping"; "ping" ]
       with
      | Error (Serve.Client.Closed_mid_response [ only ]) ->
          check bool "oversized batch answers one bad line" true
            (has_prefix ~prefix:"bad\tbatch too large" only)
      | Ok rs ->
          Alcotest.fail
            ("oversized batch unexpectedly ok: " ^ String.concat "; " rs)
      | Error e ->
          Alcotest.fail
            ("oversized batch: wrong error: " ^ Serve.Client.error_to_string e));
      (* a normal-size batch right after still works *)
      (match Serve.Client.request ~socket [ "ping" ] with
      | [ "ok\tpong" ] -> ()
      | rs -> Alcotest.fail ("after oversize: " ^ String.concat "; " rs));
      (match Serve.Client.request ~socket [ "shutdown" ] with
      | [ "ok\tbye" ] -> ()
      | rs -> Alcotest.fail ("shutdown: " ^ String.concat "; " rs));
      ignore (Domain.join server))

(* Load shedding round-trip: the [shed] fault (seed 2) sheds exactly the
   first two connections with [busy\tretry-after\tMS]; a plain request
   sees the typed [Busy], and the seeded retrying client backs off and
   succeeds on its third attempt. *)
let test_shed_and_retry () =
  let socket = tmp_path "hlsvhc_serve_shed_%d.sock" in
  Store.detach ();
  Core.Evaluate.clear_measure_cache ();
  let cfg =
    { (Serve.default_config ~socket_path:socket) with jobs = Some 1 }
  in
  let server = Domain.spawn (fun () -> Serve.run cfg) in
  Fun.protect
    ~finally:(fun () ->
      Core.Faultinject.disarm ();
      Core.Evaluate.clear_measure_cache ();
      try Unix.unlink socket with Unix.Unix_error _ -> ())
    (fun () ->
      Serve.Client.wait_ready ~socket ();
      (* the schedule itself is deterministic and grows *)
      let d1 = Serve.Client.retry_delays ~seed:7 ~attempts:4 ~base_ms:25 in
      let d2 = Serve.Client.retry_delays ~seed:7 ~attempts:4 ~base_ms:25 in
      check (Alcotest.list int) "same seed, same backoff schedule" d1 d2;
      check bool "backoff grows" true
        (List.nth d1 3 > List.nth d1 0);
      check bool "different seed, different jitter" true
        (d1 <> Serve.Client.retry_delays ~seed:8 ~attempts:4 ~base_ms:25);
      Core.Faultinject.arm
        { Core.Faultinject.fault = Shed; target = ""; seed = 2 };
      (* a non-retrying client sees the typed Busy with the hint *)
      (match Serve.Client.request_result ~socket [ "ping" ] with
      | Error (Serve.Client.Busy ms) ->
          check int "busy carries the daemon's retry-after hint" 100 ms
      | Error e ->
          Alcotest.fail ("shed: wrong error: " ^ Serve.Client.error_to_string e)
      | Ok rs -> Alcotest.fail ("shed: unexpectedly ok: " ^ String.concat ";" rs));
      (* one shed remains; the retrying client eats it and succeeds *)
      (match
         Serve.Client.request_retry ~seed:1 ~base_ms:5 ~socket
           [ "ping"; eval_initial ]
       with
      | Ok [ "ok\tpong"; m ] ->
          check bool "retried batch metrics parse" true
            (Result.is_ok (Serve.Client.parse_metrics m))
      | Ok rs -> Alcotest.fail ("retry: odd responses: " ^ String.concat ";" rs)
      | Error e ->
          Alcotest.fail
            ("retrying client did not recover: "
           ^ Serve.Client.error_to_string e));
      Core.Faultinject.disarm ();
      (match Serve.Client.request ~socket [ "shutdown" ] with
      | [ "ok\tbye" ] -> ()
      | rs -> Alcotest.fail ("shutdown: " ^ String.concat "; " rs));
      let counters = Domain.join server in
      check int "exactly two connections shed" 2
        (Atomic.get counters.Serve.shed))

(* SIGTERM mid-traffic drains: the in-flight batch is answered, the
   daemon returns its counters, and the socket file is unlinked. *)
let test_sigterm_drain () =
  let socket = tmp_path "hlsvhc_serve_drain_%d.sock" in
  Store.detach ();
  Core.Evaluate.clear_measure_cache ();
  let cfg =
    { (Serve.default_config ~socket_path:socket) with jobs = Some 1 }
  in
  let server = Domain.spawn (fun () -> Serve.run cfg) in
  Fun.protect
    ~finally:(fun () ->
      Core.Evaluate.clear_measure_cache ();
      try Unix.unlink socket with Unix.Unix_error _ -> ())
    (fun () ->
      Serve.Client.wait_ready ~socket ();
      let sent = Atomic.make false in
      let client =
        Domain.spawn (fun () ->
            (* raw client so we control the phases: send the batch, let
               the main domain fire SIGTERM, then collect responses *)
            let fd = raw_connect socket in
            send_string fd (eval_initial ^ "\nping\n\n");
            Atomic.set sent true;
            Unix.setsockopt_float fd Unix.SO_RCVTIMEO 30.0;
            let buf = Buffer.create 256 in
            let b = Bytes.create 1024 in
            let rec slurp () =
              match Unix.read fd b 0 1024 with
              | 0 -> ()
              | n ->
                  Buffer.add_subbytes buf b 0 n;
                  slurp ()
              | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> ()
            in
            slurp ();
            (try Unix.close fd with Unix.Unix_error _ -> ());
            Buffer.contents buf)
      in
      while not (Atomic.get sent) do
        Unix.sleepf 0.005
      done;
      (* give the acceptor a beat to hand the connection to a worker,
         then ask the whole process to drain *)
      Unix.sleepf 0.15;
      Unix.kill (Unix.getpid ()) Sys.sigterm;
      let answers = Domain.join client in
      check bool "in-flight batch answered during drain" true
        (contains ~sub:"ok\tpong" answers
        && has_prefix ~prefix:"ok\t" answers);
      let counters = Domain.join server in
      (* the readiness ping plus the raw batch client *)
      check int "drained daemon served both connections" 2
        (Atomic.get counters.Serve.conns);
      check bool "socket unlinked after drain" false (Sys.file_exists socket);
      (* the daemon restored the default SIGTERM disposition on exit *)
      match Sys.signal Sys.sigterm Sys.Signal_default with
      | Sys.Signal_default -> ()
      | _ -> Alcotest.fail "SIGTERM disposition not restored")

let () =
  Alcotest.run "serve"
    [
      ( "daemon",
        [
          Alcotest.test_case "soak: concurrent clients + injected crash" `Quick
            test_soak;
          Alcotest.test_case "malformed requests poison nothing" `Quick
            test_bad_requests;
        ] );
      ( "hardening",
        [
          Alcotest.test_case "silent + half-line + dropped clients" `Quick
            test_hostile_clients;
          Alcotest.test_case "oversized batch answers one bad line" `Quick
            test_oversized_batch;
          Alcotest.test_case "shed busy round-trip, retrying client heals"
            `Quick test_shed_and_retry;
          Alcotest.test_case "SIGTERM drains: batch answered, socket unlinked"
            `Quick test_sigterm_drain;
        ] );
    ]
