(* Soak test for the [hlsvhc serve] daemon (DESIGN.md §14): concurrent
   clients, mixed memo/store hits and misses, and an injected engine
   crash mid-request.

   One in-process daemon on a Unix socket, backed by a fresh persistent
   store, takes batches from three concurrent client domains while a
   [Crash "synthesize"] fault targets exactly one design.  The faulted
   point must answer with its typed error line — batch after batch —
   while its batch-mates keep answering metrics; after disarming, the
   same request heals to an [ok].  The daemon itself must survive all of
   it, report truthful counters, shut down on request, and leave exactly
   the successful measurements in the store. *)

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int
let string = Alcotest.string

let faulted_label = "1 row + 8 col units"
(* span key = "Tool/label", and the Verilog tool's display name is its
   toolchain, Vivado *)
let faulted_key = "Vivado/" ^ faulted_label

let eval_initial = Serve.Client.eval_line ~tool:"verilog" ~label:"initial" ~matrices:2 ()
let eval_optimized = Serve.Client.eval_line ~tool:"verilog" ~label:"optimized" ~matrices:2 ()
let eval_faulted = Serve.Client.eval_line ~tool:"verilog" ~label:faulted_label ~matrices:1 ()

let batch = [ eval_initial; eval_optimized; eval_faulted; "ping" ]

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let contains ~sub s =
  let n = String.length sub in
  let rec go i =
    i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
  in
  go 0

let check_batch_responses who responses =
  match responses with
  | [ r1; r2; r3; r4 ] ->
      (match Serve.Client.parse_metrics r1 with
      | Ok _ -> ()
      | Error e -> Alcotest.fail (who ^ ": initial not ok: " ^ e));
      (match Serve.Client.parse_metrics r2 with
      | Ok _ -> ()
      | Error e -> Alcotest.fail (who ^ ": optimized not ok: " ^ e));
      check bool (who ^ ": faulted point answers err") true
        (has_prefix ~prefix:"err\t" r3);
      check bool (who ^ ": error names the design") true
        (contains ~sub:faulted_key r3);
      check bool (who ^ ": error typed synth-failure") true
        (contains ~sub:"synth-failure" r3);
      check string (who ^ ": ping still answered") "ok\tpong" r4
  | rs ->
      Alcotest.fail
        (Printf.sprintf "%s: %d responses to a 4-request batch" who
           (List.length rs))

let test_soak () =
  let socket =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "hlsvhc_serve_%d.sock" (Unix.getpid ()))
  in
  let store_dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "hlsvhc_serve_store_%d" (Unix.getpid ()))
  in
  Store.detach ();
  Core.Evaluate.clear_measure_cache ();
  let store = Result.get_ok (Store.attach store_dir) in
  let cfg =
    {
      Serve.socket_path = socket;
      jobs = Some 2;
      store = Some store;
      max_conns = None;
    }
  in
  let server = Domain.spawn (fun () -> Serve.run cfg) in
  let cleanup () =
    Core.Faultinject.disarm ();
    Store.detach ();
    Core.Evaluate.clear_measure_cache ();
    try Unix.unlink socket with Unix.Unix_error _ -> ()
  in
  Fun.protect ~finally:cleanup (fun () ->
      Serve.Client.wait_ready ~socket ();
      (* one design's synthesis stage crashes on every attempt *)
      Core.Faultinject.arm
        { Core.Faultinject.fault = Crash "synthesize";
          target = faulted_key;
          seed = 0;
        };
      let clients =
        List.init 3 (fun _c ->
            Domain.spawn (fun () ->
                List.init 2 (fun _ -> Serve.Client.request ~socket batch)))
      in
      let all_responses = List.map Domain.join clients in
      List.iteri
        (fun c batches ->
          List.iteri
            (fun b rs ->
              check_batch_responses (Printf.sprintf "client %d batch %d" c b) rs)
            batches)
        all_responses;
      (* heal: disarm and re-request the point that kept failing *)
      Core.Faultinject.disarm ();
      (match Serve.Client.request ~socket [ eval_faulted ] with
      | [ r ] -> (
          match Serve.Client.parse_metrics r with
          | Ok _ -> ()
          | Error e -> Alcotest.fail ("healed request not ok: " ^ e))
      | rs ->
          Alcotest.fail
            (Printf.sprintf "%d responses to the healed request"
               (List.length rs)));
      (* truthful counters: 3 clients x 2 batches x 3 evals + 1 healed *)
      (match Serve.Client.request ~socket [ "stats" ] with
      | [ s ] ->
          check bool "stats is ok" true (has_prefix ~prefix:"ok\t" s);
          check bool "19 evals served" true (contains ~sub:"evals=19" s);
          check bool "6 injected failures" true (contains ~sub:"errors=6" s);
          check bool "stats reports the store" true
            (contains ~sub:("store=" ^ store_dir) s)
      | rs ->
          Alcotest.fail
            (Printf.sprintf "%d responses to stats" (List.length rs)));
      (* orderly shutdown *)
      (match Serve.Client.request ~socket [ "shutdown" ] with
      | [ "ok\tbye" ] -> ()
      | rs ->
          Alcotest.fail ("unexpected shutdown reply: " ^ String.concat "; " rs));
      let counters = Domain.join server in
      check int "daemon counted every error" 6
        (Atomic.get counters.Serve.eval_errors);
      check int "daemon counted every eval" 19
        (Atomic.get counters.Serve.evals);
      (* only successful measurements persist: initial@2, optimized@2 and
         the healed faulted point@1 *)
      check int "store holds the three good results" 3
        (Store.entry_count store))

let test_bad_requests () =
  let socket =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "hlsvhc_serve_bad_%d.sock" (Unix.getpid ()))
  in
  Store.detach ();
  Core.Evaluate.clear_measure_cache ();
  let cfg =
    { Serve.socket_path = socket; jobs = Some 1; store = None; max_conns = None }
  in
  let server = Domain.spawn (fun () -> Serve.run cfg) in
  Fun.protect
    ~finally:(fun () ->
      Core.Evaluate.clear_measure_cache ();
      try Unix.unlink socket with Unix.Unix_error _ -> ())
    (fun () ->
      Serve.Client.wait_ready ~socket ();
      let lines =
        [
          "eval\tnosuchtool\t2\tinitial";
          "eval\tverilog\t0\tinitial";
          "eval\tverilog\t2\tno such label";
          (* the optional 5th field must be a registered kernel, and the
             tool must belong to that kernel's inventory *)
          "eval\tverilog\t2\tinitial\tnosuchkernel";
          "eval\tverilog\t2\tinitial\tfir8";
          "frobnicate";
          "ping";
          (* a kernel-qualified eval of a real design point succeeds *)
          Serve.Client.eval_line ~kernel:"fir8" ~tool:"chisel" ~label:"fir"
            ~matrices:1 ();
        ]
      in
      (match Serve.Client.request ~socket lines with
      | [ b1; b2; b3; b4; b5; b6; ok; fir ] ->
          List.iter
            (fun b ->
              check bool "malformed request answers bad" true
                (has_prefix ~prefix:"bad\t" b))
            [ b1; b2; b3; b4; b5; b6 ];
          check bool "unknown kernel diagnosed" true
            (has_prefix ~prefix:"bad\tunknown kernel" b4);
          check string "daemon unpoisoned" "ok\tpong" ok;
          check bool "kernel-qualified eval answers ok" true
            (has_prefix ~prefix:"ok\t" fir);
          check bool "kernel-qualified metrics parse" true
            (Result.is_ok (Serve.Client.parse_metrics fir))
      | rs ->
          Alcotest.fail
            (Printf.sprintf "%d responses to an 8-request batch"
               (List.length rs)));
      (match Serve.Client.request ~socket [ "shutdown" ] with
      | [ "ok\tbye" ] -> ()
      | rs ->
          Alcotest.fail ("unexpected shutdown reply: " ^ String.concat "; " rs));
      ignore (Domain.join server))

let () =
  Alcotest.run "serve"
    [
      ( "daemon",
        [
          Alcotest.test_case "soak: concurrent clients + injected crash" `Quick
            test_soak;
          Alcotest.test_case "malformed requests poison nothing" `Quick
            test_bad_requests;
        ] );
    ]
