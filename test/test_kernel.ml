(* The kernel registration table (DESIGN.md §15).

   Invariants pinned here:
   - kernel identities are sound: spec_names unique, CLI aliases
     disjoint, per-kernel tool inventories duplicate-free;
   - every registered extension design is bit-true against its kernel's
     golden reference (the same compliance procedure [hlsvhc comply]
     runs, at a small block count);
   - measurement cache keys are prefixed by the kernel's spec_name, so
     per-kernel store entries can never collide;
   - a warm persistent store serves a non-IDCT kernel with zero flow
     executions (proved by arming a crash fault that would abort any
     real execution);
   - trace spans carry the kernel-qualified design identity, so
     mixed-kernel traces stay attributable. *)

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int
let string = Alcotest.string

let non_idct =
  List.filter (fun k -> Core.Kernel.name k <> "idct") Core.Kernel.all

(* ---------------- identity invariants ---------------- *)

let test_registry_invariants () =
  let names = List.map Core.Kernel.name Core.Kernel.all in
  check int "spec_names unique"
    (List.length names)
    (List.length (List.sort_uniq compare names));
  (* an alias resolves to exactly one kernel *)
  let aliases =
    List.concat_map
      (fun (module K : Core.Kernel.KERNEL) -> K.aliases)
      Core.Kernel.all
  in
  check int "aliases disjoint across kernels"
    (List.length aliases)
    (List.length (List.sort_uniq compare aliases));
  List.iter
    (fun k ->
      let tools = Core.Kernel.tools k in
      check int
        (Core.Kernel.name k ^ " inventory tools unique")
        (List.length tools)
        (List.length (List.sort_uniq compare tools)))
    Core.Kernel.all;
  (* every alias parses back to its own kernel; lookups are
     case-insensitive *)
  List.iter
    (fun (module K : Core.Kernel.KERNEL) ->
      List.iter
        (fun a ->
          match Core.Kernel.parse_kernel (String.uppercase_ascii a) with
          | Some k' ->
              check string ("alias " ^ a) K.spec.Core.Flow.spec_name
                (Core.Kernel.name k')
          | None -> Alcotest.failf "alias %s does not parse" a)
        K.aliases)
    Core.Kernel.all;
  check bool "unknown kernel rejected" true
    (Core.Kernel.parse_kernel "nonesuch" = None)

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_unknown_msg () =
  let msg = Core.Kernel.unknown_kernel_msg "nonesuch" in
  List.iter
    (fun (module K : Core.Kernel.KERNEL) ->
      check bool
        ("diagnostic lists " ^ List.hd K.aliases)
        true
        (contains ~needle:(List.hd K.aliases) msg))
    Core.Kernel.all;
  check bool "diagnostic quotes the bad name" true
    (contains ~needle:"nonesuch" msg)

(* ---------------- functional correctness ---------------- *)

(* Every registered extension design must be bit-true against its
   kernel's reference — the same [spec.comply] procedure the comply
   artifact runs, at a test-sized block count. *)
let test_designs_bit_true () =
  List.iter
    (fun k ->
      let spec = Core.Kernel.spec k in
      List.iter
        (fun d ->
          check bool
            (Printf.sprintf "%s %s bit-true" (Core.Kernel.name k)
               (Core.Flow.span_key d))
            true
            (Core.Evaluate.check_compliance ~blocks:3 ~spec d))
        (Core.Kernel.all_designs k))
    non_idct

(* ---------------- cache-key discipline ---------------- *)

let test_store_keys_disjoint () =
  let keys k =
    let spec = Core.Kernel.spec k in
    List.map
      (fun d -> Core.Evaluate.measure_key ~matrices:2 ~spec d)
      (Core.Kernel.all_designs k)
  in
  List.iter
    (fun k ->
      let prefix = Core.Kernel.name k ^ "/" in
      let plen = String.length prefix in
      List.iter
        (fun key ->
          check bool (key ^ " carries kernel prefix") true
            (String.length key > plen && String.sub key 0 plen = prefix))
        (keys k))
    Core.Kernel.all;
  let rec pairs = function
    | [] -> []
    | k :: rest -> List.map (fun k' -> (k, k')) rest @ pairs rest
  in
  List.iter
    (fun (a, b) ->
      let ka = keys a and kb = keys b in
      List.iter
        (fun key ->
          check bool
            (Printf.sprintf "%s key not in %s" (Core.Kernel.name a)
               (Core.Kernel.name b))
            false (List.mem key kb))
        ka)
    (pairs Core.Kernel.all)

(* ---------------- warm store, zero executions ---------------- *)

let fresh_dir =
  let n = ref 0 in
  fun prefix ->
    incr n;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "%s_%d_%d" prefix (Unix.getpid ()) !n)
    in
    (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    d

(* A warm store must serve a non-IDCT kernel without running the flow at
   all: arm a crash fault that would abort any execution, then re-read
   every point.  Bit-identical results prove pure cache traffic. *)
let test_warm_store_zero_executions () =
  let spec = Core.Second_kernel.spec in
  let designs = List.map snd Core.Second_kernel.designs in
  let dir = fresh_dir "hlsvhc_kernel_store" in
  Store.detach ();
  Core.Evaluate.clear_measure_cache ();
  Core.Faultinject.disarm ();
  let _t = Result.get_ok (Store.attach dir) in
  Fun.protect
    ~finally:(fun () ->
      Core.Faultinject.disarm ();
      Store.detach ();
      Core.Evaluate.clear_measure_cache ())
    (fun () ->
      let cold =
        List.map (Core.Evaluate.measure ~matrices:2 ~spec) designs
      in
      (* drop the in-process memo so the second run must go to disk *)
      Core.Evaluate.clear_measure_cache ();
      (match Core.Faultinject.parse "crash@elaborate:*" with
      | Ok f -> Core.Faultinject.arm f
      | Error e -> Alcotest.failf "fault spec: %s" e);
      let warm =
        List.map (Core.Evaluate.measure ~matrices:2 ~spec) designs
      in
      Core.Faultinject.disarm ();
      List.iter2
        (fun c w ->
          check bool "warm hit bit-identical, no flow execution" true (c = w))
        cold warm)

(* ---------------- kernel-qualified trace spans ---------------- *)

let test_trace_spans_name_kernel () =
  let spec = Core.Second_kernel.spec in
  let _, d = List.hd Core.Second_kernel.designs in
  Core.Evaluate.clear_measure_cache ();
  Core.Trace.set_enabled true;
  ignore (Core.Evaluate.measure ~matrices:2 ~spec d);
  Core.Trace.set_enabled false;
  let spans = Core.Trace.drain () in
  let expected = Core.Flow.span_design spec d in
  check bool "span_design is kernel-qualified" true
    (contains ~needle:(spec.Core.Flow.spec_name ^ ":") expected);
  check bool "stage spans carry the kernel-qualified design" true
    (List.exists (fun s -> s.Core.Trace.design = expected) spans);
  Core.Evaluate.clear_measure_cache ()

let () =
  Alcotest.run "kernel"
    [
      ( "registry",
        [
          Alcotest.test_case "identity invariants" `Quick
            test_registry_invariants;
          Alcotest.test_case "unknown-kernel diagnostic" `Quick
            test_unknown_msg;
        ] );
      ( "designs",
        [
          Alcotest.test_case "extension designs bit-true" `Slow
            test_designs_bit_true;
        ] );
      ( "store",
        [
          Alcotest.test_case "keys disjoint across kernels" `Quick
            test_store_keys_disjoint;
          Alcotest.test_case "warm store: zero flow executions" `Slow
            test_warm_store_zero_executions;
        ] );
      ( "trace",
        [
          Alcotest.test_case "spans name the kernel" `Quick
            test_trace_spans_name_kernel;
        ] );
    ]
