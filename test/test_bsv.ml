(* Tests for the rule-based language: type checking, conflict analysis,
   the scheduler's one-rule-at-a-time soundness (via random rule programs),
   compilation, options and the IDCT designs. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

open Bsv.Lang

let test_width_check () =
  let bld = builder "w" in
  let r8 = mk_reg bld "a" 8 in
  let bad = Binop (Hw.Netlist.Add, Read r8, cst 4 1) in
  mk_rule bld "r" ~guard:(cst 1 1) [ assign r8 bad ];
  (match mk_module bld with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected width error")

let test_guard_must_be_bool () =
  let bld = builder "w" in
  let r8 = mk_reg bld "a" 8 in
  mk_rule bld "r" ~guard:(Read r8) [ assign r8 (cst 8 1) ];
  (match mk_module bld with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected guard error")

let test_conflicts () =
  let bld = builder "c" in
  let a = mk_reg bld "a" 8 in
  let b = mk_reg bld "b" 8 in
  mk_rule bld "w1" ~guard:(cst 1 1) [ assign a (cst 8 1) ];
  mk_rule bld "w2" ~guard:(cst 1 1) [ assign a (cst 8 2) ];
  mk_rule bld "other" ~guard:(cst 1 1) [ assign b (cst 8 3) ];
  let m = mk_module bld in
  let s = Bsv.Sched.analyze m in
  check bool "write-write conflict" true s.Bsv.Sched.conflict.(0).(1);
  check bool "disjoint targets compatible" false s.Bsv.Sched.conflict.(0).(2)

let test_mutual_rw_conflict () =
  let bld = builder "c" in
  let a = mk_reg bld "a" 8 in
  let b = mk_reg bld "b" 8 in
  mk_rule bld "ab" ~guard:(cst 1 1) [ assign a (Read b) ];
  mk_rule bld "ba" ~guard:(cst 1 1) [ assign b (Read a) ];
  let s = Bsv.Sched.analyze (mk_module bld) in
  check bool "swap pair conflicts" true s.Bsv.Sched.conflict.(0).(1)

let test_one_way_rw_compatible () =
  let bld = builder "c" in
  let a = mk_reg bld "a" 8 in
  let b = mk_reg bld "b" 8 in
  mk_rule bld "reader" ~guard:(cst 1 1) [ assign b (Read a) ];
  mk_rule bld "writer" ~guard:(cst 1 1) [ assign a (cst 8 5) ];
  let s = Bsv.Sched.analyze (mk_module bld) in
  check bool "compatible" false s.Bsv.Sched.conflict.(0).(1);
  check bool "reader precedes writer" true s.Bsv.Sched.precede.(0).(1)

let test_precedence_cycle_broken () =
  (* a->b->c->a read/write chain: pairwise fine, cyclic as a whole. *)
  let bld = builder "c" in
  let a = mk_reg bld "a" 8 in
  let b = mk_reg bld "b" 8 in
  let c = mk_reg bld "c" 8 in
  mk_rule bld "r1" ~guard:(cst 1 1) [ assign b (Read a) ];
  mk_rule bld "r2" ~guard:(cst 1 1) [ assign c (Read b) ];
  mk_rule bld "r3" ~guard:(cst 1 1) [ assign a (Read c) ];
  let m = mk_module bld in
  let s = Bsv.Sched.analyze m in
  let any_conflict =
    s.Bsv.Sched.conflict.(0).(1) || s.Bsv.Sched.conflict.(1).(2)
    || s.Bsv.Sched.conflict.(0).(2)
  in
  check bool "cycle is broken by a conflict" true any_conflict;
  (* and whatever fires must still serialize *)
  let st = Bsv.Semantics.initial_state m in
  match Bsv.Semantics.serializable_step st s with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e

let test_disjoint_guards_pruning () =
  let bld = builder "d" in
  let phase = mk_reg bld "phase" 2 in
  let x = mk_reg bld "x" 8 in
  mk_rule bld "p0" ~guard:(Read phase ==: cst 2 0) [ assign x (cst 8 1) ];
  mk_rule bld "p1" ~guard:(Read phase ==: cst 2 1) [ assign x (cst 8 2) ];
  let m = mk_module bld in
  let lazy_sched =
    Bsv.Sched.analyze ~options:{ Bsv.Options.default with Bsv.Options.effort = 0 } m
  in
  let smart = Bsv.Sched.analyze ~options:Bsv.Options.default m in
  check bool "effort 0 sees a conflict" true lazy_sched.Bsv.Sched.conflict.(0).(1);
  check bool "effort 2 discharges it" false smart.Bsv.Sched.conflict.(0).(1)

(* ---------------- random rule programs ---------------- *)

let random_module seed =
  let rng = Random.State.make [| seed |] in
  let bld = builder (Printf.sprintf "rand%d" seed) in
  let regs = Array.init 4 (fun i -> mk_reg bld ~init:i (Printf.sprintf "r%d" i) 8) in
  let rand_expr () =
    let r () = Read regs.(Random.State.int rng 4) in
    match Random.State.int rng 4 with
    | 0 -> r ()
    | 1 -> Binop (Hw.Netlist.Add, r (), r ())
    | 2 -> Binop (Hw.Netlist.Xor, r (), cst 8 (Random.State.int rng 256))
    | _ -> Mux (Binop (Hw.Netlist.Lt Hw.Netlist.Unsigned, r (), r ()), r (), cst 8 7)
  in
  let rand_guard () =
    match Random.State.int rng 3 with
    | 0 -> cst 1 1
    | 1 ->
        Binop
          (Hw.Netlist.Lt Hw.Netlist.Unsigned,
           Read regs.(Random.State.int rng 4),
           cst 8 (64 + Random.State.int rng 128))
    | _ -> Binop (Hw.Netlist.Eq, Slice (Read regs.(Random.State.int rng 4), 1, 0), cst 2 (Random.State.int rng 4))
  in
  for k = 0 to 3 + Random.State.int rng 3 do
    let n_act = 1 + Random.State.int rng 2 in
    (* distinct targets within one rule: a rule is an atomic action *)
    let first = Random.State.int rng 4 in
    let targets =
      if n_act = 1 then [ first ]
      else [ first; (first + 1 + Random.State.int rng 3) mod 4 ]
    in
    let actions = List.map (fun t -> assign regs.(t) (rand_expr ())) targets in
    mk_rule bld (Printf.sprintf "rule%d" k) ~guard:(rand_guard ()) actions
  done;
  Array.iteri (fun i r -> mk_output bld (Printf.sprintf "o%d" i) (Read r)) regs;
  mk_module bld

let serializability_prop =
  QCheck.Test.make ~name:"every compiled cycle is serializable" ~count:120
    QCheck.(int_range 0 100000)
    (fun seed ->
      let m = random_module seed in
      let sched = Bsv.Sched.analyze m in
      let rec go st n =
        n = 0
        ||
        match Bsv.Semantics.serializable_step st sched with
        | Ok st' -> go st' (n - 1)
        | Error _ -> false
      in
      go (Bsv.Semantics.initial_state m) 20)

let compiled_matches_semantics_prop =
  QCheck.Test.make ~name:"netlist matches parallel semantics" ~count:60
    QCheck.(int_range 0 100000)
    (fun seed ->
      let m = random_module seed in
      let circuit, sched = Bsv.Compile.compile_with_schedule m in
      let sim = Hw.Sim.create circuit in
      let rec go st n =
        n = 0
        ||
        let ok =
          List.for_all
            (fun (name, v) ->
              Hw.Sim.get sim name = Hw.Bits.to_int v)
            (Bsv.Semantics.outputs st m)
        in
        ok
        &&
        (Hw.Sim.step sim;
         go (Bsv.Semantics.step_parallel st sched) (n - 1))
      in
      go (Bsv.Semantics.initial_state m) 25)

let options_equivalent_prop =
  QCheck.Test.make ~name:"mux style does not change behaviour" ~count:40
    QCheck.(int_range 0 100000)
    (fun seed ->
      let m = random_module seed in
      let c1 =
        Bsv.Compile.compile
          ~options:{ Bsv.Options.default with Bsv.Options.mux_style = Bsv.Options.Priority }
          m
      in
      let c2 =
        Bsv.Compile.compile
          ~options:{ Bsv.Options.default with Bsv.Options.mux_style = Bsv.Options.One_hot }
          m
      in
      let s1 = Hw.Sim.create c1 and s2 = Hw.Sim.create c2 in
      let ok = ref true in
      for _ = 1 to 25 do
        List.iter
          (fun (name, _) ->
            if Hw.Sim.get s1 name <> Hw.Sim.get s2 name then ok := false)
          c1.Hw.Netlist.outputs;
        Hw.Sim.step s1;
        Hw.Sim.step s2
      done;
      !ok)

(* ---------------- IDCT designs ---------------- *)

let mats n =
  let rng = Axis.Block.Rand.create ~seed:31 () in
  List.init n (fun _ ->
      Idct.Reference.fdct (Axis.Block.Rand.block rng ~lo:(-256) ~hi:255))

let test_idct_designs () =
  List.iter
    (fun (name, m, expect_lat, expect_per) ->
      let c = Bsv.Idct_bsv.circuit m in
      let inputs = mats 4 in
      let r = Axis.Driver.run c inputs in
      check bool (name ^ " bit-true") true
        (List.for_all2 Axis.Block.equal r.Axis.Driver.outputs
           (List.map Idct.Chenwang.idct inputs));
      check int (name ^ " latency") expect_lat r.Axis.Driver.latency;
      check int (name ^ " periodicity (the BSC bubble)") expect_per
        r.Axis.Driver.periodicity)
    [
      ("initial", Bsv.Idct_bsv.initial_design, 18, 9);
      ("optimized", Bsv.Idct_bsv.optimized_design, 26, 9);
    ]

let test_option_sweep_negligible () =
  (* The paper's finding: the 24-option grid barely moves the results. *)
  let areas =
    List.map
      (fun o ->
        (Hw.Synth.run (Bsv.Idct_bsv.circuit ~options:o Bsv.Idct_bsv.optimized_design)).Hw.Synth.area)
      Bsv.Options.all
  in
  let mn = List.fold_left min max_int areas in
  let mx = List.fold_left max 0 areas in
  check bool "area varies by less than 10%" true
    (float_of_int (mx - mn) /. float_of_int mn < 0.10)

let () =
  Alcotest.run "bsv"
    [
      ( "lang",
        [
          Alcotest.test_case "width check" `Quick test_width_check;
          Alcotest.test_case "guard must be bool" `Quick test_guard_must_be_bool;
        ] );
      ( "sched",
        [
          Alcotest.test_case "write-write conflicts" `Quick test_conflicts;
          Alcotest.test_case "mutual read-write" `Quick test_mutual_rw_conflict;
          Alcotest.test_case "one-way read-write" `Quick test_one_way_rw_compatible;
          Alcotest.test_case "precedence cycle broken" `Quick test_precedence_cycle_broken;
          Alcotest.test_case "guard disjointness" `Quick test_disjoint_guards_pruning;
        ] );
      ( "soundness",
        List.map QCheck_alcotest.to_alcotest
          [ serializability_prop; compiled_matches_semantics_prop; options_equivalent_prop ] );
      ( "idct",
        [
          Alcotest.test_case "designs bit-true with paper timing" `Slow test_idct_designs;
          Alcotest.test_case "options negligible (paper IV-B)" `Slow test_option_sweep_negligible;
        ] );
    ]
