(* The DSE subsystem: the space model's agreement with the registry
   sweeps, Pareto-front properties over random point clouds, seeded
   search reproducibility, budget semantics, and the Fig. 1 cross-check
   over a restricted tool set. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let string_list = Alcotest.(list string)

(* ---------------- the space model ---------------- *)

(* Every tool's declared axes must tile its sweep exactly, candidate for
   candidate: the space is metadata over the same generators. *)
let test_space_covers_sweep () =
  List.iter
    (fun tool ->
      let space = Dse.Space.of_tool tool in
      let cands = Dse.Space.candidates space in
      let sweep = Core.Registry.sweep tool in
      check int
        (Core.Design.tool_name tool ^ " candidate count")
        (List.length sweep) (List.length cands);
      check string_list
        (Core.Design.tool_name tool ^ " enumeration order")
        (List.map (fun (d : Core.Design.t) -> d.Core.Design.label) sweep)
        (List.map
           (fun c -> c.Dse.Space.cand_design.Core.Design.label)
           cands))
    Core.Design.all_tools

let test_space_neighbors () =
  let space = Dse.Space.of_tool Core.Design.Bambu in
  let cands = Dse.Space.candidates space in
  List.iter
    (fun c ->
      let neigh = Dse.Space.neighbors space c in
      (* a 3-axis grid point has between 3 and 6 neighbors *)
      check bool "neighbor count in range" true
        (List.length neigh >= 3 && List.length neigh <= 6);
      List.iter
        (fun n ->
          check bool "neighbor stays in chart" true
            (n.Dse.Space.cand_chart = c.Dse.Space.cand_chart);
          let diff = ref 0 in
          Array.iteri
            (fun i v ->
              if v <> c.Dse.Space.cand_coords.(i) then begin
                incr diff;
                check int "step of one"
                  1
                  (abs (v - c.Dse.Space.cand_coords.(i)))
              end)
            n.Dse.Space.cand_coords;
          check int "exactly one axis moved" 1 !diff;
          (* neighborhood is symmetric *)
          check bool "symmetric" true
            (List.exists
               (fun b -> Dse.Space.key b = Dse.Space.key c)
               (Dse.Space.neighbors space n)))
        neigh)
    cands;
  (* coords_desc names every axis *)
  let c = List.hd cands in
  check bool "coords_desc mentions the preset axis" true
    (String.length (Dse.Space.coords_desc c) > 0)

(* ---------------- Pareto properties ---------------- *)

let point (i, (a, p)) =
  {
    Dse.Pareto.pt_key = Printf.sprintf "p%d" i;
    pt_area = a;
    pt_perf = float_of_int p /. 8.;
  }

let cloud_gen =
  QCheck.(
    list_of_size Gen.(int_range 0 60)
      (pair (int_range 1 40) (int_range 1 40)))

let prop_frontier_sound =
  QCheck.Test.make ~name:"frontier sound and complete" ~count:300 cloud_gen
    (fun raw ->
      let cloud = List.mapi (fun i xy -> point (i, xy)) raw in
      let front = Dse.Pareto.frontier cloud in
      (* frontier is a subset of the cloud *)
      List.for_all (fun p -> List.mem p cloud) front
      (* mutually non-dominating *)
      && List.for_all
           (fun p ->
             List.for_all
               (fun q -> not (Dse.Pareto.dominates p q))
               front)
           front
      (* every dropped point is dominated by some frontier point *)
      && List.for_all
           (fun p ->
             List.mem p front
             || List.exists (fun q -> Dse.Pareto.dominates q p) front)
           cloud)

let prop_frontier_order_independent =
  QCheck.Test.make ~name:"frontier ignores input order" ~count:300 cloud_gen
    (fun raw ->
      let cloud = List.mapi (fun i xy -> point (i, xy)) raw in
      Dse.Pareto.frontier cloud = Dse.Pareto.frontier (List.rev cloud))

let test_pareto_ties_deterministic () =
  (* coordinate ties do not dominate each other: both survive, in key
     order *)
  let a = { Dse.Pareto.pt_key = "a"; pt_area = 10; pt_perf = 5. } in
  let b = { Dse.Pareto.pt_key = "b"; pt_area = 10; pt_perf = 5. } in
  check bool "tie does not dominate" false (Dse.Pareto.dominates a b);
  check string_list "both kept, key order" [ "a"; "b" ]
    (List.map
       (fun p -> p.Dse.Pareto.pt_key)
       (Dse.Pareto.frontier [ b; a ]));
  (* same area, better perf dominates *)
  let c = { Dse.Pareto.pt_key = "c"; pt_area = 10; pt_perf = 7. } in
  check string_list "dominated tie dropped" [ "c" ]
    (List.map (fun p -> p.Dse.Pareto.pt_key) (Dse.Pareto.frontier [ a; c ]))

let test_hypervolume_monotone () =
  let p k a perf = { Dse.Pareto.pt_key = k; pt_area = a; pt_perf = perf } in
  (* both clouds share the box corners (min area, max perf) and the
     reference corner is pinned, so adding a frontier point can only
     enlarge the dominated staircase *)
  let base = [ p "cheap" 10 2.; p "fast" 1000 100. ] in
  let better = p "good" 100 50. :: base in
  let hv = Dse.Pareto.hypervolume ~ref_area:1000 ~ref_perf:1. in
  check bool "hypervolume grows with a new frontier point" true
    (hv better > hv base);
  check (Alcotest.float 1e-9) "empty cloud" 0. (Dse.Pareto.hypervolume []);
  check (Alcotest.float 1e-9) "degenerate cloud" 0.
    (Dse.Pareto.hypervolume [ p "only" 10 5. ])

(* ---------------- deterministic RNG ---------------- *)

let test_rng_deterministic () =
  let draw seed = List.init 32 (fun _ -> Dse.Rng.int (Dse.Rng.create ~seed) 1000) in
  check (Alcotest.list int) "same seed, same stream" (draw 7) (draw 7);
  check bool "different seeds diverge" true (draw 7 <> draw 8);
  let r = Dse.Rng.create ~seed:3 in
  for _ = 1 to 1000 do
    let v = Dse.Rng.int r 13 in
    check bool "in range" true (v >= 0 && v < 13)
  done

(* ---------------- the engine ---------------- *)

let small_tools = [ Core.Design.Verilog; Core.Design.Chisel; Core.Design.Maxj ]
let small_spaces () = List.map Dse.Space.of_tool small_tools

let eval_keys (r : Dse.Engine.result) =
  List.map
    (fun (ev : Dse.Engine.evaluated) -> Dse.Space.key ev.Dse.Engine.ev_candidate)
    r.Dse.Engine.res_evaluated

let frontier_keys (r : Dse.Engine.result) =
  List.map (fun (p : Dse.Pareto.point) -> p.Dse.Pareto.pt_key)
    r.Dse.Engine.res_frontier

let test_exhaustive_budget () =
  let r =
    Dse.Engine.run ~jobs:1 ~budget:2 ~strategy:Dse.Strategy.Exhaustive
      ~objective:Dse.Engine.Quality (small_spaces ())
  in
  check int "budget caps the prefix" 2 r.Dse.Engine.res_stats.Dse.Engine.st_evaluated;
  check string_list "sweep-order prefix"
    [ "Vivado/initial"; "Vivado/1 row + 8 col units" ]
    (eval_keys r)

let test_random_seeded_reproducible () =
  let run jobs =
    Dse.Engine.run ~jobs ~budget:5 ~seed:11 ~strategy:Dse.Strategy.Random
      ~objective:Dse.Engine.Quality (small_spaces ())
  in
  let a = run 1 and b = run 1 and c = run 4 in
  check string_list "same seed, same candidate sequence" (eval_keys a)
    (eval_keys b);
  check string_list "job count does not change the sequence" (eval_keys a)
    (eval_keys c);
  check string_list "same frontier" (frontier_keys a) (frontier_keys b);
  check string_list "same frontier across job counts" (frontier_keys a)
    (frontier_keys c);
  check int "budget respected" 5
    a.Dse.Engine.res_stats.Dse.Engine.st_evaluated

let test_random_distinct_candidates () =
  let r =
    Dse.Engine.run ~jobs:1 ~budget:5 ~seed:11 ~strategy:Dse.Strategy.Random
      ~objective:Dse.Engine.Quality (small_spaces ())
  in
  let keys = eval_keys r in
  check int "five distinct candidates" 5
    (List.length (List.sort_uniq compare keys));
  check int "stats agree" 5 r.Dse.Engine.res_stats.Dse.Engine.st_evaluated

let test_hillclimb_seeded_reproducible () =
  let spaces = [ Dse.Space.of_tool Core.Design.Dslx ] in
  let run () =
    Dse.Engine.run ~jobs:2 ~budget:8 ~seed:5 ~strategy:Dse.Strategy.Hillclimb
      ~objective:Dse.Engine.Throughput spaces
  in
  let a = run () and b = run () in
  check string_list "same walk" (eval_keys a) (eval_keys b);
  check string_list "same frontier" (frontier_keys a) (frontier_keys b);
  check bool "budget respected" true
    (a.Dse.Engine.res_stats.Dse.Engine.st_evaluated <= 8)

let test_objective_scores () =
  let m =
    {
      Core.Metrics.fmax_mhz = 100.;
      throughput_mops = 50.;
      latency = 10;
      periodicity = 2;
      area = 1000;
      luts_nodsp = 600;
      ffs_nodsp = 400;
      luts = 600;
      ffs = 400;
      dsps = 0;
      ios = 0;
    }
  in
  check (Alcotest.float 1e-6) "quality = P/A"
    (Core.Metrics.quality m)
    (Dse.Engine.score Dse.Engine.Quality m);
  check (Alcotest.float 1e-6) "throughput" 50.
    (Dse.Engine.score Dse.Engine.Throughput m);
  check (Alcotest.float 1e-6) "area is minimized" (-1000.)
    (Dse.Engine.score Dse.Engine.Area m)

(* ---------------- the Fig. 1 cross-check ---------------- *)

let test_crosscheck_fig1_small () =
  let r =
    Dse.Engine.run ~jobs:2 ~strategy:Dse.Strategy.Exhaustive
      ~objective:Dse.Engine.Quality (small_spaces ())
  in
  check int "full space evaluated"
    r.Dse.Engine.res_stats.Dse.Engine.st_space
    r.Dse.Engine.res_stats.Dse.Engine.st_evaluated;
  match Dse.Report.crosscheck_fig1 ~jobs:2 ~tools:small_tools r with
  | Ok _ -> ()
  | Error diff -> Alcotest.fail diff

let () =
  Alcotest.run "dse"
    [
      ( "space",
        [
          Alcotest.test_case "axes tile every sweep" `Quick
            test_space_covers_sweep;
          Alcotest.test_case "grid neighborhoods" `Quick test_space_neighbors;
        ] );
      ( "pareto",
        List.map QCheck_alcotest.to_alcotest
          [ prop_frontier_sound; prop_frontier_order_independent ]
        @ [
            Alcotest.test_case "coordinate ties" `Quick
              test_pareto_ties_deterministic;
            Alcotest.test_case "hypervolume" `Quick test_hypervolume_monotone;
          ] );
      ("rng", [ Alcotest.test_case "deterministic" `Quick test_rng_deterministic ]);
      ( "engine",
        [
          Alcotest.test_case "exhaustive budget prefix" `Slow
            test_exhaustive_budget;
          Alcotest.test_case "random seeded reproducible" `Slow
            test_random_seeded_reproducible;
          Alcotest.test_case "random samples without replacement" `Slow
            test_random_distinct_candidates;
          Alcotest.test_case "hillclimb seeded reproducible" `Slow
            test_hillclimb_seeded_reproducible;
          Alcotest.test_case "objective scores" `Quick test_objective_scores;
        ] );
      ( "fig1",
        [
          Alcotest.test_case "exhaustive reproduces the Pareto subset" `Slow
            test_crosscheck_fig1_small;
        ] );
    ]
