(* Additional substrate tests: constant-shift helpers, comparison sugar,
   the equivalence checker, VCD waves, device capacity and report sanity. *)

open Hw

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* ---------------- builder op sugar vs Bits semantics ---------------- *)

let const_shift_props =
  let gen = QCheck.(triple (int_range 2 24) int (int_range 0 30)) in
  let build f w v n =
    let b = Builder.create "p" in
    let x = Builder.const b ~width:w v in
    Builder.output b "o" (f b x n);
    let sim = Sim.create (Builder.finalize b) in
    Sim.get sim "o"
  in
  [
    QCheck.Test.make ~name:"shl_const = Bits.shift_left" ~count:200 gen
      (fun (w, v, n) ->
        build Builder.shl_const w v n
        = Bits.to_int (Bits.shift_left (Bits.create ~width:w v) (Bits.create ~width:6 (min n 63))));
    QCheck.Test.make ~name:"shr_const = Bits.shift_right_logical" ~count:200 gen
      (fun (w, v, n) ->
        build Builder.shr_const w v n
        = Bits.to_int
            (Bits.shift_right_logical (Bits.create ~width:w v) (Bits.create ~width:6 (min n 63))));
    QCheck.Test.make ~name:"sra_const = Bits.shift_right_arith" ~count:200 gen
      (fun (w, v, n) ->
        build Builder.sra_const w v n
        = Bits.to_int
            (Bits.shift_right_arith (Bits.create ~width:w v) (Bits.create ~width:6 (min n 63))));
  ]

let test_cmp_sugar () =
  let b = Builder.create "cmp" in
  let x = Builder.input b "x" 8 and y = Builder.input b "y" 8 in
  Builder.output b "gt" (Builder.gt b ~signed:true x y);
  Builder.output b "ge" (Builder.ge b ~signed:true x y);
  let sim = Sim.create (Builder.finalize b) in
  Sim.set sim "x" 0xFF (* -1 *);
  Sim.set sim "y" 1;
  check int "-1 > 1 signed" 0 (Sim.get sim "gt");
  Sim.set sim "y" 0xFE (* -2 *);
  check int "-1 > -2" 1 (Sim.get sim "gt");
  Sim.set sim "y" 0xFF;
  check int "-1 >= -1" 1 (Sim.get sim "ge")

let test_concat_list () =
  let b = Builder.create "cl" in
  let parts = List.map (fun v -> Builder.const b ~width:4 v) [ 0xA; 0xB; 0xC ] in
  Builder.output b "o" (Builder.concat_list b parts);
  let sim = Sim.create (Builder.finalize b) in
  check int "abc" 0xABC (Sim.get sim "o")

let test_mux_list_narrow_select () =
  let b = Builder.create "ml" in
  let sel = Builder.input b "s" 1 in
  (match Builder.mux_list b sel (List.init 4 (fun i -> Builder.const b ~width:4 i)) with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected select-width failure")

(* ---------------- equivalence checker ---------------- *)

let adder w name =
  let b = Builder.create name in
  let x = Builder.input b "x" w and y = Builder.input b "y" w in
  Builder.output b "s" (Builder.add b x y);
  Builder.finalize b

let test_equiv_accepts () =
  match Equiv.check (adder 8 "a") (adder 8 "b") with
  | Equiv.Equivalent -> ()
  | r -> Alcotest.fail (Format.asprintf "unexpected %a" Equiv.pp_result r)

let test_equiv_detects () =
  let broken =
    let b = Builder.create "broken" in
    let x = Builder.input b "x" 8 and y = Builder.input b "y" 8 in
    Builder.output b "s" (Builder.sub b x y);
    Builder.finalize b
  in
  (match Equiv.check (adder 8 "a") broken with
  | Equiv.Mismatch { port = "s"; _ } -> ()
  | Equiv.Mismatch _ | Equiv.Equivalent -> Alcotest.fail "expected mismatch on s")

let test_equiv_port_check () =
  match Equiv.check (adder 8 "a") (adder 9 "b") with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected port width rejection"

(* Regression for the wide-port stimulus blind spot: the checker used to
   draw inputs with [Random.State.int rng (1 lsl min w 30)], which raises
   for w >= 30 on a 64-bit runtime and — had it not raised — would never
   have driven bits 30 and up.  Two circuits that differ only in how they
   treat the high bits of a 40-bit input must be distinguished. *)
let test_equiv_wide_port_blindness () =
  let ident =
    let b = Builder.create "wide_id" in
    let x = Builder.input b "x" 40 in
    Builder.output b "o" x;
    Builder.finalize b
  in
  let low30_only =
    let b = Builder.create "wide_tr" in
    let x = Builder.input b "x" 40 in
    (* keeps the low 30 bits, zeroes bits 30..39 — indistinguishable from
       [ident] under any stimulus confined below bit 30 *)
    Builder.output b "o"
      (Builder.and_ b x (Builder.const b ~width:40 ((1 lsl 30) - 1)));
    Builder.finalize b
  in
  (match Equiv.check ident low30_only with
  | Equiv.Mismatch { port = "o"; _ } -> ()
  | Equiv.Mismatch _ | Equiv.Equivalent ->
      Alcotest.fail "high-bit truncation went undetected");
  (* and the full 62-bit width must be drivable without an exception *)
  match Equiv.check (adder 62 "a") (adder 62 "b") with
  | Equiv.Equivalent -> ()
  | r -> Alcotest.fail (Format.asprintf "62-bit check: unexpected %a" Equiv.pp_result r)

let test_equiv_settle () =
  (* A 1-deep pipeline of the adder is equivalent after one settle cycle
     when inputs are held... it is not cycle-identical, and Equiv with
     settle=0 must catch that. *)
  let piped =
    let b = Builder.create "p" in
    let x = Builder.input b "x" 8 and y = Builder.input b "y" 8 in
    Builder.output b "s" (Builder.reg_next b (Builder.add b x y));
    Builder.finalize b
  in
  (match Equiv.check (adder 8 "a") piped with
  | Equiv.Mismatch _ -> ()
  | Equiv.Equivalent -> Alcotest.fail "registered adder is not cycle-identical")

(* ---------------- waves ---------------- *)

let test_vcd () =
  let b = Builder.create "wave" in
  let q = Builder.reg b ~width:4 "count" in
  Builder.connect b q (Builder.add b q (Builder.one b 4));
  Builder.output b "o" q;
  let sim = Sim.create (Builder.finalize b) in
  let w = Waves.create sim in
  Waves.run w 5;
  let vcd = Waves.to_string w in
  check bool "has timescale" true (contains vcd "$timescale");
  check bool "declares count" true (contains vcd "count $end");
  check bool "has time 5" true (contains vcd "#5");
  check bool "records 0101 at some point" true (contains vcd "b0101 ");
  check int "sim advanced" 5 (Sim.cycle_count sim)

(* ---------------- device / synth ---------------- *)

let test_capacity_check () =
  let tiny =
    { Device.xcvu9p with Device.lut_capacity = 10; device_name = "tiny" }
  in
  let big =
    let b = Builder.create "big" in
    let x = Builder.input b "x" 32 and y = Builder.input b "y" 32 in
    Builder.output b "o" (Builder.mul b x y);
    Builder.finalize b
  in
  let r = Synth.run ~device:tiny big in
  check bool "over capacity detected" true
    (Result.is_error (Synth.check_fits tiny r));
  check bool "fits the real device" true
    (Result.is_ok (Synth.check_fits Device.xcvu9p r))

let test_utilization () =
  let u = Device.utilization Device.xcvu9p ~luts:1_182_240 ~ffs:0 ~dsps:0 in
  check bool "full LUTs = 1.0" true (abs_float (u -. 1.0) < 1e-9);
  let u2 = Device.utilization Device.xcvu9p ~luts:0 ~ffs:0 ~dsps:6840 in
  check bool "full DSPs = 1.0" true (abs_float (u2 -. 1.0) < 1e-9)

let test_io_bits () =
  let b = Builder.create "io" in
  let x = Builder.input b "x" 12 in
  Builder.output b "o" (Builder.reg_next b x);
  let c = Builder.finalize b in
  check int "12 in + 12 out + clk + rst" 26 (Techmap.io_bits c)

let test_netlist_stats () =
  let b = Builder.create "st" in
  let x = Builder.input b "x" 8 in
  Builder.output b "o" (Builder.add b x (Builder.reg_next b x));
  let stats = Netlist.stats (Builder.finalize b) in
  check int "one add" 1 (List.assoc "add" stats);
  check int "one reg" 1 (List.assoc "reg" stats);
  check int "one input" 1 (List.assoc "input" stats)

let test_mem_read_costed_as_lutram () =
  let b = Builder.create "ram" in
  let m = Builder.mem b "ram" ~size:64 ~width:16 in
  let a = Builder.input b "a" 6 in
  Builder.mem_write b m ~enable:(Builder.input b "we" 1) ~addr:a
    ~data:(Builder.input b "d" 16);
  Builder.output b "q" (Builder.mem_read b m a);
  let r = Synth.run (Builder.finalize b) in
  check bool "a 64x16 LUTRAM costs tens of LUTs, not thousands" true
    (r.Synth.luts > 0 && r.Synth.luts < 100);
  check int "no flip-flops for the array" 0 r.Synth.ffs

(* ---------------- simulation engines ---------------- *)

let umask w = if w >= 62 then max_int else (1 lsl w) - 1

(* The full 62-bit width used to be truncated to 61 bits by the old
   [-1 lsr 2] mask; exercise every width at the top of the native range. *)
let test_width_boundary () =
  List.iter
    (fun w ->
      let b = Builder.create (Printf.sprintf "wide%d" w) in
      let x = Builder.input b "x" w in
      Builder.output b "id" x;
      Builder.output b "sum" (Builder.add b x x);
      Builder.output b "sra" (Builder.sra_const b x 1);
      let sim = Sim.create (Builder.finalize b) in
      let m = umask w in
      Sim.set sim "x" (-1);
      check int (Printf.sprintf "w=%d all-ones" w) m (Sim.get sim "id");
      check int
        (Printf.sprintf "w=%d signed all-ones" w)
        (-1) (Sim.get_signed sim "id");
      check int (Printf.sprintf "w=%d x+x wraps" w) (m - 1) (Sim.get sim "sum");
      check int (Printf.sprintf "w=%d sra keeps sign" w) m (Sim.get sim "sra"))
    [ 60; 61; 62 ];
  match Bits.create ~width:63 0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "width 63 must be rejected"

let test_write_port_order () =
  let c =
    let b = Builder.create "wconf" in
    let m = Builder.mem b "m" ~size:8 ~width:8 in
    let we0 = Builder.input b "we0" 1 and we1 = Builder.input b "we1" 1 in
    let addr = Builder.input b "a" 3 in
    Builder.mem_write b m ~enable:we0 ~addr
      ~data:(Builder.const b ~width:8 0xAA);
    Builder.mem_write b m ~enable:we1 ~addr
      ~data:(Builder.const b ~width:8 0x55);
    Builder.output b "q" (Builder.mem_read b m addr);
    Builder.finalize b
  in
  let drive set step get =
    set "we0" 1;
    set "we1" 1;
    set "a" 3;
    step ();
    get "q"
  in
  let sim = Sim.create c in
  check int "compiled: later-declared port wins" 0x55
    (drive (Sim.set sim) (fun () -> Sim.step sim) (Sim.get sim));
  let si = Interp.create c in
  check int "interp: later-declared port wins" 0x55
    (drive (Interp.set si) (fun () -> Interp.step si) (Interp.get si))

let test_port_errors () =
  let sim = Sim.create (adder 8 "perr") in
  (match Sim.set sim "zzz" 1 with
  | exception Invalid_argument msg ->
      check bool "names the missing input" true
        (contains msg "no input port zzz");
      check bool "lists the available ports" true (contains msg "has: x, y")
  | () -> Alcotest.fail "expected Invalid_argument from set");
  match Sim.get sim "nope" with
  | exception Invalid_argument msg ->
      check bool "names the missing output" true
        (contains msg "no output port nope")
  | _ -> Alcotest.fail "expected Invalid_argument from get"

(* A shift result may be declared wider than the shifted operand; the
   shift-out guard must compare against the result width, not the operand
   width (which used to zero any amount >= the operand width).  [Builder]
   never emits this shape, so construct the netlist by hand. *)
let test_shl_wider_result () =
  let node uid width kind = { Netlist.uid; width; kind; name = None } in
  let c =
    {
      Netlist.circuit_name = "shlwide";
      nodes =
        [|
          node 0 8 (Netlist.Input "x");
          node 1 4 (Netlist.Input "n");
          node 2 16 (Netlist.Binop (Netlist.Shl, 0, 1));
        |];
      mems = [||];
      inputs = [ ("x", 0); ("n", 1) ];
      outputs = [ ("o", 2) ];
    }
  in
  let sim = Sim.create c and si = Interp.create c in
  Sim.set sim "x" 3;
  Sim.set sim "n" 10;
  Interp.set si "x" 3;
  Interp.set si "n" 10;
  check int "compiled shl past operand width" 3072 (Sim.get sim "o");
  check int "interp shl past operand width" 3072 (Interp.get si "o");
  Sim.set sim "n" 15;
  check int "shifts out the top" 0x8000 (Sim.get sim "o")

(* Random closed circuits for the engine cross-check: wide and narrow
   widths, registers with enables, a two-write-port memory, and plenty of
   dead logic (unreferenced pool entries) to exercise the compiled
   engine's elimination and on-demand paths. *)
let random_circuit seed =
  let rng = Random.State.make [| seed; 0xC1AC |] in
  let widths = [| 1; 2; 3; 7; 8; 12; 16; 31; 32; 33; 45; 60; 61; 62 |] in
  let pick a = a.(Random.State.int rng (Array.length a)) in
  let b = Builder.create (Printf.sprintf "rand%d" seed) in
  let pool = ref [] in
  let push s = pool := s :: !pool in
  let any () = List.nth !pool (Random.State.int rng (List.length !pool)) in
  let coerce w s =
    let ws = Builder.width s in
    if ws = w then s
    else if ws > w then Builder.slice b s ~hi:(w - 1) ~lo:0
    else if Random.State.bool rng then Builder.uext b s w
    else Builder.sext b s w
  in
  for i = 0 to 1 + Random.State.int rng 4 do
    push (Builder.input b (Printf.sprintf "i%d" i) (pick widths))
  done;
  let regs =
    List.init
      (1 + Random.State.int rng 4)
      (fun i ->
        let w = pick widths in
        let enable =
          if Random.State.bool rng then Some (coerce 1 (any ())) else None
        in
        let init = Random.State.int rng (1 lsl min w 16) in
        let q =
          Builder.reg b ?enable ~init ~width:w (Printf.sprintf "r%d" i)
        in
        push q;
        (q, w))
  in
  (* memory words wider than 31 bits, so the engines' memory paths are
     exercised past the old narrow-stimulus range *)
  let m = Builder.mem b "m" ~size:8 ~width:33 in
  (* two write ports on purpose: same-cycle conflicts must resolve the
     same way (later-declared wins) in both engines *)
  for _ = 1 to 2 do
    Builder.mem_write b m ~enable:(coerce 1 (any ())) ~addr:(coerce 3 (any ()))
      ~data:(coerce 33 (any ()))
  done;
  push (Builder.mem_read b m (coerce 3 (any ())));
  for _ = 1 to 25 + Random.State.int rng 25 do
    let w = pick widths in
    let x () = coerce w (any ()) and y () = coerce w (any ()) in
    push
      (match Random.State.int rng 16 with
      | 0 -> Builder.add b (x ()) (y ())
      | 1 -> Builder.sub b (x ()) (y ())
      | 2 -> Builder.mul b (x ()) (y ())
      | 3 -> Builder.and_ b (x ()) (y ())
      | 4 -> Builder.or_ b (x ()) (y ())
      | 5 -> Builder.xor_ b (x ()) (y ())
      | 6 -> Builder.not_ b (x ())
      | 7 -> Builder.neg b (x ())
      | 8 -> Builder.shl b (x ()) (coerce 6 (any ()))
      | 9 -> Builder.shr b (x ()) (coerce 6 (any ()))
      | 10 -> Builder.sra b (x ()) (coerce 6 (any ()))
      | 11 -> Builder.eq b (x ()) (y ())
      | 12 -> Builder.lt b ~signed:(Random.State.bool rng) (x ()) (y ())
      | 13 -> Builder.le b ~signed:(Random.State.bool rng) (x ()) (y ())
      | 14 -> Builder.mux b (coerce 1 (any ())) (x ()) (y ())
      | _ ->
          if w <= 30 then Builder.concat b (x ()) (y ())
          else Builder.add b (x ()) (y ()))
  done;
  List.iter (fun (q, w) -> Builder.connect b q (coerce w (any ()))) regs;
  List.iteri
    (fun i s -> Builder.output b (Printf.sprintf "o%d" i) s)
    (List.filteri (fun i _ -> i land 3 = 0) !pool);
  Builder.finalize b

let engine_crosscheck_prop =
  (* [crosscheck] is three-way: the reference interpreter against both the
     retained cone engine and the levelized engine behind Hw.Sim. *)
  QCheck.Test.make ~name:"3-way: interpreter == cone == levelized"
    ~count:15
    QCheck.(int_range 0 10_000)
    (fun seed ->
      match Equiv.crosscheck ~cycles:1000 ~seed (random_circuit seed) with
      | Equiv.Equivalent -> true
      | Equiv.Mismatch _ as r ->
          QCheck.Test.fail_reportf "%a" Equiv.pp_result r)

let batch_crosscheck_prop lanes =
  QCheck.Test.make
    ~name:(Printf.sprintf "batched engine, %d lanes == %d interpreters" lanes lanes)
    ~count:8
    QCheck.(int_range 0 10_000)
    (fun seed ->
      match
        Equiv.crosscheck_batch ~cycles:400 ~seed ~lanes (random_circuit seed)
      with
      | Equiv.Equivalent -> true
      | Equiv.Mismatch _ as r ->
          QCheck.Test.fail_reportf "%a" Equiv.pp_result r)

let () =
  Alcotest.run "hw-extra"
    [
      ( "builder-sugar",
        Alcotest.test_case "signed gt/ge" `Quick test_cmp_sugar
        :: Alcotest.test_case "concat_list" `Quick test_concat_list
        :: Alcotest.test_case "mux_list narrow select" `Quick test_mux_list_narrow_select
        :: List.map QCheck_alcotest.to_alcotest const_shift_props );
      ( "equiv",
        [
          Alcotest.test_case "accepts equals" `Quick test_equiv_accepts;
          Alcotest.test_case "detects difference" `Quick test_equiv_detects;
          Alcotest.test_case "port discipline" `Quick test_equiv_port_check;
          Alcotest.test_case "wide ports get real stimulus" `Quick
            test_equiv_wide_port_blindness;
          Alcotest.test_case "cycle-exact by default" `Quick test_equiv_settle;
        ] );
      ("waves", [ Alcotest.test_case "vcd output" `Quick test_vcd ]);
      ( "sim-engines",
        Alcotest.test_case "width boundary 60..62" `Quick test_width_boundary
        :: Alcotest.test_case "write ports apply in declared order" `Quick
             test_write_port_order
        :: Alcotest.test_case "port error messages" `Quick test_port_errors
        :: Alcotest.test_case "shl result wider than operand" `Quick
             test_shl_wider_result
        :: QCheck_alcotest.to_alcotest engine_crosscheck_prop
        :: [
             QCheck_alcotest.to_alcotest (batch_crosscheck_prop 3);
             QCheck_alcotest.to_alcotest (batch_crosscheck_prop 8);
           ] );
      ( "device",
        [
          Alcotest.test_case "capacity check" `Quick test_capacity_check;
          Alcotest.test_case "utilization" `Quick test_utilization;
          Alcotest.test_case "io bits" `Quick test_io_bits;
          Alcotest.test_case "netlist stats" `Quick test_netlist_stats;
          Alcotest.test_case "LUTRAM cost" `Quick test_mem_read_costed_as_lutram;
        ] );
    ]
