(* Tests for the C HLS flow: interpreter, transformations, scheduler
   resource constraints, FSM generation, memories and the tool profiles. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

open Chls.Ast

(* ---------------- interpreter ---------------- *)

let test_interp_basics () =
  let p =
    {
      funcs =
        [
          {
            fname = "f";
            params = [ PScalar ("x", int_t) ];
            ret = Some int_t;
            locals = [ ("t", int_t) ];
            arrays = [];
            body =
              [
                Assign ("t", Bin (Mul, Var "x", Int 3));
                Return (Bin (Add, Var "t", Int 1));
              ];
          };
        ];
      top = "f";
    }
  in
  check (Alcotest.option int) "3x+1" (Some 22) (interp p "f" ~args:[ `Int 7 ])

let test_interp_short_truncation () =
  let p =
    {
      funcs =
        [
          {
            fname = "f";
            params = [ PArray ("a", short_t, 2) ];
            ret = None;
            locals = [];
            arrays = [];
            body = [ Store ("a", Int 0, Int 0x12345) ];
          };
        ];
      top = "f";
    }
  in
  let arr = [| 0; 0 |] in
  ignore (interp p "f" ~args:[ `Arr arr ]);
  check int "short truncates" 0x2345 arr.(0)

let test_interp_idct_matches_chenwang () =
  let rng = Axis.Block.Rand.create ~seed:61 () in
  for _ = 1 to 50 do
    let blk = Idct.Reference.fdct (Axis.Block.Rand.block rng ~lo:(-256) ~hi:255) in
    check bool "bit-true" true
      (Axis.Block.equal (Chls.Idct_c.run blk) (Idct.Chenwang.idct blk))
  done

(* ---------------- transformations ---------------- *)

let test_unroll_folds_indices () =
  let opts =
    {
      Chls.Transform.inline_calls = true;
      unroll = true;
      partition = [ "blk" ];
      call_sync_cycles = 0;
    }
  in
  let proc = Chls.Transform.lower opts Chls.Idct_c.program in
  (* fully unrolled: one straight-line region with only constant indices *)
  check int "one region" 1 (List.length proc.Chls.Transform.regions);
  let rec const_indices_only (e : expr) =
    match e with
    | Int _ | Var _ -> true
    | Load (_, Int _) -> true
    | Load _ -> false
    | Bin (_, a, b) -> const_indices_only a && const_indices_only b
    | Neg a -> const_indices_only a
    | Cond (a, b, c) ->
        const_indices_only a && const_indices_only b && const_indices_only c
    | Call (_, args) -> List.for_all const_indices_only args
  in
  match proc.Chls.Transform.regions with
  | [ Chls.Transform.RStraight block ] ->
      check bool "all indices static" true
        (List.for_all
           (fun st ->
             match st with
             | Assign (_, e) -> const_indices_only e
             | Store (_, Int _, e) -> const_indices_only e
             | _ -> false)
           block)
  | _ -> Alcotest.fail "expected one straight region"

let test_if_conversion () =
  let p =
    {
      funcs =
        [
          {
            fname = "f";
            params = [ PArray ("a", short_t, 4) ];
            ret = None;
            locals = [ ("t", int_t) ];
            arrays = [];
            body =
              [
                Assign ("t", Load ("a", Int 0));
                If
                  ( Bin (Gt, Var "t", Int 10),
                    [ Store ("a", Int 1, Int 1) ],
                    [ Store ("a", Int 1, Int 2) ] );
              ];
          };
        ];
      top = "f";
    }
  in
  (* semantics preserved through lowering + FSM *)
  let circuit =
    Chls.Tool.sequential_circuit ~name:"ifc" Chls.Schedule.default_config
      Chls.Transform.default_options
      {
        funcs =
          [
            {
              fname = "top";
              params = [ PArray ("blk", short_t, 64) ];
              ret = None;
              locals = [ ("t", int_t) ];
              arrays = [];
              body =
                [
                  Assign ("t", Load ("blk", Int 0));
                  If
                    ( Bin (Gt, Var "t", Int 10),
                      [ Store ("blk", Int 1, Int 1) ],
                      [ Store ("blk", Int 1, Int 2) ] );
                ];
            };
          ];
        top = "top";
      }
  in
  ignore p;
  let run first =
    let input = Axis.Block.create () in
    input.(0) <- first;
    let r = Axis.Driver.run circuit [ input ] in
    (List.hd r.Axis.Driver.outputs).(1)
  in
  check int "then branch" 1 (run 50);
  check int "else branch" 2 (run 3)

(* ---------------- scheduler ---------------- *)

let loads_per_step (blk : Chls.Schedule.block) arr =
  let tbl = Hashtbl.create 8 in
  Array.iter
    (fun (o : Chls.Schedule.op) ->
      match o.Chls.Schedule.kind with
      | Chls.Schedule.KLoad a when a = arr ->
          Hashtbl.replace tbl o.Chls.Schedule.step
            (1 + Option.value ~default:0 (Hashtbl.find_opt tbl o.Chls.Schedule.step))
      | _ -> ())
    blk.Chls.Schedule.ops;
  Hashtbl.fold (fun _ v acc -> max v acc) tbl 0

let schedule_idct cfg =
  Chls.Schedule.schedule cfg
    (Chls.Transform.lower Chls.Transform.default_options Chls.Idct_c.program)

let rec first_block = function
  | Chls.Schedule.SBlock b :: _ -> Some b
  | Chls.Schedule.SLoop { body; _ } :: rest -> (
      match first_block body with Some b -> Some b | None -> first_block rest)
  | _ :: rest -> first_block rest
  | [] -> None

let test_memory_port_limits () =
  let one = schedule_idct { Chls.Schedule.default_config with read_ports = 1 } in
  let two = schedule_idct { Chls.Schedule.default_config with read_ports = 2 } in
  (match (first_block one.Chls.Schedule.regions, first_block two.Chls.Schedule.regions) with
  | Some b1, Some b2 ->
      check bool "1 port respected" true (loads_per_step b1 "blk" <= 1);
      check bool "2 ports respected" true (loads_per_step b2 "blk" <= 2)
  | _ -> Alcotest.fail "no block found");
  check bool "more ports, fewer cycles" true
    (Chls.Schedule.total_cycles two < Chls.Schedule.total_cycles one)

let test_chaining_budget () =
  let slow = schedule_idct { Chls.Schedule.default_config with chain_ns = 3.0 } in
  let fast = schedule_idct { Chls.Schedule.default_config with chain_ns = 9.0 } in
  check bool "longer chains, fewer cycles" true
    (Chls.Schedule.total_cycles fast < Chls.Schedule.total_cycles slow)

let test_waw_order_kept () =
  (* x assigned twice: the commits must be strictly ordered. *)
  let proc =
    Chls.Transform.lower Chls.Transform.default_options
      {
        funcs =
          [
            {
              fname = "f";
              params = [ PArray ("blk", short_t, 64) ];
              ret = None;
              locals = [ ("x", int_t) ];
              arrays = [];
              body =
                [
                  Assign ("x", Int 1);
                  Assign ("x", Bin (Add, Var "x", Int 2));
                  Store ("blk", Int 0, Var "x");
                ];
            };
          ];
        top = "f";
      }
  in
  let s = Chls.Schedule.schedule Chls.Schedule.default_config proc in
  match first_block s.Chls.Schedule.regions with
  | Some b ->
      let defs =
        Array.to_list b.Chls.Schedule.ops
        |> List.filter_map (fun (o : Chls.Schedule.op) ->
               match o.Chls.Schedule.kind with
               | Chls.Schedule.KDefVar "x" -> Some o.Chls.Schedule.step
               | _ -> None)
      in
      (match defs with
      | [ s1; s2 ] -> check bool "strictly ordered" true (s1 < s2)
      | _ -> Alcotest.fail "expected two defs")
  | None -> Alcotest.fail "no block"

(* ---------------- end-to-end FSM configurations ---------------- *)

let mats n =
  let rng = Axis.Block.Rand.create ~seed:71 () in
  List.init n (fun _ ->
      Idct.Reference.fdct (Axis.Block.Rand.block rng ~lo:(-256) ~hi:255))

let bit_true circuit =
  let inputs = mats 2 in
  let r = Axis.Driver.run ~timeout:20000 circuit inputs in
  List.for_all2 Axis.Block.equal r.Axis.Driver.outputs
    (List.map Idct.Chenwang.idct inputs)

let test_bambu_configs_bit_true () =
  (* A representative slice of the 42-point grid. *)
  List.iter
    (fun (c : Chls.Tool.bambu_config) ->
      check bool (Chls.Tool.describe_bambu c) true
        (bit_true (Chls.Tool.bambu_circuit c)))
    [
      Chls.Tool.bambu_initial;
      Chls.Tool.bambu_optimized;
      { preset = "AREA"; sdc = false; chain_effort = 0 };
      { preset = "BALANCED-MP"; sdc = true; chain_effort = 2 };
    ]

let test_vhls_configs_bit_true () =
  List.iter
    (fun c ->
      check bool (Chls.Tool.describe_vhls c) true
        (bit_true (Chls.Tool.vhls_circuit c)))
    Chls.Tool.vhls_ladder

let test_bambu_mp_faster () =
  let cyc c =
    (Axis.Driver.run ~timeout:20000 (Chls.Tool.bambu_circuit c) (mats 2))
      .Axis.Driver.periodicity
  in
  check bool "PERFORMANCE-MP beats the default preset" true
    (cyc Chls.Tool.bambu_optimized < cyc Chls.Tool.bambu_initial)

let test_vhls_pipeline_periodicity () =
  let r =
    Axis.Driver.run (Chls.Tool.vhls_circuit Chls.Tool.vhls_optimized) (mats 3)
  in
  check int "II=8 achieved" 8 r.Axis.Driver.periodicity;
  check bool "latency near the paper's 26" true
    (abs (r.Axis.Driver.latency - 26) <= 3)

let test_vhls_pushbutton_slow () =
  let r =
    Axis.Driver.run ~timeout:20000
      (Chls.Tool.vhls_circuit Chls.Tool.vhls_initial)
      (mats 2)
  in
  (* non-inlined units with synchronization overhead: hundreds of cycles *)
  check bool "sequential and slow" true (r.Axis.Driver.periodicity > 300)

let test_grid_sizes () =
  check int "42 Bambu configurations" 42 (List.length Chls.Tool.bambu_grid);
  check int "pragma ladder" 5 (List.length Chls.Tool.vhls_ladder)

let () =
  Alcotest.run "chls"
    [
      ( "interpreter",
        [
          Alcotest.test_case "basics" `Quick test_interp_basics;
          Alcotest.test_case "short truncation" `Quick test_interp_short_truncation;
          Alcotest.test_case "idct = Chen-Wang" `Quick test_interp_idct_matches_chenwang;
        ] );
      ( "transform",
        [
          Alcotest.test_case "unroll folds indices" `Quick test_unroll_folds_indices;
          Alcotest.test_case "if-conversion" `Slow test_if_conversion;
        ] );
      ( "schedule",
        [
          Alcotest.test_case "memory ports" `Quick test_memory_port_limits;
          Alcotest.test_case "chaining budget" `Quick test_chaining_budget;
          Alcotest.test_case "write-after-write order" `Quick test_waw_order_kept;
          Alcotest.test_case "option grids" `Quick test_grid_sizes;
        ] );
      ( "fsm",
        [
          Alcotest.test_case "bambu configs bit-true" `Slow test_bambu_configs_bit_true;
          Alcotest.test_case "vivado-hls configs bit-true" `Slow test_vhls_configs_bit_true;
          Alcotest.test_case "multi-port is faster" `Slow test_bambu_mp_faster;
          Alcotest.test_case "II=8 pipeline" `Slow test_vhls_pipeline_periodicity;
          Alcotest.test_case "push-button is slow" `Slow test_vhls_pushbutton_slow;
        ] );
    ]
