(* The resilience layer (DESIGN.md §11): typed Flow errors for every
   failure class, the compiled-sim -> interpreter fallback, keep-going
   sweep semantics, atomic trace writes and the stats diagnostics.  Every
   fault here is injected through Core.Faultinject with a fixed seed —
   nothing depends on wall clock or scheduling. *)

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int
let string = Alcotest.string

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec at i =
    if i + m > n then false
    else if String.sub s i m = sub then true
    else at (i + 1)
  in
  m = 0 || at 0

let victim_design = Core.Registry.initial Core.Design.Verilog
let victim_key = Core.Flow.span_key victim_design

(* Arm [spec], run the measurement, expect a typed Flow.Error and hand
   it to [examine]; the spec is disarmed whatever happens. *)
let expect_error spec examine =
  Core.Faultinject.arm spec;
  Fun.protect ~finally:Core.Faultinject.disarm (fun () ->
      match Core.Flow.measure_uncached ~spec:Core.Flow.idct_spec ~matrices:3 victim_design with
      | _ -> Alcotest.fail "expected a typed Flow.Error"
      | exception Core.Flow.Error err -> examine err)

(* ---------------- the error taxonomy, one class at a time ------------ *)

let test_poison_not_bit_true () =
  expect_error
    { Core.Faultinject.fault = Poison; target = victim_key; seed = 1 }
    (fun err ->
      check string "design" victim_key err.Core.Flow.err_design;
      check string "stage" "verify" err.Core.Flow.err_stage;
      match err.Core.Flow.err_class with
      | Core.Flow.Not_bit_true { block_index; got; expected } ->
          (* seed 1 over 3 simulated matrices poisons block 1 mod 3. *)
          check int "first mismatching block" 1 block_index;
          check bool "got excerpt present" true (got <> "");
          check bool "expected excerpt present" true (expected <> "")
      | c ->
          Alcotest.fail
            ("expected not-bit-true, got " ^ Core.Flow.class_name c))

let test_protocol_violation () =
  expect_error
    { Core.Faultinject.fault = Protocol; target = victim_key; seed = 5 }
    (fun err ->
      check string "stage" "verify" err.Core.Flow.err_stage;
      match err.Core.Flow.err_class with
      | Core.Flow.Protocol_violation msg ->
          check bool "carries the monitor verdict" true
            (contains ~sub:"injected protocol fault" msg)
      | c ->
          Alcotest.fail
            ("expected protocol-violation, got " ^ Core.Flow.class_name c))

let test_stall_times_out () =
  expect_error
    { Core.Faultinject.fault = Stall; target = victim_key; seed = 0 }
    (fun err ->
      check string "stage" "simulate" err.Core.Flow.err_stage;
      match err.Core.Flow.err_class with
      | Core.Flow.Sim_timeout msg ->
          (* The stall is reported by the driver's own timeout path. *)
          check bool "driver timeout message" true
            (contains ~sub:"timeout after" msg)
      | c ->
          Alcotest.fail ("expected sim-timeout, got " ^ Core.Flow.class_name c))

let test_crash_classification () =
  let crash stage examine =
    expect_error
      { Core.Faultinject.fault = Crash stage; target = victim_key; seed = 0 }
      (fun err ->
        check string "stage" stage err.Core.Flow.err_stage;
        examine err.Core.Flow.err_class)
  in
  crash "elaborate" (function
    | Core.Flow.Engine_failure _ -> ()
    | c -> Alcotest.fail ("elaborate: " ^ Core.Flow.class_name c));
  crash "simulate" (function
    (* The probe fires at stage entry, before either engine runs, so the
       interpreter fallback cannot save it: an engine failure. *)
    | Core.Flow.Engine_failure _ -> ()
    | c -> Alcotest.fail ("simulate: " ^ Core.Flow.class_name c));
  crash "synthesize" (function
    | Core.Flow.Synth_failure _ -> ()
    | c -> Alcotest.fail ("synthesize: " ^ Core.Flow.class_name c));
  crash "metrics" (function
    | Core.Flow.Unexpected _ -> ()
    | c -> Alcotest.fail ("metrics: " ^ Core.Flow.class_name c))

let test_error_rendering () =
  let err =
    {
      Core.Flow.err_design = "Verilog/initial";
      err_stage = "verify";
      err_class =
        Core.Flow.Not_bit_true
          { block_index = 2; got = "row 0 [1 2]"; expected = "[1 3]" };
    }
  in
  let text = Core.Flow.error_to_string err in
  check bool "one canonical rendering" true
    (contains ~sub:"Verilog/initial" text
    && contains ~sub:"verify" text
    && contains ~sub:"not-bit-true" text
    && contains ~sub:"block 2" text);
  (* The registered exception printer emits the same text. *)
  check string "Printexc agrees" text
    (Printexc.to_string (Core.Flow.Error err));
  let summary = Core.Flow.render_failure_summary [ err ] in
  check bool "summary counts and lists the point" true
    (contains ~sub:"1 design point" summary
    && contains ~sub:"Verilog/initial" summary
    && contains ~sub:"not-bit-true" summary)

(* ---------------- the compiled -> interpreter fallback --------------- *)

let test_engine_fallback_recovers () =
  let clean = Core.Flow.measure_uncached ~spec:Core.Flow.idct_spec ~matrices:3 victim_design in
  Core.Faultinject.arm
    { Core.Faultinject.fault = Engine_crash; target = victim_key; seed = 0 };
  let degraded =
    Fun.protect ~finally:Core.Faultinject.disarm (fun () ->
        Core.Trace.set_enabled true;
        Fun.protect
          ~finally:(fun () -> Core.Trace.set_enabled false)
          (fun () -> Core.Flow.measure_uncached ~spec:Core.Flow.idct_spec ~matrices:3 victim_design))
  in
  let spans = Core.Trace.drain () in
  (* The retry on the reference interpreter reproduces the compiled
     engine's measurement exactly... *)
  check bool "interpreter retry is bit-identical" true (clean = degraded);
  (* ...and the degradation is on the record. *)
  let fallbacks =
    List.concat_map
      (fun (s : Core.Trace.span) ->
        List.filter (fun (k, _) -> k = "engine_fallback") s.Core.Trace.counters)
      spans
  in
  check (Alcotest.list (Alcotest.pair string int)) "fallback counter"
    [ ("engine_fallback", 1) ]
    fallbacks

(* ---------------- keep-going sweeps ---------------- *)

let test_keep_going_sweep () =
  let designs = Core.Registry.sweep Core.Design.Verilog in
  (* Target a point whose span key is not a substring of any sibling's,
     so exactly one point is hit. *)
  let victim =
    List.find
      (fun d ->
        let k = Core.Flow.span_key d in
        1
        = List.length
            (List.filter
               (fun d' -> contains ~sub:k (Core.Flow.span_key d'))
               designs))
      designs
  in
  let vkey = Core.Flow.span_key victim in
  Core.Evaluate.clear_measure_cache ();
  Core.Faultinject.arm
    { Core.Faultinject.fault = Poison; target = vkey; seed = 0 };
  let faulted =
    Fun.protect ~finally:Core.Faultinject.disarm (fun () ->
        Core.Evaluate.measure_all_result ~spec:Core.Flow.idct_spec ~jobs:2 ~matrices:3 designs)
  in
  Core.Evaluate.clear_measure_cache ();
  let clean = Core.Evaluate.measure_all ~spec:Core.Flow.idct_spec ~jobs:2 ~matrices:3 designs in
  check int "one outcome per design" (List.length designs)
    (List.length faulted);
  List.iteri
    (fun i (d, (r, m)) ->
      let key = Core.Flow.span_key d in
      if key = vkey then
        match r with
        | Error e ->
            check string "failure attributed to the poisoned point" vkey
              e.Core.Flow.err_design;
            check string "typed as not-bit-true" "not-bit-true"
              (Core.Flow.class_name e.Core.Flow.err_class)
        | Ok _ -> Alcotest.fail "the poisoned point must fail"
      else
        match r with
        | Ok got ->
            check bool
              (Printf.sprintf "survivor %d identical to fault-free run" i)
              true (got = m)
        | Error e ->
            Alcotest.fail
              (Printf.sprintf "unexpected failure on %s: %s" key
                 (Core.Flow.error_to_string e)))
    (List.map2 (fun d (r, m) -> (d, (r, m))) designs
       (List.map2 (fun r m -> (r, m)) faulted clean))

let test_keep_going_all_run () =
  (* Unlike the fail-fast map, a keep-going batch measures every point
     even when an early one fails: no Ok slot is missing. *)
  let designs = Core.Registry.sweep Core.Design.Chisel in
  let first_key = Core.Flow.span_key (List.hd designs) in
  Core.Evaluate.clear_measure_cache ();
  Core.Faultinject.arm
    { Core.Faultinject.fault = Crash "synthesize"; target = first_key; seed = 0 };
  let outcomes =
    Fun.protect ~finally:Core.Faultinject.disarm (fun () ->
        Core.Evaluate.measure_all_result ~spec:Core.Flow.idct_spec ~jobs:1 ~matrices:3 designs)
  in
  Core.Evaluate.clear_measure_cache ();
  let oks = List.filter (function Ok _ -> true | Error _ -> false) outcomes in
  check int "every other point measured" (List.length designs - 1)
    (List.length oks);
  match List.hd outcomes with
  | Error e ->
      check string "typed as synth-failure" "synth-failure"
        (Core.Flow.class_name e.Core.Flow.err_class)
  | Ok _ -> Alcotest.fail "first point must fail"

(* ---------------- fault-spec parsing ---------------- *)

let test_parse_specs () =
  (match Core.Faultinject.parse "poison" with
  | Ok s ->
      check bool "bare fault targets everything" true
        (s.Core.Faultinject.target = "" && s.Core.Faultinject.seed = 0);
      check string "round trip" "poison:*:0" (Core.Faultinject.to_string s)
  | Error e -> Alcotest.fail e);
  (match Core.Faultinject.parse "crash@synthesize:Verilog:3" with
  | Ok { Core.Faultinject.fault = Crash "synthesize"; target = "Verilog"; seed = 3 }
    -> ()
  | Ok s -> Alcotest.fail ("misparsed: " ^ Core.Faultinject.to_string s)
  | Error e -> Alcotest.fail e);
  (match Core.Faultinject.parse "stall:*" with
  | Ok { Core.Faultinject.fault = Stall; target = ""; _ } -> ()
  | _ -> Alcotest.fail "star target must match everything");
  let bad text fragment =
    match Core.Faultinject.parse text with
    | Ok _ -> Alcotest.fail ("accepted bad spec " ^ text)
    | Error e -> check bool ("diagnostic for " ^ text) true (contains ~sub:fragment e)
  in
  bad "" "empty fault spec";
  bad "meteor:*" "unknown fault";
  bad "poison:x:-1" "bad seed"

(* ---------------- atomic writes and stats diagnostics ---------------- *)

let read_file path = In_channel.with_open_bin path In_channel.input_all

let test_write_atomic () =
  let path = Filename.temp_file "hlsvhc_atomic" ".json" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      Core.Trace.write_atomic path (fun oc -> output_string oc "complete");
      check string "written through the rename" "complete" (read_file path);
      (* A crashing emitter leaves the previous content untouched... *)
      (match
         Core.Trace.write_atomic path (fun oc ->
             output_string oc "torn";
             failwith "emitter died")
       with
      | () -> Alcotest.fail "emitter exception must propagate"
      | exception Failure _ -> ());
      check string "old content survives a torn write" "complete"
        (read_file path);
      (* ...and no temp sibling is left behind. *)
      let base = Filename.basename path ^ ".tmp" in
      let litter =
        Array.exists
          (fun f -> contains ~sub:base f)
          (Sys.readdir (Filename.dirname path))
      in
      check bool "no temp litter" false litter)

let test_stats_diagnostics () =
  (* Missing file: a clean Sys_error, which the CLI turns into exit 1. *)
  (match Core.Trace.load_json "/nonexistent/hlsvhc-trace.json" with
  | _ -> Alcotest.fail "missing file must not parse"
  | exception Sys_error _ -> ());
  (* Empty file: the recording process died before the atomic rename. *)
  let tmp = Filename.temp_file "hlsvhc_empty" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove tmp)
    (fun () ->
      match Core.Trace.load_json tmp with
      | _ -> Alcotest.fail "empty file must not parse"
      | exception Failure m ->
          check bool "names the file and the cause" true
            (contains ~sub:tmp m && contains ~sub:"empty trace" m));
  (* Truncated JSON: a diagnostic, not a crash. *)
  let tmp = Filename.temp_file "hlsvhc_trunc" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove tmp)
    (fun () ->
      Out_channel.with_open_bin tmp (fun oc ->
          output_string oc "{ \"spans\": [ { \"design\"");
      match Core.Trace.load_json tmp with
      | _ -> Alcotest.fail "truncated file must not parse"
      | exception Failure m ->
          check bool "failure names the file" true (contains ~sub:tmp m))

let () =
  (* Nothing here may depend on an ambient spec. *)
  Core.Faultinject.disarm ();
  Alcotest.run "faults"
    [
      ( "classes",
        [
          Alcotest.test_case "poison -> not-bit-true" `Quick
            test_poison_not_bit_true;
          Alcotest.test_case "protocol violation" `Quick
            test_protocol_violation;
          Alcotest.test_case "stall -> sim-timeout" `Quick
            test_stall_times_out;
          Alcotest.test_case "crash@stage classification" `Quick
            test_crash_classification;
          Alcotest.test_case "canonical rendering" `Quick test_error_rendering;
        ] );
      ( "fallback",
        [
          Alcotest.test_case "compiled -> interpreter" `Quick
            test_engine_fallback_recovers;
        ] );
      ( "keep-going",
        [
          Alcotest.test_case "survivors byte-identical" `Slow
            test_keep_going_sweep;
          Alcotest.test_case "early failure aborts nothing" `Quick
            test_keep_going_all_run;
        ] );
      ( "spec",
        [ Alcotest.test_case "parse and round-trip" `Quick test_parse_specs ] );
      ( "io",
        [
          Alcotest.test_case "atomic writes" `Quick test_write_atomic;
          Alcotest.test_case "stats diagnostics" `Quick test_stats_diagnostics;
        ] );
    ]
