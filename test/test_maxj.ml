(* Tests for the MaxJ streaming substrate: kernel eDSL, auto-pipelining,
   the PCIe manager model and the two IDCT kernels. *)

let check = Alcotest.check
let bool = Alcotest.bool

let test_kernel_pipelining () =
  (* A feed-forward kernel gets register ranks inserted; depth > 0 and the
     per-stage delay meets the stream clock. *)
  let k = Maxj.Kernel.create "ff" in
  let x = Maxj.Kernel.input k "x" 12 in
  let y = Maxj.Kernel.mulc k 2841 x in
  let z = Maxj.Kernel.add k y (Maxj.Kernel.mulc k 1108 x) in
  Maxj.Kernel.output k "y" (Maxj.Kernel.cast k z 24);
  let c = Maxj.Kernel.finalize k in
  let depth = Maxj.Kernel.pipeline_depth c in
  check bool "pipelined" true (depth >= 1);
  let t = Hw.Timing.analyze Hw.Device.xcvu9p c in
  check bool "meets a reasonable clock" true (t.Hw.Timing.period_ns < 5.0)

let test_kernel_stateful_not_retimed () =
  let k = Maxj.Kernel.create "st" in
  let x = Maxj.Kernel.input k "x" 8 in
  let cnt = Maxj.Kernel.counter k ~modulo:8 in
  let en =
    let b = Maxj.Kernel.create "tmp" in
    ignore b;
    cnt
  in
  ignore en;
  let h = Maxj.Kernel.hold k ~enable:(Maxj.Kernel.cast k cnt 1) x in
  Maxj.Kernel.output k "y" h;
  let c = Maxj.Kernel.finalize k in
  (* holds and counters survive as registers (no retime attempted) *)
  check bool "has state" true (Array.exists Hw.Netlist.is_reg c.Hw.Netlist.nodes)

let test_counter_modulo_check () =
  let k = Maxj.Kernel.create "bad" in
  (match Maxj.Kernel.counter k ~modulo:6 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected power-of-two check")

let test_listing_records () =
  let k = Maxj.Kernel.create "trace" in
  let x = Maxj.Kernel.input k "x" 8 in
  Maxj.Kernel.output k "y" (Maxj.Kernel.add k x x);
  let l = Maxj.Kernel.listing k in
  check bool "has class header" true
    (String.length l > 0 && String.sub l 0 5 = "class")

let mats n =
  let rng = Axis.Block.Rand.create ~seed:51 () in
  List.init n (fun _ ->
      Idct.Reference.fdct (Axis.Block.Rand.block rng ~lo:(-256) ~hi:255))

let test_initial_kernel_bit_true () =
  let inputs = mats 6 in
  let got = Maxj.Idct_maxj.simulate_initial inputs in
  check bool "bit-true" true
    (List.for_all2 Axis.Block.equal got (List.map Idct.Chenwang.idct inputs))

let test_opt_kernel_bit_true () =
  let inputs = mats 6 in
  let got = Maxj.Idct_maxj.simulate_opt inputs in
  check bool "bit-true" true
    (List.for_all2 Axis.Block.equal got (List.map Idct.Chenwang.idct inputs))

let test_initial_system_pcie_bound () =
  let r = Maxj.Manager.evaluate (Maxj.Idct_maxj.initial_system ()) in
  check bool "PCIe bound (paper IV-E)" true r.Maxj.Manager.pcie_bound;
  (* 15.75 GB/s over 1024-bit matrices = 123 MOPS, the paper's number *)
  check bool "throughput = link rate" true
    (abs_float (r.Maxj.Manager.throughput_mops -. 123.05) < 0.1)

let test_opt_system_compute_bound () =
  let r = Maxj.Manager.evaluate (Maxj.Idct_maxj.opt_system ()) in
  check bool "frequency bound" true (not r.Maxj.Manager.pcie_bound);
  let ri = Maxj.Manager.evaluate (Maxj.Idct_maxj.initial_system ()) in
  check bool "lower throughput than initial" true
    (r.Maxj.Manager.throughput_mops < ri.Maxj.Manager.throughput_mops)

let test_opt_kernel_smaller () =
  let a_init =
    (Hw.Synth.run (Maxj.Idct_maxj.initial_kernel ())).Hw.Synth.area
  in
  let a_opt = (Hw.Synth.run (Maxj.Idct_maxj.opt_kernel ())).Hw.Synth.area in
  (* the paper reports roughly 2.8x; ours is in the same direction *)
  check bool "optimized kernel at least 2x smaller" true
    (float_of_int a_init /. float_of_int a_opt > 2.0)

let test_stream_clock_cap () =
  let r = Maxj.Manager.evaluate (Maxj.Idct_maxj.initial_system ()) in
  check bool "fmax capped at the stream clock" true
    (r.Maxj.Manager.fmax_mhz <= Maxj.Manager.max_stream_clock_mhz +. 1e-9)

let () =
  Alcotest.run "maxj"
    [
      ( "kernel",
        [
          Alcotest.test_case "auto pipelining" `Quick test_kernel_pipelining;
          Alcotest.test_case "stateful kernels kept" `Quick test_kernel_stateful_not_retimed;
          Alcotest.test_case "counter modulo" `Quick test_counter_modulo_check;
          Alcotest.test_case "construction trace" `Quick test_listing_records;
        ] );
      ( "idct",
        [
          Alcotest.test_case "matrix kernel bit-true" `Slow test_initial_kernel_bit_true;
          Alcotest.test_case "row kernel bit-true" `Slow test_opt_kernel_bit_true;
        ] );
      ( "manager",
        [
          Alcotest.test_case "initial is PCIe bound" `Quick test_initial_system_pcie_bound;
          Alcotest.test_case "optimized is compute bound" `Quick test_opt_system_compute_bound;
          Alcotest.test_case "optimized kernel smaller" `Quick test_opt_kernel_smaller;
          Alcotest.test_case "stream clock cap" `Quick test_stream_clock_cap;
        ] );
    ]
