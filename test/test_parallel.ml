(* The domain-parallel evaluation engine: pool semantics, determinism of
   the Fig. 1 pipeline under parallel evaluation, the shared measurement
   cache, and the fixed multi-line-comment LOC counter. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

(* ---------------- the pool itself ---------------- *)

let test_map_preserves_order () =
  let xs = List.init 100 Fun.id in
  check (Alcotest.list int) "squares in order"
    (List.map (fun x -> x * x) xs)
    (Core.Parallel.map ~jobs:4 (fun x -> x * x) xs);
  check (Alcotest.list int) "jobs=1 inline"
    (List.map succ xs)
    (Core.Parallel.map ~jobs:1 succ xs);
  check (Alcotest.list int) "more jobs than items" [ 4; 9 ]
    (Core.Parallel.map ~jobs:16 (fun x -> x * x) [ 2; 3 ])

let test_map_empty_and_env () =
  check (Alcotest.list int) "empty" [] (Core.Parallel.map ~jobs:4 succ []);
  check bool "default_jobs positive" true (Core.Parallel.default_jobs () >= 1)

let test_pool_survives_raising_job () =
  let xs = List.init 50 Fun.id in
  (* The first failure propagates to the caller... *)
  (match
     Core.Parallel.map ~jobs:3
       (fun x -> if x = 17 then failwith "boom" else x)
       xs
   with
  | _ -> Alcotest.fail "expected the job's exception"
  | exception Failure m -> check Alcotest.string "exn text" "boom" m);
  (* ...and the engine stays usable afterwards: no deadlock, no poisoned
     state. *)
  check (Alcotest.list int) "pool reusable after failure"
    (List.map succ xs)
    (Core.Parallel.map ~jobs:3 succ xs)

(* ---------------- keep-going map ---------------- *)

let test_map_result_order_and_capture () =
  let xs = List.init 40 Fun.id in
  let run jobs =
    Core.Parallel.map_result ~jobs
      (fun x -> if x mod 7 = 3 then failwith (string_of_int x) else x * 2)
      xs
  in
  let examine rs =
    check int "one slot per item" 40 (List.length rs);
    List.iteri
      (fun i r ->
        match r with
        | Ok v ->
            check bool "slot should have failed" false (i mod 7 = 3);
            check int "value in input order" (i * 2) v
        | Error (Failure m, _) ->
            check bool "slot should have survived" true (i mod 7 = 3);
            check int "exception captured in its own slot" i (int_of_string m)
        | Error _ -> Alcotest.fail "wrong exception captured")
      rs
  in
  examine (run 4);
  (* The inline path has the same per-slot semantics. *)
  examine (run 1)

let test_map_result_runs_everything () =
  (* No abort: every item executes even when an early one raises. *)
  let ran = Atomic.make 0 in
  let rs =
    Core.Parallel.map_result ~jobs:3
      (fun x ->
        Atomic.incr ran;
        if x = 0 then failwith "first";
        x)
      (List.init 30 Fun.id)
  in
  check int "every job ran" 30 (Atomic.get ran);
  check int "every slot filled" 30 (List.length rs)

(* ---------------- the shared memo cache ---------------- *)

module Memo_ref = Core.Parallel.Memo (struct
  type t = int ref
end)

let test_memo_race_first_store_wins () =
  Memo_ref.clear ();
  (* Both domains pass the barrier before either calls the cache, so the
     two computations genuinely race on one missing key. *)
  let entered = Atomic.make 0 in
  let contender id =
    Domain.spawn (fun () ->
        Atomic.incr entered;
        while Atomic.get entered < 2 do
          Domain.cpu_relax ()
        done;
        Memo_ref.find_or_compute ~key:"race" (fun () -> ref id))
  in
  let a = contender 1 and b = contender 2 in
  let ra = Domain.join a and rb = Domain.join b in
  check bool "both callers get one canonical value" true (ra == rb);
  check bool "the canonical value is one of the computed ones" true
    (!ra = 1 || !ra = 2);
  check int "losing store is discarded" 1 (Memo_ref.size ());
  (* A later hit returns the same canonical value. *)
  check bool "hit is physically the stored value" true
    (Memo_ref.find_or_compute ~key:"race" (fun () -> ref 99) == ra);
  Memo_ref.clear ()

(* ---------------- fig1 determinism ---------------- *)

let tools = [ Core.Design.Verilog; Core.Design.Chisel; Core.Design.Dslx ]

let points_flat series =
  List.concat_map (fun (s : Core.Fig1.series) -> s.Core.Fig1.points) series

let test_fig1_parallel_equals_sequential () =
  Core.Fig1.clear_cache ();
  Core.Evaluate.clear_measure_cache ();
  let seq = Core.Fig1.compute ~jobs:1 ~tools () in
  Core.Fig1.clear_cache ();
  Core.Evaluate.clear_measure_cache ();
  let par = Core.Fig1.compute ~jobs:4 ~tools () in
  check int "same series count" (List.length seq) (List.length par);
  List.iter2
    (fun (a : Core.Fig1.series) (b : Core.Fig1.series) ->
      check bool "same tool" true (a.Core.Fig1.tool = b.Core.Fig1.tool))
    seq par;
  check bool "points equal point-for-point" true
    (points_flat seq = points_flat par)

let test_fig1_cache_hit_identical () =
  Core.Fig1.clear_cache ();
  Core.Evaluate.clear_measure_cache ();
  let first = Core.Fig1.compute ~jobs:2 ~tools () in
  let second = Core.Fig1.compute ~jobs:2 ~tools () in
  (* The cache returns the very same series values, not recomputations. *)
  List.iter2
    (fun (a : Core.Fig1.series) b ->
      check bool "physically identical series" true (a == b))
    first second

(* ---------------- measurement cache ---------------- *)

let test_measure_cache () =
  Core.Evaluate.clear_measure_cache ();
  let d = Core.Registry.initial Core.Design.Verilog in
  let m1 = Core.Evaluate.measure ~spec:Core.Flow.idct_spec ~matrices:3 d in
  let m2 = Core.Evaluate.measure ~spec:Core.Flow.idct_spec ~matrices:3 d in
  check bool "cache hit is the same measurement" true (m1 == m2);
  Core.Evaluate.clear_measure_cache ();
  let m3 = Core.Evaluate.measure ~spec:Core.Flow.idct_spec ~matrices:3 d in
  check bool "recomputation is structurally equal" true (m1 = m3)

(* ---------------- the fixed LOC counter ---------------- *)

let test_loc_multiline_verilog () =
  let src =
    "// header\nmodule m;\n/* multi\n   line\n   comment */\nwire x;\nendmodule\n"
  in
  check int "verilog multi-line block" 3 (Core.Loc.count src);
  (* A sensitivity list is not a comment opener. *)
  check int "always @(*) is code" 3
    (Core.Loc.count "always @(*) begin\n  x = 1;\nend\n")

let test_loc_multiline_c () =
  let src =
    "int f() {\n  /* spans\n     two lines */ int y = 0;\n  (*p)++;\n  return y; /* tail */\n}\n"
  in
  (* Interior comment text never counts; the closer line counts because
     code follows the closer; mid-line paren-star is a pointer deref. *)
  check int "c multi-line block" 5 (Core.Loc.count src);
  check int "string literal is opaque" 2
    (Core.Loc.count "s = \"/* not a comment\";\nx;\n")

let test_loc_multiline_bsv () =
  let src = "(* synthesize,\n   always_ready *)\nrule r;\nendrule\n" in
  check int "bsv attribute block" 2 (Core.Loc.count src);
  check int "nested ocaml-style" 1
    (Core.Loc.count "(* outer (* inner *)\n   still comment *)\ncode;\n")

let test_loc_alpha_consistency () =
  (* The Table II LOC decomposition survives the counter fix: parts stay
     positive and sum to the total for every registered design. *)
  List.iter
    (fun (d : Core.Design.t) ->
      check bool "fu loc positive" true (d.Core.Design.loc_fu > 0);
      check int "parts sum"
        (Core.Design.loc d)
        (d.Core.Design.loc_fu + d.Core.Design.loc_axi + d.Core.Design.loc_conf))
    (Core.Registry.all_designs ())

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "map preserves order" `Quick
            test_map_preserves_order;
          Alcotest.test_case "empty and defaults" `Quick test_map_empty_and_env;
          Alcotest.test_case "survives raising job" `Quick
            test_pool_survives_raising_job;
          Alcotest.test_case "map_result order and capture" `Quick
            test_map_result_order_and_capture;
          Alcotest.test_case "map_result runs everything" `Quick
            test_map_result_runs_everything;
        ] );
      ( "memo",
        [
          Alcotest.test_case "first store wins" `Quick
            test_memo_race_first_store_wins;
        ] );
      ( "fig1",
        [
          Alcotest.test_case "parallel = sequential" `Slow
            test_fig1_parallel_equals_sequential;
          Alcotest.test_case "cache hit identical" `Slow
            test_fig1_cache_hit_identical;
        ] );
      ( "cache",
        [ Alcotest.test_case "measure memoized" `Quick test_measure_cache ] );
      ( "loc",
        [
          Alcotest.test_case "verilog multi-line" `Quick
            test_loc_multiline_verilog;
          Alcotest.test_case "c multi-line" `Quick test_loc_multiline_c;
          Alcotest.test_case "bsv attributes" `Quick test_loc_multiline_bsv;
          Alcotest.test_case "decomposition intact" `Quick
            test_loc_alpha_consistency;
        ] );
    ]
