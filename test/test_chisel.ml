(* Tests for the hardware-construction eDSL (Chisel stand-in): width
   inference and the IDCT generators in both width disciplines. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let with_builder f =
  let b = Hw.Builder.create "t" in
  f b

let test_width_inference () =
  with_builder (fun b ->
      let x = Chisel.Dsl.of_raw (Hw.Builder.input b "x" 12) in
      let y = Chisel.Dsl.of_raw (Hw.Builder.input b "y" 8) in
      check int "add grows by one" 13 (Chisel.Dsl.width (Chisel.Dsl.add b x y));
      check int "mul sums widths" 20 (Chisel.Dsl.width (Chisel.Dsl.mul b x y));
      check int "shl grows" 15 (Chisel.Dsl.width (Chisel.Dsl.shl b x 3));
      check int "asr shrinks" 9 (Chisel.Dsl.width (Chisel.Dsl.asr_ b x 3));
      check int "lit width minimal" 9 (Chisel.Dsl.width (Chisel.Dsl.lit b 255));
      check int "lit negative" 9 (Chisel.Dsl.width (Chisel.Dsl.lit b (-256)));
      check int "clamp to range width" 9
        (Chisel.Dsl.width (Chisel.Dsl.clamp b ~lo:(-256) ~hi:255 x)))

let test_dsl_semantics () =
  let b = Hw.Builder.create "sem" in
  let x = Chisel.Dsl.of_raw (Hw.Builder.input b "x" 12) in
  let sum = Chisel.Dsl.add b x (Chisel.Dsl.lit b 100) in
  let clipped = Chisel.Dsl.clamp b ~lo:(-256) ~hi:255 sum in
  Hw.Builder.output b "o" (Chisel.Dsl.raw clipped);
  let sim = Hw.Sim.create (Hw.Builder.finalize b) in
  let run v =
    Hw.Sim.set sim "x" v;
    Hw.Sim.get_signed sim "o"
  in
  check int "clamps high" 255 (run 1000);
  check int "passes through" 90 (run (-10));
  check int "clamps low" (-256) (run (-2000 land 0xFFF))

let test_mid_width_inferred () =
  let w = Chisel.Idct_gen.mid_width Chisel.Idct_gen.Inferred in
  check bool "inferred row width is narrower than fixed 32" true (w < 32);
  check bool "but wide enough for the dynamic range" true (w >= 15)

let mats n =
  let rng = Axis.Block.Rand.create ~seed:21 () in
  List.init n (fun _ ->
      Idct.Reference.fdct (Axis.Block.Rand.block rng ~lo:(-256) ~hi:255))

let bit_true design =
  let inputs = mats 4 in
  let r = Axis.Driver.run design inputs in
  List.for_all2 Axis.Block.equal r.Axis.Driver.outputs
    (List.map Idct.Chenwang.idct inputs)

let test_designs_bit_true () =
  List.iter
    (fun (name, mode) ->
      check bool (name ^ " comb") true
        (bit_true (Chisel.Idct_gen.design_comb mode ~name:"t1"));
      check bool (name ^ " row8col") true
        (bit_true (Chisel.Idct_gen.design_row8col mode ~name:"t2"));
      check bool (name ^ " rowcol") true
        (bit_true (Chisel.Idct_gen.design_rowcol mode ~name:"t3")))
    [ ("fixed", Chisel.Idct_gen.verilog_mode); ("inferred", Chisel.Idct_gen.Inferred) ]

let test_inferred_beats_fixed_on_ffs () =
  (* Width inference produces narrower mid registers in the rowcol design
     than... actually wider intermediate storage but smaller multipliers;
     what must hold is that both disciplines agree functionally and the
     DSP count matches (same multiplication structure). *)
  let f = Hw.Synth.run (Chisel.Idct_gen.design_rowcol Chisel.Idct_gen.verilog_mode ~name:"f") in
  let i = Hw.Synth.run (Chisel.Idct_gen.design_rowcol Chisel.Idct_gen.Inferred ~name:"i") in
  check int "same dsp count" f.Hw.Synth.dsps i.Hw.Synth.dsps

let test_paper_latencies () =
  let mode = Chisel.Idct_gen.Inferred in
  let r1 = Axis.Driver.run (Chisel.Idct_gen.design_comb mode ~name:"a") (mats 3) in
  check int "comb latency 17" 17 r1.Axis.Driver.latency;
  check int "comb periodicity 8" 8 r1.Axis.Driver.periodicity;
  let r2 = Axis.Driver.run (Chisel.Idct_gen.design_rowcol mode ~name:"b") (mats 3) in
  check int "rowcol latency 24" 24 r2.Axis.Driver.latency;
  check int "rowcol periodicity 8" 8 r2.Axis.Driver.periodicity

let dsl_props =
  [
    QCheck.Test.make ~name:"clamp result in range" ~count:300
      QCheck.(int_range (-4000) 4000)
      (fun v ->
        let b = Hw.Builder.create "p" in
        let x = Chisel.Dsl.of_raw (Hw.Builder.input b "x" 13) in
        Hw.Builder.output b "o"
          (Chisel.Dsl.raw (Chisel.Dsl.clamp b ~lo:(-256) ~hi:255 x));
        let sim = Hw.Sim.create (Hw.Builder.finalize b) in
        Hw.Sim.set sim "x" v;
        let got = Hw.Sim.get_signed sim "o" in
        let want = max (-256) (min 255 v) in
        got = want);
    QCheck.Test.make ~name:"asr_ equals arithmetic shift" ~count:300
      QCheck.(pair (int_range (-2000) 2000) (int_range 0 10))
      (fun (v, n) ->
        let b = Hw.Builder.create "p" in
        let x = Chisel.Dsl.of_raw (Hw.Builder.input b "x" 12) in
        let y = Chisel.Dsl.asr_ b x n in
        Hw.Builder.output b "o" (Chisel.Dsl.raw (Chisel.Dsl.resize b y 12));
        let sim = Hw.Sim.create (Hw.Builder.finalize b) in
        Hw.Sim.set sim "x" v;
        Hw.Sim.get_signed sim "o" = Axis.Block.clamp_input v asr n
        || abs v > 2047);
  ]

let () =
  Alcotest.run "chisel"
    [
      ( "dsl",
        [
          Alcotest.test_case "width inference" `Quick test_width_inference;
          Alcotest.test_case "semantics" `Quick test_dsl_semantics;
          Alcotest.test_case "inferred mid width" `Quick test_mid_width_inferred;
        ] );
      ( "designs",
        [
          Alcotest.test_case "all bit-true" `Slow test_designs_bit_true;
          Alcotest.test_case "dsp parity" `Quick test_inferred_beats_fixed_on_ffs;
          Alcotest.test_case "paper latencies" `Quick test_paper_latencies;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest dsl_props);
    ]
