(* The persistent content-addressed result store (DESIGN.md §14) and the
   atomic-write plumbing it leans on.

   Coherence rules pinned here:
   - a warm-store hit is bit-identical to a cold measurement (hex-float
     wire codec, checksummed entries);
   - corrupted / truncated / version-skewed / foreign entries are
     detected, counted, reported once per path, and re-measured — never
     trusted;
   - [clear_measure_cache] drops only the in-process memo, never the
     on-disk entries;
   - [Trace.write_atomic] survives N domains racing one path (the
     per-process counter in the temp suffix), and [rename_durable]
     crosses filesystems (EXDEV) with a typed error on real failure. *)

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int
let string = Alcotest.string

let measured : Core.Metrics.measured Alcotest.testable =
  Alcotest.testable Core.Metrics.pp_measured ( = )

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path text =
  let oc = open_out_bin path in
  output_string oc text;
  close_out oc

let fresh_dir =
  let n = ref 0 in
  fun prefix ->
    incr n;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "%s_%d_%d" prefix (Unix.getpid ()) !n)
    in
    (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    d

(* Every store test runs against a fresh attached store and leaves the
   process with no backend and a cold memo, whatever happens. *)
let with_store f =
  let dir = fresh_dir "hlsvhc_store_test" in
  Store.detach ();
  Core.Evaluate.clear_measure_cache ();
  let t = Result.get_ok (Store.attach dir) in
  Fun.protect
    ~finally:(fun () ->
      Store.detach ();
      Core.Evaluate.clear_measure_cache ())
    (fun () -> f t)

let victim = Core.Registry.initial Core.Design.Verilog

let victim_key =
  Core.Evaluate.measure_key ~matrices:2 ~spec:Core.Flow.idct_spec victim

(* The reference measurement: no store, cold memo. *)
let cold_measure () =
  Store.detach ();
  Core.Evaluate.clear_measure_cache ();
  let m = Core.Evaluate.measure ~spec:Core.Flow.idct_spec ~matrices:2 victim in
  Core.Evaluate.clear_measure_cache ();
  m

(* ---------------- wire codec ---------------- *)

let test_wire_roundtrip () =
  let m = cold_measure () in
  (match Core.Metrics.of_wire (Core.Metrics.to_wire m) with
  | Ok m' -> check measured "roundtrip" m m'
  | Error e -> Alcotest.fail e);
  (* pathological floats survive the hex codec bit-exactly *)
  let weird =
    { m with Core.Metrics.fmax_mhz = 0.1; throughput_mops = 1. /. 3. }
  in
  (match Core.Metrics.of_wire (Core.Metrics.to_wire weird) with
  | Ok w ->
      check bool "bit-exact floats" true
        (w.Core.Metrics.fmax_mhz = 0.1
        && w.Core.Metrics.throughput_mops = 1. /. 3.)
  | Error e -> Alcotest.fail e);
  match Core.Metrics.of_wire "1.0 2.0 3" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated wire line accepted"

(* ---------------- store round trips and coherence ---------------- *)

let test_warm_hit_bit_identical () =
  let m_cold = cold_measure () in
  with_store (fun t ->
      (* cold through the store: computes and publishes *)
      let m1 = Core.Evaluate.measure ~spec:Core.Flow.idct_spec ~matrices:2 victim in
      check measured "write-through equals cold" m_cold m1;
      check int "one entry" 1 (Store.entry_count t);
      (* new-process simulation: memo gone, disk warm *)
      Core.Evaluate.clear_measure_cache ();
      let m2 = Core.Evaluate.measure ~spec:Core.Flow.idct_spec ~matrices:2 victim in
      check measured "warm store hit bit-identical" m_cold m2;
      let s = Store.stats t in
      check int "one store hit" 1 s.Store.st_hits;
      check int "one store write" 1 s.Store.st_writes)

let test_clear_memo_keeps_disk () =
  with_store (fun t ->
      ignore (Core.Evaluate.measure ~spec:Core.Flow.idct_spec ~matrices:2 victim);
      let entries = Store.entry_count t in
      Core.Evaluate.clear_measure_cache ();
      check int "entries survive clear_measure_cache" entries
        (Store.entry_count t);
      check bool "still readable" true (Store.find t ~key:victim_key <> None))

(* Sabotage the victim's entry with [mangle], then re-measure: the entry
   must be rejected (counted invalid), the measurement recomputed to the
   cold value, and the entry healed on disk by the write-through. *)
let sabotage_and_recover name mangle =
  let m_cold = cold_measure () in
  with_store (fun t ->
      ignore (Core.Evaluate.measure ~spec:Core.Flow.idct_spec ~matrices:2 victim);
      let path = Store.entry_path t ~key:victim_key in
      mangle t path;
      Core.Evaluate.clear_measure_cache ();
      let m = Core.Evaluate.measure ~spec:Core.Flow.idct_spec ~matrices:2 victim in
      check measured (name ^ ": re-measured value") m_cold m;
      check bool (name ^ ": counted invalid") true
        ((Store.stats t).Store.st_invalid >= 1);
      match Store.find t ~key:victim_key with
      | Some healed -> check measured (name ^ ": entry healed") m_cold healed
      | None -> Alcotest.fail (name ^ ": entry not rewritten"))

(* Flip the first byte of the metrics payload: the checksum no longer
   matches, so the entry must be rejected, not parsed. *)
let flip_metrics_byte _t path =
  let text = read_file path in
  let marker = "\nmetrics: " in
  let rec find i =
    if i + String.length marker > String.length text then
      failwith "no metrics line in entry"
    else if String.sub text i (String.length marker) = marker then
      i + String.length marker
    else find (i + 1)
  in
  let at = find 0 in
  let b = Bytes.of_string text in
  Bytes.set b at (if Bytes.get b at = 'Z' then 'Y' else 'Z');
  write_file path (Bytes.to_string b)

let test_corrupt_entry () = sabotage_and_recover "corrupt" flip_metrics_byte

let test_truncated_entry () =
  sabotage_and_recover "truncated" (fun _t path ->
      let text = read_file path in
      write_file path (String.sub text 0 (String.length text / 2)))

let test_version_skew_entry () =
  sabotage_and_recover "version skew" (fun _t path ->
      let text = read_file path in
      let rest_at = String.index text '\n' in
      write_file path
        (Printf.sprintf "hlsvhc-store %d%s"
           (Store.schema_version + 97)
           (String.sub text rest_at (String.length text - rest_at))))

let test_foreign_key_entry () =
  (* a valid, checksummed entry for a different key parked at this key's
     path (copied file, digest collision) must be rejected, not served *)
  sabotage_and_recover "foreign key" (fun t path ->
      let other = Core.Registry.optimized Core.Design.Verilog in
      ignore (Core.Evaluate.measure ~spec:Core.Flow.idct_spec ~matrices:2 other);
      let other_key =
        Core.Evaluate.measure_key ~matrices:2 ~spec:Core.Flow.idct_spec other
      in
      write_file path (read_file (Store.entry_path t ~key:other_key)))

let test_invalid_reported_once () =
  with_store (fun t ->
      ignore (Core.Evaluate.measure ~spec:Core.Flow.idct_spec ~matrices:2 victim);
      let path = Store.entry_path t ~key:victim_key in
      write_file path "garbage\n";
      (* capture stderr across two probes of the same bad entry *)
      let log = Filename.temp_file "hlsvhc_store_log" ".txt" in
      let saved = Unix.dup Unix.stderr in
      flush stderr;
      let fd = Unix.openfile log [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o644 in
      Unix.dup2 fd Unix.stderr;
      Unix.close fd;
      let restore () =
        flush stderr;
        Unix.dup2 saved Unix.stderr;
        Unix.close saved
      in
      Fun.protect ~finally:restore (fun () ->
          check bool "probe 1 misses" true (Store.find t ~key:victim_key = None);
          check bool "probe 2 misses" true (Store.find t ~key:victim_key = None);
          flush stderr);
      (* Alcotest logs its own ASSERT lines to stderr; count only the
         store's complaints. *)
      let complaints =
        String.split_on_char '\n' (read_file log)
        |> List.filter (fun l ->
               String.length l >= 13 && String.sub l 0 13 = "hlsvhc: store")
      in
      check int "reported exactly once" 1 (List.length complaints);
      check int "counted every probe" 2 (Store.stats t).Store.st_invalid;
      Sys.remove log)

(* ---------------- write_atomic under contention ---------------- *)

let test_write_atomic_domain_race () =
  let dir = fresh_dir "hlsvhc_race" in
  let path = Filename.concat dir "contended.json" in
  let payload i =
    String.concat "\n"
      (List.init 4096 (fun k -> Printf.sprintf "writer %d line %d" i k))
  in
  let writers = 4 and rounds = 20 in
  let domains =
    List.init writers (fun i ->
        Domain.spawn (fun () ->
            for _ = 1 to rounds do
              Core.Trace.write_atomic path (fun oc ->
                  output_string oc (payload i))
            done))
  in
  List.iter Domain.join domains;
  let final = read_file path in
  check bool "file is one complete payload" true
    (List.exists (fun i -> final = payload i) (List.init writers Fun.id));
  let leftovers =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> f <> "contended.json")
  in
  check (Alcotest.list string) "no temp leftovers" [] leftovers

let test_rename_durable_exdev () =
  (* /dev/shm is tmpfs on the CI container while TMPDIR sits on the root
     filesystem, so this rename genuinely crosses devices; where the two
     happen to share one, the same call exercises the plain path. *)
  let shm = "/dev/shm" in
  let src_dir =
    if Sys.file_exists shm && Sys.is_directory shm then shm
    else Filename.get_temp_dir_name ()
  in
  let src =
    Filename.concat src_dir (Printf.sprintf "hlsvhc_xdev_%d" (Unix.getpid ()))
  in
  let dst = Filename.temp_file "hlsvhc_xdev_dst" ".txt" in
  write_file src "payload across filesystems";
  Core.Trace.rename_durable ~src ~dst;
  check string "content survived the crossing" "payload across filesystems"
    (read_file dst);
  check bool "src consumed" false (Sys.file_exists src);
  Sys.remove dst

let test_write_error_typed () =
  (match
     Core.Trace.write_atomic "/nonexistent_hlsvhc_dir/x.json" (fun _ -> ())
   with
  | () -> Alcotest.fail "wrote into a nonexistent directory?"
  | exception Core.Trace.Write_error { wr_path; _ } ->
      check string "typed error names the target"
        "/nonexistent_hlsvhc_dir/x.json" wr_path
  | exception e ->
      Alcotest.fail ("expected Write_error, got " ^ Printexc.to_string e));
  let src = Filename.temp_file "hlsvhc_werr_src" ".txt" in
  write_file src "x";
  match Core.Trace.rename_durable ~src ~dst:"/nonexistent_hlsvhc_dir/y.txt" with
  | () -> Alcotest.fail "renamed into a nonexistent directory?"
  | exception Core.Trace.Write_error _ -> ()
  | exception e ->
      Alcotest.fail ("expected Write_error, got " ^ Printexc.to_string e)

(* ---------------- janitor: fsck and gc ---------------- *)

let test_fsck_clean_and_repair () =
  with_store (fun t ->
      ignore (Core.Evaluate.measure ~spec:Core.Flow.idct_spec ~matrices:2 victim);
      let other = Core.Registry.optimized Core.Design.Verilog in
      ignore (Core.Evaluate.measure ~spec:Core.Flow.idct_spec ~matrices:2 other);
      let dir = Store.dir t in
      (* a clean store fscks clean *)
      (match Store.fsck dir with
      | Ok r ->
          check int "clean: total" 2 r.Store.fk_total;
          check int "clean: valid" 2 r.Store.fk_valid;
          check int "clean: invalid" 0 (List.length r.Store.fk_invalid);
          check int "clean: nothing repaired" 0 r.Store.fk_repaired
      | Error e -> Alcotest.fail ("fsck clean: " ^ e));
      (* sabotage one real entry and park one garbage file; fsck must
         name both, for the right reasons *)
      flip_metrics_byte t (Store.entry_path t ~key:victim_key);
      write_file (Filename.concat dir "deadbeef.entry") "not an entry\n";
      (match Store.fsck dir with
      | Ok r ->
          check int "dirty: total" 3 r.Store.fk_total;
          check int "dirty: valid" 1 r.Store.fk_valid;
          check int "dirty: two invalid" 2 (List.length r.Store.fk_invalid);
          check int "dirty: report does not repair" 0 r.Store.fk_repaired
      | Error e -> Alcotest.fail ("fsck dirty: " ^ e));
      (* repair deletes exactly the invalid entries *)
      (match Store.fsck ~repair:true dir with
      | Ok r ->
          check int "repair: two deleted" 2 r.Store.fk_repaired;
          check bool "repair: garbage gone" false
            (Sys.file_exists (Filename.concat dir "deadbeef.entry"))
      | Error e -> Alcotest.fail ("fsck repair: " ^ e));
      (match Store.fsck dir with
      | Ok r ->
          check int "after repair: valid survivor kept" 1 r.Store.fk_valid;
          check int "after repair: clean" 0 (List.length r.Store.fk_invalid)
      | Error e -> Alcotest.fail ("fsck after repair: " ^ e));
      (* a missing directory is a typed error, not an exception *)
      match Store.fsck "/nonexistent_hlsvhc_store" with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "fsck of a nonexistent directory succeeded")

(* Deterministic gc: synthesize entries with controlled mtimes and
   check the eviction order — oldest mtime first, ties by filename. *)
let gc_dir_with_entries specs =
  let dir = fresh_dir "hlsvhc_gc_test" in
  List.iter
    (fun (name, age_s) ->
      let path = Filename.concat dir name in
      write_file path (String.make 100 'x');
      let t = Unix.gettimeofday () -. age_s in
      Unix.utimes path t t)
    specs;
  dir

let surviving dir =
  Sys.readdir dir |> Array.to_list |> List.sort compare

let test_gc_max_entries () =
  (* c oldest, then a/b tied one second back, then d newest: keeping 2
     must evict c (oldest) and a (tie broken by filename) *)
  let dir =
    gc_dir_with_entries
      [ ("a.entry", 100.); ("b.entry", 100.); ("c.entry", 200.); ("d.entry", 0.) ]
  in
  (match Store.gc ~max_entries:2 dir with
  | Ok r ->
      check int "gc: total" 4 r.Store.gr_total;
      check int "gc: kept" 2 r.Store.gr_kept;
      check int "gc: deleted" 2 r.Store.gr_deleted;
      check int "gc: bytes before" 400 r.Store.gr_bytes_before;
      check int "gc: bytes after" 200 r.Store.gr_bytes_after;
      check (Alcotest.list string) "gc: newest survive, ties by name"
        [ "b.entry"; "d.entry" ] (surviving dir)
  | Error e -> Alcotest.fail ("gc max-entries: " ^ e));
  (* idempotent: already under budget, nothing deleted *)
  (match Store.gc ~max_entries:2 dir with
  | Ok r -> check int "gc: idempotent" 0 r.Store.gr_deleted
  | Error e -> Alcotest.fail ("gc rerun: " ^ e));
  (* no budget is a usage error, not a wipe *)
  match Store.gc dir with
  | Error _ -> check int "gc no budget leaves entries" 2
      (List.length (surviving dir))
  | Ok _ -> Alcotest.fail "gc with no budget accepted"

let test_gc_max_bytes () =
  let dir =
    gc_dir_with_entries
      [ ("a.entry", 300.); ("b.entry", 200.); ("c.entry", 100.) ]
  in
  match Store.gc ~max_bytes:250 dir with
  | Ok r ->
      check int "gc bytes: deleted one" 1 r.Store.gr_deleted;
      check bool "gc bytes: under budget" true (r.Store.gr_bytes_after <= 250);
      check (Alcotest.list string) "gc bytes: oldest evicted"
        [ "b.entry"; "c.entry" ] (surviving dir)
  | Error e -> Alcotest.fail ("gc max-bytes: " ^ e)

let test_entry_count_survives_rmdir () =
  let dir = fresh_dir "hlsvhc_store_gone" in
  Store.detach ();
  Core.Evaluate.clear_measure_cache ();
  let t = Result.get_ok (Store.attach dir) in
  Fun.protect
    ~finally:(fun () ->
      Store.detach ();
      Core.Evaluate.clear_measure_cache ())
    (fun () ->
      check int "empty store counts 0" 0 (Store.entry_count t);
      Unix.rmdir dir;
      (* the directory vanished under a live handle: stats must degrade
         to 0, not raise *)
      check int "removed dir counts 0" 0 (Store.entry_count t);
      check int "still 0 on the second probe" 0 (Store.entry_count t))

(* ---------------- --tools parsing (dedupe) ---------------- *)

let tool_list : Core.Design.tool list Alcotest.testable =
  Alcotest.testable
    (fun ppf ts ->
      Format.pp_print_string ppf
        (String.concat "," (List.map Core.Design.tool_name ts)))
    ( = )

let test_parse_tools_dedupes () =
  (match Core.Registry.parse_tools "vhls,vhls" with
  | Ok ts -> check tool_list "same name twice" [ Core.Design.Vivado_hls ] ts
  | Error e -> Alcotest.fail e);
  (match Core.Registry.parse_tools "verilog,bsv,verilog" with
  | Ok ts ->
      check tool_list "first-mention order kept"
        [ Core.Design.Verilog; Core.Design.Bsv ]
        ts
  | Error e -> Alcotest.fail e);
  (* two aliases of one tool are one tool, not two sweep passes *)
  (match Core.Registry.parse_tools "vhls,vivado-hls" with
  | Ok ts -> check tool_list "aliases collapse" [ Core.Design.Vivado_hls ] ts
  | Error e -> Alcotest.fail e);
  match Core.Registry.parse_tools "verilog,nosuch" with
  | Error msg -> check bool "unknown name rejected" true (String.length msg > 0)
  | Ok _ -> Alcotest.fail "unknown tool accepted"

let () =
  Alcotest.run "store"
    [
      ( "codec",
        [
          Alcotest.test_case "metrics wire roundtrip" `Quick
            test_wire_roundtrip;
        ] );
      ( "coherence",
        [
          Alcotest.test_case "warm hit bit-identical" `Quick
            test_warm_hit_bit_identical;
          Alcotest.test_case "clear_measure_cache keeps disk" `Quick
            test_clear_memo_keeps_disk;
          Alcotest.test_case "corrupt entry re-measured" `Quick
            test_corrupt_entry;
          Alcotest.test_case "truncated entry re-measured" `Quick
            test_truncated_entry;
          Alcotest.test_case "version skew re-measured" `Quick
            test_version_skew_entry;
          Alcotest.test_case "foreign key rejected" `Quick
            test_foreign_key_entry;
          Alcotest.test_case "invalid entry reported once" `Quick
            test_invalid_reported_once;
        ] );
      ( "atomic-writes",
        [
          Alcotest.test_case "N domains race one path" `Quick
            test_write_atomic_domain_race;
          Alcotest.test_case "rename crosses filesystems" `Quick
            test_rename_durable_exdev;
          Alcotest.test_case "failures are typed" `Quick test_write_error_typed;
        ] );
      ( "janitor",
        [
          Alcotest.test_case "fsck: clean, dirty, repair" `Quick
            test_fsck_clean_and_repair;
          Alcotest.test_case "gc --max-entries deterministic" `Quick
            test_gc_max_entries;
          Alcotest.test_case "gc --max-bytes oldest-first" `Quick
            test_gc_max_bytes;
          Alcotest.test_case "entry_count survives rmdir" `Quick
            test_entry_count_survives_rmdir;
        ] );
      ( "parse-tools",
        [
          Alcotest.test_case "duplicates collapse" `Quick
            test_parse_tools_dedupes;
        ] );
    ]
