(* Tests for the Verilog front end: lexer/parser, width rules, processes,
   instances, and the baseline IDCT sources. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let eval_expr ?(inputs = []) src =
  (* Wrap an expression into a module and evaluate it. *)
  let decls =
    String.concat "\n"
      (List.map (fun (n, w, _) -> Printf.sprintf "  input [%d:0] %s;" (w - 1) n) inputs)
  in
  let ports = String.concat "" (List.map (fun (n, _, _) -> n ^ ", ") inputs) in
  let m =
    Printf.sprintf "module t (%so);\n%s\n  output [31:0] o;\n  assign o = %s;\nendmodule"
      ports decls src
  in
  let c = Vlog.Elaborate.circuit_of_string m in
  let sim = Hw.Sim.create c in
  List.iter (fun (n, _, v) -> Hw.Sim.set sim n v) inputs;
  Hw.Sim.get sim "o"

let test_literals () =
  check int "plain" 42 (eval_expr "42");
  check int "sized dec" 42 (eval_expr "12'd42");
  check int "hex" 0xFF (eval_expr "8'hFF");
  check int "binary" 0b1010 (eval_expr "4'b1010");
  check int "underscores" 0xAB (eval_expr "8'hA_B")

let test_operators () =
  check int "precedence * over +" 7 (eval_expr "1 + 2 * 3");
  check int "parens" 9 (eval_expr "(1 + 2) * 3");
  check int "shifts" 40 (eval_expr "5 << 3");
  check int "ternary" 2 (eval_expr "0 ? 1 : 2");
  check int "eq" 1 (eval_expr "3 == 3");
  check int "logical and" 1 (eval_expr "2 && 3");
  check int "bitwise and" 2 (eval_expr "2 & 3");
  check int "unary not" 0xFFFFFFFD (eval_expr "~32'd2" land 0xFFFFFFFF)

let test_signed_rules () =
  (* unsigned comparison by default, signed when both sides are $signed *)
  check int "unsigned lt" 1
    (eval_expr ~inputs:[ ("x", 8, 0x80) ] "x < 8'd255" land 1);
  check int "signed lt" 1
    (eval_expr ~inputs:[ ("x", 8, 0x80) ] "$signed(x) < $signed(8'd1)" land 1);
  check int "ashr" 0xFE
    (eval_expr ~inputs:[ ("x", 8, 0xF8) ] "$signed(x) >>> 2" land 0xFF)

let test_concat_repeat () =
  check int "concat" 0xAB (eval_expr "{4'hA, 4'hB}");
  check int "repeat" 0xFF (eval_expr "{8{1'b1}}");
  check int "sign extend idiom" 0xFFF8
    (eval_expr ~inputs:[ ("x", 4, 8) ] "{{12{x[3]}}, x}" land 0xFFFF)

let test_part_select () =
  check int "range" 0xB (eval_expr ~inputs:[ ("x", 8, 0xAB) ] "x[3:0]");
  check int "bit" 1 (eval_expr ~inputs:[ ("x", 8, 0x80) ] "x[7]")

let test_syntax_errors () =
  let bad src =
    match Vlog.Parse.design src with
    | exception Vlog.Parse.Syntax_error _ -> true
    | _ -> false
  in
  check bool "missing semicolon" true (bad "module m (a); input a endmodule");
  check bool "unterminated comment" true (bad "module m (a); /* input a; endmodule");
  check bool "bad base" true (bad "module m (a); input a; assign a = 3'q2; endmodule")

let test_register_process () =
  let src =
    {|module m (clk, rst, en, q);
  input clk, rst, en;
  output [3:0] q;
  reg [3:0] q;
  always @(posedge clk)
    if (rst) q <= 4'd9;
    else if (en) q <= q + 4'd1;
endmodule|}
  in
  let c = Vlog.Elaborate.circuit_of_string src in
  let sim = Hw.Sim.create c in
  check int "reset value applied as init" 9 (Hw.Sim.get sim "q");
  Hw.Sim.set sim "en" 1;
  Hw.Sim.step_n sim 3;
  check int "counts" 12 (Hw.Sim.get sim "q");
  Hw.Sim.set sim "en" 0;
  Hw.Sim.step_n sim 3;
  check int "holds" 12 (Hw.Sim.get sim "q")

let test_last_assignment_wins () =
  let src =
    {|module m (clk, rst, q);
  input clk, rst;
  output [3:0] q;
  reg [3:0] q;
  always @(posedge clk) begin
    q <= 4'd1;
    q <= 4'd2;
  end
endmodule|}
  in
  let sim = Hw.Sim.create (Vlog.Elaborate.circuit_of_string src) in
  Hw.Sim.step sim;
  check int "verilog last-write-wins" 2 (Hw.Sim.get sim "q")

let test_instance () =
  let src =
    {|module addc (x, y);
  input [7:0] x;
  output [7:0] y;
  assign y = x + 8'd3;
endmodule
module top (a, b);
  input [7:0] a;
  output [7:0] b;
  wire [7:0] t;
  addc u1 (.x(a), .y(t));
  addc u2 (.x(t), .y(b));
endmodule|}
  in
  let sim = Hw.Sim.create (Vlog.Elaborate.circuit_of_string ~top:"top" src) in
  Hw.Sim.set sim "a" 10;
  check int "two instances" 16 (Hw.Sim.get sim "b")

let test_undriven_detect () =
  (* output driven by undeclared/undriven wire must fail *)
  let src =
    {|module m (o);
  output [3:0] o;
  wire [3:0] w;
  assign o = w;
endmodule|}
  in
  match Vlog.Elaborate.circuit_of_string src with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected undriven failure"

let test_comb_loop_detect () =
  let src =
    {|module m (o);
  output [3:0] o;
  wire [3:0] a, b;
  assign a = b + 4'd1;
  assign b = a + 4'd1;
  assign o = a;
endmodule|}
  in
  match Vlog.Elaborate.circuit_of_string src with
  | exception Failure msg ->
      check bool "mentions loop" true
        (String.length msg > 0)
  | _ -> Alcotest.fail "expected combinational loop failure"

(* The baseline sources themselves. *)

let test_idct_sources_parse () =
  List.iter
    (fun (name, src) ->
      match Vlog.Parse.design src with
      | modules ->
          check bool (name ^ " parses to modules") true (List.length modules >= 2))
    [
      ("initial", Core.Verilog_designs.initial_source);
      ("row8col", Core.Verilog_designs.row8col_source);
      ("rowcol", Core.Verilog_designs.rowcol_source);
    ]

let test_idct_units_bit_true () =
  (* Drive the parsed idct_row module directly against the software model. *)
  let c =
    Vlog.Elaborate.circuit_of_string ~top:"idct_row"
      Core.Verilog_designs.initial_source
  in
  let sim = Hw.Sim.create c in
  let rng = Axis.Block.Rand.create ~seed:11 () in
  for _ = 1 to 50 do
    let row = Array.init 8 (fun _ -> Axis.Block.Rand.uniform rng ~lo:(-2048) ~hi:2047) in
    Array.iteri (fun i v -> Hw.Sim.set sim (Printf.sprintf "i%d" i) v) row;
    let expect = Idct.Chenwang.idct_row row in
    Array.iteri
      (fun i want ->
        let got = Hw.Sim.get sim (Printf.sprintf "o%d" i) in
        let got = if got land 0x8000 <> 0 then got - 0x10000 else got in
        check int (Printf.sprintf "o%d" i) (want land 0xFFFF |> fun v ->
          if v land 0x8000 <> 0 then v - 0x10000 else v) got)
      expect
  done

let () =
  Alcotest.run "vlog"
    [
      ( "expressions",
        [
          Alcotest.test_case "literals" `Quick test_literals;
          Alcotest.test_case "operators" `Quick test_operators;
          Alcotest.test_case "signedness" `Quick test_signed_rules;
          Alcotest.test_case "concat/repeat" `Quick test_concat_repeat;
          Alcotest.test_case "part select" `Quick test_part_select;
        ] );
      ( "diagnostics",
        [
          Alcotest.test_case "syntax errors" `Quick test_syntax_errors;
          Alcotest.test_case "undriven wire" `Quick test_undriven_detect;
          Alcotest.test_case "combinational loop" `Quick test_comb_loop_detect;
        ] );
      ( "modules",
        [
          Alcotest.test_case "register process" `Quick test_register_process;
          Alcotest.test_case "last assignment wins" `Quick test_last_assignment_wins;
          Alcotest.test_case "instances" `Quick test_instance;
        ] );
      ( "idct sources",
        [
          Alcotest.test_case "all parse" `Quick test_idct_sources_parse;
          Alcotest.test_case "row unit bit-true" `Quick test_idct_units_bit_true;
        ] );
    ]
