(* lib/transfo: scripted, equivalence-verified design transformations.

   Covers the script parser, the catalogue, each transformation's
   behaviour, the verification obligations (including that a broken
   transformation IS caught), the qcheck property that random applicable
   scripts on random combinational circuits stay crosscheck-clean, and
   the rederivation pin: initial architecture + script is node-identical
   to the hand-written Chisel optimized design. *)

open Hw
open Transfo
open Alcotest

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let row_comb name = Chisel.Idct_gen.row_comb Chisel.Idct_gen.Inferred ~name

let run_exn script subject =
  match Engine.run (Script.parse_exn script) subject with
  | Ok r -> r
  | Error e -> fail (Engine.error_to_string e)

(* ---------------- script parser ---------------- *)

let test_script_parse () =
  (match Script.parse "retime 2; strength_reduce" with
  | Ok [ a; b ] ->
      check string "name 1" "retime" a.Script.step_name;
      check (option int) "arg 1" (Some 2) a.Script.step_arg;
      check string "name 2" "strength_reduce" b.Script.step_name;
      check (option int) "arg 2" None b.Script.step_arg
  | Ok _ -> fail "wrong step count"
  | Error e -> fail e);
  check string "canonical form" "retime 2; unroll 4"
    (Script.to_string (Script.parse_exn "  Retime   2 ;unroll 4 ;"));
  (match Script.parse "" with
  | Error e -> check bool "empty diagnostic" true (contains e "empty script")
  | Ok _ -> fail "empty script accepted");
  (match Script.parse "retime two" with
  | Error e -> check bool "bad int diagnostic" true (contains e "not an integer")
  | Ok _ -> fail "non-integer argument accepted");
  match Script.parse "retime 2 3" with
  | Error e -> check bool "arity diagnostic" true (contains e "expected NAME")
  | Ok _ -> fail "three-token step accepted"

(* ---------------- catalogue ---------------- *)

let test_catalog () =
  check (list string) "catalogue order"
    [
      "retime";
      "outreg";
      "strength_reduce";
      "narrow";
      "unroll";
      "fold_rows";
      "fold_cols";
    ]
    (Catalog.names ());
  (match Catalog.find "PIPELINE" with
  | Some (module T : Catalog.TRANSFO) ->
      check string "alias resolves" "retime" T.name
  | None -> fail "alias lookup failed");
  check bool "unknown name" true (Catalog.find "bogus" = None);
  let msg = Catalog.unknown_transfo_msg "bogus" in
  check bool "msg names the culprit" true (contains msg "\"bogus\"");
  List.iter
    (fun nm -> check bool ("msg lists " ^ nm) true (contains msg nm))
    (Catalog.names ())

(* ---------------- individual transformations ---------------- *)

let test_retime () =
  let r = run_exn "retime 2" (Subject.of_circuit (row_comb "rc_retime")) in
  let subj = r.Engine.rep_subject in
  check int "latency accounted" 2 subj.Subject.latency_added;
  check bool "registers present" true
    (Array.exists Netlist.is_reg subj.Subject.circuit.Netlist.nodes);
  check (list string) "history" [ "retime 2" ] subj.Subject.history

let test_outreg () =
  let before = row_comb "rc_outreg" in
  let r = run_exn "outreg" (Subject.of_circuit before) in
  let c = r.Engine.rep_subject.Subject.circuit in
  check int "one reg per output"
    (List.length before.Netlist.outputs)
    (Array.to_seq c.Netlist.nodes |> Seq.filter Netlist.is_reg |> Seq.length);
  check int "latency accounted" 1 r.Engine.rep_subject.Subject.latency_added

let const_muls (c : Netlist.t) =
  Array.to_seq c.Netlist.nodes
  |> Seq.filter (fun (nd : Netlist.node) ->
         match nd.Netlist.kind with
         | Netlist.Binop (Netlist.Mul, a, b) ->
             let is_const u =
               match (Netlist.node c u).Netlist.kind with
               | Netlist.Const _ -> true
               | _ -> false
             in
             is_const a || is_const b
         | _ -> false)
  |> Seq.length

let test_strength_reduce () =
  let before = row_comb "rc_sr" in
  check bool "subject has constant products" true (const_muls before > 0);
  let r = run_exn "strength_reduce" (Subject.of_circuit before) in
  check int "no constant products remain" 0
    (const_muls r.Engine.rep_subject.Subject.circuit)

(* Narrowing re-extends at every boundary, so the interesting metric is
   the width of the arithmetic itself, not the node-count (which grows
   with the coercions). *)
let arith_width (c : Netlist.t) =
  Array.fold_left
    (fun acc (nd : Netlist.node) ->
      match nd.Netlist.kind with
      | Netlist.Binop ((Netlist.Add | Netlist.Sub | Netlist.Mul), _, _) ->
          acc + nd.Netlist.width
      | _ -> acc)
    0 c.Netlist.nodes

let test_narrow () =
  (* the Fixed (32, 16) discipline computes everything in 32 bits and
     stores 16: demand analysis must strip dead upper bits *)
  let before =
    Chisel.Idct_gen.row_comb Chisel.Idct_gen.verilog_mode ~name:"rc_narrow"
  in
  let r = run_exn "narrow" (Subject.of_circuit before) in
  let after = r.Engine.rep_subject.Subject.circuit in
  check bool "arithmetic width shrinks" true
    (arith_width after < arith_width before)

let test_unroll () =
  let before = row_comb "rc_unroll" in
  let r = run_exn "unroll 4" (Subject.of_circuit before) in
  let c = r.Engine.rep_subject.Subject.circuit in
  check int "4x inputs"
    (4 * List.length before.Netlist.inputs)
    (List.length c.Netlist.inputs);
  check bool "lane-suffixed ports" true
    (List.mem_assoc "i0_r0" c.Netlist.inputs
    && List.mem_assoc "o7_r3" c.Netlist.outputs);
  check string "name suffix" "rc_unroll_x4" c.Netlist.circuit_name

(* ---------------- preconditions and diagnostics ---------------- *)

let test_preconditions () =
  let seq =
    Subject.of_circuit
      (run_exn "retime 1" (Subject.of_circuit (row_comb "rc_seq")))
        .Engine.rep_subject
        .Subject.circuit
  in
  (match Engine.run (Script.parse_exn "retime 2") seq with
  | Error (Engine.Precondition_failed { pf_reason; _ }) ->
      check bool "retime wants comb" true (contains pf_reason "combinational")
  | _ -> fail "retime accepted a sequential circuit");
  (match Engine.run (Script.parse_exn "fold_rows") seq with
  | Error (Engine.Precondition_failed { pf_reason; _ }) ->
      check bool "fold_rows wants an architecture" true
        (contains pf_reason "architecture")
  | _ -> fail "fold_rows accepted a netlist-only subject");
  (match Engine.run (Script.parse_exn "retime") seq with
  | Error (Engine.Precondition_failed { pf_reason; _ }) ->
      check bool "retime wants an argument" true (contains pf_reason "argument")
  | _ -> fail "retime accepted a missing argument");
  match
    Engine.run (Script.parse_exn "bogus") (Subject.of_circuit (row_comb "rc"))
  with
  | Error (Engine.Unknown_transfo nm) -> check string "culprit" "bogus" nm
  | _ -> fail "unknown transformation accepted"

(* ---------------- a broken transformation is caught ---------------- *)

(* Deliberately wrong "strength reduction": rewrites c*x to x+x. *)
module Bad_reduce = struct
  let name = "bad_reduce"
  let aliases = []
  let description = "deliberately broken (test only)"
  let precondition = "none"
  let arg = Catalog.No_arg
  let check ~arg:_ _ = Ok ()

  let apply ~arg:_ (s : Subject.t) =
    let hook em _ (nd : Netlist.node) =
      match nd.Netlist.kind with
      | Netlist.Binop (Netlist.Mul, a, b) ->
          Some
            (Rewrite.emit em ~width:nd.Netlist.width
               (Netlist.Binop
                  (Netlist.Add, Rewrite.mapped em a, Rewrite.mapped em b)))
      | _ -> None
    in
    {
      s with
      Subject.circuit = Rewrite.rewrite hook s.Subject.circuit;
      arch = None;
    }

  let obligation ~arg:_ = Verify.Cycle_exact
end

(* Correct rewrite, wrong obligation: claims two cycles of delay while
   adding one. *)
module Wrong_latency = struct
  let name = "wrong_latency"
  let aliases = []
  let description = "deliberately broken (test only)"
  let precondition = "combinational circuit"
  let arg = Catalog.No_arg
  let check ~arg:_ _ = Ok ()

  let apply ~arg:_ (s : Subject.t) =
    { s with Subject.circuit = Pipeline.retime ~stages:1 s.Subject.circuit }

  let obligation ~arg:_ = Verify.Delayed 2
end

let test_broken_caught () =
  let s = Subject.of_circuit (row_comb "rc_bad") in
  (match Engine.apply_step (module Bad_reduce) ~arg:None s with
  | Error (Engine.Verify_failed { vf_obligation; _ }) ->
      check string "cycle-exact obligation blamed" "cycle-exact" vf_obligation
  | Ok _ -> fail "broken rewrite survived verification"
  | Error e -> fail (Engine.error_to_string e));
  match Engine.apply_step (module Wrong_latency) ~arg:None s with
  | Error (Engine.Verify_failed { vf_reason; _ }) ->
      check bool "latency mismatch reported" true (contains vf_reason "delayed")
  | Ok _ -> fail "wrong latency claim survived verification"
  | Error e -> fail (Engine.error_to_string e)

(* ---------------- rederivation pin ---------------- *)

let test_rederive_chisel () =
  let hand =
    Chisel.Idct_gen.design_rowcol Chisel.Idct_gen.Inferred
      ~name:"chisel_optimized"
  in
  let subject =
    Subject.of_arch
      (Chisel.Idct_gen.arch Chisel.Idct_gen.Inferred ~name:"chisel_optimized"
         ())
  in
  let r = run_exn Core.Registry.chisel_transfo_script subject in
  let derived = r.Engine.rep_subject.Subject.circuit in
  (* node-identical, not merely equivalent: every uid, kind, width, name,
     port and memory matches, so all downstream artifacts (Table II,
     Fig. 1, store digests) are byte-identical to the hand-written rung *)
  check bool "derived = hand-written (structural)" true (derived = hand);
  check (list string) "history" [ "fold_rows"; "fold_cols" ]
    r.Engine.rep_subject.Subject.history;
  (* the registry's optimized Chisel design now forces through this very
     derivation; a verification failure there would raise *)
  match (Core.Registry.optimized Core.Design.Chisel).Core.Design.impl with
  | Core.Design.Stream l ->
      check bool "registry rederivation forces" true
        (Core.Design.force l = hand)
  | Core.Design.Pcie _ -> fail "chisel optimized is a stream design"

(* ---------------- property: random scripts stay clean ---------------- *)

(* Random combinational circuits seeded with constant products (the
   strength_reduce target), then a random applicable script.  The engine
   already discharges each step's obligation and crosschecks the result
   through all three simulation engines, so [Ok] here means the whole
   sequence verified. *)
let random_comb seed =
  let rng = Random.State.make [| seed; 0x7F23 |] in
  let widths = [| 2; 3; 7; 8; 12; 16; 24; 31; 33 |] in
  let pick a = a.(Random.State.int rng (Array.length a)) in
  let b = Builder.create (Printf.sprintf "rnd%d" seed) in
  let pool = ref [] in
  let push s = pool := s :: !pool in
  let any () = List.nth !pool (Random.State.int rng (List.length !pool)) in
  let coerce w s =
    let ws = Builder.width s in
    if ws = w then s
    else if ws > w then Builder.slice b s ~hi:(w - 1) ~lo:0
    else if Random.State.bool rng then Builder.uext b s w
    else Builder.sext b s w
  in
  for i = 0 to 1 + Random.State.int rng 3 do
    push (Builder.input b (Printf.sprintf "i%d" i) (pick widths))
  done;
  for _ = 1 to 15 + Random.State.int rng 15 do
    let w = pick widths in
    let x () = coerce w (any ()) and y () = coerce w (any ()) in
    push
      (match Random.State.int rng 12 with
      | 0 -> Builder.add b (x ()) (y ())
      | 1 -> Builder.sub b (x ()) (y ())
      | 2 | 3 ->
          let span = 1 lsl min w 12 in
          let k = Random.State.int rng span - (span / 2) in
          Builder.mul b (Builder.const b ~width:w k) (x ())
      | 4 -> Builder.mul b (x ()) (y ())
      | 5 -> Builder.and_ b (x ()) (y ())
      | 6 -> Builder.or_ b (x ()) (y ())
      | 7 -> Builder.xor_ b (x ()) (y ())
      | 8 -> Builder.neg b (x ())
      | 9 -> Builder.mux b (coerce 1 (any ())) (x ()) (y ())
      | 10 -> Builder.sra b (x ()) (coerce 4 (any ()))
      | _ -> Builder.not_ b (x ()))
  done;
  List.iteri
    (fun i s -> Builder.output b (Printf.sprintf "o%d" i) s)
    (List.filteri (fun i _ -> i land 2 = 0) !pool);
  Builder.finalize b

(* Every entry is applicable to a combinational circuit; sequential
   producers (retime/outreg) only ever appear last. *)
let applicable_scripts =
  [|
    "strength_reduce";
    "narrow";
    "strength_reduce; narrow";
    "narrow; strength_reduce";
    "strength_reduce; narrow; outreg";
    "narrow; retime 2";
    "strength_reduce; unroll 2";
    "outreg";
    "retime 1";
    "unroll 3";
  |]

let transfo_script_prop =
  QCheck.Test.make ~name:"random applicable scripts verify 3-way clean"
    ~count:15
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let script =
        applicable_scripts.(seed mod Array.length applicable_scripts)
      in
      let subject = Subject.of_circuit (random_comb seed) in
      match
        Engine.run ~cycles:96 ~seed (Script.parse_exn script) subject
      with
      | Ok _ -> true
      | Error e ->
          QCheck.Test.fail_reportf "script %S on seed %d: %s" script seed
            (Engine.error_to_string e))

let () =
  Alcotest.run "transfo"
    [
      ( "script",
        [ test_case "parse and print" `Quick test_script_parse ] );
      ( "catalog",
        [ test_case "names, aliases, diagnostics" `Quick test_catalog ] );
      ( "steps",
        [
          test_case "retime" `Quick test_retime;
          test_case "outreg" `Quick test_outreg;
          test_case "strength_reduce" `Quick test_strength_reduce;
          test_case "narrow" `Quick test_narrow;
          test_case "unroll" `Quick test_unroll;
        ] );
      ( "engine",
        [
          test_case "preconditions and diagnostics" `Quick test_preconditions;
          test_case "broken transformations are caught" `Quick
            test_broken_caught;
        ] );
      ( "rederive",
        [ test_case "chisel optimized = initial + script" `Quick
            test_rederive_chisel ] );
      ("property", [ QCheck_alcotest.to_alcotest transfo_script_prop ]);
    ]
