(* Tests for the IDCT benchmark library: blocks, reference transforms,
   the fixed-point Chen-Wang model and the IEEE 1180-1990 harness. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let test_block_ops () =
  let b = Axis.Block.create () in
  Axis.Block.set b ~row:2 ~col:3 42;
  check int "get/set" 42 (Axis.Block.get b ~row:2 ~col:3);
  check int "row extraction" 42 (Axis.Block.row b 2).(3);
  check int "col extraction" 42 (Axis.Block.col b 3).(2);
  let t = Axis.Block.transpose b in
  check int "transpose" 42 (Axis.Block.get t ~row:3 ~col:2);
  check bool "transpose involutive" true
    (Axis.Block.equal b (Axis.Block.transpose t))

let test_clamps () =
  check int "input clamp hi" 2047 (Axis.Block.clamp_input 5000);
  check int "input clamp lo" (-2048) (Axis.Block.clamp_input (-5000));
  check int "output clamp hi" 255 (Axis.Block.clamp_output 300);
  check int "output clamp lo" (-256) (Axis.Block.clamp_output (-300))

let test_rand_deterministic () =
  let a = Axis.Block.Rand.create ~seed:1 () in
  let b = Axis.Block.Rand.create ~seed:1 () in
  check bool "same seed, same stream" true
    (Axis.Block.equal (Axis.Block.Rand.block a ~lo:(-256) ~hi:255)
       (Axis.Block.Rand.block b ~lo:(-256) ~hi:255))

let test_rand_range () =
  let s = Axis.Block.Rand.create () in
  for _ = 1 to 1000 do
    let v = Axis.Block.Rand.uniform s ~lo:(-5) ~hi:5 in
    check bool "in range" true (v >= -5 && v <= 5)
  done

let test_dc_only () =
  (* A DC-only coefficient block reconstructs to a flat block. *)
  let blk = Axis.Block.create () in
  Axis.Block.set blk ~row:0 ~col:0 64;
  let out = Idct.Chenwang.idct blk in
  let first = out.(0) in
  check int "dc level" 8 first;
  check bool "flat" true (Array.for_all (fun v -> v = first) out)

let test_zero_in_zero_out () =
  let out = Idct.Chenwang.idct (Axis.Block.create ()) in
  check bool "all zero" true (Array.for_all (fun v -> v = 0) out)

let test_matches_reference_closely () =
  (* The fixed-point result stays within one LSB of the real-valued IDCT. *)
  let rng = Axis.Block.Rand.create ~seed:5 () in
  for _ = 1 to 200 do
    let coeffs = Idct.Reference.fdct (Axis.Block.Rand.block rng ~lo:(-256) ~hi:255) in
    let fixed = Idct.Chenwang.idct coeffs in
    let real = Idct.Reference.idct coeffs in
    Array.iteri
      (fun i v -> check bool "within 1" true (abs (v - real.(i)) <= 1))
      fixed
  done

let test_row_dc_shortcut_identity () =
  (* The C reference short-circuits all-AC-zero rows; the full butterfly
     must compute the identical value (the reason hardware can drop it). *)
  for dc = -2048 to 2047 do
    if dc mod 17 = 0 then begin
      let row = Array.make 8 0 in
      row.(0) <- dc;
      let out = Idct.Chenwang.idct_row row in
      Array.iter (fun v -> check int "shortcut identity" (dc * 8) v) out
    end
  done

let test_col_dc_shortcut_identity () =
  for dc = -2048 to 2047 do
    if dc mod 29 = 0 then begin
      let col = Array.make 8 0 in
      col.(0) <- dc;
      let out = Idct.Chenwang.idct_col col in
      let expect = Idct.Chenwang.iclip ((dc + 32) asr 6) in
      Array.iter (fun v -> check int "col shortcut identity" expect v) out
    end
  done

let test_ieee1180_pass () =
  List.iter
    (fun (_, _, (v : Idct.Ieee1180.verdict)) ->
      check bool "compliant" true v.passed)
    (Idct.Ieee1180.run ~blocks:500 Idct.Chenwang.idct)

let test_ieee1180_detects_bad () =
  (* An implementation with a systematic bias must fail. *)
  let biased blk = Array.map (fun v -> Axis.Block.clamp_output (v + 1)) (Idct.Chenwang.idct blk) in
  check bool "biased fails" false (Idct.Ieee1180.compliant ~blocks:100 biased);
  (* An implementation computing the forward transform must fail hard. *)
  check bool "wrong transform fails" false
    (Idct.Ieee1180.compliant ~blocks:20 (fun blk -> Idct.Reference.fdct blk))

let test_ieee1180_zero_rule () =
  let sneaky blk =
    let out = Idct.Chenwang.idct blk in
    if Array.for_all (fun v -> v = 0) blk then Array.map (fun _ -> 1) out else out
  in
  let _, s, v = List.hd (Idct.Ieee1180.run ~blocks:50 sneaky) in
  check bool "zero rule violated" false s.Idct.Ieee1180.zero_in_zero_out;
  check bool "fails" false v.Idct.Ieee1180.passed

let idct_props =
  [
    QCheck.Test.make ~name:"linearity in DC" ~count:200
      QCheck.(int_range (-200) 200)
      (fun dc ->
        let blk = Axis.Block.create () in
        Axis.Block.set blk ~row:0 ~col:0 (8 * dc);
        let out = Idct.Chenwang.idct blk in
        Array.for_all (fun v -> v = Axis.Block.clamp_output dc) out);
    QCheck.Test.make ~name:"output always in 9-bit range" ~count:200
      QCheck.(int_range 0 10000)
      (fun seed ->
        let rng = Axis.Block.Rand.create ~seed () in
        let blk = Axis.Block.Rand.block rng ~lo:(-2048) ~hi:2047 in
        let out = Idct.Chenwang.idct blk in
        Array.for_all (fun v -> v >= -256 && v <= 255) out);
    QCheck.Test.make ~name:"fdct then idct round-trips" ~count:100
      QCheck.(int_range 0 10000)
      (fun seed ->
        let rng = Axis.Block.Rand.create ~seed () in
        let samples = Axis.Block.Rand.block rng ~lo:(-255) ~hi:255 in
        let back = Idct.Chenwang.idct (Idct.Reference.fdct samples) in
        (* IEEE-grade accuracy: within 1 of the original samples *)
        Array.for_all2 (fun a b -> abs (a - b) <= 1) samples back);
  ]

let () =
  Alcotest.run "idct"
    [
      ( "block",
        [
          Alcotest.test_case "ops" `Quick test_block_ops;
          Alcotest.test_case "clamps" `Quick test_clamps;
          Alcotest.test_case "rand deterministic" `Quick test_rand_deterministic;
          Alcotest.test_case "rand range" `Quick test_rand_range;
        ] );
      ( "chenwang",
        [
          Alcotest.test_case "dc only" `Quick test_dc_only;
          Alcotest.test_case "zero in zero out" `Quick test_zero_in_zero_out;
          Alcotest.test_case "close to real-valued" `Quick test_matches_reference_closely;
          Alcotest.test_case "row dc shortcut identity" `Quick test_row_dc_shortcut_identity;
          Alcotest.test_case "col dc shortcut identity" `Quick test_col_dc_shortcut_identity;
        ] );
      ( "ieee1180",
        [
          Alcotest.test_case "reference passes" `Slow test_ieee1180_pass;
          Alcotest.test_case "detects bias" `Quick test_ieee1180_detects_bad;
          Alcotest.test_case "zero rule" `Quick test_ieee1180_zero_rule;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest idct_props);
    ]
