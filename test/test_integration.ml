(* Cross-cutting integration tests: FSM state accounting vs. measured
   periodicity, array views through the full flow, Fig. 1 machinery, the
   stream convention, and gapped/back-pressured streaming of every
   adapter style. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let mats n =
  let rng = Axis.Block.Rand.create ~seed:81 () in
  List.init n (fun _ ->
      Idct.Reference.fdct (Axis.Block.Rand.block rng ~lo:(-256) ~hi:255))

(* ---------------- FSM state accounting ---------------- *)

let test_cycles_are_periodicity () =
  (* For the fully sequential HLS designs the schedule's cycle count
     (compute + interface regions) equals the measured periodicity at full
     throughput, and the FSM's distinct-state count is much smaller (loops
     revisit their states). *)
  let opts = Chls.Transform.default_options in
  let cfg = Chls.Schedule.default_config in
  let circuit =
    Chls.Tool.sequential_circuit ~name:"sc" cfg opts Chls.Idct_c.program
  in
  let sched =
    Chls.Schedule.schedule cfg
      (let p = Chls.Transform.lower opts Chls.Idct_c.program in
       {
         p with
         Chls.Transform.vars = p.Chls.Transform.vars @ Chls.Tool.io_vars;
         regions =
           Chls.Tool.io_load_regions "blk"
           @ p.Chls.Transform.regions
           @ Chls.Tool.io_store_regions "blk";
       })
  in
  let cycles = Chls.Schedule.total_cycles sched in
  let states = Chls.Fsm.state_count sched in
  let r = Axis.Driver.run ~timeout:20000 circuit (mats 3) in
  check int "schedule cycles = periodicity" cycles r.Axis.Driver.periodicity;
  check bool "far fewer states than cycles" true (states * 4 < cycles)

(* ---------------- array views end to end ---------------- *)

let test_view_strides () =
  (* A program that doubles a column through a stride-8 view: checks view
     index arithmetic through transform + schedule + fsm. *)
  let open Chls.Ast in
  let scale_fn =
    {
      fname = "scale";
      params = [ PArray ("col", short_t, 8) ];
      ret = None;
      locals = [ ("j", int_t) ];
      arrays = [];
      body =
        [
          For
            {
              ivar = "j";
              bound = 8;
              body =
                [
                  Store
                    ( "col",
                      Var "j",
                      Bin (Mul, Load ("col", Var "j"), Int 2) );
                ];
            };
        ];
    }
  in
  let top =
    {
      fname = "top";
      params = [ PArray ("blk", short_t, 64) ];
      ret = None;
      locals = [ ("i", int_t) ];
      arrays = [];
      body =
        [
          For
            {
              ivar = "i";
              bound = 8;
              body = [ CallStmt ("scale", [ AView ("blk", Var "i", 8) ]) ];
            };
        ];
    }
  in
  let program = { funcs = [ scale_fn; top ]; top = "top" } in
  let circuit =
    Chls.Tool.sequential_circuit ~name:"views" Chls.Schedule.default_config
      Chls.Transform.default_options program
  in
  let input = Array.init 64 (fun i -> (i mod 100) - 50) in
  let expected = Array.copy input in
  ignore (Chls.Ast.interp program "top" ~args:[ `Arr expected ]);
  let r = Axis.Driver.run ~timeout:20000 circuit [ input ] in
  check bool "hardware = interpreter through views" true
    (Axis.Block.equal (List.hd r.Axis.Driver.outputs) expected)

let test_view_composition_in_interp () =
  (* nested views: f passes a view of its own view parameter *)
  let open Chls.Ast in
  let inner =
    {
      fname = "inner";
      params = [ PArray ("a", short_t, 2) ];
      ret = None;
      locals = [];
      arrays = [];
      body = [ Store ("a", Int 0, Int 7) ];
    }
  in
  let middle =
    {
      fname = "middle";
      params = [ PArray ("b", short_t, 4) ];
      ret = None;
      locals = [];
      arrays = [];
      body = [ CallStmt ("inner", [ AView ("b", Int 2, 1) ]) ];
    }
  in
  let top =
    {
      fname = "top";
      params = [ PArray ("blk", short_t, 8) ];
      ret = None;
      locals = [];
      arrays = [];
      body = [ CallStmt ("middle", [ AView ("blk", Int 4, 1) ]) ];
    }
  in
  let p = { funcs = [ inner; middle; top ]; top = "top" } in
  let arr = Array.make 8 0 in
  ignore (interp p "top" ~args:[ `Arr arr ]);
  check int "write lands at 4+2" 7 arr.(6)

(* ---------------- stream convention ---------------- *)

let test_is_wrapped () =
  let d = Core.Registry.optimized Core.Design.Verilog in
  (match d.Core.Design.impl with
  | Core.Design.Stream c ->
      check bool "wrapped design recognized" true
        (Axis.Stream.is_wrapped (Lazy.force c))
  | Core.Design.Pcie _ -> assert false);
  let b = Hw.Builder.create "bare" in
  Hw.Builder.output b "y" (Hw.Builder.input b "x" 4);
  check bool "bare circuit is not wrapped" false
    (Axis.Stream.is_wrapped (Hw.Builder.finalize b))

(* ---------------- robustness of every adapter style ---------------- *)

let designs_under_test () =
  [
    ("verilog rowcol", Core.Registry.optimized Core.Design.Verilog);
    ("chisel comb", Core.Registry.initial Core.Design.Chisel);
    ("bsv optimized", Core.Registry.optimized Core.Design.Bsv);
    ("xls 4-stage",
     Core.
       {
         (Registry.optimized Design.Dslx) with
         Design.impl =
           Design.Stream (lazy (Dslx.Idct_dslx.design ~stages:4 ~name:"it4" ()));
       });
  ]

let test_backpressure_everywhere () =
  let inputs = mats 3 in
  let expected = List.map Idct.Chenwang.idct inputs in
  List.iter
    (fun (name, d) ->
      match d.Core.Design.impl with
      | Core.Design.Stream c ->
          let r =
            Axis.Driver.run
              ~ready_pattern:(fun t -> t mod 5 <> 0)
              (Lazy.force c) inputs
          in
          check bool (name ^ " correct under backpressure") true
            (List.for_all2 Axis.Block.equal r.Axis.Driver.outputs expected);
          check int (name ^ " protocol clean") 0
            (List.length r.Axis.Driver.violations)
      | Core.Design.Pcie _ -> ())
    (designs_under_test ())

let test_gaps_everywhere () =
  let inputs = mats 3 in
  let expected = List.map Idct.Chenwang.idct inputs in
  List.iter
    (fun (name, d) ->
      match d.Core.Design.impl with
      | Core.Design.Stream c ->
          let r = Axis.Driver.run ~input_gap:7 (Lazy.force c) inputs in
          check bool (name ^ " correct with inter-matrix gaps") true
            (List.for_all2 Axis.Block.equal r.Axis.Driver.outputs expected)
      | Core.Design.Pcie _ -> ())
    (designs_under_test ())

(* ---------------- fig1 machinery ---------------- *)

let test_fig1_subset () =
  let series = Core.Fig1.compute ~tools:[ Core.Design.Maxj ] () in
  (match series with
  | [ s ] ->
      check int "two MaxJ points" 2 (List.length s.Core.Fig1.points);
      List.iter
        (fun (p : Core.Fig1.point) ->
          check bool "positive throughput" true (p.throughput_mops > 0.))
        s.Core.Fig1.points
  | _ -> Alcotest.fail "expected one series");
  let txt = Core.Fig1.render ~tools:[ Core.Design.Maxj ] () in
  check bool "render mentions MaxJ" true (String.length txt > 100)

let test_table1_rows () =
  check int "seven rows" 7 (List.length Core.Table1.rows);
  let r = List.hd Core.Table1.rows in
  check bool "verilog first" true (r.Core.Table1.language = "Verilog")

let () =
  Alcotest.run "integration"
    [
      ( "hls accounting",
        [
          Alcotest.test_case "schedule cycles = periodicity" `Slow
            test_cycles_are_periodicity;
        ] );
      ( "views",
        [
          Alcotest.test_case "stride-8 views in hardware" `Slow test_view_strides;
          Alcotest.test_case "view composition" `Quick test_view_composition_in_interp;
        ] );
      ( "streaming",
        [
          Alcotest.test_case "is_wrapped" `Quick test_is_wrapped;
          Alcotest.test_case "backpressure everywhere" `Slow test_backpressure_everywhere;
          Alcotest.test_case "gaps everywhere" `Slow test_gaps_everywhere;
        ] );
      ( "reporting",
        [
          Alcotest.test_case "fig1 subset" `Quick test_fig1_subset;
          Alcotest.test_case "table1 rows" `Quick test_table1_rows;
        ] );
    ]
