(* The extension experiment's kernel, checked across all three front ends
   against one software reference. *)

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let inputs n =
  let rng = Axis.Block.Rand.create ~seed:91 () in
  List.init n (fun _ -> Axis.Block.Rand.block rng ~lo:(-2048) ~hi:2047)

let test_reference_shape () =
  (* A constant block filters to (64*c) >> 6 = c, clipped. *)
  let flat = Array.make 64 100 in
  check bool "dc gain is unity" true
    (Array.for_all (fun v -> v = 100) (Core.Second_kernel.reference flat));
  let hot = Array.make 64 0 in
  hot.(0) <- 64;
  let out = Core.Second_kernel.reference hot in
  (* impulse response appears at i = 0..7 (circular) with tap/1 weights *)
  Array.iteri
    (fun k t -> check int (Printf.sprintf "tap %d" k) t out.(k))
    Core.Second_kernel.taps

let test_c_interp_matches () =
  List.iter
    (fun blk ->
      let arr = Array.copy blk in
      ignore (Chls.Ast.interp Core.Second_kernel.c_program "fir" ~args:[ `Arr arr ]);
      check bool "c = reference" true
        (Axis.Block.equal arr (Core.Second_kernel.reference blk)))
    (inputs 10)

let test_dslx_interp_matches () =
  List.iter
    (fun blk ->
      let outs =
        Dslx.Lower.interpret Core.Second_kernel.dslx_program
          (Array.to_list (Array.map (fun v -> v land 0xFFF) blk))
      in
      let signed9 v = if v land 0x100 <> 0 then v - 512 else v in
      check bool "dslx = reference" true
        (List.for_all2
           (fun got want -> signed9 got = want)
           outs
           (Array.to_list (Core.Second_kernel.reference blk))))
    (inputs 5)

let gate_level name build =
  let ins = inputs 3 in
  let expected = List.map Core.Second_kernel.reference ins in
  let r = Axis.Driver.run ~timeout:40000 (build ()) ins in
  check bool (name ^ " gate level = reference") true
    (List.for_all2 Axis.Block.equal r.Axis.Driver.outputs expected);
  check int (name ^ " protocol clean") 0 (List.length r.Axis.Driver.violations)

let test_chisel_gate () =
  gate_level "chisel" (fun () -> Core.Second_kernel.chisel_design ~name:"fir_hc")

let test_c_gate () =
  gate_level "c" (fun () -> Core.Second_kernel.c_design ~name:"fir_c")

let test_dslx_gate () =
  gate_level "dslx" (fun () ->
      Core.Second_kernel.dslx_design ~stages:3 ~name:"fir_xls" ())

let () =
  Alcotest.run "second-kernel"
    [
      ( "fir",
        [
          Alcotest.test_case "reference shape" `Quick test_reference_shape;
          Alcotest.test_case "c interpreter" `Quick test_c_interp_matches;
          Alcotest.test_case "dslx interpreter" `Quick test_dslx_interp_matches;
          Alcotest.test_case "chisel gate level" `Slow test_chisel_gate;
          Alcotest.test_case "c gate level" `Slow test_c_gate;
          Alcotest.test_case "dslx gate level" `Slow test_dslx_gate;
        ] );
    ]
