(* The staged flow layer: artifacts are byte-identical with tracing on or
   off and for any job count, spans nest without overlapping, cache
   counters track the measurement cache, the JSON round-trips, and
   compliance dispatches on the design under test. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

(* A cheap two-tool slice of Fig. 1 (6 designs) for the determinism
   tests. *)
let tools = [ Core.Design.Verilog; Core.Design.Chisel ]

let cold () =
  Core.Fig1.clear_cache ();
  Core.Evaluate.clear_measure_cache ()

(* Run [f] with tracing enabled; return its result and the drained
   spans.  The flag is always restored. *)
let traced f =
  Core.Trace.set_enabled true;
  let r =
    Fun.protect ~finally:(fun () -> Core.Trace.set_enabled false) f
  in
  (r, Core.Trace.drain ())

let test_artifacts_identical_traced () =
  cold ();
  let plain = Core.Fig1.render ~jobs:1 ~tools () in
  cold ();
  let with_trace, spans = traced (fun () -> Core.Fig1.render ~jobs:1 ~tools ()) in
  check Alcotest.string "fig1 byte-identical under tracing" plain with_trace;
  check bool "trace not empty" true (spans <> []);
  (* one complete stage pipeline per measured design *)
  let stage_spans name =
    List.length (List.filter (fun s -> s.Core.Trace.stage = name) spans)
  in
  List.iter
    (fun name -> check int ("6 designs ran " ^ name) 6 (stage_spans name))
    Core.Flow.stage_names

let test_artifacts_identical_across_jobs () =
  cold ();
  let seq = Core.Fig1.render ~jobs:1 ~tools () in
  cold ();
  let par, spans = traced (fun () -> Core.Fig1.render ~jobs:4 ~tools ()) in
  check Alcotest.string "fig1 byte-identical jobs 1 vs 4" seq par;
  (* the pooled run recorded the engine spans... *)
  let find_stage name = List.filter (fun s -> s.Core.Trace.stage = name) spans in
  (match find_stage "map" with
  | m :: _ ->
      check int "map span counts the items" 6
        (List.assoc "items" m.Core.Trace.counters)
  | [] -> Alcotest.fail "no pool map span");
  let workers = find_stage "worker" in
  check bool "worker spans present" true (workers <> []);
  check int "workers claimed every item" 6
    (List.fold_left
       (fun acc w -> acc + List.assoc "claimed" w.Core.Trace.counters)
       0 workers);
  (* ...and still one complete pipeline per design, flushed across the
     domain boundary. *)
  check int "simulate spans survive worker exit" 6
    (List.length (find_stage "simulate"))

let test_spans_nest () =
  cold ();
  let _, spans =
    traced (fun () ->
        ignore
          (Core.Evaluate.measure ~spec:Core.Flow.idct_spec ~matrices:2
             (Core.Registry.initial Core.Design.Verilog)))
  in
  let ends s = s.Core.Trace.start_s +. s.Core.Trace.dur_s in
  let by_design = Hashtbl.create 8 in
  List.iter
    (fun s ->
      let key = s.Core.Trace.design in
      Hashtbl.replace by_design key (s :: (Option.value ~default:[] (Hashtbl.find_opt by_design key))))
    spans;
  Hashtbl.iter
    (fun design ss ->
      List.iteri
        (fun i a ->
          List.iteri
            (fun j b ->
              if i < j then
                let disjoint = ends a <= b.Core.Trace.start_s || ends b <= a.Core.Trace.start_s in
                let a_in_b = b.Core.Trace.start_s <= a.Core.Trace.start_s && ends a <= ends b in
                let b_in_a = a.Core.Trace.start_s <= b.Core.Trace.start_s && ends b <= ends a in
                check bool
                  (Printf.sprintf "%s: %s/%s nest or are disjoint" design
                     a.Core.Trace.stage b.Core.Trace.stage)
                  true
                  (disjoint || a_in_b || b_in_a))
            ss)
        ss)
    by_design;
  (* every stage span sits under the root measure span *)
  let root =
    List.find (fun s -> s.Core.Trace.stage = "measure") spans
  in
  List.iter
    (fun s ->
      if s.Core.Trace.design = root.Core.Trace.design then
        check bool (s.Core.Trace.stage ^ " at positive depth under measure")
          true
          (s.Core.Trace.stage = "measure" || s.Core.Trace.depth > 0))
    spans

let test_cache_counters () =
  cold ();
  let d = Core.Registry.initial Core.Design.Verilog in
  let counter name spans =
    List.fold_left
      (fun acc s ->
        if s.Core.Trace.stage = "measure" then
          acc + Option.value ~default:0 (List.assoc_opt name s.Core.Trace.counters)
        else acc)
      0 spans
  in
  let _, cold_spans = traced (fun () -> Core.Evaluate.measure ~spec:Core.Flow.idct_spec ~matrices:2 d) in
  check int "cold run misses" 1 (counter "cache_miss" cold_spans);
  check int "cold run has no hit" 0 (counter "cache_hit" cold_spans);
  let _, warm_spans = traced (fun () -> Core.Evaluate.measure ~spec:Core.Flow.idct_spec ~matrices:2 d) in
  check int "warm run hits" 1 (counter "cache_hit" warm_spans);
  check int "warm run has no miss" 0 (counter "cache_miss" warm_spans)

let test_json_roundtrip_and_stats () =
  cold ();
  let _, spans =
    traced (fun () ->
        ignore
          (Core.Evaluate.measure ~spec:Core.Flow.idct_spec ~matrices:2
             (Core.Registry.initial Core.Design.Chisel)))
  in
  let file = Filename.temp_file "hlsvhc_trace" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      Core.Trace.write_json file spans;
      let back = Core.Trace.load_json file in
      check int "span count survives the round-trip" (List.length spans)
        (List.length back);
      let stages l =
        List.sort_uniq compare (List.map (fun s -> s.Core.Trace.stage) l)
      in
      check (Alcotest.list Alcotest.string) "stages survive" (stages spans)
        (stages back);
      let report = Core.Trace.render_stats file in
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
        go 0
      in
      List.iter
        (fun name ->
          check bool ("stats names " ^ name) true (contains report name))
        Core.Flow.stage_names)

let test_compliance_dispatch () =
  (* A PCIe design whose own simulator is wrong must fail compliance:
     the check exercises the design under test, not a fixed kernel. *)
  let broken =
    let good = Core.Registry.initial Core.Design.Maxj in
    match good.Core.Design.impl with
    | Core.Design.Stream _ -> assert false
    | Core.Design.Pcie p ->
        {
          good with
          Core.Design.impl =
            Core.Design.Pcie { p with Core.Design.simulate = (fun mats -> mats) };
        }
  in
  check bool "broken PCIe simulator fails compliance" false
    (Core.Evaluate.check_compliance ~spec:Core.Flow.idct_spec ~blocks:4 broken);
  check bool "initial MaxJ kernel passes" true
    (Core.Evaluate.check_compliance ~spec:Core.Flow.idct_spec ~blocks:16
       (Core.Registry.initial Core.Design.Maxj));
  check bool "optimized MaxJ kernel passes" true
    (Core.Evaluate.check_compliance ~spec:Core.Flow.idct_spec ~blocks:16
       (Core.Registry.optimized Core.Design.Maxj))

let test_disabled_is_silent () =
  cold ();
  ignore (Core.Evaluate.measure ~spec:Core.Flow.idct_spec ~matrices:2 (Core.Registry.initial Core.Design.Verilog));
  Core.Trace.add_counter "orphan" 1;
  check int "nothing recorded with tracing off" 0
    (List.length (Core.Trace.drain ()))

let test_second_kernel_through_flow () =
  (* The FIR registers through the same door: same pipeline, its own
     spec.  Check one design end to end (bit-true or measure raises). *)
  let tool, d = List.hd Core.Second_kernel.designs in
  check Alcotest.string "first FIR design" "Chisel"
    (Core.Design.tool_name tool);
  let m = Core.Evaluate.measure ~matrices:2 ~spec:Core.Second_kernel.spec d in
  check bool "FIR measurement is sane" true
    (m.Core.Metrics.area > 0 && m.Core.Metrics.fmax_mhz > 0.)

let () =
  Alcotest.run "flow"
    [
      ( "flow",
        [
          Alcotest.test_case "artifacts identical when traced" `Quick
            test_artifacts_identical_traced;
          Alcotest.test_case "artifacts identical across job counts" `Quick
            test_artifacts_identical_across_jobs;
          Alcotest.test_case "spans nest without overlap" `Quick
            test_spans_nest;
          Alcotest.test_case "cache hit/miss counters" `Quick
            test_cache_counters;
          Alcotest.test_case "json round-trip and stats" `Quick
            test_json_roundtrip_and_stats;
          Alcotest.test_case "compliance dispatches on the design" `Quick
            test_compliance_dispatch;
          Alcotest.test_case "disabled tracing records nothing" `Quick
            test_disabled_is_silent;
          Alcotest.test_case "second kernel through the pipeline" `Quick
            test_second_kernel_through_flow;
        ] );
    ]
