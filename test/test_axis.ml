(* Tests for the AXI-Stream substrate: protocol monitor, adapters under
   back-pressure and input gaps, latency/periodicity measurement. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let sample ~cycle ~valid ~ready ~last data =
  { Axis.Monitor.cycle; valid; ready; last; data = Array.make 8 data }

let eight_beats ?(start = 0) () =
  List.init 8 (fun i ->
      sample ~cycle:(start + i) ~valid:true ~ready:true ~last:(i = 7) i)

let test_monitor_clean () =
  check int "no violations" 0 (List.length (Axis.Monitor.check (eight_beats ())))

let test_monitor_stability () =
  let trace =
    [
      sample ~cycle:0 ~valid:true ~ready:false ~last:false 1;
      sample ~cycle:1 ~valid:true ~ready:true ~last:false 2 (* data changed *);
    ]
  in
  let v = Axis.Monitor.check trace in
  check bool "detects unstable data" true
    (List.exists
       (fun (x : Axis.Monitor.violation) ->
         x.rule = "m_data changed while a beat was stalled")
       v)

let test_monitor_drop_valid () =
  let trace =
    [
      sample ~cycle:0 ~valid:true ~ready:false ~last:false 1;
      sample ~cycle:1 ~valid:false ~ready:false ~last:false 1;
    ]
  in
  check bool "detects dropped valid" true
    (Axis.Monitor.check trace
    |> List.exists (fun (x : Axis.Monitor.violation) ->
           x.rule = "m_valid deasserted while a beat was stalled"))

let test_monitor_framing () =
  let bad =
    List.init 8 (fun i ->
        (* last on beat 5 instead of 8 *)
        sample ~cycle:i ~valid:true ~ready:true ~last:(i = 4) i)
  in
  check bool "detects bad framing" true (Axis.Monitor.check bad <> [])

(* A trivial pass-through kernel for adapter tests: out = clip of input. *)
let passthrough_kernel b mid =
  Array.map
    (fun s ->
      let open Hw in
      Builder.slice b (Builder.sext b s 16) ~hi:8 ~lo:0)
    mid

let passthrough_expected blk =
  Array.map
    (fun v ->
      let x = v land 0x1FF in
      if x land 0x100 <> 0 then x - 0x200 else x)
    blk

let mats n =
  let rng = Axis.Block.Rand.create ~seed:3 () in
  List.init n (fun _ -> Axis.Block.Rand.block rng ~lo:(-100) ~hi:100)

let test_wrap_matrix_kernel_basic () =
  let c =
    Axis.Adapter.wrap_matrix_kernel ~name:"pt" ~latency:0
      ~kernel:passthrough_kernel ()
  in
  let inputs = mats 5 in
  let r = Axis.Driver.run c inputs in
  check int "latency 17" 17 r.Axis.Driver.latency;
  check int "periodicity 8" 8 r.Axis.Driver.periodicity;
  check int "clean protocol" 0 (List.length r.Axis.Driver.violations);
  List.iter2
    (fun got input ->
      check bool "payload" true
        (Axis.Block.equal got (passthrough_expected input)))
    r.Axis.Driver.outputs inputs

let test_wrap_matrix_kernel_backpressure () =
  let c =
    Axis.Adapter.wrap_matrix_kernel ~name:"pt" ~latency:0
      ~kernel:passthrough_kernel ()
  in
  let inputs = mats 4 in
  (* sink accepts only every third cycle *)
  let r = Axis.Driver.run ~ready_pattern:(fun t -> t mod 3 = 0) c inputs in
  check int "clean under backpressure" 0 (List.length r.Axis.Driver.violations);
  List.iter2
    (fun got input ->
      check bool "payload under backpressure" true
        (Axis.Block.equal got (passthrough_expected input)))
    r.Axis.Driver.outputs inputs

let test_wrap_matrix_kernel_gaps () =
  let c =
    Axis.Adapter.wrap_matrix_kernel ~name:"pt" ~latency:0
      ~kernel:passthrough_kernel ()
  in
  let inputs = mats 3 in
  let r = Axis.Driver.run ~input_gap:5 c inputs in
  check int "gapped stream is clean" 0 (List.length r.Axis.Driver.violations);
  check int "gap shows in periodicity" 13 r.Axis.Driver.periodicity

let test_wrap_row_col_structure () =
  let mode = Chisel.Idct_gen.verilog_mode in
  let c = Chisel.Idct_gen.design_rowcol mode ~name:"rc" in
  let inputs =
    List.map Idct.Reference.fdct (mats 5)
  in
  let r = Axis.Driver.run c inputs in
  check int "latency 24" 24 r.Axis.Driver.latency;
  check int "periodicity 8" 8 r.Axis.Driver.periodicity;
  let expected = List.map Idct.Chenwang.idct inputs in
  check bool "bit true" true
    (List.for_all2 Axis.Block.equal r.Axis.Driver.outputs expected)

let test_wrap_row_col_backpressure () =
  let mode = Chisel.Idct_gen.verilog_mode in
  let c = Chisel.Idct_gen.design_rowcol mode ~name:"rc" in
  let inputs = List.map Idct.Reference.fdct (mats 3) in
  let r = Axis.Driver.run ~ready_pattern:(fun t -> t mod 2 = 0) c inputs in
  let expected = List.map Idct.Chenwang.idct inputs in
  check bool "bit true under backpressure" true
    (List.for_all2 Axis.Block.equal r.Axis.Driver.outputs expected);
  check int "protocol clean" 0 (List.length r.Axis.Driver.violations)

let test_pipelined_kernel_wrap () =
  (* A latency-3 kernel through the pipelined hand-off path. *)
  let kernel b mid =
    let open Hw in
    Array.map
      (fun s ->
        let r1 = Builder.reg_next b s in
        let r2 = Builder.reg_next b r1 in
        let r3 = Builder.reg_next b r2 in
        Builder.slice b (Builder.sext b r3 16) ~hi:8 ~lo:0)
      mid
  in
  let c = Axis.Adapter.wrap_matrix_kernel ~name:"lat3" ~latency:3 ~kernel () in
  let inputs = mats 4 in
  let r = Axis.Driver.run c inputs in
  check int "latency 17+3" 20 r.Axis.Driver.latency;
  List.iter2
    (fun got input ->
      check bool "payload through pipe" true
        (Axis.Block.equal got (passthrough_expected input)))
    r.Axis.Driver.outputs inputs

let test_driver_timeout () =
  (* A circuit that never produces output must raise, not hang. *)
  let b = Hw.Builder.create "dead" in
  let p = Axis.Stream.declare_inputs b in
  ignore p;
  Axis.Stream.expose_outputs b
    ~s_ready:(Hw.Builder.one b 1)
    ~m_valid:(Hw.Builder.zero b 1)
    ~m_last:(Hw.Builder.zero b 1)
    ~m_data:(Array.init 8 (fun _ -> Hw.Builder.zero b 9));
  let c = Hw.Builder.finalize b in
  match Axis.Driver.run ~timeout:200 c (mats 1) with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected timeout"

let test_driver_timeout_reports_batch () =
  (* The diagnostic must carry the lane count and per-lane progress, and
     keep the "timeout after" marker the flow layer keys on. *)
  let b = Hw.Builder.create "dead" in
  ignore (Axis.Stream.declare_inputs b);
  Axis.Stream.expose_outputs b
    ~s_ready:(Hw.Builder.one b 1)
    ~m_valid:(Hw.Builder.zero b 1)
    ~m_last:(Hw.Builder.zero b 1)
    ~m_data:(Array.init 8 (fun _ -> Hw.Builder.zero b 9));
  let c = Hw.Builder.finalize b in
  match Axis.Driver.run ~batch:4 ~timeout:200 c (mats 8) with
  | exception Failure msg ->
      let has needle =
        let nl = String.length needle and hl = String.length msg in
        let rec go i =
          i + nl <= hl && (String.sub msg i nl = needle || go (i + 1))
        in
        go 0
      in
      check bool "mentions timeout after" true (has "timeout after");
      check bool "mentions batch" true (has "batch 4");
      check bool "mentions duty" true (has "duty")
  | _ -> Alcotest.fail "expected timeout"

let test_driver_batched_matches_sequential () =
  (* Lane-parallel runs must reproduce the sequential outputs exactly,
     for every split of matrices across lanes (including uneven ones). *)
  let c =
    Axis.Adapter.wrap_matrix_kernel ~name:"pt" ~latency:0
      ~kernel:passthrough_kernel ()
  in
  let inputs = mats 7 in
  let seq = Axis.Driver.run c inputs in
  List.iter
    (fun batch ->
      let r = Axis.Driver.run ~batch c inputs in
      check int
        (Printf.sprintf "batch %d: clean protocol" batch)
        0
        (List.length r.Axis.Driver.violations);
      check bool
        (Printf.sprintf "batch %d: same outputs" batch)
        true
        (List.for_all2 Axis.Block.equal r.Axis.Driver.outputs
           seq.Axis.Driver.outputs))
    [ 1; 3; 7; 16 ];
  (* transform_batch is the one-matrix-per-lane convenience wrapper *)
  let got = Axis.Driver.transform_batch c inputs in
  check bool "transform_batch matches" true
    (List.for_all2 Axis.Block.equal got seq.Axis.Driver.outputs)

let () =
  Alcotest.run "axis"
    [
      ( "monitor",
        [
          Alcotest.test_case "clean trace" `Quick test_monitor_clean;
          Alcotest.test_case "stability violation" `Quick test_monitor_stability;
          Alcotest.test_case "dropped valid" `Quick test_monitor_drop_valid;
          Alcotest.test_case "framing" `Quick test_monitor_framing;
        ] );
      ( "adapters",
        [
          Alcotest.test_case "matrix kernel basics" `Quick test_wrap_matrix_kernel_basic;
          Alcotest.test_case "back-pressure" `Quick test_wrap_matrix_kernel_backpressure;
          Alcotest.test_case "input gaps" `Quick test_wrap_matrix_kernel_gaps;
          Alcotest.test_case "row/col engine" `Quick test_wrap_row_col_structure;
          Alcotest.test_case "row/col back-pressure" `Quick test_wrap_row_col_backpressure;
          Alcotest.test_case "pipelined kernel" `Quick test_pipelined_kernel_wrap;
          Alcotest.test_case "driver timeout" `Quick test_driver_timeout;
          Alcotest.test_case "timeout reports batch" `Quick
            test_driver_timeout_reports_batch;
          Alcotest.test_case "batched run == sequential run" `Quick
            test_driver_batched_matches_sequential;
        ] );
    ]
