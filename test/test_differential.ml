(* Differential testing with randomly generated programs: the C HLS flow
   (interpreter vs. synthesized FSM) and the DSLX elaborator (interpreter
   vs. circuit), each over many random programs — the strongest evidence
   that the compilers implement their languages. *)


(* ---------------- random C programs ---------------- *)

(* Straight-line + loops over one 64-element array and a few scalars; the
   expression grammar stays within the supported subset. *)
let random_c_program seed =
  let rng = Random.State.make [| seed |] in
  let open Chls.Ast in
  let scalars = [ "a"; "b"; "c" ] in
  let depth_expr = ref 0 in
  let rec rand_expr depth =
    incr depth_expr;
    let leaf () =
      match Random.State.int rng 4 with
      | 0 -> Int (Random.State.int rng 200 - 100)
      | 1 -> Var (List.nth scalars (Random.State.int rng 3))
      | 2 -> Load ("blk", Int (Random.State.int rng 64))
      | _ -> Load ("blk", Bin (And, Var "k", Int 63))
    in
    if depth = 0 then leaf ()
    else
      match Random.State.int rng 7 with
      | 0 -> Bin (Add, rand_expr (depth - 1), rand_expr (depth - 1))
      | 1 -> Bin (Sub, rand_expr (depth - 1), rand_expr (depth - 1))
      | 2 -> Bin (Mul, rand_expr (depth - 1), Int (Random.State.int rng 30 + 1))
      | 3 -> Bin (Shr, rand_expr (depth - 1), Int (Random.State.int rng 4))
      | 4 -> Bin (Xor, rand_expr (depth - 1), rand_expr (depth - 1))
      | 5 ->
          Cond
            ( Bin (Lt, rand_expr (depth - 1), rand_expr (depth - 1)),
              rand_expr (depth - 1),
              rand_expr (depth - 1) )
      | _ -> leaf ()
  in
  let rand_stmt () =
    match Random.State.int rng 3 with
    | 0 -> Assign (List.nth scalars (Random.State.int rng 3), rand_expr 2)
    | 1 -> Store ("blk", Int (Random.State.int rng 64), rand_expr 2)
    | _ -> Store ("blk", Bin (And, Var "k", Int 63), rand_expr 1)
  in
  let body =
    [
      Assign ("a", Int 1);
      Assign ("b", Int 2);
      Assign ("c", Int 3);
      For
        {
          ivar = "k";
          bound = 4 + Random.State.int rng 5;
          body = List.init (1 + Random.State.int rng 4) (fun _ -> rand_stmt ());
        };
      Store ("blk", Int 0, Var "a");
      Store ("blk", Int 1, Var "b");
    ]
  in
  {
    funcs =
      [
        {
          fname = "top";
          params = [ PArray ("blk", short_t, 64) ];
          ret = None;
          locals = List.map (fun s -> (s, int_t)) scalars @ [ ("k", int_t) ];
          arrays = [];
          body;
        };
      ];
    top = "top";
  }

let chls_differential =
  QCheck.Test.make ~name:"random C programs: FSM = interpreter" ~count:25
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let program = random_c_program seed in
      let circuit =
        Chls.Tool.sequential_circuit ~name:"rand"
          Chls.Schedule.default_config Chls.Transform.default_options program
      in
      let rng = Random.State.make [| seed + 1 |] in
      let input = Array.init 64 (fun _ -> Random.State.int rng 512 - 256) in
      let expected = Array.copy input in
      ignore (Chls.Ast.interp program "top" ~args:[ `Arr expected ]);
      let r = Axis.Driver.run ~timeout:50000 circuit [ input ] in
      let out = List.hd r.Axis.Driver.outputs in
      (* outputs are truncated to the 9-bit lane width *)
      let trunc v =
        let x = v land 0x1FF in
        if x land 0x100 <> 0 then x - 0x200 else x
      in
      Array.for_all2 (fun got want -> got = trunc want) out expected)

let chls_mp_differential =
  QCheck.Test.make ~name:"random C programs: MP config agrees" ~count:10
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let program = random_c_program seed in
      let mk cfg = Chls.Tool.sequential_circuit ~name:"m" cfg
          Chls.Transform.default_options program in
      let c1 = mk Chls.Schedule.default_config in
      let c2 =
        mk { Chls.Schedule.default_config with read_ports = 2; write_ports = 2; chain_ns = 8.0 }
      in
      let rng = Random.State.make [| seed + 2 |] in
      let input = Array.init 64 (fun _ -> Random.State.int rng 512 - 256) in
      let o1 = (Axis.Driver.run ~timeout:50000 c1 [ input ]).Axis.Driver.outputs in
      let o2 = (Axis.Driver.run ~timeout:50000 c2 [ input ]).Axis.Driver.outputs in
      List.for_all2 Axis.Block.equal o1 o2)

(* ---------------- random DSLX programs ---------------- *)

let random_dslx_program seed =
  let rng = Random.State.make [| seed |] in
  let open Dslx.Ir in
  let w = 16 in
  let rec rand_expr vars depth =
    let leaf () =
      match Random.State.int rng 3 with
      | 0 -> Lit { width = w; value = Random.State.int rng 1000 - 500 }
      | 1 -> List.nth vars (Random.State.int rng (List.length vars))
      | _ -> Index (Var "arr", Lit { width = 8; value = Random.State.int rng 4 })
    in
    if depth = 0 then leaf ()
    else
      match Random.State.int rng 6 with
      | 0 -> Bin (Hw.Netlist.Add, rand_expr vars (depth - 1), rand_expr vars (depth - 1))
      | 1 -> Bin (Hw.Netlist.Sub, rand_expr vars (depth - 1), rand_expr vars (depth - 1))
      | 2 -> Bin (Hw.Netlist.Xor, rand_expr vars (depth - 1), rand_expr vars (depth - 1))
      | 3 ->
          If
            ( Bin (Hw.Netlist.Lt Hw.Netlist.Signed, rand_expr vars (depth - 1),
               rand_expr vars (depth - 1)),
              rand_expr vars (depth - 1),
              rand_expr vars (depth - 1) )
      | 4 -> Neg (rand_expr vars (depth - 1))
      | _ -> leaf ()
  in
  let body =
    Let
      ( "t0",
        rand_expr [ Var "x"; Var "y" ] 2,
        Let
          ( "t1",
            rand_expr [ Var "x"; Var "t0" ] 2,
            For
              {
                var = "i";
                count = 4;
                acc = "acc";
                init = Var "t1";
                body =
                  Bin
                    ( Hw.Netlist.Add,
                      Var "acc",
                      rand_expr [ Var "t0"; Var "acc" ] 1 );
              } ) )
  in
  {
    fns =
      [
        {
          fname = "top";
          params =
            [
              { pname = "x"; pty = Bits w };
              { pname = "y"; pty = Bits w };
              { pname = "arr"; pty = Array (Bits w, 4) };
            ];
          ret = Bits w;
          body;
        };
      ];
    top = "top";
  }

let dslx_differential =
  QCheck.Test.make ~name:"random DSLX programs: circuit = interpreter"
    ~count:60
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let p = random_dslx_program seed in
      match Dslx.Typecheck.check_program p with
      | Error _ -> false
      | Ok () ->
          let c = Dslx.Lower.circuit p in
          let sim = Hw.Sim.create c in
          let rng = Random.State.make [| seed + 3 |] in
          let ok = ref true in
          for _ = 0 to 4 do
            let inputs = List.init 6 (fun _ -> Random.State.int rng 65536) in
            let names = [ "x"; "y"; "arr_0"; "arr_1"; "arr_2"; "arr_3" ] in
            List.iter2 (fun n v -> Hw.Sim.set sim n v) names inputs;
            let want = List.hd (Dslx.Lower.interpret p inputs) in
            if Hw.Sim.get sim "out" <> want then ok := false
          done;
          !ok)

let () =
  Alcotest.run "differential"
    [
      ( "chls",
        List.map QCheck_alcotest.to_alcotest
          [ chls_differential; chls_mp_differential ] );
      ("dslx", List.map QCheck_alcotest.to_alcotest [ dslx_differential ]);
    ]
