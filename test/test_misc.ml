(* Remaining corner coverage: Bits printing/order, simulator peeks, the
   driver's timing measurement, BSV urgency arbitration, DSLX casts, MaxJ
   manager arithmetic, Chen-Wang constants, and metric edge cases. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let test_bits_pp_order () =
  check bool "pp" true (Hw.Bits.to_string (Hw.Bits.create ~width:8 255) = "8'd255");
  let a = Hw.Bits.create ~width:4 3 and b = Hw.Bits.create ~width:4 5 in
  check bool "compare by value" true (Hw.Bits.compare a b < 0);
  check bool "compare by width first" true
    (Hw.Bits.compare (Hw.Bits.create ~width:3 7) a < 0);
  check bool "ones" true (Hw.Bits.to_int (Hw.Bits.ones 5) = 31);
  check bool "bit" true (Hw.Bits.bit (Hw.Bits.create ~width:4 0b0100) 2)

let test_sim_peeks () =
  let b = Hw.Builder.create "pk" in
  let x = Hw.Builder.input b "x" 4 in
  let n = Hw.Builder.neg b x in
  Hw.Builder.output b "o" n;
  let c = Hw.Builder.finalize b in
  let sim = Hw.Sim.create c in
  Hw.Sim.set sim "x" 1;
  check int "peek unsigned" 15 (Hw.Sim.peek sim (Hw.Netlist.find_output c "o"));
  check int "peek signed" (-1)
    (Hw.Sim.peek_signed sim (Hw.Netlist.find_output c "o"));
  check int "get_signed" (-1) (Hw.Sim.get_signed sim "o")

let test_chenwang_constants () =
  (* W_k = round(2048 * sqrt(2) * cos(k*pi/16)) for k=1, and
     round(2048 * 2 * cos(k*pi/16) / sqrt(2))... the standard table. *)
  let w k = 2048. *. sqrt 2. *. cos (float_of_int k *. Float.pi /. 16.) in
  check int "w1" (int_of_float (Float.round (w 1))) Idct.Chenwang.w1;
  check int "w2" (int_of_float (Float.round (w 2))) Idct.Chenwang.w2;
  check int "w3" (int_of_float (Float.round (w 3))) Idct.Chenwang.w3;
  check int "w5" (int_of_float (Float.round (w 5))) Idct.Chenwang.w5;
  check int "w6" (int_of_float (Float.round (w 6))) Idct.Chenwang.w6;
  check int "w7" (int_of_float (Float.round (w 7))) Idct.Chenwang.w7;
  check int "iclip low" (-256) (Idct.Chenwang.iclip (-1000));
  check int "iclip high" 255 (Idct.Chenwang.iclip 1000);
  check int "iclip pass" 42 (Idct.Chenwang.iclip 42)

let test_driver_latency_measure () =
  (* A purely pass-through wrapper must report latency 17 regardless of
     how many matrices precede the measured one. *)
  let kernel b mid =
    Array.map
      (fun s -> Hw.Builder.slice b (Hw.Builder.sext b s 16) ~hi:8 ~lo:0)
      mid
  in
  let c = Axis.Adapter.wrap_matrix_kernel ~name:"lat" ~latency:0 ~kernel () in
  let mats n =
    let rng = Axis.Block.Rand.create ~seed:n () in
    List.init n (fun _ -> Axis.Block.Rand.block rng ~lo:(-100) ~hi:100)
  in
  List.iter
    (fun n ->
      let r = Axis.Driver.run c (mats n) in
      check int (Printf.sprintf "latency with %d matrices" n) 17
        r.Axis.Driver.latency)
    [ 1; 2; 5 ]

let test_bsv_urgency_order () =
  (* Two conflicting always-enabled writers: declaration order arbitrates;
     reversing urgency flips the winner. *)
  let open Bsv.Lang in
  let build () =
    let bld = builder "u" in
    let x = mk_reg bld "x" 8 in
    mk_rule bld "first" ~guard:(cst 1 1) [ assign x (cst 8 11) ];
    mk_rule bld "second" ~guard:(cst 1 1) [ assign x (cst 8 22) ];
    mk_output bld "o" (Read x);
    mk_module bld
  in
  let value options =
    let sim = Hw.Sim.create (Bsv.Compile.compile ~options (build ())) in
    Hw.Sim.step sim;
    Hw.Sim.get sim "o"
  in
  check int "declared order: first wins" 11 (value Bsv.Options.default);
  check int "reversed: second wins" 22
    (value { Bsv.Options.default with Bsv.Options.urgency = Bsv.Options.Reversed })

let test_bsv_aggressive_conditions () =
  (* With -aggressive-conditions, a rule whose only action is disabled
     stops blocking a lower-urgency conflicting rule. *)
  let open Bsv.Lang in
  let build () =
    let bld = builder "agg" in
    let x = mk_reg bld "x" 8 in
    mk_rule bld "noop" ~guard:(cst 1 1)
      [ assign ~when_:(cst 1 0) x (cst 8 1) ];
    mk_rule bld "real" ~guard:(cst 1 1) [ assign x (cst 8 9) ];
    mk_output bld "o" (Read x);
    mk_module bld
  in
  let value aggressive =
    let options = { Bsv.Options.default with Bsv.Options.aggressive_conditions = aggressive } in
    let sim = Hw.Sim.create (Bsv.Compile.compile ~options (build ())) in
    Hw.Sim.step sim;
    Hw.Sim.get sim "o"
  in
  check int "conservative: noop blocks" 0 (value false);
  check int "aggressive: real rule fires" 9 (value true)

let test_dslx_cast_semantics () =
  let open Dslx.Ir in
  let p cast_to sg =
    {
      fns =
        [
          {
            fname = "top";
            params = [ { pname = "x"; pty = Bits 8 } ];
            ret = Bits cast_to;
            body = Cast (Var "x", cast_to, sg);
          };
        ];
      top = "top";
    }
  in
  check int "sext" 0xFFF0 (List.hd (Dslx.Lower.interpret (p 16 `Signed) [ 0xF0 ]));
  check int "uext" 0x00F0 (List.hd (Dslx.Lower.interpret (p 16 `Unsigned) [ 0xF0 ]));
  check int "truncate" 0x0 (List.hd (Dslx.Lower.interpret (p 4 `Unsigned) [ 0xF0 ]))

let test_manager_arithmetic () =
  let s = Maxj.Manager.build ~depth:10 ~kernel:(Maxj.Idct_maxj.initial_kernel ()) ~ticks_per_op:1 () in
  check int "payload bits" 1024 s.Maxj.Manager.bits_per_op;
  let r = Maxj.Manager.evaluate s in
  (* 15.75e9 / 128 bytes = 123.05 MOPS *)
  check bool "pcie rate" true (abs_float (r.Maxj.Manager.throughput_mops -. 123.05) < 0.05);
  check int "latency adds turnaround" 12 r.Maxj.Manager.latency_ticks

let test_metrics_quality_units () =
  let m =
    {
      Core.Metrics.fmax_mhz = 80.;
      throughput_mops = 10.;
      latency = 24;
      periodicity = 8;
      area = 10_000;
      luts_nodsp = 9_000;
      ffs_nodsp = 1_000;
      luts = 5_000;
      ffs = 1_000;
      dsps = 20;
      ios = 176;
    }
  in
  (* 10 MOPS / 10_000 = 1000 OPS per LUT+FF *)
  check bool "quality units" true
    (abs_float (Core.Metrics.quality m -. 1000.) < 1e-6)

let test_loc_comment_styles () =
  check int "c++ comments" 1 (Core.Loc.count "// x\ncode;\n");
  check int "vhdl comments" 1 (Core.Loc.count "-- x\ncode;\n");
  check int "c block single line" 1 (Core.Loc.count "/* x */\ncode;\n");
  check int "blank heavy" 2 (Core.Loc.count "\n\n a \n\n\n b \n")

let test_design_names () =
  check bool "language names" true
    (Core.Design.language_name Core.Design.Bambu = "C"
    && Core.Design.language_name Core.Design.Vivado_hls = "C");
  check int "seven tools" 7 (List.length Core.Design.all_tools)

let () =
  Alcotest.run "misc"
    [
      ( "hw",
        [
          Alcotest.test_case "bits pp and order" `Quick test_bits_pp_order;
          Alcotest.test_case "sim peeks" `Quick test_sim_peeks;
        ] );
      ( "idct",
        [
          Alcotest.test_case "chen-wang constants" `Quick test_chenwang_constants;
        ] );
      ( "axis",
        [
          Alcotest.test_case "latency measurement" `Quick test_driver_latency_measure;
        ] );
      ( "bsv",
        [
          Alcotest.test_case "urgency arbitration" `Quick test_bsv_urgency_order;
          Alcotest.test_case "aggressive conditions" `Quick test_bsv_aggressive_conditions;
        ] );
      ( "dslx",
        [ Alcotest.test_case "cast semantics" `Quick test_dslx_cast_semantics ] );
      ( "maxj",
        [ Alcotest.test_case "manager arithmetic" `Quick test_manager_arithmetic ] );
      ( "core",
        [
          Alcotest.test_case "quality units" `Quick test_metrics_quality_units;
          Alcotest.test_case "loc comment styles" `Quick test_loc_comment_styles;
          Alcotest.test_case "design names" `Quick test_design_names;
        ] );
    ]
