(* Design-space exploration the XLS way: one knob (pipeline stages), many
   design points.  Prints the Performance x Area frontier of Fig. 1's XLS
   series. *)

let () =
  Format.printf "XLS pipeline-stage sweep (8x8 IDCT behind AXI-Stream)@.@.";
  Format.printf "%8s %10s %12s %10s %10s@." "stages" "fmax MHz" "P MOPS" "A"
    "Q=P/A";
  let best = ref (0, neg_infinity) in
  List.iter
    (fun stages ->
      let d =
        Dslx.Idct_dslx.design ~stages
          ~name:(Printf.sprintf "xls_s%d" stages)
          ()
      in
      let rng = Axis.Block.Rand.create () in
      let mats =
        List.init 3 (fun _ ->
            Idct.Reference.fdct (Axis.Block.Rand.block rng ~lo:(-256) ~hi:255))
      in
      let r = Axis.Driver.run d mats in
      let rep = Hw.Synth.run d in
      let p = rep.Hw.Synth.fmax_mhz /. float_of_int r.Axis.Driver.periodicity in
      let q = p *. 1e6 /. float_of_int rep.Hw.Synth.area in
      if q > snd !best then best := (stages, q);
      Format.printf "%8d %10.1f %12.2f %10d %10.0f@." stages
        rep.Hw.Synth.fmax_mhz p rep.Hw.Synth.area q)
    [ 0; 1; 2; 3; 4; 6; 8; 10; 12; 16 ];
  Format.printf "@.best quality at %d stages (Q = %.0f)@." (fst !best)
    (snd !best)
