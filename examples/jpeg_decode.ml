(* A JPEG/MPEG-flavoured workload (the use case the paper's introduction
   motivates): dequantize a grid of quantized DCT blocks and reconstruct
   the image through the hardware IDCT accelerator, streamed block by
   block over AXI-Stream.  Reports the PSNR of the hardware decode against
   the original image. *)

(* The JPEG Annex K luminance quantization table. *)
let qtable =
  [|
    16; 11; 10; 16; 24; 40; 51; 61;
    12; 12; 14; 19; 26; 58; 60; 55;
    14; 13; 16; 24; 40; 57; 69; 56;
    14; 17; 22; 29; 51; 87; 80; 62;
    18; 22; 37; 56; 68; 109; 103; 77;
    24; 35; 55; 64; 81; 104; 113; 92;
    49; 64; 78; 87; 103; 121; 120; 101;
    72; 92; 95; 98; 112; 100; 103; 99;
  |]

let width = 32
let height = 32
let blocks_x = width / 8
let blocks_y = height / 8

(* A synthetic photograph: smooth gradients plus some texture. *)
let image =
  Array.init (width * height) (fun i ->
      let x = i mod width and y = i / width in
      let v =
        (128. *. (1. +. sin (float_of_int x /. 5.) *. cos (float_of_int y /. 7.)))
        +. (20. *. sin (float_of_int (x * y) /. 40.))
      in
      max 0 (min 255 (int_of_float v)))

let block_of_image bx by =
  let b = Axis.Block.create () in
  for r = 0 to 7 do
    for c = 0 to 7 do
      (* JPEG level shift: samples are centred on zero before the DCT *)
      Axis.Block.set b ~row:r ~col:c
        (image.((((by * 8) + r) * width) + (bx * 8) + c) - 128)
    done
  done;
  b

let round_div a b =
  let q = float_of_int a /. float_of_int b in
  int_of_float (if q >= 0. then floor (q +. 0.5) else ceil (q -. 0.5))

let () =
  (* Encode: forward DCT + quantization (the lossy part). *)
  let encoded =
    List.init (blocks_x * blocks_y) (fun k ->
        let bx = k mod blocks_x and by = k / blocks_x in
        let coeffs = Idct.Reference.fdct (block_of_image bx by) in
        Array.mapi (fun i v -> round_div v qtable.(i)) coeffs)
  in
  (* Decode: dequantize, then the hardware IDCT does the heavy lifting. *)
  let dequantized =
    List.map
      (fun blk ->
        Array.mapi (fun i v -> Axis.Block.clamp_input (v * qtable.(i))) blk)
      encoded
  in
  let accel =
    match (Core.Registry.optimized Core.Design.Verilog).Core.Design.impl with
    | Core.Design.Stream c -> Lazy.force c
    | Core.Design.Pcie _ -> assert false
  in
  let r = Axis.Driver.run accel dequantized in
  Printf.printf "decoded %d blocks in %d cycles (periodicity %d)\n"
    (List.length dequantized) r.Axis.Driver.cycles r.Axis.Driver.periodicity;

  (* Reassemble and score. *)
  let out = Array.make (width * height) 0 in
  List.iteri
    (fun k blk ->
      let bx = k mod blocks_x and by = k / blocks_x in
      for r' = 0 to 7 do
        for c = 0 to 7 do
          out.((((by * 8) + r') * width) + (bx * 8) + c) <-
            max 0 (min 255 (Axis.Block.get blk ~row:r' ~col:c + 128))
        done
      done)
    r.Axis.Driver.outputs;
  let mse =
    Array.fold_left ( + ) 0
      (Array.init (width * height) (fun i ->
           let d = out.(i) - image.(i) in
           d * d))
  in
  let mse = float_of_int mse /. float_of_int (width * height) in
  let psnr = 10. *. log10 (255. *. 255. /. mse) in
  Printf.printf "hardware decode PSNR: %.2f dB (JPEG-quality lossy path)\n" psnr;
  (* The loss must come from quantization, not from the hardware: decode
     the same data in software and compare bit by bit. *)
  let sw = List.map Idct.Chenwang.idct dequantized in
  Printf.printf "hardware matches software decode: %b\n"
    (List.for_all2 Axis.Block.equal sw r.Axis.Driver.outputs);
  assert (psnr > 30.)
