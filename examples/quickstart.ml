(* Quickstart: build an IDCT accelerator, stream a matrix through it in
   cycle-accurate simulation, and read the synthesis report. *)

let () =
  (* 1. Pick a design from the registry: the optimized hand-written
        Verilog (parsed and elaborated from real source text). *)
  let design = Core.Registry.optimized Core.Design.Verilog in
  let circuit =
    match design.Core.Design.impl with
    | Core.Design.Stream c -> Lazy.force c
    | Core.Design.Pcie _ -> assert false
  in

  (* 2. Make a coefficient matrix: forward-DCT a random sample block. *)
  let rng = Axis.Block.Rand.create () in
  let samples = Axis.Block.Rand.block rng ~lo:(-256) ~hi:255 in
  let coeffs = Idct.Reference.fdct samples in

  (* 3. Stream it through the AXI-Stream wrapper, row by row. *)
  let result = Axis.Driver.run circuit [ coeffs ] in
  let out = List.hd result.Axis.Driver.outputs in
  Format.printf "input coefficients:@.%a@.@." Axis.Block.pp coeffs;
  Format.printf "reconstructed samples:@.%a@.@." Axis.Block.pp out;
  Format.printf "bit-true vs. reference model: %b@."
    (Axis.Block.equal out (Idct.Chenwang.idct coeffs));
  Format.printf "latency %d cycles, periodicity %d cycles@."
    result.Axis.Driver.latency result.Axis.Driver.periodicity;

  (* 4. Synthesize for the paper's UltraScale+ device. *)
  let report = Hw.Synth.run circuit in
  Format.printf "@.%a@." Hw.Synth.pp_report report;

  (* 5. Export the design as structural Verilog if you want to read it. *)
  Format.printf "@.emitted Verilog: %d lines@."
    (List.length (String.split_on_char '\n' (Hw.Verilog.emit circuit)))
