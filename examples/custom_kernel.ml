(* Bring your own kernel through the C HLS flow: a saturating
   brighten-and-blend filter over the 64-element block, written in the C
   AST, scheduled into an FSM and wrapped in AXI-Stream automatically. *)

open Chls.Ast

let v x = Var x
let i k = Int k
let ( +: ) a b = Bin (Add, a, b)
let ( *: ) a b = Bin (Mul, a, b)
let ( >>: ) a n = Bin (Shr, a, i n)

let clip_fn =
  {
    fname = "clip9";
    params = [ PScalar ("x", int_t) ];
    ret = Some int_t;
    locals = [];
    arrays = [];
    body =
      [
        Return
          (Cond
             ( Bin (Lt, v "x", i (-256)),
               i (-256),
               Cond (Bin (Gt, v "x", i 255), i 255, v "x") ));
      ];
  }

(* blk[k] = clip((3*blk[k] + blk[k^1] + 2) >> 2) — a horizontal blend. *)
let blend_fn =
  {
    fname = "blend";
    params = [ PArray ("blk", short_t, 64) ];
    ret = None;
    locals = [ ("k", int_t); ("t", int_t) ];
    arrays = [];
    body =
      [
        For
          {
            ivar = "k";
            bound = 64;
            body =
              [
                Assign
                  ( "t",
                    (i 3 *: Load ("blk", v "k"))
                    +: Load ("blk", Bin (Xor, v "k", i 1))
                    +: i 2 );
                Store ("blk", v "k", Call ("clip9", [ v "t" >>: 2 ]));
              ];
          };
      ];
  }

let program = { funcs = [ clip_fn; blend_fn ]; top = "blend" }

let () =
  Format.printf "custom kernel source:@.@.%s@.@." (Chls.Cprint.emit program);
  let circuit =
    Chls.Tool.sequential_circuit ~name:"blend" Chls.Schedule.default_config
      Chls.Transform.default_options program
  in
  (* Software reference via the C interpreter. *)
  let rng = Axis.Block.Rand.create () in
  let input = Axis.Block.Rand.block rng ~lo:(-256) ~hi:255 in
  let expect = Array.copy input in
  ignore (Chls.Ast.interp program "blend" ~args:[ `Arr expect ]);
  let r = Axis.Driver.run circuit [ input ] in
  let out = List.hd r.Axis.Driver.outputs in
  Format.printf "hardware matches the C interpreter: %b@."
    (Axis.Block.equal out expect);
  Format.printf "latency %d cycles (sequential FSM)@." r.Axis.Driver.latency;
  Format.printf "%a@." Hw.Synth.pp_report (Hw.Synth.run circuit)
