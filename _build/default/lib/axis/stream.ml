let lanes = 8
let in_width = 12
let out_width = 9

let s_valid = "s_valid"
let s_ready = "s_ready"
let s_last = "s_last"
let s_data i = Printf.sprintf "s_data%d" i
let m_valid = "m_valid"
let m_ready = "m_ready"
let m_last = "m_last"
let m_data i = Printf.sprintf "m_data%d" i

type ports = {
  s_valid : Hw.Builder.s;
  s_last : Hw.Builder.s;
  s_data : Hw.Builder.s array;
  m_ready : Hw.Builder.s;
}

let declare_inputs ?(in_width = in_width) b =
  let open Hw in
  {
    s_valid = Builder.input b s_valid 1;
    s_last = Builder.input b s_last 1;
    s_data = Array.init lanes (fun i -> Builder.input b (s_data i) in_width);
    m_ready = Builder.input b m_ready 1;
  }

let expose_outputs b ~s_ready:sr ~m_valid:mv ~m_last:ml ~m_data:md =
  let open Hw in
  Builder.output b s_ready sr;
  Builder.output b m_valid mv;
  Builder.output b m_last ml;
  Array.iteri (fun i s -> Builder.output b (m_data i) s) md

let is_wrapped (c : Hw.Netlist.t) =
  let has_in n = List.mem_assoc n c.inputs in
  let has_out n = List.mem_assoc n c.outputs in
  has_in s_valid && has_in s_last && has_in m_ready && has_out s_ready
  && has_out m_valid && has_out m_last
  && List.for_all (fun i -> has_in (s_data i) && has_out (m_data i))
       (List.init lanes Fun.id)
