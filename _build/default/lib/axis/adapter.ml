open Hw

type lane_fn = Builder.t -> Builder.s array -> Builder.s array

let lanes = Stream.lanes
let n2 = lanes * lanes

(* 3-bit counter with enable; returns (value, at_max). *)
let beat_counter b name en =
  let cnt = Builder.reg b ~enable:en ~width:3 name in
  Builder.connect b cnt (Builder.add b cnt (Builder.const b ~width:3 1));
  (cnt, Builder.eq b cnt (Builder.const b ~width:3 7))

(* Note on streaming contract: these adapters run the input deserializer,
   kernel hand-off and output serializer in lockstep frames, so a source
   must not insert gaps *within* a matrix (gaps between matrices and
   arbitrary m_ready back-pressure are fine).  The paper's sequential
   adapters share this property, as does Axis.Driver. *)

let wrap_matrix_kernel ~name ?beat_map ?mid_width ~latency ~kernel () =
  let b = Builder.create name in
  let p = Stream.declare_inputs b in
  let mid_width = Option.value mid_width ~default:Stream.in_width in
  let beat =
    match beat_map with
    | None -> p.Stream.s_data
    | Some f -> f b p.Stream.s_data
  in
  Array.iter
    (fun s ->
      if Builder.width s <> mid_width then
        failwith "wrap_matrix_kernel: beat_map width disagrees with mid_width")
    beat;

  (* Occupancy: [occ] counts matrices that have been handed to the kernel
     and not yet fully drained; two output banks bound it by 2.  [pending]
     counts full output banks awaiting drain. *)
  let occ = Builder.reg b ~width:2 "occ" in
  let pending = Builder.reg b ~width:2 "pending" in
  let credits_ok =
    Builder.lt b ~signed:false occ (Builder.const b ~width:2 2)
  in

  (* --- input side ------------------------------------------------------ *)
  let full = Builder.reg b ~width:1 "full" in
  let present = Builder.and_ b full credits_ok in
  (* A new beat may land in the row the kernel is consuming this very
     cycle: registers capture pre-edge values, so accepting input during
     [present] is safe and keeps the periodicity at eight. *)
  let s_ready = Builder.or_ b (Builder.not_ b full) present in
  let in_fire = Builder.and_ b p.Stream.s_valid s_ready in
  let in_cnt, in_last = beat_counter b "in_cnt" in_fire in
  let last_beat = Builder.and_ b in_fire in_last in
  Builder.connect b full
    (Builder.mux b last_beat (Builder.one b 1)
       (Builder.mux b present (Builder.zero b 1) full));
  let mid =
    Array.init n2 (fun i ->
        let r = i / lanes and c = i mod lanes in
        let en =
          Builder.and_ b in_fire
            (Builder.eq b in_cnt (Builder.const b ~width:3 r))
        in
        let q =
          Builder.reg b ~enable:en ~width:mid_width
            (Printf.sprintf "inb_%d_%d" r c)
        in
        Builder.connect b q beat.(c);
        q)
  in

  (* --- kernel ----------------------------------------------------------- *)
  let result = kernel b mid in
  if Array.length result <> n2 then
    failwith "wrap_matrix_kernel: kernel must return 64 values";
  Array.iter
    (fun s ->
      if Builder.width s <> Stream.out_width then
        failwith "wrap_matrix_kernel: kernel outputs must be 9 bits wide")
    result;
  let rec delay_valid v k =
    if k = 0 then v
    else
      delay_valid (Builder.reg_next b ~name:(Printf.sprintf "vpipe%d" k) v) (k - 1)
  in
  let out_valid = delay_valid present latency in

  (* --- output banks (ping-pong) ----------------------------------------- *)
  let wr_bank = Builder.reg b ~enable:out_valid ~width:1 "wr_bank" in
  Builder.connect b wr_bank (Builder.not_ b wr_bank);
  let bank_regs sel_bit =
    Array.init n2 (fun i ->
        let en =
          Builder.and_ b out_valid
            (Builder.eq b wr_bank (Builder.const b ~width:1 sel_bit))
        in
        let q =
          Builder.reg b ~enable:en ~width:Stream.out_width
            (Printf.sprintf "outb%d_%d" sel_bit i)
        in
        Builder.connect b q result.(i);
        q)
  in
  let bank0 = bank_regs 0 and bank1 = bank_regs 1 in

  (* --- drain ------------------------------------------------------------ *)
  let m_valid =
    Builder.gt b ~signed:false pending (Builder.const b ~width:2 0)
  in
  let m_fire = Builder.and_ b m_valid p.Stream.m_ready in
  let out_cnt, out_last = beat_counter b "out_cnt" m_fire in
  let drain_done = Builder.and_ b m_fire out_last in
  let rd_bank = Builder.reg b ~enable:drain_done ~width:1 "rd_bank" in
  Builder.connect b rd_bank (Builder.not_ b rd_bank);
  let m_data =
    Array.init lanes (fun c ->
        let pick bank =
          Builder.mux_list b out_cnt
            (List.init lanes (fun r -> bank.((r * lanes) + c)))
        in
        Builder.mux b rd_bank (pick bank1) (pick bank0))
  in

  let counter_update q ~inc ~dec =
    let one2 = Builder.const b ~width:2 1 in
    Builder.connect b q
      (Builder.mux b
         (Builder.and_ b inc (Builder.not_ b dec))
         (Builder.add b q one2)
         (Builder.mux b
            (Builder.and_ b dec (Builder.not_ b inc))
            (Builder.sub b q one2)
            q))
  in
  counter_update occ ~inc:present ~dec:drain_done;
  counter_update pending ~inc:out_valid ~dec:drain_done;

  Stream.expose_outputs b ~s_ready ~m_valid
    ~m_last:(Builder.and_ b m_valid out_last)
    ~m_data;
  Builder.finalize b

let wrap_row_col ~name ~row_unit ~mid_width ~col_unit () =
  let b = Builder.create name in
  let p = Stream.declare_inputs b in
  let c3 v = Builder.const b ~width:3 v in

  (* Frame control: stage A collects (one row pass per beat), stage B runs
     one column pass per cycle, stage C drains one row per beat; the three
     stages advance in lockstep on [go], over ping-pong buffers. *)
  let cnt = Builder.reg b ~width:3 "cnt" in
  let at0 = Builder.eq b cnt (c3 0) in
  let at7 = Builder.eq b cnt (c3 7) in
  let a_live = Builder.reg b ~width:1 "a_live" in
  let b_live = Builder.reg b ~width:1 "b_live" in
  let c_live = Builder.reg b ~width:1 "c_live" in
  let collecting = Builder.mux b at0 p.Stream.s_valid a_live in
  let in_ok = Builder.or_ b (Builder.not_ b collecting) p.Stream.s_valid in
  let out_ok = Builder.or_ b (Builder.not_ b c_live) p.Stream.m_ready in
  let any_work =
    Builder.or_ b p.Stream.s_valid
      (Builder.or_ b a_live (Builder.or_ b b_live c_live))
  in
  let go = Builder.and_ b (Builder.and_ b in_ok out_ok) any_work in
  Builder.connect b cnt (Builder.mux b go (Builder.add b cnt (c3 1)) cnt);
  let frame_end = Builder.and_ b go at7 in
  Builder.connect b a_live
    (Builder.mux b
       (Builder.and_ b go at0)
       p.Stream.s_valid
       (Builder.mux b frame_end (Builder.zero b 1) a_live));
  Builder.connect b b_live (Builder.mux b frame_end collecting b_live);
  Builder.connect b c_live (Builder.mux b frame_end b_live c_live);
  let bank = Builder.reg b ~enable:frame_end ~width:1 "bank" in
  Builder.connect b bank (Builder.not_ b bank);

  let s_ready = Builder.and_ b collecting go in
  let in_fire = Builder.and_ b p.Stream.s_valid s_ready in

  (* Stage A: row pass on the incoming beat, into mid[bank]. *)
  let row_res = row_unit b p.Stream.s_data in
  Array.iter
    (fun s ->
      if Builder.width s <> mid_width then
        failwith "wrap_row_col: row_unit width disagrees with mid_width")
    row_res;
  let mid_bank sel_bit =
    Array.init n2 (fun i ->
        let r = i / lanes and c = i mod lanes in
        let en =
          Builder.and_ b in_fire
            (Builder.and_ b
               (Builder.eq b cnt (c3 r))
               (Builder.eq b bank (Builder.const b ~width:1 sel_bit)))
        in
        let q =
          Builder.reg b ~enable:en ~width:mid_width
            (Printf.sprintf "mid%d_%d_%d" sel_bit r c)
        in
        Builder.connect b q row_res.(c);
        q)
  in
  let mid0 = mid_bank 0 and mid1 = mid_bank 1 in

  (* Stage B: column [cnt] of the bank stage A filled last frame. *)
  let mid_col =
    Array.init lanes (fun r ->
        let pick bankregs =
          Builder.mux_list b cnt
            (List.init lanes (fun c -> bankregs.((r * lanes) + c)))
        in
        Builder.mux b bank (pick mid0) (pick mid1))
  in
  let col_res = col_unit b mid_col in
  Array.iter
    (fun s ->
      if Builder.width s <> Stream.out_width then
        failwith "wrap_row_col: col_unit outputs must be 9 bits wide")
    col_res;
  let out_bank sel_bit =
    Array.init n2 (fun i ->
        let r = i / lanes and c = i mod lanes in
        let en =
          Builder.and_ b (Builder.and_ b b_live go)
            (Builder.and_ b
               (Builder.eq b cnt (c3 c))
               (Builder.eq b bank (Builder.const b ~width:1 sel_bit)))
        in
        let q =
          Builder.reg b ~enable:en ~width:Stream.out_width
            (Printf.sprintf "out%d_%d_%d" sel_bit r c)
        in
        Builder.connect b q col_res.(r);
        q)
  in
  let out0 = out_bank 0 and out1 = out_bank 1 in

  (* Stage C: drain row [cnt] of the bank stage B filled last frame. *)
  let m_data =
    Array.init lanes (fun c ->
        let pick bankregs =
          Builder.mux_list b cnt
            (List.init lanes (fun r -> bankregs.((r * lanes) + c)))
        in
        Builder.mux b bank (pick out0) (pick out1))
  in
  let m_valid = Builder.and_ b c_live in_ok in
  Stream.expose_outputs b ~s_ready ~m_valid
    ~m_last:(Builder.and_ b m_valid at7)
    ~m_data;
  Builder.finalize b
