lib/axis/adapter.mli: Hw
