lib/axis/driver.ml: Array Hw Idct List Monitor Netlist Option Printf Sim Stream
