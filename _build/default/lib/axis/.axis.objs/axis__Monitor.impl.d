lib/axis/monitor.ml: Format List Printf Stream
