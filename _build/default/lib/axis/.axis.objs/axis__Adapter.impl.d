lib/axis/adapter.ml: Array Builder Hw List Option Printf Stream
