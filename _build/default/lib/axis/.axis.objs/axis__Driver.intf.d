lib/axis/driver.mli: Hw Idct Monitor
