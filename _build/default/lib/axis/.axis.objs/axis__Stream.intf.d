lib/axis/stream.mli: Hw
