lib/axis/monitor.mli: Format
