lib/axis/stream.ml: Array Builder Fun Hw List Printf
