(** AXI-Stream port conventions used by every wrapped design.

    Data is moved row-by-row: one beat carries one 8-element row.  Because
    the netlist word width is capped at 62 bits, the 96-bit TDATA bus is
    split into eight parallel lanes ([s_data0] .. [s_data7]); the pin count
    and the handshake semantics are unchanged with respect to a single
    96-bit bus.

    Slave (input) side         Master (output) side
    -------------------        --------------------
    in  [s_valid]  1           out [m_valid] 1
    out [s_ready]  1           in  [m_ready] 1
    in  [s_last]   1           out [m_last]  1
    in  [s_data]k  12 (x8)     out [m_data]k 9 (x8)

    A matrix transfer is eight beats; [*_last] marks the eighth. *)

val lanes : int
(** 8 *)

val in_width : int
(** 12 *)

val out_width : int
(** 9 *)

val s_valid : string
val s_ready : string
val s_last : string
val s_data : int -> string
val m_valid : string
val m_ready : string
val m_last : string
val m_data : int -> string

type ports = {
  s_valid : Hw.Builder.s;
  s_last : Hw.Builder.s;
  s_data : Hw.Builder.s array;
  m_ready : Hw.Builder.s;
}
(** Input-side signals of a wrapper under construction. *)

val declare_inputs :
  ?in_width:int -> Hw.Builder.t -> ports
(** Adds the slave-side and [m_ready] input ports to a builder. *)

val expose_outputs :
  Hw.Builder.t ->
  s_ready:Hw.Builder.s ->
  m_valid:Hw.Builder.s ->
  m_last:Hw.Builder.s ->
  m_data:Hw.Builder.s array ->
  unit
(** Adds the master-side and [s_ready] output ports. *)

val is_wrapped : Hw.Netlist.t -> bool
(** True when the circuit exposes the full port convention. *)
