(** AXI-Stream protocol monitor.

    Checks a per-cycle trace of the master-side handshake against the
    protocol rules the paper's IP-library setting relies on:

    - stability: once [m_valid] is asserted with [m_ready] low, [m_valid],
      every data lane and [m_last] must hold unchanged until the beat is
      accepted;
    - framing: [m_last] must be asserted on exactly every eighth accepted
      beat;
    - no spurious last: [m_last] only with [m_valid]. *)

type sample = {
  cycle : int;
  valid : bool;
  ready : bool;
  last : bool;
  data : int array;
}

type violation = { at_cycle : int; rule : string }

val check : sample list -> violation list
(** Samples must be in increasing cycle order. *)

val pp_violation : Format.formatter -> violation -> unit
