(** Row-by-row AXI-Stream interface adapters.

    These generators wrap a computational kernel built with {!Hw.Builder}
    into a circuit obeying the {!Stream} port convention.  They reproduce
    the interface discipline of the paper: matrices enter and leave one
    8-element row per beat, so a matrix transfer occupies eight beats and
    the adapter — not the kernel — bounds the throughput at one operation
    per eight cycles.

    All wrappers tolerate arbitrary [s_valid]/[m_ready] patterns; at full
    throughput they sustain a periodicity of eight cycles. *)

type lane_fn = Hw.Builder.t -> Hw.Builder.s array -> Hw.Builder.s array
(** Combinational transform over an array of signals (built into the same
    circuit). *)

val wrap_matrix_kernel :
  name:string ->
  ?beat_map:lane_fn ->
  ?mid_width:int ->
  latency:int ->
  kernel:lane_fn ->
  unit ->
  Hw.Netlist.t
(** [wrap_matrix_kernel ~name ~latency ~kernel ()] builds:

    deserializer (8 beats) -> [kernel] (64 values in, 64 out) -> serializer.

    [kernel] receives 64 signals in row-major order and must return 64
    signals of width {!Stream.out_width}; it may create internal pipeline
    registers, in which case [latency] is the number of cycles from input
    presentation to output validity (0 for a purely combinational kernel;
    initiation interval must be 1).

    [beat_map] (default identity) is applied combinationally to each
    arriving beat before storage — this is how the single-row-unit designs
    compute the row pass on the fly; [mid_width] is the width of its
    results (default {!Stream.in_width}). *)

val wrap_row_col :
  name:string ->
  row_unit:lane_fn ->
  mid_width:int ->
  col_unit:lane_fn ->
  unit ->
  Hw.Netlist.t
(** The fully-sequential organization (the paper's optimized RTL design):
    one row unit applied per arriving beat, one column unit applied per
    cycle over a ping-pong transpose buffer, one output row per beat.
    Three overlapped 8-cycle phases; latency 24, periodicity 8. *)
