type sample = {
  cycle : int;
  valid : bool;
  ready : bool;
  last : bool;
  data : int array;
}

type violation = { at_cycle : int; rule : string }

let check samples =
  let violations = ref [] in
  let report cycle rule = violations := { at_cycle = cycle; rule } :: !violations in
  let beats = ref 0 in
  let rec scan pending_stall = function
    | [] -> ()
    | s :: rest ->
        (match pending_stall with
        | Some (stalled : sample) ->
            if not s.valid then
              report s.cycle "m_valid deasserted while a beat was stalled"
            else begin
              if s.data <> stalled.data then
                report s.cycle "m_data changed while a beat was stalled";
              if s.last <> stalled.last then
                report s.cycle "m_last changed while a beat was stalled"
            end
        | None -> ());
        if s.last && not s.valid then
          report s.cycle "m_last asserted without m_valid";
        if s.valid && s.ready then begin
          incr beats;
          let should_last = !beats mod Stream.lanes = 0 in
          if s.last && not should_last then
            report s.cycle
              (Printf.sprintf "m_last on beat %d (expected every %dth)" !beats
                 Stream.lanes);
          if should_last && not s.last then
            report s.cycle
              (Printf.sprintf "missing m_last on beat %d" !beats)
        end;
        let stall = if s.valid && not s.ready then Some s else None in
        scan stall rest
  in
  scan None samples;
  List.rev !violations

let pp_violation ppf v =
  Format.fprintf ppf "cycle %d: %s" v.at_cycle v.rule
