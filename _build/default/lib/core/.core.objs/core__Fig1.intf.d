lib/core/fig1.mli: Design
