lib/core/verilog_designs.ml: List Printf String Vlog
