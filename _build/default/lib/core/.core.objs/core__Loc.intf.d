lib/core/loc.mli:
