lib/core/second_kernel.mli: Chls Dslx Hw Idct
