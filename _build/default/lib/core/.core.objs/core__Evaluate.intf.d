lib/core/evaluate.mli: Design Metrics
