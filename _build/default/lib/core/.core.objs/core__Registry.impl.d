lib/core/registry.ml: Bsv Chisel Chls Design Dslx List Listings Loc Maxj Printf Tool_adapters Verilog_designs
