lib/core/listings.ml:
