lib/core/evaluate.ml: Axis Design Format Hw Idct Lazy List Maxj Metrics Printf
