lib/core/registry.mli: Design
