lib/core/table2.ml: Buffer Design Evaluate List Metrics Printf Registry String
