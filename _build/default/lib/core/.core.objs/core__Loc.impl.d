lib/core/loc.ml: List String
