lib/core/fig1.ml: Array Buffer Design Evaluate Float Hashtbl List Metrics Printf Registry String
