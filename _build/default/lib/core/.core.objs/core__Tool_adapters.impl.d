lib/core/tool_adapters.ml:
