lib/core/second_kernel.ml: Array Axis Chisel Chls Dslx Hw List Printf
