lib/core/design.ml: Hw Lazy Maxj
