lib/core/table1.ml: Buffer List Printf String
