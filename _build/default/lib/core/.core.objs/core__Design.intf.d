lib/core/design.mli: Hw Lazy Maxj
