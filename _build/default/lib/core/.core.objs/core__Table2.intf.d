lib/core/table2.mli: Design Metrics
