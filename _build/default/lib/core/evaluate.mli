(** Measurement of a design point, following the paper's procedure:
    synthesize for the target device, simulate a stream of matrices to
    obtain latency and periodicity, and derive [P = f_max / T_P]; the
    normalized area comes from the [maxdsp=0] mapping.

    Every measurement first checks the design bit-true against the
    reference fixed-point IDCT ({!Idct.Chenwang}) and fails loudly on a
    functional mismatch or an AXI-Stream protocol violation. *)

val measure : ?matrices:int -> Design.t -> Metrics.measured
(** [matrices] (default 4) sets the simulated stream length. *)

val check_compliance : ?blocks:int -> Design.t -> bool
(** IEEE 1180-1990 accuracy procedure through the wrapped circuit.
    The default of 500 blocks per condition is about the statistical
    minimum: the per-position mean-error criterion (0.015) needs several
    hundred samples before estimator noise stays under the threshold. *)
