(** Table I — languages and tools under evaluation. *)

type row = {
  language : string;
  paradigm : string;
  tool : string;
  tool_type : string;
  openness : string;
}

val rows : row list
val render : unit -> string
