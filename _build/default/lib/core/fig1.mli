(** Fig. 1 — design-space exploration in the Performance x Area plane.

    One series per tool; each point is one explored configuration
    (Verilog 3, Chisel 3, BSC 26, XLS 19, MaxCompiler 2, Bambu 42,
    Vivado HLS 5 — 100 synthesized circuits). *)

type point = {
  label : string;
  area : int;
  throughput_mops : float;
  fmax_mhz : float;
}

type series = { tool : Design.tool; points : point list }

val compute : ?tools:Design.tool list -> unit -> series list
(** Measures every sweep configuration (cached). *)

val render : ?tools:Design.tool list -> unit -> string
(** Data table plus an ASCII log-log scatter of the plane. *)
