(* The hand-written Verilog baseline designs (the paper's reference
   language).  These are genuine Verilog sources, parsed and elaborated by
   the Vlog front end; the same texts are what the LOC metric counts. *)

(* Chen-Wang constants: W1..W7 and their sums/differences, as literals the
   way the reference C writes them. *)

let row_unit =
  {|
// One row pass of the Chen-Wang 8x8 IDCT, 32-bit arithmetic.
module idct_row (i0, i1, i2, i3, i4, i5, i6, i7,
                 o0, o1, o2, o3, o4, o5, o6, o7);
  input [11:0] i0, i1, i2, i3, i4, i5, i6, i7;
  output [15:0] o0, o1, o2, o3, o4, o5, o6, o7;
  wire [31:0] e0 = {{20{i0[11]}}, i0};
  wire [31:0] e1 = {{20{i1[11]}}, i1};
  wire [31:0] e2 = {{20{i2[11]}}, i2};
  wire [31:0] e3 = {{20{i3[11]}}, i3};
  wire [31:0] e4 = {{20{i4[11]}}, i4};
  wire [31:0] e5 = {{20{i5[11]}}, i5};
  wire [31:0] e6 = {{20{i6[11]}}, i6};
  wire [31:0] e7 = {{20{i7[11]}}, i7};
  wire [31:0] x0 = (e0 << 11) + 32'd128;
  wire [31:0] x1 = e4 << 11;
  wire [31:0] x2 = e6;
  wire [31:0] x3 = e2;
  wire [31:0] x4 = e1;
  wire [31:0] x5 = e7;
  wire [31:0] x6 = e5;
  wire [31:0] x7 = e3;
  // first stage
  wire [31:0] a8 = 32'd565 * (x4 + x5);
  wire [31:0] a4 = a8 + 32'd2276 * x4;
  wire [31:0] a5 = a8 - 32'd3406 * x5;
  wire [31:0] b8 = 32'd2408 * (x6 + x7);
  wire [31:0] a6 = b8 - 32'd799 * x6;
  wire [31:0] a7 = b8 - 32'd4017 * x7;
  // second stage
  wire [31:0] c8 = x0 + x1;
  wire [31:0] c0 = x0 - x1;
  wire [31:0] c1 = 32'd1108 * (x3 + x2);
  wire [31:0] c2 = c1 - 32'd3784 * x2;
  wire [31:0] c3 = c1 + 32'd1568 * x3;
  wire [31:0] d1 = a4 + a6;
  wire [31:0] d4 = a4 - a6;
  wire [31:0] d6 = a5 + a7;
  wire [31:0] d5 = a5 - a7;
  // third stage
  wire [31:0] f7 = c8 + c3;
  wire [31:0] f8 = c8 - c3;
  wire [31:0] f3 = c0 + c2;
  wire [31:0] f0 = c0 - c2;
  wire [31:0] f2 = (32'd181 * (d4 + d5) + 32'd128) >>> 8;
  wire [31:0] f4 = (32'd181 * (d4 - d5) + 32'd128) >>> 8;
  // fourth stage
  assign o0 = (f7 + d1) >>> 8;
  assign o1 = (f3 + f2) >>> 8;
  assign o2 = (f0 + f4) >>> 8;
  assign o3 = (f8 + d6) >>> 8;
  assign o4 = (f8 - d6) >>> 8;
  assign o5 = (f0 - f4) >>> 8;
  assign o6 = (f3 - f2) >>> 8;
  assign o7 = (f7 - d1) >>> 8;
endmodule
|}

let col_unit =
  {|
// One column pass, with rounding and clipping to [-256, 255].
module idct_col (i0, i1, i2, i3, i4, i5, i6, i7,
                 o0, o1, o2, o3, o4, o5, o6, o7);
  input [15:0] i0, i1, i2, i3, i4, i5, i6, i7;
  output [8:0] o0, o1, o2, o3, o4, o5, o6, o7;
  wire [31:0] e0 = {{16{i0[15]}}, i0};
  wire [31:0] e1 = {{16{i1[15]}}, i1};
  wire [31:0] e2 = {{16{i2[15]}}, i2};
  wire [31:0] e3 = {{16{i3[15]}}, i3};
  wire [31:0] e4 = {{16{i4[15]}}, i4};
  wire [31:0] e5 = {{16{i5[15]}}, i5};
  wire [31:0] e6 = {{16{i6[15]}}, i6};
  wire [31:0] e7 = {{16{i7[15]}}, i7};
  wire [31:0] x0 = (e0 << 8) + 32'd8192;
  wire [31:0] x1 = e4 << 8;
  wire [31:0] x2 = e6;
  wire [31:0] x3 = e2;
  wire [31:0] x4 = e1;
  wire [31:0] x5 = e7;
  wire [31:0] x6 = e5;
  wire [31:0] x7 = e3;
  // first stage
  wire [31:0] a8 = 32'd565 * (x4 + x5) + 32'd4;
  wire [31:0] a4 = (a8 + 32'd2276 * x4) >>> 3;
  wire [31:0] a5 = (a8 - 32'd3406 * x5) >>> 3;
  wire [31:0] b8 = 32'd2408 * (x6 + x7) + 32'd4;
  wire [31:0] a6 = (b8 - 32'd799 * x6) >>> 3;
  wire [31:0] a7 = (b8 - 32'd4017 * x7) >>> 3;
  // second stage
  wire [31:0] c8 = x0 + x1;
  wire [31:0] c0 = x0 - x1;
  wire [31:0] c1 = 32'd1108 * (x3 + x2) + 32'd4;
  wire [31:0] c2 = (c1 - 32'd3784 * x2) >>> 3;
  wire [31:0] c3 = (c1 + 32'd1568 * x3) >>> 3;
  wire [31:0] d1 = a4 + a6;
  wire [31:0] d4 = a4 - a6;
  wire [31:0] d6 = a5 + a7;
  wire [31:0] d5 = a5 - a7;
  // third stage
  wire [31:0] f7 = c8 + c3;
  wire [31:0] f8 = c8 - c3;
  wire [31:0] f3 = c0 + c2;
  wire [31:0] f0 = c0 - c2;
  wire [31:0] f2 = (32'd181 * (d4 + d5) + 32'd128) >>> 8;
  wire [31:0] f4 = (32'd181 * (d4 - d5) + 32'd128) >>> 8;
  // fourth stage, with clipping
  wire [31:0] t0 = (f7 + d1) >>> 14;
  wire [31:0] t1 = (f3 + f2) >>> 14;
  wire [31:0] t2 = (f0 + f4) >>> 14;
  wire [31:0] t3 = (f8 + d6) >>> 14;
  wire [31:0] t4 = (f8 - d6) >>> 14;
  wire [31:0] t5 = (f0 - f4) >>> 14;
  wire [31:0] t6 = (f3 - f2) >>> 14;
  wire [31:0] t7 = (f7 - d1) >>> 14;
  assign o0 = $signed(t0) < $signed(-32'd256) ? 9'd256 : ($signed(t0) > $signed(32'd255) ? 9'd255 : t0[8:0]);
  assign o1 = $signed(t1) < $signed(-32'd256) ? 9'd256 : ($signed(t1) > $signed(32'd255) ? 9'd255 : t1[8:0]);
  assign o2 = $signed(t2) < $signed(-32'd256) ? 9'd256 : ($signed(t2) > $signed(32'd255) ? 9'd255 : t2[8:0]);
  assign o3 = $signed(t3) < $signed(-32'd256) ? 9'd256 : ($signed(t3) > $signed(32'd255) ? 9'd255 : t3[8:0]);
  assign o4 = $signed(t4) < $signed(-32'd256) ? 9'd256 : ($signed(t4) > $signed(32'd255) ? 9'd255 : t4[8:0]);
  assign o5 = $signed(t5) < $signed(-32'd256) ? 9'd256 : ($signed(t5) > $signed(32'd255) ? 9'd255 : t5[8:0]);
  assign o6 = $signed(t6) < $signed(-32'd256) ? 9'd256 : ($signed(t6) > $signed(32'd255) ? 9'd255 : t6[8:0]);
  assign o7 = $signed(t7) < $signed(-32'd256) ? 9'd256 : ($signed(t7) > $signed(32'd255) ? 9'd255 : t7[8:0]);
endmodule
|}

(* Row-wide holding registers used by the stream adapters. *)
let buffers =
  {|
// An 8-lane register row with load enable (12-bit lanes).
module row12 (clk, rst, en, d0, d1, d2, d3, d4, d5, d6, d7,
              q0, q1, q2, q3, q4, q5, q6, q7);
  input clk, rst, en;
  input [11:0] d0, d1, d2, d3, d4, d5, d6, d7;
  output [11:0] q0, q1, q2, q3, q4, q5, q6, q7;
  reg [11:0] q0, q1, q2, q3, q4, q5, q6, q7;
  always @(posedge clk)
    if (rst) begin
      q0 <= 12'd0; q1 <= 12'd0; q2 <= 12'd0; q3 <= 12'd0;
      q4 <= 12'd0; q5 <= 12'd0; q6 <= 12'd0; q7 <= 12'd0;
    end else if (en) begin
      q0 <= d0; q1 <= d1; q2 <= d2; q3 <= d3;
      q4 <= d4; q5 <= d5; q6 <= d6; q7 <= d7;
    end
endmodule

// An 8-lane register row with load enable (9-bit lanes).
module row9 (clk, rst, en, d0, d1, d2, d3, d4, d5, d6, d7,
             q0, q1, q2, q3, q4, q5, q6, q7);
  input clk, rst, en;
  input [8:0] d0, d1, d2, d3, d4, d5, d6, d7;
  output [8:0] q0, q1, q2, q3, q4, q5, q6, q7;
  reg [8:0] q0, q1, q2, q3, q4, q5, q6, q7;
  always @(posedge clk)
    if (rst) begin
      q0 <= 9'd0; q1 <= 9'd0; q2 <= 9'd0; q3 <= 9'd0;
      q4 <= 9'd0; q5 <= 9'd0; q6 <= 9'd0; q7 <= 9'd0;
    end else if (en) begin
      q0 <= d0; q1 <= d1; q2 <= d2; q3 <= d3;
      q4 <= d4; q5 <= d5; q6 <= d6; q7 <= d7;
    end
endmodule
|}

(* Balanced 8:1 selection (what a [case] statement synthesizes to). *)
let mux8 sel name_of =
  let leaf i = name_of i in
  Printf.sprintf
    "%s[2] ? (%s[1] ? (%s[0] ? %s : %s) : (%s[0] ? %s : %s)) : (%s[1] ? (%s[0] ? %s : %s) : (%s[0] ? %s : %s))"
    sel sel sel (leaf 7) (leaf 6) sel (leaf 5) (leaf 4)
    sel sel (leaf 3) (leaf 2) sel (leaf 1) (leaf 0)

(* Shared port list of the stream tops. *)
let top_ports =
  "clk, rst, s_valid, s_last, s_data0, s_data1, s_data2, s_data3, s_data4, \
   s_data5, s_data6, s_data7, m_ready, s_ready, m_valid, m_last, m_data0, \
   m_data1, m_data2, m_data3, m_data4, m_data5, m_data6, m_data7"

let top_port_decls =
  {|  input clk, rst, s_valid, s_last, m_ready;
  input [11:0] s_data0, s_data1, s_data2, s_data3, s_data4, s_data5, s_data6, s_data7;
  output s_ready, m_valid, m_last;
  output [8:0] m_data0, m_data1, m_data2, m_data3, m_data4, m_data5, m_data6, m_data7;|}

(* Double-buffered output side shared by the initial and 1-row designs:
   control counters, two banks of row registers, drain muxes. *)
let output_side =
  {|  // capture into the bank selected by wr_bank, one matrix per present
  always @(posedge clk) if (rst) wr_bank <= 1'd0; else if (present) wr_bank <= ~wr_bank;
  always @(posedge clk) if (rst) rd_bank <= 1'd0; else if (drain_done) rd_bank <= ~rd_bank;
  always @(posedge clk)
    if (rst) occ <= 2'd0;
    else if (present & ~drain_done) occ <= occ + 2'd1;
    else if (drain_done & ~present) occ <= occ - 2'd1;
  always @(posedge clk)
    if (rst) pending <= 2'd0;
    else if (present & ~drain_done) pending <= pending + 2'd1;
    else if (drain_done & ~present) pending <= pending - 2'd1;
  assign m_valid = pending != 2'd0;
  wire m_fire = m_valid & m_ready;
  wire drain_done = m_fire & (out_cnt == 3'd7);
  assign m_last = m_valid & (out_cnt == 3'd7);
  always @(posedge clk) if (rst) out_cnt <= 3'd0; else if (m_fire) out_cnt <= out_cnt + 3'd1;|}

let bank_instance bank row =
  Printf.sprintf
    "  row9 ob%d_%d (.clk(clk), .rst(rst), .en(present & (wr_bank == 1'd%d)), \
     .d0(y0_%d), .d1(y1_%d), .d2(y2_%d), .d3(y3_%d), .d4(y4_%d), .d5(y5_%d), \
     .d6(y6_%d), .d7(y7_%d), .q0(ob%dr%d_0), .q1(ob%dr%d_1), .q2(ob%dr%d_2), \
     .q3(ob%dr%d_3), .q4(ob%dr%d_4), .q5(ob%dr%d_5), .q6(ob%dr%d_6), .q7(ob%dr%d_7));"
    bank row bank row row row row row row row row
    bank row bank row bank row bank row bank row bank row bank row bank row

let drain_mux lane =
  let sel bank =
    mux8 "out_cnt" (fun r -> Printf.sprintf "ob%dr%d_%d" bank r lane)
  in
  Printf.sprintf
    "  assign m_data%d = rd_bank ? (%s) : (%s);" lane (sel 1) (sel 0)

let bank_wires bank =
  Printf.sprintf "  wire [8:0] %s;"
    (String.concat ", "
       (List.concat
          (List.init 8 (fun r ->
               List.init 8 (fun c -> Printf.sprintf "ob%dr%d_%d" bank r c)))))

(* ------------------------------------------------------------------ *)
(* Initial design: 8 row units + 8 column units, combinational kernel  *)
(* ------------------------------------------------------------------ *)

let initial_top =
  let row_buf r =
    Printf.sprintf
      "  row12 ib%d (.clk(clk), .rst(rst), .en(in_fire & (in_cnt == 3'd%d)), \
       .d0(s_data0), .d1(s_data1), .d2(s_data2), .d3(s_data3), .d4(s_data4), \
       .d5(s_data5), .d6(s_data6), .d7(s_data7), .q0(r%d_0), .q1(r%d_1), \
       .q2(r%d_2), .q3(r%d_3), .q4(r%d_4), .q5(r%d_5), .q6(r%d_6), .q7(r%d_7));"
      r r r r r r r r r r
  in
  let row_unit_inst r =
    Printf.sprintf
      "  idct_row u_row%d (.i0(r%d_0), .i1(r%d_1), .i2(r%d_2), .i3(r%d_3), \
       .i4(r%d_4), .i5(r%d_5), .i6(r%d_6), .i7(r%d_7), .o0(w%d_0), .o1(w%d_1), \
       .o2(w%d_2), .o3(w%d_3), .o4(w%d_4), .o5(w%d_5), .o6(w%d_6), .o7(w%d_7));"
      r r r r r r r r r r r r r r r r r
  in
  let col_unit_inst c =
    Printf.sprintf
      "  idct_col u_col%d (.i0(w0_%d), .i1(w1_%d), .i2(w2_%d), .i3(w3_%d), \
       .i4(w4_%d), .i5(w5_%d), .i6(w6_%d), .i7(w7_%d), .o0(y%d_0), .o1(y%d_1), \
       .o2(y%d_2), .o3(y%d_3), .o4(y%d_4), .o5(y%d_5), .o6(y%d_6), .o7(y%d_7));"
      c c c c c c c c c c c c c c c c c
  in
  let wires prefix width =
    Printf.sprintf "  wire [%d:0] %s;" (width - 1)
      (String.concat ", "
         (List.concat
            (List.init 8 (fun a ->
                 List.init 8 (fun b -> Printf.sprintf "%s%d_%d" prefix a b)))))
  in
  String.concat "\n"
    ([
       "module idct_v_initial (" ^ top_ports ^ ");";
       top_port_decls;
       "  reg [2:0] in_cnt, out_cnt;";
       "  reg full, wr_bank, rd_bank;";
       "  reg [1:0] occ, pending;";
       "  wire present = full & (occ < 2'd2);";
       "  assign s_ready = ~full | present;";
       "  wire in_fire = s_valid & s_ready;";
       "  wire last_beat = in_fire & (in_cnt == 3'd7);";
       "  always @(posedge clk) if (rst) in_cnt <= 3'd0; else if (in_fire) in_cnt <= in_cnt + 3'd1;";
       "  always @(posedge clk) if (rst) full <= 1'd0; else if (last_beat) full <= 1'd1; else if (present) full <= 1'd0;";
       wires "r" 12;
       wires "w" 16;
       wires "y" 9;
     ]
    @ List.init 8 row_buf
    @ List.init 8 row_unit_inst
    @ List.init 8 col_unit_inst
    @ [ bank_wires 0; bank_wires 1 ]
    @ List.init 2 (fun b -> String.concat "\n" (List.init 8 (bank_instance b)))
    @ [ output_side ]
    @ List.init 8 drain_mux
    @ [ "endmodule" ])

let initial_source =
  String.concat "\n" [ row_unit; col_unit; buffers; initial_top ]

let initial_circuit () =
  Vlog.Elaborate.circuit_of_string ~top:"idct_v_initial" initial_source

(* ------------------------------------------------------------------ *)
(* One row unit + 8 column units                                        *)
(* ------------------------------------------------------------------ *)

let row16_buffer =
  {|
// An 8-lane register row with load enable (16-bit lanes).
module row16 (clk, rst, en, d0, d1, d2, d3, d4, d5, d6, d7,
              q0, q1, q2, q3, q4, q5, q6, q7);
  input clk, rst, en;
  input [15:0] d0, d1, d2, d3, d4, d5, d6, d7;
  output [15:0] q0, q1, q2, q3, q4, q5, q6, q7;
  reg [15:0] q0, q1, q2, q3, q4, q5, q6, q7;
  always @(posedge clk)
    if (rst) begin
      q0 <= 16'd0; q1 <= 16'd0; q2 <= 16'd0; q3 <= 16'd0;
      q4 <= 16'd0; q5 <= 16'd0; q6 <= 16'd0; q7 <= 16'd0;
    end else if (en) begin
      q0 <= d0; q1 <= d1; q2 <= d2; q3 <= d3;
      q4 <= d4; q5 <= d5; q6 <= d6; q7 <= d7;
    end
endmodule
|}

let row8col_top =
  let mid_buf r =
    Printf.sprintf
      "  row16 mb%d (.clk(clk), .rst(rst), .en(in_fire & (in_cnt == 3'd%d)), \
       .d0(rr_0), .d1(rr_1), .d2(rr_2), .d3(rr_3), .d4(rr_4), .d5(rr_5), \
       .d6(rr_6), .d7(rr_7), .q0(w%d_0), .q1(w%d_1), .q2(w%d_2), .q3(w%d_3), \
       .q4(w%d_4), .q5(w%d_5), .q6(w%d_6), .q7(w%d_7));"
      r r r r r r r r r r
  in
  let col_unit_inst c =
    Printf.sprintf
      "  idct_col u_col%d (.i0(w0_%d), .i1(w1_%d), .i2(w2_%d), .i3(w3_%d), \
       .i4(w4_%d), .i5(w5_%d), .i6(w6_%d), .i7(w7_%d), .o0(y%d_0), .o1(y%d_1), \
       .o2(y%d_2), .o3(y%d_3), .o4(y%d_4), .o5(y%d_5), .o6(y%d_6), .o7(y%d_7));"
      c c c c c c c c c c c c c c c c c
  in
  let wires prefix width =
    Printf.sprintf "  wire [%d:0] %s;" (width - 1)
      (String.concat ", "
         (List.concat
            (List.init 8 (fun a ->
                 List.init 8 (fun b -> Printf.sprintf "%s%d_%d" prefix a b)))))
  in
  String.concat "\n"
    ([
       "module idct_v_row8col (" ^ top_ports ^ ");";
       top_port_decls;
       "  reg [2:0] in_cnt, out_cnt;";
       "  reg full, wr_bank, rd_bank;";
       "  reg [1:0] occ, pending;";
       "  wire present = full & (occ < 2'd2);";
       "  assign s_ready = ~full | present;";
       "  wire in_fire = s_valid & s_ready;";
       "  wire last_beat = in_fire & (in_cnt == 3'd7);";
       "  always @(posedge clk) if (rst) in_cnt <= 3'd0; else if (in_fire) in_cnt <= in_cnt + 3'd1;";
       "  always @(posedge clk) if (rst) full <= 1'd0; else if (last_beat) full <= 1'd1; else if (present) full <= 1'd0;";
       "  // single row unit applied to the incoming beat";
       "  wire [15:0] rr_0, rr_1, rr_2, rr_3, rr_4, rr_5, rr_6, rr_7;";
       "  idct_row u_row (.i0(s_data0), .i1(s_data1), .i2(s_data2), \
        .i3(s_data3), .i4(s_data4), .i5(s_data5), .i6(s_data6), .i7(s_data7), \
        .o0(rr_0), .o1(rr_1), .o2(rr_2), .o3(rr_3), .o4(rr_4), .o5(rr_5), \
        .o6(rr_6), .o7(rr_7));";
       wires "w" 16;
       wires "y" 9;
     ]
    @ List.init 8 mid_buf
    @ List.init 8 col_unit_inst
    @ [ bank_wires 0; bank_wires 1 ]
    @ List.init 2 (fun b -> String.concat "\n" (List.init 8 (bank_instance b)))
    @ [ output_side ]
    @ List.init 8 drain_mux
    @ [ "endmodule" ])

let row8col_source =
  String.concat "\n" [ row_unit; col_unit; row16_buffer; buffers; row8col_top ]

let row8col_circuit () =
  Vlog.Elaborate.circuit_of_string ~top:"idct_v_row8col" row8col_source

(* ------------------------------------------------------------------ *)
(* One row unit + one column unit (the paper's optimized design)        *)
(* ------------------------------------------------------------------ *)

let lane9_buffer =
  {|
// A 9-bit x8 row register written one lane at a time.
module lane9 (clk, rst, en, sel, d, q0, q1, q2, q3, q4, q5, q6, q7);
  input clk, rst, en;
  input [2:0] sel;
  input [8:0] d;
  output [8:0] q0, q1, q2, q3, q4, q5, q6, q7;
  reg [8:0] q0, q1, q2, q3, q4, q5, q6, q7;
  always @(posedge clk)
    if (rst) begin
      q0 <= 9'd0; q1 <= 9'd0; q2 <= 9'd0; q3 <= 9'd0;
      q4 <= 9'd0; q5 <= 9'd0; q6 <= 9'd0; q7 <= 9'd0;
    end else if (en) begin
      if (sel == 3'd0) q0 <= d;
      if (sel == 3'd1) q1 <= d;
      if (sel == 3'd2) q2 <= d;
      if (sel == 3'd3) q3 <= d;
      if (sel == 3'd4) q4 <= d;
      if (sel == 3'd5) q5 <= d;
      if (sel == 3'd6) q6 <= d;
      if (sel == 3'd7) q7 <= d;
    end
endmodule
|}

let rowcol_top =
  let mid_buf bank r =
    Printf.sprintf
      "  row16 mb%d_%d (.clk(clk), .rst(rst), .en(in_fire & (cnt == 3'd%d) & \
       (bank == 1'd%d)), .d0(rr_0), .d1(rr_1), .d2(rr_2), .d3(rr_3), \
       .d4(rr_4), .d5(rr_5), .d6(rr_6), .d7(rr_7), .q0(w%d_%d_0), \
       .q1(w%d_%d_1), .q2(w%d_%d_2), .q3(w%d_%d_3), .q4(w%d_%d_4), \
       .q5(w%d_%d_5), .q6(w%d_%d_6), .q7(w%d_%d_7));"
      bank r r bank bank r bank r bank r bank r bank r bank r bank r bank r
  in
  let mid_wires bank =
    Printf.sprintf "  wire [15:0] %s;"
      (String.concat ", "
         (List.concat
            (List.init 8 (fun r ->
                 List.init 8 (fun c -> Printf.sprintf "w%d_%d_%d" bank r c)))))
  in
  (* Column [cnt] of the bank written last frame. *)
  let col_sel r =
    let pick bank = mux8 "cnt" (fun c -> Printf.sprintf "w%d_%d_%d" bank r c) in
    Printf.sprintf "  wire [15:0] ci_%d = bank ? (%s) : (%s);" r (pick 0) (pick 1)
  in
  let out_buf bank r =
    Printf.sprintf
      "  lane9 ob%d_%d (.clk(clk), .rst(rst), .en(b_live & go & (bank == 1'd%d)), \
       .sel(cnt), .d(cy_%d), .q0(ob%dr%d_0), .q1(ob%dr%d_1), .q2(ob%dr%d_2), \
       .q3(ob%dr%d_3), .q4(ob%dr%d_4), .q5(ob%dr%d_5), .q6(ob%dr%d_6), .q7(ob%dr%d_7));"
      bank r bank r bank r bank r bank r bank r bank r bank r bank r bank r
  in
  let drain_mux_rc lane =
    let pick bank = mux8 "cnt" (fun r -> Printf.sprintf "ob%dr%d_%d" bank r lane) in
    Printf.sprintf "  assign m_data%d = bank ? (%s) : (%s);" lane (pick 0) (pick 1)
  in
  String.concat "\n"
    ([
       "module idct_v_rowcol (" ^ top_ports ^ ");";
       top_port_decls;
       "  // three 8-cycle phases in lockstep: collect+row pass, column pass, drain";
       "  reg [2:0] cnt;";
       "  reg a_live, b_live, c_live, bank;";
       "  wire at0 = cnt == 3'd0;";
       "  wire at7 = cnt == 3'd7;";
       "  wire collecting = at0 ? s_valid : a_live;";
       "  wire in_ok = ~collecting | s_valid;";
       "  wire out_ok = ~c_live | m_ready;";
       "  wire any_work = s_valid | a_live | b_live | c_live;";
       "  wire go = in_ok & out_ok & any_work;";
       "  wire frame_end = go & at7;";
       "  always @(posedge clk) if (rst) cnt <= 3'd0; else if (go) cnt <= cnt + 3'd1;";
       "  always @(posedge clk) if (rst) a_live <= 1'd0; else if (go & at0) a_live <= s_valid; else if (frame_end) a_live <= 1'd0;";
       "  always @(posedge clk) if (rst) b_live <= 1'd0; else if (frame_end) b_live <= collecting;";
       "  always @(posedge clk) if (rst) c_live <= 1'd0; else if (frame_end) c_live <= b_live;";
       "  always @(posedge clk) if (rst) bank <= 1'd0; else if (frame_end) bank <= ~bank;";
       "  assign s_ready = collecting & go;";
       "  wire in_fire = s_valid & s_ready;";
       "  // stage A: the single row unit processes the incoming beat";
       "  wire [15:0] rr_0, rr_1, rr_2, rr_3, rr_4, rr_5, rr_6, rr_7;";
       "  idct_row u_row (.i0(s_data0), .i1(s_data1), .i2(s_data2), \
        .i3(s_data3), .i4(s_data4), .i5(s_data5), .i6(s_data6), .i7(s_data7), \
        .o0(rr_0), .o1(rr_1), .o2(rr_2), .o3(rr_3), .o4(rr_4), .o5(rr_5), \
        .o6(rr_6), .o7(rr_7));";
       mid_wires 0;
       mid_wires 1;
     ]
    @ List.concat (List.init 2 (fun b -> List.init 8 (mid_buf b)))
    @ List.init 8 col_sel
    @ [
        "  // stage B: the single column unit processes column [cnt]";
        "  wire [8:0] cy_0, cy_1, cy_2, cy_3, cy_4, cy_5, cy_6, cy_7;";
        "  idct_col u_col (.i0(ci_0), .i1(ci_1), .i2(ci_2), .i3(ci_3), \
         .i4(ci_4), .i5(ci_5), .i6(ci_6), .i7(ci_7), .o0(cy_0), .o1(cy_1), \
         .o2(cy_2), .o3(cy_3), .o4(cy_4), .o5(cy_5), .o6(cy_6), .o7(cy_7));";
        bank_wires 0;
        bank_wires 1;
      ]
    @ List.concat (List.init 2 (fun b -> List.init 8 (out_buf b)))
    @ [
        "  // stage C: drain row [cnt] of the other bank";
        "  assign m_valid = c_live & in_ok;";
        "  assign m_last = m_valid & at7;";
      ]
    @ List.init 8 drain_mux_rc
    @ [ "endmodule" ])

let rowcol_source =
  String.concat "\n"
    [ row_unit; col_unit; row16_buffer; lane9_buffer; rowcol_top ]

let rowcol_circuit () =
  Vlog.Elaborate.circuit_of_string ~top:"idct_v_rowcol" rowcol_source
