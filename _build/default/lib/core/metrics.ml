type measured = {
  fmax_mhz : float;
  throughput_mops : float;
  latency : int;
  periodicity : int;
  area : int;
  luts_nodsp : int;
  ffs_nodsp : int;
  luts : int;
  ffs : int;
  dsps : int;
  ios : int;
}

let quality m = m.throughput_mops *. 1e6 /. float_of_int m.area

let automation ~verilog_loc ~loc =
  100. *. float_of_int (verilog_loc - loc) /. float_of_int verilog_loc

let controllability ~best ~verilog_best = 100. *. best /. verilog_best

let flexibility ~best ~initial ~delta_loc =
  if delta_loc = 0 then 0. else (best -. initial) /. float_of_int delta_loc

let pp_measured ppf m =
  Format.fprintf ppf
    "f=%.2fMHz P=%.2fMOPS T_L=%d T_P=%d A=%d (LUT*=%d FF*=%d LUT=%d FF=%d DSP=%d IO=%d)"
    m.fmax_mhz m.throughput_mops m.latency m.periodicity m.area m.luts_nodsp
    m.ffs_nodsp m.luts m.ffs m.dsps m.ios
