let test_matrices n =
  let rng = Idct.Block.Rand.create ~seed:7 () in
  List.init n (fun _ ->
      Idct.Reference.fdct (Idct.Block.Rand.block rng ~lo:(-256) ~hi:255))

let measure ?(matrices = 4) (d : Design.t) : Metrics.measured =
  match d.Design.impl with
  | Design.Stream circuit ->
      let circuit = Lazy.force circuit in
      let mats = test_matrices matrices in
      let expected = List.map Idct.Chenwang.idct mats in
      let r = Axis.Driver.run circuit mats in
      if not (List.for_all2 Idct.Block.equal r.Axis.Driver.outputs expected)
      then
        failwith
          (Printf.sprintf "design %s/%s is not bit-true"
             (Design.tool_name d.Design.tool)
             d.Design.label);
      (match r.Axis.Driver.violations with
      | [] -> ()
      | v :: _ ->
          failwith
            (Format.asprintf "design %s/%s violates AXI-Stream: %a"
               (Design.tool_name d.Design.tool)
               d.Design.label Axis.Monitor.pp_violation v));
      let rep = Hw.Synth.run circuit in
      {
        Metrics.fmax_mhz = rep.Hw.Synth.fmax_mhz;
        throughput_mops =
          rep.Hw.Synth.fmax_mhz /. float_of_int r.Axis.Driver.periodicity;
        latency = r.Axis.Driver.latency;
        periodicity = r.Axis.Driver.periodicity;
        area = rep.Hw.Synth.area;
        luts_nodsp = rep.Hw.Synth.luts_nodsp;
        ffs_nodsp = rep.Hw.Synth.ffs_nodsp;
        luts = rep.Hw.Synth.luts;
        ffs = rep.Hw.Synth.ffs;
        dsps = rep.Hw.Synth.dsps;
        ios = rep.Hw.Synth.ios;
      }
  | Design.Pcie system ->
      let system = Lazy.force system in
      let r = Maxj.Manager.evaluate system in
      let rep = Hw.Synth.run system.Maxj.Manager.kernel in
      {
        Metrics.fmax_mhz = r.Maxj.Manager.fmax_mhz;
        throughput_mops = r.Maxj.Manager.throughput_mops;
        latency = r.Maxj.Manager.latency_ticks;
        periodicity = system.Maxj.Manager.ticks_per_op;
        area = rep.Hw.Synth.area;
        luts_nodsp = rep.Hw.Synth.luts_nodsp;
        ffs_nodsp = rep.Hw.Synth.ffs_nodsp;
        luts = rep.Hw.Synth.luts;
        ffs = rep.Hw.Synth.ffs;
        dsps = rep.Hw.Synth.dsps;
        ios = Maxj.Manager.pcie_pins;
      }

let check_compliance ?(blocks = 500) (d : Design.t) =
  match d.Design.impl with
  | Design.Stream circuit ->
      let circuit = Lazy.force circuit in
      let dut blk = Axis.Driver.transform circuit blk in
      Idct.Ieee1180.compliant ~blocks dut
  | Design.Pcie _ ->
      (* The MaxJ kernels are checked by their own stream simulators. *)
      let mats = test_matrices blocks in
      let got = Maxj.Idct_maxj.simulate_initial mats in
      List.for_all2 Idct.Block.equal got (List.map Idct.Chenwang.idct mats)
