type point = {
  label : string;
  area : int;
  throughput_mops : float;
  fmax_mhz : float;
}

type series = { tool : Design.tool; points : point list }

let cache : (Design.tool, series) Hashtbl.t = Hashtbl.create 8

let series_of tool =
  match Hashtbl.find_opt cache tool with
  | Some s -> s
  | None ->
      let points =
        List.map
          (fun d ->
            let m = Evaluate.measure ~matrices:3 d in
            {
              label = d.Design.label;
              area = m.Metrics.area;
              throughput_mops = m.Metrics.throughput_mops;
              fmax_mhz = m.Metrics.fmax_mhz;
            })
          (Registry.sweep tool)
      in
      let s = { tool; points } in
      Hashtbl.replace cache tool s;
      s

let compute ?(tools = Design.all_tools) () = List.map series_of tools

let glyph = function
  | Design.Verilog -> 'V'
  | Design.Chisel -> 'C'
  | Design.Bsv -> 'B'
  | Design.Dslx -> 'X'
  | Design.Maxj -> 'M'
  | Design.Bambu -> 'b'
  | Design.Vivado_hls -> 'h'

let render ?tools () =
  let series = compute ?tools () in
  let buf = Buffer.create 4096 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  (* Data listing. *)
  List.iter
    (fun s ->
      pr "%s (%s, %d configurations):\n"
        (Design.language_name s.tool)
        (Design.tool_name s.tool)
        (List.length s.points);
      List.iter
        (fun p ->
          pr "  %-34s A=%7d  P=%8.2f MOPS  f=%7.2f MHz\n" p.label p.area
            p.throughput_mops p.fmax_mhz)
        s.points)
    series;
  (* ASCII scatter, log10 axes. *)
  let all = List.concat_map (fun s -> s.points) series in
  let lx p = log10 (float_of_int (max 1 p.area)) in
  let ly p = log10 (Float.max 0.01 p.throughput_mops) in
  let min_x = List.fold_left (fun a p -> Float.min a (lx p)) infinity all in
  let max_x = List.fold_left (fun a p -> Float.max a (lx p)) neg_infinity all in
  let min_y = List.fold_left (fun a p -> Float.min a (ly p)) infinity all in
  let max_y = List.fold_left (fun a p -> Float.max a (ly p)) neg_infinity all in
  let w = 72 and h = 24 in
  let grid = Array.make_matrix h w ' ' in
  List.iter
    (fun s ->
      List.iter
        (fun p ->
          let x =
            int_of_float
              ((lx p -. min_x) /. Float.max 1e-9 (max_x -. min_x)
              *. float_of_int (w - 1))
          in
          let y =
            int_of_float
              ((ly p -. min_y) /. Float.max 1e-9 (max_y -. min_y)
              *. float_of_int (h - 1))
          in
          grid.(h - 1 - y).(x) <- glyph s.tool)
        s.points)
    series;
  pr "\nPerformance (MOPS, log)  x  Area (LUT*+FF*, log)\n";
  pr "legend: V=Verilog C=Chisel B=BSV X=XLS M=MaxJ b=Bambu h=VivadoHLS\n";
  for r = 0 to h - 1 do
    pr "|%s|\n" (String.init w (fun c -> grid.(r).(c)))
  done;
  pr "%s\n" (String.make (w + 2) '-');
  pr "area: %.0f .. %.0f   throughput: %.2f .. %.2f MOPS\n"
    (10. ** min_x) (10. ** max_x) (10. ** min_y) (10. ** max_y);
  Buffer.contents buf
