type row = {
  language : string;
  paradigm : string;
  tool : string;
  tool_type : string;
  openness : string;
}

let rows =
  [
    { language = "Verilog"; paradigm = "Classical RTL"; tool = "Vivado";
      tool_type = "LS/PR"; openness = "Commercial" };
    { language = "Chisel"; paradigm = "Functional/RTL"; tool = "Chisel";
      tool_type = "HC"; openness = "Open-source" };
    { language = "BSV"; paradigm = "Rule-based/RTL"; tool = "BSC";
      tool_type = "HC"; openness = "Open-source" };
    { language = "DSLX"; paradigm = "Functional"; tool = "XLS";
      tool_type = "HLS"; openness = "Open-source" };
    { language = "MaxJ"; paradigm = "Dataflow"; tool = "MaxCompiler";
      tool_type = "HLS"; openness = "Commercial" };
    { language = "C"; paradigm = "Imperative"; tool = "Bambu";
      tool_type = "HLS"; openness = "Open-source" };
    { language = "C"; paradigm = "Imperative"; tool = "Vivado HLS";
      tool_type = "HLS"; openness = "Commercial" };
  ]

let render () =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "%-8s | %-14s | %-11s | %-5s | %s\n" "Language" "Paradigm"
       "Tool" "Type" "Openness");
  Buffer.add_string buf (String.make 60 '-' ^ "\n");
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "%-8s | %-14s | %-11s | %-5s | %s\n" r.language
           r.paradigm r.tool r.tool_type r.openness))
    rows;
  Buffer.contents buf
