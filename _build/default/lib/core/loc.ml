let is_code line =
  let l = String.trim line in
  String.length l > 0
  && (not (String.length l >= 2 && String.sub l 0 2 = "//"))
  && (not (String.length l >= 2 && String.sub l 0 2 = "--"))
  && (not (String.length l >= 2 && String.sub l 0 2 = "(*" && String.length l >= 2
           && String.sub l (String.length l - 2) 2 = "*)"))
  && not (String.length l >= 2 && String.sub l 0 2 = "/*"
          && String.length l >= 2
          && String.sub l (String.length l - 2) 2 = "*/")

let code_lines src =
  String.split_on_char '\n' src |> List.filter is_code |> List.map String.trim

let count src = List.length (code_lines src)

let delta before after =
  let a = List.sort compare (code_lines before) in
  let b = List.sort compare (code_lines after) in
  (* Multiset symmetric difference. *)
  let rec go a b added removed =
    match (a, b) with
    | [], [] -> added + removed
    | [], rest -> added + List.length rest + removed
    | rest, [] -> added + removed + List.length rest
    | x :: xs, y :: ys ->
        if x = y then go xs ys added removed
        else if x < y then go xs b added (removed + 1)
        else go a ys (added + 1) removed
  in
  go a b 0 0
