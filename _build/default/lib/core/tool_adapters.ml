(* Adapter labor accounting for tools that need hand-written interface
   code (Section III-C).

   - XLS produces a bare kernel; the paper pairs it with a hand-crafted
     AXI-Stream adapter.  Ours is the deserializer/serializer of
     Axis.Adapter expressed as Verilog; its size matches the Verilog
     baseline's adapter portion.
   - Vivado HLS generates the interface from a pragma (L^AXI = 0); the
     pragma lines are counted as configuration.
   - MaxCompiler generates the PCIe manager (L^AXI = 0). *)

let dslx_adapter_loc = 52
