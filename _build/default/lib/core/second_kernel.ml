let taps = [| 1; 3; 8; 20; 20; 8; 3; 1 |]

let clip9 v = if v < -256 then -256 else if v > 255 then 255 else v

let reference blk =
  Array.init 64 (fun i ->
      let acc = ref 0 in
      for k = 0 to 7 do
        acc := !acc + (taps.(k) * blk.((i - k) land 63))
      done;
      clip9 (!acc asr 6))

(* ---------------- C ---------------- *)

let c_program =
  let open Chls.Ast in
  let v x = Var x in
  let i k = Int k in
  let term k =
    Bin
      ( Mul,
        i taps.(k),
        Load ("x", Bin (And, Bin (Sub, v "i", i k), i 63)) )
  in
  let acc = List.fold_left (fun a k -> Bin (Add, a, term k)) (term 0) [ 1; 2; 3; 4; 5; 6; 7 ] in
  let clip_fn =
    {
      fname = "clip9";
      params = [ PScalar ("v", int_t) ];
      ret = Some int_t;
      locals = [];
      arrays = [];
      body =
        [
          Return
            (Cond
               ( Bin (Lt, v "v", i (-256)),
                 i (-256),
                 Cond (Bin (Gt, v "v", i 255), i 255, v "v") ));
        ];
    }
  in
  let top =
    {
      fname = "fir";
      params = [ PArray ("blk", short_t, 64) ];
      ret = None;
      locals = [ ("i", int_t) ];
      arrays = [ ("x", short_t, 64) ];
      body =
        [
          (* snapshot the input: the filter is not in-place *)
          For
            {
              ivar = "i";
              bound = 64;
              body = [ Store ("x", v "i", Load ("blk", v "i")) ];
            };
          For
            {
              ivar = "i";
              bound = 64;
              body =
                [
                  Store
                    ( "blk",
                      v "i",
                      Call ("clip9", [ Bin (Shr, acc, i 6) ]) );
                ];
            };
        ];
    }
  in
  { funcs = [ clip_fn; top ]; top = "fir" }

(* ---------------- DSLX ---------------- *)

let dslx_program =
  let open Dslx.Ir in
  let l v = Lit { width = 32; value = v } in
  let term k =
    Bin
      ( Hw.Netlist.Mul,
        l taps.(k),
        Cast
          ( Index
              ( Var "m",
                Bin
                  ( Hw.Netlist.And,
                    Bin (Hw.Netlist.Sub, Var "i", l k),
                    l 63 ) ),
            32,
            `Signed ) )
  in
  let acc =
    List.fold_left
      (fun a k -> Bin (Hw.Netlist.Add, a, term k))
      (term 0) [ 1; 2; 3; 4; 5; 6; 7 ]
  in
  let clip e =
    Cast
      ( If
          ( Bin (Hw.Netlist.Lt Hw.Netlist.Signed, e, l (-256)),
            l (-256),
            If (Bin (Hw.Netlist.Lt Hw.Netlist.Signed, l 255, e), l 255, e) ),
        9,
        `Signed )
  in
  let top =
    {
      fname = "fir";
      params = [ { pname = "m"; pty = Array (Bits 12, 64) } ];
      ret = Array (Bits 9, 64);
      body =
        For
          {
            var = "i";
            count = 64;
            acc = "out";
            init = ArrayLit (List.init 64 (fun _ -> Lit { width = 9; value = 0 }));
            body =
              Update
                (Var "out", Var "i", clip (Bin (Hw.Netlist.Sra, acc, l 6)));
          };
      }
  in
  { fns = [ top ]; top = "fir" }

(* ---------------- Chisel-style generator ---------------- *)

let chisel_kernel b (mid : Hw.Builder.s array) =
  Array.init 64 (fun i ->
      let acc =
        let term k =
          Chisel.Dsl.mulc b taps.(k)
            (Chisel.Dsl.of_raw mid.((i - k) land 63))
        in
        let rec sum k a =
          if k = 8 then a else sum (k + 1) (Chisel.Dsl.add b a (term k))
        in
        sum 1 (term 0)
      in
      Chisel.Dsl.raw
        (Chisel.Dsl.resize b
           (Chisel.Dsl.clamp b ~lo:(-256) ~hi:255 (Chisel.Dsl.asr_ b acc 6))
           Axis.Stream.out_width))

let chisel_design ~name =
  Axis.Adapter.wrap_matrix_kernel ~name ~latency:0 ~kernel:chisel_kernel ()

let c_design ~name =
  Chls.Tool.sequential_circuit ~name Chls.Schedule.default_config
    Chls.Transform.default_options c_program

let dslx_design ?(stages = 4) ~name () =
  let comb = Dslx.Lower.circuit dslx_program in
  let net = if stages = 0 then comb else Hw.Pipeline.retime ~stages comb in
  let kernel kb mid =
    let inputs =
      Array.to_list (Array.mapi (fun k s -> (Printf.sprintf "m_%d" k, s)) mid)
    in
    let outs = Hw.Instantiate.stamp kb net ~inputs in
    Array.init 64 (fun k -> List.assoc (Printf.sprintf "out_%d" k) outs)
  in
  Axis.Adapter.wrap_matrix_kernel ~name ~latency:stages ~kernel ()
