(* Source listings for the front ends embedded in OCaml (Chisel, BSV,
   MaxJ).  Our mini-languages lack the vector/loop sugar of the real ones,
   so their mechanical dumps unroll aggregates; these listings are the
   equivalent sources as a user of the real language writes them — the
   text the labor metric L should count.  The elaborated circuits are
   generated from the same structures (see Chisel.Idct_gen, Bsv.Idct_bsv,
   Maxj.Idct_maxj); the tests check them bit-true against the reference. *)

let chisel_butterfly =
  {|class IdctRow extends Module {
  val io = IO(new Bundle {
    val in  = Input(Vec(8, SInt(12.W)))
    val out = Output(Vec(8, SInt(16.W)))
  })
  val w1 = 2841.S; val w2 = 2676.S; val w3 = 2408.S
  val w5 = 1609.S; val w6 = 1108.S; val w7 = 565.S
  val x0 = (io.in(0) << 11) + 128.S
  val x1 = io.in(4) << 11
  val x2 = io.in(6); val x3 = io.in(2); val x4 = io.in(1)
  val x5 = io.in(7); val x6 = io.in(5); val x7 = io.in(3)
  val s8a = w7 * (x4 + x5)
  val s4 = s8a + (w1 - w7) * x4
  val s5 = s8a - (w1 + w7) * x5
  val s8b = w3 * (x6 + x7)
  val s6 = s8b - (w3 - w5) * x6
  val s7 = s8b - (w3 + w5) * x7
  val t8 = x0 + x1
  val t0 = x0 - x1
  val t1 = w6 * (x3 + x2)
  val t2 = t1 - (w2 + w6) * x2
  val t3 = t1 + (w2 - w6) * x3
  val u1 = s4 + s6; val u4 = s4 - s6
  val u6 = s5 + s7; val u5 = s5 - s7
  val v7 = t8 + t3; val v8 = t8 - t3
  val v3 = t0 + t2; val v0 = t0 - t2
  val v2 = (181.S * (u4 + u5) + 128.S) >> 8
  val v4 = (181.S * (u4 - u5) + 128.S) >> 8
  val res = VecInit((v7+u1), (v3+v2), (v0+v4), (v8+u6),
                    (v8-u6), (v0-v4), (v3-v2), (v7-u1))
  for (i <- 0 until 8) io.out(i) := (res(i) >> 8).asSInt
}

class IdctCol extends Module {
  val io = IO(new Bundle {
    val in  = Input(Vec(8, SInt(16.W)))
    val out = Output(Vec(8, SInt(9.W)))
  })
  def iclip(x: SInt): SInt = Mux(x < -256.S, -256.S, Mux(x > 255.S, 255.S, x))
  val x0 = (io.in(0) << 8) + 8192.S
  val x1 = io.in(4) << 8
  val x2 = io.in(6); val x3 = io.in(2); val x4 = io.in(1)
  val x5 = io.in(7); val x6 = io.in(5); val x7 = io.in(3)
  val s8a = 565.S * (x4 + x5) + 4.S
  val s4 = (s8a + 2276.S * x4) >> 3
  val s5 = (s8a - 3406.S * x5) >> 3
  val s8b = 2408.S * (x6 + x7) + 4.S
  val s6 = (s8b - 799.S * x6) >> 3
  val s7 = (s8b - 4017.S * x7) >> 3
  val t8 = x0 + x1
  val t0 = x0 - x1
  val t1 = 1108.S * (x3 + x2) + 4.S
  val t2 = (t1 - 3784.S * x2) >> 3
  val t3 = (t1 + 1568.S * x3) >> 3
  val u1 = s4 + s6; val u4 = s4 - s6
  val u6 = s5 + s7; val u5 = s5 - s7
  val v7 = t8 + t3; val v8 = t8 - t3
  val v3 = t0 + t2; val v0 = t0 - t2
  val v2 = (181.S * (u4 + u5) + 128.S) >> 8
  val v4 = (181.S * (u4 - u5) + 128.S) >> 8
  val res = VecInit((v7+u1), (v3+v2), (v0+v4), (v8+u6),
                    (v8-u6), (v0-v4), (v3-v2), (v7-u1))
  for (i <- 0 until 8) io.out(i) := iclip(res(i) >> 14)
}|}

let chisel_stream_io =
  {|class StreamIO extends Bundle {
  val sValid = Input(Bool());  val sReady = Output(Bool())
  val sLast  = Input(Bool());  val sData  = Input(Vec(8, SInt(12.W)))
  val mValid = Output(Bool()); val mReady = Input(Bool())
  val mLast  = Output(Bool()); val mData  = Output(Vec(8, SInt(9.W)))
}|}

let chisel_initial =
  chisel_butterfly ^ "\n\n" ^ chisel_stream_io ^ "\n\n"
  ^ {|class IdctComb extends Module {
  val io = IO(new StreamIO)
  val inCnt  = RegInit(0.U(3.W))
  val outCnt = RegInit(0.U(3.W))
  val full   = RegInit(false.B)
  val occ    = RegInit(0.U(2.W)); val pending = RegInit(0.U(2.W))
  val wrBank = RegInit(false.B);  val rdBank  = RegInit(false.B)
  val present = full && occ < 2.U
  io.sReady := !full || present
  val inFire = io.sValid && io.sReady
  val inBuf = Reg(Vec(8, Vec(8, SInt(12.W))))
  when (inFire) { inBuf(inCnt) := io.sData; inCnt := inCnt + 1.U }
  when (inFire && inCnt === 7.U) { full := true.B } .elsewhen (present) { full := false.B }
  val rows = Seq.fill(8)(Module(new IdctRow))
  val cols = Seq.fill(8)(Module(new IdctCol))
  for (r <- 0 until 8) rows(r).io.in := inBuf(r)
  for (c <- 0 until 8; r <- 0 until 8) cols(c).io.in(r) := rows(r).io.out(c)
  val banks = Reg(Vec(2, Vec(8, Vec(8, SInt(9.W)))))
  when (present) {
    for (r <- 0 until 8; c <- 0 until 8) banks(wrBank)(r)(c) := cols(c).io.out(r)
    wrBank := !wrBank
  }
  io.mValid := pending =/= 0.U
  val mFire = io.mValid && io.mReady
  when (mFire) { outCnt := outCnt + 1.U }
  val drainDone = mFire && outCnt === 7.U
  when (drainDone) { rdBank := !rdBank }
  when (present && !drainDone) { occ := occ + 1.U; pending := pending + 1.U }
  .elsewhen (drainDone && !present) { occ := occ - 1.U; pending := pending - 1.U }
  io.mLast := io.mValid && outCnt === 7.U
  io.mData := banks(rdBank)(outCnt)
}|}

let chisel_optimized =
  chisel_butterfly ^ "\n\n" ^ chisel_stream_io ^ "\n\n"
  ^ {|class IdctRowCol extends Module {
  val io = IO(new StreamIO)
  // three 8-cycle phases in lockstep over ping-pong banks
  val cnt   = RegInit(0.U(3.W))
  val aLive = RegInit(false.B); val bLive = RegInit(false.B)
  val cLive = RegInit(false.B); val bank  = RegInit(false.B)
  val at0 = cnt === 0.U; val at7 = cnt === 7.U
  val collecting = Mux(at0, io.sValid, aLive)
  val inOk  = !collecting || io.sValid
  val outOk = !cLive || io.mReady
  val go = inOk && outOk && (io.sValid || aLive || bLive || cLive)
  when (go) { cnt := cnt + 1.U }
  val frameEnd = go && at7
  when (go && at0) { aLive := io.sValid } .elsewhen (frameEnd) { aLive := false.B }
  when (frameEnd) { bLive := collecting; cLive := bLive; bank := !bank }
  io.sReady := collecting && go
  val inFire = io.sValid && io.sReady
  val rowU = Module(new IdctRow); rowU.io.in := io.sData
  val mid = Reg(Vec(2, Vec(8, Vec(8, SInt(16.W)))))
  when (inFire) { mid(bank)(cnt) := rowU.io.out }
  val colU = Module(new IdctCol)
  for (r <- 0 until 8) colU.io.in(r) := mid(!bank)(r)(cnt)
  val out = Reg(Vec(2, Vec(8, Vec(8, SInt(9.W)))))
  when (bLive && go) { for (r <- 0 until 8) out(bank)(r)(cnt) := colU.io.out(r) }
  io.mValid := cLive && inOk
  io.mLast  := io.mValid && at7
  io.mData  := out(!bank)(cnt)
}|}

let bsv_initial =
  {|typedef Vector#(8, Bit#(12)) InRow;
typedef Vector#(8, Bit#(16)) MidRow;
typedef Vector#(8, Bit#(9))  OutRow;

module mkIdctInitial (IdctIfc);
  Vector#(8, Reg#(InRow))  inBuf  <- replicateM(mkReg(unpack(0)));
  Vector#(8, Reg#(MidRow)) mid    <- replicateM(mkReg(unpack(0)));
  Vector#(8, Reg#(OutRow)) outBuf <- replicateM(mkReg(unpack(0)));
  Reg#(Bit#(3)) ldCnt   <- mkReg(0);
  Reg#(Bool)    ldDone  <- mkReg(False);
  Reg#(Bool)    midFull <- mkReg(False);
  Reg#(Bool)    outBusy <- mkReg(False);
  Reg#(Bit#(3)) oCnt    <- mkReg(0);
  FIFO#(InRow)  inQ  <- mkFIFO;
  FIFO#(OutRow) outQ <- mkFIFO;

  rule load (!ldDone);
    inBuf[ldCnt] <= inQ.first; inQ.deq;
    ldCnt <= ldCnt + 1;
    if (ldCnt == 7) ldDone <= True;
  endrule

  rule rowPasses (ldDone && !midFull);
    for (Integer r = 0; r < 8; r = r + 1)
      mid[r] <= idctRow(readVReg(inBuf)[r]);
    midFull <= True; ldDone <= False; ldCnt <= 0;
  endrule

  rule colPasses (midFull && !outBusy);
    Vector#(8, MidRow) m = readVReg(mid);
    for (Integer c = 0; c < 8; c = c + 1) begin
      OutRow col = idctCol(column(m, c));
      for (Integer r = 0; r < 8; r = r + 1) outBuf[r][c] <= col[r];
    end
    outBusy <= True; midFull <= False;
  endrule

  rule drain (outBusy);
    outQ.enq(readVReg(outBuf)[oCnt]);
    oCnt <= oCnt + 1;
    if (oCnt == 7) outBusy <= False;
  endrule
endmodule|}

let bsv_optimized =
  {|module mkIdctRowCol (IdctIfc);
  // produced/consumed counters; bank = low bit of the producer count
  Vector#(2, Vector#(8, Reg#(MidRow))) mid <- replicateM(replicateM(mkReg(unpack(0))));
  Vector#(2, Vector#(8, Reg#(OutRow))) outB <- replicateM(replicateM(mkReg(unpack(0))));
  Reg#(Bit#(4)) fCnt <- mkReg(0); Reg#(Bit#(4)) cCnt <- mkReg(0);
  Reg#(Bit#(4)) dCnt <- mkReg(0);
  Reg#(Bit#(2)) p1 <- mkReg(0); Reg#(Bit#(2)) p2 <- mkReg(0);
  Reg#(Bit#(2)) p3 <- mkReg(0);
  FIFO#(InRow)  inQ  <- mkFIFO;
  FIFO#(OutRow) outQ <- mkFIFO;

  rule load (fCnt <= 7 && p1 - p2 != 2);
    mid[p1[0]][fCnt[2:0]] <= idctRow(inQ.first); inQ.deq;
    fCnt <= fCnt + 1;
  endrule
  rule loadCommit (fCnt == 8);
    fCnt <= 0; p1 <= p1 + 1;
  endrule

  rule colPass (cCnt <= 7 && p1 - p2 != 0 && p2 - p3 != 2);
    OutRow col = idctCol(column(readVReg(mid[p2[0]]), cCnt[2:0]));
    for (Integer r = 0; r < 8; r = r + 1) outB[p2[0]][r][cCnt[2:0]] <= col[r];
    cCnt <= cCnt + 1;
  endrule
  rule colCommit (cCnt == 8);
    cCnt <= 0; p2 <= p2 + 1;
  endrule

  rule drain (dCnt <= 7 && p2 - p3 != 0);
    outQ.enq(readVReg(outB[p3[0]])[dCnt[2:0]]);
    dCnt <= dCnt + 1;
  endrule
  rule drainCommit (dCnt == 8);
    dCnt <= 0; p3 <= p3 + 1;
  endrule
endmodule|}

let bsv_shared =
  {|function MidRow idctRow(InRow x);
  // Chen-Wang butterfly, 32-bit arithmetic (translated from mpeg2decode)
  Int#(32) x0 = (extend(unpack(x[0])) << 11) + 128;
  Int#(32) x1 = extend(unpack(x[4])) << 11;
  Int#(32) x2 = extend(unpack(x[6])); Int#(32) x3 = extend(unpack(x[2]));
  Int#(32) x4 = extend(unpack(x[1])); Int#(32) x5 = extend(unpack(x[7]));
  Int#(32) x6 = extend(unpack(x[5])); Int#(32) x7 = extend(unpack(x[3]));
  Int#(32) s8 = 565 * (x4 + x5);
  x4 = s8 + 2276 * x4;  x5 = s8 - 3406 * x5;
  s8 = 2408 * (x6 + x7);
  x6 = s8 - 799 * x6;   x7 = s8 - 4017 * x7;
  s8 = x0 + x1;  x0 = x0 - x1;
  x1 = 1108 * (x3 + x2);
  x2 = x1 - 3784 * x2;  x3 = x1 + 1568 * x3;
  x1 = x4 + x6;  x4 = x4 - x6;  x6 = x5 + x7;  x5 = x5 - x7;
  x7 = s8 + x3;  s8 = s8 - x3;  x3 = x0 + x2;  x0 = x0 - x2;
  x2 = (181 * (x4 + x5) + 128) >> 8;
  x4 = (181 * (x4 - x5) + 128) >> 8;
  return map(truncate, vec(x7+x1, x3+x2, x0+x4, s8+x6,
                           s8-x6, x0-x4, x3-x2, x7-x1) >> 8);
endfunction

function OutRow idctCol(MidRow x);
  Int#(32) x0 = (extend(unpack(x[0])) << 8) + 8192;
  Int#(32) x1 = extend(unpack(x[4])) << 8;
  Int#(32) x2 = extend(unpack(x[6])); Int#(32) x3 = extend(unpack(x[2]));
  Int#(32) x4 = extend(unpack(x[1])); Int#(32) x5 = extend(unpack(x[7]));
  Int#(32) x6 = extend(unpack(x[5])); Int#(32) x7 = extend(unpack(x[3]));
  Int#(32) s8 = 565 * (x4 + x5) + 4;
  x4 = (s8 + 2276 * x4) >> 3;  x5 = (s8 - 3406 * x5) >> 3;
  s8 = 2408 * (x6 + x7) + 4;
  x6 = (s8 - 799 * x6) >> 3;   x7 = (s8 - 4017 * x7) >> 3;
  s8 = x0 + x1;  x0 = x0 - x1;
  x1 = 1108 * (x3 + x2) + 4;
  x2 = (x1 - 3784 * x2) >> 3;  x3 = (x1 + 1568 * x3) >> 3;
  x1 = x4 + x6;  x4 = x4 - x6;  x6 = x5 + x7;  x5 = x5 - x7;
  x7 = s8 + x3;  s8 = s8 - x3;  x3 = x0 + x2;  x0 = x0 - x2;
  x2 = (181 * (x4 + x5) + 128) >> 8;
  x4 = (181 * (x4 - x5) + 128) >> 8;
  return map(iclip, vec(x7+x1, x3+x2, x0+x4, s8+x6,
                        s8-x6, x0-x4, x3-x2, x7-x1) >> 14);
endfunction|}

let maxj_initial =
  {|class IdctMatrixKernel extends Kernel {
  IdctMatrixKernel(KernelParameters p) {
    super(p);
    DFEVectorType<DFEVar> inT  = new DFEVectorType<DFEVar>(dfeInt(12), 64);
    DFEVectorType<DFEVar> outT = new DFEVectorType<DFEVar>(dfeInt(9), 64);
    DFEVector<DFEVar> m = io.input("m", inT);
    DFEVector<DFEVar> y = outT.newInstance(this);
    DFEVector<DFEVar>[] mid = new DFEVector[8];
    for (int r = 0; r < 8; r++)
      mid[r] = idctRow(slice(m, r * 8, 8));
    for (int c = 0; c < 8; c++) {
      DFEVector<DFEVar> col = idctCol(column(mid, c));
      for (int r = 0; r < 8; r++) y[r * 8 + c] <== col[r];
    }
    io.output("y", y, outT);
  }
}

class IdctManager extends CustomManager {
  IdctManager(EngineParameters p) {
    super(p);
    KernelBlock k = addKernel(new IdctMatrixKernel(makeKernelParameters("idct")));
    k.getInput("m") <== addStreamFromCPU("m");
    addStreamToCPU("y") <== k.getOutput("y");
  }
}|}

let maxj_optimized =
  {|class IdctRowStreamKernel extends Kernel {
  IdctRowStreamKernel(KernelParameters p) {
    super(p);
    DFEVectorType<DFEVar> rowT = new DFEVectorType<DFEVar>(dfeInt(12), 8);
    DFEVectorType<DFEVar> colT = new DFEVectorType<DFEVar>(dfeInt(9), 8);
    DFEVar cnt = control.count.simpleCounter(4);
    DFEVector<DFEVar> row = io.input("row", rowT);
    DFEVector<DFEVar> rr = idctRow(row);
    DFEVar wrow  = stream.offset(cnt, -ROW_LATENCY).slice(0, 3);
    DFEVar wbank = stream.offset(cnt, -ROW_LATENCY).slice(3, 1);
    // transpose buffer: two banks of 8x8 stream holds in FMem
    DFEVector<DFEVar>[][] mid = new DFEVector[2][8];
    for (int b = 0; b < 2; b++)
      for (int r = 0; r < 8; r++)
        mid[b][r] = Reductions.streamHold(rr, wrow === r & wbank === b);
    DFEVector<DFEVar> colIn = colT16.newInstance(this);
    for (int r = 0; r < 8; r++)
      colIn[r] <== control.mux(wbank # wrow, lanes(mid, r));
    DFEVector<DFEVar> col = idctCol(colIn);
    io.output("col", col, colT);
  }
}|}

let maxj_shared =
  {|DFEVector<DFEVar> idctRow(DFEVector<DFEVar> x) {
  DFEVar x0 = (cast32(x[0]) << 11) + 128;
  DFEVar x1 = cast32(x[4]) << 11;
  DFEVar x2 = cast32(x[6]), x3 = cast32(x[2]), x4 = cast32(x[1]);
  DFEVar x5 = cast32(x[7]), x6 = cast32(x[5]), x7 = cast32(x[3]);
  DFEVar s8 = 565 * (x4 + x5);
  x4 = s8 + 2276 * x4;  x5 = s8 - 3406 * x5;
  s8 = 2408 * (x6 + x7);
  x6 = s8 - 799 * x6;   x7 = s8 - 4017 * x7;
  s8 = x0 + x1;  x0 = x0 - x1;
  x1 = 1108 * (x3 + x2);
  x2 = x1 - 3784 * x2;  x3 = x1 + 1568 * x3;
  x1 = x4 + x6;  x4 = x4 - x6;  x6 = x5 + x7;  x5 = x5 - x7;
  x7 = s8 + x3;  s8 = s8 - x3;  x3 = x0 + x2;  x0 = x0 - x2;
  x2 = (181 * (x4 + x5) + 128) >> 8;
  x4 = (181 * (x4 - x5) + 128) >> 8;
  return pack16(x7+x1, x3+x2, x0+x4, s8+x6, s8-x6, x0-x4, x3-x2, x7-x1, 8);
}

DFEVector<DFEVar> idctCol(DFEVector<DFEVar> x) {
  DFEVar x0 = (cast32(x[0]) << 8) + 8192;
  DFEVar x1 = cast32(x[4]) << 8;
  DFEVar x2 = cast32(x[6]), x3 = cast32(x[2]), x4 = cast32(x[1]);
  DFEVar x5 = cast32(x[7]), x6 = cast32(x[5]), x7 = cast32(x[3]);
  DFEVar s8 = 565 * (x4 + x5) + 4;
  x4 = (s8 + 2276 * x4) >> 3;  x5 = (s8 - 3406 * x5) >> 3;
  s8 = 2408 * (x6 + x7) + 4;
  x6 = (s8 - 799 * x6) >> 3;   x7 = (s8 - 4017 * x7) >> 3;
  s8 = x0 + x1;  x0 = x0 - x1;
  x1 = 1108 * (x3 + x2) + 4;
  x2 = (x1 - 3784 * x2) >> 3;  x3 = (x1 + 1568 * x3) >> 3;
  x1 = x4 + x6;  x4 = x4 - x6;  x6 = x5 + x7;  x5 = x5 - x7;
  x7 = s8 + x3;  s8 = s8 - x3;  x3 = x0 + x2;  x0 = x0 - x2;
  x2 = (181 * (x4 + x5) + 128) >> 8;
  x4 = (181 * (x4 - x5) + 128) >> 8;
  return clip9(x7+x1, x3+x2, x0+x4, s8+x6, s8-x6, x0-x4, x3-x2, x7-x1, 14);
}|}
