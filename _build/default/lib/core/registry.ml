open Design

let mk tool label config_desc ~fu ~axi ~conf ~listing impl =
  {
    tool;
    label;
    config_desc;
    loc_fu = fu;
    loc_axi = axi;
    loc_conf = conf;
    impl;
    listing;
  }

(* ---------------- Verilog (parsed sources) ---------------- *)

let verilog_units_loc =
  Loc.count (Verilog_designs.row_unit ^ Verilog_designs.col_unit)

let verilog_initial =
  mk Verilog "initial" "Vivado defaults"
    ~fu:verilog_units_loc
    ~axi:(Loc.count Verilog_designs.initial_source - verilog_units_loc)
    ~conf:0 ~listing:Verilog_designs.initial_source
    (Stream (lazy (Verilog_designs.initial_circuit ())))

let verilog_row8col =
  mk Verilog "1 row + 8 col units" "Vivado defaults"
    ~fu:verilog_units_loc
    ~axi:(Loc.count Verilog_designs.row8col_source - verilog_units_loc)
    ~conf:0 ~listing:Verilog_designs.row8col_source
    (Stream (lazy (Verilog_designs.row8col_circuit ())))

let verilog_optimized =
  mk Verilog "optimized" "Vivado defaults"
    ~fu:verilog_units_loc
    ~axi:(Loc.count Verilog_designs.rowcol_source - verilog_units_loc)
    ~conf:0 ~listing:Verilog_designs.rowcol_source
    (Stream (lazy (Verilog_designs.rowcol_circuit ())))

(* ---------------- Chisel ---------------- *)

let chisel_initial =
  mk Chisel "initial" "width inference, combinational kernel"
    ~fu:(Loc.count Listings.chisel_butterfly)
    ~axi:
      (Loc.count Listings.chisel_initial - Loc.count Listings.chisel_butterfly)
    ~conf:0 ~listing:Listings.chisel_initial
    (Stream
       (lazy (Chisel.Idct_gen.design_comb Chisel.Idct_gen.Inferred ~name:"chisel_initial")))

let chisel_row8col =
  mk Chisel "1 row + 8 col units" "width inference"
    ~fu:(Loc.count Listings.chisel_butterfly)
    ~axi:
      (Loc.count Listings.chisel_initial - Loc.count Listings.chisel_butterfly)
    ~conf:0 ~listing:Listings.chisel_initial
    (Stream
       (lazy
         (Chisel.Idct_gen.design_row8col Chisel.Idct_gen.Inferred
            ~name:"chisel_row8col")))

let chisel_optimized =
  mk Chisel "optimized" "width inference, macro-pipeline"
    ~fu:(Loc.count Listings.chisel_butterfly)
    ~axi:
      (Loc.count Listings.chisel_optimized
      - Loc.count Listings.chisel_butterfly)
    ~conf:0 ~listing:Listings.chisel_optimized
    (Stream
       (lazy
         (Chisel.Idct_gen.design_rowcol Chisel.Idct_gen.Inferred
            ~name:"chisel_optimized")))

(* ---------------- BSV ---------------- *)

let bsv_listing_initial = Listings.bsv_shared ^ "\n\n" ^ Listings.bsv_initial
let bsv_listing_optimized = Listings.bsv_shared ^ "\n\n" ^ Listings.bsv_optimized

let bsv_design label config_desc listing modul options =
  mk Bsv label config_desc
    ~fu:(Loc.count Listings.bsv_shared)
    ~axi:(Loc.count listing - Loc.count Listings.bsv_shared)
    ~conf:0 ~listing
    (Stream (lazy (Bsv.Idct_bsv.circuit ~options modul)))

let bsv_initial =
  bsv_design "initial" "BSC defaults" bsv_listing_initial
    Bsv.Idct_bsv.initial_design Bsv.Options.default

let bsv_optimized =
  bsv_design "optimized" "BSC defaults" bsv_listing_optimized
    Bsv.Idct_bsv.optimized_design Bsv.Options.default

let bsv_sweep =
  (* 26 synthesized circuits: the 24-option grid on the optimized design
     plus the two designs under the default configuration. *)
  bsv_initial :: bsv_optimized
  :: List.map
       (fun o ->
         bsv_design
           ("optimized/" ^ Bsv.Options.describe o)
           (Bsv.Options.describe o) bsv_listing_optimized
           Bsv.Idct_bsv.optimized_design o)
       Bsv.Options.all

(* ---------------- DSLX ---------------- *)

let dslx_listing = Dslx.Emit.emit Dslx.Idct_dslx.program

let dslx_design label stages =
  mk Dslx label
    (if stages = 0 then "combinational" else Printf.sprintf "--pipeline_stages=%d" stages)
    ~fu:(Loc.count dslx_listing)
    ~axi:Tool_adapters.dslx_adapter_loc
    ~conf:(if stages = 0 then 0 else 1)
    ~listing:dslx_listing
    (Stream
       (lazy (Dslx.Idct_dslx.design ~stages ~name:(Printf.sprintf "xls_s%d" stages) ())))

let dslx_initial = dslx_design "initial" 0
let dslx_optimized = dslx_design "optimized" 8

let dslx_sweep =
  dslx_initial
  :: List.init 18 (fun i -> dslx_design (Printf.sprintf "stages=%d" (i + 1)) (i + 1))

(* ---------------- MaxJ ---------------- *)

let maxj_initial =
  mk Maxj "initial" "matrix per tick, PCIe streams"
    ~fu:(Loc.count (Listings.maxj_shared ^ Listings.maxj_initial))
    ~axi:0 (* MaxCompiler generates the PCIe manager *)
    ~conf:0
    ~listing:(Listings.maxj_shared ^ "\n\n" ^ Listings.maxj_initial)
    (Pcie (lazy (Maxj.Idct_maxj.initial_system ())))

let maxj_optimized =
  mk Maxj "optimized" "row per tick, on-chip transpose buffer"
    ~fu:(Loc.count (Listings.maxj_shared ^ Listings.maxj_optimized))
    ~axi:0 ~conf:0
    ~listing:(Listings.maxj_shared ^ "\n\n" ^ Listings.maxj_optimized)
    (Pcie (lazy (Maxj.Idct_maxj.opt_system ())))

(* ---------------- C / Bambu ---------------- *)

let c_listing = Chls.Cprint.emit Chls.Idct_c.program

let bambu_conf_lines (c : Chls.Tool.bambu_config) =
  1 (* preset *) + (if c.Chls.Tool.sdc then 1 else 0)
  + if c.Chls.Tool.chain_effort <> 1 then 1 else 0

let bambu_design label c =
  mk Bambu label (Chls.Tool.describe_bambu c)
    ~fu:(Loc.count c_listing)
    ~axi:Chls.Tool.bambu_adapter_loc
    ~conf:(bambu_conf_lines c)
    ~listing:c_listing
    (Stream (lazy (Chls.Tool.bambu_circuit c)))

let bambu_initial = bambu_design "initial" Chls.Tool.bambu_initial
let bambu_optimized = bambu_design "optimized" Chls.Tool.bambu_optimized

let bambu_sweep =
  List.map (fun c -> bambu_design (Chls.Tool.describe_bambu c) c) Chls.Tool.bambu_grid

(* ---------------- C / Vivado HLS ---------------- *)

let vhls_listing c =
  Chls.Cprint.emit ~pragmas:[ ("idct", Chls.Tool.vhls_pragmas c) ]
    Chls.Idct_c.program

let vhls_design label c =
  mk Vivado_hls label (Chls.Tool.describe_vhls c)
    ~fu:(Loc.count (vhls_listing c))
    ~axi:0 (* the INTERFACE pragma generates the adapter *)
    ~conf:0
    ~listing:(vhls_listing c)
    (Stream (lazy (Chls.Tool.vhls_circuit c)))

let vhls_initial = vhls_design "initial" Chls.Tool.vhls_initial
let vhls_optimized = vhls_design "optimized" Chls.Tool.vhls_optimized

let vhls_sweep =
  List.map
    (fun c -> vhls_design (Chls.Tool.describe_vhls c) c)
    Chls.Tool.vhls_ladder

(* ---------------- access ---------------- *)

let initial = function
  | Verilog -> verilog_initial
  | Chisel -> chisel_initial
  | Bsv -> bsv_initial
  | Dslx -> dslx_initial
  | Maxj -> maxj_initial
  | Bambu -> bambu_initial
  | Vivado_hls -> vhls_initial

let optimized = function
  | Verilog -> verilog_optimized
  | Chisel -> chisel_optimized
  | Bsv -> bsv_optimized
  | Dslx -> dslx_optimized
  | Maxj -> maxj_optimized
  | Bambu -> bambu_optimized
  | Vivado_hls -> vhls_optimized

let delta_loc tool =
  let a = (initial tool).listing and b = (optimized tool).listing in
  let conf_delta =
    abs ((optimized tool).loc_conf - (initial tool).loc_conf)
  in
  Loc.delta a b + conf_delta

let sweep = function
  | Verilog -> [ verilog_initial; verilog_row8col; verilog_optimized ]
  | Chisel -> [ chisel_initial; chisel_row8col; chisel_optimized ]
  | Bsv -> bsv_sweep
  | Dslx -> dslx_sweep
  | Maxj -> [ maxj_initial; maxj_optimized ]
  | Bambu -> bambu_sweep
  | Vivado_hls -> vhls_sweep

let all_designs () =
  List.concat_map (fun t -> [ initial t; optimized t ]) all_tools
