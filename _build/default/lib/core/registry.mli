(** The design inventory: every tool's initial and optimized design, plus
    the configuration sweeps behind the DSE figure. *)

val initial : Design.tool -> Design.t
val optimized : Design.tool -> Design.t

val delta_loc : Design.tool -> int
(** The paper's [dL]: lines changed (added + removed, options included)
    between the initial and optimized descriptions. *)

val sweep : Design.tool -> Design.t list
(** All configurations explored for the tool (the points of Fig. 1):
    Verilog 3, Chisel 3, BSC 26, XLS 19, MaxCompiler 2, Bambu 42,
    Vivado HLS 5. *)

val all_designs : unit -> Design.t list
(** Initial and optimized designs of every tool. *)
