(** The paper's LOC metric: lines of code excluding blanks and
    comment-only lines (Section III-A: "the number of lines of code,
    including tool settings"). *)

val count : string -> int
(** Lines that contain code (not blank, not comment-only).  Comment
    syntaxes of all the evaluated languages are recognized ([//], [/* */]
    single-line, [#] and [--]). *)

val delta : string -> string -> int
(** [delta before after] is the paper's modification cost
    [dL = dL+ + dL-]: lines added plus lines removed, computed on the
    multisets of code lines. *)
