(** Streaming dataflow kernels (the repository's MaxJ/MaxCompiler
    stand-in).

    A kernel describes the computation applied to data streams on every
    tick; state appears only as counters and enabled holds.  Compilation
    deep-pipelines feed-forward kernels to the compiler's target clock
    period, the behaviour the paper observes (47-stage pipeline at
    403 MHz).  Every construction call is recorded, and the recording is
    pretty-printed as a MaxJ-like listing for the LOC metric. *)

type t
type stream

val create : string -> t
val input : t -> string -> int -> stream
val const : t -> width:int -> int -> stream
val add : t -> stream -> stream -> stream
val sub : t -> stream -> stream -> stream
val mulc : t -> int -> stream -> stream
(** Multiplication by a compile-time constant (DSP-friendly). *)

val shl : t -> stream -> int -> stream
val asr_ : t -> stream -> int -> stream
val cast : t -> stream -> int -> stream
(** Signed resize. *)

val clamp : t -> lo:int -> hi:int -> stream -> stream
val mux : t -> stream -> stream -> stream -> stream

val counter : t -> modulo:int -> stream
(** Free-running tick counter modulo [modulo] (a power of two). *)

val hold : t -> enable:stream -> stream -> stream
(** Register sampling the stream when [enable] is high (Maxeler's
    stream-hold; the opt kernel's on-chip buffer is built from these). *)

val output : t -> string -> stream -> unit

val finalize : ?pipeline:bool -> t -> Hw.Netlist.t
(** [pipeline = true] (default) retimes a feed-forward kernel to the
    compiler's target clock (kernels with holds/counters are emitted as
    constructed).  Returns the kernel circuit (plain ports, no AXI). *)

val listing : t -> string
(** MaxJ-like source, from the construction recording. *)

val pipeline_depth : Hw.Netlist.t -> int
(** Register ranks between inputs and outputs (the kernel latency). *)
