(** System-level model of the Maxeler manager.

    MaxCompiler builds the whole accelerator: the kernel plus a manager
    that moves data over PCIe.  The paper therefore evaluates MaxJ designs
    against the PCIe 3.0 x16 link (about 16 GB/s) rather than AXI-Stream,
    and reports the interface pin count instead of stream ports. *)

val pcie_gbytes_per_s : float
(** 15.75 GB/s — PCIe 3.0 x16 payload bandwidth. *)

val pcie_pins : int
(** 59, the paper's N_IO for MaxJ designs (x16 lanes, both directions,
    plus reference clock and control). *)

val max_stream_clock_mhz : float
(** 403.13 MHz — the highest stream clock the tool closes on the paper's
    device. *)

type system = {
  kernel : Hw.Netlist.t;
  ticks_per_op : int;          (** kernel ticks consumed per 8x8 matrix *)
  bits_per_op : int;           (** PCIe payload per matrix (both ways max) *)
  depth : int;                 (** kernel pipeline depth, ticks *)
}

val build :
  ?depth:int -> kernel:Hw.Netlist.t -> ticks_per_op:int -> unit -> system
(** [depth] overrides the computed pipeline depth (required for kernels
    with feedback state, where rank analysis does not apply). *)

type report = {
  fmax_mhz : float;            (** min(kernel fmax, stream clock cap) *)
  throughput_mops : float;     (** min(compute rate, PCIe rate) *)
  pcie_bound : bool;
  latency_ticks : int;
}

val evaluate : system -> report
