open Hw

type stream = Builder.s

type t = {
  b : Builder.t;
  kname : string;
  mutable trace : string list;      (* MaxJ-like lines, most recent first *)
  mutable has_state : bool;
  mutable fresh : int;
}

let create kname =
  { b = Builder.create kname; kname; trace = []; has_state = false; fresh = 0 }

let log k fmt = Printf.ksprintf (fun s -> k.trace <- s :: k.trace) fmt

let fresh k prefix =
  k.fresh <- k.fresh + 1;
  Printf.sprintf "%s%d" prefix k.fresh

let input k name w =
  log k "DFEVar %s = io.input(\"%s\", dfeInt(%d));" name name w;
  Builder.input k.b name w

let const k ~width v =
  log k "DFEVar c%d = constant.var(dfeInt(%d), %d);" v width v;
  Builder.const k.b ~width v

(* Signed helpers: operands are sign-extended to the result width. *)
let widen2 k f a b =
  let w = 1 + max (Builder.width a) (Builder.width b) in
  f k.b (Builder.sext k.b a w) (Builder.sext k.b b w)

let add k a b =
  log k "DFEVar %s = a + b;" (fresh k "s");
  widen2 k Builder.add a b

let sub k a b =
  log k "DFEVar %s = a - b;" (fresh k "d");
  widen2 k Builder.sub a b

let mulc k c a =
  log k "DFEVar %s = x * %d;" (fresh k "m") c;
  let wc = Bits.width_for_signed_range c c in
  let w = wc + Builder.width a in
  Builder.mul k.b (Builder.const k.b ~width:w c) (Builder.sext k.b a w)

let shl k a n =
  log k "DFEVar %s = x << %d;" (fresh k "l") n;
  Builder.shl_const k.b (Builder.sext k.b a (Builder.width a + n)) n

let asr_ k a n =
  log k "DFEVar %s = x >> %d;" (fresh k "r") n;
  let w = Builder.width a in
  if n >= w then Builder.slice k.b a ~hi:(w - 1) ~lo:(w - 1)
  else Builder.slice k.b a ~hi:(w - 1) ~lo:n

let cast k a w =
  log k "DFEVar %s = x.cast(dfeInt(%d));" (fresh k "t") w;
  if w <= Builder.width a then Builder.slice k.b a ~hi:(w - 1) ~lo:0
  else Builder.sext k.b a w

let clamp k ~lo ~hi a =
  log k "DFEVar %s = KernelMath.max(KernelMath.min(x, %d), %d);" (fresh k "c")
    hi lo;
  let w = max (Builder.width a) (Bits.width_for_signed_range lo hi) in
  let ax = Builder.sext k.b a w in
  let clo = Builder.const k.b ~width:w lo and chi = Builder.const k.b ~width:w hi in
  let below = Builder.lt k.b ~signed:true ax clo in
  let above = Builder.gt k.b ~signed:true ax chi in
  let sat = Builder.mux k.b below clo (Builder.mux k.b above chi ax) in
  let wr = Bits.width_for_signed_range lo hi in
  Builder.slice k.b sat ~hi:(wr - 1) ~lo:0

let mux k sel a b =
  log k "DFEVar %s = sel ? a : b;" (fresh k "x");
  let w = max (Builder.width a) (Builder.width b) in
  Builder.mux k.b sel (Builder.sext k.b a w) (Builder.sext k.b b w)

let counter k ~modulo =
  k.has_state <- true;
  let rec lg n = if n <= 1 then 0 else 1 + lg (n / 2) in
  let w = max 1 (lg modulo) in
  if 1 lsl w <> modulo then invalid_arg "Kernel.counter: modulo must be a power of two";
  log k "DFEVar cnt = control.count.simpleCounter(%d);" w;
  let q = Builder.reg k.b ~width:w (fresh k "cnt") in
  Builder.connect k.b q (Builder.add k.b q (Builder.const k.b ~width:w 1));
  q

let hold k ~enable a =
  k.has_state <- true;
  log k "DFEVar %s = Reductions.streamHold(x, en);" (fresh k "h");
  let q = Builder.reg k.b ~enable ~width:(Builder.width a) (fresh k "hold") in
  Builder.connect k.b q a;
  q

let output k name s =
  log k "io.output(\"%s\", %s, dfeInt(%d));" name name (Builder.width s);
  Builder.output k.b name s

(* MaxCompiler pipelines kernels to its stream clock; one DSP traversal per
   stage bounds the achievable period. *)
let target_period_ns = Device.xcvu9p.Device.dsp_delay

let finalize ?(pipeline = true) k =
  let c = Builder.finalize k.b in
  if (not pipeline) || k.has_state then c
  else
    let t = Timing.analyze Device.xcvu9p c in
    let stages =
      (* Aim below the target so stage imbalance still closes timing. *)
      max 1 (int_of_float (ceil (t.Timing.period_ns /. (0.75 *. target_period_ns))))
    in
    Pipeline.retime ~stages c

let listing k =
  String.concat "\n"
    ((Printf.sprintf "class %s extends Kernel {" k.kname :: List.rev k.trace)
    @ [ "}" ])

let pipeline_depth (c : Netlist.t) =
  let n = Netlist.num_nodes c in
  let rank = Array.make n 0 in
  (* Ranks propagate through registers (+1) and combinational nodes (max).
     Iterations are bounded by the node count: that settles every acyclic
     (feed-forward pipeline) circuit, the only shape this is meant for. *)
  let order = Netlist.comb_order c in
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds <= n do
    incr rounds;
    changed := false;
    Array.iter
      (fun u ->
        let nd = Netlist.node c u in
        let r =
          match nd.kind with
          | Netlist.Reg { d; _ } -> rank.(d) + 1
          | _ ->
              List.fold_left
                (fun acc op -> max acc rank.(op))
                0 (Netlist.operands nd)
        in
        if r > rank.(u) then begin
          rank.(u) <- r;
          changed := true
        end)
      order;
    (* Re-evaluate register ranks (their d is not in comb order edges). *)
    Array.iter
      (fun (nd : Netlist.node) ->
        match nd.kind with
        | Netlist.Reg { d; _ } ->
            if rank.(d) + 1 > rank.(nd.uid) then begin
              rank.(nd.uid) <- rank.(d) + 1;
              changed := true
            end
        | _ -> ())
      c.nodes
  done;
  List.fold_left (fun acc (_, u) -> max acc rank.(u)) 0 c.outputs
