let pcie_gbytes_per_s = 15.75
let pcie_pins = 59
let max_stream_clock_mhz = 403.13

type system = {
  kernel : Hw.Netlist.t;
  ticks_per_op : int;
  bits_per_op : int;
  depth : int;
}

let build ?depth ~kernel ~ticks_per_op () =
  {
    kernel;
    ticks_per_op;
    (* A matrix is 64 coefficients padded to 16 bits on the link. *)
    bits_per_op = 64 * 16;
    depth =
      (match depth with
      | Some d -> d
      | None -> Kernel.pipeline_depth kernel);
  }

type report = {
  fmax_mhz : float;
  throughput_mops : float;
  pcie_bound : bool;
  latency_ticks : int;
}

let evaluate s =
  let t = Hw.Timing.analyze Hw.Device.xcvu9p s.kernel in
  let fmax = Float.min t.Hw.Timing.fmax_mhz max_stream_clock_mhz in
  let compute_mops = fmax /. float_of_int s.ticks_per_op in
  let pcie_mops =
    pcie_gbytes_per_s *. 1e9 /. (float_of_int s.bits_per_op /. 8.) /. 1e6
  in
  let throughput = Float.min compute_mops pcie_mops in
  {
    fmax_mhz = fmax;
    throughput_mops = throughput;
    pcie_bound = pcie_mops < compute_mops;
    latency_ticks = s.depth + (2 * s.ticks_per_op);
  }
