lib/maxj/kernel.ml: Array Bits Builder Device Hw List Netlist Pipeline Printf String Timing
