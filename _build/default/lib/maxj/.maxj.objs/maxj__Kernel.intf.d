lib/maxj/kernel.mli: Hw
