lib/maxj/manager.ml: Float Hw Kernel
