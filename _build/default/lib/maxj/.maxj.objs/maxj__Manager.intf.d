lib/maxj/manager.mli: Hw
