lib/maxj/idct_maxj.ml: Array Bits Builder Hw Idct Instantiate Kernel Lazy List Manager Printf Sim String
