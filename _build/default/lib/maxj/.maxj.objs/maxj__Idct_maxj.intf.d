lib/maxj/idct_maxj.mli: Hw Idct Manager
