lib/chisel/idct_gen.mli: Axis Hw
