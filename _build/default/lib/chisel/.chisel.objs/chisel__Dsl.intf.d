lib/chisel/dsl.mli: Hw
