lib/chisel/dsl.ml: Bits Builder Hw
