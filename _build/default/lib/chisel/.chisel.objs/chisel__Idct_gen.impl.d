lib/chisel/idct_gen.ml: Array Axis Builder Dsl Hw Idct Lazy Printf
