(** Hardware-construction eDSL with automatic width inference.

    This is the repository's stand-in for Chisel: signed hardware values
    whose widths grow through operators exactly as Chisel's [SInt]
    inference does — addition widens by one bit, multiplication sums the
    operand widths — so a generator written against this module produces
    minimal-width datapaths, the effect the paper credits for Chisel's
    area advantage over fixed-width Verilog.

    All values are signed; the carrier is a {!Hw.Builder.s}. *)

type t
(** A signed hardware value. *)

val of_raw : Hw.Builder.s -> t
(** View a raw signal as signed (width unchanged). *)

val raw : t -> Hw.Builder.s
val width : t -> int

val lit : Hw.Builder.t -> int -> t
(** Literal with the minimal signed width. *)

val add : Hw.Builder.t -> t -> t -> t
(** Result width [max wa wb + 1]. *)

val sub : Hw.Builder.t -> t -> t -> t
val mul : Hw.Builder.t -> t -> t -> t
(** Result width [wa + wb]. *)

val mulc : Hw.Builder.t -> int -> t -> t
(** Multiplication by a constant; result width [width-of-constant + wb]. *)

val shl : Hw.Builder.t -> t -> int -> t
(** Result width [w + n]. *)

val asr_ : Hw.Builder.t -> t -> int -> t
(** Arithmetic shift right; result width [w - n] (at least 1): the shifted
    value fits exactly. *)

val resize : Hw.Builder.t -> t -> int -> t
(** Sign-extend or truncate to the given width. *)

val clamp : Hw.Builder.t -> lo:int -> hi:int -> t -> t
(** Saturate to [lo, hi]; result has the minimal width holding the range. *)

val mux : Hw.Builder.t -> Hw.Builder.s -> t -> t -> t
(** Select between two signed values; arms are extended to a common
    width. *)
