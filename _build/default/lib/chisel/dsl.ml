open Hw

type t = Builder.s

let of_raw s = s
let raw s = s
let width = Builder.width

let lit b v =
  let w = Bits.width_for_signed_range v v in
  Builder.const b ~width:w v

let binop_widen f b x y =
  let w = 1 + max (width x) (width y) in
  f b (Builder.sext b x w) (Builder.sext b y w)

let add b x y = binop_widen Builder.add b x y
let sub b x y = binop_widen Builder.sub b x y

let mul b x y =
  let w = width x + width y in
  if w > Bits.max_width then
    failwith "Dsl.mul: product width exceeds the 62-bit netlist limit";
  Builder.mul b (Builder.sext b x w) (Builder.sext b y w)

let mulc b c y = mul b (lit b c) y

let shl b x n = Builder.shl_const b (Builder.sext b x (width x + n)) n

let asr_ b x n =
  if n = 0 then x
  else
    let w = width x in
    (* The result of a signed shift fits exactly in [w - n] bits (the top
       bits are sign copies); shifting past the width leaves the sign. *)
    if n >= w then Builder.slice b x ~hi:(w - 1) ~lo:(w - 1)
    else Builder.slice b x ~hi:(w - 1) ~lo:n

let resize b x w =
  if w = width x then x
  else if w < width x then Builder.slice b x ~hi:(w - 1) ~lo:0
  else Builder.sext b x w

let clamp b ~lo ~hi x =
  let wr = Bits.width_for_signed_range lo hi in
  let w = max (width x) wr in
  let xe = resize b x w in
  let clo = Builder.const b ~width:w lo and chi = Builder.const b ~width:w hi in
  let below = Builder.lt b ~signed:true xe clo in
  let above = Builder.gt b ~signed:true xe chi in
  let sat = Builder.mux b below clo (Builder.mux b above chi xe) in
  resize b sat wr

let mux b sel x y =
  let w = max (width x) (width y) in
  Builder.mux b sel (resize b x w) (resize b y w)
