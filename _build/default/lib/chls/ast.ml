type ctype = { width : int; signed : bool }

let int_t = { width = 32; signed = true }
let short_t = { width = 16; signed = true }

type binop =
  | Add | Sub | Mul
  | Shl | Shr
  | And | Or | Xor
  | Lt | Le | Gt | Ge | Eq | Ne

type expr =
  | Int of int
  | Var of string
  | Load of string * expr
  | Bin of binop * expr * expr
  | Neg of expr
  | Cond of expr * expr * expr
  | Call of string * expr list

type stmt =
  | Assign of string * expr
  | Store of string * expr * expr
  | If of expr * stmt list * stmt list
  | For of { ivar : string; bound : int; body : stmt list }
  | CallStmt of string * arg list
  | Return of expr

and arg = AExpr of expr | AArray of string | AView of string * expr * int

type param = PScalar of string * ctype | PArray of string * ctype * int

type func = {
  fname : string;
  params : param list;
  ret : ctype option;
  locals : (string * ctype) list;
  arrays : (string * ctype * int) list;
  body : stmt list;
}

type program = { funcs : func list; top : string }

let find_func p name = List.find (fun f -> f.fname = name) p.funcs

(* ---------------- interpreter (C int semantics) ---------------- *)

type memory = (string, int array) Hashtbl.t

let mask32 v = v land 0xFFFFFFFF
let signed32 v = let v = mask32 v in if v land 0x80000000 <> 0 then v - 0x100000000 else v
let trunc (t : ctype) v =
  let m = (1 lsl t.width) - 1 in
  let v = v land m in
  if t.signed && v land (1 lsl (t.width - 1)) <> 0 then v - (1 lsl t.width)
  else v

exception Returned of int

let rec eval_binop op x y =
  let b v = if v then 1 else 0 in
  match op with
  | Add -> signed32 (x + y)
  | Sub -> signed32 (x - y)
  | Mul -> signed32 (x * y)
  | Shl -> signed32 (x lsl (y land 31))
  | Shr -> x asr (y land 31)
  | And -> signed32 (x land y)
  | Or -> signed32 (x lor y)
  | Xor -> signed32 (x lxor y)
  | Lt -> b (x < y)
  | Le -> b (x <= y)
  | Gt -> b (x > y)
  | Ge -> b (x >= y)
  | Eq -> b (x = y)
  | Ne -> b (x <> y)

and eval p env (mem : memory) types (e : expr) =
  match e with
  | Int v -> v
  | Var x -> (
      match Hashtbl.find_opt env x with
      | Some v -> v
      | None -> failwith (Printf.sprintf "C interp: unbound %s" x))
  | Load (a, i) -> (
      let idx = eval p env mem types i in
      match Hashtbl.find_opt mem a with
      | Some arr ->
          if idx < 0 || idx >= Array.length arr then
            failwith (Printf.sprintf "C interp: %s[%d] out of bounds" a idx)
          else arr.(idx)
      | None -> failwith (Printf.sprintf "C interp: unknown array %s" a))
  | Bin (op, x, y) ->
      eval_binop op (eval p env mem types x) (eval p env mem types y)
  | Neg x -> signed32 (-eval p env mem types x)
  | Cond (c, t, f) ->
      if eval p env mem types c <> 0 then eval p env mem types t
      else eval p env mem types f
  | Call (fn, args) -> (
      let f = find_func p fn in
      let vargs = List.map (fun a -> `Int (eval p env mem types a)) args in
      match run p f ~args:vargs with
      | Some v -> v
      | None -> failwith (Printf.sprintf "C interp: %s returns void" fn))

and exec p env mem types (s : stmt) =
  match s with
  | Assign (x, e) ->
      let t =
        match Hashtbl.find_opt types x with Some t -> t | None -> int_t
      in
      Hashtbl.replace env x (trunc t (eval p env mem types e))
  | Store (a, i, e) ->
      let idx = eval p env mem types i in
      let v = eval p env mem types e in
      let arr = Hashtbl.find mem a in
      if idx < 0 || idx >= Array.length arr then
        failwith (Printf.sprintf "C interp: %s[%d] out of bounds" a idx);
      let t = match Hashtbl.find_opt types a with Some t -> t | None -> int_t in
      arr.(idx) <- trunc t v
  | If (c, th, el) ->
      if eval p env mem types c <> 0 then List.iter (exec p env mem types) th
      else List.iter (exec p env mem types) el
  | For { ivar; bound; body } ->
      for i = 0 to bound - 1 do
        Hashtbl.replace env ivar i;
        List.iter (exec p env mem types) body
      done
  | CallStmt (fn, args) ->
      let f = find_func p fn in
      (* Views are materialized as copies around the call — equivalent for
         single-threaded C semantics. *)
      let cleanups = ref [] in
      let param_len k =
        match List.nth f.params k with
        | PArray (_, _, n) -> n
        | PScalar _ -> failwith "C interp: view bound to scalar parameter"
      in
      let vargs =
        List.mapi
          (fun k arg ->
            match arg with
            | AExpr e -> `Int (eval p env mem types e)
            | AArray a -> `Arr (Hashtbl.find mem a)
            | AView (a, off, stride) ->
                let base = eval p env mem types off in
                let arr = Hashtbl.find mem a in
                let n = param_len k in
                let view = Array.init n (fun j -> arr.(base + (j * stride))) in
                cleanups :=
                  (fun () ->
                    Array.iteri (fun j v -> arr.(base + (j * stride)) <- v) view)
                  :: !cleanups;
                `Arr view)
          args
      in
      ignore (run p f ~args:vargs);
      List.iter (fun fin -> fin ()) !cleanups
  | Return e -> raise (Returned (eval p env mem types e))

and run p (f : func) ~args =
  let env = Hashtbl.create 16 in
  let mem : memory = Hashtbl.create 8 in
  let types = Hashtbl.create 16 in
  List.iter (fun (x, t) -> Hashtbl.replace types x t) f.locals;
  List.iter (fun (a, t, _) -> Hashtbl.replace types a t) f.arrays;
  List.iter
    (fun prm ->
      match prm with
      | PScalar (x, t) -> Hashtbl.replace types x t
      | PArray (a, t, _) -> Hashtbl.replace types a t)
    f.params;
  List.iter2
    (fun prm arg ->
      match (prm, arg) with
      | PScalar (x, t), `Int v -> Hashtbl.replace env x (trunc t v)
      | PArray (a, _, n), `Arr arr ->
          if Array.length arr <> n then
            failwith (Printf.sprintf "C interp: %s length mismatch" a);
          Hashtbl.replace mem a arr
      | PScalar _, `Arr _ | PArray _, `Int _ ->
          failwith "C interp: argument kind mismatch")
    f.params args;
  List.iter (fun (a, _, n) -> Hashtbl.replace mem a (Array.make n 0)) f.arrays;
  try
    List.iter (exec p env mem types) f.body;
    None
  with Returned v -> Some v

let interp p name ~args =
  let f = find_func p name in
  run p f ~args
