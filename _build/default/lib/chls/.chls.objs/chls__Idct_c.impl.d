lib/chls/idct_c.ml: Array Ast Idct List
