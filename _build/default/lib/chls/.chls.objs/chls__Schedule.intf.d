lib/chls/schedule.mli: Ast Transform
