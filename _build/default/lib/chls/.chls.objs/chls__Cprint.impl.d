lib/chls/cprint.ml: Ast Hashtbl List Option Printf String
