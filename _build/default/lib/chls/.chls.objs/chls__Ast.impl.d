lib/chls/ast.ml: Array Hashtbl List Printf
