lib/chls/tool.ml: Array Ast Axis Fsm Hashtbl Hw Idct_c List Option Printf Schedule String Transform
