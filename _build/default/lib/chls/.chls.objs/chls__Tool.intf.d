lib/chls/tool.mli: Ast Axis Hw Schedule Transform
