lib/chls/transform.mli: Ast
