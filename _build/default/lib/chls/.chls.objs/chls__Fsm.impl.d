lib/chls/fsm.ml: Array Ast Axis Builder Hashtbl Hw List Netlist Option Printf Schedule Transform
