lib/chls/fsm.mli: Hw Schedule
