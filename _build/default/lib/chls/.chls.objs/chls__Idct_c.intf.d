lib/chls/idct_c.mli: Ast Idct
