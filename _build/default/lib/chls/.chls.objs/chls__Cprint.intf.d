lib/chls/cprint.mli: Ast
