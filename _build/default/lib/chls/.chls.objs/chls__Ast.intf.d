lib/chls/ast.mli: Hashtbl
