lib/chls/transform.ml: Ast List Printf
