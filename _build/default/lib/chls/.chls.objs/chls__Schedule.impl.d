lib/chls/schedule.ml: Array Ast Float Hashtbl List Option Printf Transform
