(** Front-end transformations: from the C AST to the scheduler's IR.

    The pipeline inlines calls (value calls always — they become select
    networks; statement calls structurally, with per-call-site renaming),
    optionally unrolls all loops (constant-folding the induction variable
    away), and if-converts conditionals into predicated assignments.  The
    result is a flat list of regions of straight-line code.

    When [inline_calls] is false the call bodies are still stitched in
    (there is a single FSM), but every original call boundary costs a
    synchronization region — the stream-interface overhead the paper
    observes with push-button Vivado HLS. *)

type options = {
  inline_calls : bool;
  unroll : bool;
  partition : string list;       (** arrays elaborated as registers *)
  call_sync_cycles : int;        (** overhead per non-inlined call site *)
}

val default_options : options
(** inline, no unroll, nothing partitioned, 8 sync cycles. *)

type block = Ast.stmt list
(** Only [Assign] and [Store] statements, call-free expressions. *)

type region =
  | RStraight of block
  | RLoop of { ivar : string; bound : int; body : region list }
  | RWait of int                 (** idle synchronization cycles *)
  | RCapture
      (** stall until [s_valid]; latch the eight input lanes into the
          variables [__in0] .. [__in7] (interface construct, added by
          {!Tool}) *)
  | REmit
      (** assert [m_valid] with lanes [__out0] .. [__out7]; stall until
          [m_ready]; [m_last] tracks the beat counter [__ob] *)

type proc = {
  pname : string;
  arrays : (string * Ast.ctype * int * bool) list;
      (** name, element type, length, partitioned? — parameter and local
          arrays alike *)
  vars : (string * Ast.ctype) list;
  regions : region list;
}

val expand_calls : Ast.program -> Ast.expr -> Ast.expr
(** Inline every value-returning call in the expression (e.g. [iclip]). *)

val lower : options -> Ast.program -> proc
(** Lowers [program.top].  Loops may nest and contain calls; conditionals
    must contain only assignments and stores.
    @raise Failure on constructs outside the supported subset. *)
