let binop_sym (op : Ast.binop) =
  match op with
  | Ast.Add -> "+"
  | Ast.Sub -> "-"
  | Ast.Mul -> "*"
  | Ast.Shl -> "<<"
  | Ast.Shr -> ">>"
  | Ast.And -> "&"
  | Ast.Or -> "|"
  | Ast.Xor -> "^"
  | Ast.Lt -> "<"
  | Ast.Le -> "<="
  | Ast.Gt -> ">"
  | Ast.Ge -> ">="
  | Ast.Eq -> "=="
  | Ast.Ne -> "!="

let rec expr_to_string (e : Ast.expr) =
  match e with
  | Ast.Int v -> string_of_int v
  | Ast.Var x -> x
  | Ast.Load (a, i) -> Printf.sprintf "%s[%s]" a (expr_to_string i)
  | Ast.Bin (op, x, y) ->
      Printf.sprintf "%s %s %s" (atom x) (binop_sym op) (atom y)
  | Ast.Neg x -> "-" ^ atom x
  | Ast.Cond (c, t, f) ->
      Printf.sprintf "%s ? %s : %s" (atom c) (atom t) (atom f)
  | Ast.Call (f, args) ->
      Printf.sprintf "%s(%s)" f (String.concat ", " (List.map expr_to_string args))

and atom (e : Ast.expr) =
  match e with
  | Ast.Int v when v < 0 -> "(" ^ string_of_int v ^ ")"
  | Ast.Int _ | Ast.Var _ | Ast.Load _ | Ast.Call _ -> expr_to_string e
  | Ast.Bin _ | Ast.Neg _ | Ast.Cond _ -> "(" ^ expr_to_string e ^ ")"

let type_str (t : Ast.ctype) =
  match (t.Ast.width, t.Ast.signed) with
  | 32, true -> "int"
  | 16, true -> "short"
  | 8, true -> "char"
  | w, true -> Printf.sprintf "int%d_t" w
  | w, false -> Printf.sprintf "uint%d_t" w

let rec stmt_lines indent (s : Ast.stmt) =
  let pad = String.make indent ' ' in
  match s with
  | Ast.Assign (x, e) -> [ Printf.sprintf "%s%s = %s;" pad x (expr_to_string e) ]
  | Ast.Store (a, i, e) ->
      [
        Printf.sprintf "%s%s[%s] = %s;" pad a (expr_to_string i)
          (expr_to_string e);
      ]
  | Ast.If (c, th, []) ->
      (Printf.sprintf "%sif (%s) {" pad (expr_to_string c))
      :: List.concat_map (stmt_lines (indent + 2)) th
      @ [ pad ^ "}" ]
  | Ast.If (c, th, el) ->
      (Printf.sprintf "%sif (%s) {" pad (expr_to_string c))
      :: List.concat_map (stmt_lines (indent + 2)) th
      @ [ pad ^ "} else {" ]
      @ List.concat_map (stmt_lines (indent + 2)) el
      @ [ pad ^ "}" ]
  | Ast.For { ivar; bound; body } ->
      (Printf.sprintf "%sfor (%s = 0; %s < %d; %s++) {" pad ivar ivar bound
         ivar)
      :: List.concat_map (stmt_lines (indent + 2)) body
      @ [ pad ^ "}" ]
  | Ast.CallStmt (f, args) ->
      let arg_str = function
        | Ast.AExpr e -> expr_to_string e
        | Ast.AArray a -> a
        | Ast.AView (a, off, 1) ->
            Printf.sprintf "%s + %s" a (expr_to_string off)
        | Ast.AView (a, off, stride) ->
            Printf.sprintf "%s + %s /* stride %d */" a (expr_to_string off)
              stride
      in
      [
        Printf.sprintf "%s%s(%s);" pad f
          (String.concat ", " (List.map arg_str args));
      ]
  | Ast.Return e -> [ Printf.sprintf "%sreturn %s;" pad (expr_to_string e) ]

let emit_func ?(pragmas = []) (f : Ast.func) =
  let param_str = function
    | Ast.PScalar (x, t) -> Printf.sprintf "%s %s" (type_str t) x
    | Ast.PArray (a, t, n) -> Printf.sprintf "%s %s[%d]" (type_str t) a n
  in
  let ret = match f.Ast.ret with Some t -> type_str t | None -> "void" in
  let header =
    Printf.sprintf "%s %s(%s) {" ret f.Ast.fname
      (String.concat ", " (List.map param_str f.Ast.params))
  in
  let decls =
    (match f.Ast.locals with
    | [] -> []
    | ls ->
        (* Group locals of one type on one line, as the original does. *)
        let by_type = Hashtbl.create 4 in
        List.iter
          (fun (x, t) ->
            let k = type_str t in
            Hashtbl.replace by_type k
              (x :: Option.value ~default:[] (Hashtbl.find_opt by_type k)))
          ls;
        Hashtbl.fold
          (fun ty xs acc ->
            Printf.sprintf "  %s %s;" ty (String.concat ", " (List.rev xs))
            :: acc)
          by_type [])
    @ List.map
        (fun (a, t, n) -> Printf.sprintf "  %s %s[%d];" (type_str t) a n)
        f.Ast.arrays
  in
  String.concat "\n"
    ((header :: List.map (fun s -> "  " ^ s) pragmas)
    @ decls
    @ List.concat_map (stmt_lines 2) f.Ast.body
    @ [ "}" ])

let emit ?(pragmas = []) (p : Ast.program) =
  String.concat "\n\n"
    (List.map
       (fun (f : Ast.func) ->
         let prag =
           Option.value ~default:[] (List.assoc_opt f.Ast.fname pragmas)
         in
         emit_func ~pragmas:prag f)
       p.Ast.funcs)

let stmt_strings st = stmt_lines 0 st
