(** C subset for the high-level-synthesis flow.

    The subset covers what HLS benchmarks like the mpeg2decode IDCT use:
    [int]/[short] scalars, fixed-size local or parameter arrays, counted
    [for] loops, [if]/conditional expressions, function calls (value
    returning or void with array side effects), and the usual arithmetic.
    Semantics are two's-complement with C [int] (32-bit) arithmetic:
    operands are promoted to 32 bits, assignment truncates to the target's
    width — matched exactly by {!interp} and by the generated hardware. *)

type ctype = { width : int; signed : bool }

val int_t : ctype
(** 32-bit signed. *)

val short_t : ctype
(** 16-bit signed. *)

type binop =
  | Add | Sub | Mul
  | Shl | Shr                    (** [>>] is arithmetic on signed values *)
  | And | Or | Xor
  | Lt | Le | Gt | Ge | Eq | Ne

type expr =
  | Int of int
  | Var of string
  | Load of string * expr        (** [a[i]] *)
  | Bin of binop * expr * expr
  | Neg of expr
  | Cond of expr * expr * expr   (** [c ? t : f] *)
  | Call of string * expr list   (** value-returning call *)

type stmt =
  | Assign of string * expr
  | Store of string * expr * expr   (** [a[i] = e] *)
  | If of expr * stmt list * stmt list
  | For of { ivar : string; bound : int; body : stmt list }
      (** [for (ivar = 0; ivar < bound; ivar++)] *)
  | CallStmt of string * arg list   (** void call *)
  | Return of expr

and arg =
  | AExpr of expr
  | AArray of string
  | AView of string * expr * int
      (** [AView (a, offset, stride)] passes the in-place view
          [a[offset + k*stride]] — C pointer arithmetic like
          [idct_row(blk + 8*i)] or a strided column. *)
(** Array arguments are passed by reference. *)

type param = PScalar of string * ctype | PArray of string * ctype * int

type func = {
  fname : string;
  params : param list;
  ret : ctype option;
  locals : (string * ctype) list;
  arrays : (string * ctype * int) list;   (** local arrays *)
  body : stmt list;
}

type program = { funcs : func list; top : string }

val find_func : program -> string -> func

val eval_binop : binop -> int -> int -> int
(** C [int] semantics of one operator (32-bit wrap-around). *)

(** {1 Reference interpreter} *)

type memory = (string, int array) Hashtbl.t
(** Array name to contents (values stored truncated to the element type). *)

val interp :
  program -> string -> args:[ `Int of int | `Arr of int array ] list ->
  int option
(** Runs a function; [`Arr] arguments are mutated in place (C reference
    semantics).  Returns the function result, if any. *)
