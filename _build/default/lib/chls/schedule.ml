type config = {
  read_ports : int;
  write_ports : int;
  multipliers : int;
  chain_ns : float;
}

let default_config =
  { read_ports = 1; write_ports = 1; multipliers = 1; chain_ns = 5.0 }

type okind =
  | KConst of int
  | KVar of string
  | KBin of Ast.binop
  | KNeg
  | KCond
  | KLoad of string
  | KStore of string
  | KDefVar of string

type op = {
  oid : int;
  kind : okind;
  data_deps : int list;
  mem_deps : (int * [ `Strict | `Weak ]) list;
  mutable step : int;
  mutable port : int;
  mutable unit_id : int;
}

type block = { ops : op array; n_steps : int }

type sregion =
  | SBlock of block
  | SLoop of { ivar : string; bound : int; body : sregion list }
  | SWait of int
  | SCapture
  | SEmit

type t = { proc : Transform.proc; config : config; regions : sregion list }

let is_partitioned proc a =
  match List.find_opt (fun (a', _, _, _) -> a' = a) proc.Transform.arrays with
  | Some (_, _, _, p) -> p
  | None -> failwith (Printf.sprintf "Chls: unknown array %s" a)

let is_const_op ops i =
  match ops.(i).kind with KConst _ -> true | _ -> false

let is_shared_mul (o : op) =
  match o.kind with KBin Ast.Mul -> true | _ -> false

(* ---------------- DFG construction ---------------- *)

type dfg_builder = {
  proc : Transform.proc;
  mutable nodes : op list;          (* reversed *)
  mutable count : int;
  mutable last_def : (string * int) list;      (* var -> value node *)
  mutable last_defvar : (string * int) list;    (* var -> commit node *)
  mutable last_store : (string * int) list;    (* array -> last store node *)
  mutable loads_since : (string * int list) list;  (* array -> loads since *)
}

let new_op d kind data_deps mem_deps =
  let o =
    { oid = d.count; kind; data_deps; mem_deps; step = -1; port = -1; unit_id = -1 }
  in
  d.nodes <- o :: d.nodes;
  d.count <- d.count + 1;
  o.oid

let rec build_expr d (e : Ast.expr) =
  match e with
  | Ast.Int v -> new_op d (KConst v) [] []
  | Ast.Var x -> (
      match List.assoc_opt x d.last_def with
      | Some n -> n
      | None -> new_op d (KVar x) [] [])
  | Ast.Load (a, i) ->
      let ni = build_expr d i in
      let mem =
        (match List.assoc_opt a d.last_store with
        | Some s -> [ (s, `Strict) ]
        | None -> [])
      in
      let n = new_op d (KLoad a) [ ni ] mem in
      let cur = Option.value ~default:[] (List.assoc_opt a d.loads_since) in
      d.loads_since <-
        (a, n :: cur) :: List.remove_assoc a d.loads_since;
      n
  | Ast.Bin (op, x, y) ->
      let nx = build_expr d x in
      let ny = build_expr d y in
      new_op d (KBin op) [ nx; ny ] []
  | Ast.Neg x -> new_op d KNeg [ build_expr d x ] []
  | Ast.Cond (c, t, f) ->
      let nc = build_expr d c in
      let nt = build_expr d t in
      let nf = build_expr d f in
      new_op d KCond [ nc; nt; nf ] []
  | Ast.Call _ -> failwith "Chls.schedule: calls must be inlined"

let build_stmt d (s : Ast.stmt) =
  match s with
  | Ast.Assign (x, e) ->
      let n = build_expr d e in
      (* Commits to the same variable register must stay in order (the
         last write must land in the latest step). *)
      let waw =
        match List.assoc_opt x d.last_defvar with
        | Some prev -> [ (prev, `Strict) ]
        | None -> []
      in
      let def = new_op d (KDefVar x) [ n ] waw in
      d.last_def <- (x, n) :: List.remove_assoc x d.last_def;
      d.last_defvar <- (x, def) :: List.remove_assoc x d.last_defvar
  | Ast.Store (a, i, e) ->
      let ni = build_expr d i in
      let nv = build_expr d e in
      let mem =
        (match List.assoc_opt a d.last_store with
        | Some s' -> [ (s', `Strict) ]
        | None -> [])
        @ List.map
            (fun l -> (l, `Weak))
            (Option.value ~default:[] (List.assoc_opt a d.loads_since))
      in
      let n = new_op d (KStore a) [ ni; nv ] mem in
      d.last_store <- (a, n) :: List.remove_assoc a d.last_store;
      d.loads_since <- (a, []) :: List.remove_assoc a d.loads_since
  | Ast.If _ | Ast.For _ | Ast.CallStmt _ | Ast.Return _ ->
      failwith "Chls.schedule: non-simple statement in block"

(* ---------------- delays ---------------- *)

let op_delay proc ops (o : op) =
  match o.kind with
  | KConst _ | KVar _ | KDefVar _ -> 0.0
  | KLoad a -> (
      match o.data_deps with
      | [ i ] when is_partitioned proc a && is_const_op ops i -> 0.0
      | _ -> 0.9)
  | KStore _ -> 0.0
  | KNeg -> 0.7
  | KCond -> 0.3
  | KBin b -> (
      match b with
      | Ast.Add | Ast.Sub | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq
      | Ast.Ne ->
          0.7
      | Ast.Mul ->
          (* Constant multiplications become shift-add networks. *)
          if List.exists (is_const_op ops) o.data_deps then 1.6 else 2.5
      | Ast.Shl | Ast.Shr -> 0.0
      | Ast.And | Ast.Or | Ast.Xor -> 0.3)

(* ---------------- list scheduling of one block ---------------- *)

let schedule_block (cfg : config) proc (stmts : Ast.stmt list) =
  let d =
    {
      proc;
      nodes = [];
      count = 0;
      last_def = [];
      last_defvar = [];
      last_store = [];
      loads_since = [];
    }
  in
  List.iter (build_stmt d) stmts;
  let ops = Array.of_list (List.rev d.nodes) in
  let n = Array.length ops in
  let arrival = Array.make n 0.0 in
  (* Resource usage tables: (step, key) -> count. *)
  let usage : (int * string, int) Hashtbl.t = Hashtbl.create 64 in
  let used step key = Option.value ~default:0 (Hashtbl.find_opt usage (step, key)) in
  let take step key =
    Hashtbl.replace usage (step, key) (used step key + 1);
    used step key - 1
  in
  let needs_port o =
    match o.kind with
    | KLoad a when not (is_partitioned proc a) -> Some (`R, a)
    | KStore a when not (is_partitioned proc a) -> Some (`W, a)
    | KLoad _ | KStore _ | KConst _ | KVar _ | KBin _ | KNeg | KCond
    | KDefVar _ ->
        None
  in
  for i = 0 to n - 1 do
    let o = ops.(i) in
    let delay = op_delay proc ops o in
    (* Earliest step and chained arrival from data deps. *)
    let earliest = ref 0 and chain_in = ref 0.0 in
    List.iter
      (fun dep ->
        let do_ = ops.(dep) in
        if do_.step > !earliest then begin
          earliest := do_.step;
          chain_in := arrival.(dep)
        end
        else if do_.step = !earliest then chain_in := Float.max !chain_in arrival.(dep))
      o.data_deps;
    List.iter
      (fun (dep, kind) ->
        let req =
          match kind with
          | `Strict -> ops.(dep).step + 1
          | `Weak -> ops.(dep).step
        in
        if req > !earliest then begin
          earliest := req;
          chain_in := 0.0
        end)
      o.mem_deps;
    let step = ref !earliest and chain = ref !chain_in in
    if !chain +. delay > cfg.chain_ns then begin
      incr step;
      chain := 0.0
    end;
    (* Resource constraints. *)
    let fits s =
      (match needs_port o with
      | Some (`R, a) -> used s ("R" ^ a) < cfg.read_ports
      | Some (`W, a) -> used s ("W" ^ a) < cfg.write_ports
      | None -> true)
      && ((not (is_shared_mul o && not (List.exists (is_const_op ops) o.data_deps)))
         || used s "MUL" < cfg.multipliers)
    in
    while not (fits !step) do
      incr step;
      chain := 0.0
    done;
    (match needs_port o with
    | Some (`R, a) -> o.port <- take !step ("R" ^ a)
    | Some (`W, a) -> o.port <- take !step ("W" ^ a)
    | None -> ());
    if is_shared_mul o && not (List.exists (is_const_op ops) o.data_deps) then
      o.unit_id <- take !step "MUL";
    o.step <- !step;
    arrival.(i) <- (if !step > !earliest then delay else !chain +. delay)
  done;
  let n_steps = Array.fold_left (fun acc o -> max acc (o.step + 1)) 1 ops in
  { ops; n_steps }

let rec schedule_region cfg proc (r : Transform.region) =
  match r with
  | Transform.RStraight b -> SBlock (schedule_block cfg proc b)
  | Transform.RLoop { ivar; bound; body } ->
      SLoop { ivar; bound; body = List.map (schedule_region cfg proc) body }
  | Transform.RWait k -> SWait k
  | Transform.RCapture -> SCapture
  | Transform.REmit -> SEmit

let schedule cfg (proc : Transform.proc) =
  { proc; config = cfg; regions = List.map (schedule_region cfg proc) proc.Transform.regions }

let rec region_cycles = function
  | SBlock b -> b.n_steps
  | SWait k -> k
  | SCapture | SEmit -> 1
  | SLoop { bound; body; _ } ->
      bound * List.fold_left (fun acc r -> acc + region_cycles r) 0 body

let total_cycles t =
  List.fold_left (fun acc r -> acc + region_cycles r) 0 t.regions
