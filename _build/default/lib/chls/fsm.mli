(** FSM + datapath generation: a scheduled procedure becomes a synthesizable
    circuit.

    One state per control step; loops become back-edges guarded by
    iteration-counter registers (nested loops compose by priority — the
    innermost back-edge wins).  Scalar variables become registers; values
    crossing control steps are carried in per-operation result registers.
    Non-partitioned arrays are register files whose access networks are
    shared through hash-consing; the scheduler has already enforced their
    port limits.  Multiplications of two non-constant operands share the
    configuration's multiplier units through state-driven operand muxes —
    which is why HLS designs consume generic (DSP) multipliers where the
    hand-written RTL uses constant shift-add networks.

    [SCapture]/[SEmit] regions make the circuit follow the
    {!Axis.Stream} port convention. *)

val circuit : name:string -> Schedule.t -> Hw.Netlist.t

val state_count : Schedule.t -> int
(** Number of distinct FSM states (loop bodies are counted once; the cycle
    count of a full run is {!Schedule.total_cycles}). *)
