(** C source listing, generated from the same AST the HLS flow compiles
    (the LOC metric counts these lines). *)

val expr_to_string : Ast.expr -> string
val emit_func : ?pragmas:string list -> Ast.func -> string
val emit : ?pragmas:(string * string list) list -> Ast.program -> string
(** [pragmas] maps function names to pragma lines printed at the top of
    the function body (Vivado HLS style). *)

val stmt_strings : Ast.stmt -> string list
(** Rendered lines of one statement (for diagnostics). *)
