open Hw

let clog2 n =
  let rec go k acc = if k >= n then acc else go (2 * k) (acc + 1) in
  max 1 (go 1 0)

(* ---------------- state placement ---------------- *)

type loop = {
  l_ivar : string;
  l_bound : int;
  l_first : int;
  l_depth : int;                 (* nesting depth, 0 = outermost *)
  mutable l_last : int;
}

type placed =
  | PBlock of Schedule.block * int          (* base state *)
  | PWait of int * int                      (* base, length *)
  | PCapture of int
  | PEmit of int * loop option              (* enclosing loop, for m_last *)
  | PLoop of loop * placed list

let rec place ?(depth = 0) counter enclosing (r : Schedule.sregion) =
  match r with
  | Schedule.SBlock b ->
      let base = !counter in
      counter := !counter + b.Schedule.n_steps;
      PBlock (b, base)
  | Schedule.SWait k ->
      let base = !counter in
      counter := !counter + k;
      PWait (base, k)
  | Schedule.SCapture ->
      let s = !counter in
      incr counter;
      PCapture s
  | Schedule.SEmit ->
      let s = !counter in
      incr counter;
      PEmit (s, enclosing)
  | Schedule.SLoop { ivar; bound; body } ->
      let l =
        { l_ivar = ivar; l_bound = bound; l_first = !counter; l_depth = depth;
          l_last = 0 }
      in
      let body' = List.map (place ~depth:(depth + 1) counter (Some l)) body in
      l.l_last <- !counter - 1;
      PLoop (l, body')

let place_all (t : Schedule.t) =
  let counter = ref 0 in
  let placed = List.map (place counter None) t.Schedule.regions in
  (placed, !counter)

let state_count t = snd (place_all t)

let rec collect_loops acc = function
  | PBlock _ | PWait _ | PCapture _ | PEmit _ -> acc
  | PLoop (l, body) ->
      List.fold_left collect_loops (acc @ [ l ]) body

(* ---------------- generation context ---------------- *)

type storage =
  | Rfile of Builder.s array           (* partitioned: one register per word *)
  | Ram of Builder.mem_handle          (* default: LUTRAM *)

type gen = {
  b : Builder.t;
  t : Schedule.t;
  sw : int;
  state : Builder.s;
  var_regs : (string, Builder.s * Ast.ctype) Hashtbl.t;
  elems : (string, storage * Ast.ctype) Hashtbl.t;
  writes : (Netlist.uid, Builder.s * (Builder.s * Builder.s) list ref) Hashtbl.t;
}

let cw = 32 (* C int computation width *)

let at_state g s = Builder.eq g.b g.state (Builder.const g.b ~width:g.sw s)

let request_write g reg en data =
  let key = Builder.uid reg in
  let cell =
    match Hashtbl.find_opt g.writes key with
    | Some (_, c) -> c
    | None ->
        let c = ref [] in
        Hashtbl.replace g.writes key (reg, c);
        c
  in
  cell := (en, data) :: !cell

let var_reg g x =
  match Hashtbl.find_opt g.var_regs x with
  | Some rt -> rt
  | None -> failwith (Printf.sprintf "Chls.fsm: unknown variable %s" x)

let array_regs g a =
  match Hashtbl.find_opt g.elems a with
  | Some et -> et
  | None -> failwith (Printf.sprintf "Chls.fsm: unknown array %s" a)

let truncate g s w =
  if Builder.width s > w then Builder.slice g.b s ~hi:(w - 1) ~lo:0
  else Builder.sext g.b s w

(* ---------------- block datapath ---------------- *)

let gen_block g (blk : Schedule.block) base =
  let ops = blk.Schedule.ops in
  let n = Array.length ops in
  let live_later = Array.make n false in
  Array.iter
    (fun (o : Schedule.op) ->
      List.iter
        (fun d -> if ops.(d).Schedule.step < o.Schedule.step then live_later.(d) <- true)
        o.Schedule.data_deps)
    ops;
  let comb = Array.make n None in
  let res_reg = Array.make n None in
  let use me_step d =
    match ops.(d).Schedule.kind with
    | Schedule.KConst _ -> Option.get comb.(d)
    | _ ->
        if ops.(d).Schedule.step < me_step then
          match res_reg.(d) with
          | Some r -> r
          | None -> failwith "Chls.fsm: missing result register"
        else Option.get comb.(d)
  in
  Array.iteri
    (fun i (o : Schedule.op) ->
      let v =
        match o.Schedule.kind with
        | Schedule.KConst v -> Some (Builder.const g.b ~width:cw v)
        | Schedule.KVar x ->
            let r, _ = var_reg g x in
            Some (Builder.sext g.b r cw)
        | Schedule.KNeg ->
            (match o.Schedule.data_deps with
            | [ a ] -> Some (Builder.neg g.b (use o.Schedule.step a))
            | _ -> assert false)
        | Schedule.KCond ->
            (match o.Schedule.data_deps with
            | [ c; t; f ] ->
                let cv = use o.Schedule.step c in
                let sel = Builder.ne g.b cv (Builder.zero g.b cw) in
                Some
                  (Builder.mux g.b sel (use o.Schedule.step t)
                     (use o.Schedule.step f))
            | _ -> assert false)
        | Schedule.KBin bop ->
            (match o.Schedule.data_deps with
            | [ x; y ] ->
                let a = use o.Schedule.step x and c = use o.Schedule.step y in
                let bool_ s = Builder.uext g.b s cw in
                Some
                  (match bop with
                  | Ast.Add -> Builder.add g.b a c
                  | Ast.Sub -> Builder.sub g.b a c
                  | Ast.Mul -> Builder.mul g.b a c
                  | Ast.Shl -> Builder.shl g.b a c
                  | Ast.Shr -> Builder.sra g.b a c
                  | Ast.And -> Builder.and_ g.b a c
                  | Ast.Or -> Builder.or_ g.b a c
                  | Ast.Xor -> Builder.xor_ g.b a c
                  | Ast.Lt -> bool_ (Builder.lt g.b ~signed:true a c)
                  | Ast.Le -> bool_ (Builder.le g.b ~signed:true a c)
                  | Ast.Gt -> bool_ (Builder.gt g.b ~signed:true a c)
                  | Ast.Ge -> bool_ (Builder.ge g.b ~signed:true a c)
                  | Ast.Eq -> bool_ (Builder.eq g.b a c)
                  | Ast.Ne -> bool_ (Builder.ne g.b a c))
            | _ -> assert false)
        | Schedule.KLoad a ->
            (match o.Schedule.data_deps with
            | [ idx ] ->
                let st, _ty = array_regs g a in
                let v =
                  match st with
                  | Ram m ->
                      let aw = Builder.mem_addr_width m in
                      let addr = truncate g (use o.Schedule.step idx) aw in
                      Builder.mem_read g.b m addr
                  | Rfile regs -> (
                      match ops.(idx).Schedule.kind with
                      | Schedule.KConst k ->
                          if k < 0 || k >= Array.length regs then
                            failwith "Chls.fsm: constant index out of bounds"
                          else regs.(k)
                      | _ ->
                          let aw = clog2 (Array.length regs) in
                          let addr = truncate g (use o.Schedule.step idx) aw in
                          Builder.mux_list g.b addr (Array.to_list regs))
                in
                Some (Builder.sext g.b v cw)
            | _ -> assert false)
        | Schedule.KStore a ->
            (match o.Schedule.data_deps with
            | [ idx; data ] ->
                let st, ty = array_regs g a in
                let en_base = at_state g (base + o.Schedule.step) in
                let d = truncate g (use o.Schedule.step data) ty.Ast.width in
                (match st with
                | Ram m ->
                    let aw = Builder.mem_addr_width m in
                    let addr = truncate g (use o.Schedule.step idx) aw in
                    Builder.mem_write g.b m ~enable:en_base ~addr ~data:d
                | Rfile regs -> (
                    match ops.(idx).Schedule.kind with
                    | Schedule.KConst k -> request_write g regs.(k) en_base d
                    | _ ->
                        let aw = clog2 (Array.length regs) in
                        let addr = truncate g (use o.Schedule.step idx) aw in
                        Array.iteri
                          (fun e r ->
                            let here =
                              Builder.and_ g.b en_base
                                (Builder.eq g.b addr
                                   (Builder.const g.b ~width:aw e))
                            in
                            request_write g r here d)
                          regs));
                None
            | _ -> assert false)
        | Schedule.KDefVar x ->
            (match o.Schedule.data_deps with
            | [ d ] ->
                let r, ty = var_reg g x in
                request_write g r
                  (at_state g (base + o.Schedule.step))
                  (truncate g (use o.Schedule.step d) ty.Ast.width);
                None
            | _ -> assert false)
      in
      comb.(i) <- v;
      match v with
      | Some sig_ when live_later.(i) ->
          (match o.Schedule.kind with
          | Schedule.KConst _ -> () (* constants are free everywhere *)
          | _ ->
              let en = at_state g (base + o.Schedule.step) in
              let r =
                Builder.reg g.b ~enable:en ~width:(Builder.width sig_)
                  (Printf.sprintf "res%d_%d" base i)
              in
              Builder.connect g.b r sig_;
              res_reg.(i) <- Some r)
      | _ -> ())
    ops

(* ---------------- top-level circuit ---------------- *)

let circuit ~name (t : Schedule.t) =
  let b = Builder.create name in
  let placed, total = place_all t in
  let sw = clog2 (max 2 total) in
  let state = Builder.reg b ~width:sw "state" in
  let p = Axis.Stream.declare_inputs b in
  let g =
    {
      b;
      t;
      sw;
      state;
      var_regs = Hashtbl.create 32;
      elems = Hashtbl.create 8;
      writes = Hashtbl.create 64;
    }
  in
  List.iter
    (fun (x, (ty : Ast.ctype)) ->
      Hashtbl.replace g.var_regs x (Builder.reg b ~width:ty.Ast.width x, ty))
    t.Schedule.proc.Transform.vars;
  List.iter
    (fun (a, (ty : Ast.ctype), len, part) ->
      let st =
        if part then
          Rfile
            (Array.init len (fun i ->
                 Builder.reg b ~width:ty.Ast.width (Printf.sprintf "%s_%d" a i)))
        else Ram (Builder.mem b a ~size:len ~width:ty.Ast.width)
      in
      Hashtbl.replace g.elems a (st, ty))
    t.Schedule.proc.Transform.arrays;

  (* Stall conditions and stream-side outputs. *)
  let captures = ref [] and emits = ref [] in
  let rec scan = function
    | PBlock (blk, base) -> gen_block g blk base
    | PWait _ -> ()
    | PCapture s -> captures := s :: !captures
    | PEmit (s, l) -> emits := (s, l) :: !emits
    | PLoop (_, body) -> List.iter scan body
  in
  List.iter scan placed;

  let or_all = function
    | [] -> Builder.zero b 1
    | x :: rest -> List.fold_left (Builder.or_ b) x rest
  in
  let capture_here = or_all (List.map (at_state g) !captures) in
  let emit_here = or_all (List.map (fun (s, _) -> at_state g s) !emits) in
  let stall_in = Builder.and_ b capture_here (Builder.not_ b p.Axis.Stream.s_valid) in
  let stall_out = Builder.and_ b emit_here (Builder.not_ b p.Axis.Stream.m_ready) in
  let go = Builder.not_ b (Builder.or_ b stall_in stall_out) in

  (* Capture: latch input lanes into __in0..7. *)
  List.iter
    (fun s ->
      let en = Builder.and_ b (at_state g s) p.Axis.Stream.s_valid in
      Array.iteri
        (fun k lane ->
          let r, ty = var_reg g (Printf.sprintf "__in%d" k) in
          request_write g r en (Builder.sext b lane ty.Ast.width))
        p.Axis.Stream.s_data)
    !captures;

  (* Next-state logic: fall-through with loop back-edges (inner wins). *)
  let fallthrough =
    Builder.mux b
      (at_state g (total - 1))
      (Builder.zero b sw)
      (Builder.add b state (Builder.const b ~width:sw 1))
  in
  let loops = List.fold_left collect_loops [] placed in
  let more_of l =
    let r, _ = var_reg g l.l_ivar in
    Builder.ne b r (Builder.const b ~width:(Builder.width r) (l.l_bound - 1))
  in
  let next =
    List.fold_left
      (fun acc l ->
        Builder.mux b
          (Builder.and_ b (at_state g l.l_last) (more_of l))
          (Builder.const b ~width:sw l.l_first)
          acc)
      fallthrough loops
  in
  Builder.connect b state (Builder.mux b go next state);

  (* Iteration counters: at the loop's last state (when every inner loop
     sharing it has finished), advance or reset. *)
  List.iter
    (fun l ->
      let inner_done =
        (* loops strictly nested inside [l] that share its final state *)
        loops
        |> List.filter (fun l' ->
               l'.l_depth > l.l_depth && l'.l_last = l.l_last
               && l'.l_first >= l.l_first)
        |> List.map (fun l' -> Builder.not_ b (more_of l'))
        |> List.fold_left (Builder.and_ b) (Builder.one b 1)
      in
      let en = Builder.and_ b (Builder.and_ b (at_state g l.l_last) go) inner_done in
      let r, _ = var_reg g l.l_ivar in
      let w = Builder.width r in
      let d =
        Builder.mux b (more_of l)
          (Builder.add b r (Builder.const b ~width:w 1))
          (Builder.zero b w)
      in
      request_write g r en d)
    loops;

  (* Emit: m_valid, lanes from __out0..7, m_last on the final iteration of
     the enclosing loop. *)
  let m_valid = emit_here in
  let m_last =
    or_all
      (List.map
         (fun (s, l) ->
           match l with
           | None -> at_state g s
           | Some l -> Builder.and_ b (at_state g s) (Builder.not_ b (more_of l)))
         !emits)
  in
  let m_data =
    Array.init Axis.Stream.lanes (fun k ->
        let r, _ = var_reg g (Printf.sprintf "__out%d" k) in
        truncate g r Axis.Stream.out_width)
  in
  Axis.Stream.expose_outputs b ~s_ready:capture_here ~m_valid ~m_last ~m_data;

  (* Commit all register writes as priority muxes. *)
  Hashtbl.iter
    (fun _ (reg, requests) ->
      let d =
        List.fold_left
          (fun acc (en, v) -> Builder.mux b en v acc)
          reg (List.rev !requests)
      in
      Builder.connect b reg d)
    g.writes;
  (* Registers that were never written still need a connection. *)
  Hashtbl.iter
    (fun _ (r, _) ->
      if not (Hashtbl.mem g.writes (Builder.uid r)) then Builder.connect b r r)
    g.var_regs
  |> ignore;
  Hashtbl.iter
    (fun _ (st, _) ->
      match st with
      | Ram _ -> ()
      | Rfile regs ->
          Array.iter
            (fun r ->
              if not (Hashtbl.mem g.writes (Builder.uid r)) then
                Builder.connect b r r)
            regs)
    g.elems;
  Builder.finalize b
