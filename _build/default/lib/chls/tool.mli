(** Tool profiles: Bambu and Vivado HLS on top of the common HLS flow.

    Both consume the same C program ({!Idct_c}); they differ exactly where
    the paper says they do:

    - {b Bambu} cannot generate a stream interface, so the AXI adapter is
      the hand-written deserializer/serializer ({!io_load_regions} /
      {!io_store_regions}, the equivalent of the paper's Verilog adapter)
      in front of the sequential FSM.  Its option space — experimental
      presets, memory channel types, speculative SDC scheduling, chaining
      effort — maps to the {!Schedule.config} grid (42 configurations).
    - {b Vivado HLS} is driven by pragmas.  Push-button mode keeps the
      functions as separate communicating units (call-boundary
      synchronization states) and memories unpartitioned; the optimized
      mode (INLINE + ARRAY_PARTITION + PIPELINE, the paper's source
      change) unrolls everything into a dataflow kernel that is retimed to
      the clock target and wrapped in the auto-generated AXI-Stream
      interface. *)

type bambu_config = {
  preset : string;     (** BAMBU, AREA, AREA-MP, BALANCED, BALANCED-MP,
                           PERFORMANCE, PERFORMANCE-MP *)
  sdc : bool;          (** speculative SDC scheduling *)
  chain_effort : int;  (** 0, 1, 2 — operation-chaining effort *)
}

val bambu_grid : bambu_config list
(** The 42-point grid (7 presets x 2 x 3). *)

val bambu_initial : bambu_config
(** BAMBU preset, no SDC, default chaining — the paper's starting point
    (MEM_ACC_11, LSS allocation). *)

val bambu_optimized : bambu_config
(** PERFORMANCE-MP with speculative SDC — the paper's best quality. *)

val describe_bambu : bambu_config -> string
val bambu_circuit : ?name:string -> bambu_config -> Hw.Netlist.t

type vhls_config = {
  inline : bool;           (** #pragma HLS INLINE on the passes *)
  partition : bool;        (** #pragma HLS ARRAY_PARTITION complete *)
  pipeline : int;
      (** #pragma HLS PIPELINE: 0 = off, 8 = II=8 (time-shared row/column
          units), 1 = II=1 (fully parallel dataflow) *)
}

val vhls_initial : vhls_config
(** Push-button: everything off. *)

val vhls_optimized : vhls_config
(** All pragmas on. *)

val vhls_ladder : vhls_config list
(** The pragma ladder explored for the DSE figure. *)

val describe_vhls : vhls_config -> string
val vhls_circuit : ?name:string -> vhls_config -> Hw.Netlist.t

val vhls_clock_target_ns : float
val vhls_pragmas : vhls_config -> string list
(** Pragma source lines (counted by the LOC metric). *)

val bambu_adapter_loc : int
(** Lines of the hand-written stream adapter Bambu needs (the I/O regions
    expressed in Verilog). *)

(** {1 Building blocks} *)

val io_load_regions : ?par:int -> string -> Transform.region list
(** Deserializer: 8 beats into the given top array; [par] elements are
    written per cycle (bounded by the memory's write ports). *)

val io_store_regions : ?par:int -> string -> Transform.region list
val io_vars : (string * Ast.ctype) list
(** [__in*], [__out*], [__tmp*] and the I/O loop counters. *)

val sequential_circuit :
  name:string ->
  Schedule.config ->
  Transform.options ->
  Ast.program ->
  Hw.Netlist.t
(** Full sequential flow: lower, wrap with I/O regions, schedule, FSM. *)

val dataflow_circuit :
  name:string -> clock_ns:float -> Ast.program -> Hw.Netlist.t * int
(** Fully-unrolled pipelined flow (PIPELINE pragma); returns the circuit
    and the pipeline depth. *)

val pass_unit :
  Ast.program -> string -> out_width:int -> Axis.Adapter.lane_fn
(** Symbolically execute an in-place single-array function (like
    [idct_row]) into a combinational functional unit — the building block
    the II=8 pipeline shares, also usable to mix C-derived units with other
    front ends' hardware. *)
