open Ast

let w1 = Idct.Chenwang.w1
let w2 = Idct.Chenwang.w2
let w3 = Idct.Chenwang.w3
let w5 = Idct.Chenwang.w5
let w6 = Idct.Chenwang.w6
let w7 = Idct.Chenwang.w7

let v x = Var x
let i k = Int k
let ( +: ) a b = Bin (Add, a, b)
let ( -: ) a b = Bin (Sub, a, b)
let ( *: ) a b = Bin (Mul, a, b)
let ( <<: ) a n = Bin (Shl, a, i n)
let ( >>: ) a n = Bin (Shr, a, i n)
let set x e = Assign (x, e)

let iclip_fn =
  {
    fname = "iclip";
    params = [ PScalar ("x", int_t) ];
    ret = Some int_t;
    locals = [];
    arrays = [];
    body =
      [
        Return
          (Cond
             ( Bin (Lt, v "x", i (-256)),
               i (-256),
               Cond (Bin (Gt, v "x", i 255), i 255, v "x") ));
      ];
  }

let xlocals =
  List.map (fun n -> (n, int_t)) [ "x0"; "x1"; "x2"; "x3"; "x4"; "x5"; "x6"; "x7"; "x8" ]

(* The shared middle of both passes (stages one to three of the butterfly,
   with the column pass's extra rounding and >>3). *)
let stages ~round ~shift3 =
  let sh e = if shift3 then e >>: 3 else e in
  [
    set "x8" ((i w7 *: (v "x4" +: v "x5")) +: i round);
    set "x4" (sh (v "x8" +: (i (w1 - w7) *: v "x4")));
    set "x5" (sh (v "x8" -: (i (w1 + w7) *: v "x5")));
    set "x8" ((i w3 *: (v "x6" +: v "x7")) +: i round);
    set "x6" (sh (v "x8" -: (i (w3 - w5) *: v "x6")));
    set "x7" (sh (v "x8" -: (i (w3 + w5) *: v "x7")));
    set "x8" (v "x0" +: v "x1");
    set "x0" (v "x0" -: v "x1");
    set "x1" ((i w6 *: (v "x3" +: v "x2")) +: i round);
    set "x2" (sh (v "x1" -: (i (w2 + w6) *: v "x2")));
    set "x3" (sh (v "x1" +: (i (w2 - w6) *: v "x3")));
    set "x1" (v "x4" +: v "x6");
    set "x4" (v "x4" -: v "x6");
    set "x6" (v "x5" +: v "x7");
    set "x5" (v "x5" -: v "x7");
    set "x7" (v "x8" +: v "x3");
    set "x8" (v "x8" -: v "x3");
    set "x3" (v "x0" +: v "x2");
    set "x0" (v "x0" -: v "x2");
    set "x2" (((i 181 *: (v "x4" +: v "x5")) +: i 128) >>: 8);
    set "x4" (((i 181 *: (v "x4" -: v "x5")) +: i 128) >>: 8);
  ]

let idct_row_fn =
  {
    fname = "idct_row";
    params = [ PArray ("blk", short_t, 8) ];
    ret = None;
    locals = xlocals;
    arrays = [];
    body =
      [
        set "x0" ((Load ("blk", i 0) <<: 11) +: i 128);
        set "x1" (Load ("blk", i 4) <<: 11);
        set "x2" (Load ("blk", i 6));
        set "x3" (Load ("blk", i 2));
        set "x4" (Load ("blk", i 1));
        set "x5" (Load ("blk", i 7));
        set "x6" (Load ("blk", i 5));
        set "x7" (Load ("blk", i 3));
      ]
      @ stages ~round:0 ~shift3:false
      @ [
          Store ("blk", i 0, (v "x7" +: v "x1") >>: 8);
          Store ("blk", i 1, (v "x3" +: v "x2") >>: 8);
          Store ("blk", i 2, (v "x0" +: v "x4") >>: 8);
          Store ("blk", i 3, (v "x8" +: v "x6") >>: 8);
          Store ("blk", i 4, (v "x8" -: v "x6") >>: 8);
          Store ("blk", i 5, (v "x0" -: v "x4") >>: 8);
          Store ("blk", i 6, (v "x3" -: v "x2") >>: 8);
          Store ("blk", i 7, (v "x7" -: v "x1") >>: 8);
        ];
  }

let idct_col_fn =
  let cl e = Call ("iclip", [ e ]) in
  {
    fname = "idct_col";
    params = [ PArray ("blk", short_t, 8) ];
    ret = None;
    locals = xlocals;
    arrays = [];
    body =
      [
        set "x0" ((Load ("blk", i 0) <<: 8) +: i 8192);
        set "x1" (Load ("blk", i 4) <<: 8);
        set "x2" (Load ("blk", i 6));
        set "x3" (Load ("blk", i 2));
        set "x4" (Load ("blk", i 1));
        set "x5" (Load ("blk", i 7));
        set "x6" (Load ("blk", i 5));
        set "x7" (Load ("blk", i 3));
      ]
      @ stages ~round:4 ~shift3:true
      @ [
          Store ("blk", i 0, cl ((v "x7" +: v "x1") >>: 14));
          Store ("blk", i 1, cl ((v "x3" +: v "x2") >>: 14));
          Store ("blk", i 2, cl ((v "x0" +: v "x4") >>: 14));
          Store ("blk", i 3, cl ((v "x8" +: v "x6") >>: 14));
          Store ("blk", i 4, cl ((v "x8" -: v "x6") >>: 14));
          Store ("blk", i 5, cl ((v "x0" -: v "x4") >>: 14));
          Store ("blk", i 6, cl ((v "x3" -: v "x2") >>: 14));
          Store ("blk", i 7, cl ((v "x7" -: v "x1") >>: 14));
        ];
  }

(* The top function mirrors mpeg2decode's Fast_IDCT exactly: the passes
   work in place on the block through pointer views ([idctrow(block+8*i)]
   and the stride-8 column view). *)
let idct_fn =
  {
    fname = "idct";
    params = [ PArray ("blk", short_t, 64) ];
    ret = None;
    locals = [ ("i", int_t) ];
    arrays = [];
    body =
      [
        For
          {
            ivar = "i";
            bound = 8;
            body = [ CallStmt ("idct_row", [ AView ("blk", v "i" *: i 8, 1) ]) ];
          };
        For
          {
            ivar = "i";
            bound = 8;
            body = [ CallStmt ("idct_col", [ AView ("blk", v "i", 8) ]) ];
          };
      ];
  }

let program =
  { funcs = [ iclip_fn; idct_row_fn; idct_col_fn; idct_fn ]; top = "idct" }

let run blk =
  let arr = Array.copy blk in
  ignore (Ast.interp program "idct" ~args:[ `Arr arr ]);
  arr
