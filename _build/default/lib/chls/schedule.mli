(** Operation scheduling (the core of the HLS flow).

    Every straight-line block becomes a dataflow graph of operations, which
    a list scheduler assigns to control steps under the configuration's
    resource constraints: memory read/write ports per array, shared
    multiplier units, and a per-step operator-chaining delay budget (the
    clock target; speculative SDC scheduling raises it).

    Partitioned arrays live in registers: statically-indexed accesses are
    wires and no ports are consumed. *)

type config = {
  read_ports : int;          (** per array, per step *)
  write_ports : int;
  multipliers : int;         (** shared multiplier units *)
  chain_ns : float;          (** operator chaining budget per step *)
}

val default_config : config
(** 1R/1W, 1 multiplier, 5 ns chaining. *)

type okind =
  | KConst of int
  | KVar of string                  (** variable register at block entry *)
  | KBin of Ast.binop
  | KNeg
  | KCond
  | KLoad of string
  | KStore of string
  | KDefVar of string               (** commits a value to a variable register *)

type op = {
  oid : int;
  kind : okind;
  data_deps : int list;
  mem_deps : (int * [ `Strict | `Weak ]) list;
  mutable step : int;
  mutable port : int;               (** memory port index for loads/stores *)
  mutable unit_id : int;            (** multiplier unit for shared muls *)
}

type block = { ops : op array; n_steps : int }

type sregion =
  | SBlock of block
  | SLoop of { ivar : string; bound : int; body : sregion list }
  | SWait of int
  | SCapture                        (** one stalling input-beat state *)
  | SEmit                           (** one stalling output-beat state *)

type t = {
  proc : Transform.proc;
  config : config;
  regions : sregion list;
}

val schedule : config -> Transform.proc -> t

val region_cycles : sregion -> int
val total_cycles : t -> int
(** Compute cycles of the whole procedure (excluding interface I/O). *)

val is_shared_mul : op -> bool
(** Multiplications with two non-constant operands occupy a shared unit. *)
