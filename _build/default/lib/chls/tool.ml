module Builder = Hw.Builder

open Ast

(* ---------------- interface regions ---------------- *)

let lanes = Axis.Stream.lanes

let in_t = { width = Axis.Stream.in_width; signed = true }
let out_t = { width = Axis.Stream.out_width; signed = true }

let io_vars =
  List.init lanes (fun k -> (Printf.sprintf "__in%d" k, in_t))
  @ List.init lanes (fun k -> (Printf.sprintf "__out%d" k, out_t))
  @ [ ("__tmp0", short_t); ("__tmp1", short_t); ("__ib", int_t);
      ("__il", int_t); ("__ob", int_t); ("__ol", int_t) ]

let v x = Var x
let i k = Int k
let ( +: ) a b = Bin (Add, a, b)
let ( *: ) a b = Bin (Mul, a, b)
let ( ==: ) a b = Bin (Eq, a, b)

let lane_pick prefix ~par ~phase sel =
  (* Select __inK where K = sel*par + phase; sel ranges over lanes/par. *)
  let n = lanes / par in
  let rec go k =
    let name = Printf.sprintf "%s%d" prefix ((k * par) + phase) in
    if k = n - 1 then v name else Cond (sel ==: i k, v name, go (k + 1))
  in
  go 0

let io_load_regions ?(par = 1) top =
  let stores =
    List.init par (fun j ->
        Store
          ( top,
            (v "__ib" *: i lanes) +: ((v "__il" *: i par) +: i j),
            lane_pick "__in" ~par ~phase:j (v "__il") ))
  in
  [
    Transform.RLoop
      {
        ivar = "__ib";
        bound = lanes;
        body =
          [
            Transform.RCapture;
            Transform.RLoop
              { ivar = "__il"; bound = lanes / par; body = [ Transform.RStraight stores ] };
          ];
      };
  ]

let io_store_regions ?(par = 1) top =
  let updates =
    List.concat
      (List.init par (fun j ->
           let tmp = Printf.sprintf "__tmp%d" j in
           [
             Assign
               ( tmp,
                 Load (top, (v "__ob" *: i lanes) +: ((v "__ol" *: i par) +: i j))
               );
           ]))
    @ List.init lanes (fun k ->
          let name = Printf.sprintf "__out%d" k in
          let tmp = Printf.sprintf "__tmp%d" (k mod par) in
          Assign (name, Cond (v "__ol" ==: i (k / par), v tmp, v name)))
  in
  [
    Transform.RLoop
      {
        ivar = "__ob";
        bound = lanes;
        body =
          [
            Transform.RLoop
              { ivar = "__ol"; bound = lanes / par; body = [ Transform.RStraight updates ] };
            Transform.REmit;
          ];
      };
  ]

let with_io (cfg : Schedule.config) (proc : Transform.proc) =
  let top_array =
    match proc.Transform.arrays with
    | (a, _, 64, _) :: _ -> a
    | _ -> failwith "Chls.Tool: expected a 64-element top array"
  in
  let par_in = min 2 cfg.Schedule.write_ports in
  let par_out = min 2 cfg.Schedule.read_ports in
  {
    proc with
    Transform.vars = proc.Transform.vars @ io_vars;
    regions =
      io_load_regions ~par:par_in top_array
      @ proc.Transform.regions
      @ io_store_regions ~par:par_out top_array;
  }

let sequential_circuit ~name cfg opts program =
  let proc = Transform.lower opts program in
  let proc = with_io cfg proc in
  let sched = Schedule.schedule cfg proc in
  Fsm.circuit ~name sched

(* ---------------- Bambu ---------------- *)

type bambu_config = { preset : string; sdc : bool; chain_effort : int }

let presets =
  [
    (* name, read ports, write ports, multipliers, base chaining (ns) *)
    ("BAMBU", 1, 1, 1, 5.0);
    ("AREA", 1, 1, 1, 4.0);
    ("AREA-MP", 2, 2, 1, 4.0);
    ("BALANCED", 1, 1, 2, 5.0);
    ("BALANCED-MP", 2, 2, 2, 5.0);
    ("PERFORMANCE", 1, 1, 2, 6.0);
    ("PERFORMANCE-MP", 2, 2, 2, 6.0);
  ]

let bambu_grid =
  List.concat_map
    (fun (preset, _, _, _, _) ->
      List.concat_map
        (fun sdc ->
          List.map (fun chain_effort -> { preset; sdc; chain_effort }) [ 0; 1; 2 ])
        [ false; true ])
    presets

let bambu_initial = { preset = "BAMBU"; sdc = false; chain_effort = 1 }
let bambu_optimized = { preset = "PERFORMANCE-MP"; sdc = true; chain_effort = 1 }

let describe_bambu c =
  Printf.sprintf "%s%s chaining=%d" c.preset
    (if c.sdc then " +speculative-sdc" else "")
    c.chain_effort

let bambu_schedule_config c =
  let _, rp, wp, mults, chain =
    List.find (fun (n, _, _, _, _) -> n = c.preset) presets
  in
  let chain = chain *. (1.0 +. (0.25 *. float_of_int (c.chain_effort - 1))) in
  let chain = if c.sdc then chain *. 1.2 else chain in
  {
    Schedule.read_ports = rp;
    write_ports = wp;
    multipliers = mults;
    chain_ns = chain;
  }

let bambu_circuit ?name c =
  let name = Option.value name ~default:("bambu_" ^ describe_bambu c) in
  sequential_circuit ~name (bambu_schedule_config c)
    Transform.default_options Idct_c.program

(* The equivalent of the hand-written Verilog AXI-Stream adapter the paper
   pairs with Bambu (deserializer, FSM handshake, serializer). *)
let bambu_adapter_loc = 58

(* ---------------- Vivado HLS ---------------- *)

type vhls_config = { inline : bool; partition : bool; pipeline : int }

let vhls_initial = { inline = false; partition = false; pipeline = 0 }
let vhls_optimized = { inline = true; partition = true; pipeline = 8 }

let vhls_ladder =
  [
    vhls_initial;
    { inline = true; partition = false; pipeline = 0 };
    { inline = true; partition = true; pipeline = 0 };
    vhls_optimized;
    { inline = true; partition = true; pipeline = 1 };
  ]

let describe_vhls c =
  let tags =
    (if c.inline then [ "INLINE" ] else [])
    @ (if c.partition then [ "ARRAY_PARTITION" ] else [])
    @
    if c.pipeline > 0 then [ Printf.sprintf "PIPELINE_II%d" c.pipeline ]
    else []
  in
  match tags with [] -> "push-button" | _ -> String.concat "+" tags

let vhls_clock_target_ns = 7.5

let vhls_pragmas c =
  [ "#pragma HLS INTERFACE axis port=blk" ]
  @ (if c.inline then [ "#pragma HLS INLINE region" ] else [])
  @ (if c.partition then
       [ "#pragma HLS ARRAY_PARTITION variable=blk complete" ]
     else [])
  @
  if c.pipeline > 0 then
    [ Printf.sprintf "#pragma HLS PIPELINE II=%d" c.pipeline ]
  else []

(* ---------------- symbolic execution of straight-line C ---------------- *)

let cw = 32

let sym_binop b op sx sy =
  let bool_ s = Builder.uext b s cw in
  match (op : binop) with
  | Add -> Builder.add b sx sy
  | Sub -> Builder.sub b sx sy
  | Mul -> Builder.mul b sx sy
  | Shl -> Builder.shl b sx sy
  | Shr -> Builder.sra b sx sy
  | And -> Builder.and_ b sx sy
  | Or -> Builder.or_ b sx sy
  | Xor -> Builder.xor_ b sx sy
  | Lt -> bool_ (Builder.lt b ~signed:true sx sy)
  | Le -> bool_ (Builder.le b ~signed:true sx sy)
  | Gt -> bool_ (Builder.gt b ~signed:true sx sy)
  | Ge -> bool_ (Builder.ge b ~signed:true sx sy)
  | Eq -> bool_ (Builder.eq b sx sy)
  | Ne -> bool_ (Builder.ne b sx sy)

let sym_truncate b s w =
  if Builder.width s > w then Builder.slice b s ~hi:(w - 1) ~lo:0
  else Builder.sext b s w

(* Evaluate statements into combinational hardware.  [vars] and [arrays]
   carry the machine state as signals; value calls are inlined on the fly. *)
let rec sym_eval program b vars arrays (e : expr) =
  let ev = sym_eval program b vars arrays in
  match e with
  | Int k -> Builder.const b ~width:cw k
  | Var x -> (
      match Hashtbl.find_opt vars x with
      | Some s -> s
      | None -> failwith (Printf.sprintf "Chls symexec: unbound %s" x))
  | Load (a, Int k) -> Builder.sext b (Hashtbl.find arrays a).(k) cw
  | Load _ -> failwith "Chls symexec: dynamic index (unroll first)"
  | Bin (op, x, y) -> sym_binop b op (ev x) (ev y)
  | Neg x -> Builder.neg b (ev x)
  | Cond (c, t, f) ->
      let sel = Builder.ne b (ev c) (Builder.zero b cw) in
      Builder.mux b sel (ev t) (ev f)
  | Call _ -> ev (Transform.expand_calls program e)

let sym_exec program b ~var_type ~elem_type vars arrays (s : stmt) =
  match s with
  | Assign (x, e) ->
      let t : ctype = var_type x in
      Hashtbl.replace vars x
        (sym_truncate b (sym_eval program b vars arrays e) t.width)
  | Store (a, Int k, e) ->
      let t : ctype = elem_type a in
      (Hashtbl.find arrays a).(k) <-
        sym_truncate b (sym_eval program b vars arrays e) t.width
  | Store _ -> failwith "Chls symexec: dynamic store (unroll first)"
  | If _ | For _ | CallStmt _ | Return _ ->
      failwith "Chls symexec: non-simple statement"

(* One in-place pass (idct_row / idct_col) as a shared functional unit:
   the II=8 pipeline reuses it once per row or column. *)
let pass_unit program fname ~out_width : Axis.Adapter.lane_fn =
 fun b ins ->
  let f = Ast.find_func program fname in
  let a, elem_t =
    match f.params with
    | [ PArray (a, t, 8) ] -> (a, t)
    | _ -> failwith "Chls.Tool: pass must take one 8-element array"
  in
  let vars = Hashtbl.create 16 in
  let arrays = Hashtbl.create 1 in
  Hashtbl.replace arrays a
    (Array.map (fun s -> Builder.sext b s elem_t.width) ins);
  let var_type x =
    match List.assoc_opt x f.locals with Some t -> t | None -> int_t
  in
  let elem_type _ = elem_t in
  List.iter (sym_exec program b ~var_type ~elem_type vars arrays) f.body;
  Array.map (fun s -> sym_truncate b s out_width) (Hashtbl.find arrays a)

(* Dataflow elaboration of a fully-unrolled procedure (PIPELINE II=1):
   every statement is evaluated symbolically into one combinational
   kernel, then retimed to the clock target. *)
let dataflow_circuit ~name ~clock_ns program =
  let opts =
    {
      Transform.inline_calls = true;
      unroll = true;
      partition = [ "blk"; "row"; "col" ];
      call_sync_cycles = 0;
    }
  in
  let proc = Transform.lower opts program in
  let block =
    match proc.Transform.regions with
    | [ Transform.RStraight b ] -> b
    | _ -> failwith "Chls.Tool: expected a single straight-line region"
  in
  let top_array, elem_t =
    match proc.Transform.arrays with
    | (a, t, 64, _) :: _ -> (a, t)
    | _ -> failwith "Chls.Tool: expected a 64-element top array"
  in
  let b = Builder.create (name ^ "_kernel") in
  let vars = Hashtbl.create 64 in
  let arrays = Hashtbl.create 4 in
  List.iter
    (fun (a, (t : ctype), n, _) ->
      let init =
        if a = top_array then
          Array.init n (fun k ->
              let inp =
                Builder.input b (Printf.sprintf "m_%d" k) Axis.Stream.in_width
              in
              Builder.sext b inp t.width)
        else Array.init n (fun _ -> Builder.const b ~width:t.width 0)
      in
      Hashtbl.replace arrays a init)
    proc.Transform.arrays;
  let var_type x =
    match List.assoc_opt x proc.Transform.vars with
    | Some t -> t
    | None -> int_t
  in
  let elem_type _ = elem_t in
  List.iter (sym_exec program b ~var_type ~elem_type vars arrays) block;
  Array.iteri
    (fun k s ->
      Builder.output b (Printf.sprintf "out_%d" k)
        (sym_truncate b s Axis.Stream.out_width))
    (Hashtbl.find arrays top_array);
  let comb = Builder.finalize b in
  let timing = Hw.Timing.analyze Hw.Device.xcvu9p comb in
  let stages =
    max 1 (int_of_float (ceil (timing.Hw.Timing.period_ns /. clock_ns)))
  in
  let pipelined = Hw.Pipeline.retime ~stages comb in
  let kernel kb mid =
    let inputs =
      Array.to_list (Array.mapi (fun k s -> (Printf.sprintf "m_%d" k, s)) mid)
    in
    let outs = Hw.Instantiate.stamp kb pipelined ~inputs in
    Array.init 64 (fun k -> List.assoc (Printf.sprintf "out_%d" k) outs)
  in
  (Axis.Adapter.wrap_matrix_kernel ~name ~latency:stages ~kernel (), stages)

let vhls_circuit ?name c =
  let name = Option.value name ~default:("vhls_" ^ describe_vhls c) in
  if c.pipeline = 8 then
    (* II=8: one row unit and one column unit, time-shared over the eight
       rows/columns — what Vivado HLS binds for an 8-iteration pipeline. *)
    Axis.Adapter.wrap_row_col ~name
      ~row_unit:(pass_unit Idct_c.program "idct_row" ~out_width:16)
      ~mid_width:16
      ~col_unit:
        (pass_unit Idct_c.program "idct_col" ~out_width:Axis.Stream.out_width)
      ()
  else if c.pipeline = 1 then
    fst (dataflow_circuit ~name ~clock_ns:vhls_clock_target_ns Idct_c.program)
  else
    let opts =
      {
        Transform.inline_calls = c.inline;
        unroll = false;
        partition = (if c.partition then [ "blk"; "row"; "col" ] else []);
        call_sync_cycles = 8;
      }
    in
    let cfg =
      {
        Schedule.read_ports = 1;
        write_ports = 1;
        multipliers = 2;
        chain_ns = vhls_clock_target_ns;
      }
    in
    sequential_circuit ~name cfg opts Idct_c.program
