lib/vlog/elaborate.ml: Ast Builder Hashtbl Hw Instantiate List Netlist Option Parse Printf
