lib/vlog/ast.ml:
