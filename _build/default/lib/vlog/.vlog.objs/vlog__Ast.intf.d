lib/vlog/ast.mli:
