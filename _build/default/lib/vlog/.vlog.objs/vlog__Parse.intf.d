lib/vlog/parse.mli: Ast
