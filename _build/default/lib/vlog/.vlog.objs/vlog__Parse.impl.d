lib/vlog/parse.ml: Ast Buffer List Printf String
