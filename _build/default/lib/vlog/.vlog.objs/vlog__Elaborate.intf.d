lib/vlog/elaborate.mli: Ast Hw
