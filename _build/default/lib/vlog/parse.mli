(** Lexer and recursive-descent parser for the Verilog subset.

    Supported syntax (IEEE 1364 flavour):
    - [module name (a, b, ...); ... endmodule]
    - [input]/[output]/[wire]/[reg] declarations with [[msb:lsb]] ranges
    - [assign name = expr;]
    - [always @(posedge clk) begin ... end] with [if]/[else] and
      non-blocking assignments
    - module instances with named connections [.port(expr)]
    - expressions: [?:], logical/bitwise operators, comparisons, shifts
      ([>>>] arithmetic), [+ - *], unary [- ~], sized literals ([12'd42],
      [8'hFF], [4'b1010]), bit/part selects, concatenation, replication
      and [$signed(e)].

    Comments ([//] and [/* */]) are skipped. *)

exception Syntax_error of string
(** Carries a line-number diagnostic. *)

val design : string -> Ast.design
val expr_of_string : string -> Ast.expr
(** For tests. *)
